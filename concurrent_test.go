package autostats

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestSystemConcurrentHammer is the race-regression sweep for the
// stats-as-a-service usage pattern: one System shared by many goroutines
// running Exec (queries and DML), Explain, TuneQuery, RunMaintenanceCtx and
// the read-only inspectors at the same time. The server (internal/server)
// makes this the DEFAULT way a System is used — before it, only
// stats.Manager internals were swept under -race. The test asserts nothing
// about results beyond "no error"; its value is the -race run.
func TestSystemConcurrentHammer(t *testing.T) {
	sys, err := GenerateTPCD(TPCDOptions{Scale: 0.05, Skew: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Configure BEFORE serving, per the System concurrency contract, and
	// turn everything on so the sweep covers the feedback capture path and
	// the resilience guard alongside plain execution.
	sys.EnableFeedback(FeedbackOptions{})
	sys.EnableResilience(ResilienceOptions{})
	if err := sys.CreateIndexedColumnStats(); err != nil {
		t.Fatal(err)
	}

	stmts, err := sys.GenerateWorkload(WorkloadOptions{Count: 60, UpdatePct: 30, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var selects []string
	for _, s := range stmts {
		if exp, eerr := sys.Explain(s); eerr == nil && exp != "" {
			selects = append(selects, s)
		}
	}
	if len(selects) < 5 {
		t.Fatalf("workload produced only %d SELECTs", len(selects))
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	report := func(kind string, err error) {
		if err != nil {
			select {
			case errs <- fmt.Errorf("%s: %w", kind, err):
			default:
			}
		}
	}

	// Statement executors: queries and DML interleaved, offset per worker so
	// the schedules differ.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := 0; i < len(stmts); i++ {
				_, err := sys.Exec(stmts[(i+off)%len(stmts)])
				report("exec", err)
			}
		}(w * 7)
	}
	// Explainers over the SELECT subset.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := 0; i < 2*len(selects); i++ {
				_, err := sys.Explain(selects[(i+off)%len(selects)])
				report("explain", err)
			}
		}(w * 3)
	}
	// Tuner: MNSA creates statistics while statements run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			_, err := sys.TuneQuery(selects[i%len(selects)], TuneOptions{})
			report("tune", err)
		}
	}()
	// Maintenance loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			_, err := sys.RunMaintenanceCtx(context.Background())
			report("maintenance", err)
		}
	}()
	// Read-only inspectors.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = sys.Statistics()
			_ = sys.PlanCacheStats()
			_ = sys.BreakerStates()
			_ = sys.FeedbackStats()
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSystemConcurrentExecDeterministicResults pins down that concurrent
// Exec of the same SELECT (plan-cache hits from pooled session clones)
// returns the same row multiset as a serial run.
func TestSystemConcurrentExecDeterministicResults(t *testing.T) {
	sys, err := GenerateTPCD(TPCDOptions{Scale: 0.05, Skew: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateIndexedColumnStats(); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT * FROM orders WHERE o_orderkey > 10"
	ref, err := sys.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([]*QueryResult, 16)
	errList := make([]error, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errList[i] = sys.Exec(q)
		}(i)
	}
	wg.Wait()
	for i, err := range errList {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		if len(got[i].Rows) != len(ref.Rows) {
			t.Fatalf("worker %d: %d rows, want %d", i, len(got[i].Rows), len(ref.Rows))
		}
	}
	if hits := sys.PlanCacheStats().Hits; hits == 0 {
		t.Fatalf("concurrent repeats of one template produced no plan-cache hits")
	}
}
