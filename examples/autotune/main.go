// Autotune: the §6 "most aggressive" policy end to end — a self-tuning
// server processing a live decision-support statement stream. Every
// incoming SELECT first passes through MNSA (so statistics appear on the
// fly, but only the essential ones), DML drives the per-table modification
// counters, and the SQL Server 7.0-style maintenance policy refreshes
// statistics on heavily modified tables.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"autostats"
)

func main() {
	sys, err := autostats.GenerateTPCD(autostats.TPCDOptions{Scale: 0.5, Mix: true, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// A mixed stream: 25% inserts/updates/deletes, complex join queries —
	// the paper's U25-C workload shape.
	stream, err := sys.GenerateWorkload(autostats.WorkloadOptions{
		Count: 120, UpdatePct: 25, Complex: true, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	var totalCost float64
	lastStats := 0
	for i, sql := range stream {
		res, err := sys.ProcessStatement(sql)
		if err != nil {
			log.Fatalf("statement %d (%s): %v", i, sql, err)
		}
		totalCost += res.ExecCost
		if n := len(sys.Statistics()); n != lastStats {
			fmt.Printf("[%3d] statistics: %d -> %d (triggered by %.60s...)\n", i, lastStats, n, sql)
			lastStats = n
		}
	}

	fmt.Printf("\nprocessed %d statements, total execution cost %.0f units\n", len(stream), totalCost)
	fmt.Printf("statistics in place: %d\n", len(sys.Statistics()))
	for _, st := range sys.Statistics() {
		marker := ""
		if st.InDropList {
			marker = "  (drop-list)"
		}
		if st.Updates > 0 {
			marker += fmt.Sprintf("  refreshed %dx by maintenance", st.Updates)
		}
		fmt.Printf("  %-45s %6d rows %5d distinct%s\n", st.ID, st.Rows, st.Distinct, marker)
	}

	// The payoff of automatic management: replaying the same stream creates
	// nothing new — the system has converged.
	before := len(sys.Statistics())
	for _, sql := range stream {
		if _, err := sys.ProcessStatement(sql); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nreplayed the stream: statistics %d -> %d (converged)\n", before, len(sys.Statistics()))
}
