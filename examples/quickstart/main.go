// Quickstart: generate a skewed TPC-D database, watch a query plan change
// (and get cheaper) once MNSA creates exactly the statistics the query
// needs — the paper's §1 observation in thirty lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"autostats"
)

func main() {
	// A moderately skewed (z = 2) TPC-D instance, ~4.4k rows.
	sys, err := autostats.GenerateTPCD(autostats.TPCDOptions{Scale: 0.5, Skew: 2})
	if err != nil {
		log.Fatal(err)
	}

	const sql = `SELECT * FROM lineitem, orders
		WHERE l_orderkey = o_orderkey AND l_quantity > 45 AND o_totalprice > 400000`

	fmt.Println("--- plan with NO statistics (magic numbers only) ---")
	before, err := sys.Exec(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(before.Plan)
	fmt.Printf("estimated cost %.0f, actual execution cost %.0f, %d rows\n\n",
		before.EstimatedCost, before.ExecCost, len(before.Rows))

	// Magic Number Sensitivity Analysis: create statistics only until the
	// plan is provably insensitive to the rest (t = 20%, ε = 0.0005).
	rep, err := sys.TuneQuery(sql, autostats.TuneOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MNSA created %d statistics with %d optimizer calls:\n", len(rep.Created), rep.OptimizerCalls)
	for _, id := range rep.Created {
		fmt.Println("  ", id)
	}

	fmt.Println("\n--- plan WITH statistics ---")
	after, err := sys.Exec(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(after.Plan)
	fmt.Printf("estimated cost %.0f, actual execution cost %.0f, %d rows\n",
		after.EstimatedCost, after.ExecCost, len(after.Rows))
	fmt.Printf("\nexecution cost: %.0f -> %.0f (%.1fx cheaper)\n",
		before.ExecCost, after.ExecCost, before.ExecCost/after.ExecCost)
}
