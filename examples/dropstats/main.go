// Dropstats: the update-sensitive scenario of §5-§6. An update-heavy system
// cannot afford to maintain every statistic: each refresh rescans the table.
// MNSA/D detects non-essential statistics while creating them, the offline
// Shrinking Set pass guarantees an essential set, and the drop-list plus
// aging keep maintenance cost down without hurting plans.
//
//	go run ./examples/dropstats
package main

import (
	"fmt"
	"log"

	"autostats"
)

func main() {
	const workloadSeed = 5

	// Arm A: plain MNSA — keep everything it creates.
	keep, err := autostats.GenerateTPCD(autostats.TPCDOptions{Scale: 0.5, Skew: 2})
	if err != nil {
		log.Fatal(err)
	}
	stream, err := keep.GenerateWorkload(autostats.WorkloadOptions{
		Count: 80, UpdatePct: 50, Complex: true, Seed: workloadSeed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := keep.TuneWorkload(stream, autostats.TuneOptions{}); err != nil {
		log.Fatal(err)
	}

	// Arm B: MNSA/D + Shrinking Set (the §6 offline policy) on identical
	// data — non-essential statistics land on the drop-list and stop being
	// maintained.
	drop, err := autostats.GenerateTPCD(autostats.TPCDOptions{Scale: 0.5, Skew: 2})
	if err != nil {
		log.Fatal(err)
	}
	drop.SetAgingWindow(500) // dampen re-creation of recently dropped stats
	rep, err := drop.TuneWorkload(stream, autostats.TuneOptions{Drop: true, Shrink: true})
	if err != nil {
		log.Fatal(err)
	}

	count := func(s *autostats.System) (maintained, dropListed int) {
		for _, st := range s.Statistics() {
			if st.InDropList {
				dropListed++
			} else {
				maintained++
			}
		}
		return
	}
	mA, _ := count(keep)
	mB, dB := count(drop)
	fmt.Printf("MNSA kept everything:        %d statistics maintained\n", mA)
	fmt.Printf("MNSA/D + Shrinking Set:      %d maintained, %d on the drop-list\n", mB, dB)
	fmt.Printf("essential set (guaranteed):  %d statistics\n", len(rep.Essential))

	// Run the update-heavy stream on both arms; maintenance refreshes only
	// maintained statistics, so arm B pays less.
	execute := func(s *autostats.System) (execCost float64) {
		for _, sql := range stream {
			res, err := s.Exec(sql)
			if err != nil {
				log.Fatal(err)
			}
			execCost += res.ExecCost
		}
		if _, _, err := s.RunMaintenance(); err != nil {
			log.Fatal(err)
		}
		return execCost
	}
	costA := execute(keep)
	costB := execute(drop)
	fmt.Printf("\nworkload execution cost:  keep-all %.0f  vs  drop-list %.0f (%.1f%% difference)\n",
		costA, costB, 100*(costB-costA)/costA)

	fmt.Println("\ndrop-listed (identified non-essential, no longer refreshed):")
	for _, st := range drop.Statistics() {
		if st.InDropList {
			fmt.Println("  ", st.ID)
		}
	}
}
