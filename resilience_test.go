package autostats

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"
	"time"

	"autostats/internal/resilience"
	"autostats/internal/stats"
)

func sortedRows(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "|")
	}
	sort.Strings(out)
	return out
}

// TestGracefulDegradationEndToEnd is the acceptance scenario for the
// resilience layer: with the statistics build path hard-down, statements
// still plan and execute on magic-number plans tagged Degraded, the
// resilience.*/degraded.* telemetry fires, the plan cache stays clean of
// degraded plans, and once the build path recovers the very next statements
// produce healthy, non-degraded plans with identical results.
func TestGracefulDegradationEndToEnd(t *testing.T) {
	sys := testSystem(t)
	sys.EnableResilience(ResilienceOptions{
		Retries:          1,
		RetryBaseDelay:   time.Microsecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Millisecond,
	})

	down := errors.New("stats store down")
	sys.mgr.SetFailpoint(func(context.Context, string, stats.ID) error {
		return stats.Transient(down)
	})

	queries := []string{
		"SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 45",
		"SELECT * FROM orders, customer WHERE o_custkey = c_custkey AND o_totalprice > 400000",
		"SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_discount > 0.05",
	}
	ctx := context.Background()
	degradedRows := make([][]string, len(queries))
	for i, q := range queries {
		res, err := sys.ProcessStatementCtx(ctx, q)
		if err != nil {
			t.Fatalf("degraded statement %q must still execute: %v", q, err)
		}
		if len(res.Degraded) == 0 {
			t.Fatalf("statement %q with stats down must be degraded", q)
		}
		degradedRows[i] = sortedRows(res.Rows)
	}

	reg := sys.Obs()
	for _, c := range []string{
		"degraded.plans",
		"degraded.statements",
		"degraded.plancache_bypasses",
		"resilience.ensure.failures",
		"resilience.retry.attempts",
		"resilience.breaker.trips",
	} {
		if got := reg.Counter(c).Value(); got == 0 {
			t.Errorf("counter %s = 0 after degraded phase", c)
		}
	}
	if got := reg.Counter("degraded.plancache_bypasses").Value(); got < int64(len(queries)) {
		t.Errorf("plancache bypasses = %d, want >= %d (one per degraded statement)", got, len(queries))
	}
	// Degraded statements must not grow the plan cache: re-running one adds
	// no entries (MNSA probe plans from the first pass are reused by key; the
	// degraded executed plan is never stored).
	sizeBefore := sys.PlanCacheStats().Size
	if res, err := sys.ProcessStatementCtx(ctx, queries[0]); err != nil || len(res.Degraded) == 0 {
		t.Fatalf("repeat degraded statement: err=%v degraded=%v", err, res.Degraded)
	}
	if got := sys.PlanCacheStats().Size; got != sizeBefore {
		t.Errorf("plan cache grew %d -> %d across a degraded statement", sizeBefore, got)
	}
	states := sys.BreakerStates()
	if len(states) == 0 {
		t.Fatal("no breaker state after repeated failures")
	}
	open := 0
	for _, st := range states {
		if st.State == resilience.Open {
			open++
		}
	}
	if open == 0 {
		t.Errorf("no breaker open after the outage: %+v", states)
	}

	// Recovery: build path comes back, cooldown elapses, half-open probes
	// succeed and the next statements plan healthy with the same results.
	sys.mgr.SetFailpoint(nil)
	time.Sleep(5 * time.Millisecond)
	for i, q := range queries {
		res, err := sys.ProcessStatementCtx(ctx, q)
		if err != nil {
			t.Fatalf("recovered statement %q: %v", q, err)
		}
		if len(res.Degraded) != 0 {
			t.Errorf("statement %q still degraded after recovery: %v", q, res.Degraded)
		}
		healthy := sortedRows(res.Rows)
		if len(healthy) != len(degradedRows[i]) {
			t.Errorf("%q: degraded run returned %d rows, healthy run %d", q, len(degradedRows[i]), len(healthy))
			continue
		}
		for j := range healthy {
			if healthy[j] != degradedRows[i][j] {
				t.Errorf("%q: row %d differs between degraded and healthy runs", q, j)
				break
			}
		}
	}
	for _, st := range sys.BreakerStates() {
		if st.State == resilience.Open {
			t.Errorf("breaker for %s still open after recovery", st.Table)
		}
	}
	if n := len(sys.Statistics()); n == 0 {
		t.Error("recovery built no statistics")
	}
}

// TestTuneDegradedReport: offline tuning under a failing build path reports
// Degraded with per-statistic failures instead of aborting, and the CLI-facing
// TuneReport carries them.
func TestTuneDegradedReport(t *testing.T) {
	sys := testSystem(t)
	sys.EnableResilience(ResilienceOptions{Retries: 0, RetryBaseDelay: time.Microsecond})
	down := errors.New("down")
	sys.mgr.SetFailpoint(func(context.Context, string, stats.ID) error {
		return stats.Transient(down)
	})
	rep, err := sys.TuneQueryCtx(context.Background(), "SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 45", TuneOptions{})
	if err != nil {
		t.Fatalf("degraded tune must not abort: %v", err)
	}
	if !rep.Degraded || len(rep.BuildFailures) == 0 {
		t.Fatalf("report should be degraded with failures: degraded=%v failures=%d",
			rep.Degraded, len(rep.BuildFailures))
	}
	for _, bf := range rep.BuildFailures {
		if !strings.Contains(bf, "transient") {
			t.Errorf("failure %q lost its reason classification", bf)
		}
	}

	// Cancellation beats tolerance: a canceled tune returns the ctx error.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.TuneQueryCtx(cctx, "SELECT * FROM orders WHERE o_totalprice < 1000", TuneOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled tune: err = %v, want context.Canceled", err)
	}
}
