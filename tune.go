package autostats

import (
	"context"
	"fmt"

	"autostats/internal/core"
	"autostats/internal/query"
	"autostats/internal/sqlparser"
	"autostats/internal/stats"
	"autostats/internal/workload"
)

// TuneOptions configures statistics selection.
type TuneOptions struct {
	// ThresholdPct is the t of t-optimizer-cost equivalence, in percent
	// (default 20, the paper's conservative choice).
	ThresholdPct float64
	// Epsilon pins the extreme selectivities of MNSA (default 0.0005).
	Epsilon float64
	// SingleColumnOnly restricts candidates to single-column statistics.
	SingleColumnOnly bool
	// Exhaustive uses the exhaustive candidate space (baseline; expensive).
	Exhaustive bool
	// Drop enables MNSA/D: detect non-essential statistics during creation
	// and place them on the drop-list.
	Drop bool
	// Shrink runs the Shrinking Set algorithm after MNSA, drop-listing
	// everything outside the resulting essential set (the offline policy of
	// §6).
	Shrink bool
	// SmallTableRows creates candidates on tables at or below this size
	// without sensitivity analysis (§4.3's threshold augmentation).
	SmallTableRows int
	// UseAging dampens re-creation of recently dropped statistics (§6).
	UseAging bool
	// Parallelism fans the per-query MNSA runs of TuneWorkload out to this
	// many worker sessions over the shared statistics manager and plan
	// cache. Values <= 1 run the exact serial algorithm. With higher values
	// the created set is schedule-dependent (as it already is on serial
	// query order): typically heavily overlapping a serial run's, always
	// drawn from the same candidate space.
	Parallelism int
}

func (o TuneOptions) config() core.Config {
	cfg := core.DefaultConfig()
	if o.ThresholdPct > 0 {
		cfg.T = o.ThresholdPct
	}
	if o.Epsilon > 0 {
		cfg.Epsilon = o.Epsilon
	}
	switch {
	case o.Exhaustive:
		cfg.CandidateFn = core.ExhaustiveStats
	case o.SingleColumnOnly:
		cfg.CandidateFn = core.SingleColumnCandidates
	}
	cfg.Drop = o.Drop
	cfg.MinTableRows = o.SmallTableRows
	cfg.UseAging = o.UseAging
	return cfg
}

// TuneReport summarizes a tuning run.
type TuneReport struct {
	// Created lists statistics built, in creation order.
	Created []string
	// DropListed lists statistics identified as non-essential.
	DropListed []string
	// Essential lists the essential set when Shrink ran (nil otherwise).
	Essential []string
	// OptimizerCalls counts optimizations performed by the algorithms.
	OptimizerCalls int
	// CreationCostUnits is the statistics build cost in work units.
	CreationCostUnits float64
	// Degraded reports whether the run completed in degraded mode: with
	// resilience enabled, some statistic builds failed (breaker open,
	// timeout, or error) and the affected queries were planned on default
	// magic-number selectivities instead.
	Degraded bool
	// BuildFailures describes each failed build as "id: reason" (only
	// populated with resilience enabled).
	BuildFailures []string
}

// TuneQuery runs MNSA (or MNSA/D when opts.Drop) for one SELECT statement,
// creating the statistics it needs.
func (s *System) TuneQuery(sql string, opts TuneOptions) (*TuneReport, error) {
	return s.TuneQueryCtx(context.Background(), sql, opts)
}

// TuneQueryCtx is TuneQuery honoring cancellation and deadlines. Tuning
// entry points serialize on the system's internal mutex; concurrent callers
// queue (see the System doc comment).
func (s *System) TuneQueryCtx(ctx context.Context, sql string, opts TuneOptions) (*TuneReport, error) {
	q, err := sqlparser.ParseSelect(s.db.Schema, sql)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mgr.ResetAccounting()
	s.sess.ClearDegraded()
	res, err := core.RunMNSACtx(ctx, s.sess, q, s.config(opts))
	if err != nil {
		return nil, err
	}
	rep := &TuneReport{
		Created:           idsToStrings(res.Created),
		DropListed:        idsToStrings(res.DropListed),
		OptimizerCalls:    res.OptimizerCalls,
		CreationCostUnits: s.mgr.Snapshot().TotalBuildCost,
		Degraded:          res.Degraded(),
	}
	for _, f := range res.BuildFailures {
		rep.BuildFailures = append(rep.BuildFailures, fmt.Sprintf("%s: %s", f.ID, f.Reason))
	}
	return rep, nil
}

// TuneWorkload runs MNSA over every SELECT in the workload, then optionally
// the Shrinking Set algorithm (opts.Shrink) — the offline policy of §6.
// Non-SELECT statements are ignored for selection purposes.
func (s *System) TuneWorkload(sqls []string, opts TuneOptions) (*TuneReport, error) {
	return s.TuneWorkloadCtx(context.Background(), sqls, opts)
}

// TuneWorkloadCtx is TuneWorkload honoring cancellation and deadlines: ctx
// is checked between workload queries, between per-statistic build steps,
// and through the shrinking phase, so an interrupted run returns promptly
// with the statistics already built intact.
func (s *System) TuneWorkloadCtx(ctx context.Context, sqls []string, opts TuneOptions) (*TuneReport, error) {
	queries, err := s.parseQueries(sqls)
	if err != nil {
		return nil, err
	}
	return s.tuneQueries(ctx, queries, opts)
}

// config finalizes the core configuration for this system: with resilience
// enabled, builds route through the Guard so failures degrade instead of
// aborting.
func (s *System) config(opts TuneOptions) core.Config {
	cfg := opts.config()
	if s.guard != nil {
		cfg.Builder = s.guard
	}
	return cfg
}

func (s *System) tuneQueries(ctx context.Context, queries []*query.Select, opts TuneOptions) (*TuneReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mgr.ResetAccounting()
	s.sess.ClearDegraded()
	cfg := s.config(opts)
	rep := &TuneReport{}
	sp := s.sess.Obs().StartSpan("tune.workload", map[string]any{
		"queries": len(queries), "shrink": opts.Shrink, "parallelism": opts.Parallelism,
	})
	defer func() {
		sp.End(map[string]any{
			"created":         len(rep.Created),
			"drop_listed":     len(rep.DropListed),
			"optimizer_calls": rep.OptimizerCalls,
			"build_failures":  len(rep.BuildFailures),
		})
	}()
	record := func(wr *core.WorkloadResult) {
		rep.Created = idsToStrings(wr.Created)
		rep.DropListed = idsToStrings(wr.DropListed)
		rep.OptimizerCalls = wr.OptimizerCalls
		rep.Degraded = wr.Degraded()
		for _, f := range wr.BuildFailures {
			rep.BuildFailures = append(rep.BuildFailures, fmt.Sprintf("%s: %s", f.ID, f.Reason))
		}
	}
	if opts.Shrink {
		tr, err := core.OfflineTuneParallelCtx(ctx, s.sess, queries, cfg, nil, opts.Parallelism)
		if err != nil {
			return nil, err
		}
		record(tr.MNSA)
		rep.DropListed = idsToStrings(tr.DropListed)
		rep.Essential = idsToStrings(tr.Shrink.Kept)
		rep.OptimizerCalls = tr.MNSA.OptimizerCalls + tr.Shrink.OptimizerCalls
	} else {
		wr, err := core.RunMNSAWorkloadParallelCtx(ctx, s.sess, queries, cfg, opts.Parallelism)
		if err != nil {
			return nil, err
		}
		record(wr)
	}
	rep.CreationCostUnits = s.mgr.Snapshot().TotalBuildCost
	return rep, nil
}

func (s *System) parseQueries(sqls []string) ([]*query.Select, error) {
	var queries []*query.Select
	for i, sql := range sqls {
		stmt, err := sqlparser.Parse(s.db.Schema, sql)
		if err != nil {
			return nil, fmt.Errorf("autostats: statement %d: %w", i+1, err)
		}
		if q, ok := stmt.(*query.Select); ok {
			queries = append(queries, q)
		}
	}
	return queries, nil
}

func idsToStrings(ids []stats.ID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

// ProcessStatement handles one incoming statement under the on-the-fly
// policy (§6): SELECTs pass through MNSA first, DML executes and
// periodically triggers the maintenance policy.
func (s *System) ProcessStatement(sql string) (*QueryResult, error) {
	return s.ProcessStatementCtx(context.Background(), sql)
}

// ProcessStatementCtx is ProcessStatement honoring cancellation and
// deadlines through the MNSA analysis, statistic builds and periodic
// maintenance. With resilience enabled, statements whose statistics cannot
// be built still execute — on degraded magic-number plans, reported in
// QueryResult.Degraded.
func (s *System) ProcessStatementCtx(ctx context.Context, sql string) (*QueryResult, error) {
	stmt, err := sqlparser.Parse(s.db.Schema, sql)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.auto.ProcessStatementCtx(ctx, stmt)
	if err != nil {
		return nil, err
	}
	out := &QueryResult{
		ExecCost: res.Cost,
		Affected: res.Affected,
		Degraded: s.sess.DegradedReasons(),
	}
	if res.Rows != nil {
		cols := make([]string, len(res.Cols))
		for name, pos := range res.Cols {
			if pos >= 0 && pos < len(cols) {
				cols[pos] = name
			}
		}
		out.Columns = cols
		for _, r := range res.Rows {
			row := make([]string, len(r))
			for j, d := range r {
				row[j] = d.String()
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// WorkloadOptions configures the Rags-like generator via the paper's knobs.
type WorkloadOptions struct {
	// Count is the number of statements (default 100).
	Count int
	// UpdatePct is the percentage of insert/update/delete statements.
	UpdatePct int
	// Complex allows up to 8 tables per query (default Simple: 2).
	Complex bool
	// Seed defaults to 1.
	Seed int64
}

// GenerateWorkload produces a workload's SQL statements over this system's
// database, sampling predicate constants from the live data.
func (s *System) GenerateWorkload(opts WorkloadOptions) ([]string, error) {
	if opts.Count == 0 {
		opts.Count = 100
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	cfg := workload.Config{
		Count:     opts.Count,
		UpdatePct: opts.UpdatePct,
		Seed:      opts.Seed,
	}
	if opts.Complex {
		cfg.Complexity = workload.Complex
	}
	w, err := workload.Generate(s.db, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(w.Statements))
	for i, stmt := range w.Statements {
		out[i] = stmt.SQL()
	}
	return out, nil
}

// TPCDOrigWorkload returns the 17-query TPCD-ORIG workload's SQL.
func (s *System) TPCDOrigWorkload() ([]string, error) {
	w, err := workload.TPCDOrig(s.db.Schema)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(w.Statements))
	for i, stmt := range w.Statements {
		out[i] = stmt.SQL()
	}
	return out, nil
}

// RunMaintenance applies the SQL Server 7.0-style maintenance policy once:
// refresh statistics on heavily modified tables, drop over-updated
// drop-listed statistics. Returns (tables refreshed, statistics dropped).
// With resilience enabled the pass routes through the Guard (breaker-gated,
// failure-tolerant); use RunMaintenanceCtx for the full report.
func (s *System) RunMaintenance() (int, int, error) {
	rep, err := s.RunMaintenanceCtx(context.Background())
	if err != nil {
		return 0, 0, err
	}
	return rep.TablesRefreshed, rep.StatsDropped, nil
}
