package autostats

import (
	"context"
	"time"

	"autostats/internal/resilience"
	"autostats/internal/stats"
)

// ResilienceOptions configures the resilience stack enabled by
// System.EnableResilience. The zero value selects sensible defaults.
type ResilienceOptions struct {
	// Retries is how many times a transiently failing statistic build is
	// retried after its first attempt (CLI -retries). 0 means 2 (three
	// attempts total); negative disables retries.
	Retries int
	// RetryBaseDelay is the backoff before the first retry, doubling per
	// attempt with deterministic seeded jitter. 0 means 10ms.
	RetryBaseDelay time.Duration
	// BuildTimeout bounds each individual statistic build/refresh attempt;
	// an attempt that exceeds it is treated as a transient failure (retried,
	// then degraded). 0 disables the per-attempt bound.
	BuildTimeout time.Duration
	// BreakerThreshold trips a table's circuit breaker after this many
	// consecutive build failures. 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker rejects builds before
	// admitting a half-open probe. 0 means 30s.
	BreakerCooldown time.Duration
	// Seed drives all deterministic jitter; 0 is a valid seed.
	Seed int64
}

// EnableResilience turns on the resilience layer: every statistic build and
// refresh triggered by tuning, the on-the-fly policy, or maintenance goes
// through per-table circuit breakers, capped-exponential-backoff retry of
// transient failures, and the per-build timeout. When a statistic cannot be
// provided, queries still plan and execute — the optimizer falls back to the
// default magic-number selectivities (§4/§6) for exactly the affected
// predicates and tags the plan Degraded; plans recover to non-degraded
// automatically once builds succeed again. Calling it again replaces the
// stack (breaker state resets).
func (s *System) EnableResilience(opts ResilienceOptions) {
	s.mu.Lock()
	defer s.mu.Unlock()
	retry := resilience.DefaultRetry(opts.Seed)
	switch {
	case opts.Retries > 0:
		retry.MaxAttempts = opts.Retries + 1
	case opts.Retries < 0:
		retry.MaxAttempts = 1
	}
	if opts.RetryBaseDelay > 0 {
		retry.BaseDelay = opts.RetryBaseDelay
	}
	g := resilience.NewGuard(s.mgr, resilience.GuardConfig{
		Retry: retry,
		Breaker: resilience.BreakerConfig{
			FailureThreshold: opts.BreakerThreshold,
			Cooldown:         opts.BreakerCooldown,
		},
		BuildTimeout: opts.BuildTimeout,
		Seed:         opts.Seed,
	})
	s.guard = g
	s.auto.Guard = g
}

// DisableResilience detaches the resilience layer; statistics failures abort
// operations again, as before EnableResilience.
func (s *System) DisableResilience() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.guard = nil
	s.auto.Guard = nil
}

// ResilienceEnabled reports whether the resilience layer is active.
func (s *System) ResilienceEnabled() bool { return s.guard != nil }

// BreakerStates snapshots the per-table circuit breakers (nil when the
// resilience layer is disabled or no table has been gated yet).
func (s *System) BreakerStates() []resilience.TableState {
	if s.guard == nil {
		return nil
	}
	return s.guard.Breakers().States()
}

// RunMaintenanceCtx applies the current maintenance policy once, honoring
// cancellation between tables and statistics. With resilience enabled the
// pass skips open-breaker tables and tolerates per-table failures (recorded
// in the report) instead of aborting.
func (s *System) RunMaintenanceCtx(ctx context.Context) (stats.MaintenanceReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.guard != nil {
		return s.guard.MaintainCtx(ctx, s.maint)
	}
	return s.mgr.RunMaintenanceCtx(ctx, s.maint)
}
