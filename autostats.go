// Package autostats is an automated statistics-management toolkit for
// cost-based query optimizers, reproducing Chaudhuri & Narasayya,
// "Automating Statistics Management for Query Optimizers" (ICDE 2000).
//
// It bundles a complete substrate — an in-memory relational engine with a
// histogram-driven cost-based optimizer, a skewed TPC-D data generator and a
// Rags-like workload generator — with the paper's contribution: algorithms
// that decide WHICH statistics an optimizer actually needs.
//
//   - Candidate statistics (§7.1): prune the exponential space of
//     syntactically relevant single- and multi-column statistics.
//   - MNSA (§4): magic number sensitivity analysis — decide whether more
//     statistics can matter without building them, by re-optimizing with
//     missing-statistics selectivities pinned to ε and 1−ε.
//   - MNSA/D (§5.1): interleave creation with non-essential detection.
//   - Shrinking Set (§5.2): reduce to a guaranteed essential set.
//   - Policies (§6): on-the-fly auto-tuning, offline tuning, drop-lists,
//     aging, and SQL Server 7.0-style update/drop maintenance.
//
// Quickstart:
//
//	sys, _ := autostats.GenerateTPCD(autostats.TPCDOptions{Skew: 2})
//	rep, _ := sys.TuneWorkload([]string{
//	    "SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 45",
//	}, autostats.TuneOptions{})
//	fmt.Println(rep.Created)
package autostats

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"autostats/internal/catalog"
	"autostats/internal/core"
	"autostats/internal/datagen"
	"autostats/internal/executor"
	"autostats/internal/feedback"
	"autostats/internal/histogram"
	"autostats/internal/obs"
	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/resilience"
	"autostats/internal/sqlparser"
	"autostats/internal/stats"
	"autostats/internal/storage"
)

// System is a database with its statistics manager, optimizer and executor —
// the unit everything else operates on, and the unit the stats-as-a-service
// server (internal/server) isolates per tenant.
//
// Concurrency model (the server's default usage pattern):
//
//   - Exec, Explain, Statistics, PlanCacheStats, BreakerStates and the
//     feedback inspectors may be called from any number of goroutines at
//     once. Exec and Explain borrow a per-call optimizer session clone from
//     an internal pool over the concurrency-safe statistics manager, shared
//     plan cache and internally locked storage layer.
//   - TuneQuery, TuneWorkload, ProcessStatement and RunMaintenance are
//     serialized on an internal mutex (they mutate the shared tuning session
//     and policy state); concurrent callers queue. TuneWorkload still fans
//     out INSIDE the run via TuneOptions.Parallelism.
//   - Configuration methods (SetPlanCacheCapacity, EnableFeedback,
//     EnableResilience, SetAgingWindow, SetBuildParallelism,
//     EnableIncrementalMaintenance, …) follow the usual configure-then-serve
//     server pattern: call them before the System is shared across
//     goroutines, not while requests are in flight.
type System struct {
	db    *storage.Database
	mgr   *stats.Manager
	sess  *optimizer.Session
	ex    *executor.Executor
	auto  *core.AutoManager
	cache *optimizer.PlanCache
	fb    *feedback.Ledger
	maint stats.MaintenancePolicy
	// guard is the resilience stack installed by EnableResilience (nil when
	// disabled); see resilience.go.
	guard *resilience.Guard

	// mu serializes the mutating entry points: tuning, the on-the-fly
	// policy, and maintenance. The read-mostly statement path (Exec,
	// Explain) does not take it — it borrows session clones from sessions.
	mu       sync.Mutex
	sessions *sessionPool
}

// DefaultPlanCacheCapacity is the plan cache size a new System starts with.
const DefaultPlanCacheCapacity = 1024

// TPCDOptions configures the skewed TPC-D generator ([17] in the paper).
type TPCDOptions struct {
	// Scale multiplies base row counts (1.0 ≈ 8.7k rows total). 0 means 1.
	Scale float64
	// Skew is the Zipfian z parameter for every column, 0 (uniform) to 4.
	Skew float64
	// Mix assigns each column a random skew in [0,4] (TPCD_MIX); overrides
	// Skew.
	Mix bool
	// Seed defaults to 42.
	Seed int64
	// HistogramKind selects "maxdiff" (default) or "equidepth".
	HistogramKind string
	// HistogramBuckets caps histogram buckets (default 200).
	HistogramBuckets int
}

// GenerateTPCD creates a fully loaded skewed TPC-D system.
func GenerateTPCD(opts TPCDOptions) (*System, error) {
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	db, err := datagen.Generate(datagen.Config{
		Scale: opts.Scale, Z: opts.Skew, Mix: opts.Mix, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	kind := histogram.MaxDiff
	switch strings.ToLower(opts.HistogramKind) {
	case "", "maxdiff":
	case "equidepth", "equi-depth":
		kind = histogram.EquiDepth
	default:
		return nil, fmt.Errorf("autostats: unknown histogram kind %q", opts.HistogramKind)
	}
	return newSystem(db, kind, opts.HistogramBuckets), nil
}

func newSystem(db *storage.Database, kind histogram.Kind, buckets int) *System {
	mgr := stats.NewManager(db, kind, buckets)
	sess := optimizer.NewSession(mgr)
	cache := optimizer.NewPlanCache(DefaultPlanCacheCapacity)
	sess.SetPlanCache(cache)
	ex := executor.New(db)
	return &System{
		db: db, mgr: mgr, sess: sess, ex: ex,
		auto:     core.NewAutoManager(sess, ex),
		cache:    cache,
		maint:    stats.DefaultMaintenancePolicy(),
		sessions: newSessionPool(sess.Clone()),
	}
}

// SetPlanCacheCapacity replaces the plan cache with one holding up to n
// plans; n <= 0 disables plan caching. Existing cached plans are discarded.
// Configuration method: do not call while statements are being served.
func (s *System) SetPlanCacheCapacity(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = optimizer.NewPlanCache(n)
	s.sess.SetPlanCache(s.cache)
	s.refreshSessions()
}

// PlanCacheStats reports plan cache effectiveness counters (all zero when
// caching is disabled).
func (s *System) PlanCacheStats() optimizer.PlanCacheStats {
	return s.cache.Stats()
}

// Obs returns the observability registry the system's components report to
// (obs.Default unless redirected on the statistics manager before sessions
// were created). Use it to read counters, take snapshots, or register
// tracers.
func (s *System) Obs() *obs.Registry { return s.sess.Obs() }

// WriteMetrics dumps every metric of the system's registry as "name value"
// text lines — the same format as the CLIs' -metrics flags.
func (s *System) WriteMetrics(w io.Writer) error { return s.sess.Obs().WriteText(w) }

// AddTracer registers a span-event hook on the system's registry; subsequent
// tuning, maintenance and optimization spans emit to it.
func (s *System) AddTracer(t obs.Tracer) { s.sess.Obs().AddTracer(t) }

// Schema returns the underlying schema (read-only use intended).
func (s *System) Schema() *catalog.Schema { return s.db.Schema }

// QueryResult is the outcome of executing one SQL statement.
type QueryResult struct {
	// Columns names the output columns ("table.column"), in position order.
	Columns []string
	// Rows holds the output values rendered as SQL literals.
	Rows [][]string
	// ExecCost is the execution cost in deterministic work units.
	ExecCost float64
	// EstimatedCost is the optimizer's estimate (0 for DML).
	EstimatedCost float64
	// Plan is the executed plan, pretty-printed (empty for DML).
	Plan string
	// Affected counts DML-affected rows.
	Affected int
	// Degraded lists the degraded-mode reasons when the statement was
	// planned without statistics the analysis wanted (resilience enabled,
	// builds failing); empty for healthy plans. The results themselves are
	// exact — only the plan choice leaned on default magic numbers.
	Degraded []string
}

// Exec parses, optimizes and executes one SQL statement. Safe for concurrent
// use: each call optimizes on a pooled session clone over the shared plan
// cache and concurrency-safe statistics manager; DML serializes inside the
// storage layer's per-table locks.
func (s *System) Exec(sql string) (*QueryResult, error) {
	stmt, err := sqlparser.Parse(s.db.Schema, sql)
	if err != nil {
		return nil, err
	}
	sess := s.sessions.get()
	defer s.sessions.put(sess)
	if q, ok := stmt.(*query.Select); ok {
		plan, err := sess.Optimize(q)
		if err != nil {
			return nil, err
		}
		res, err := s.ex.Run(plan)
		if err != nil {
			return nil, err
		}
		return renderResult(res, plan), nil
	}
	res, err := s.ex.RunStatement(sess, stmt)
	if err != nil {
		return nil, err
	}
	return &QueryResult{ExecCost: res.Cost, Affected: res.Affected}, nil
}

// ExecCtx is Exec honoring ctx at phase boundaries: a canceled or expired
// context stops the statement before parse, before optimization and before
// execution. Phases already under way run to completion — the storage layer's
// per-table critical sections are short — so cancellation never leaves a
// half-applied statement. This is the deadline hook the stats-as-a-service
// server uses for its per-request timeouts.
func (s *System) ExecCtx(ctx context.Context, sql string) (*QueryResult, error) {
	stmt, err := sqlparser.Parse(s.db.Schema, sql)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sess := s.sessions.get()
	defer s.sessions.put(sess)
	if q, ok := stmt.(*query.Select); ok {
		plan, err := sess.Optimize(q)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := s.ex.Run(plan)
		if err != nil {
			return nil, err
		}
		return renderResult(res, plan), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := s.ex.RunStatement(sess, stmt)
	if err != nil {
		return nil, err
	}
	return &QueryResult{ExecCost: res.Cost, Affected: res.Affected}, nil
}

func renderResult(res *executor.Result, plan *optimizer.Plan) *QueryResult {
	cols := make([]string, len(res.Cols))
	for name, pos := range res.Cols {
		if pos >= 0 && pos < len(cols) {
			cols[pos] = name
		}
	}
	rows := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		out := make([]string, len(r))
		for j, d := range r {
			out[j] = d.String()
		}
		rows[i] = out
	}
	return &QueryResult{
		Columns:       cols,
		Rows:          rows,
		ExecCost:      res.Cost,
		EstimatedCost: plan.Cost(),
		Plan:          plan.Format(),
	}
}

// Explain returns the chosen plan for a SELECT without executing it. Safe
// for concurrent use (see Exec).
func (s *System) Explain(sql string) (string, error) {
	q, err := sqlparser.ParseSelect(s.db.Schema, sql)
	if err != nil {
		return "", err
	}
	sess := s.sessions.get()
	defer s.sessions.put(sess)
	plan, err := sess.Optimize(q)
	if err != nil {
		return "", err
	}
	return plan.Format(), nil
}

// ExplainCtx is Explain honoring ctx at phase boundaries (see ExecCtx).
func (s *System) ExplainCtx(ctx context.Context, sql string) (string, error) {
	q, err := sqlparser.ParseSelect(s.db.Schema, sql)
	if err != nil {
		return "", err
	}
	if err := ctx.Err(); err != nil {
		return "", err
	}
	sess := s.sessions.get()
	defer s.sessions.put(sess)
	plan, err := sess.Optimize(q)
	if err != nil {
		return "", err
	}
	return plan.Format(), nil
}

// StatInfo describes one existing statistic.
type StatInfo struct {
	ID         string
	Table      string
	Columns    []string
	Rows       int64
	Distinct   int64
	Buckets    int
	InDropList bool
	Updates    int
}

// Statistics lists all existing statistics in ID order.
func (s *System) Statistics() []StatInfo {
	var out []StatInfo
	for _, st := range s.mgr.All() {
		out = append(out, StatInfo{
			ID:         string(st.ID),
			Table:      st.Table,
			Columns:    append([]string(nil), st.Columns...),
			Rows:       st.Data.Rows,
			Distinct:   st.Data.Leading.Distinct,
			Buckets:    len(st.Data.Leading.Buckets),
			InDropList: st.InDropList,
			Updates:    st.UpdateCount,
		})
	}
	return out
}

// CreateStatistic builds a statistic on table(columns...) explicitly.
func (s *System) CreateStatistic(table string, columns ...string) error {
	_, err := s.mgr.Create(table, columns)
	return err
}

// DropStatistic physically removes a statistic.
func (s *System) DropStatistic(table string, columns ...string) bool {
	return s.mgr.Drop(stats.MakeID(table, columns))
}

// SetAgingWindow sets the aging window (§6) in logical ticks: statistics
// physically dropped within the window are not re-created for inexpensive
// queries when tuning with UseAging. Zero disables aging.
func (s *System) SetAgingWindow(ticks int64) {
	s.mgr.AgingWindow = ticks
}

// DefaultMaxFoldFraction is the incremental-maintenance fold bound used when
// EnableIncrementalMaintenance is called with 0.
const DefaultMaxFoldFraction = stats.DefaultMaxFoldFraction

// SetBuildParallelism splits every subsequent statistic build into up to k
// concurrently summarized scan partitions whose partial histograms are merged
// into the final statistic. The merged result is bitwise-identical to a
// single-pass build at any k; values below 1 mean single-pass.
func (s *System) SetBuildParallelism(k int) {
	s.mgr.SetBuildParallelism(k)
}

// BuildParallelism returns the active build partition count (minimum 1).
func (s *System) BuildParallelism() int {
	return s.mgr.BuildParallelism()
}

// EnableIncrementalMaintenance switches statistics refreshes to incremental
// (folding) maintenance: every table keeps a bounded delta log, and a refresh
// folds the logged row modifications into the existing histogram instead of
// rescanning the table, until the folded fraction exceeds maxFoldFraction
// (0 means the default, stats.DefaultMaxFoldFraction) and a full rebuild
// resets the drift.
func (s *System) EnableIncrementalMaintenance(maxFoldFraction float64) error {
	return s.mgr.SetIncrementalMaintenance(stats.FoldConfig{
		Enabled:         true,
		MaxFoldFraction: maxFoldFraction,
	})
}

// DisableIncrementalMaintenance turns folding refreshes off and drops the
// per-table delta logs; every refresh is a full rebuild again.
func (s *System) DisableIncrementalMaintenance() error {
	return s.mgr.SetIncrementalMaintenance(stats.FoldConfig{})
}

// EnableStreamingBuilds routes subsequent full statistic builds through the
// streaming scan seam: the table is read in blocks of blockSize rows under a
// snapshot guard, summarized into partials of at most partitionRows rows,
// and merged — bitwise-identical to the one-shot build, with peak build
// memory bounded by the partition and memBudgetBytes instead of the table
// size. Partials exceeding the budget spill to temp files and are reloaded
// only for the final merge. Zero values pick defaults (blockSize
// storage.DefaultBlockSize, partitionRows stats.DefaultStreamPartitionRows,
// budget unbounded). Sampled builds (when sampling is configured) keep the
// materialized path. Configuration method: call before sharing the System.
func (s *System) EnableStreamingBuilds(blockSize, partitionRows int, memBudgetBytes int64) error {
	return s.mgr.SetStreamingBuild(stats.StreamConfig{
		Enabled:        true,
		BlockSize:      blockSize,
		PartitionRows:  partitionRows,
		MemBudgetBytes: memBudgetBytes,
	})
}

// DisableStreamingBuilds reverts statistic builds to the one-shot
// materialized scan.
func (s *System) DisableStreamingBuilds() error {
	return s.mgr.SetStreamingBuild(stats.StreamConfig{})
}

// StreamingBuilds reports whether streaming builds are enabled.
func (s *System) StreamingBuilds() bool {
	return s.mgr.StreamingBuild().Enabled
}

// CreateIndexedColumnStats builds single-column statistics on every indexed
// column — the "tuned database" baseline of the paper's §1 experiment.
func (s *System) CreateIndexedColumnStats() error {
	for _, ix := range s.db.Schema.Indexes {
		if _, err := s.mgr.Create(ix.Table, []string{ix.Column}); err != nil {
			return err
		}
	}
	return nil
}
