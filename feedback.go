package autostats

import (
	"autostats/internal/feedback"
	"autostats/internal/stats"
)

// FeedbackOptions configures the execution-feedback loop enabled by
// System.EnableFeedback. The zero value selects sensible defaults.
type FeedbackOptions struct {
	// LedgerCapacity caps the number of distinct (table, columns, predicate
	// signature) entries the feedback ledger keeps (LRU-evicted beyond it).
	// 0 means feedback.DefaultCapacity.
	LedgerCapacity int
	// MinObservations is how many observations an entry needs before its
	// correction is applied, its q-error feeds maintenance, or a drop is
	// confirmed. 0 means 2.
	MinObservations int64
	// MaxCorrection clamps learned correction factors into
	// [1/MaxCorrection, MaxCorrection]. 0 means feedback.DefaultMaxCorrection.
	MaxCorrection float64
	// QErrorThreshold is the maintenance trigger: a maintained statistic
	// whose observed q-error exceeds it is refreshed even when the row-mod
	// counter is quiet. 0 means stats.DefaultQErrorThreshold.
	QErrorThreshold float64
	// DisableCorrections captures actual cardinalities and drives feedback
	// maintenance without feeding learned corrections back into the
	// optimizer's selectivity estimates.
	DisableCorrections bool
}

// EnableFeedback turns on the execution-feedback loop: the executor captures
// per-plan-node actual cardinalities into a ledger of est-vs-actual q-error
// summaries; the optimizer applies learned selectivity corrections for
// matching predicate signatures (unless disabled); and maintenance
// (RunMaintenance / the on-the-fly policy) refreshes statistics whose
// observed q-error exceeds the threshold and confirms drops of statistics
// that stayed accurate. Calling it again replaces the ledger and forgets all
// accumulated evidence.
//
// Enable feedback before TuneWorkload spawns parallel workers; the ledger
// itself is safe for concurrent use.
func (s *System) EnableFeedback(opts FeedbackOptions) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.refreshSessions()
	minObs := opts.MinObservations
	if minObs <= 0 {
		minObs = 2
	}
	led := feedback.NewLedger(feedback.ManagerVersions(s.mgr), feedback.Config{
		Capacity:        opts.LedgerCapacity,
		MinObservations: minObs,
		MaxCorrection:   opts.MaxCorrection,
		Obs:             s.Obs(),
	})
	s.fb = led
	s.ex.SetFeedback(led)
	if opts.DisableCorrections {
		s.sess.SetCorrections(nil)
	} else {
		s.sess.SetCorrections(led)
	}
	s.mgr.SetFeedbackProvider(led)

	p := stats.DefaultFeedbackPolicy()
	if opts.QErrorThreshold > 0 {
		p.QErrorThreshold = opts.QErrorThreshold
	}
	p.FeedbackMinObservations = minObs
	s.maint = p
	s.auto.Policy = p
}

// DisableFeedback detaches the feedback loop entirely: capture, corrections
// and feedback-driven maintenance all stop, and the maintenance policy
// reverts to the plain counter-driven default.
func (s *System) DisableFeedback() {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.refreshSessions()
	s.fb = nil
	s.ex.SetFeedback(nil)
	s.sess.SetCorrections(nil)
	s.mgr.SetFeedbackProvider(nil)
	s.maint = stats.DefaultMaintenancePolicy()
	s.auto.Policy = s.maint
}

// FeedbackEnabled reports whether the feedback loop is active.
func (s *System) FeedbackEnabled() bool { return s.fb != nil }

// FeedbackStats returns the ledger's aggregate counters (zero value when
// feedback is disabled).
func (s *System) FeedbackStats() feedback.LedgerStats {
	if s.fb == nil {
		return feedback.LedgerStats{}
	}
	return s.fb.Stats()
}

// FeedbackEntries snapshots the ledger's per-predicate evidence, worst
// current q-errors first (nil when feedback is disabled).
func (s *System) FeedbackEntries() []feedback.EntrySnapshot {
	if s.fb == nil {
		return nil
	}
	return s.fb.Entries()
}

// RunMaintenanceReport applies the system's current maintenance policy once
// (the feedback-enabled policy after EnableFeedback) and returns the full
// report, including feedback-triggered refreshes and confirmed drops.
func (s *System) RunMaintenanceReport() (stats.MaintenanceReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr.RunMaintenance(s.maint)
}
