package autostats

import (
	"strings"
	"testing"
)

func testSystem(t testing.TB) *System {
	t.Helper()
	sys, err := GenerateTPCD(TPCDOptions{Scale: 0.25, Skew: 2})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestGenerateTPCDOptions(t *testing.T) {
	if _, err := GenerateTPCD(TPCDOptions{HistogramKind: "equidepth"}); err != nil {
		t.Errorf("equidepth: %v", err)
	}
	if _, err := GenerateTPCD(TPCDOptions{HistogramKind: "vbar"}); err == nil {
		t.Error("expected error for unknown histogram kind")
	}
	sys, err := GenerateTPCD(TPCDOptions{Mix: true, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Schema().TableNames()); got != 8 {
		t.Errorf("schema tables = %d", got)
	}
}

func TestExecQueryAndDML(t *testing.T) {
	sys := testSystem(t)
	res, err := sys.Exec("SELECT * FROM region WHERE r_name = 'ASIA'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.ExecCost <= 0 || res.Plan == "" {
		t.Errorf("query result: rows=%d cost=%v", len(res.Rows), res.ExecCost)
	}
	if len(res.Columns) != 3 {
		t.Errorf("region has 3 columns, got %v", res.Columns)
	}

	ins, err := sys.Exec("INSERT INTO region VALUES (9, 'ATLANTIS', 'x')")
	if err != nil {
		t.Fatal(err)
	}
	if ins.Affected != 1 {
		t.Errorf("insert affected = %d", ins.Affected)
	}
	del, err := sys.Exec("DELETE FROM region WHERE r_regionkey = 9")
	if err != nil {
		t.Fatal(err)
	}
	if del.Affected != 1 {
		t.Errorf("delete affected = %d", del.Affected)
	}
	if _, err := sys.Exec("SELECT nothing FROM nowhere"); err == nil {
		t.Error("expected error for bad SQL")
	}
}

func TestExplain(t *testing.T) {
	sys := testSystem(t)
	plan, err := sys.Explain("SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Join") {
		t.Errorf("plan missing join:\n%s", plan)
	}
}

func TestTuneQueryLifecycle(t *testing.T) {
	sys := testSystem(t)
	rep, err := sys.TuneQuery("SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 45", TuneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Created) == 0 || rep.OptimizerCalls == 0 || rep.CreationCostUnits <= 0 {
		t.Errorf("tune report: %+v", rep)
	}
	infos := sys.Statistics()
	if len(infos) != len(rep.Created) {
		t.Errorf("Statistics() lists %d, created %d", len(infos), len(rep.Created))
	}
	for _, si := range infos {
		if si.Rows <= 0 || si.Buckets <= 0 {
			t.Errorf("stat info incomplete: %+v", si)
		}
	}
}

func TestTuneWorkloadWithShrink(t *testing.T) {
	sys := testSystem(t)
	sqls, err := sys.GenerateWorkload(WorkloadOptions{Count: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.TuneWorkload(sqls, TuneOptions{Shrink: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Essential == nil {
		t.Error("Shrink should produce an essential set (possibly empty)")
	}
	if len(rep.Essential)+len(rep.DropListed) != len(sys.Statistics()) {
		t.Errorf("essential %d + droplisted %d != stats %d",
			len(rep.Essential), len(rep.DropListed), len(sys.Statistics()))
	}
}

func TestCreateDropStatistic(t *testing.T) {
	sys := testSystem(t)
	if err := sys.CreateStatistic("orders", "o_totalprice"); err != nil {
		t.Fatal(err)
	}
	if len(sys.Statistics()) != 1 {
		t.Error("statistic not visible")
	}
	if !sys.DropStatistic("orders", "o_totalprice") {
		t.Error("drop failed")
	}
	if sys.DropStatistic("orders", "o_totalprice") {
		t.Error("double drop should fail")
	}
	if err := sys.CreateStatistic("orders", "nope"); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestProcessStatementOnTheFly(t *testing.T) {
	sys := testSystem(t)
	res, err := sys.ProcessStatement("SELECT * FROM orders, customer WHERE o_custkey = c_custkey AND o_totalprice > 400000")
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecCost <= 0 {
		t.Error("no cost charged")
	}
	if len(sys.Statistics()) == 0 {
		t.Error("on-the-fly processing should create statistics")
	}
	if _, err := sys.ProcessStatement("INSERT INTO region VALUES (9, 'X', 'c')"); err != nil {
		t.Fatal(err)
	}
}

func TestTPCDOrigWorkloadFacade(t *testing.T) {
	sys := testSystem(t)
	sqls, err := sys.TPCDOrigWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if len(sqls) != 17 {
		t.Errorf("TPCD-ORIG has 17 queries, got %d", len(sqls))
	}
}

func TestCreateIndexedColumnStatsFacade(t *testing.T) {
	sys := testSystem(t)
	if err := sys.CreateIndexedColumnStats(); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Statistics()); got != 13 {
		t.Errorf("expected 13 indexed-column statistics, got %d", got)
	}
}

func TestRunMaintenanceFacade(t *testing.T) {
	sys := testSystem(t)
	if err := sys.CreateStatistic("region", "r_name"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := sys.Exec("INSERT INTO region VALUES (9, 'X', 'c')"); err != nil {
			t.Fatal(err)
		}
	}
	refreshed, dropped, err := sys.RunMaintenance()
	if err != nil {
		t.Fatal(err)
	}
	if refreshed != 1 || dropped != 0 {
		t.Errorf("maintenance: refreshed=%d dropped=%d", refreshed, dropped)
	}
}
