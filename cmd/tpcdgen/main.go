// Command tpcdgen generates a skewed TPC-D database and writes it as
// pipe-delimited .tbl files — the Go counterpart of the paper's modified
// dbgen ([17]: "TPC-D Data Generation with Skew"). Every non-key column is
// drawn from a Zipfian distribution with parameter z between 0 (uniform)
// and 4 (highly skewed); -mix assigns each column its own random z.
//
// Usage:
//
//	tpcdgen -z 2 -scale 1 -o ./tpcd_z2
//	tpcdgen -mix -seed 7 -o ./tpcd_mix
package main

import (
	"flag"
	"fmt"
	"os"

	"autostats/internal/datagen"
)

func main() {
	var (
		z     = flag.Float64("z", 0, "Zipfian skew parameter for all columns (0..4)")
		mix   = flag.Bool("mix", false, "assign each column a random z in [0,4] (overrides -z)")
		scale = flag.Float64("scale", 1, "scale factor (1.0 = lineitem 6000 rows)")
		seed  = flag.Int64("seed", 42, "generator seed")
		out   = flag.String("o", "tpcd", "output directory for .tbl files")
	)
	flag.Parse()

	if *z < 0 || *z > 4 {
		fmt.Fprintln(os.Stderr, "tpcdgen: -z must be between 0 and 4")
		os.Exit(2)
	}
	db, err := datagen.Generate(datagen.Config{Scale: *scale, Z: *z, Mix: *mix, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpcdgen:", err)
		os.Exit(1)
	}
	if err := datagen.WriteTbl(db, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tpcdgen:", err)
		os.Exit(1)
	}
	for _, name := range db.Schema.TableNames() {
		td, err := db.Table(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tpcdgen:", err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %7d rows -> %s/%s.tbl\n", name, td.RowCount(), *out, name)
	}
}
