// Command tpcdgen generates a skewed TPC-D database and writes it as
// pipe-delimited .tbl files — the Go counterpart of the paper's modified
// dbgen ([17]: "TPC-D Data Generation with Skew"). Every non-key column is
// drawn from a Zipfian distribution with parameter z between 0 (uniform)
// and 4 (highly skewed); -mix assigns each column its own random z.
//
// SIGINT/SIGTERM cancel generation: an interrupted run removes any .tbl
// files it already wrote, so a partial dataset is never left behind to be
// mistaken for a complete one.
//
// Usage:
//
//	tpcdgen -z 2 -scale 1 -o ./tpcd_z2
//	tpcdgen -mix -seed 7 -o ./tpcd_mix
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"autostats/internal/datagen"
)

func main() {
	var (
		z     = flag.Float64("z", 0, "Zipfian skew parameter for all columns (0..4)")
		mix   = flag.Bool("mix", false, "assign each column a random z in [0,4] (overrides -z)")
		scale = flag.Float64("scale", 1, "scale factor (1.0 = lineitem 6000 rows)")
		seed  = flag.Int64("seed", 42, "generator seed")
		out   = flag.String("o", "tpcd", "output directory for .tbl files")
	)
	flag.Parse()

	if *z < 0 || *z > 4 {
		fmt.Fprintln(os.Stderr, "tpcdgen: -z must be between 0 and 4")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	db, err := datagen.GenerateCtx(ctx, datagen.Config{Scale: *scale, Z: *z, Mix: *mix, Seed: *seed})
	if err != nil {
		fatal(ctx, err)
	}
	if err := datagen.WriteTblCtx(ctx, db, *out); err != nil {
		fatal(ctx, err)
	}
	for _, name := range db.Schema.TableNames() {
		td, err := db.Table(name)
		if err != nil {
			fatal(ctx, err)
		}
		fmt.Printf("%-10s %7d rows -> %s/%s.tbl\n", name, td.RowCount(), *out, name)
	}
}

func fatal(ctx context.Context, err error) {
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "tpcdgen: interrupted; partial output removed")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "tpcdgen:", err)
	os.Exit(1)
}
