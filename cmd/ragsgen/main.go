// Command ragsgen generates stochastic SQL workloads over a skewed TPC-D
// database, in the spirit of the Rags tool the paper uses for its §8
// experiments, with the paper's knobs: update percentage (0/25/50),
// complexity (Simple = max 2 tables, Complex = max 8) and statement count.
//
// Usage:
//
//	ragsgen -workload U25-C-1000 -db TPCD_2 -o workload.sql
//	ragsgen -workload U0-S-100 -db TPCD_MIX -seed 7
//
// The output is one SQL statement per line and loads back with statsadvisor.
// The database the workload will run against must be generated with the
// SAME -db/-scale/-seed so sampled predicate constants match the data.
//
// SIGINT/SIGTERM cancel generation. With -o the workload is written to a
// temporary file in the target directory and renamed into place only once
// complete, so an interrupted run never leaves a partial workload file.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"autostats/internal/datagen"
	"autostats/internal/workload"
)

func main() {
	var (
		wlName  = flag.String("workload", "U25-C-100", "workload name: U<updatePct>-<S|C>-<count>")
		dbName  = flag.String("db", "TPCD_2", "database: TPCD_0 | TPCD_2 | TPCD_4 | TPCD_MIX")
		scale   = flag.Float64("scale", 1, "database scale factor")
		dbSeed  = flag.Int64("db-seed", 42, "database generator seed")
		seed    = flag.Int64("seed", 1, "workload generator seed")
		outPath = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg, err := datagen.ConfigByName(*dbName)
	if err != nil {
		fatal(ctx, err)
	}
	cfg.Scale = *scale
	cfg.Seed = *dbSeed
	db, err := datagen.GenerateCtx(ctx, cfg)
	if err != nil {
		fatal(ctx, err)
	}
	wcfg, err := workload.ConfigByName(*wlName, *seed)
	if err != nil {
		fatal(ctx, err)
	}
	w, err := workload.Generate(db, wcfg)
	if err != nil {
		fatal(ctx, err)
	}
	if err := ctx.Err(); err != nil {
		fatal(ctx, err)
	}

	if *outPath == "" {
		if err := w.Save(os.Stdout); err != nil {
			fatal(ctx, err)
		}
	} else if err := saveAtomic(w, *outPath); err != nil {
		fatal(ctx, err)
	}
	fmt.Fprintf(os.Stderr, "ragsgen: %d statements (%d queries, %d DML) for %s on %s\n",
		len(w.Statements), len(w.Queries()), len(w.UpdateStatements()), w.Name, *dbName)
}

// saveAtomic writes the workload to a temp file next to path and renames it
// into place, removing the temp file on any failure so a crashed or
// interrupted run leaves either the complete file or nothing.
func saveAtomic(w *workload.Workload, path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := w.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func fatal(ctx context.Context, err error) {
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "ragsgen: interrupted; no partial output written")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "ragsgen:", err)
	os.Exit(1)
}
