// Command ragsgen generates stochastic SQL workloads over a skewed TPC-D
// database, in the spirit of the Rags tool the paper uses for its §8
// experiments, with the paper's knobs: update percentage (0/25/50),
// complexity (Simple = max 2 tables, Complex = max 8) and statement count.
//
// Usage:
//
//	ragsgen -workload U25-C-1000 -db TPCD_2 -o workload.sql
//	ragsgen -workload U0-S-100 -db TPCD_MIX -seed 7
//
// The output is one SQL statement per line and loads back with statsadvisor.
// The database the workload will run against must be generated with the
// SAME -db/-scale/-seed so sampled predicate constants match the data.
package main

import (
	"flag"
	"fmt"
	"os"

	"autostats/internal/datagen"
	"autostats/internal/workload"
)

func main() {
	var (
		wlName  = flag.String("workload", "U25-C-100", "workload name: U<updatePct>-<S|C>-<count>")
		dbName  = flag.String("db", "TPCD_2", "database: TPCD_0 | TPCD_2 | TPCD_4 | TPCD_MIX")
		scale   = flag.Float64("scale", 1, "database scale factor")
		dbSeed  = flag.Int64("db-seed", 42, "database generator seed")
		seed    = flag.Int64("seed", 1, "workload generator seed")
		outPath = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	cfg, err := datagen.ConfigByName(*dbName)
	if err != nil {
		fatal(err)
	}
	cfg.Scale = *scale
	cfg.Seed = *dbSeed
	db, err := datagen.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	wcfg, err := workload.ConfigByName(*wlName, *seed)
	if err != nil {
		fatal(err)
	}
	w, err := workload.Generate(db, wcfg)
	if err != nil {
		fatal(err)
	}
	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := w.Save(out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ragsgen: %d statements (%d queries, %d DML) for %s on %s\n",
		len(w.Statements), len(w.Queries()), len(w.UpdateStatements()), w.Name, *dbName)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ragsgen:", err)
	os.Exit(1)
}
