// Command experiments regenerates every table and figure of the paper's §8
// evaluation (plus the §1 motivating experiment and the DESIGN.md ablations)
// on freshly generated skewed TPC-D databases.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig4 -workload U0-C-100 -scale 0.5 -seed 1
//
// Experiments: intro, fig3, fig4, fig4sc, table1, parallel, feedback,
// ablation-t, ablation-eps, ablation-next, all.
//
// -feedback runs the execution-feedback experiment in addition to whatever
// -exp selects; -benchjson writes the PR-3 machine-readable benchmark bundle
// (serial vs parallel tuning, plan-cache hit rate, feedback demo + capture
// overhead) to the given path, e.g. BENCH_PR3.json.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"autostats/internal/bench"
	"autostats/internal/core"
	"autostats/internal/datagen"
	"autostats/internal/obs"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: intro|fig3|fig4|fig4sc|table1|parallel|feedback|ablation-t|ablation-eps|ablation-next|ablation-cov|ablation-hist|ablation-sample|all")
		parallel   = flag.Int("parallel", 0, "worker count for the parallel experiment (0 = GOMAXPROCS)")
		feedback   = flag.Bool("feedback", false, "also run the execution-feedback experiment (in addition to -exp)")
		benchOut   = flag.String("benchjson", "", "write the PR-3 benchmark bundle as JSON to this path (e.g. BENCH_PR3.json)")
		bench6Out  = flag.String("benchjson6", "", "write the PR-6 plan-cache bundle as JSON to this path (e.g. BENCH_PR6.json); fails if the repeated-template hit rate is 0")
		bench7Out  = flag.String("benchjson7", "", "write the PR-7 parallel-build bundle as JSON to this path (e.g. BENCH_PR7.json); fails if the 4-partition build speedup is <= 1x or any merged statistic differs from the single-pass build")
		bench8Out  = flag.String("benchjson8", "", "write the PR-8 stats-as-a-service bundle as JSON to this path (e.g. BENCH_PR8.json); fails on any swarm protocol error, a missing overload fast-fail, or a dropped request during drain")
		bench9Out  = flag.String("benchjson9", "", "write the PR-9 streaming-build bundle as JSON to this path (e.g. BENCH_PR9.json); fails if peak build memory is not flat across a 10x table growth, the spill path never ran, or any streamed histogram differs from its single-pass reference")
		bench10Out = flag.String("benchjson10", "", "write the PR-10 network-robustness bundle as JSON to this path (e.g. BENCH_PR10.json); runs the full swarm through the 10ms/1% chaos proxy and fails on any hang, leaked goroutine, or dropped request during drain")
		swarmN     = flag.Int("swarm-sessions", 1000, "concurrent client sessions for -benchjson8 / -swarm-addr")
		swarmTen   = flag.Int("swarm-tenants", 8, "tenants for -benchjson8 / -swarm-addr")
		swarmAddr  = flag.String("swarm-addr", "", "run the client swarm against an EXTERNAL autostatsd at this address (instead of an in-process server) and exit")
		scale      = flag.Float64("scale", 0.5, "database scale factor (1.0 ≈ 8.7k rows)")
		seed       = flag.Int64("seed", 1, "workload generator seed")
		wl         = flag.String("workload", "", "workload name (default depends on experiment, e.g. U25-C-100 for table1)")
		dbs        = flag.String("dbs", strings.Join(datagen.DatabaseNames(), ","), "comma-separated database list")
		introDB    = flag.String("intro-db", "TPCD_2", "database for the intro experiment")
		introScl   = flag.Float64("intro-scale", 1.0, "scale for the intro experiment")
		metrics    = flag.Bool("metrics", false, "dump the observability counters after the experiments")
		traceTo    = flag.String("trace", "", "write a JSONL span trace of the experiments to this file")
		timeout    = flag.Duration("timeout", 0, "abort the experiments after this long (0 = no deadline)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var tracer *obs.JSONLTracer
	var traceFile *os.File
	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		traceFile = f
		tracer = obs.NewJSONLTracer(f)
		obs.Default.AddTracer(tracer)
	}

	// External-swarm mode: drive an already-running autostatsd and exit —
	// the CI server-smoke job uses this against a daemon it SIGTERMs.
	if *swarmAddr != "" {
		if err := runExternalSwarm(ctx, *swarmAddr, *swarmN, *swarmTen); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: swarm: %v\n", err)
			os.Exit(1)
		}
		return
	}

	dbList := strings.Split(*dbs, ",")
	// On failure or interrupt the remaining experiments are skipped, but the
	// -metrics dump and -trace file are still written before exiting non-zero.
	var runErr error
	run := func(name string, fn func() error) {
		forced := name == "feedback" && *feedback
		if *exp != "all" && *exp != name && !forced {
			return
		}
		if runErr != nil {
			return
		}
		if err := ctx.Err(); err != nil {
			runErr = err
			return
		}
		if err := fn(); err != nil {
			runErr = fmt.Errorf("experiment %s failed: %w", name, err)
		}
	}

	run("intro", func() error { return runIntro(*introDB, *introScl) })
	run("fig3", func() error { return runFig3(dbList, orDefault(*wl, "U0-C-100"), *scale, *seed) })
	run("fig4", func() error { return runFig4(dbList, orDefault(*wl, "U0-C-100"), *scale, *seed, false) })
	run("fig4sc", func() error { return runFig4(dbList, orDefault(*wl, "U0-C-100"), *scale, *seed, true) })
	run("table1", func() error { return runTable1(dbList, orDefault(*wl, "U25-C-100"), *scale, *seed) })
	run("parallel", func() error { return runParallel(dbList, orDefault(*wl, "U0-C-100"), *scale, *seed, *parallel) })
	run("ablation-t", func() error { return runAblationT(orDefault(*wl, "U0-C-60"), *scale, *seed) })
	run("ablation-eps", func() error { return runAblationEps(orDefault(*wl, "U0-C-60"), *scale, *seed) })
	run("ablation-next", func() error { return runAblationNext(orDefault(*wl, "U0-C-60"), *scale, *seed) })
	run("ablation-cov", func() error { return runAblationCov(orDefault(*wl, "U0-C-60"), *scale, *seed) })
	run("ablation-hist", func() error { return runAblationHist(orDefault(*wl, "U0-C-60"), *scale, *seed) })
	run("ablation-sample", func() error { return runAblationSample(orDefault(*wl, "U0-C-60"), *scale, *seed) })
	run("feedback", func() error { return runFeedback(*scale) })

	if *benchOut != "" && runErr == nil {
		if err := writeBenchJSON(*benchOut, orDefault(*wl, "U0-C-100"), *scale, *seed, *parallel); err != nil {
			runErr = fmt.Errorf("benchjson: %w", err)
		} else {
			fmt.Printf("benchmark bundle written to %s\n", *benchOut)
		}
	}
	if *bench6Out != "" && runErr == nil {
		if err := writeBench6JSON(*bench6Out, orDefault(*wl, "U0-C-100"), *scale, *seed, *parallel); err != nil {
			runErr = fmt.Errorf("benchjson6: %w", err)
		} else {
			fmt.Printf("benchmark bundle written to %s\n", *bench6Out)
		}
	}

	if *bench7Out != "" && runErr == nil {
		if err := writeBench7JSON(*bench7Out, *scale); err != nil {
			runErr = fmt.Errorf("benchjson7: %w", err)
		} else {
			fmt.Printf("benchmark bundle written to %s\n", *bench7Out)
		}
	}

	if *bench8Out != "" && runErr == nil {
		if err := writeBench8JSON(*bench8Out, *scale, *swarmN, *swarmTen); err != nil {
			runErr = fmt.Errorf("benchjson8: %w", err)
		} else {
			fmt.Printf("benchmark bundle written to %s\n", *bench8Out)
		}
	}

	if *bench9Out != "" && runErr == nil {
		if err := writeBench9JSON(*bench9Out, *scale); err != nil {
			runErr = fmt.Errorf("benchjson9: %w", err)
		} else {
			fmt.Printf("benchmark bundle written to %s\n", *bench9Out)
		}
	}

	if *bench10Out != "" && runErr == nil {
		if err := writeBench10JSON(*bench10Out, *scale, *swarmN, *swarmTen); err != nil {
			runErr = fmt.Errorf("benchjson10: %w", err)
		} else {
			fmt.Printf("benchmark bundle written to %s\n", *bench10Out)
		}
	}

	if *metrics {
		fmt.Printf("\nmetrics:\n")
		if err := obs.Default.WriteText(os.Stdout); err != nil && runErr == nil {
			runErr = err
		}
	}
	if tracer != nil {
		if err := tracer.Err(); err != nil && runErr == nil {
			runErr = fmt.Errorf("trace: %w", err)
		}
		if err := traceFile.Close(); err != nil && runErr == nil {
			runErr = err
		}
		fmt.Printf("trace written to %s\n", *traceTo)
	}
	if runErr != nil {
		if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "experiments: interrupted: %v\n", runErr)
		} else {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", runErr)
		}
		os.Exit(1)
	}
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

func header(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

func runIntro(db string, scale float64) error {
	header(fmt.Sprintf("§1 motivating experiment — %s, scale %.2f (paper: 15/17 plans change, all improve)", db, scale))
	res, err := bench.Intro(db, scale)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-9s %14s %14s %10s\n", "query", "changed", "exec before", "exec after", "delta%")
	for _, r := range res.Rows {
		delta := bench.PctIncrease(r.ExecBefore, r.ExecAfter)
		fmt.Printf("Q%-5d %-9v %14.0f %14.0f %9.1f%%\n", r.Query, r.PlanChanged, r.ExecBefore, r.ExecAfter, delta)
	}
	fmt.Printf("plans changed: %d/17, improved (cost not worse): %d\n", res.Changed, res.Improved)
	return nil
}

func runFig3(dbs []string, wl string, scale float64, seed int64) error {
	header(fmt.Sprintf("Figure 3 — Candidate Statistics vs Exhaustive — workload %s, scale %.2f (paper: 50-80%% creation reduction, ≤3%% exec increase)", wl, scale))
	fmt.Printf("%-10s %6s %6s %14s %14s %12s %12s %10s\n",
		"db", "exh#", "cand#", "exh units", "cand units", "reduction%", "wall-red%", "exec+%")
	for _, db := range dbs {
		row, err := bench.Figure3(db, wl, scale, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %6d %6d %14.0f %14.0f %11.1f%% %11.1f%% %9.1f%%\n",
			row.DB, row.ExhaustiveCount, row.CandidateCount, row.ExhaustiveUnits, row.CandidateUnits,
			row.CreationReductionPct, row.WallReductionPct, row.ExecIncreasePct)
	}
	return nil
}

func runFig4(dbs []string, wl string, scale float64, seed int64, singleCol bool) error {
	title := "Figure 4 — MNSA vs all candidate statistics"
	fn := core.CandidateStats
	expect := "(paper: 30-45% creation reduction, ≤2% exec increase)"
	if singleCol {
		title = "Figure 4 variant — single-column-only candidates"
		fn = core.SingleColumnCandidates
		expect = "(paper: >30% reduction in all cases)"
	}
	header(fmt.Sprintf("%s — workload %s, scale %.2f %s", title, wl, scale, expect))
	fmt.Printf("%-10s %6s %6s %14s %14s %8s %12s %10s\n",
		"db", "all#", "mnsa#", "all units", "mnsa units", "optcalls", "reduction%", "exec+%")
	for _, db := range dbs {
		row, err := bench.Figure4(db, wl, scale, seed, fn)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %6d %6d %14.0f %14.0f %8d %11.1f%% %9.1f%%\n",
			row.DB, row.AllCount, row.MNSACount, row.AllUnits, row.MNSAUnits,
			row.OptimizerCalls, row.CreationReductionPct, row.ExecIncreasePct)
	}
	return nil
}

func runTable1(dbs []string, wl string, scale float64, seed int64) error {
	header(fmt.Sprintf("Table 1 — MNSA/D vs MNSA update cost — workload %s, scale %.2f (paper: 30-34%% reduction, ≤6%% exec increase on re-run)", wl, scale))
	fmt.Printf("%-10s %6s %6s %6s %12s %12s %10s %10s\n",
		"db", "mnsa#", "drop#", "kept#", "upd-red%", "replay-red%", "exec+%", "optcalls")
	for _, db := range dbs {
		row, err := bench.Table1(db, wl, scale, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %6d %6d %6d %11.1f%% %11.1f%% %9.1f%% %10s\n",
			row.DB, row.MNSACount, row.DropListed, row.MNSADCount-row.DropListed,
			row.UpdateReductionPct, row.ReplayReductionPct, row.ExecIncreasePct, "-")
	}
	return nil
}

func runParallel(dbs []string, wl string, scale float64, seed int64, parallelism int) error {
	header(fmt.Sprintf("Parallel tuning — serial vs %s-worker MNSA workload driver — workload %s, scale %.2f",
		map[bool]string{true: "GOMAXPROCS", false: fmt.Sprint(parallelism)}[parallelism <= 0], wl, scale))
	fmt.Printf("%-10s %4s %8s %12s %12s %9s %7s %6s %9s %7s %12s\n",
		"db", "p", "queries", "serial wall", "par wall", "speedup", "ser#", "par#", "overlap%", "util%", "cache h/m")
	for _, db := range dbs {
		row, err := bench.Parallel(db, wl, scale, seed, parallelism)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %4d %8d %12v %12v %8.2fx %7d %6d %8.1f%% %6.1f%% %6d/%d\n",
			row.DB, row.Parallelism, row.Queries, row.SerialWall.Round(time.Millisecond),
			row.ParWall.Round(time.Millisecond), row.SpeedupX, row.SerialStats, row.ParStats,
			row.OverlapPct, row.WorkerUtilPct, row.CacheHits, row.CacheMiss)
	}
	return nil
}

func printAblation(rows []*bench.AblationRow) {
	fmt.Printf("%-26s %7s %14s %9s %14s %10s\n", "config", "stats#", "create units", "optcalls", "exec cost", "exec+%")
	for _, r := range rows {
		fmt.Printf("%-26s %7d %14.0f %9d %14.0f %9.1f%%\n",
			r.Label, r.StatsCreated, r.CreationUnits, r.OptimizerCalls, r.ExecCost, r.ExecIncreasePct)
	}
}

func runAblationT(wl string, scale float64, seed int64) error {
	header(fmt.Sprintf("Ablation — t threshold sweep — TPCD_2, workload %s (larger t ⇒ fewer statistics, laxer equivalence)", wl))
	rows, err := bench.AblationThreshold("TPCD_2", wl, scale, seed, nil)
	if err != nil {
		return err
	}
	printAblation(rows)
	return nil
}

func runAblationEps(wl string, scale float64, seed int64) error {
	header(fmt.Sprintf("Ablation — epsilon sweep — TPCD_2, workload %s (larger ε narrows the tested selectivity range)", wl))
	rows, err := bench.AblationEpsilon("TPCD_2", wl, scale, seed, nil)
	if err != nil {
		return err
	}
	printAblation(rows)
	return nil
}

func runAblationNext(wl string, scale float64, seed int64) error {
	header(fmt.Sprintf("Ablation — FindNextStatToBuild heuristic vs random pick — TPCD_2, workload %s", wl))
	rows, err := bench.AblationNextStat("TPCD_2", wl, scale, seed)
	if err != nil {
		return err
	}
	printAblation(rows)
	return nil
}

func runAblationCov(wl string, scale float64, seed int64) error {
	header(fmt.Sprintf("Ablation — §6 cost-coverage knob — TPCD_2, workload %s (tune only queries covering X%% of estimated cost)", wl))
	rows, err := bench.AblationCostWeighted("TPCD_2", wl, scale, seed, nil)
	if err != nil {
		return err
	}
	printAblation(rows)
	return nil
}

func runAblationHist(wl string, scale float64, seed int64) error {
	header(fmt.Sprintf("Ablation — histogram structure (MaxDiff vs equi-depth) — TPCD_2, workload %s", wl))
	rows, err := bench.AblationHistogramKind("TPCD_2", wl, scale, seed)
	if err != nil {
		return err
	}
	printAblation(rows)
	return nil
}

func runAblationSample(wl string, scale float64, seed int64) error {
	header(fmt.Sprintf("Ablation — sampled statistics construction — TPCD_2, workload %s", wl))
	rows, err := bench.AblationSampling("TPCD_2", wl, scale, seed, nil)
	if err != nil {
		return err
	}
	printAblation(rows)
	return nil
}

func runFeedback(scale float64) error {
	header(fmt.Sprintf("Execution feedback — stale statistic corrected by q-error evidence — TPCD_2, scale %.2f", scale))
	row, err := bench.FeedbackDemo(scale)
	if err != nil {
		return err
	}
	fmt.Printf("skew shift rewrote %.1f%% of lineitem (counter threshold 20%%)\n", row.ModifiedPct)
	fmt.Printf("stale estimate %.1f rows vs actual %d  =>  q-error %.1f\n", row.EstBefore, row.ActualRows, row.QErrBefore)
	fmt.Printf("maintenance: counter refreshed %d tables, feedback refreshed %d statistics\n",
		row.CounterRefreshes, row.FeedbackRefreshes)
	fmt.Printf("post-refresh q-error %.2f, plan changed: %v\n", row.QErrAfter, row.PlanChanged)
	fmt.Printf("  before: %s\n  after:  %s\n", row.PlanBefore, row.PlanAfter)

	over, err := bench.FeedbackOverhead(scale, 0)
	if err != nil {
		return err
	}
	fmt.Printf("capture overhead: %d runs, off %v / on %v (%.1f%%), %d observations\n",
		over.QueriesRun, over.OffWall.Round(time.Microsecond), over.OnWall.Round(time.Microsecond),
		over.OverheadPct, over.Observations)
	return nil
}

func writeBenchJSON(path, wl string, scale float64, seed int64, parallelism int) error {
	s, err := bench.RunPR3(wl, scale, seed, parallelism, 0)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = s.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeBench6JSON runs the PR-6 plan-cache bundle and applies the smoke
// gate: a zero hit rate on the repeated-template workload means statement
// parameterization has regressed to the raw-SQL keying this bundle exists to
// guard against, so the run fails rather than silently publishing it.
// writeBench7JSON runs the PR-7 partition-parallel build bundle and applies
// its smoke gate: the highest-parallelism arm must actually be faster than
// the serial build (speedup > 1x), every partition-merged statistic must be
// bit-identical to its single-pass reference (mismatches == 0), and the fold
// demonstration must refresh without a table rescan.
func writeBench7JSON(path string, scale float64) error {
	s, err := bench.RunPR7(scale)
	if err != nil {
		return err
	}
	for _, arm := range s.Build.Arms {
		fmt.Printf("build parallelism %d: total %v, critical path %v, speedup %.2fx, %d statistics, %d mismatches\n",
			arm.Parallelism, arm.Wall.Round(time.Millisecond), arm.CriticalPathWall.Round(time.Millisecond),
			arm.SpeedupX, s.Build.Statistics, arm.MergeMismatches)
	}
	fmt.Printf("manager parity at parallelism %d: %d statistics, %d parallel builds, %d partials merged, %d mismatches\n",
		s.Build.Parity.Parallelism, s.Build.Parity.Statistics, s.Build.Parity.ParallelBuilds,
		s.Build.Parity.PartialsMerged, s.Build.Parity.Mismatches)
	fmt.Printf("fold: %d deltas on %s, full_scans %d -> %d, %d folds, cost %.0f vs rebuild %.0f units\n",
		s.Fold.DeltaRows, s.Fold.Table, s.Fold.FullScansBefore, s.Fold.FullScansAfter,
		s.Fold.FoldsApplied, s.Fold.FoldCostUnits, s.Fold.RebuildCostUnits)
	if s.MergeMismatches > 0 {
		return fmt.Errorf("smoke gate: %d partition-merged statistics differ from the single-pass build", s.MergeMismatches)
	}
	if s.SpeedupX <= 1.0 {
		return fmt.Errorf("smoke gate: parallel build speedup %.2fx is not a speedup", s.SpeedupX)
	}
	if !s.Fold.NoRescan {
		return fmt.Errorf("smoke gate: fold-eligible refresh rescanned the table (full_scans %d -> %d)",
			s.Fold.FullScansBefore, s.Fold.FullScansAfter)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = s.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeBench8JSON(path string, scale float64, sessions, tenants int) error {
	s, err := bench.RunPR8(scale, sessions, tenants)
	if err != nil {
		return err
	}
	sw := s.Swarm
	fmt.Printf("swarm: %d sessions x %d tenants, %d requests in %v (%.0f req/s), p50 %v p99 %v, %d failures\n",
		sw.Sessions, sw.Tenants, sw.Requests, sw.Wall.Round(time.Millisecond),
		sw.Throughput, sw.P50.Round(time.Microsecond), sw.P99.Round(time.Microsecond), sw.Failures)
	fmt.Printf("plan cache (all tenants): %d hits / %d misses (%.0f%% hit rate) across %d shards\n",
		s.PlanCache.Hits, s.PlanCache.Misses, 100*s.PlanCache.HitRate, s.PlanCache.Shards)
	fmt.Printf("overload probe: burst %d -> %d rejected overloaded, %d wedged served later\n",
		s.Overload.Burst, s.Overload.Rejected, s.Overload.WedgedResolved)
	fmt.Printf("drain probe: %d in flight -> admitted %d completed %d dropped %d (forced=%v)\n",
		s.Drain.InFlight, s.Drain.Admitted, s.Drain.Completed, s.Drain.Dropped, s.Drain.Forced)
	// RunPR8 itself enforces the gates (zero swarm failures, ErrOverloaded
	// fast-fails, zero dropped on drain); reaching here means they passed.
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = s.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeBench10JSON runs the PR-10 network-robustness bundle: the full swarm
// through the 10ms/1% fault proxy with quotas, deadlines, and slow-client
// defense live. RunPR10 enforces the gates (zero hangs, zero leaked
// goroutines, clean drain, survivable fault rates); reaching the write means
// they passed.
func writeBench10JSON(path string, scale float64, sessions, tenants int) error {
	s, err := bench.RunPR10(scale, sessions, tenants)
	if err != nil {
		return err
	}
	ch := s.Chaos
	fmt.Printf("chaos swarm: %d sessions x %d tenants, %d requests (%d ok) in %v (%.0f ok/s), p50 %v p99 %v\n",
		ch.Sessions, ch.Tenants, ch.Requests, ch.OK, ch.Wall.Round(time.Millisecond),
		ch.Throughput, ch.P50.Round(time.Microsecond), ch.P99.Round(time.Microsecond))
	fmt.Printf("rejection mix: %v | proxy: %d resets %d torn %d corrupt | drain: adm %d cmp %d drop %d\n",
		ch.RejectionMix, ch.Proxy.Resets, ch.Proxy.Torn, ch.Proxy.Corrupted,
		ch.Drain.Admitted, ch.Drain.Completed, ch.Drain.Dropped)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = s.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeBench9JSON runs the PR-9 streaming-build bundle and applies its smoke
// gates: peak build memory must stay flat (ratio <= bench.MaxFlatPeakRatio)
// while the table grows 10x, the large arm must actually have exercised the
// spill path, and every streamed histogram — both arms and the full
// block-size × spill sweep — must be bitwise-identical to its single-pass
// reference.
func writeBench9JSON(path string, scale float64) error {
	s, err := bench.RunPR9(scale)
	if err != nil {
		return err
	}
	for _, arm := range []struct {
		name string
		a    bench.StreamArm
	}{{"small", s.Small}, {"large", s.Large}} {
		fmt.Printf("streaming build %-5s: %8d rows, %6d blocks, %4d spills (%d bytes), peak %7d bytes, %v, mismatch=%v\n",
			arm.name, arm.a.Rows, arm.a.Blocks, arm.a.Spills, arm.a.SpillBytes,
			arm.a.PeakBytes, arm.a.Wall.Round(time.Millisecond), arm.a.Mismatch)
	}
	fmt.Printf("peak ratio across %dx growth: %.2f (gate <= %.2f) | sweep: %d builds, %d mismatches\n",
		s.LargeFactor, s.PeakRatio, bench.MaxFlatPeakRatio, s.Sweep.Builds, s.Sweep.Mismatches)
	if s.Small.Mismatch || s.Large.Mismatch || s.Sweep.Mismatches > 0 {
		return fmt.Errorf("smoke gate: streamed histograms differ from single-pass builds (small=%v large=%v sweep=%d)",
			s.Small.Mismatch, s.Large.Mismatch, s.Sweep.Mismatches)
	}
	if s.PeakRatio <= 0 || s.PeakRatio > bench.MaxFlatPeakRatio {
		return fmt.Errorf("smoke gate: peak build memory ratio %.2f over %dx growth exceeds %.2f — not flat",
			s.PeakRatio, s.LargeFactor, bench.MaxFlatPeakRatio)
	}
	if s.Large.Spills == 0 {
		return fmt.Errorf("smoke gate: large arm never spilled — the budget path went unexercised")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = s.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// runExternalSwarm points the client swarm at a daemon started elsewhere.
func runExternalSwarm(ctx context.Context, addr string, sessions, tenants int) error {
	res, err := bench.Swarm(ctx, addr, bench.SwarmConfig{
		Sessions:           sessions,
		Tenants:            tenants,
		RequestsPerSession: 4,
		TuneEvery:          100,
	})
	if err != nil {
		return err
	}
	fmt.Printf("swarm vs %s: %d sessions x %d tenants, %d requests in %v (%.0f req/s), p50 %v p99 %v, %d failures\n",
		addr, res.Sessions, res.Tenants, res.Requests, res.Wall.Round(time.Millisecond),
		res.Throughput, res.P50.Round(time.Microsecond), res.P99.Round(time.Microsecond), res.Failures)
	if res.Failures > 0 {
		return fmt.Errorf("%d failures (first: %s)", res.Failures, res.FirstError)
	}
	if res.Throughput <= 0 {
		return fmt.Errorf("throughput gate: %f req/s", res.Throughput)
	}
	return nil
}

func writeBench6JSON(path, wl string, scale float64, seed int64, parallelism int) error {
	s, err := bench.RunPR6(wl, scale, seed, parallelism)
	if err != nil {
		return err
	}
	rt := s.RepeatedTemplate
	fmt.Printf("repeated-template: %d templates x %d instances, hit rate %.3f, speedup %.2fx, p99 %v -> %v (%d shards)\n",
		rt.Templates, rt.InstancesPerTemplate, rt.HitRate, rt.SpeedupX,
		rt.UncachedP99, rt.CachedP99, rt.Shards)
	if s.PlanCacheHitRate == 0 {
		return fmt.Errorf("smoke gate: repeated-template plan-cache hit rate is 0 (hits=%d misses=%d)", rt.Hits, rt.Misses)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = s.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
