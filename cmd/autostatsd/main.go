// Command autostatsd serves the automated-statistics facade over TCP: a
// multi-tenant stats-as-a-service daemon speaking the length-prefixed JSON
// protocol of internal/protocol. Each tenant gets its own skewed TPC-D
// database, statistics manager, optimizer and plan cache, created lazily on
// first use and evicted after -tenant-ttl idle.
//
// Usage:
//
//	autostatsd -addr 127.0.0.1:7744 -scale 0.1 -skew 2
//	autostatsd -addr :7744 -metrics-addr 127.0.0.1:7745 -workers 8
//
// Admission control bounds the in-server queue: when it is full, requests
// fast-fail with the "overloaded" code instead of piling up. SIGINT/SIGTERM
// drain gracefully — the listener closes, new requests are rejected with
// "draining", and every admitted request completes (bounded by
// -drain-timeout) before the process exits. The exit status encodes the
// drain guarantee: nonzero if any admitted request was dropped.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autostats"
	"autostats/internal/server"
)

var (
	addr         = flag.String("addr", "127.0.0.1:7744", "TCP listen address")
	workers      = flag.Int("workers", 0, "worker pool size (0 = 2x GOMAXPROCS, min 4)")
	queue        = flag.Int("queue", 0, "admission queue depth (0 = 16x workers)")
	maxFrame     = flag.Int("max-frame", 0, "max frame payload bytes (0 = 4 MiB)")
	scale        = flag.Float64("scale", 0.1, "per-tenant TPC-D scale factor")
	skew         = flag.Float64("skew", 2, "per-tenant Zipfian skew z")
	dbSeed       = flag.Int64("db-seed", 42, "per-tenant database generator seed")
	maxTenants   = flag.Int("max-tenants", 64, "max live tenant systems")
	tenantTTL    = flag.Duration("tenant-ttl", 10*time.Minute, "evict tenants idle this long (<0 disables)")
	planCache    = flag.Int("plan-cache", 0, "per-tenant plan cache capacity (0 = default)")
	feedbackOn   = flag.Bool("feedback", true, "enable the execution-feedback loop per tenant")
	resilienceOn = flag.Bool("resilience", true, "enable the resilience layer per tenant")
	buildMem     = flag.Int64("build-mem-budget", 0, "per-tenant streaming-build memory budget in bytes (0 disables streaming builds)")
	blockSize    = flag.Int("block-size", 0, "rows per scan block for streaming builds (0 = default; needs -build-mem-budget)")
	metricsAddr  = flag.String("metrics-addr", "", "optional HTTP address serving the metrics registry (text, or ?format=json) plus /healthz and /readyz probes")
	drainTO      = flag.Duration("drain-timeout", 30*time.Second, "max time to finish in-flight requests on shutdown")
	readTO       = flag.Duration("read-timeout", 0, "per-connection read/idle deadline; silent and half-open connections are evicted after this long (0 = server default 2m, <0 disables)")
	writeTO      = flag.Duration("write-timeout", 0, "per-response write deadline; a client stalling the TCP window longer is evicted (0 = server default 30s, <0 disables)")
	requestTO    = flag.Duration("request-timeout", 0, "server-side deadline per request once a worker picks it up; exceeding it fails typed with the timeout code (0 = unbounded)")
	tenantRPS    = flag.Float64("tenant-rps", 0, "per-tenant request quota in req/s; tenants over it are rejected with the rate_limited code (0 disables)")
	tenantBurst  = flag.Int("tenant-burst", 0, "per-tenant quota burst (0 = one second of -tenant-rps)")
	maxInflight  = flag.Int("max-inflight-per-conn", 0, "max requests one connection may have in flight; excess fast-fails overloaded (0 = server default 256, <0 disables)")
	waitReady    = flag.Bool("wait-ready", false, "do not serve: poll http://<-metrics-addr>/readyz of an already-running daemon until it reports ready, then exit (0 ready, 1 not ready in time) — for scripts that start the daemon in the background")
	waitTO       = flag.Duration("wait-timeout", 30*time.Second, "give up on -wait-ready after this long")
	verbose      = flag.Bool("verbose", false, "log per-lifecycle-event detail")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "autostatsd:", err)
		os.Exit(1)
	}
}

func run() error {
	logger := log.New(os.Stderr, "autostatsd: ", log.LstdFlags)

	if *waitReady {
		return waitForReady(*metricsAddr, *waitTO)
	}

	newTenant := func(name string) (*autostats.System, error) {
		start := time.Now()
		sys, err := autostats.GenerateTPCD(autostats.TPCDOptions{
			Scale: *scale, Skew: *skew, Seed: *dbSeed,
		})
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", name, err)
		}
		// Configure before the system serves traffic (the facade's
		// configure-then-serve contract).
		if *planCache > 0 {
			sys.SetPlanCacheCapacity(*planCache)
		}
		if *feedbackOn {
			sys.EnableFeedback(autostats.FeedbackOptions{})
		}
		if *resilienceOn {
			sys.EnableResilience(autostats.ResilienceOptions{Seed: *dbSeed})
		}
		if *buildMem > 0 {
			if err := sys.EnableStreamingBuilds(*blockSize, 0, *buildMem); err != nil {
				return nil, fmt.Errorf("tenant %s: %w", name, err)
			}
		}
		if *verbose {
			logger.Printf("tenant %s ready in %v", name, time.Since(start).Round(time.Millisecond))
		}
		return sys, nil
	}

	srv, err := server.New(server.Config{
		Addr:               *addr,
		Workers:            *workers,
		QueueDepth:         *queue,
		MaxFrame:           *maxFrame,
		MaxTenants:         *maxTenants,
		TenantIdleTTL:      *tenantTTL,
		ReadTimeout:        *readTO,
		WriteTimeout:       *writeTO,
		RequestTimeout:     *requestTO,
		TenantRPS:          *tenantRPS,
		TenantBurst:        *tenantBurst,
		MaxInflightPerConn: *maxInflight,
		NewTenant:          newTenant,
		Logf:               logger.Printf,
	})
	if err != nil {
		return err
	}

	if *metricsAddr != "" {
		bound, stop, err := server.ServeOps(*metricsAddr, srv.Obs(), srv.Ready)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer stop()
		logger.Printf("metrics on http://%s/ (probes: /healthz, /readyz)", bound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := srv.Run(ctx, *drainTO)
	if err != nil {
		return err
	}

	// Flush the server registry so an operator inspecting logs after SIGTERM
	// sees final counts without having had the HTTP endpoint enabled.
	fmt.Printf("final metrics:\n")
	if err := srv.Obs().WriteText(os.Stdout); err != nil {
		return err
	}

	if rep.Dropped > 0 {
		return fmt.Errorf("drain dropped %d admitted requests (admitted=%d completed=%d forced=%v)",
			rep.Dropped, rep.Admitted, rep.Completed, rep.Forced)
	}
	logger.Printf("clean shutdown: admitted=%d completed=%d rejected_overload=%d rejected_draining=%d",
		rep.Admitted, rep.Completed, rep.RejectedOverload, rep.RejectedDraining)
	return nil
}

// waitForReady polls the running daemon's /readyz until it answers 200 or
// the timeout passes. It replaces ad-hoc "sleep and hope" startup gating in
// scripts: start autostatsd in the background with -metrics-addr, then run
// `autostatsd -wait-ready -metrics-addr <same>` before pointing load at it.
func waitForReady(metricsAddr string, timeout time.Duration) error {
	if metricsAddr == "" {
		return fmt.Errorf("-wait-ready needs -metrics-addr to know where /readyz lives")
	}
	url := fmt.Sprintf("http://%s/readyz", metricsAddr)
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: 2 * time.Second}
	var lastErr error = fmt.Errorf("never polled")
	for time.Now().Before(deadline) {
		resp, err := client.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
		} else {
			lastErr = err
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("not ready after %v: %w", timeout, lastErr)
}
