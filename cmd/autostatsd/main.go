// Command autostatsd serves the automated-statistics facade over TCP: a
// multi-tenant stats-as-a-service daemon speaking the length-prefixed JSON
// protocol of internal/protocol. Each tenant gets its own skewed TPC-D
// database, statistics manager, optimizer and plan cache, created lazily on
// first use and evicted after -tenant-ttl idle.
//
// Usage:
//
//	autostatsd -addr 127.0.0.1:7744 -scale 0.1 -skew 2
//	autostatsd -addr :7744 -metrics-addr 127.0.0.1:7745 -workers 8
//
// Admission control bounds the in-server queue: when it is full, requests
// fast-fail with the "overloaded" code instead of piling up. SIGINT/SIGTERM
// drain gracefully — the listener closes, new requests are rejected with
// "draining", and every admitted request completes (bounded by
// -drain-timeout) before the process exits. The exit status encodes the
// drain guarantee: nonzero if any admitted request was dropped.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autostats"
	"autostats/internal/server"
)

var (
	addr         = flag.String("addr", "127.0.0.1:7744", "TCP listen address")
	workers      = flag.Int("workers", 0, "worker pool size (0 = 2x GOMAXPROCS, min 4)")
	queue        = flag.Int("queue", 0, "admission queue depth (0 = 16x workers)")
	maxFrame     = flag.Int("max-frame", 0, "max frame payload bytes (0 = 4 MiB)")
	scale        = flag.Float64("scale", 0.1, "per-tenant TPC-D scale factor")
	skew         = flag.Float64("skew", 2, "per-tenant Zipfian skew z")
	dbSeed       = flag.Int64("db-seed", 42, "per-tenant database generator seed")
	maxTenants   = flag.Int("max-tenants", 64, "max live tenant systems")
	tenantTTL    = flag.Duration("tenant-ttl", 10*time.Minute, "evict tenants idle this long (<0 disables)")
	planCache    = flag.Int("plan-cache", 0, "per-tenant plan cache capacity (0 = default)")
	feedbackOn   = flag.Bool("feedback", true, "enable the execution-feedback loop per tenant")
	resilienceOn = flag.Bool("resilience", true, "enable the resilience layer per tenant")
	buildMem     = flag.Int64("build-mem-budget", 0, "per-tenant streaming-build memory budget in bytes (0 disables streaming builds)")
	blockSize    = flag.Int("block-size", 0, "rows per scan block for streaming builds (0 = default; needs -build-mem-budget)")
	metricsAddr  = flag.String("metrics-addr", "", "optional HTTP address serving the metrics registry (text, or ?format=json)")
	drainTO      = flag.Duration("drain-timeout", 30*time.Second, "max time to finish in-flight requests on shutdown")
	verbose      = flag.Bool("verbose", false, "log per-lifecycle-event detail")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "autostatsd:", err)
		os.Exit(1)
	}
}

func run() error {
	logger := log.New(os.Stderr, "autostatsd: ", log.LstdFlags)

	newTenant := func(name string) (*autostats.System, error) {
		start := time.Now()
		sys, err := autostats.GenerateTPCD(autostats.TPCDOptions{
			Scale: *scale, Skew: *skew, Seed: *dbSeed,
		})
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", name, err)
		}
		// Configure before the system serves traffic (the facade's
		// configure-then-serve contract).
		if *planCache > 0 {
			sys.SetPlanCacheCapacity(*planCache)
		}
		if *feedbackOn {
			sys.EnableFeedback(autostats.FeedbackOptions{})
		}
		if *resilienceOn {
			sys.EnableResilience(autostats.ResilienceOptions{Seed: *dbSeed})
		}
		if *buildMem > 0 {
			if err := sys.EnableStreamingBuilds(*blockSize, 0, *buildMem); err != nil {
				return nil, fmt.Errorf("tenant %s: %w", name, err)
			}
		}
		if *verbose {
			logger.Printf("tenant %s ready in %v", name, time.Since(start).Round(time.Millisecond))
		}
		return sys, nil
	}

	srv, err := server.New(server.Config{
		Addr:          *addr,
		Workers:       *workers,
		QueueDepth:    *queue,
		MaxFrame:      *maxFrame,
		MaxTenants:    *maxTenants,
		TenantIdleTTL: *tenantTTL,
		NewTenant:     newTenant,
		Logf:          logger.Printf,
	})
	if err != nil {
		return err
	}

	if *metricsAddr != "" {
		bound, stop, err := server.ServeMetrics(*metricsAddr, srv.Obs())
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer stop()
		logger.Printf("metrics on http://%s/", bound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := srv.Run(ctx, *drainTO)
	if err != nil {
		return err
	}

	// Flush the server registry so an operator inspecting logs after SIGTERM
	// sees final counts without having had the HTTP endpoint enabled.
	fmt.Printf("final metrics:\n")
	if err := srv.Obs().WriteText(os.Stdout); err != nil {
		return err
	}

	if rep.Dropped > 0 {
		return fmt.Errorf("drain dropped %d admitted requests (admitted=%d completed=%d forced=%v)",
			rep.Dropped, rep.Admitted, rep.Completed, rep.Forced)
	}
	logger.Printf("clean shutdown: admitted=%d completed=%d rejected_overload=%d rejected_draining=%d",
		rep.Admitted, rep.Completed, rep.RejectedOverload, rep.RejectedDraining)
	return nil
}
