package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"autostats"
	"autostats/internal/obs"
	"autostats/internal/server"
)

func testSys(t *testing.T) *autostats.System {
	t.Helper()
	sys, err := autostats.GenerateTPCD(autostats.TPCDOptions{Scale: 0.25, Skew: 2})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func drive(t *testing.T, script string) string {
	t.Helper()
	sys := testSys(t)
	var out strings.Builder
	if err := runREPL(context.Background(), sys, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestREPLQuery(t *testing.T) {
	out := drive(t, "SELECT * FROM region WHERE r_name = 'ASIA'\n.quit\n")
	if !strings.Contains(out, "ASIA") {
		t.Errorf("query output missing row:\n%s", out)
	}
	if !strings.Contains(out, "exec cost") {
		t.Errorf("missing cost summary:\n%s", out)
	}
}

func TestREPLExplainAndTune(t *testing.T) {
	out := drive(t, strings.Join([]string{
		"EXPLAIN SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey",
		"TUNE SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 45",
		".stats",
		".quit",
	}, "\n")+"\n")
	if !strings.Contains(out, "Join") {
		t.Errorf("EXPLAIN output missing join:\n%s", out)
	}
	if !strings.Contains(out, "created") || !strings.Contains(out, "lineitem(l_orderkey)") {
		t.Errorf("TUNE output missing created statistics:\n%s", out)
	}
	if !strings.Contains(out, "distinct") {
		t.Errorf(".stats output missing:\n%s", out)
	}
}

func TestREPLDMLAndMaintenance(t *testing.T) {
	out := drive(t, strings.Join([]string{
		"INSERT INTO region VALUES (9, 'X', 'c')",
		"DELETE FROM region WHERE r_regionkey = 9",
		".maintenance",
		".quit",
	}, "\n")+"\n")
	if !strings.Contains(out, "1 row(s) affected") {
		t.Errorf("DML ack missing:\n%s", out)
	}
	if !strings.Contains(out, "maintenance:") {
		t.Errorf("maintenance output missing:\n%s", out)
	}
}

func TestREPLAutoMode(t *testing.T) {
	out := drive(t, strings.Join([]string{
		".auto on",
		"SELECT * FROM orders, customer WHERE o_custkey = c_custkey AND o_totalprice > 400000",
		".stats",
		".auto off",
		".quit",
	}, "\n")+"\n")
	if !strings.Contains(out, "management ON") {
		t.Errorf("auto toggle missing:\n%s", out)
	}
	if !strings.Contains(out, "orders(o_custkey)") {
		t.Errorf("on-the-fly mode should have created join statistics:\n%s", out)
	}
}

func TestREPLErrorsAndUnknown(t *testing.T) {
	out := drive(t, "SELECT * FROM nowhere\n.bogus\n.help\n.quit\n")
	if !strings.Contains(out, "error:") {
		t.Errorf("bad SQL should report an error:\n%s", out)
	}
	if !strings.Contains(out, "unknown command .bogus") {
		t.Errorf("unknown dot-command not reported:\n%s", out)
	}
	if !strings.Contains(out, "EXPLAIN <select>") {
		t.Errorf(".help output missing:\n%s", out)
	}
}

// TestREPLEOFExitsCleanly: no .quit — EOF must end the loop without error.
func TestREPLEOFExitsCleanly(t *testing.T) {
	_ = drive(t, "SELECT COUNT(*) FROM region\n")
}

// TestREPLHealthProbe: .health reports the daemon's liveness/readiness view,
// flips when readiness does, and degrades to "unreachable" when nothing
// listens at the address.
func TestREPLHealthProbe(t *testing.T) {
	ready := atomic.Bool{}
	ready.Store(true)
	ts := httptest.NewServer(server.OpsHandler(obs.New(), ready.Load))
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	out := drive(t, ".health\n.health "+addr+"\n.quit\n")
	if !strings.Contains(out, "usage: .health") {
		t.Errorf(".health without an address should print usage:\n%s", out)
	}
	if !strings.Contains(out, "healthz  ok") || !strings.Contains(out, "readyz   ok") {
		t.Errorf("probes against a ready daemon should both be ok:\n%s", out)
	}

	ready.Store(false)
	out = drive(t, ".health "+addr+"\n.quit\n")
	if !strings.Contains(out, "healthz  ok") || !strings.Contains(out, "readyz   NOT ok") {
		t.Errorf("draining daemon must stay live but report not ready:\n%s", out)
	}

	ts.Close()
	out = drive(t, ".health "+addr+"\n.quit\n")
	if !strings.Contains(out, "unreachable") {
		t.Errorf("probing a dead address should report unreachable:\n%s", out)
	}
}
