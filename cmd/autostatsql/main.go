// Command autostatsql is an interactive shell over a skewed TPC-D database
// with automatic statistics management. SQL statements execute directly;
// dot-commands drive the paper's machinery:
//
//	EXPLAIN <select>       show the chosen plan without executing
//	TUNE <select>          run MNSA for the query (creates statistics)
//	.stats                 list statistics (drop-listed ones marked)
//	.auto on|off           toggle on-the-fly mode (MNSA before every SELECT)
//	.maintenance           run the update/drop maintenance policy once
//	.breakers              show circuit breaker states (resilience mode)
//	.health <addr>         probe a daemon's /healthz and /readyz probes
//	.help                  command summary
//	.quit                  exit
//
// Usage:
//
//	autostatsql -db TPCD_2 -scale 0.5
//	autostatsql -retries 2 -build-timeout 2s    # resilience mode
//
// With -retries >= 0 the resilience layer is enabled: statistic builds that
// fail are retried with backoff, persistently failing tables trip per-table
// circuit breakers, and affected statements still run on degraded
// magic-number plans (shown as [degraded: ...]). SIGINT/SIGTERM cancel the
// in-flight statement and exit the shell cleanly.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"autostats"
)

func main() {
	var (
		dbName   = flag.String("db", "TPCD_2", "database: TPCD_0 | TPCD_2 | TPCD_4 | TPCD_MIX")
		scale    = flag.Float64("scale", 0.5, "database scale factor")
		seed     = flag.Int64("seed", 42, "generator seed")
		retries  = flag.Int("retries", -1, "enable the resilience layer, retrying each failed statistic build this many times (-1 = resilience off)")
		buildTO  = flag.Duration("build-timeout", 0, "per-statistic build attempt timeout (needs -retries >= 0; 0 = unbounded)")
		buildPar = flag.Int("build-parallelism", 1, "scan partitions per statistic build; partial histograms are merged into a result identical to a single-pass build (<=1 = single-pass)")
		incr     = flag.Bool("incremental", false, "incremental statistics maintenance: refreshes fold logged row deltas into histograms instead of rescanning")
		foldFrac = flag.Float64("max-fold-fraction", 0, "folded-rows fraction above which a refresh rebuilds from a full scan (needs -incremental; 0 = default 0.1)")
		buildMem = flag.Int64("build-mem-budget", 0, "streaming-build memory budget in bytes: scan in blocks and spill finished partials past the budget (0 disables streaming builds)")
		blockSz  = flag.Int("block-size", 0, "rows per scan block for streaming builds (0 = default; needs -build-mem-budget)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var opts autostats.TPCDOptions
	opts.Scale = *scale
	opts.Seed = *seed
	switch *dbName {
	case "TPCD_0":
		opts.Skew = 0
	case "TPCD_2":
		opts.Skew = 2
	case "TPCD_4":
		opts.Skew = 4
	case "TPCD_MIX":
		opts.Mix = true
	default:
		fmt.Fprintf(os.Stderr, "autostatsql: unknown database %q\n", *dbName)
		os.Exit(2)
	}
	sys, err := autostats.GenerateTPCD(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autostatsql:", err)
		os.Exit(1)
	}
	if *retries >= 0 {
		sys.EnableResilience(autostats.ResilienceOptions{
			Retries:      *retries,
			BuildTimeout: *buildTO,
			Seed:         *seed,
		})
		fmt.Printf("resilience ON: %d retries per build, build timeout %v\n", *retries, *buildTO)
	}
	if *buildPar > 1 {
		sys.SetBuildParallelism(*buildPar)
		fmt.Printf("partition-parallel builds ON: %d partitions per scan\n", *buildPar)
	}
	if *incr {
		if err := sys.EnableIncrementalMaintenance(*foldFrac); err != nil {
			fmt.Fprintln(os.Stderr, "autostatsql:", err)
			os.Exit(2)
		}
		fmt.Printf("incremental maintenance ON: refreshes fold row deltas (max fold fraction %v)\n",
			orDefaultFrac(*foldFrac))
	}
	if *buildMem > 0 {
		if err := sys.EnableStreamingBuilds(*blockSz, 0, *buildMem); err != nil {
			fmt.Fprintln(os.Stderr, "autostatsql:", err)
			os.Exit(2)
		}
		fmt.Printf("streaming builds ON: %d-byte memory budget\n", *buildMem)
	}
	fmt.Printf("autostatsql — %s at scale %.2f. Type .help for commands.\n", *dbName, *scale)
	if err := runREPL(ctx, sys, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "autostatsql:", err)
		os.Exit(1)
	}
}

// orDefaultFrac renders the effective fold fraction (0 means the default).
func orDefaultFrac(f float64) float64 {
	if f <= 0 {
		return autostats.DefaultMaxFoldFraction
	}
	return f
}

// maxRowsShown caps result printing.
const maxRowsShown = 20

// runREPL drives the shell; it is I/O-parameterized for testing. ctx cancels
// in-flight statement processing (MNSA, builds, maintenance) and ends the
// loop at the next prompt.
func runREPL(ctx context.Context, sys *autostats.System, in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	autoMode := false
	prompt := func() { fmt.Fprint(out, "> ") }
	prompt()
	for sc.Scan() {
		if ctx.Err() != nil {
			fmt.Fprintln(out, "interrupted")
			return nil
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, "."):
			if quit := dotCommand(ctx, sys, out, line, &autoMode); quit {
				return nil
			}
		case hasPrefixFold(line, "EXPLAIN "):
			plan, err := sys.Explain(strings.TrimSpace(line[len("EXPLAIN "):]))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprint(out, plan)
			}
		case hasPrefixFold(line, "TUNE "):
			rep, err := sys.TuneQueryCtx(ctx, strings.TrimSpace(line[len("TUNE "):]), autostats.TuneOptions{})
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			fmt.Fprintf(out, "created %d statistics (%d optimizer calls):\n", len(rep.Created), rep.OptimizerCalls)
			for _, id := range rep.Created {
				fmt.Fprintln(out, "  ", id)
			}
			if rep.Degraded {
				fmt.Fprintf(out, "DEGRADED: %d build(s) failed:\n", len(rep.BuildFailures))
				for _, bf := range rep.BuildFailures {
					fmt.Fprintln(out, "  ", bf)
				}
			}
		default:
			runStatement(ctx, sys, out, line, autoMode)
		}
		prompt()
	}
	return sc.Err()
}

func hasPrefixFold(s, prefix string) bool {
	return len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix)
}

func runStatement(ctx context.Context, sys *autostats.System, out io.Writer, sql string, autoMode bool) {
	var res *autostats.QueryResult
	var err error
	if autoMode {
		res, err = sys.ProcessStatementCtx(ctx, sql)
	} else {
		res, err = sys.Exec(sql)
	}
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	if len(res.Degraded) > 0 {
		fmt.Fprintf(out, "[degraded: %s]\n", strings.Join(res.Degraded, ", "))
	}
	if res.Rows == nil && res.Columns == nil {
		fmt.Fprintf(out, "ok: %d row(s) affected, cost %.0f\n", res.Affected, res.ExecCost)
		return
	}
	fmt.Fprintln(out, strings.Join(res.Columns, " | "))
	for i, r := range res.Rows {
		if i == maxRowsShown {
			fmt.Fprintf(out, "... (%d more rows)\n", len(res.Rows)-maxRowsShown)
			break
		}
		fmt.Fprintln(out, strings.Join(r, " | "))
	}
	fmt.Fprintf(out, "(%d rows, exec cost %.0f, estimated %.0f)\n", len(res.Rows), res.ExecCost, res.EstimatedCost)
}

func dotCommand(ctx context.Context, sys *autostats.System, out io.Writer, line string, autoMode *bool) (quit bool) {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".quit", ".exit":
		return true
	case ".help":
		fmt.Fprint(out, `SQL statements run directly. Commands:
  EXPLAIN <select>   show the plan without executing
  TUNE <select>      run MNSA for the query
  .stats             list statistics
  .auto on|off       toggle on-the-fly statistics management
  .maintenance       run the maintenance policy once
  .breakers          show circuit breaker states (resilience mode)
  .health <addr>     probe a daemon's /healthz and /readyz at its metrics address
  .quit              exit
`)
	case ".stats":
		infos := sys.Statistics()
		if len(infos) == 0 {
			fmt.Fprintln(out, "(no statistics)")
		}
		for _, si := range infos {
			marker := ""
			if si.InDropList {
				marker = "  [drop-list]"
			}
			fmt.Fprintf(out, "%-45s %7d rows %6d distinct %3d buckets%s\n",
				si.ID, si.Rows, si.Distinct, si.Buckets, marker)
		}
	case ".auto":
		if len(fields) == 2 && fields[1] == "on" {
			*autoMode = true
			fmt.Fprintln(out, "on-the-fly statistics management ON")
		} else if len(fields) == 2 && fields[1] == "off" {
			*autoMode = false
			fmt.Fprintln(out, "on-the-fly statistics management OFF")
		} else {
			fmt.Fprintln(out, "usage: .auto on|off")
		}
	case ".maintenance":
		rep, err := sys.RunMaintenanceCtx(ctx)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprintf(out, "maintenance: %d tables refreshed, %d statistics dropped\n",
			rep.TablesRefreshed, rep.StatsDropped)
		if rep.TablesSkipped > 0 || len(rep.RefreshFailures) > 0 {
			fmt.Fprintf(out, "degraded pass: %d tables skipped (breaker open), %d refresh failures\n",
				rep.TablesSkipped, len(rep.RefreshFailures))
		}
	case ".health":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: .health <daemon-metrics-addr>   (e.g. .health 127.0.0.1:7745)")
			break
		}
		probeHealth(out, fields[1])
	case ".breakers":
		if !sys.ResilienceEnabled() {
			fmt.Fprintln(out, "resilience layer is off (start with -retries >= 0)")
			break
		}
		states := sys.BreakerStates()
		if len(states) == 0 {
			fmt.Fprintln(out, "(no table has been gated yet)")
		}
		for _, ts := range states {
			fmt.Fprintf(out, "%-15s %-9s %d trips\n", ts.Table, ts.State, ts.Trips)
		}
	default:
		fmt.Fprintf(out, "unknown command %s (try .help)\n", fields[0])
	}
	return false
}

// probeHealth hits a running autostatsd's ops endpoints (-metrics-addr) and
// reports liveness and readiness — the shell-side view of the daemon's
// /healthz and /readyz probes.
func probeHealth(out io.Writer, addr string) {
	client := &http.Client{Timeout: 2 * time.Second}
	for _, probe := range []string{"healthz", "readyz"} {
		resp, err := client.Get(fmt.Sprintf("http://%s/%s", addr, probe))
		if err != nil {
			fmt.Fprintf(out, "%-8s unreachable: %v\n", probe, err)
			continue
		}
		resp.Body.Close()
		status := "ok"
		if resp.StatusCode != http.StatusOK {
			status = "NOT ok"
		}
		fmt.Fprintf(out, "%-8s %s (HTTP %d)\n", probe, status, resp.StatusCode)
	}
}
