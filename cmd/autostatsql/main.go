// Command autostatsql is an interactive shell over a skewed TPC-D database
// with automatic statistics management. SQL statements execute directly;
// dot-commands drive the paper's machinery:
//
//	EXPLAIN <select>       show the chosen plan without executing
//	TUNE <select>          run MNSA for the query (creates statistics)
//	.stats                 list statistics (drop-listed ones marked)
//	.auto on|off           toggle on-the-fly mode (MNSA before every SELECT)
//	.maintenance           run the update/drop maintenance policy once
//	.help                  command summary
//	.quit                  exit
//
// Usage:
//
//	autostatsql -db TPCD_2 -scale 0.5
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"autostats"
)

func main() {
	var (
		dbName = flag.String("db", "TPCD_2", "database: TPCD_0 | TPCD_2 | TPCD_4 | TPCD_MIX")
		scale  = flag.Float64("scale", 0.5, "database scale factor")
		seed   = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	var opts autostats.TPCDOptions
	opts.Scale = *scale
	opts.Seed = *seed
	switch *dbName {
	case "TPCD_0":
		opts.Skew = 0
	case "TPCD_2":
		opts.Skew = 2
	case "TPCD_4":
		opts.Skew = 4
	case "TPCD_MIX":
		opts.Mix = true
	default:
		fmt.Fprintf(os.Stderr, "autostatsql: unknown database %q\n", *dbName)
		os.Exit(2)
	}
	sys, err := autostats.GenerateTPCD(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autostatsql:", err)
		os.Exit(1)
	}
	fmt.Printf("autostatsql — %s at scale %.2f. Type .help for commands.\n", *dbName, *scale)
	if err := runREPL(sys, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "autostatsql:", err)
		os.Exit(1)
	}
}

// maxRowsShown caps result printing.
const maxRowsShown = 20

// runREPL drives the shell; it is I/O-parameterized for testing.
func runREPL(sys *autostats.System, in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	autoMode := false
	prompt := func() { fmt.Fprint(out, "> ") }
	prompt()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, "."):
			if quit := dotCommand(sys, out, line, &autoMode); quit {
				return nil
			}
		case hasPrefixFold(line, "EXPLAIN "):
			plan, err := sys.Explain(strings.TrimSpace(line[len("EXPLAIN "):]))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprint(out, plan)
			}
		case hasPrefixFold(line, "TUNE "):
			rep, err := sys.TuneQuery(strings.TrimSpace(line[len("TUNE "):]), autostats.TuneOptions{})
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			fmt.Fprintf(out, "created %d statistics (%d optimizer calls):\n", len(rep.Created), rep.OptimizerCalls)
			for _, id := range rep.Created {
				fmt.Fprintln(out, "  ", id)
			}
		default:
			runStatement(sys, out, line, autoMode)
		}
		prompt()
	}
	return sc.Err()
}

func hasPrefixFold(s, prefix string) bool {
	return len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix)
}

func runStatement(sys *autostats.System, out io.Writer, sql string, autoMode bool) {
	var res *autostats.QueryResult
	var err error
	if autoMode {
		res, err = sys.ProcessStatement(sql)
	} else {
		res, err = sys.Exec(sql)
	}
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	if res.Rows == nil && res.Columns == nil {
		fmt.Fprintf(out, "ok: %d row(s) affected, cost %.0f\n", res.Affected, res.ExecCost)
		return
	}
	fmt.Fprintln(out, strings.Join(res.Columns, " | "))
	for i, r := range res.Rows {
		if i == maxRowsShown {
			fmt.Fprintf(out, "... (%d more rows)\n", len(res.Rows)-maxRowsShown)
			break
		}
		fmt.Fprintln(out, strings.Join(r, " | "))
	}
	fmt.Fprintf(out, "(%d rows, exec cost %.0f, estimated %.0f)\n", len(res.Rows), res.ExecCost, res.EstimatedCost)
}

func dotCommand(sys *autostats.System, out io.Writer, line string, autoMode *bool) (quit bool) {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".quit", ".exit":
		return true
	case ".help":
		fmt.Fprint(out, `SQL statements run directly. Commands:
  EXPLAIN <select>   show the plan without executing
  TUNE <select>      run MNSA for the query
  .stats             list statistics
  .auto on|off       toggle on-the-fly statistics management
  .maintenance       run the maintenance policy once
  .quit              exit
`)
	case ".stats":
		infos := sys.Statistics()
		if len(infos) == 0 {
			fmt.Fprintln(out, "(no statistics)")
		}
		for _, si := range infos {
			marker := ""
			if si.InDropList {
				marker = "  [drop-list]"
			}
			fmt.Fprintf(out, "%-45s %7d rows %6d distinct %3d buckets%s\n",
				si.ID, si.Rows, si.Distinct, si.Buckets, marker)
		}
	case ".auto":
		if len(fields) == 2 && fields[1] == "on" {
			*autoMode = true
			fmt.Fprintln(out, "on-the-fly statistics management ON")
		} else if len(fields) == 2 && fields[1] == "off" {
			*autoMode = false
			fmt.Fprintln(out, "on-the-fly statistics management OFF")
		} else {
			fmt.Fprintln(out, "usage: .auto on|off")
		}
	case ".maintenance":
		refreshed, dropped, err := sys.RunMaintenance()
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprintf(out, "maintenance: %d tables refreshed, %d statistics dropped\n", refreshed, dropped)
	default:
		fmt.Fprintf(out, "unknown command %s (try .help)\n", fields[0])
	}
	return false
}
