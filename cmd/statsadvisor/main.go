// Command statsadvisor recommends the statistics a workload needs, running
// the paper's algorithms over a freshly generated (or .tbl-loaded) skewed
// TPC-D database:
//
//	mnsa     Magic Number Sensitivity Analysis per query (§4, Figure 1)
//	mnsad    MNSA with non-essential detection / drop-list (§5.1)
//	offline  MNSA followed by the Shrinking Set algorithm (§5.2, §6)
//	all      create every §7.1 candidate statistic (no analysis; baseline)
//
// Usage:
//
//	ragsgen -workload U25-C-100 -db TPCD_2 -o w.sql
//	statsadvisor -db TPCD_2 -workload w.sql -mode offline
//	statsadvisor -db TPCD_4 -tpcd-orig -mode mnsad -verbose
package main

import (
	"flag"
	"fmt"
	"os"

	"autostats/internal/core"
	"autostats/internal/datagen"
	"autostats/internal/executor"
	"autostats/internal/feedback"
	"autostats/internal/histogram"
	"autostats/internal/obs"
	"autostats/internal/optimizer"
	"autostats/internal/stats"
	"autostats/internal/storage"
	"autostats/internal/workload"
)

func main() {
	var (
		dbName   = flag.String("db", "TPCD_2", "database: TPCD_0 | TPCD_2 | TPCD_4 | TPCD_MIX")
		scale    = flag.Float64("scale", 1, "database scale factor")
		dbSeed   = flag.Int64("db-seed", 42, "database generator seed")
		tblDir   = flag.String("tbl", "", "load database from .tbl files in this directory instead of generating")
		wlPath   = flag.String("workload", "", "workload SQL file (one statement per line)")
		tpcdOrig = flag.Bool("tpcd-orig", false, "use the built-in 17-query TPCD-ORIG workload")
		mode     = flag.String("mode", "mnsa", "mnsa | mnsad | offline | all")
		tPct     = flag.Float64("t", 20, "t-optimizer-cost equivalence threshold (percent)")
		eps      = flag.Float64("eps", 0.0005, "epsilon for the sensitivity extremes")
		single   = flag.Bool("single-column", false, "consider only single-column candidate statistics")
		parallel = flag.Int("parallel", 1, "worker sessions for mnsa/mnsad/offline tuning (<=1 = serial)")
		cacheCap = flag.Int("plan-cache", 1024, "plan cache capacity (0 disables)")
		useFB    = flag.Bool("feedback", false, "capture actual cardinalities during workload execution, apply learned selectivity corrections, and run a feedback-aware maintenance pass")
		verbose  = flag.Bool("verbose", false, "per-query detail")
		saveTo   = flag.String("save-stats", "", "export the resulting statistics set as JSON")
		loadFrom = flag.String("load-stats", "", "import a statistics JSON snapshot before tuning")
		metrics  = flag.Bool("metrics", false, "dump the observability counters after the run")
		traceTo  = flag.String("trace", "", "write a JSONL span trace of the run to this file")
	)
	flag.Parse()

	var tracer *obs.JSONLTracer
	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tracer = obs.NewJSONLTracer(f)
		obs.Default.AddTracer(tracer)
	}

	db, err := openDatabase(*tblDir, *dbName, *scale, *dbSeed)
	if err != nil {
		fatal(err)
	}
	w, err := openWorkload(db, *wlPath, *tpcdOrig)
	if err != nil {
		fatal(err)
	}
	queries := w.Queries()
	fmt.Printf("database %s (%d rows), workload %s: %d statements, %d queries\n",
		*dbName, db.TotalRows(), w.Name, len(w.Statements), len(queries))

	mgr := stats.NewManager(db, histogram.MaxDiff, 0)
	if *loadFrom != "" {
		f, err := os.Open(*loadFrom)
		if err != nil {
			fatal(err)
		}
		err = mgr.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %d statistics from %s\n", len(mgr.All()), *loadFrom)
	}
	sess := optimizer.NewSession(mgr)
	cache := optimizer.NewPlanCache(*cacheCap)
	sess.SetPlanCache(cache)
	var led *feedback.Ledger
	if *useFB {
		led = feedback.NewLedger(feedback.ManagerVersions(mgr), feedback.Config{})
		sess.SetCorrections(led)
		mgr.SetFeedbackProvider(led)
	}
	cfg := core.DefaultConfig()
	cfg.T = *tPct
	cfg.Epsilon = *eps
	if *single {
		cfg.CandidateFn = core.SingleColumnCandidates
	}

	switch *mode {
	case "all":
		cands := core.WorkloadCandidates(queries, cfg.CandidateFn)
		for _, c := range cands {
			if _, err := mgr.Create(c.Table, c.Columns); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("created all %d candidate statistics\n", len(cands))
	case "mnsa", "mnsad":
		cfg.Drop = *mode == "mnsad"
		if *verbose {
			for i, q := range queries {
				r, err := core.RunMNSA(sess, q, cfg)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("Q%-3d created=%d droplisted=%d optcalls=%d (%s)\n",
					i+1, len(r.Created), len(r.DropListed), r.OptimizerCalls, r.TerminatedBy)
			}
		} else {
			wr, err := core.RunMNSAWorkloadParallel(sess, queries, cfg, *parallel)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("MNSA%s: created %d statistics with %d optimizer calls\n",
				map[bool]string{true: "/D", false: ""}[cfg.Drop], len(wr.Created), wr.OptimizerCalls)
		}
	case "offline":
		rep, err := core.OfflineTuneParallel(sess, queries, cfg, nil, *parallel)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("offline tune: MNSA created %d, shrinking set kept %d (essential), drop-listed %d\n",
			len(rep.MNSA.Created), len(rep.Shrink.Kept), len(rep.DropListed))
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	acct := mgr.Snapshot()
	fmt.Printf("\nrecommended statistics (%d, build cost %.0f units, %v):\n",
		len(mgr.Maintained()), acct.TotalBuildCost, acct.TotalBuildTime.Round(1000))
	for _, s := range mgr.Maintained() {
		fmt.Printf("  CREATE STATISTICS %s  -- %d rows, %d distinct\n", s.ID, s.Data.Rows, s.Data.Leading.Distinct)
	}
	if dl := mgr.DropList(); len(dl) > 0 {
		fmt.Printf("drop-list (%d, not maintained):\n", len(dl))
		for _, s := range dl {
			fmt.Printf("  %s\n", s.ID)
		}
	}
	fmt.Printf("maintenance cost per refresh cycle: %.0f units\n", mgr.MaintenanceCostUnits())
	if cs := cache.Stats(); cs.Hits+cs.Misses > 0 {
		fmt.Printf("plan cache: %d hits / %d misses (%.0f%% hit rate), %d evictions, %d cached\n",
			cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Evictions, cs.Size)
	}

	// Execute the workload under the recommendation and report cost.
	ex := executor.New(db)
	if led != nil {
		ex.SetFeedback(led)
	}
	total := 0.0
	for _, stmt := range w.Statements {
		res, err := ex.RunStatement(sess, stmt)
		if err != nil {
			fatal(err)
		}
		total += res.Cost
	}
	fmt.Printf("workload execution cost under recommendation: %.0f units\n", total)

	if led != nil {
		ls := led.Stats()
		fmt.Printf("\nfeedback ledger: %d entries, %d observations, %d evictions, %d corrections applied\n",
			ls.Entries, ls.Observations, ls.Evictions, ls.CorrectionHits)
		worst := led.Entries()
		if len(worst) > 5 {
			worst = worst[:5]
		}
		for _, e := range worst {
			fmt.Printf("  %s(%s) [%s]: %d obs, max q-error %.2f, last est %.1f vs actual %d\n",
				e.Key.Table, e.Key.Columns, e.Key.Signature, e.Count, e.MaxQ, e.LastEst, e.LastActual)
		}
		rep, err := mgr.RunMaintenance(stats.DefaultFeedbackPolicy())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("feedback maintenance: %d counter-refreshed tables, %d feedback-refreshed statistics, %d drops confirmed\n",
			rep.TablesRefreshed, rep.StatsFeedbackRefreshed, rep.StatsDropConfirmed)
	}

	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			fatal(err)
		}
		err = mgr.Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("saved %d statistics to %s\n", len(mgr.All()), *saveTo)
	}

	if *metrics {
		fmt.Printf("\nmetrics:\n")
		if err := obs.Default.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if tracer != nil {
		if err := tracer.Err(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		fmt.Printf("trace written to %s\n", *traceTo)
	}
}

func openDatabase(tblDir, dbName string, scale float64, seed int64) (*storage.Database, error) {
	if tblDir != "" {
		return datagen.LoadTbl(tblDir)
	}
	cfg, err := datagen.ConfigByName(dbName)
	if err != nil {
		return nil, err
	}
	cfg.Scale = scale
	cfg.Seed = seed
	return datagen.Generate(cfg)
}

func openWorkload(db *storage.Database, wlPath string, tpcdOrig bool) (*workload.Workload, error) {
	switch {
	case tpcdOrig:
		return workload.TPCDOrig(db.Schema)
	case wlPath != "":
		f, err := os.Open(wlPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.Load(db.Schema, f)
	default:
		return nil, fmt.Errorf("pass -workload <file> or -tpcd-orig")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "statsadvisor:", err)
	os.Exit(1)
}
