// Command statsadvisor recommends the statistics a workload needs, running
// the paper's algorithms over a freshly generated (or .tbl-loaded) skewed
// TPC-D database:
//
//	mnsa     Magic Number Sensitivity Analysis per query (§4, Figure 1)
//	mnsad    MNSA with non-essential detection / drop-list (§5.1)
//	offline  MNSA followed by the Shrinking Set algorithm (§5.2, §6)
//	all      create every §7.1 candidate statistic (no analysis; baseline)
//
// Usage:
//
//	ragsgen -workload U25-C-100 -db TPCD_2 -o w.sql
//	statsadvisor -db TPCD_2 -workload w.sql -mode offline
//	statsadvisor -db TPCD_4 -tpcd-orig -mode mnsad -verbose
//
// SIGINT/SIGTERM cancel the run cleanly: in-flight tuning stops at the next
// statement or build boundary, and the -metrics dump and -trace file are
// still written before exit. -timeout bounds the whole run the same way;
// -retries enables the resilience layer (retry/backoff, per-table circuit
// breakers, optional -build-timeout), under which failed statistic builds
// degrade the affected queries to magic-number planning instead of aborting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"autostats/internal/core"
	"autostats/internal/datagen"
	"autostats/internal/executor"
	"autostats/internal/feedback"
	"autostats/internal/histogram"
	"autostats/internal/obs"
	"autostats/internal/optimizer"
	"autostats/internal/resilience"
	"autostats/internal/stats"
	"autostats/internal/storage"
	"autostats/internal/workload"
)

var (
	dbName   = flag.String("db", "TPCD_2", "database: TPCD_0 | TPCD_2 | TPCD_4 | TPCD_MIX")
	scale    = flag.Float64("scale", 1, "database scale factor")
	dbSeed   = flag.Int64("db-seed", 42, "database generator seed")
	tblDir   = flag.String("tbl", "", "load database from .tbl files in this directory instead of generating")
	wlPath   = flag.String("workload", "", "workload SQL file (one statement per line)")
	tpcdOrig = flag.Bool("tpcd-orig", false, "use the built-in 17-query TPCD-ORIG workload")
	mode     = flag.String("mode", "mnsa", "mnsa | mnsad | offline | all")
	tPct     = flag.Float64("t", 20, "t-optimizer-cost equivalence threshold (percent)")
	eps      = flag.Float64("eps", 0.0005, "epsilon for the sensitivity extremes")
	single   = flag.Bool("single-column", false, "consider only single-column candidate statistics")
	parallel = flag.Int("parallel", 1, "worker sessions for mnsa/mnsad/offline tuning (<=1 = serial)")
	cacheCap = flag.Int("plan-cache", 1024, "plan cache capacity (0 disables)")
	useFB    = flag.Bool("feedback", false, "capture actual cardinalities during workload execution, apply learned selectivity corrections, and run a feedback-aware maintenance pass")
	verbose  = flag.Bool("verbose", false, "per-query detail")
	saveTo   = flag.String("save-stats", "", "export the resulting statistics set as JSON")
	loadFrom = flag.String("load-stats", "", "import a statistics JSON snapshot before tuning")
	metrics  = flag.Bool("metrics", false, "dump the observability counters after the run")
	traceTo  = flag.String("trace", "", "write a JSONL span trace of the run to this file")
	timeout  = flag.Duration("timeout", 0, "abort the whole run after this long (0 = no deadline)")
	retries  = flag.Int("retries", -1, "enable the resilience layer, retrying each failed statistic build this many times (-1 = resilience off)")
	buildTO  = flag.Duration("build-timeout", 0, "per-statistic build attempt timeout (needs -retries >= 0; 0 = unbounded)")
	buildPar = flag.Int("build-parallelism", 1, "scan partitions per statistic build; partial histograms are merged into a result identical to a single-pass build (<=1 = single-pass)")
	incr     = flag.Bool("incremental", false, "incremental statistics maintenance: refreshes fold logged row deltas into histograms instead of rescanning")
	foldFrac = flag.Float64("max-fold-fraction", 0, "folded-rows fraction above which a refresh rebuilds from a full scan (needs -incremental; 0 = default 0.1)")
	buildMem = flag.Int64("build-mem-budget", 0, "streaming-build memory budget in bytes: scan in blocks and spill finished partials past the budget (0 disables streaming builds)")
	blockSz  = flag.Int("block-size", 0, "rows per scan block for streaming builds (0 = default; needs -build-mem-budget)")
)

func main() {
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var tracer *obs.JSONLTracer
	var traceFile *os.File
	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "statsadvisor:", err)
			os.Exit(1)
		}
		traceFile = f
		tracer = obs.NewJSONLTracer(f)
		obs.Default.AddTracer(tracer)
	}

	err := run(ctx)

	// Observability output is flushed even when the run failed or was
	// interrupted: a canceled run still leaves its metrics and trace behind.
	if *metrics {
		fmt.Printf("\nmetrics:\n")
		if werr := obs.Default.WriteText(os.Stdout); werr != nil && err == nil {
			err = werr
		}
	}
	if tracer != nil {
		if terr := tracer.Err(); terr != nil && err == nil {
			err = fmt.Errorf("trace: %w", terr)
		}
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
		fmt.Printf("trace written to %s\n", *traceTo)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "statsadvisor: interrupted:", err)
		} else {
			fmt.Fprintln(os.Stderr, "statsadvisor:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	db, err := openDatabase(*tblDir, *dbName, *scale, *dbSeed)
	if err != nil {
		return err
	}
	w, err := openWorkload(db, *wlPath, *tpcdOrig)
	if err != nil {
		return err
	}
	queries := w.Queries()
	fmt.Printf("database %s (%d rows), workload %s: %d statements, %d queries\n",
		*dbName, db.TotalRows(), w.Name, len(w.Statements), len(queries))

	mgr := stats.NewManager(db, histogram.MaxDiff, 0)
	if *loadFrom != "" {
		f, err := os.Open(*loadFrom)
		if err != nil {
			return err
		}
		err = mgr.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d statistics from %s\n", len(mgr.All()), *loadFrom)
	}
	if *buildPar > 1 {
		mgr.SetBuildParallelism(*buildPar)
		fmt.Printf("partition-parallel builds: %d partitions per scan\n", *buildPar)
	}
	if *incr {
		if err := mgr.SetIncrementalMaintenance(stats.FoldConfig{
			Enabled:         true,
			MaxFoldFraction: *foldFrac,
		}); err != nil {
			return err
		}
		fmt.Printf("incremental maintenance: refreshes fold row deltas (max fold fraction %v)\n", *foldFrac)
	}
	if *buildMem > 0 {
		if err := mgr.SetStreamingBuild(stats.StreamConfig{
			Enabled:        true,
			BlockSize:      *blockSz,
			MemBudgetBytes: *buildMem,
		}); err != nil {
			return err
		}
		fmt.Printf("streaming builds: %d-byte memory budget\n", *buildMem)
	}
	sess := optimizer.NewSession(mgr)
	cache := optimizer.NewPlanCache(*cacheCap)
	sess.SetPlanCache(cache)
	var led *feedback.Ledger
	if *useFB {
		led = feedback.NewLedger(feedback.ManagerVersions(mgr), feedback.Config{})
		sess.SetCorrections(led)
		mgr.SetFeedbackProvider(led)
	}
	cfg := core.DefaultConfig()
	cfg.T = *tPct
	cfg.Epsilon = *eps
	if *single {
		cfg.CandidateFn = core.SingleColumnCandidates
	}
	var guard *resilience.Guard
	if *retries >= 0 {
		retry := resilience.DefaultRetry(*dbSeed)
		retry.MaxAttempts = *retries + 1
		guard = resilience.NewGuard(mgr, resilience.GuardConfig{
			Retry:        retry,
			BuildTimeout: *buildTO,
			Seed:         *dbSeed,
		})
		cfg.Builder = guard
	}

	switch *mode {
	case "all":
		cands := core.WorkloadCandidates(queries, cfg.CandidateFn)
		for _, c := range cands {
			if err := ctx.Err(); err != nil {
				return err
			}
			if _, err := mgr.Create(c.Table, c.Columns); err != nil {
				return err
			}
		}
		fmt.Printf("created all %d candidate statistics\n", len(cands))
	case "mnsa", "mnsad":
		cfg.Drop = *mode == "mnsad"
		if *verbose {
			for i, q := range queries {
				r, err := core.RunMNSACtx(ctx, sess, q, cfg)
				if err != nil {
					return err
				}
				degr := ""
				if r.Degraded() {
					degr = fmt.Sprintf(" DEGRADED(%d builds failed)", len(r.BuildFailures))
				}
				fmt.Printf("Q%-3d created=%d droplisted=%d optcalls=%d (%s)%s\n",
					i+1, len(r.Created), len(r.DropListed), r.OptimizerCalls, r.TerminatedBy, degr)
			}
		} else {
			wr, err := core.RunMNSAWorkloadParallelCtx(ctx, sess, queries, cfg, *parallel)
			if err != nil {
				return err
			}
			fmt.Printf("MNSA%s: created %d statistics with %d optimizer calls\n",
				map[bool]string{true: "/D", false: ""}[cfg.Drop], len(wr.Created), wr.OptimizerCalls)
			reportDegraded(wr.BuildFailures, guard)
		}
	case "offline":
		rep, err := core.OfflineTuneParallelCtx(ctx, sess, queries, cfg, nil, *parallel)
		if err != nil {
			return err
		}
		fmt.Printf("offline tune: MNSA created %d, shrinking set kept %d (essential), drop-listed %d\n",
			len(rep.MNSA.Created), len(rep.Shrink.Kept), len(rep.DropListed))
		reportDegraded(rep.BuildFailures(), guard)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	acct := mgr.Snapshot()
	fmt.Printf("\nrecommended statistics (%d, build cost %.0f units, %v):\n",
		len(mgr.Maintained()), acct.TotalBuildCost, acct.TotalBuildTime.Round(1000))
	for _, s := range mgr.Maintained() {
		fmt.Printf("  CREATE STATISTICS %s  -- %d rows, %d distinct\n", s.ID, s.Data.Rows, s.Data.Leading.Distinct)
	}
	if dl := mgr.DropList(); len(dl) > 0 {
		fmt.Printf("drop-list (%d, not maintained):\n", len(dl))
		for _, s := range dl {
			fmt.Printf("  %s\n", s.ID)
		}
	}
	fmt.Printf("maintenance cost per refresh cycle: %.0f units\n", mgr.MaintenanceCostUnits())
	if cs := cache.Stats(); cs.Hits+cs.Misses > 0 {
		fmt.Printf("plan cache: %d hits / %d misses (%.0f%% hit rate), %d evictions, %d cached across %d shards\n",
			cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Evictions, cs.Size, cs.Shards)
	}

	// Execute the workload under the recommendation and report cost.
	ex := executor.New(db)
	if led != nil {
		ex.SetFeedback(led)
	}
	total := 0.0
	for _, stmt := range w.Statements {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := ex.RunStatement(sess, stmt)
		if err != nil {
			return err
		}
		total += res.Cost
	}
	fmt.Printf("workload execution cost under recommendation: %.0f units\n", total)

	if led != nil {
		ls := led.Stats()
		fmt.Printf("\nfeedback ledger: %d entries, %d observations, %d evictions, %d corrections applied\n",
			ls.Entries, ls.Observations, ls.Evictions, ls.CorrectionHits)
		worst := led.Entries()
		if len(worst) > 5 {
			worst = worst[:5]
		}
		for _, e := range worst {
			fmt.Printf("  %s(%s) [%s]: %d obs, max q-error %.2f, last est %.1f vs actual %d\n",
				e.Key.Table, e.Key.Columns, e.Key.Signature, e.Count, e.MaxQ, e.LastEst, e.LastActual)
		}
		rep, err := mgr.RunMaintenanceCtx(ctx, stats.DefaultFeedbackPolicy())
		if err != nil {
			return err
		}
		fmt.Printf("feedback maintenance: %d counter-refreshed tables, %d feedback-refreshed statistics, %d drops confirmed\n",
			rep.TablesRefreshed, rep.StatsFeedbackRefreshed, rep.StatsDropConfirmed)
	}

	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			return err
		}
		err = mgr.Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("saved %d statistics to %s\n", len(mgr.All()), *saveTo)
	}
	return nil
}

// reportDegraded summarizes degraded-mode tuning: which builds failed and
// why, and where the circuit breakers ended up.
func reportDegraded(failures []core.BuildFailure, guard *resilience.Guard) {
	if len(failures) == 0 {
		return
	}
	fmt.Printf("DEGRADED: %d statistic build(s) failed; affected queries were planned on magic numbers:\n", len(failures))
	for _, f := range failures {
		fmt.Printf("  %s: %s (%v)\n", f.ID, f.Reason, f.Err)
	}
	if guard != nil {
		for _, ts := range guard.Breakers().States() {
			fmt.Printf("  breaker %-12s %-9s (%d trips)\n", ts.Table, ts.State, ts.Trips)
		}
	}
}

func openDatabase(tblDir, dbName string, scale float64, seed int64) (*storage.Database, error) {
	if tblDir != "" {
		return datagen.LoadTbl(tblDir)
	}
	cfg, err := datagen.ConfigByName(dbName)
	if err != nil {
		return nil, err
	}
	cfg.Scale = scale
	cfg.Seed = seed
	return datagen.Generate(cfg)
}

func openWorkload(db *storage.Database, wlPath string, tpcdOrig bool) (*workload.Workload, error) {
	switch {
	case tpcdOrig:
		return workload.TPCDOrig(db.Schema)
	case wlPath != "":
		f, err := os.Open(wlPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.Load(db.Schema, f)
	default:
		return nil, fmt.Errorf("pass -workload <file> or -tpcd-orig")
	}
}
