// Command oracle drives the randomized correctness harness in
// internal/oracle from the command line. Two modes:
//
// Short mode (default) runs every oracle once from a fixed seed — the same
// deterministic sweep the tier-1 tests run, useful for reproducing a CI
// failure locally:
//
//	oracle -seed 7 -queries 1000
//
// Long mode loops over fresh seeds until a time budget is exhausted — the
// CI nightly soak. Every failure prints the seed that produced it, so a
// nightly red run is a one-line local repro:
//
//	oracle -duration 10m
//
// On failure the offending seeds are also written to -failure-file (default
// oracle-failures.txt) for artifact upload, and the process exits 1.
// SIGINT/SIGTERM stop the soak at the next seed boundary; seeds that already
// failed are still written to -failure-file before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autostats/internal/oracle"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "starting seed (short mode runs exactly this seed)")
		queries  = flag.Int("queries", 1000, "differential sweep size per seed")
		meta     = flag.Int("meta", 20, "queries per metamorphic oracle per seed")
		samples  = flag.Int("samples", 3, "interior samples per query in the bracket oracle")
		scale    = flag.Float64("scale", 0.05, "database scale factor")
		zipf     = flag.Float64("zipf", 2, "data skew parameter z")
		simple   = flag.Bool("simple", false, "restrict the workload to single-table queries")
		duration = flag.Duration("duration", 0, "long mode: loop over seeds until this much time has passed")
		failFile = flag.String("failure-file", "oracle-failures.txt", "long mode: write failing seeds here")
		chaosRun = flag.Bool("chaos", false, "run the network chaos sweep instead of the correctness oracles")
		sessions = flag.Int("sessions", 16, "chaos mode: concurrent client sessions")
		requests = flag.Int("requests", 20, "chaos mode: requests per session")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *chaosRun {
		runChaosMode(ctx, *seed, *sessions, *requests, *duration, *failFile)
		return
	}

	if *duration <= 0 {
		findings, err := runSeed(*seed, *queries, *meta, *samples, *scale, *zipf, *simple)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oracle:", err)
			os.Exit(1)
		}
		if findings > 0 {
			fmt.Printf("oracle: seed %d FAILED with %d findings\n", *seed, findings)
			os.Exit(1)
		}
		fmt.Printf("oracle: seed %d clean\n", *seed)
		return
	}

	deadline := time.Now().Add(*duration)
	var failed []int64
	interrupted := false
	s := *seed
	for time.Now().Before(deadline) {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		findings, err := runSeed(s, *queries, *meta, *samples, *scale, *zipf, *simple)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oracle: seed %d: %v\n", s, err)
			failed = append(failed, s)
		} else if findings > 0 {
			failed = append(failed, s)
		}
		s++
	}
	ran := s - *seed
	if len(failed) > 0 {
		f, err := os.Create(*failFile)
		if err == nil {
			for _, fs := range failed {
				fmt.Fprintf(f, "%d\n", fs)
			}
			f.Close()
		}
		fmt.Printf("oracle: %d/%d seeds FAILED: %v (repro: oracle -seed <n>; seeds in %s)\n",
			len(failed), ran, failed, *failFile)
		os.Exit(1)
	}
	if interrupted {
		fmt.Printf("oracle: interrupted after %d clean seeds\n", ran)
		os.Exit(1)
	}
	fmt.Printf("oracle: %d seeds clean in %s\n", ran, *duration)
}

// runChaosMode runs the network chaos sweep: a real server behind the
// fault-injecting proxy, robustness invariants asserted after the swarm.
// With -duration it loops over fresh seeds until the budget is spent (the
// nightly soak); otherwise it runs exactly -seed once (the CI smoke).
func runChaosMode(ctx context.Context, seed int64, sessions, requests int, duration time.Duration, failFile string) {
	deadline := time.Now().Add(duration)
	var failed []int64
	s := seed
	for {
		findings, err := runChaosSeed(s, sessions, requests)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oracle: chaos seed %d: %v\n", s, err)
			failed = append(failed, s)
		} else if findings > 0 {
			failed = append(failed, s)
		}
		s++
		if duration <= 0 || !time.Now().Before(deadline) || ctx.Err() != nil {
			break
		}
	}
	ran := s - seed
	if len(failed) > 0 {
		if f, err := os.Create(failFile); err == nil {
			for _, fs := range failed {
				fmt.Fprintf(f, "%d\n", fs)
			}
			f.Close()
		}
		fmt.Printf("oracle: chaos %d/%d seeds FAILED: %v (repro: oracle -chaos -seed <n>)\n",
			len(failed), ran, failed)
		os.Exit(1)
	}
	fmt.Printf("oracle: chaos %d seeds clean\n", ran)
}

// runChaosSeed runs one chaos sweep and prints its findings and summary.
func runChaosSeed(seed int64, sessions, requests int) (int, error) {
	start := time.Now()
	rep, err := oracle.RunChaosSweep(oracle.ChaosOptions{
		Seed:               seed,
		Sessions:           sessions,
		RequestsPerSession: requests,
	})
	if err != nil {
		return 0, err
	}
	for _, f := range rep.Findings {
		fmt.Printf("FAIL %s\n", f)
	}
	fmt.Printf("chaos seed %-6d %4d requests (%d ok, %d typed, %d transport, %d hangs) | proxy: %d resets %d torn %d corrupt | drain: adm %d cmp %d drop %d | %d findings | %.1fs\n",
		seed, rep.Requests, rep.OK, rep.TypedErrs, rep.Transport, rep.Hangs,
		rep.Proxy.Resets, rep.Proxy.Torn, rep.Proxy.Corrupted,
		rep.Drain.Admitted, rep.Drain.Completed, rep.Drain.Dropped,
		len(rep.Findings), time.Since(start).Seconds())
	return len(rep.Findings), nil
}

// runSeed runs all five oracles once for the given seed and prints every
// finding. It returns the finding count so the caller can decide the exit
// status (an error means the harness itself broke, not that an oracle
// disagreed).
func runSeed(seed int64, queries, meta, samples int, scale, zipf float64, simple bool) (int, error) {
	start := time.Now()
	h, err := oracle.New(oracle.Options{Seed: seed, Scale: scale, Zipf: zipf, SimpleQueries: simple})
	if err != nil {
		return 0, fmt.Errorf("harness: %w", err)
	}

	findings := 0
	report := func(fs []oracle.Finding) {
		for _, f := range fs {
			fmt.Printf("FAIL %s\n", f)
		}
		findings += len(fs)
	}

	diff, err := h.RunDifferential(queries)
	if err != nil {
		return findings, fmt.Errorf("differential: %w", err)
	}
	report(diff.Findings)

	mono, err := h.RunMonotonicity(meta)
	if err != nil {
		return findings, fmt.Errorf("monotonicity: %w", err)
	}
	report(mono.Findings)

	brk, err := h.RunExtremeBracket(meta, samples)
	if err != nil {
		return findings, fmt.Errorf("bracket: %w", err)
	}
	report(brk.Findings)

	shr, err := h.RunShrinkPreservation(meta)
	if err != nil {
		return findings, fmt.Errorf("shrink: %w", err)
	}
	report(shr.Findings)

	deg, err := h.RunDegradedRecovery(meta)
	if err != nil {
		return findings, fmt.Errorf("degraded-recovery: %w", err)
	}
	report(deg.Findings)

	strm, err := h.RunStreamingSweep()
	if err != nil {
		return findings, fmt.Errorf("streaming: %w", err)
	}
	report(strm.Findings)

	fmt.Printf("seed %-6d %4d queries (%d dml, %d skipped, %d mnsa, %d maint) | mono %d asserts | bracket %d asserts | shrink %d plans | degraded %d/%d (%d inj, %d trips) | stream %d builds %d merges | %d findings | %.1fs\n",
		seed, diff.Queries, diff.DML, diff.Skipped, diff.MNSARuns, diff.MaintenanceRuns,
		mono.Assertions, brk.Assertions, shr.Checked,
		deg.DegradedPlans, deg.Queries, deg.Injections, deg.BreakerTrips,
		strm.Builds, strm.MergeOrders,
		findings, time.Since(start).Seconds())
	return findings, nil
}
