package autostats

import (
	"sync"
	"sync/atomic"

	"autostats/internal/optimizer"
)

// sessionPool hands out per-call optimizer session clones so that Exec and
// Explain can run from any number of goroutines at once. Clones share the
// concurrency-safe statistics manager, plan cache, correction source and
// metric handles; each clone's mutable buffers (ignore set, overrides,
// template memo) belong to exactly one borrower at a time.
//
// The clone source ("proto") is a dedicated session that is never optimized
// on, so borrowing can never race with the facade's own shared session being
// mutated by a tuning run. Configuration methods that change what clones
// must capture (plan cache, corrections) rebuild the proto AND discard the
// pool via reset; configuration is documented as not concurrent with
// serving, matching the usual Go server pattern of configure-then-serve.
type sessionPool struct {
	proto atomic.Pointer[optimizer.Session]
	pool  atomic.Pointer[sync.Pool]
}

func newSessionPool(proto *optimizer.Session) *sessionPool {
	sp := &sessionPool{}
	sp.reset(proto)
	return sp
}

// reset installs a new clone source and empties the pool. Callers must hold
// the system mutex and must not race with in-flight borrowers.
func (sp *sessionPool) reset(proto *optimizer.Session) {
	sp.proto.Store(proto)
	sp.pool.Store(&sync.Pool{})
}

func (sp *sessionPool) get() *optimizer.Session {
	if v := sp.pool.Load().Get(); v != nil {
		return v.(*optimizer.Session)
	}
	return sp.proto.Load().Clone()
}

func (sp *sessionPool) put(s *optimizer.Session) {
	sp.pool.Load().Put(s)
}

// refreshSessions rebuilds the pool's clone source from the facade session's
// current configuration. Called by configuration methods after they mutate
// session-captured state (plan cache, correction source).
func (s *System) refreshSessions() {
	s.sessions.reset(s.sess.Clone())
}
