package autostats

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// panicAllowlist maps files permitted to call panic to the number of calls
// they may contain. internal/datagen/schema.go panics only while building
// the static TPC-D schema from literals — a programming error, not a data
// error — and predates the no-panic policy.
var panicAllowlist = map[string]int{
	filepath.Join("internal", "datagen", "schema.go"): 3,
}

// TestNoPanicsInLibraryCode enforces the repo policy that library code under
// internal/ returns errors instead of panicking: a panic in the optimizer or
// statistics manager takes down the host process, while an error surfaces as
// a failed query. Test files are exempt, as are the allowlisted legacy calls.
func TestNoPanicsInLibraryCode(t *testing.T) {
	fset := token.NewFileSet()
	err := filepath.WalkDir("internal", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(fset, path, src, 0)
		if err != nil {
			return err
		}
		count := 0
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				count++
				if count > panicAllowlist[path] {
					t.Errorf("%s: panic call at %s — library code must return an error", path, fset.Position(call.Pos()))
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
