package autostats_test

// Benchmark harness: one testing.B benchmark per table/figure of the paper's
// §8 evaluation (plus the §1 motivating experiment and the DESIGN.md
// ablations). Each benchmark runs the corresponding experiment cell and
// reports the paper's headline metric as a custom unit, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. Use cmd/experiments for the full
// formatted tables.

import (
	"strings"
	"testing"

	"autostats"
	"autostats/internal/bench"
	"autostats/internal/core"
)

// metricUnit makes an ablation label usable as a testing.B metric unit
// (units must not contain whitespace).
func metricUnit(label, suffix string) string {
	return strings.ReplaceAll(label, " ", "") + suffix
}

const (
	benchScale = 0.5
	benchSeed  = 1
)

// BenchmarkIntroPlanChanges regenerates the §1 motivating experiment:
// TPCD-ORIG plans re-optimized after statistics creation (paper: 15/17
// change and improve).
func BenchmarkIntroPlanChanges(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Intro("TPCD_2", 1.0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Changed), "plans-changed/17")
		b.ReportMetric(float64(res.Improved), "plans-improved/17")
	}
}

func benchFig3(b *testing.B, db string) {
	for i := 0; i < b.N; i++ {
		row, err := bench.Figure3(db, "U0-C-100", benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.CreationReductionPct, "creation-reduction-%")
		b.ReportMetric(row.ExecIncreasePct, "exec-increase-%")
	}
}

// BenchmarkFigure3CandidateStats — Figure 3, candidate statistics algorithm
// vs exhaustive baseline (paper: 50-80 % creation-time reduction, ≤3 % exec
// increase), one sub-benchmark per database distribution.
func BenchmarkFigure3CandidateStats(b *testing.B) {
	for _, db := range []string{"TPCD_0", "TPCD_2", "TPCD_4", "TPCD_MIX"} {
		b.Run(db, func(b *testing.B) { benchFig3(b, db) })
	}
}

func benchFig4(b *testing.B, db string, singleCol bool) {
	fn := core.CandidateStats
	if singleCol {
		fn = core.SingleColumnCandidates
	}
	for i := 0; i < b.N; i++ {
		row, err := bench.Figure4(db, "U0-C-100", benchScale, benchSeed, fn)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.CreationReductionPct, "creation-reduction-%")
		b.ReportMetric(row.ExecIncreasePct, "exec-increase-%")
		b.ReportMetric(float64(row.OptimizerCalls), "optimizer-calls")
	}
}

// BenchmarkFigure4MNSA — Figure 4, MNSA vs creating all candidate statistics
// (paper: 30-45 % creation-time reduction incl. MNSA overhead, ≤2 % exec
// increase).
func BenchmarkFigure4MNSA(b *testing.B) {
	for _, db := range []string{"TPCD_0", "TPCD_2", "TPCD_4", "TPCD_MIX"} {
		b.Run(db, func(b *testing.B) { benchFig4(b, db, false) })
	}
}

// BenchmarkFigure4SingleColumn — the §8.2 variant restricted to
// single-column candidates (paper: >30 % reduction in all cases; see
// EXPERIMENTS.md for why our micro-scale substrate lands lower).
func BenchmarkFigure4SingleColumn(b *testing.B) {
	for _, db := range []string{"TPCD_0", "TPCD_2", "TPCD_4", "TPCD_MIX"} {
		b.Run(db, func(b *testing.B) { benchFig4(b, db, true) })
	}
}

// BenchmarkTable1MNSADUpdateCost — Table 1, reduction in statistics update
// cost of MNSA/D vs MNSA on the U25-C-100 workload (paper: 30-34 %), plus
// the §8.2 re-run quality check (paper: ≤6 % exec increase).
func BenchmarkTable1MNSADUpdateCost(b *testing.B) {
	for _, db := range []string{"TPCD_0", "TPCD_2", "TPCD_4", "TPCD_MIX"} {
		b.Run(db, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row, err := bench.Table1(db, "U25-C-100", benchScale, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(row.UpdateReductionPct, "update-reduction-%")
				b.ReportMetric(row.ReplayReductionPct, "replay-reduction-%")
				b.ReportMetric(row.ExecIncreasePct, "rerun-exec-increase-%")
			}
		})
	}
}

// BenchmarkAblationThreshold sweeps the t-optimizer-cost threshold
// (DESIGN.md ablation ✦).
func BenchmarkAblationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationThreshold("TPCD_2", "U0-C-60", benchScale, benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.StatsCreated), metricUnit(r.Label, "-stats"))
		}
	}
}

// BenchmarkAblationEpsilon sweeps ε (DESIGN.md ablation ✦).
func BenchmarkAblationEpsilon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationEpsilon("TPCD_2", "U0-C-60", benchScale, benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.StatsCreated), metricUnit(r.Label, "-stats"))
		}
	}
}

// BenchmarkAblationNextStat compares the §4.2 most-expensive-operator
// heuristic against random statistic selection (DESIGN.md ablation ✦).
func BenchmarkAblationNextStat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationNextStat("TPCD_2", "U0-C-60", benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.CreationUnits, metricUnit(r.Label, "-units"))
		}
	}
}

// BenchmarkOptimize measures raw optimization throughput on a 5-way join.
func BenchmarkOptimize(b *testing.B) {
	sys, err := autostats.GenerateTPCD(autostats.TPCDOptions{Scale: 0.5, Skew: 2})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.CreateIndexedColumnStats(); err != nil {
		b.Fatal(err)
	}
	sql := "SELECT * FROM customer, orders, lineitem, supplier, nation WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND l_suppkey = s_suppkey AND s_nationkey = n_nationkey AND c_acctbal > 0"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Explain(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadTuning compares serial and parallel MNSA workload tuning
// wall-clock on identical fresh systems (tentpole: the parallel driver
// should beat serial on multi-core machines while producing the same
// statistics set — the set check lives in internal/core's tests).
func BenchmarkWorkloadTuning(b *testing.B) {
	for _, p := range []int{1, 4} {
		name := map[int]string{1: "serial", 4: "parallel4"}[p]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys, err := autostats.GenerateTPCD(autostats.TPCDOptions{Scale: benchScale, Skew: 2})
				if err != nil {
					b.Fatal(err)
				}
				sqls, err := sys.GenerateWorkload(autostats.WorkloadOptions{Count: 40})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				rep, err := sys.TuneWorkload(sqls, autostats.TuneOptions{Parallelism: p})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(rep.Created)), "stats-created")
			}
		})
	}
}

// BenchmarkOptimizeCached measures repeated optimization of a workload with
// and without the plan cache; steady-state re-optimization of a repeating
// workload should be dominated by cache hits.
func BenchmarkOptimizeCached(b *testing.B) {
	setup := func(b *testing.B, cacheCap int) (*autostats.System, []string) {
		sys, err := autostats.GenerateTPCD(autostats.TPCDOptions{Scale: benchScale, Skew: 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.CreateIndexedColumnStats(); err != nil {
			b.Fatal(err)
		}
		sys.SetPlanCacheCapacity(cacheCap)
		sqls, err := sys.GenerateWorkload(autostats.WorkloadOptions{Count: 30})
		if err != nil {
			b.Fatal(err)
		}
		return sys, sqls
	}
	run := func(b *testing.B, cacheCap int) {
		sys, sqls := setup(b, cacheCap)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, sql := range sqls {
				if _, err := sys.Explain(sql); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		if st := sys.PlanCacheStats(); st.Hits+st.Misses > 0 {
			b.ReportMetric(100*st.HitRate(), "hit-rate-%")
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, 0) })
	b.Run("cached", func(b *testing.B) { run(b, autostats.DefaultPlanCacheCapacity) })
}

// BenchmarkStatisticsBuild measures histogram construction cost on the
// largest table.
func BenchmarkStatisticsBuild(b *testing.B) {
	sys, err := autostats.GenerateTPCD(autostats.TPCDOptions{Scale: 1, Skew: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.CreateStatistic("lineitem", "l_shipdate"); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		sys.DropStatistic("lineitem", "l_shipdate")
		b.StartTimer()
	}
}

// BenchmarkMNSAQuery measures a single-query MNSA run end to end.
func BenchmarkMNSAQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := autostats.GenerateTPCD(autostats.TPCDOptions{Scale: 0.5, Skew: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := sys.TuneQuery("SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 45 AND o_totalprice > 400000", autostats.TuneOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationShrinkFast compares Figure 2's Shrinking Set against the
// §5.2 seeded variant (optimizer calls and survivor counts).
func BenchmarkAblationShrinkFast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		slowKept, slowCalls, fastKept, fastCalls, err := bench.AblationShrinkFast("TPCD_2", "U0-C-60", benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(slowKept), "slow-kept")
		b.ReportMetric(float64(slowCalls), "slow-calls")
		b.ReportMetric(float64(fastKept), "fast-kept")
		b.ReportMetric(float64(fastCalls), "fast-calls")
	}
}

// BenchmarkAblationCostWeighted sweeps the §6 cost-coverage knob.
func BenchmarkAblationCostWeighted(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationCostWeighted("TPCD_2", "U0-C-60", benchScale, benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.CreationUnits, metricUnit(r.Label, "-units"))
		}
	}
}

// BenchmarkAblationHistogramKind compares MaxDiff vs equi-depth histograms
// under identical MNSA selection (§1: the algorithms are oblivious to the
// statistics structure; the structure still matters for plan quality).
func BenchmarkAblationHistogramKind(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationHistogramKind("TPCD_2", "U0-C-60", benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.ExecCost, metricUnit(r.Label, "-exec"))
		}
	}
}

// BenchmarkAblationSampling sweeps the statistics-construction sample
// fraction (§2's complementary technique).
func BenchmarkAblationSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationSampling("TPCD_2", "U0-C-60", benchScale, benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.CreationUnits, metricUnit(r.Label, "-units"))
		}
	}
}
