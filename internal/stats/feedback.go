package stats

// QErrorSummary aggregates execution-feedback accuracy for predicates whose
// estimates depend on one column: how many times the optimizer's estimate for
// a predicate over table.Column was compared against the executor's actual
// row count, and how wrong it was. Q-error is max(est,actual)/min(est,actual)
// with both sides floored at one row, so 1.0 is a perfect estimate and the
// value is symmetric in over- and under-estimation.
type QErrorSummary struct {
	Table  string
	Column string
	// Count is the number of observations backing the summary.
	Count int64
	// MaxQ is the worst q-error observed in the current evidence window.
	MaxQ float64
	// MeanQ is the geometric mean q-error of the window.
	MeanQ float64
}

// FeedbackProvider supplies execution-feedback accuracy summaries to the
// maintenance policy. Implementations must only report evidence gathered
// against the CURRENT statistics epoch and data version — any refresh or DML
// starts a fresh window — so a feedback-triggered refresh cannot re-fire on
// the evidence that caused it. The interface is defined here (and implemented
// by internal/feedback) to keep the dependency pointing feedback -> stats.
type FeedbackProvider interface {
	QErrorSummaries() []QErrorSummary
}

// SetFeedbackProvider installs (or, with nil, removes) the execution-feedback
// source consulted by RunMaintenance. Safe for concurrent use.
func (m *Manager) SetFeedbackProvider(p FeedbackProvider) {
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	m.feedback = p
}

// feedbackProvider returns the installed provider, or nil.
func (m *Manager) feedbackProvider() FeedbackProvider {
	m.cfgMu.RLock()
	defer m.cfgMu.RUnlock()
	return m.feedback
}
