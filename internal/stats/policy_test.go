package stats

import (
	"sync"
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/histogram"
	"autostats/internal/storage"
)

// maintDB builds a database with two tables so a maintenance pass over one
// can run while another goroutine refreshes the other.
func maintDB(t *testing.T) *storage.Database {
	t.Helper()
	schema := catalog.NewSchema()
	for _, name := range []string{"hot", "cold"} {
		if err := schema.AddTable(catalog.NewTable(name,
			catalog.Column{Name: "v", Type: catalog.Int},
		)); err != nil {
			t.Fatal(err)
		}
	}
	db, err := storage.NewDatabase("maint", schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"hot", "cold"} {
		td := mustTable(t, db, name)
		for i := 0; i < 100; i++ {
			if err := td.Insert(storage.Row{catalog.NewInt(int64(i % 7))}); err != nil {
				t.Fatal(err)
			}
		}
		td.ResetModCounter()
	}
	return db
}

// TestMaintenanceReportCost: UpdateCostUnits must equal exactly the build
// cost of the statistics the pass itself refreshed.
func TestMaintenanceReportCost(t *testing.T) {
	db := maintDB(t)
	m := NewManager(db, histogram.MaxDiff, 0)
	if _, err := m.Create("hot", []string{"v"}); err != nil {
		t.Fatal(err)
	}
	td := mustTable(t, db, "hot")
	for i := 0; i < 50; i++ {
		if err := td.Insert(storage.Row{catalog.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := m.RunMaintenance(MaintenancePolicy{UpdateFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TablesRefreshed != 1 || rep.StatsRefreshed != 1 {
		t.Fatalf("report = %+v, want 1 table / 1 stat refreshed", rep)
	}
	want := histogram.BuildCostUnits(int64(td.RowCount()), 1)
	if rep.UpdateCostUnits != want {
		t.Errorf("UpdateCostUnits = %v, want %v", rep.UpdateCostUnits, want)
	}
}

// TestMaintenanceCostUnderConcurrentRefresh: a maintenance pass must report
// only its own refresh cost even while another goroutine hammers RefreshTable
// on a different table. The old implementation diffed the manager-wide
// TotalUpdateCost around the pass, so the concurrent refreshes leaked into
// the report.
func TestMaintenanceCostUnderConcurrentRefresh(t *testing.T) {
	db := maintDB(t)
	m := NewManager(db, histogram.MaxDiff, 0)
	for _, tbl := range []string{"hot", "cold"} {
		if _, err := m.Create(tbl, []string{"v"}); err != nil {
			t.Fatal(err)
		}
	}
	// Dirty only "hot": the pass must refresh hot and leave cold alone.
	hot := mustTable(t, db, "hot")
	for i := 0; i < 50; i++ {
		if err := hot.Insert(storage.Row{catalog.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := m.RefreshTable("cold"); err != nil {
				t.Errorf("concurrent refresh: %v", err)
				return
			}
		}
	}()

	var passCost float64
	for i := 0; i < 5; i++ {
		rep, err := m.RunMaintenance(MaintenancePolicy{UpdateFraction: 0.2})
		if err != nil {
			close(stop)
			t.Fatal(err)
		}
		passCost += rep.UpdateCostUnits
	}
	close(stop)
	wg.Wait()
	// One more refresh outside the passes so the overcount check below cannot
	// depend on goroutine scheduling.
	if _, err := m.RefreshTable("cold"); err != nil {
		t.Fatal(err)
	}

	// RefreshTable resets the mod counter, so only the first pass refreshes
	// hot; its cost is exactly one rebuild of hot(v) at the current row count.
	want := histogram.BuildCostUnits(int64(hot.RowCount()), 1)
	if passCost != want {
		t.Errorf("maintenance passes charged %v, want %v (concurrent refreshes must not leak in)", passCost, want)
	}
	// Sanity: the concurrent refreshes really did land on the global counter,
	// i.e. the old diff-the-global approach would have overcounted.
	if got := m.Snapshot().TotalUpdateCost; got <= want {
		t.Errorf("TotalUpdateCost = %v, expected concurrent refreshes beyond %v", got, want)
	}
}

// TestMaintenanceRefreshesEmptiedTable is the mass-delete regression test:
// a table whose rows were ALL deleted still has pending modifications, and
// the maintenance pass must refresh its statistics so they report zero rows.
// (A former guard skipped tables with RowCount 0 entirely, stranding their
// statistics at the pre-delete cardinalities forever.)
func TestMaintenanceRefreshesEmptiedTable(t *testing.T) {
	db := maintDB(t)
	m := NewManager(db, histogram.MaxDiff, 0)
	st, err := m.Create("hot", []string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Data.Rows != 100 {
		t.Fatalf("pre-delete stat rows = %d, want 100", st.Data.Rows)
	}
	td := mustTable(t, db, "hot")
	var ids []int
	td.Scan(func(id int, _ storage.Row) bool {
		ids = append(ids, id)
		return true
	})
	if n := td.Delete(ids); n != 100 {
		t.Fatalf("deleted %d rows, want 100", n)
	}
	rep, err := m.RunMaintenance(MaintenancePolicy{UpdateFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TablesRefreshed != 1 || rep.StatsRefreshed != 1 {
		t.Fatalf("report = %+v, want the emptied table refreshed", rep)
	}
	fresh := m.Get(st.ID)
	if fresh == st {
		t.Fatal("statistic was not refreshed after mass delete")
	}
	if fresh.Data.Rows != 0 || fresh.Data.Leading.TotalRows() != 0 {
		t.Errorf("refreshed stat reports %d rows (histogram %d), want 0",
			fresh.Data.Rows, fresh.Data.Leading.TotalRows())
	}
	// The counter was reset: an immediately repeated pass is a no-op.
	rep2, err := m.RunMaintenance(MaintenancePolicy{UpdateFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TablesRefreshed != 0 {
		t.Errorf("second pass refreshed %d tables, want 0", rep2.TablesRefreshed)
	}
}
