package stats

import (
	"context"
	"fmt"
	"strings"
	"time"

	"autostats/internal/catalog"
	"autostats/internal/histogram"
)

// Statistic construction and incremental maintenance. Builds are
// partition-parallel: the table scan is split into contiguous partitions,
// each partition is summarized into a mergeable partial concurrently, and
// the partials are merged into the final histogram — bitwise-identical to a
// single-pass build (see internal/histogram's merge machinery). Refreshes
// can avoid the scan entirely by folding logged row deltas into the
// existing histogram, falling back to a full rebuild once the folded
// fraction crosses FoldConfig.MaxFoldFraction.

// DefaultMaxFoldFraction bounds the fold error when FoldConfig does not:
// once folded row deltas exceed this fraction of the table, the next
// refresh rebuilds from a full scan.
const DefaultMaxFoldFraction = 0.1

// FoldConfig controls incremental (folding) statistics maintenance.
type FoldConfig struct {
	// Enabled turns folding refreshes on and enables the per-table delta
	// logs that feed them.
	Enabled bool
	// MaxFoldFraction is the folded-rows-to-table-rows ratio above which a
	// refresh rebuilds from scratch instead of folding; <= 0 means
	// DefaultMaxFoldFraction. Bucket boundaries, distinct counts and
	// densities go stale under folding — this bounds that drift.
	MaxFoldFraction float64
	// DeltaLogCap is the per-table delta-log capacity in records; <= 0
	// means storage.DefaultDeltaLogCap. A log overflow invalidates
	// outstanding watermarks, forcing the next refresh to rebuild.
	DeltaLogCap int
}

// SetBuildParallelism sets the partition count for histogram builds:
// subsequent Create/Refresh calls split the table scan into up to k
// partitions, summarize them concurrently, and merge the partials. Values
// below 1 mean single-pass. The merged result is identical to a
// single-pass build regardless of k.
func (m *Manager) SetBuildParallelism(k int) {
	if k < 1 {
		k = 1
	}
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	m.parallelism = k
}

// BuildParallelism returns the active build partition count (minimum 1).
func (m *Manager) BuildParallelism() int {
	m.cfgMu.RLock()
	defer m.cfgMu.RUnlock()
	if m.parallelism < 1 {
		return 1
	}
	return m.parallelism
}

// SetIncrementalMaintenance configures folding refreshes and switches the
// per-table delta logs on or off accordingly. Enabling starts the logs
// empty: modifications made before this call were never recorded, so the
// first refresh of each statistic still rebuilds; subsequent refreshes fold.
func (m *Manager) SetIncrementalMaintenance(cfg FoldConfig) error {
	if cfg.MaxFoldFraction < 0 || cfg.MaxFoldFraction > 1 {
		return fmt.Errorf("stats: fold fraction %v out of [0,1]", cfg.MaxFoldFraction)
	}
	m.cfgMu.Lock()
	m.fold = cfg
	m.cfgMu.Unlock()
	for name := range m.db.Schema.Tables {
		td, err := m.db.Table(name)
		if err != nil {
			continue
		}
		if cfg.Enabled {
			td.EnableDeltaLog(cfg.DeltaLogCap)
		} else {
			td.DisableDeltaLog()
		}
	}
	return nil
}

// IncrementalMaintenance returns the active fold configuration.
func (m *Manager) IncrementalMaintenance() FoldConfig {
	m.cfgMu.RLock()
	defer m.cfgMu.RUnlock()
	return m.fold
}

// build constructs a fresh Statistic from current data with a full
// (partition-parallel) table scan. It bumps the logical clock but charges
// no accounting; EnsureCtx and refreshShardLocked charge the build- and
// update-side counters respectively. Cancellation is checked between the
// build steps (value extraction, sampling, histogram construction), so a
// deadline aborts the build at the next step boundary with no state
// published. Callers must hold the owning shard's write lock.
func (m *Manager) build(ctx context.Context, table string, cols []string, met managerMetrics) (*Statistic, error) {
	id := MakeID(table, cols)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("stats: building %s: %w", id, err)
	}
	td, err := m.db.Table(table)
	if err != nil {
		return nil, fmt.Errorf("stats: building %s: %w", id, err)
	}
	if scfg, ok := m.streamingActive(); ok {
		// Streaming path: scan in blocks under the iterator's snapshot guard
		// with memory bounded by one partition plus the block buffer,
		// spilling partials past the budget. Bitwise-identical to the
		// materialized path below.
		return m.buildStream(ctx, td, table, cols, scfg, met)
	}
	par := m.BuildParallelism()
	// One read-locked pass gathers the tuples and the delta-log watermark
	// atomically: the returned DeltaSeq is exactly the table state the
	// histogram summarizes, so a later folding refresh replays precisely
	// the modifications the build did not see.
	parts, seq, err := td.MultiColumnValuesPartitioned(cols, par)
	if err != nil {
		return nil, fmt.Errorf("stats: building %s: %w", id, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("stats: building %s: %w", id, err)
	}
	start := time.Now()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	processed := total
	if cfg := m.Sampling(); cfg.Fraction > 0 && cfg.Fraction < 1 {
		// Sample over the full row set, then re-partition the sample: the
		// seeded sample is identical at any parallelism, so sampled builds
		// stay deterministic in the partition count too.
		flat := parts[0]
		if len(parts) > 1 {
			flat = make([][]catalog.Datum, 0, total)
			for _, p := range parts {
				flat = append(flat, p...)
			}
		}
		sampled := sampleTuples(cfg, id, flat)
		processed = len(sampled)
		parts = histogram.SplitTuples(sampled, par)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("stats: building %s: %w", id, err)
	}
	mc, err := histogram.BuildMultiParallel(m.kind, cols, parts, m.maxBuckets)
	if err != nil {
		return nil, fmt.Errorf("stats: building %s: %w", id, err)
	}
	if processed < total {
		scaleSampled(mc, processed, total)
	}
	elapsed := time.Since(start)
	// Creation cost reflects the rows actually processed — sampling is
	// exactly how real systems cheapen construction.
	cost := histogram.BuildCostUnits(int64(processed), len(cols))
	met.fullScans.Inc()
	if len(parts) > 1 {
		met.parallelBuilds.Inc()
		met.partialsMerged.Add(int64(len(parts)))
	}
	now := m.clock.Add(1)
	return &Statistic{
		ID:        id,
		Table:     strings.ToLower(table),
		Columns:   lowerAll(cols),
		Data:      mc,
		BuildCost: cost,
		BuildTime: elapsed,
		CreatedAt: now,
		UpdatedAt: now,
		DeltaSeq:  seq,
	}, nil
}

// rebuildOrFold produces the refreshed replacement for s and the update
// cost to charge: a cheap fold of logged row deltas when eligible, a full
// rebuild otherwise. Callers must hold the owning shard's write lock.
func (m *Manager) rebuildOrFold(ctx context.Context, s *Statistic, met managerMetrics) (*Statistic, float64, error) {
	if folded, cost, ok := m.tryFold(ctx, s, met); ok {
		return folded, cost, nil
	}
	fresh, err := m.build(ctx, s.Table, s.Columns, met)
	if err != nil {
		return nil, 0, err
	}
	fresh.CreatedAt = s.CreatedAt
	fresh.UpdateCount = s.UpdateCount + 1
	fresh.InDropList = s.InDropList
	return fresh, fresh.BuildCost, nil
}

// tryFold refreshes s by folding the table's logged row deltas into the
// existing histogram, avoiding the table scan entirely. It declines (ok
// false) when folding is disabled, the stat was sampled, the delta window
// is unavailable (log disabled, trimmed, or overflowed), or the accumulated
// fold error would cross the configured bound — the caller then rebuilds.
func (m *Manager) tryFold(ctx context.Context, s *Statistic, met managerMetrics) (*Statistic, float64, bool) {
	cfg := m.IncrementalMaintenance()
	if !cfg.Enabled || s.Data == nil || ctx.Err() != nil {
		return nil, 0, false
	}
	if sc := m.Sampling(); sc.Fraction > 0 && sc.Fraction < 1 {
		// A sampled histogram is already scaled to the population; folding
		// raw deltas into it would mix units. Sampled refreshes re-sample.
		return nil, 0, false
	}
	td, err := m.db.Table(s.Table)
	if err != nil {
		return nil, 0, false
	}
	recs, next, ok := td.DeltaWindow(s.DeltaSeq)
	if !ok {
		met.foldRebuilds.Inc()
		return nil, 0, false
	}
	frac := cfg.MaxFoldFraction
	if frac <= 0 {
		frac = DefaultMaxFoldFraction
	}
	tableRows := td.RowCount()
	if tableRows < 1 {
		tableRows = 1
	}
	pending := s.FoldedRows + int64(len(recs))
	if float64(pending) > frac*float64(tableRows) {
		met.foldRebuilds.Inc()
		return nil, 0, false
	}
	ci := td.Schema.ColumnIndex(s.LeadingColumn())
	if ci < 0 {
		return nil, 0, false
	}
	start := time.Now()
	var ins, del []catalog.Datum
	for _, r := range recs {
		if r.Del {
			del = append(del, r.Row[ci])
		} else {
			ins = append(ins, r.Row[ci])
		}
	}
	folded := *s
	folded.Data = histogram.FoldMulti(s.Data, ins, del)
	folded.BuildTime = time.Since(start)
	folded.UpdatedAt = m.clock.Add(1)
	folded.UpdateCount = s.UpdateCount + 1
	folded.FoldedRows = pending
	folded.DeltaSeq = next
	cost := histogram.FoldCostUnits(int64(len(recs)))
	met.folds.Inc()
	met.foldedRows.Add(int64(len(recs)))
	return &folded, cost, true
}
