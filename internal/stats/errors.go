package stats

import (
	"errors"
	"fmt"
)

// TransientError marks a statistics build/refresh failure as retryable: the
// operation failed for a reason expected to clear on its own (an injected
// flaky fault, a torn snapshot, a temporarily unavailable sampling source),
// as opposed to a permanent condition like an unknown table or column. The
// resilience layer's retry policy retries only transient failures; everything
// else either trips the circuit breaker immediately or propagates.
//
// TransientError wraps the underlying cause, so callers can both classify
// (errors.As(&TransientError{})) and still reach the root cause with
// errors.Is — e.g. a flaky-provider test asserting the injected sentinel.
type TransientError struct {
	Err error
}

// Error implements error.
func (e *TransientError) Error() string { return fmt.Sprintf("transient: %v", e.Err) }

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as a TransientError (nil stays nil). Wrapping an
// already-transient error is a no-op, so classification layers can be
// composed without nesting.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	var te *TransientError
	if errors.As(err, &te) {
		return err
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err is (or wraps) a TransientError.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}
