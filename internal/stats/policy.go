package stats

import "time"

// MaintenancePolicy captures the SQL Server 7.0 auto-statistics maintenance
// policy described in §2 and §6: statistics on a table are refreshed when
// the rows modified since the last refresh exceed a fraction of the table
// size, and a statistic refreshed more than MaxUpdates times is physically
// dropped. The paper's modification (§6) restricts dropping to statistics
// already identified as non-essential, i.e. in the drop-list.
type MaintenancePolicy struct {
	// UpdateFraction triggers a refresh of a table's statistics when
	// modCounter > UpdateFraction * rowCount. SQL Server 7.0 used a value
	// in this spirit; 0.2 is the default here.
	UpdateFraction float64
	// MaxUpdates physically drops a statistic updated more than this many
	// times. Zero disables dropping.
	MaxUpdates int
	// DropListOnly, when true, applies the paper's extension: only
	// drop-listed (non-essential) statistics are eligible for physical drop.
	DropListOnly bool
}

// DefaultMaintenancePolicy mirrors the paper's recommended configuration.
func DefaultMaintenancePolicy() MaintenancePolicy {
	return MaintenancePolicy{UpdateFraction: 0.2, MaxUpdates: 4, DropListOnly: true}
}

// MaintenanceReport summarizes one maintenance pass.
type MaintenanceReport struct {
	TablesRefreshed int
	StatsRefreshed  int
	StatsDropped    int
	UpdateCostUnits float64
}

// RunMaintenance applies the policy once across all tables: refreshes
// statistics on tables whose modification counter exceeds the threshold,
// then drops over-updated statistics per the policy.
//
// UpdateCostUnits in the report is the cost charged by this pass alone: each
// table refresh returns the units it charged under the manager lock and the
// pass sums them, so refreshes issued concurrently by other goroutines are
// never misattributed to this pass (diffing the global TotalUpdateCost
// before/after would fold them in).
func (m *Manager) RunMaintenance(p MaintenancePolicy) (MaintenanceReport, error) {
	reg := m.ObsRegistry()
	start := time.Now()
	sp := reg.StartSpan("stats.maintenance", nil)
	var rep MaintenanceReport
	for _, table := range m.db.Schema.TableNames() {
		td, err := m.db.Table(table)
		if err != nil {
			return rep, err
		}
		rows := td.RowCount()
		threshold := p.UpdateFraction * float64(rows)
		if rows == 0 || float64(td.ModCounter()) <= threshold {
			continue
		}
		n, cost, err := m.refreshTableCost(table)
		rep.UpdateCostUnits += cost
		if err != nil {
			return rep, err
		}
		if n > 0 {
			rep.TablesRefreshed++
			rep.StatsRefreshed += n
		}
	}
	if p.MaxUpdates > 0 {
		for _, s := range m.All() {
			if s.UpdateCount <= p.MaxUpdates {
				continue
			}
			if p.DropListOnly && !s.InDropList {
				continue
			}
			if m.Drop(s.ID) {
				rep.StatsDropped++
			}
		}
	}
	reg.Counter("stats.maintenance.passes").Inc()
	reg.Counter("stats.maintenance.tables_refreshed").Add(int64(rep.TablesRefreshed))
	reg.Counter("stats.maintenance.stats_refreshed").Add(int64(rep.StatsRefreshed))
	reg.Counter("stats.maintenance.stats_dropped").Add(int64(rep.StatsDropped))
	reg.FloatCounter("stats.maintenance.update_cost_units").Add(rep.UpdateCostUnits)
	reg.Timing("stats.maintenance.latency").Observe(time.Since(start))
	sp.End(map[string]any{
		"tables_refreshed": rep.TablesRefreshed,
		"stats_refreshed":  rep.StatsRefreshed,
		"stats_dropped":    rep.StatsDropped,
		"update_cost":      rep.UpdateCostUnits,
	})
	return rep, nil
}
