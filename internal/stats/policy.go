package stats

import (
	"context"
	"strings"
	"time"
)

// MaintenancePolicy captures the SQL Server 7.0 auto-statistics maintenance
// policy described in §2 and §6: statistics on a table are refreshed when
// the rows modified since the last refresh exceed a fraction of the table
// size, and a statistic refreshed more than MaxUpdates times is physically
// dropped. The paper's modification (§6) restricts dropping to statistics
// already identified as non-essential, i.e. in the drop-list.
type MaintenancePolicy struct {
	// UpdateFraction triggers a refresh of a table's statistics when
	// modCounter > UpdateFraction * rowCount. SQL Server 7.0 used a value
	// in this spirit; 0.2 is the default here.
	UpdateFraction float64
	// MaxUpdates physically drops a statistic updated more than this many
	// times. Zero disables dropping.
	MaxUpdates int
	// DropListOnly, when true, applies the paper's extension: only
	// drop-listed (non-essential) statistics are eligible for physical drop.
	DropListOnly bool

	// QErrorThreshold enables the execution-feedback refresh path: a
	// maintained statistic whose leading column shows an observed q-error
	// above this threshold (with at least FeedbackMinObservations
	// observations in the current evidence window) is refreshed even when
	// the table's row-modification counter is below UpdateFraction. The
	// row-mod counter misses skew shifts that rewrite few rows but move much
	// probability mass; the optimizer being measurably wrong is the more
	// direct signal. Zero disables the path (and feedback drop confirmation).
	QErrorThreshold float64
	// FeedbackMinObservations gates both feedback actions; <=1 means one
	// observation suffices.
	FeedbackMinObservations int64
	// FeedbackConfirmDrop, when true, physically drops drop-listed statistics
	// whose leading column stayed accurate (max q-error at or below
	// QErrorThreshold with enough observations): the drop-list marked them
	// non-essential, feedback confirms the estimates hold up, so the drop is
	// confidence-boosted rather than waiting out MaxUpdates refresh cycles.
	FeedbackConfirmDrop bool

	// TolerateFailures turns per-table refresh failures from pass-aborting
	// errors into recorded RefreshFailures: the pass skips the failing table
	// (leaving its modification counter intact so a later pass retries) and
	// keeps maintaining the rest. The resilience layer sets this so one
	// failing build path cannot starve every other table of maintenance.
	// Cancellation still aborts the pass.
	TolerateFailures bool
	// SkipTable, when non-nil, is consulted before refreshing a table; a
	// true return skips it (counted in TablesSkipped). The resilience layer
	// uses it to keep maintenance from hammering tables whose circuit
	// breaker is open.
	SkipTable func(table string) bool
}

// DefaultMaintenancePolicy mirrors the paper's recommended configuration.
// Execution feedback is off; see DefaultFeedbackPolicy.
func DefaultMaintenancePolicy() MaintenancePolicy {
	return MaintenancePolicy{UpdateFraction: 0.2, MaxUpdates: 4, DropListOnly: true}
}

// DefaultQErrorThreshold is the feedback refresh trigger used by
// DefaultFeedbackPolicy: estimates off by more than 2x either way.
const DefaultQErrorThreshold = 2.0

// DefaultFeedbackPolicy is DefaultMaintenancePolicy with the execution-
// feedback paths enabled.
func DefaultFeedbackPolicy() MaintenancePolicy {
	p := DefaultMaintenancePolicy()
	p.QErrorThreshold = DefaultQErrorThreshold
	p.FeedbackMinObservations = 2
	p.FeedbackConfirmDrop = true
	return p
}

// RefreshFailure records one refresh the pass could not complete under
// MaintenancePolicy.TolerateFailures: the table (and statistic, for the
// feedback path), and the underlying cause — preserved unwrapped-able so the
// resilience layer can classify it transient or permanent.
type RefreshFailure struct {
	Table string
	// Stat is the specific statistic for feedback-path failures; empty when
	// a whole-table counter-driven refresh failed.
	Stat ID
	Err  error
}

// MaintenanceReport summarizes one maintenance pass.
type MaintenanceReport struct {
	TablesRefreshed int
	StatsRefreshed  int
	StatsDropped    int
	// StatsFeedbackRefreshed counts statistics refreshed by the q-error
	// feedback path alone — their tables' row-mod counters were below the
	// UpdateFraction threshold.
	StatsFeedbackRefreshed int
	// StatsDropConfirmed counts drop-listed statistics physically dropped on
	// feedback confirmation (accurate estimates, FeedbackConfirmDrop set).
	StatsDropConfirmed int
	UpdateCostUnits    float64

	// RefreshedTables names the tables this pass counter-refreshed, in
	// schema order (the resilience layer feeds them to breaker resets).
	RefreshedTables []string
	// TablesSkipped counts tables the SkipTable hook excluded.
	TablesSkipped int
	// RefreshFailures lists refreshes tolerated under TolerateFailures; the
	// pass is degraded when non-empty.
	RefreshFailures []RefreshFailure
}

// Degraded reports whether the pass completed in degraded mode: at least one
// refresh failed (and was tolerated) or was skipped by an open breaker.
func (r MaintenanceReport) Degraded() bool {
	return len(r.RefreshFailures) > 0 || r.TablesSkipped > 0
}

// RunMaintenance applies the policy once across all tables: refreshes
// statistics on tables whose modification counter exceeds the threshold,
// then drops over-updated statistics per the policy.
//
// UpdateCostUnits in the report is the cost charged by this pass alone: each
// table refresh returns the units it charged under the manager lock and the
// pass sums them, so refreshes issued concurrently by other goroutines are
// never misattributed to this pass (diffing the global TotalUpdateCost
// before/after would fold them in).
func (m *Manager) RunMaintenance(p MaintenancePolicy) (MaintenanceReport, error) {
	return m.RunMaintenanceCtx(context.Background(), p)
}

// RunMaintenanceCtx is RunMaintenance honoring cancellation and deadlines:
// ctx is checked between tables and between per-statistic rebuilds, so a
// canceled pass stops at the next boundary with the report covering exactly
// the work completed. ctx also bounds each statistic rebuild (see EnsureCtx).
func (m *Manager) RunMaintenanceCtx(ctx context.Context, p MaintenancePolicy) (MaintenanceReport, error) {
	reg := m.ObsRegistry()
	start := time.Now()
	sp := reg.StartSpan("stats.maintenance", nil)
	var rep MaintenanceReport

	// Snapshot feedback evidence BEFORE any refresh: every refresh bumps the
	// statistics epoch, which retires the provider's current evidence window,
	// so summaries read mid-pass would be empty.
	minObs := p.FeedbackMinObservations
	if minObs < 1 {
		minObs = 1
	}
	var qerr map[[2]string]QErrorSummary
	if p.QErrorThreshold > 0 {
		if fb := m.feedbackProvider(); fb != nil {
			qerr = make(map[[2]string]QErrorSummary)
			for _, s := range fb.QErrorSummaries() {
				if s.Count >= minObs {
					qerr[[2]string{s.Table, s.Column}] = s
				}
			}
		}
	}

	refreshedTables := make(map[string]bool)
	for _, table := range m.db.Schema.TableNames() {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		td, err := m.db.Table(table)
		if err != nil {
			return rep, err
		}
		// The threshold is relative to the CURRENT row count, so a table
		// emptied by deletes has threshold 0 and any pending modifications
		// trigger a refresh. (Skipping empty tables here would strand their
		// statistics at the pre-delete cardinalities forever: the mod counter
		// keeps growing but the refresh never fires.)
		threshold := p.UpdateFraction * float64(td.RowCount())
		if float64(td.ModCounter()) <= threshold {
			continue
		}
		if p.SkipTable != nil && p.SkipTable(table) {
			rep.TablesSkipped++
			continue
		}
		n, cost, err := m.refreshTableCost(ctx, table)
		rep.UpdateCostUnits += cost
		if err != nil {
			// Cancellation always aborts; other failures are tolerated when
			// the policy says so: record the cause (unwrapped-able, for the
			// transient/permanent classifier) and maintain the rest. The
			// table's modification counter is deliberately left set so the
			// next pass retries it.
			if !p.TolerateFailures || ctx.Err() != nil {
				return rep, err
			}
			rep.RefreshFailures = append(rep.RefreshFailures, RefreshFailure{Table: strings.ToLower(table), Err: err})
			continue
		}
		if n > 0 {
			rep.TablesRefreshed++
			rep.StatsRefreshed += n
			lt := strings.ToLower(table)
			refreshedTables[lt] = true
			rep.RefreshedTables = append(rep.RefreshedTables, lt)
		}
	}

	// Feedback-triggered refresh (the tentpole loop-closer): a maintained
	// statistic whose leading column was observed estimating badly is
	// refreshed even though its table's row-mod counter stayed below the
	// threshold. Tables already refreshed above are skipped — they are fresh.
	if len(qerr) > 0 {
		for _, s := range m.Maintained() {
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			if refreshedTables[s.Table] {
				continue
			}
			sum, ok := qerr[[2]string{s.Table, s.LeadingColumn()}]
			if !ok || sum.MaxQ <= p.QErrorThreshold {
				continue
			}
			if p.SkipTable != nil && p.SkipTable(s.Table) {
				rep.TablesSkipped++
				continue
			}
			cost, err := m.refreshStatCost(ctx, s.ID)
			rep.UpdateCostUnits += cost
			if err != nil {
				if !p.TolerateFailures || ctx.Err() != nil {
					return rep, err
				}
				rep.RefreshFailures = append(rep.RefreshFailures, RefreshFailure{Table: s.Table, Stat: s.ID, Err: err})
				continue
			}
			rep.StatsFeedbackRefreshed++
		}
	}

	if p.MaxUpdates > 0 {
		for _, s := range m.All() {
			if s.UpdateCount <= p.MaxUpdates {
				continue
			}
			if p.DropListOnly && !s.InDropList {
				continue
			}
			if m.Drop(s.ID) {
				rep.StatsDropped++
			}
		}
	}

	// Feedback drop confirmation: a drop-listed statistic whose leading
	// column kept estimating accurately is physically dropped now instead of
	// waiting out MaxUpdates refresh cycles — the drop-list said it is
	// non-essential, the executor's evidence agrees.
	if p.QErrorThreshold > 0 && p.FeedbackConfirmDrop && qerr != nil {
		for _, s := range m.DropList() {
			sum, ok := qerr[[2]string{s.Table, s.LeadingColumn()}]
			if !ok || sum.MaxQ > p.QErrorThreshold {
				continue
			}
			if m.Drop(s.ID) {
				rep.StatsDropConfirmed++
			}
		}
	}

	reg.Counter("stats.maintenance.passes").Inc()
	reg.Counter("stats.maintenance.tables_refreshed").Add(int64(rep.TablesRefreshed))
	reg.Counter("stats.maintenance.stats_refreshed").Add(int64(rep.StatsRefreshed))
	reg.Counter("stats.maintenance.stats_dropped").Add(int64(rep.StatsDropped))
	reg.Counter("stats.maintenance.feedback_refreshes").Add(int64(rep.StatsFeedbackRefreshed))
	reg.Counter("stats.maintenance.drops_confirmed").Add(int64(rep.StatsDropConfirmed))
	reg.Counter("stats.maintenance.refresh_failures").Add(int64(len(rep.RefreshFailures)))
	reg.Counter("stats.maintenance.tables_skipped").Add(int64(rep.TablesSkipped))
	if rep.Degraded() {
		reg.Counter("degraded.maintenance_passes").Inc()
	}
	reg.FloatCounter("stats.maintenance.update_cost_units").Add(rep.UpdateCostUnits)
	reg.Timing("stats.maintenance.latency").Observe(time.Since(start))
	sp.End(map[string]any{
		"tables_refreshed":   rep.TablesRefreshed,
		"stats_refreshed":    rep.StatsRefreshed,
		"stats_dropped":      rep.StatsDropped,
		"feedback_refreshes": rep.StatsFeedbackRefreshed,
		"drops_confirmed":    rep.StatsDropConfirmed,
		"refresh_failures":   len(rep.RefreshFailures),
		"tables_skipped":     rep.TablesSkipped,
		"update_cost":        rep.UpdateCostUnits,
	})
	return rep, nil
}
