package stats

// MaintenancePolicy captures the SQL Server 7.0 auto-statistics maintenance
// policy described in §2 and §6: statistics on a table are refreshed when
// the rows modified since the last refresh exceed a fraction of the table
// size, and a statistic refreshed more than MaxUpdates times is physically
// dropped. The paper's modification (§6) restricts dropping to statistics
// already identified as non-essential, i.e. in the drop-list.
type MaintenancePolicy struct {
	// UpdateFraction triggers a refresh of a table's statistics when
	// modCounter > UpdateFraction * rowCount. SQL Server 7.0 used a value
	// in this spirit; 0.2 is the default here.
	UpdateFraction float64
	// MaxUpdates physically drops a statistic updated more than this many
	// times. Zero disables dropping.
	MaxUpdates int
	// DropListOnly, when true, applies the paper's extension: only
	// drop-listed (non-essential) statistics are eligible for physical drop.
	DropListOnly bool
}

// DefaultMaintenancePolicy mirrors the paper's recommended configuration.
func DefaultMaintenancePolicy() MaintenancePolicy {
	return MaintenancePolicy{UpdateFraction: 0.2, MaxUpdates: 4, DropListOnly: true}
}

// MaintenanceReport summarizes one maintenance pass.
type MaintenanceReport struct {
	TablesRefreshed int
	StatsRefreshed  int
	StatsDropped    int
	UpdateCostUnits float64
}

// RunMaintenance applies the policy once across all tables: refreshes
// statistics on tables whose modification counter exceeds the threshold,
// then drops over-updated statistics per the policy.
func (m *Manager) RunMaintenance(p MaintenancePolicy) (MaintenanceReport, error) {
	var rep MaintenanceReport
	costBefore := m.Snapshot().TotalUpdateCost
	for _, table := range m.db.Schema.TableNames() {
		td, err := m.db.Table(table)
		if err != nil {
			return rep, err
		}
		rows := td.RowCount()
		threshold := p.UpdateFraction * float64(rows)
		if rows == 0 || float64(td.ModCounter()) <= threshold {
			continue
		}
		n, err := m.RefreshTable(table)
		if err != nil {
			return rep, err
		}
		if n > 0 {
			rep.TablesRefreshed++
			rep.StatsRefreshed += n
		}
	}
	if p.MaxUpdates > 0 {
		for _, s := range m.All() {
			if s.UpdateCount <= p.MaxUpdates {
				continue
			}
			if p.DropListOnly && !s.InDropList {
				continue
			}
			if m.Drop(s.ID) {
				rep.StatsDropped++
			}
		}
	}
	rep.UpdateCostUnits = m.Snapshot().TotalUpdateCost - costBefore
	return rep, nil
}
