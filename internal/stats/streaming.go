package stats

import (
	"context"
	"fmt"
	"os"
	"time"

	"autostats/internal/histogram"
	"autostats/internal/storage"
)

// Streaming (block-at-a-time) statistic construction. Instead of cloning the
// whole projected column set in one gather, the build opens a
// storage.BlockIter — a snapshot-guarded scan yielding fixed-size row
// blocks — and folds each block into a histogram.PartialBuilder. A partition
// is cut whenever it reaches PartitionRows rows or the build-memory budget
// fills, and completed partials that no longer fit the budget spill to temp
// files, reloaded only for the final MergePartials pass. Because partials
// merge exactly (see internal/histogram), the result is bitwise-identical to
// the single-pass BuildMulti at any block size, partition cut, or spill
// pattern — the streaming differential oracle sweeps all three.

// Default streaming parameters. The block size rides on
// storage.DefaultBlockSize so the scan seam and the build agree.
const (
	DefaultStreamPartitionRows = 8192
)

// StreamConfig controls streaming statistic construction.
type StreamConfig struct {
	// Enabled routes full builds through the block iterator instead of the
	// one-shot partitioned gather. Sampled builds (SetSampling) keep the
	// materialized path: sampling needs the full row set.
	Enabled bool
	// BlockSize is the rows per scan block; <= 0 means
	// storage.DefaultBlockSize.
	BlockSize int
	// PartitionRows caps the rows accumulated into one partial before it is
	// cut; <= 0 means DefaultStreamPartitionRows. Together with the budget
	// this bounds build memory to O(block + partition) regardless of table
	// size.
	PartitionRows int
	// MemBudgetBytes bounds the estimated bytes retained by the build
	// (current partition builder + completed in-memory partials). When the
	// budget fills, the current partition is cut early and completed
	// partials spill to temp files. <= 0 means unbounded (never spill).
	MemBudgetBytes int64
	// SpillDir is where spill temp files go; "" means os.TempDir().
	SpillDir string
}

// SetStreamingBuild configures streaming construction for subsequent builds.
func (m *Manager) SetStreamingBuild(cfg StreamConfig) error {
	if cfg.BlockSize < 0 || cfg.PartitionRows < 0 || cfg.MemBudgetBytes < 0 {
		return fmt.Errorf("stats: negative streaming parameter %+v", cfg)
	}
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	m.stream = cfg
	return nil
}

// StreamingBuild returns the active streaming configuration.
func (m *Manager) StreamingBuild() StreamConfig {
	m.cfgMu.RLock()
	defer m.cfgMu.RUnlock()
	return m.stream
}

// partialSlot is one completed partition in build order: either retained in
// memory (p non-nil) or spilled to path.
type partialSlot struct {
	p    *Partial
	path string
}

// Partial aliases histogram.Partial for the slot struct above without
// leaking the histogram package into every signature.
type Partial = histogram.Partial

// spillSet owns the temp files of one streaming build. Methods are called by
// a single goroutine (the build); cleanup is idempotent and must run on
// every exit path — the leak oracle counts files left behind.
type spillSet struct {
	dir   string
	paths []string
}

// write encodes p into a fresh temp file and returns its path and size. IO
// failures are classified Transient — the build aborts but is retryable; a
// failed file is removed immediately.
func (ss *spillSet) write(ctx context.Context, fp Failpoint, id ID, p *Partial) (string, int64, error) {
	if fp != nil {
		if err := fp(ctx, "spill-write", id); err != nil {
			return "", 0, Transient(fmt.Errorf("stats: spill write for %s vetoed: %w", id, err))
		}
	}
	f, err := os.CreateTemp(ss.dir, "autostats-spill-*.partial")
	if err != nil {
		return "", 0, Transient(fmt.Errorf("stats: spill create for %s: %w", id, err))
	}
	path := f.Name()
	if err := histogram.EncodePartial(f, p); err != nil {
		f.Close()
		os.Remove(path)
		return "", 0, Transient(fmt.Errorf("stats: spill encode for %s: %w", id, err))
	}
	info, statErr := f.Stat()
	if err := f.Close(); err != nil {
		os.Remove(path)
		return "", 0, Transient(fmt.Errorf("stats: spill close for %s: %w", id, err))
	}
	var size int64
	if statErr == nil {
		size = info.Size()
	}
	ss.paths = append(ss.paths, path)
	return path, size, nil
}

// read reloads one spilled partial for the merge pass.
func (ss *spillSet) read(ctx context.Context, fp Failpoint, id ID, path string) (*Partial, error) {
	if fp != nil {
		if err := fp(ctx, "spill-read", id); err != nil {
			return nil, Transient(fmt.Errorf("stats: spill read for %s vetoed: %w", id, err))
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, Transient(fmt.Errorf("stats: spill open for %s: %w", id, err))
	}
	defer f.Close()
	p, err := histogram.DecodePartial(f)
	if err != nil {
		return nil, Transient(fmt.Errorf("stats: spill decode for %s: %w", id, err))
	}
	return p, nil
}

// cleanup removes every spill file. Idempotent; errors are ignored (the
// files live in a temp dir and a failed remove cannot corrupt statistics
// state).
func (ss *spillSet) cleanup() {
	for _, p := range ss.paths {
		os.Remove(p)
	}
	ss.paths = nil
}

// buildStreaming is the streaming counterpart of the gather step in build():
// it scans the table block by block under the iterator's snapshot guard and
// returns the merged histogram plus the snapshot's delta watermark and live
// row count. Cancellation and the failpoint are checked between blocks; on
// every exit path the iterator is closed and spill files are removed, so an
// aborted build leaks neither a snapshot guard nor temp files.
//
// While the iterator is open the table's read lock is held by this
// goroutine: nothing in the loop (including the "block" failpoint, which
// fault tests use to cancel mid-stream) may call back into the table or the
// manager. The iterator is closed before the merge pass, keeping the
// writer-blocking window proportional to the scan alone.
func (m *Manager) buildStreaming(ctx context.Context, td *storage.TableData, id ID, cols []string, cfg StreamConfig, met managerMetrics) (*histogram.MultiColumn, int64, int64, error) {
	partRows := cfg.PartitionRows
	if partRows <= 0 {
		partRows = DefaultStreamPartitionRows
	}
	fp := m.failpointFn()
	ss := &spillSet{dir: cfg.SpillDir}
	defer ss.cleanup()

	builder, err := histogram.NewPartialBuilder(cols)
	if err != nil {
		return nil, 0, 0, err
	}
	it, err := td.OpenBlockIter(cols, cfg.BlockSize)
	if err != nil {
		return nil, 0, 0, err
	}
	seq, liveRows := it.Seq(), int64(it.LiveRows())

	var (
		slots      []partialSlot
		inMemBytes int64 // estimated bytes of retained (non-spilled) partials
		peakBytes  int64 // high-water mark of builder + retained partials
		blocks     int64
		spills     int64
		spillBytes int64
	)
	cut := func() error {
		p := builder.Finish()
		if cfg.MemBudgetBytes > 0 && inMemBytes+p.MemBytes() > cfg.MemBudgetBytes {
			path, n, err := ss.write(ctx, fp, id, p)
			if err != nil {
				return err
			}
			spills++
			spillBytes += n
			slots = append(slots, partialSlot{path: path})
			return nil
		}
		inMemBytes += p.MemBytes()
		slots = append(slots, partialSlot{p: p})
		return nil
	}
	scan := func() error {
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			block, ok := it.Next()
			if !ok {
				break
			}
			blocks++
			if fp != nil {
				if err := fp(ctx, "block", id); err != nil {
					return err
				}
			}
			if err := builder.AddBlock(block); err != nil {
				return err
			}
			if cur := inMemBytes + builder.MemBytes(); cur > peakBytes {
				peakBytes = cur
			}
			// Cut the partition at the row cap, or early when the budget
			// fills — partition boundaries are arbitrary, the merge is exact
			// at any cut.
			if builder.Rows() >= int64(partRows) ||
				(cfg.MemBudgetBytes > 0 && inMemBytes+builder.MemBytes() >= cfg.MemBudgetBytes) {
				if err := cut(); err != nil {
					return err
				}
			}
		}
		if builder.Rows() > 0 || len(slots) == 0 {
			return cut()
		}
		return nil
	}
	err = scan()
	// Release the snapshot guard before the merge pass: spilled partials are
	// reloaded and merged without blocking writers.
	it.Close()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("stats: building %s: %w", id, err)
	}

	parts := make([]*Partial, len(slots))
	for i, slot := range slots {
		if slot.p != nil {
			parts[i] = slot.p
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, 0, 0, fmt.Errorf("stats: building %s: %w", id, err)
		}
		p, err := ss.read(ctx, fp, id, slot.path)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("stats: building %s: %w", id, err)
		}
		parts[i] = p
	}
	mc, err := histogram.MergePartials(m.kind, cols, parts, m.maxBuckets)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("stats: building %s: %w", id, err)
	}

	met.streamedBuilds.Inc()
	met.buildBlocks.Add(blocks)
	if spills > 0 {
		met.buildSpills.Add(spills)
		met.spillBytes.Add(spillBytes)
	}
	if len(parts) > 1 {
		met.partialsMerged.Add(int64(len(parts)))
	}
	met.buildMemPeak.Set(peakBytes)
	return mc, seq, liveRows, nil
}

// streamingActive reports whether the next build should stream: streaming is
// enabled and sampling is not (a sampled build needs the materialized row
// set, and its histogram is scaled — the existing path handles both).
func (m *Manager) streamingActive() (StreamConfig, bool) {
	m.cfgMu.RLock()
	defer m.cfgMu.RUnlock()
	if !m.stream.Enabled {
		return StreamConfig{}, false
	}
	if m.sampling.Fraction > 0 && m.sampling.Fraction < 1 {
		return StreamConfig{}, false
	}
	return m.stream, true
}

// buildStream assembles the full Statistic from a streaming scan; the
// counterpart of the tail of build() for the materialized path.
func (m *Manager) buildStream(ctx context.Context, td *storage.TableData, table string, cols []string, cfg StreamConfig, met managerMetrics) (*Statistic, error) {
	id := MakeID(table, cols)
	start := time.Now()
	mc, seq, rows, err := m.buildStreaming(ctx, td, id, cols, cfg, met)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	met.fullScans.Inc()
	now := m.clock.Add(1)
	return &Statistic{
		ID:        id,
		Table:     id.Table(),
		Columns:   lowerAll(cols),
		Data:      mc,
		BuildCost: histogram.BuildCostUnits(rows, len(cols)),
		BuildTime: elapsed,
		CreatedAt: now,
		UpdatedAt: now,
		DeltaSeq:  seq,
	}, nil
}
