package stats

import (
	"context"

	"autostats/internal/storage"
)

// Provider is the read-only view of the statistics layer the optimizer
// consumes. Manager is the production implementation; tests substitute
// wrappers that misreport epochs or tear snapshots to verify the plan
// cache's staleness discipline holds under faults.
//
// The contract mirrors the Manager's snapshot semantics: returned
// *Statistic values are immutable snapshots, and Epoch must change
// whenever the visible statistics set changes. A Provider that violates
// the epoch contract (on purpose, in tests) must not be able to trick a
// correctly implemented optimizer into publishing a stale plan under a
// fresh key.
type Provider interface {
	// Epoch identifies the visible statistics set; see Manager.Epoch.
	Epoch() uint64
	// Get returns the statistic with the given ID, or nil.
	Get(id ID) *Statistic
	// StatsForColumn returns the statistics whose leading column is
	// table.column, single-column statistics first.
	StatsForColumn(table, column string) []*Statistic
	// StatsOnTable returns all statistics on the table.
	StatsOnTable(table string) []*Statistic
	// Database returns the underlying database.
	Database() *storage.Database
}

var _ Provider = (*Manager)(nil)

// Failpoint is a test hook consulted before state-mutating statistics
// operations. op is "refresh" (rebuilding an existing statistic) or
// "create" (physically building a new one); id names the target. Streaming
// builds additionally consult it at finer grain: "block" after each scan
// block (while the table's snapshot guard is held — the hook must not call
// back into the table or the manager), "spill-write" before a partial
// spills to a temp file, and "spill-read" before a spilled partial is
// reloaded for the merge; spill-op vetoes surface as TransientError. A
// non-nil return aborts the operation with that error, and the manager
// must leave all published state — snapshots, epoch, accounting —
// exactly as it was. ctx is the operation's context: latency-injecting
// failpoints must select on ctx.Done() while sleeping so deadlines and
// cancellation cut the injected delay short.
type Failpoint func(ctx context.Context, op string, id ID) error

// SetFailpoint installs (or, with nil, removes) the manager's failpoint.
// Production code never installs one; the fault-injection oracle uses it
// to prove refresh failures cannot poison optimizer state.
func (m *Manager) SetFailpoint(fp Failpoint) {
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	m.failpoint = fp
}

// failpointFn returns the installed failpoint, or nil.
func (m *Manager) failpointFn() Failpoint {
	m.cfgMu.RLock()
	defer m.cfgMu.RUnlock()
	return m.failpoint
}
