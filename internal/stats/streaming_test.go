package stats

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/histogram"
	"autostats/internal/obs"
	"autostats/internal/storage"
)

// streamDB builds a database with one wider table ("s": int with dups and
// NULL-able float, string group, int) so streaming builds cross type and
// NULL handling, not just the minimal fixture.
func streamDB(t *testing.T, rows int) *storage.Database {
	t.Helper()
	schema := catalog.NewSchema()
	if err := schema.AddTable(catalog.NewTable("s",
		catalog.Column{Name: "a", Type: catalog.Int},
		catalog.Column{Name: "b", Type: catalog.String},
		catalog.Column{Name: "c", Type: catalog.Int},
	)); err != nil {
		t.Fatal(err)
	}
	db, err := storage.NewDatabase("db", schema)
	if err != nil {
		t.Fatal(err)
	}
	td := mustTable(t, db, "s")
	for i := 0; i < rows; i++ {
		a := catalog.NewInt(int64(i % 23))
		if i%13 == 0 {
			a = catalog.NewNull(catalog.Int)
		}
		r := storage.Row{
			a,
			catalog.NewString(fmt.Sprintf("g%d", i%7)),
			catalog.NewInt(int64(i % 3)),
		}
		if err := td.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	// Punch holes so block scans must skip dead rows.
	var dead []int
	for id := 5; id < rows; id += 17 {
		dead = append(dead, id)
	}
	td.Delete(dead)
	return db
}

// spillFiles counts leftover spill temp files in dir.
func spillFiles(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

// TestStreamingBuildIdentity: a streaming build must be bitwise-identical to
// the materialized single-pass build at every block size, partition cut, and
// spill pattern — the tentpole invariant.
func TestStreamingBuildIdentity(t *testing.T) {
	db := streamDB(t, 500)
	cols := []string{"a", "b", "c"}
	ref := NewManager(db, histogram.MaxDiff, 0)
	want, err := ref.Create("s", cols)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{1, 7, 64, 4096} {
		for _, budget := range []int64{0, 1} { // 0 = never spill, 1 = spill every partial
			m := NewManager(db, histogram.MaxDiff, 0)
			m.SetObsRegistry(obs.New())
			if err := m.SetStreamingBuild(StreamConfig{
				Enabled:        true,
				BlockSize:      bs,
				PartitionRows:  37,
				MemBudgetBytes: budget,
				SpillDir:       t.TempDir(),
			}); err != nil {
				t.Fatal(err)
			}
			got, err := m.Create("s", cols)
			if err != nil {
				t.Fatalf("block=%d budget=%d: %v", bs, budget, err)
			}
			if !reflect.DeepEqual(got.Data, want.Data) {
				t.Errorf("block=%d budget=%d: streamed histogram differs from single-pass", bs, budget)
			}
			if got.DeltaSeq != want.DeltaSeq {
				t.Errorf("block=%d budget=%d: DeltaSeq=%d want %d", bs, budget, got.DeltaSeq, want.DeltaSeq)
			}
			if got.BuildCost != want.BuildCost {
				t.Errorf("block=%d budget=%d: BuildCost=%v want %v", bs, budget, got.BuildCost, want.BuildCost)
			}
		}
	}
}

// TestStreamingSpillMetricsAndCleanup: a budget-bound build spills, reports
// it via the obs counters, and leaves no temp files behind.
func TestStreamingSpillMetricsAndCleanup(t *testing.T) {
	db := streamDB(t, 400)
	dir := t.TempDir()
	m := NewManager(db, histogram.MaxDiff, 0)
	reg := obs.New()
	m.SetObsRegistry(reg)
	if err := m.SetStreamingBuild(StreamConfig{
		Enabled:        true,
		BlockSize:      16,
		PartitionRows:  50,
		MemBudgetBytes: 1,
		SpillDir:       dir,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("s", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("stats.build.streamed").Value(); n != 1 {
		t.Errorf("streamed=%d want 1", n)
	}
	if n := reg.Counter("stats.build.blocks").Value(); n == 0 {
		t.Error("no blocks counted")
	}
	if n := reg.Counter("stats.build.spills").Value(); n == 0 {
		t.Error("budget=1 build did not spill")
	}
	if n := reg.Counter("stats.build.spill_bytes").Value(); n == 0 {
		t.Error("spills reported but no spill bytes")
	}
	if n := reg.Gauge("stats.build.mem_peak_bytes").Value(); n <= 0 {
		t.Errorf("mem_peak_bytes=%d", n)
	}
	if n := spillFiles(t, dir); n != 0 {
		t.Errorf("%d spill files left after successful build", n)
	}
	if n := mustTable(t, db, "s").OpenSnapshots(); n != 0 {
		t.Errorf("OpenSnapshots=%d after build", n)
	}
}

// streamFaultFixture returns a manager with streaming + forced spilling into
// dir, ready for fault injection.
func streamFaultFixture(t *testing.T, db *storage.Database, dir string) *Manager {
	t.Helper()
	m := NewManager(db, histogram.MaxDiff, 0)
	m.SetObsRegistry(obs.New())
	if err := m.SetStreamingBuild(StreamConfig{
		Enabled:        true,
		BlockSize:      8,
		PartitionRows:  40,
		MemBudgetBytes: 1,
		SpillDir:       dir,
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestStreamingSpillFaultInjection: injected spill write/read failures must
// abort the build as Transient and leave every piece of published state —
// catalog, epoch, accounting, temp dir, snapshot guards — untouched.
func TestStreamingSpillFaultInjection(t *testing.T) {
	sentinel := errors.New("injected spill fault")
	for _, op := range []string{"spill-write", "spill-read"} {
		t.Run(op, func(t *testing.T) {
			db := streamDB(t, 300)
			dir := t.TempDir()
			m := streamFaultFixture(t, db, dir)
			failOp := op
			m.SetFailpoint(func(ctx context.Context, fpOp string, id ID) error {
				if fpOp == failOp {
					return sentinel
				}
				return nil
			})
			epoch := m.Epoch()
			acc := m.Snapshot()
			_, err := m.Create("s", []string{"a", "b"})
			if err == nil {
				t.Fatal("build survived injected spill fault")
			}
			if !IsTransient(err) {
				t.Errorf("%s fault not classified transient: %v", op, err)
			}
			if !errors.Is(err, sentinel) {
				t.Errorf("injected sentinel lost: %v", err)
			}
			if m.Epoch() != epoch {
				t.Error("failed build bumped the epoch")
			}
			if got := m.Snapshot(); got != acc {
				t.Errorf("failed build changed accounting: %+v -> %+v", acc, got)
			}
			if m.Has(MakeID("s", []string{"a", "b"})) {
				t.Error("failed build published a statistic")
			}
			if n := spillFiles(t, dir); n != 0 {
				t.Errorf("%d spill files left after injected %s fault", n, op)
			}
			if n := mustTable(t, db, "s").OpenSnapshots(); n != 0 {
				t.Errorf("OpenSnapshots=%d after injected %s fault", n, op)
			}
			// The fault must be recoverable: clearing it, the same build
			// succeeds and matches a plain build.
			m.SetFailpoint(nil)
			got, err := m.Create("s", []string{"a", "b"})
			if err != nil {
				t.Fatalf("retry after fault: %v", err)
			}
			ref := NewManager(db, histogram.MaxDiff, 0)
			want, err := ref.Create("s", []string{"a", "b"})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Data, want.Data) {
				t.Error("post-fault retry differs from reference build")
			}
		})
	}
}

// TestStreamingCancelMidStream: cancelling a build between blocks — after
// partials have already spilled — must delete the spill files, release the
// block iterator's snapshot guard, and leave catalog/epoch/accounting
// untouched.
func TestStreamingCancelMidStream(t *testing.T) {
	db := streamDB(t, 400)
	dir := t.TempDir()
	m := streamFaultFixture(t, db, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocks := 0
	m.SetFailpoint(func(fpCtx context.Context, op string, id ID) error {
		if op == "block" {
			blocks++
			// With BlockSize 8 and PartitionRows 40, block 20 is well past
			// several spilled partials.
			if blocks == 20 {
				cancel()
			}
		}
		return nil
	})
	epoch := m.Epoch()
	acc := m.Snapshot()
	_, _, err := m.EnsureCtx(ctx, "s", []string{"a", "b"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build returned %v", err)
	}
	if blocks < 20 {
		t.Fatalf("build consumed only %d blocks; cancel point never reached", blocks)
	}
	if n := spillFiles(t, dir); n != 0 {
		t.Errorf("%d spill files left after cancel", n)
	}
	if n := mustTable(t, db, "s").OpenSnapshots(); n != 0 {
		t.Errorf("OpenSnapshots=%d after cancel — snapshot guard leaked", n)
	}
	if m.Epoch() != epoch {
		t.Error("cancelled build bumped the epoch")
	}
	if got := m.Snapshot(); got != acc {
		t.Error("cancelled build changed accounting")
	}
	if m.Has(MakeID("s", []string{"a", "b"})) {
		t.Error("cancelled build published a statistic")
	}
	// The table must be fully writable again (guard released).
	if err := mustTable(t, db, "s").Insert(storage.Row{
		catalog.NewInt(1), catalog.NewString("z"), catalog.NewInt(1),
	}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingConcurrentBuildsAndFolds: streaming rebuilds, folding
// refreshes and DML hammer one shard concurrently; run under -race this
// proves block scans and FoldMulti never interleave on shared state. The
// final refreshed statistic must equal a fresh reference build.
func TestStreamingConcurrentBuildsAndFolds(t *testing.T) {
	db := streamDB(t, 300)
	m := NewManager(db, histogram.MaxDiff, 0)
	m.SetObsRegistry(obs.New())
	if err := m.SetStreamingBuild(StreamConfig{
		Enabled:        true,
		BlockSize:      16,
		PartitionRows:  64,
		MemBudgetBytes: 4 << 10,
		SpillDir:       t.TempDir(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetIncrementalMaintenance(FoldConfig{Enabled: true, MaxFoldFraction: 0.5}); err != nil {
		t.Fatal(err)
	}
	id := MakeID("s", []string{"a"})
	if _, err := m.Create("s", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	td := mustTable(t, db, "s")
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				td.Insert(storage.Row{
					catalog.NewInt(int64(i % 11)),
					catalog.NewString("w"),
					catalog.NewInt(int64(g)),
				})
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if err := m.Refresh(id); err != nil {
				t.Errorf("refresh: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if s := m.Get(id); s != nil {
				_ = s.Data.Rows // read the published snapshot
			}
		}
	}()
	wg.Wait()
	if n := td.OpenSnapshots(); n != 0 {
		t.Fatalf("OpenSnapshots=%d after concurrent phase", n)
	}
	// One more refresh so the statistic reflects the final table state, then
	// compare against a fresh single-pass reference.
	if err := m.Refresh(id); err != nil {
		t.Fatal(err)
	}
	got := m.Get(id)
	ref := NewManager(db, histogram.MaxDiff, 0)
	want, err := ref.Create("s", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if got.FoldedRows == 0 {
		// The last refresh rebuilt (streamed): must match exactly.
		if !reflect.DeepEqual(got.Data, want.Data) {
			t.Error("final streamed rebuild differs from reference")
		}
	} else if got.Data.Rows != want.Data.Rows {
		// The last refresh folded: row counts still reconcile exactly.
		t.Errorf("folded rows=%d, reference rows=%d", got.Data.Rows, want.Data.Rows)
	}
}

// TestStreamingPeakMemoryFlat: the tracked peak build memory must stay flat
// as the table grows 10x — the O(block + partition) bound the tentpole
// promises. The gauge is a deterministic estimate of retained bytes, so the
// gate is exact, not timing-dependent.
func TestStreamingPeakMemoryFlat(t *testing.T) {
	peak := func(rows int) int64 {
		db := streamDB(t, rows)
		m := NewManager(db, histogram.MaxDiff, 0)
		reg := obs.New()
		m.SetObsRegistry(reg)
		if err := m.SetStreamingBuild(StreamConfig{
			Enabled:        true,
			BlockSize:      64,
			PartitionRows:  256,
			MemBudgetBytes: 64 << 10,
			SpillDir:       t.TempDir(),
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Create("s", []string{"a", "b"}); err != nil {
			t.Fatal(err)
		}
		return reg.Gauge("stats.build.mem_peak_bytes").Value()
	}
	small := peak(1_000)
	large := peak(10_000)
	if small <= 0 || large <= 0 {
		t.Fatalf("peaks not tracked: small=%d large=%d", small, large)
	}
	// 10x the rows must not move the peak past the budget headroom; allow 2x
	// for partition-boundary noise. (Unbudgeted, the peak would scale ~10x.)
	if large > 2*small && large > 80<<10 {
		t.Errorf("peak grew from %d to %d over 10x rows — not flat", small, large)
	}
}

// BenchmarkStreamingManagerBuild is the end-to-end streaming build the
// statsbuild-bench CI job watches with -benchmem: per-build allocations must
// track the block/partition bounds, not the table size.
func BenchmarkStreamingManagerBuild(b *testing.B) {
	schema := catalog.NewSchema()
	if err := schema.AddTable(catalog.NewTable("s",
		catalog.Column{Name: "a", Type: catalog.Int},
		catalog.Column{Name: "b", Type: catalog.String},
	)); err != nil {
		b.Fatal(err)
	}
	db, err := storage.NewDatabase("db", schema)
	if err != nil {
		b.Fatal(err)
	}
	td, err := db.Table("s")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		if err := td.Insert(storage.Row{
			catalog.NewInt(int64(i % 100)),
			catalog.NewString(fmt.Sprintf("g%d", i%13)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	m := NewManager(db, histogram.MaxDiff, 0)
	m.SetObsRegistry(obs.New())
	if err := m.SetStreamingBuild(StreamConfig{
		Enabled:        true,
		BlockSize:      512,
		PartitionRows:  4096,
		MemBudgetBytes: 256 << 10,
		SpillDir:       b.TempDir(),
	}); err != nil {
		b.Fatal(err)
	}
	id := MakeID("s", []string{"a", "b"})
	if _, err := m.Create("s", []string{"a", "b"}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Refresh(id); err != nil {
			b.Fatal(err)
		}
	}
}
