// Package stats implements the statistics manager: creation, update and
// deletion of single- and multi-column statistics over a storage.Database,
// the drop-list of §5, the aging mechanism of §6, and the SQL Server 7.0
// auto-update/auto-drop maintenance policy the paper extends.
//
// Concurrency model: a Manager is safe for concurrent use. The catalog is
// sharded by table — a statistic lives in the shard its table name hashes
// to — so refreshes and creates on different tables never contend on one
// mutex. Every observable mutation (Create/Drop/Refresh/drop-list
// changes/Load) bumps a global, monotonically increasing epoch that
// callers — notably the optimizer's plan cache — use to detect staleness.
// The epoch is advanced inside the owning shard's critical section, before
// the shard lock is released, so a reader that observes the mutated catalog
// state also observes the new epoch. *Statistic values handed out by the
// manager are treated as immutable snapshots: Refresh replaces the map
// entry with a fresh Statistic instead of mutating the published one in
// place, so a reader that obtained a pointer before the refresh keeps a
// consistent (if stale) view without data races.
//
// Lock ordering: shard mutexes are acquired before cfgMu (configuration)
// and accMu (accounting); when several shards are locked together (Load,
// DropAll) they are taken in index order. cfgMu is never held while
// acquiring a shard lock.
package stats

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autostats/internal/histogram"
	"autostats/internal/obs"
	"autostats/internal/storage"
)

// ID uniquely names a statistic as "table(col1,col2,...)" in lower case.
// Column order matters: multi-column statistics are asymmetric (§7.1).
type ID string

// MakeID builds the canonical statistic ID.
func MakeID(table string, cols []string) ID {
	lower := make([]string, len(cols))
	for i, c := range cols {
		lower[i] = strings.ToLower(c)
	}
	return ID(strings.ToLower(table) + "(" + strings.Join(lower, ",") + ")")
}

// Table extracts the (lower-case) table name from the canonical ID.
func (id ID) Table() string {
	if i := strings.IndexByte(string(id), '('); i >= 0 {
		return string(id[:i])
	}
	return string(id)
}

// Statistic is one created statistic and its bookkeeping. Once published by
// the manager it must be treated as read-only; the manager replaces the
// whole value on refresh.
type Statistic struct {
	ID      ID
	Table   string
	Columns []string
	// Data is the summary structure; single-column statistics are
	// MultiColumn with one column.
	Data *histogram.MultiColumn

	// BuildCost is the work-unit cost charged when the statistic was built
	// (full-rebuild refreshes charge the same units to the update-side
	// accounting; fold refreshes charge histogram.FoldCostUnits instead).
	BuildCost float64
	// BuildTime is the wall-clock time of the most recent (re)build or fold.
	BuildTime time.Duration
	// CreatedAt / UpdatedAt are logical-clock stamps.
	CreatedAt int64
	UpdatedAt int64
	// UpdateCount counts refreshes since creation (drives the auto-drop
	// policy threshold).
	UpdateCount int
	// InDropList marks the statistic as identified non-essential (§5).
	// Drop-listed statistics remain usable by the optimizer until
	// physically dropped but incur no maintenance cost.
	InDropList bool

	// DeltaSeq is the table delta-log watermark Data reflects: the folding
	// refresh path replays exactly the modifications logged after it.
	DeltaSeq int64
	// FoldedRows counts row deltas folded incrementally into Data since the
	// last full build — the bounded "fold error" that triggers a rebuild
	// once it crosses FoldConfig.MaxFoldFraction of the table.
	FoldedRows int64
}

// IsSingleColumn reports whether the statistic covers exactly one column.
func (s *Statistic) IsSingleColumn() bool { return len(s.Columns) == 1 }

// LeadingColumn returns the first (histogram-bearing) column.
func (s *Statistic) LeadingColumn() string { return s.Columns[0] }

// numShards is the catalog shard count. Statistics are distributed by a
// hash of their table name, so all statistics of one table share a shard
// (RefreshTable stays a single-shard critical section) while different
// tables almost always land on different mutexes.
const numShards = 16

// shard is one slice of the statistics catalog with its own lock.
type shard struct {
	mu    sync.RWMutex
	stats map[ID]*Statistic
	// droppedAt records logical drop times of physically dropped statistics,
	// feeding the aging policy (§6).
	droppedAt map[ID]int64
}

// Manager owns all statistics of one database. It is safe for concurrent
// use; see the package comment for the sharding, locking and epoch
// discipline.
type Manager struct {
	db         *storage.Database
	kind       histogram.Kind
	maxBuckets int

	shards [numShards]shard

	// clock is the logical clock; epoch increases on every observable
	// statistics mutation — equal epochs imply an identical visible
	// statistics set.
	clock atomic.Int64
	epoch atomic.Uint64

	// AgingWindow is the number of logical ticks during which a recently
	// dropped statistic is considered "aged" and should not be re-created
	// for cheap queries. Zero disables aging. Set it before sharing the
	// manager across goroutines.
	AgingWindow int64

	// cfgMu guards the reconfigurable collaborators below. It is never held
	// while acquiring a shard lock.
	cfgMu sync.RWMutex
	// sampling configures sampled statistics construction (see SetSampling).
	sampling SampleConfig
	// feedback, when non-nil, supplies execution-feedback q-error summaries
	// to RunMaintenance (see SetFeedbackProvider).
	feedback FeedbackProvider
	// failpoint, when non-nil, can veto mutating operations (see
	// SetFailpoint).
	failpoint Failpoint
	// parallelism is the partition count for histogram builds (see
	// SetBuildParallelism); <= 1 builds single-pass.
	parallelism int
	// fold configures incremental (folding) maintenance (see
	// SetIncrementalMaintenance).
	fold FoldConfig
	// stream configures streaming (block-at-a-time) construction (see
	// SetStreamingBuild).
	stream StreamConfig
	// met caches the manager's observability handles; see managerMetrics.
	met managerMetrics

	// accMu guards the cumulative accounting fields below. It is the
	// innermost lock: taken only with no other manager lock needed, or
	// inside a shard critical section.
	accMu sync.Mutex
	// Cumulative accounting, reported by the experiment harness. Mutated
	// only under accMu; read them after concurrent phases have joined, or
	// via Accounting for a consistent snapshot.
	TotalBuildCost  float64
	TotalBuildTime  time.Duration
	TotalUpdateCost float64
	BuildCount      int
	UpdateOpCount   int
}

// managerMetrics caches the manager's metric handles so hot paths hit the
// atomics directly instead of re-looking names up in the registry. Counters
// mirror the cumulative accounting fields one-for-one (stats.builds =
// BuildCount, stats.build.cost_units = TotalBuildCost, ...) so experiment
// tables derived from either source reconcile.
type managerMetrics struct {
	reg           *obs.Registry
	builds        *obs.Counter
	resurrections *obs.Counter
	drops         *obs.Counter
	refreshes     *obs.Counter
	droplistAdds  *obs.Counter
	droplistRems  *obs.Counter
	buildUnits    *obs.FloatCounter
	updateUnits   *obs.FloatCounter
	statCount     *obs.Gauge
	epoch         *obs.Gauge
	shardCount    *obs.Gauge
	buildLatency  *obs.Timing

	// Build-path instrumentation: fullScans counts statistic (re)builds
	// that scanned the table (the fold path's absence is the evidence that
	// incremental maintenance worked); parallelBuilds/partialsMerged count
	// partition-parallel builds and the partials they merged.
	fullScans      *obs.Counter
	parallelBuilds *obs.Counter
	partialsMerged *obs.Counter
	// Fold-path instrumentation: folds counts refreshes served by folding
	// row deltas, foldRebuilds counts fold attempts that fell back to a
	// full rebuild, foldedRows counts the deltas folded.
	folds        *obs.Counter
	foldRebuilds *obs.Counter
	foldedRows   *obs.Counter
	// Streaming-path instrumentation: streamedBuilds counts builds that
	// scanned via the block iterator, buildBlocks the blocks they consumed,
	// buildSpills/spillBytes the partials (and bytes) that overflowed the
	// build-memory budget to temp files. buildMemPeak is the estimated peak
	// build memory (builder + retained partials) of the most recent
	// streaming build — the gauge the flat-memory benchmark gates on.
	streamedBuilds *obs.Counter
	buildBlocks    *obs.Counter
	buildSpills    *obs.Counter
	spillBytes     *obs.Counter
	buildMemPeak   *obs.Gauge
}

func newManagerMetrics(reg *obs.Registry) managerMetrics {
	return managerMetrics{
		reg:            reg,
		builds:         reg.Counter("stats.builds"),
		resurrections:  reg.Counter("stats.resurrections"),
		drops:          reg.Counter("stats.drops"),
		refreshes:      reg.Counter("stats.refreshes"),
		droplistAdds:   reg.Counter("stats.droplist.adds"),
		droplistRems:   reg.Counter("stats.droplist.removes"),
		buildUnits:     reg.FloatCounter("stats.build.cost_units"),
		updateUnits:    reg.FloatCounter("stats.update.cost_units"),
		statCount:      reg.Gauge("stats.count"),
		epoch:          reg.Gauge("stats.epoch"),
		shardCount:     reg.Gauge("stats.shards"),
		buildLatency:   reg.Timing("stats.build.latency"),
		fullScans:      reg.Counter("stats.build.full_scans"),
		parallelBuilds: reg.Counter("stats.build.parallel_builds"),
		partialsMerged: reg.Counter("stats.build.partials_merged"),
		folds:          reg.Counter("stats.fold.applied"),
		foldRebuilds:   reg.Counter("stats.fold.rebuilds"),
		foldedRows:     reg.Counter("stats.fold.rows"),
		streamedBuilds: reg.Counter("stats.build.streamed"),
		buildBlocks:    reg.Counter("stats.build.blocks"),
		buildSpills:    reg.Counter("stats.build.spills"),
		spillBytes:     reg.Counter("stats.build.spill_bytes"),
		buildMemPeak:   reg.Gauge("stats.build.mem_peak_bytes"),
	}
}

// NewManager creates a statistics manager over db using the given histogram
// kind and bucket budget (<=0 means histogram.DefaultBuckets).
func NewManager(db *storage.Database, kind histogram.Kind, maxBuckets int) *Manager {
	m := &Manager{
		db:         db,
		kind:       kind,
		maxBuckets: maxBuckets,
		met:        newManagerMetrics(obs.Default),
	}
	for i := range m.shards {
		m.shards[i].stats = make(map[ID]*Statistic)
		m.shards[i].droppedAt = make(map[ID]int64)
	}
	m.met.shardCount.Set(numShards)
	return m
}

// Database returns the managed database.
func (m *Manager) Database() *storage.Database { return m.db }

// shardFor returns the shard owning statistics of the (lower-case) table.
func (m *Manager) shardFor(table string) *shard {
	// FNV-1a over the table name.
	h := uint64(14695981039346656037)
	for i := 0; i < len(table); i++ {
		h ^= uint64(table[i])
		h *= 1099511628211
	}
	return &m.shards[h%numShards]
}

// metrics returns the current observability handles. Hot paths snapshot
// them once per operation instead of re-reading cfgMu per counter.
func (m *Manager) metrics() managerMetrics {
	m.cfgMu.RLock()
	defer m.cfgMu.RUnlock()
	return m.met
}

// SetObsRegistry redirects the manager's metrics to reg (obs.Default at
// construction). Call it before sharing the manager across goroutines.
func (m *Manager) SetObsRegistry(reg *obs.Registry) {
	n := int64(len(m.All()))
	met := newManagerMetrics(reg)
	met.statCount.Set(n)
	met.epoch.Set(int64(m.epoch.Load()))
	met.shardCount.Set(numShards)
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	m.met = met
}

// ObsRegistry returns the registry the manager's metrics go to.
func (m *Manager) ObsRegistry() *obs.Registry {
	m.cfgMu.RLock()
	defer m.cfgMu.RUnlock()
	return m.met.reg
}

// bumpEpoch advances the statistics epoch. Callers must hold the mutated
// shard's write lock (or all shard locks) so the new epoch is published
// before the mutation becomes visible to other goroutines. The epoch and
// stat-count gauges are maintained with deltas — gauge Set from concurrent
// shards could publish a stale absolute value.
func (m *Manager) bumpEpoch(met managerMetrics) {
	m.epoch.Add(1)
	met.epoch.Add(1)
}

// Epoch returns the statistics epoch: a counter bumped by every observable
// mutation (Create, Drop, Refresh, drop-list changes, Load, DropAll). Two
// optimizations at the same epoch see the same statistics.
func (m *Manager) Epoch() uint64 { return m.epoch.Load() }

// Tick advances the logical clock (called once per processed statement by
// policy drivers) and returns the new time.
func (m *Manager) Tick() int64 { return m.clock.Add(1) }

// Clock returns the current logical time.
func (m *Manager) Clock() int64 { return m.clock.Load() }

// Get returns the statistic with the given ID, or nil.
func (m *Manager) Get(id ID) *Statistic {
	sh := m.shardFor(id.Table())
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.stats[id]
}

// Has reports whether the statistic exists (whether or not drop-listed).
func (m *Manager) Has(id ID) bool { return m.Get(id) != nil }

// IsDropListed reports whether the statistic exists and is drop-listed.
func (m *Manager) IsDropListed(id ID) bool {
	sh := m.shardFor(id.Table())
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.stats[id]
	return s != nil && s.InDropList
}

// collect gathers the statistics matching filter (nil means all) across
// every shard, in deterministic ID order. Shards are visited one at a time;
// the result is a consistent per-shard snapshot, which is all the previous
// single-mutex implementation guaranteed to concurrent readers as well.
func (m *Manager) collect(filter func(*Statistic) bool) []*Statistic {
	var out []*Statistic
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, s := range sh.stats {
			if filter == nil || filter(s) {
				out = append(out, s)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// All returns all existing statistics in deterministic ID order.
func (m *Manager) All() []*Statistic { return m.collect(nil) }

// Maintained returns the statistics not in the drop-list — the set whose
// update cost the system pays (§5, Table 1 metric).
func (m *Manager) Maintained() []*Statistic {
	return m.collect(func(s *Statistic) bool { return !s.InDropList })
}

// DropList returns the drop-listed statistics in deterministic order.
func (m *Manager) DropList() []*Statistic {
	return m.collect(func(s *Statistic) bool { return s.InDropList })
}

// DropListIDs returns the drop-listed statistic IDs in ID order — a cheap
// snapshot for workload drivers that report drop-list deltas.
func (m *Manager) DropListIDs() []ID {
	dropped := m.DropList()
	out := make([]ID, len(dropped))
	for i, s := range dropped {
		out[i] = s.ID
	}
	return out
}

// Create builds the statistic on table(cols) and returns it. If it already
// exists, the existing statistic is returned; a drop-listed statistic is
// resurrected (removed from the drop-list) without rebuilding, per §5:
// "instead of re-creating the statistic s, it can simply be removed from the
// drop-list and made accessible to the optimizer".
//
// Concurrent Create calls for the same ID are serialized; the second call
// returns the statistic the first one built.
func (m *Manager) Create(table string, cols []string) (*Statistic, error) {
	s, _, err := m.Ensure(table, cols)
	return s, err
}

// Ensure is Create that also reports whether this call physically built the
// statistic — false when it already existed or was merely resurrected from
// the drop-list. Callers that attribute build cost (MNSA's units-consumed
// accounting) need the distinction; Create callers don't.
func (m *Manager) Ensure(table string, cols []string) (*Statistic, bool, error) {
	return m.EnsureCtx(context.Background(), table, cols)
}

// EnsureCtx is Ensure honoring cancellation and deadlines: the build is
// abandoned — with all published state (snapshots, epoch, accounting)
// untouched — when ctx expires before or between the build steps. A
// statistic that already exists is returned regardless of ctx state; only
// physical building is cancellable work.
func (m *Manager) EnsureCtx(ctx context.Context, table string, cols []string) (*Statistic, bool, error) {
	id := MakeID(table, cols)
	met := m.metrics()
	sh := m.shardFor(id.Table())
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s := sh.stats[id]; s != nil {
		if s.InDropList {
			s.InDropList = false
			met.resurrections.Inc()
			met.droplistRems.Inc()
			m.bumpEpoch(met)
		}
		return s, false, nil
	}
	if fp := m.failpointFn(); fp != nil {
		if err := fp(ctx, "create", id); err != nil {
			return nil, false, fmt.Errorf("stats: create %s vetoed: %w", id, err)
		}
	}
	s, err := m.build(ctx, table, cols, met)
	if err != nil {
		return nil, false, err
	}
	// Creation accounting is charged here, NOT in build: refreshes reuse
	// the build path but must charge only the update-side counters.
	m.accMu.Lock()
	m.TotalBuildCost += s.BuildCost
	m.TotalBuildTime += s.BuildTime
	m.BuildCount++
	m.accMu.Unlock()
	met.builds.Inc()
	met.buildUnits.Add(s.BuildCost)
	met.buildLatency.Observe(s.BuildTime)
	sh.stats[id] = s
	met.statCount.Add(1)
	m.bumpEpoch(met)
	return s, true, nil
}

func lowerAll(cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = strings.ToLower(c)
	}
	return out
}

// Drop physically removes a statistic and records the drop time for aging.
func (m *Manager) Drop(id ID) bool {
	met := m.metrics()
	sh := m.shardFor(id.Table())
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return m.dropShardLocked(sh, id, met)
}

// dropShardLocked removes id from sh; the caller holds sh.mu.
func (m *Manager) dropShardLocked(sh *shard, id ID, met managerMetrics) bool {
	if _, ok := sh.stats[id]; !ok {
		return false
	}
	delete(sh.stats, id)
	sh.droppedAt[id] = m.clock.Add(1)
	met.drops.Inc()
	met.statCount.Add(-1)
	m.bumpEpoch(met)
	return true
}

// AddToDropList marks a statistic non-essential. Returns false if unknown.
func (m *Manager) AddToDropList(id ID) bool {
	met := m.metrics()
	sh := m.shardFor(id.Table())
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.stats[id]
	if s == nil {
		return false
	}
	if !s.InDropList {
		s.InDropList = true
		met.droplistAdds.Inc()
		m.bumpEpoch(met)
	}
	return true
}

// RemoveFromDropList resurrects a drop-listed statistic.
func (m *Manager) RemoveFromDropList(id ID) bool {
	met := m.metrics()
	sh := m.shardFor(id.Table())
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.stats[id]
	if s == nil {
		return false
	}
	if s.InDropList {
		s.InDropList = false
		met.droplistRems.Inc()
		m.bumpEpoch(met)
	}
	return true
}

// PurgeDropList physically drops every drop-listed statistic and returns
// how many were dropped (a policy action, §6).
func (m *Manager) PurgeDropList() int {
	met := m.metrics()
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		var ids []ID
		for id, s := range sh.stats {
			if s.InDropList {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			if m.dropShardLocked(sh, id, met) {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// RecentlyDropped reports whether the statistic was physically dropped
// within the aging window, in which case re-creation should be dampened for
// inexpensive queries (§6).
func (m *Manager) RecentlyDropped(id ID) bool {
	if m.AgingWindow <= 0 {
		return false
	}
	sh := m.shardFor(id.Table())
	sh.mu.RLock()
	at, ok := sh.droppedAt[id]
	sh.mu.RUnlock()
	return ok && m.clock.Load()-at < m.AgingWindow
}

// Refresh rebuilds an existing statistic from current data, charging its
// update cost (and only its update cost — creation accounting is untouched).
// Drop-listed statistics are skipped (they are not maintained). The map
// entry is replaced with a fresh Statistic; previously handed-out pointers
// keep their pre-refresh snapshot. When incremental maintenance is enabled
// and the table's logged row deltas are small enough, the refresh folds the
// deltas into the existing histogram instead of rescanning the table.
func (m *Manager) Refresh(id ID) error {
	return m.RefreshCtx(context.Background(), id)
}

// RefreshCtx is Refresh honoring cancellation and deadlines; see EnsureCtx
// for the abandonment guarantees.
func (m *Manager) RefreshCtx(ctx context.Context, id ID) error {
	met := m.metrics()
	sh := m.shardFor(id.Table())
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, err := m.refreshShardLocked(ctx, sh, id, met)
	return err
}

// refreshShardLocked refreshes one statistic and returns the update cost
// this call charged (0 when the statistic is drop-listed and skipped).
// Callers must hold sh.mu. Returning the cost lets maintenance passes
// attribute exactly their own work instead of diffing the global counters,
// which would fold in concurrent refreshes.
func (m *Manager) refreshShardLocked(ctx context.Context, sh *shard, id ID, met managerMetrics) (float64, error) {
	s := sh.stats[id]
	if s == nil {
		return 0, fmt.Errorf("stats: unknown statistic %s", id)
	}
	if s.InDropList {
		return 0, nil
	}
	if fp := m.failpointFn(); fp != nil {
		if err := fp(ctx, "refresh", id); err != nil {
			return 0, fmt.Errorf("stats: refresh %s vetoed: %w", id, err)
		}
	}
	fresh, cost, err := m.rebuildOrFold(ctx, s, met)
	if err != nil {
		return 0, fmt.Errorf("stats: refresh %s: %w", id, err)
	}
	sh.stats[id] = fresh
	m.accMu.Lock()
	m.TotalUpdateCost += cost
	m.UpdateOpCount++
	m.accMu.Unlock()
	met.refreshes.Inc()
	met.updateUnits.Add(cost)
	m.bumpEpoch(met)
	return cost, nil
}

// refreshStatCost refreshes a single statistic and returns the update cost
// this call charged — the per-statistic sibling of refreshTableCost, used by
// the feedback-triggered maintenance path. The table's modification counter
// is left untouched: other statistics on the table remain governed by it.
func (m *Manager) refreshStatCost(ctx context.Context, id ID) (float64, error) {
	met := m.metrics()
	sh := m.shardFor(id.Table())
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return m.refreshShardLocked(ctx, sh, id, met)
}

// RefreshTable refreshes every maintained statistic on the table and resets
// its modification counter. Returns the number refreshed.
func (m *Manager) RefreshTable(table string) (int, error) {
	n, _, err := m.refreshTableCost(context.Background(), table)
	return n, err
}

// refreshTableCost is RefreshTable plus the update cost charged by this call
// alone, so a maintenance pass can report its own cost even while other
// goroutines refresh concurrently. All statistics of one table live in one
// shard, so the whole pass is a single-shard critical section. Cancellation
// is checked between the per-statistic rebuilds.
func (m *Manager) refreshTableCost(ctx context.Context, table string) (int, float64, error) {
	table = strings.ToLower(table)
	met := m.metrics()
	sh := m.shardFor(table)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var ids []ID
	for id, s := range sh.stats {
		if s.Table == table && !s.InDropList {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	n := 0
	var cost float64
	for _, id := range ids {
		c, err := m.refreshShardLocked(ctx, sh, id, met)
		if err != nil {
			return n, cost, err
		}
		cost += c
		n++
	}
	if td, err := m.db.Table(table); err == nil {
		td.ResetModCounter()
	}
	return n, cost, nil
}

// MaintenanceCostUnits returns the work units one full refresh cycle of all
// maintained statistics would charge — the "cost of updating the set of
// statistics left behind" metric of Table 1.
func (m *Manager) MaintenanceCostUnits() float64 {
	var c float64
	for _, s := range m.Maintained() {
		td, err := m.db.Table(s.Table)
		if err != nil {
			continue
		}
		c += histogram.BuildCostUnits(int64(td.RowCount()), len(s.Columns))
	}
	return c
}

// StatsOnTable returns all existing statistics on a table.
func (m *Manager) StatsOnTable(table string) []*Statistic {
	table = strings.ToLower(table)
	sh := m.shardFor(table)
	sh.mu.RLock()
	var out []*Statistic
	for _, s := range sh.stats {
		if s.Table == table {
			out = append(out, s)
		}
	}
	sh.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// StatsForColumn returns all statistics whose leading (histogram-bearing)
// column is table.column — the statistics usable to estimate a predicate on
// that column. Single-column statistics sort first so the estimator prefers
// the most precise structure.
func (m *Manager) StatsForColumn(table, column string) []*Statistic {
	table, column = strings.ToLower(table), strings.ToLower(column)
	sh := m.shardFor(table)
	sh.mu.RLock()
	var out []*Statistic
	for _, s := range sh.stats {
		if s.Table == table && s.LeadingColumn() == column {
			out = append(out, s)
		}
	}
	sh.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Columns) != len(out[j].Columns) {
			return len(out[i].Columns) < len(out[j].Columns)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Accounting is a consistent snapshot of the cumulative cost counters.
type Accounting struct {
	TotalBuildCost  float64
	TotalBuildTime  time.Duration
	TotalUpdateCost float64
	BuildCount      int
	UpdateOpCount   int
}

// Snapshot returns the accounting counters under the accounting lock, safe
// to call while other goroutines mutate statistics.
func (m *Manager) Snapshot() Accounting {
	m.accMu.Lock()
	defer m.accMu.Unlock()
	return Accounting{
		TotalBuildCost:  m.TotalBuildCost,
		TotalBuildTime:  m.TotalBuildTime,
		TotalUpdateCost: m.TotalUpdateCost,
		BuildCount:      m.BuildCount,
		UpdateOpCount:   m.UpdateOpCount,
	}
}

// ResetAccounting zeroes the cumulative cost counters (between experiment
// phases).
func (m *Manager) ResetAccounting() {
	m.accMu.Lock()
	defer m.accMu.Unlock()
	m.TotalBuildCost = 0
	m.TotalBuildTime = 0
	m.TotalUpdateCost = 0
	m.BuildCount = 0
	m.UpdateOpCount = 0
}

// lockAll write-locks every shard in index order; unlockAll releases them
// in reverse. Used by the wholesale operations (Load, DropAll) that must
// mutate the catalog atomically with respect to readers.
func (m *Manager) lockAll() {
	for i := range m.shards {
		m.shards[i].mu.Lock()
	}
}

func (m *Manager) unlockAll() {
	for i := len(m.shards) - 1; i >= 0; i-- {
		m.shards[i].mu.Unlock()
	}
}

// DropAll removes every statistic without recording aging drops (used to
// reset experiments).
func (m *Manager) DropAll() {
	met := m.metrics()
	m.lockAll()
	defer m.unlockAll()
	var old int64
	for i := range m.shards {
		old += int64(len(m.shards[i].stats))
		m.shards[i].stats = make(map[ID]*Statistic)
		m.shards[i].droppedAt = make(map[ID]int64)
	}
	met.statCount.Add(-old)
	m.bumpEpoch(met)
}
