// Package stats implements the statistics manager: creation, update and
// deletion of single- and multi-column statistics over a storage.Database,
// the drop-list of §5, the aging mechanism of §6, and the SQL Server 7.0
// auto-update/auto-drop maintenance policy the paper extends.
//
// Concurrency model: a Manager is safe for concurrent use. All mutating
// entry points take a write lock, all readers take a read lock, and every
// observable mutation (Create/Drop/Refresh/drop-list changes/Load) bumps a
// monotonically increasing epoch that callers — notably the optimizer's plan
// cache — use to detect staleness. *Statistic values handed out by the
// manager are treated as immutable snapshots: Refresh replaces the map entry
// with a fresh Statistic instead of mutating the published one in place, so
// a reader that obtained a pointer before the refresh keeps a consistent
// (if stale) view without data races.
package stats

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"autostats/internal/histogram"
	"autostats/internal/obs"
	"autostats/internal/storage"
)

// ID uniquely names a statistic as "table(col1,col2,...)" in lower case.
// Column order matters: multi-column statistics are asymmetric (§7.1).
type ID string

// MakeID builds the canonical statistic ID.
func MakeID(table string, cols []string) ID {
	lower := make([]string, len(cols))
	for i, c := range cols {
		lower[i] = strings.ToLower(c)
	}
	return ID(strings.ToLower(table) + "(" + strings.Join(lower, ",") + ")")
}

// Table extracts the (lower-case) table name from the canonical ID.
func (id ID) Table() string {
	if i := strings.IndexByte(string(id), '('); i >= 0 {
		return string(id[:i])
	}
	return string(id)
}

// Statistic is one created statistic and its bookkeeping. Once published by
// the manager it must be treated as read-only; the manager replaces the
// whole value on refresh.
type Statistic struct {
	ID      ID
	Table   string
	Columns []string
	// Data is the summary structure; single-column statistics are
	// MultiColumn with one column.
	Data *histogram.MultiColumn

	// BuildCost is the work-unit cost charged when the statistic was built
	// (refreshes charge the same units to the update-side accounting).
	BuildCost float64
	// BuildTime is the wall-clock time of the most recent (re)build.
	BuildTime time.Duration
	// CreatedAt / UpdatedAt are logical-clock stamps.
	CreatedAt int64
	UpdatedAt int64
	// UpdateCount counts refreshes since creation (drives the auto-drop
	// policy threshold).
	UpdateCount int
	// InDropList marks the statistic as identified non-essential (§5).
	// Drop-listed statistics remain usable by the optimizer until
	// physically dropped but incur no maintenance cost.
	InDropList bool
}

// IsSingleColumn reports whether the statistic covers exactly one column.
func (s *Statistic) IsSingleColumn() bool { return len(s.Columns) == 1 }

// LeadingColumn returns the first (histogram-bearing) column.
func (s *Statistic) LeadingColumn() string { return s.Columns[0] }

// Manager owns all statistics of one database. It is safe for concurrent
// use; see the package comment for the locking and epoch discipline.
type Manager struct {
	db         *storage.Database
	kind       histogram.Kind
	maxBuckets int

	mu    sync.RWMutex
	stats map[ID]*Statistic
	// droppedAt records logical drop times of physically dropped statistics,
	// feeding the aging policy (§6).
	droppedAt map[ID]int64
	clock     int64
	// epoch increases on every observable statistics mutation; equal epochs
	// imply an identical visible statistics set.
	epoch uint64

	// AgingWindow is the number of logical ticks during which a recently
	// dropped statistic is considered "aged" and should not be re-created
	// for cheap queries. Zero disables aging. Set it before sharing the
	// manager across goroutines.
	AgingWindow int64

	// sampling configures sampled statistics construction (see SetSampling).
	sampling SampleConfig

	// feedback, when non-nil, supplies execution-feedback q-error summaries
	// to RunMaintenance (see SetFeedbackProvider).
	feedback FeedbackProvider

	// failpoint, when non-nil, can veto mutating operations (see
	// SetFailpoint). Guarded by mu like the state it protects.
	failpoint Failpoint

	// Cumulative accounting, reported by the experiment harness. Mutated
	// only under mu; read them after concurrent phases have joined, or via
	// Accounting for a consistent snapshot.
	TotalBuildCost  float64
	TotalBuildTime  time.Duration
	TotalUpdateCost float64
	BuildCount      int
	UpdateOpCount   int

	// met caches the manager's observability handles; see managerMetrics.
	met managerMetrics
}

// managerMetrics caches the manager's metric handles so hot paths hit the
// atomics directly instead of re-looking names up in the registry. Counters
// mirror the cumulative accounting fields one-for-one (stats.builds =
// BuildCount, stats.build.cost_units = TotalBuildCost, ...) so experiment
// tables derived from either source reconcile.
type managerMetrics struct {
	reg           *obs.Registry
	builds        *obs.Counter
	resurrections *obs.Counter
	drops         *obs.Counter
	refreshes     *obs.Counter
	droplistAdds  *obs.Counter
	droplistRems  *obs.Counter
	buildUnits    *obs.FloatCounter
	updateUnits   *obs.FloatCounter
	statCount     *obs.Gauge
	epoch         *obs.Gauge
	buildLatency  *obs.Timing
}

func newManagerMetrics(reg *obs.Registry) managerMetrics {
	return managerMetrics{
		reg:           reg,
		builds:        reg.Counter("stats.builds"),
		resurrections: reg.Counter("stats.resurrections"),
		drops:         reg.Counter("stats.drops"),
		refreshes:     reg.Counter("stats.refreshes"),
		droplistAdds:  reg.Counter("stats.droplist.adds"),
		droplistRems:  reg.Counter("stats.droplist.removes"),
		buildUnits:    reg.FloatCounter("stats.build.cost_units"),
		updateUnits:   reg.FloatCounter("stats.update.cost_units"),
		statCount:     reg.Gauge("stats.count"),
		epoch:         reg.Gauge("stats.epoch"),
		buildLatency:  reg.Timing("stats.build.latency"),
	}
}

// NewManager creates a statistics manager over db using the given histogram
// kind and bucket budget (<=0 means histogram.DefaultBuckets).
func NewManager(db *storage.Database, kind histogram.Kind, maxBuckets int) *Manager {
	return &Manager{
		db:         db,
		kind:       kind,
		maxBuckets: maxBuckets,
		stats:      make(map[ID]*Statistic),
		droppedAt:  make(map[ID]int64),
		met:        newManagerMetrics(obs.Default),
	}
}

// Database returns the managed database.
func (m *Manager) Database() *storage.Database { return m.db }

// SetObsRegistry redirects the manager's metrics to reg (obs.Default at
// construction). Call it before sharing the manager across goroutines.
func (m *Manager) SetObsRegistry(reg *obs.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.met = newManagerMetrics(reg)
}

// ObsRegistry returns the registry the manager's metrics go to.
func (m *Manager) ObsRegistry() *obs.Registry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.met.reg
}

// bumpEpochLocked advances the statistics epoch and publishes it, along with
// the visible statistic count, to the metrics registry. Callers must hold mu.
func (m *Manager) bumpEpochLocked() {
	m.epoch++
	m.met.epoch.Set(int64(m.epoch))
	m.met.statCount.Set(int64(len(m.stats)))
}

// Epoch returns the statistics epoch: a counter bumped by every observable
// mutation (Create, Drop, Refresh, drop-list changes, Load, DropAll). Two
// optimizations at the same epoch see the same statistics.
func (m *Manager) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// Tick advances the logical clock (called once per processed statement by
// policy drivers) and returns the new time.
func (m *Manager) Tick() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock++
	return m.clock
}

// Clock returns the current logical time.
func (m *Manager) Clock() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.clock
}

// Get returns the statistic with the given ID, or nil.
func (m *Manager) Get(id ID) *Statistic {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats[id]
}

// Has reports whether the statistic exists (whether or not drop-listed).
func (m *Manager) Has(id ID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats[id] != nil
}

// IsDropListed reports whether the statistic exists and is drop-listed.
func (m *Manager) IsDropListed(id ID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := m.stats[id]
	return s != nil && s.InDropList
}

// allLocked returns all statistics in deterministic ID order. Callers must
// hold mu (read or write).
func (m *Manager) allLocked() []*Statistic {
	out := make([]*Statistic, 0, len(m.stats))
	for _, s := range m.stats {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// All returns all existing statistics in deterministic ID order.
func (m *Manager) All() []*Statistic {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.allLocked()
}

// Maintained returns the statistics not in the drop-list — the set whose
// update cost the system pays (§5, Table 1 metric).
func (m *Manager) Maintained() []*Statistic {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Statistic
	for _, s := range m.allLocked() {
		if !s.InDropList {
			out = append(out, s)
		}
	}
	return out
}

// DropList returns the drop-listed statistics in deterministic order.
func (m *Manager) DropList() []*Statistic {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Statistic
	for _, s := range m.allLocked() {
		if s.InDropList {
			out = append(out, s)
		}
	}
	return out
}

// DropListIDs returns the drop-listed statistic IDs in ID order — a cheap
// snapshot for workload drivers that report drop-list deltas.
func (m *Manager) DropListIDs() []ID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []ID
	for _, s := range m.allLocked() {
		if s.InDropList {
			out = append(out, s.ID)
		}
	}
	return out
}

// Create builds the statistic on table(cols) and returns it. If it already
// exists, the existing statistic is returned; a drop-listed statistic is
// resurrected (removed from the drop-list) without rebuilding, per §5:
// "instead of re-creating the statistic s, it can simply be removed from the
// drop-list and made accessible to the optimizer".
//
// Concurrent Create calls for the same ID are serialized; the second call
// returns the statistic the first one built.
func (m *Manager) Create(table string, cols []string) (*Statistic, error) {
	s, _, err := m.Ensure(table, cols)
	return s, err
}

// Ensure is Create that also reports whether this call physically built the
// statistic — false when it already existed or was merely resurrected from
// the drop-list. Callers that attribute build cost (MNSA's units-consumed
// accounting) need the distinction; Create callers don't.
func (m *Manager) Ensure(table string, cols []string) (*Statistic, bool, error) {
	return m.EnsureCtx(context.Background(), table, cols)
}

// EnsureCtx is Ensure honoring cancellation and deadlines: the build is
// abandoned — with all published state (snapshots, epoch, accounting)
// untouched — when ctx expires before or between the build steps. A
// statistic that already exists is returned regardless of ctx state; only
// physical building is cancellable work.
func (m *Manager) EnsureCtx(ctx context.Context, table string, cols []string) (*Statistic, bool, error) {
	id := MakeID(table, cols)
	m.mu.Lock()
	defer m.mu.Unlock()
	if s := m.stats[id]; s != nil {
		if s.InDropList {
			s.InDropList = false
			m.met.resurrections.Inc()
			m.met.droplistRems.Inc()
			m.bumpEpochLocked()
		}
		return s, false, nil
	}
	if m.failpoint != nil {
		if err := m.failpoint(ctx, "create", id); err != nil {
			return nil, false, fmt.Errorf("stats: create %s vetoed: %w", id, err)
		}
	}
	s, err := m.buildLocked(ctx, table, cols)
	if err != nil {
		return nil, false, err
	}
	// Creation accounting is charged here, NOT in buildLocked: refreshes
	// reuse the build path but must charge only the update-side counters.
	m.TotalBuildCost += s.BuildCost
	m.TotalBuildTime += s.BuildTime
	m.BuildCount++
	m.met.builds.Inc()
	m.met.buildUnits.Add(s.BuildCost)
	m.met.buildLatency.Observe(s.BuildTime)
	m.stats[id] = s
	m.bumpEpochLocked()
	return s, true, nil
}

// buildLocked constructs a fresh Statistic from current data. It bumps the
// logical clock but charges no accounting; Create and refreshLocked charge
// the build- and update-side counters respectively. Cancellation is checked
// between the build steps (value extraction, sampling, histogram
// construction), so a deadline aborts the build at the next step boundary
// with no state published. Callers must hold mu.
func (m *Manager) buildLocked(ctx context.Context, table string, cols []string) (*Statistic, error) {
	id := MakeID(table, cols)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("stats: building %s: %w", id, err)
	}
	td, err := m.db.Table(table)
	if err != nil {
		return nil, fmt.Errorf("stats: building %s: %w", id, err)
	}
	tuples, err := td.MultiColumnValues(cols)
	if err != nil {
		return nil, fmt.Errorf("stats: building %s: %w", id, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("stats: building %s: %w", id, err)
	}
	start := time.Now()
	sampled := m.sampleTuples(id, tuples)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("stats: building %s: %w", id, err)
	}
	mc, err := histogram.BuildMulti(m.kind, cols, sampled, m.maxBuckets)
	if err != nil {
		return nil, fmt.Errorf("stats: building %s: %w", id, err)
	}
	if len(sampled) < len(tuples) {
		scaleSampled(mc, len(sampled), len(tuples))
	}
	elapsed := time.Since(start)
	// Creation cost reflects the rows actually processed — sampling is
	// exactly how real systems cheapen construction.
	cost := histogram.BuildCostUnits(int64(len(sampled)), len(cols))
	m.clock++
	return &Statistic{
		ID:        id,
		Table:     strings.ToLower(table),
		Columns:   lowerAll(cols),
		Data:      mc,
		BuildCost: cost,
		BuildTime: elapsed,
		CreatedAt: m.clock,
		UpdatedAt: m.clock,
	}, nil
}

func lowerAll(cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = strings.ToLower(c)
	}
	return out
}

// Drop physically removes a statistic and records the drop time for aging.
func (m *Manager) Drop(id ID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropLocked(id)
}

func (m *Manager) dropLocked(id ID) bool {
	if _, ok := m.stats[id]; !ok {
		return false
	}
	delete(m.stats, id)
	m.clock++
	m.droppedAt[id] = m.clock
	m.met.drops.Inc()
	m.bumpEpochLocked()
	return true
}

// AddToDropList marks a statistic non-essential. Returns false if unknown.
func (m *Manager) AddToDropList(id ID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats[id]
	if s == nil {
		return false
	}
	if !s.InDropList {
		s.InDropList = true
		m.met.droplistAdds.Inc()
		m.bumpEpochLocked()
	}
	return true
}

// RemoveFromDropList resurrects a drop-listed statistic.
func (m *Manager) RemoveFromDropList(id ID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats[id]
	if s == nil {
		return false
	}
	if s.InDropList {
		s.InDropList = false
		m.met.droplistRems.Inc()
		m.bumpEpochLocked()
	}
	return true
}

// PurgeDropList physically drops every drop-listed statistic and returns
// how many were dropped (a policy action, §6).
func (m *Manager) PurgeDropList() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, s := range m.allLocked() {
		if s.InDropList && m.dropLocked(s.ID) {
			n++
		}
	}
	return n
}

// RecentlyDropped reports whether the statistic was physically dropped
// within the aging window, in which case re-creation should be dampened for
// inexpensive queries (§6).
func (m *Manager) RecentlyDropped(id ID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.AgingWindow <= 0 {
		return false
	}
	at, ok := m.droppedAt[id]
	return ok && m.clock-at < m.AgingWindow
}

// Refresh rebuilds an existing statistic from current data, charging its
// update cost (and only its update cost — creation accounting is untouched).
// Drop-listed statistics are skipped (they are not maintained). The map
// entry is replaced with a fresh Statistic; previously handed-out pointers
// keep their pre-refresh snapshot.
func (m *Manager) Refresh(id ID) error {
	return m.RefreshCtx(context.Background(), id)
}

// RefreshCtx is Refresh honoring cancellation and deadlines; see EnsureCtx
// for the abandonment guarantees.
func (m *Manager) RefreshCtx(ctx context.Context, id ID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := m.refreshLocked(ctx, id)
	return err
}

// refreshLocked rebuilds one statistic and returns the update cost this call
// charged (0 when the statistic is drop-listed and skipped). Callers must
// hold mu. Returning the cost lets maintenance passes attribute exactly their
// own work instead of diffing the global counters, which would fold in
// concurrent refreshes.
func (m *Manager) refreshLocked(ctx context.Context, id ID) (float64, error) {
	s := m.stats[id]
	if s == nil {
		return 0, fmt.Errorf("stats: unknown statistic %s", id)
	}
	if s.InDropList {
		return 0, nil
	}
	if m.failpoint != nil {
		if err := m.failpoint(ctx, "refresh", id); err != nil {
			return 0, fmt.Errorf("stats: refresh %s vetoed: %w", id, err)
		}
	}
	fresh, err := m.buildLocked(ctx, s.Table, s.Columns)
	if err != nil {
		return 0, fmt.Errorf("stats: refresh %s: %w", id, err)
	}
	fresh.CreatedAt = s.CreatedAt
	fresh.UpdatedAt = m.clock
	fresh.UpdateCount = s.UpdateCount + 1
	fresh.InDropList = s.InDropList
	m.stats[id] = fresh
	m.TotalUpdateCost += fresh.BuildCost
	m.UpdateOpCount++
	m.met.refreshes.Inc()
	m.met.updateUnits.Add(fresh.BuildCost)
	m.bumpEpochLocked()
	return fresh.BuildCost, nil
}

// refreshStatCost refreshes a single statistic and returns the update cost
// this call charged — the per-statistic sibling of refreshTableCost, used by
// the feedback-triggered maintenance path. The table's modification counter
// is left untouched: other statistics on the table remain governed by it.
func (m *Manager) refreshStatCost(ctx context.Context, id ID) (float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.refreshLocked(ctx, id)
}

// RefreshTable refreshes every maintained statistic on the table and resets
// its modification counter. Returns the number refreshed.
func (m *Manager) RefreshTable(table string) (int, error) {
	n, _, err := m.refreshTableCost(context.Background(), table)
	return n, err
}

// refreshTableCost is RefreshTable plus the update cost charged by this call
// alone, so a maintenance pass can report its own cost even while other
// goroutines refresh concurrently. Cancellation is checked between the
// per-statistic rebuilds.
func (m *Manager) refreshTableCost(ctx context.Context, table string) (int, float64, error) {
	table = strings.ToLower(table)
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	var cost float64
	for _, s := range m.allLocked() {
		if s.Table != table || s.InDropList {
			continue
		}
		c, err := m.refreshLocked(ctx, s.ID)
		if err != nil {
			return n, cost, err
		}
		cost += c
		n++
	}
	if td, err := m.db.Table(table); err == nil {
		td.ResetModCounter()
	}
	return n, cost, nil
}

// MaintenanceCostUnits returns the work units one full refresh cycle of all
// maintained statistics would charge — the "cost of updating the set of
// statistics left behind" metric of Table 1.
func (m *Manager) MaintenanceCostUnits() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var c float64
	for _, s := range m.allLocked() {
		if s.InDropList {
			continue
		}
		td, err := m.db.Table(s.Table)
		if err != nil {
			continue
		}
		c += histogram.BuildCostUnits(int64(td.RowCount()), len(s.Columns))
	}
	return c
}

// StatsOnTable returns all existing statistics on a table.
func (m *Manager) StatsOnTable(table string) []*Statistic {
	table = strings.ToLower(table)
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Statistic
	for _, s := range m.allLocked() {
		if s.Table == table {
			out = append(out, s)
		}
	}
	return out
}

// StatsForColumn returns all statistics whose leading (histogram-bearing)
// column is table.column — the statistics usable to estimate a predicate on
// that column. Single-column statistics sort first so the estimator prefers
// the most precise structure.
func (m *Manager) StatsForColumn(table, column string) []*Statistic {
	table, column = strings.ToLower(table), strings.ToLower(column)
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Statistic
	for _, s := range m.allLocked() {
		if s.Table == table && s.LeadingColumn() == column {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Columns) != len(out[j].Columns) {
			return len(out[i].Columns) < len(out[j].Columns)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Accounting is a consistent snapshot of the cumulative cost counters.
type Accounting struct {
	TotalBuildCost  float64
	TotalBuildTime  time.Duration
	TotalUpdateCost float64
	BuildCount      int
	UpdateOpCount   int
}

// Snapshot returns the accounting counters under the manager lock, safe to
// call while other goroutines mutate statistics.
func (m *Manager) Snapshot() Accounting {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return Accounting{
		TotalBuildCost:  m.TotalBuildCost,
		TotalBuildTime:  m.TotalBuildTime,
		TotalUpdateCost: m.TotalUpdateCost,
		BuildCount:      m.BuildCount,
		UpdateOpCount:   m.UpdateOpCount,
	}
}

// ResetAccounting zeroes the cumulative cost counters (between experiment
// phases).
func (m *Manager) ResetAccounting() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.TotalBuildCost = 0
	m.TotalBuildTime = 0
	m.TotalUpdateCost = 0
	m.BuildCount = 0
	m.UpdateOpCount = 0
}

// DropAll removes every statistic without recording aging drops (used to
// reset experiments).
func (m *Manager) DropAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = make(map[ID]*Statistic)
	m.droppedAt = make(map[ID]int64)
	m.bumpEpochLocked()
}
