package stats

import (
	"sync"
	"testing"

	"autostats/internal/histogram"
)

// TestManagerConcurrentMutation hammers the manager from many goroutines —
// creates, drops, refreshes, drop-list flips and reads — and relies on the
// race detector to catch unsynchronized access. Run with go test -race.
func TestManagerConcurrentMutation(t *testing.T) {
	m := NewManager(testDB(t), histogram.MaxDiff, 0)
	cols := [][]string{{"a"}, {"b"}, {"a", "b"}, {"b", "a"}}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := cols[(w+i)%len(cols)]
				id := MakeID("t", c)
				switch (w + i) % 5 {
				case 0:
					if _, err := m.Create("t", c); err != nil {
						t.Errorf("create: %v", err)
						return
					}
				case 1:
					m.Drop(id)
				case 2:
					// Refresh errors when another goroutine dropped the
					// statistic first; only unexpected errors matter.
					if m.Has(id) {
						_ = m.Refresh(id)
					}
				case 3:
					m.AddToDropList(id)
					m.RemoveFromDropList(id)
				default:
					for _, st := range m.StatsForColumn("t", c[0]) {
						_ = st.Data.Leading.Distinct // read published data
					}
					_ = m.Epoch()
					_ = m.Snapshot()
					m.Maintained()
				}
			}
		}(w)
	}
	wg.Wait()

	// The manager must still be coherent: every surviving statistic readable.
	for _, st := range m.All() {
		if st.Data == nil || st.Data.Leading == nil {
			t.Errorf("statistic %s has nil data after concurrent churn", st.ID)
		}
	}
}

// TestEpochMonotoneUnderConcurrency: the epoch never decreases, and ends
// having advanced at least once per successful mutation batch.
func TestEpochMonotoneUnderConcurrency(t *testing.T) {
	m := NewManager(testDB(t), histogram.MaxDiff, 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := m.Epoch()
		for {
			select {
			case <-stop:
				return
			default:
			}
			e := m.Epoch()
			if e < last {
				t.Error("epoch went backwards")
				return
			}
			last = e
		}
	}()
	for i := 0; i < 20; i++ {
		if _, err := m.Create("t", []string{"a"}); err != nil {
			t.Fatal(err)
		}
		m.Drop(MakeID("t", []string{"a"}))
	}
	close(stop)
	wg.Wait()
	if m.Epoch() < 40 {
		t.Errorf("epoch %d after 40 mutations", m.Epoch())
	}
}
