package stats

import (
	"bytes"
	"strings"
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/histogram"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := testDB(t)
	m := NewManager(db, histogram.MaxDiff, 0)
	a, err := m.Create("t", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	ab, err := m.Create("t", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	m.AddToDropList(ab.ID)
	a.UpdateCount = 3

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}

	m2 := NewManager(db, histogram.MaxDiff, 0)
	if err := m2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if len(m2.All()) != 2 {
		t.Fatalf("loaded %d statistics", len(m2.All()))
	}
	la := m2.Get(a.ID)
	if la == nil || la.UpdateCount != 3 {
		t.Errorf("update count not preserved: %+v", la)
	}
	lab := m2.Get(ab.ID)
	if lab == nil || !lab.InDropList {
		t.Error("drop-list membership not preserved")
	}
	// Histogram content must survive: equality selectivity identical.
	v := catalog.NewInt(3)
	if got, want := la.Data.Leading.SelectivityEq(v), a.Data.Leading.SelectivityEq(v); got != want {
		t.Errorf("selectivity after reload %v, want %v", got, want)
	}
	if lab.Data.PrefixDensity(2) != ab.Data.PrefixDensity(2) {
		t.Error("prefix densities not preserved")
	}
	// Loading charges no build cost.
	if m2.TotalBuildCost != 0 || m2.BuildCount != 0 {
		t.Errorf("load charged build cost: %v / %d", m2.TotalBuildCost, m2.BuildCount)
	}
}

func TestLoadRejectsBadSnapshots(t *testing.T) {
	db := testDB(t)
	m := NewManager(db, histogram.MaxDiff, 0)
	for _, bad := range []string{
		"not json",
		`{"version": 99, "statistics": []}`,
		`{"version": 1, "statistics": [{"table": "nosuch", "columns": ["x"]}]}`,
		`{"version": 1, "statistics": [{"table": "t", "columns": []}]}`,
	} {
		if err := m.Load(strings.NewReader(bad)); err == nil {
			t.Errorf("expected error for snapshot %q", bad)
		}
	}
}
