package stats

import (
	"reflect"
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/histogram"
	"autostats/internal/obs"
	"autostats/internal/storage"
)

// TestParallelBuildMatchesSerial: the partition-parallel build path must
// produce exactly the statistic a single-pass build produces, at every
// parallelism, with and without sampling.
func TestParallelBuildMatchesSerial(t *testing.T) {
	for _, sampled := range []bool{false, true} {
		base := NewManager(testDB(t), histogram.EquiDepth, 8)
		if sampled {
			if err := base.SetSampling(SampleConfig{Fraction: 0.5, MinRows: 10, Seed: 7}); err != nil {
				t.Fatal(err)
			}
		}
		ref, err := base.Create("t", []string{"a", "b"})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, 7} {
			m := NewManager(testDB(t), histogram.EquiDepth, 8)
			if sampled {
				if err := m.SetSampling(SampleConfig{Fraction: 0.5, MinRows: 10, Seed: 7}); err != nil {
					t.Fatal(err)
				}
			}
			m.SetBuildParallelism(par)
			if got := m.BuildParallelism(); got != par {
				t.Fatalf("BuildParallelism = %d, want %d", got, par)
			}
			st, err := m.Create("t", []string{"a", "b"})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(st.Data, ref.Data) {
				t.Errorf("sampled=%v par=%d: parallel build differs from serial:\n got %+v\nwant %+v",
					sampled, par, st.Data, ref.Data)
			}
			if st.BuildCost != ref.BuildCost {
				t.Errorf("sampled=%v par=%d: cost %v != serial %v", sampled, par, st.BuildCost, ref.BuildCost)
			}
		}
	}
}

// TestParallelBuildMetrics: parallel builds are visible in the registry.
func TestParallelBuildMetrics(t *testing.T) {
	m := NewManager(testDB(t), histogram.EquiDepth, 0)
	reg := obs.New()
	m.SetObsRegistry(reg)
	m.SetBuildParallelism(4)
	if _, err := m.Create("t", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["stats.build.parallel_builds"]; got != 1 {
		t.Errorf("parallel_builds = %d, want 1", got)
	}
	if got := snap.Counters["stats.build.partials_merged"]; got != 4 {
		t.Errorf("partials_merged = %d, want 4", got)
	}
	if got := snap.Counters["stats.build.full_scans"]; got != 1 {
		t.Errorf("full_scans = %d, want 1", got)
	}
	if got := snap.Gauges["stats.shards"]; got != numShards {
		t.Errorf("stats.shards = %d, want %d", got, numShards)
	}
}

// TestFoldRefreshAvoidsRescan is the incremental-maintenance acceptance
// check: after a small batch of DML, a refresh folds the logged deltas into
// the histogram without rescanning the table, charges the (much cheaper)
// fold cost, and keeps row totals exact.
func TestFoldRefreshAvoidsRescan(t *testing.T) {
	db := testDB(t)
	m := NewManager(db, histogram.EquiDepth, 0)
	reg := obs.New()
	m.SetObsRegistry(reg)
	if err := m.SetIncrementalMaintenance(FoldConfig{Enabled: true}); err != nil {
		t.Fatal(err)
	}
	st, err := m.Create("t", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	td := mustTable(t, db, "t")
	for i := 0; i < 5; i++ {
		if err := td.Insert(storage.Row{catalog.NewInt(3), catalog.NewInt(1)}); err != nil {
			t.Fatal(err)
		}
	}
	scansBefore := reg.Snapshot().Counters["stats.build.full_scans"]
	acctBefore := m.Snapshot()
	if err := m.Refresh(st.ID); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["stats.build.full_scans"]; got != scansBefore {
		t.Errorf("fold-eligible refresh rescanned the table: full_scans %d -> %d", scansBefore, got)
	}
	if got := snap.Counters["stats.fold.applied"]; got != 1 {
		t.Errorf("fold.applied = %d, want 1", got)
	}
	if got := snap.Counters["stats.fold.rows"]; got != 5 {
		t.Errorf("fold.rows = %d, want 5", got)
	}
	fresh := m.Get(st.ID)
	if fresh == st {
		t.Fatal("refresh did not replace the published snapshot")
	}
	if fresh.Data.Rows != int64(td.RowCount()) {
		t.Errorf("folded rows = %d, table has %d", fresh.Data.Rows, td.RowCount())
	}
	if fresh.FoldedRows != 5 {
		t.Errorf("FoldedRows = %d, want 5", fresh.FoldedRows)
	}
	if fresh.UpdateCount != st.UpdateCount+1 {
		t.Errorf("UpdateCount = %d, want %d", fresh.UpdateCount, st.UpdateCount+1)
	}
	// The original snapshot must be untouched (immutability contract).
	if st.Data.Rows != 100 || st.FoldedRows != 0 {
		t.Errorf("pre-refresh snapshot mutated: rows=%d folded=%d", st.Data.Rows, st.FoldedRows)
	}
	// The fold charged FoldCostUnits, far below a rebuild's BuildCostUnits.
	acct := m.Snapshot()
	foldCost := acct.TotalUpdateCost - acctBefore.TotalUpdateCost
	if want := histogram.FoldCostUnits(5); foldCost != want {
		t.Errorf("fold charged %v units, want %v", foldCost, want)
	}
	if acct.UpdateOpCount != acctBefore.UpdateOpCount+1 {
		t.Errorf("UpdateOpCount = %d, want %d", acct.UpdateOpCount, acctBefore.UpdateOpCount+1)
	}
}

// TestFoldThresholdForcesRebuild: once accumulated deltas exceed
// MaxFoldFraction of the table, the refresh falls back to a full rebuild
// and resets the fold error.
func TestFoldThresholdForcesRebuild(t *testing.T) {
	db := testDB(t)
	m := NewManager(db, histogram.EquiDepth, 0)
	reg := obs.New()
	m.SetObsRegistry(reg)
	if err := m.SetIncrementalMaintenance(FoldConfig{Enabled: true, MaxFoldFraction: 0.05}); err != nil {
		t.Fatal(err)
	}
	st, err := m.Create("t", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	td := mustTable(t, db, "t")
	for i := 0; i < 20; i++ { // 20 deltas > 5% of ~120 rows
		if err := td.Insert(storage.Row{catalog.NewInt(1), catalog.NewInt(1)}); err != nil {
			t.Fatal(err)
		}
	}
	scansBefore := reg.Snapshot().Counters["stats.build.full_scans"]
	if err := m.Refresh(st.ID); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["stats.build.full_scans"]; got != scansBefore+1 {
		t.Errorf("over-threshold refresh did not rescan: full_scans %d -> %d", scansBefore, got)
	}
	if got := snap.Counters["stats.fold.rebuilds"]; got != 1 {
		t.Errorf("fold.rebuilds = %d, want 1", got)
	}
	fresh := m.Get(st.ID)
	if fresh.FoldedRows != 0 {
		t.Errorf("rebuild left FoldedRows = %d", fresh.FoldedRows)
	}
	if fresh.Data.Rows != int64(td.RowCount()) {
		t.Errorf("rebuilt rows = %d, table has %d", fresh.Data.Rows, td.RowCount())
	}
	// The rebuild re-stamped the watermark: the next small batch folds.
	if err := td.Insert(storage.Row{catalog.NewInt(2), catalog.NewInt(2)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh(st.ID); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["stats.fold.applied"]; got != 1 {
		t.Errorf("post-rebuild refresh did not fold: fold.applied = %d", got)
	}
}

// TestFoldDisabledByDefault: without SetIncrementalMaintenance every
// refresh is a full rebuild and tables carry no delta log.
func TestFoldDisabledByDefault(t *testing.T) {
	db := testDB(t)
	m := NewManager(db, histogram.EquiDepth, 0)
	if mustTable(t, db, "t").DeltaLogEnabled() {
		t.Fatal("delta log enabled without opting in")
	}
	reg := obs.New()
	m.SetObsRegistry(reg)
	st, err := m.Create("t", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh(st.ID); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["stats.build.full_scans"]; got != 2 {
		t.Errorf("full_scans = %d, want 2 (create + refresh)", got)
	}
	if got := snap.Counters["stats.fold.applied"]; got != 0 {
		t.Errorf("fold.applied = %d with folding disabled", got)
	}
}

// TestShardedEpochAndCount: mutations across many tables keep the epoch
// strictly increasing and the count gauge exact, even though they land on
// different shards.
func TestShardedEpochAndCount(t *testing.T) {
	schema := catalog.NewSchema()
	tables := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	for _, name := range tables {
		if err := schema.AddTable(catalog.NewTable(name,
			catalog.Column{Name: "a", Type: catalog.Int},
		)); err != nil {
			t.Fatal(err)
		}
	}
	db, err := storage.NewDatabase("db", schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range tables {
		td := mustTable(t, db, name)
		for i := 0; i < 10; i++ {
			if err := td.Insert(storage.Row{catalog.NewInt(int64(i))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	m := NewManager(db, histogram.EquiDepth, 0)
	reg := obs.New()
	m.SetObsRegistry(reg)
	last := m.Epoch()
	for _, name := range tables {
		if _, err := m.Create(name, []string{"a"}); err != nil {
			t.Fatal(err)
		}
		if e := m.Epoch(); e <= last {
			t.Fatalf("epoch did not advance on create of %s: %d -> %d", name, last, e)
		} else {
			last = e
		}
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["stats.count"]; got != int64(len(tables)) {
		t.Errorf("stats.count = %d, want %d", got, len(tables))
	}
	if got := snap.Gauges["stats.epoch"]; got != int64(m.Epoch()) {
		t.Errorf("stats.epoch gauge = %d, manager epoch %d", got, m.Epoch())
	}
	if got := len(m.All()); got != len(tables) {
		t.Errorf("All() = %d stats, want %d", got, len(tables))
	}
	// Cross-shard wholesale reset.
	m.DropAll()
	if got := reg.Snapshot().Gauges["stats.count"]; got != 0 {
		t.Errorf("stats.count after DropAll = %d", got)
	}
	if e := m.Epoch(); e <= last {
		t.Errorf("DropAll did not bump epoch: %d -> %d", last, e)
	}
}
