package stats

import (
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/histogram"
	"autostats/internal/storage"
)

// fakeFeedback is a canned FeedbackProvider for policy tests; the real
// implementation lives in internal/feedback and is covered there.
type fakeFeedback struct{ sums []QErrorSummary }

func (f *fakeFeedback) QErrorSummaries() []QErrorSummary { return f.sums }

// dirtyRows inserts n rows into the table without resetting its mod counter.
func dirtyRows(t *testing.T, db *storage.Database, table string, n int) {
	t.Helper()
	td := mustTable(t, db, table)
	for i := 0; i < n; i++ {
		if err := td.Insert(storage.Row{catalog.NewInt(int64(i % 7))}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFeedbackTriggeredRefresh is the policy half of the PR's loop-closing
// demo: the table's mod counter is far below UpdateFraction, so the counter
// path stays silent, yet a large observed q-error forces the refresh anyway.
func TestFeedbackTriggeredRefresh(t *testing.T) {
	db := maintDB(t)
	m := NewManager(db, histogram.MaxDiff, 0)
	if _, err := m.Create("hot", []string{"v"}); err != nil {
		t.Fatal(err)
	}
	// 5 modified rows out of 105 — well under the 0.2 fraction.
	dirtyRows(t, db, "hot", 5)
	m.SetFeedbackProvider(&fakeFeedback{sums: []QErrorSummary{
		{Table: "hot", Column: "v", Count: 3, MaxQ: 9, MeanQ: 4},
	}})
	epoch0 := m.Epoch()

	rep, err := m.RunMaintenance(DefaultFeedbackPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TablesRefreshed != 0 || rep.StatsRefreshed != 0 {
		t.Fatalf("counter path fired: %+v", rep)
	}
	if rep.StatsFeedbackRefreshed != 1 {
		t.Fatalf("StatsFeedbackRefreshed = %d, want 1 (report %+v)", rep.StatsFeedbackRefreshed, rep)
	}
	if rep.UpdateCostUnits <= 0 {
		t.Errorf("feedback refresh charged no cost: %+v", rep)
	}
	if m.Epoch() == epoch0 {
		t.Error("feedback refresh did not bump the stats epoch")
	}
	// The single-stat path must leave the table's mod counter alone: the
	// remaining modifications still count toward the next counter-path pass.
	if mc := mustTable(t, db, "hot").ModCounter(); mc != 5 {
		t.Errorf("ModCounter = %d after feedback refresh, want 5", mc)
	}
}

// TestFeedbackRefreshRequiresThreshold: a zero QErrorThreshold disables the
// path entirely, even with a provider attached reporting huge errors.
func TestFeedbackRefreshRequiresThreshold(t *testing.T) {
	db := maintDB(t)
	m := NewManager(db, histogram.MaxDiff, 0)
	if _, err := m.Create("hot", []string{"v"}); err != nil {
		t.Fatal(err)
	}
	m.SetFeedbackProvider(&fakeFeedback{sums: []QErrorSummary{
		{Table: "hot", Column: "v", Count: 100, MaxQ: 1000, MeanQ: 500},
	}})
	rep, err := m.RunMaintenance(DefaultMaintenancePolicy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.StatsFeedbackRefreshed != 0 || rep.StatsDropConfirmed != 0 {
		t.Fatalf("feedback path fired with zero threshold: %+v", rep)
	}
}

// TestFeedbackMinObservationsGate: one noisy observation is not evidence.
func TestFeedbackMinObservationsGate(t *testing.T) {
	db := maintDB(t)
	m := NewManager(db, histogram.MaxDiff, 0)
	if _, err := m.Create("hot", []string{"v"}); err != nil {
		t.Fatal(err)
	}
	m.SetFeedbackProvider(&fakeFeedback{sums: []QErrorSummary{
		{Table: "hot", Column: "v", Count: 1, MaxQ: 50, MeanQ: 50},
	}})
	p := DefaultFeedbackPolicy()
	p.FeedbackMinObservations = 2
	rep, err := m.RunMaintenance(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StatsFeedbackRefreshed != 0 {
		t.Fatalf("refresh fired on a single observation: %+v", rep)
	}
}

// TestFeedbackSkipsCounterRefreshedTables: when the mod counter already
// refreshed a table this pass, stale pre-refresh q-errors must not trigger a
// redundant second refresh of the same statistics.
func TestFeedbackSkipsCounterRefreshedTables(t *testing.T) {
	db := maintDB(t)
	m := NewManager(db, histogram.MaxDiff, 0)
	if _, err := m.Create("hot", []string{"v"}); err != nil {
		t.Fatal(err)
	}
	dirtyRows(t, db, "hot", 50) // past the 0.2 fraction
	m.SetFeedbackProvider(&fakeFeedback{sums: []QErrorSummary{
		{Table: "hot", Column: "v", Count: 10, MaxQ: 20, MeanQ: 8},
	}})
	rep, err := m.RunMaintenance(DefaultFeedbackPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TablesRefreshed != 1 || rep.StatsRefreshed != 1 {
		t.Fatalf("counter path: %+v, want 1 table / 1 stat", rep)
	}
	if rep.StatsFeedbackRefreshed != 0 {
		t.Fatalf("feedback path double-refreshed a fresh table: %+v", rep)
	}
}

// TestFeedbackDropConfirmation: accurate estimates confirm a drop-listed
// statistic for physical drop; maintained statistics with the same accuracy
// evidence are untouched.
func TestFeedbackDropConfirmation(t *testing.T) {
	db := maintDB(t)
	m := NewManager(db, histogram.MaxDiff, 0)
	hot, err := m.Create("hot", []string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("cold", []string{"v"}); err != nil {
		t.Fatal(err)
	}
	if !m.AddToDropList(hot.ID) {
		t.Fatal("AddToDropList failed")
	}
	m.SetFeedbackProvider(&fakeFeedback{sums: []QErrorSummary{
		{Table: "hot", Column: "v", Count: 8, MaxQ: 1.1, MeanQ: 1.05},
		{Table: "cold", Column: "v", Count: 8, MaxQ: 1.2, MeanQ: 1.1},
	}})
	rep, err := m.RunMaintenance(DefaultFeedbackPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.StatsDropConfirmed != 1 {
		t.Fatalf("StatsDropConfirmed = %d, want 1 (report %+v)", rep.StatsDropConfirmed, rep)
	}
	if m.Get(hot.ID) != nil {
		t.Error("confirmed drop-listed stat still present")
	}
	if len(m.Maintained()) != 1 {
		t.Errorf("maintained stats = %d, want the cold stat alone", len(m.Maintained()))
	}

	// Inaccurate drop-listed stats are NOT confirmed — they go back through
	// the feedback-refresh consideration instead (and stay listed).
	cold2, err := m.Create("hot", []string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	m.AddToDropList(cold2.ID)
	m.SetFeedbackProvider(&fakeFeedback{sums: []QErrorSummary{
		{Table: "hot", Column: "v", Count: 8, MaxQ: 30, MeanQ: 12},
	}})
	rep, err = m.RunMaintenance(DefaultFeedbackPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.StatsDropConfirmed != 0 {
		t.Fatalf("inaccurate drop-listed stat confirmed: %+v", rep)
	}
	if m.Get(cold2.ID) == nil {
		t.Error("inaccurate drop-listed stat was dropped")
	}
}
