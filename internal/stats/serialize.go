package stats

import (
	"encoding/json"
	"fmt"
	"io"

	"autostats/internal/catalog"
	"autostats/internal/histogram"
)

// Snapshot (de)serialization: a statistics set can be exported to JSON and
// re-imported into a manager over the same schema, so a tuning run's output
// can be shipped, inspected, or restored without rebuilding from data.

type datumJSON struct {
	T    int     `json:"t"`
	I    int64   `json:"i,omitempty"`
	F    float64 `json:"f,omitempty"`
	S    string  `json:"s,omitempty"`
	Null bool    `json:"null,omitempty"`
}

func toDatumJSON(d catalog.Datum) datumJSON {
	return datumJSON{T: int(d.T), I: d.I, F: d.F, S: d.S, Null: d.Null}
}

func (d datumJSON) datum() catalog.Datum {
	return catalog.Datum{T: catalog.Type(d.T), I: d.I, F: d.F, S: d.S, Null: d.Null}
}

type bucketJSON struct {
	Lo       datumJSON `json:"lo"`
	Hi       datumJSON `json:"hi"`
	Rows     int64     `json:"rows"`
	Distinct int64     `json:"distinct"`
}

type histogramJSON struct {
	Kind     int          `json:"kind"`
	Buckets  []bucketJSON `json:"buckets"`
	Rows     int64        `json:"rows"`
	NullRows int64        `json:"nullRows"`
	Distinct int64        `json:"distinct"`
}

type statisticJSON struct {
	Table          string        `json:"table"`
	Columns        []string      `json:"columns"`
	Leading        histogramJSON `json:"leading"`
	Densities      []float64     `json:"densities"`
	PrefixDistinct []int64       `json:"prefixDistinct"`
	Rows           int64         `json:"rows"`
	BuildCost      float64       `json:"buildCost"`
	UpdateCount    int           `json:"updateCount"`
	InDropList     bool          `json:"inDropList,omitempty"`
}

type snapshotJSON struct {
	Version    int             `json:"version"`
	Database   string          `json:"database"`
	Statistics []statisticJSON `json:"statistics"`
}

// Save writes all statistics (including drop-listed ones) as JSON.
func (m *Manager) Save(w io.Writer) error {
	snap := snapshotJSON{Version: 1, Database: m.db.Name}
	for _, s := range m.All() {
		h := s.Data.Leading
		hj := histogramJSON{
			Kind: int(h.Kind), Rows: h.Rows, NullRows: h.NullRows, Distinct: h.Distinct,
		}
		for _, b := range h.Buckets {
			hj.Buckets = append(hj.Buckets, bucketJSON{
				Lo: toDatumJSON(b.Lo), Hi: toDatumJSON(b.Hi), Rows: b.Rows, Distinct: b.Distinct,
			})
		}
		snap.Statistics = append(snap.Statistics, statisticJSON{
			Table:          s.Table,
			Columns:        s.Columns,
			Leading:        hj,
			Densities:      s.Data.Densities,
			PrefixDistinct: s.Data.PrefixDistinct,
			Rows:           s.Data.Rows,
			BuildCost:      s.BuildCost,
			UpdateCount:    s.UpdateCount,
			InDropList:     s.InDropList,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load replaces the manager's statistics with a previously saved snapshot.
// No data is scanned and no build cost is charged: the histograms come from
// the snapshot verbatim.
func (m *Manager) Load(r io.Reader) error {
	var snap snapshotJSON
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("stats: decoding snapshot: %w", err)
	}
	if snap.Version != 1 {
		return fmt.Errorf("stats: unsupported snapshot version %d", snap.Version)
	}
	// Validate and construct outside the locks; nothing is published when
	// the snapshot is malformed.
	loaded := make(map[ID]*Statistic, len(snap.Statistics))
	for _, sj := range snap.Statistics {
		if len(sj.Columns) == 0 {
			return fmt.Errorf("stats: snapshot statistic on %s has no columns", sj.Table)
		}
		if _, err := m.db.Table(sj.Table); err != nil {
			return fmt.Errorf("stats: snapshot references unknown table %s", sj.Table)
		}
		h := &histogram.Histogram{
			Kind:     histogram.Kind(sj.Leading.Kind),
			Rows:     sj.Leading.Rows,
			NullRows: sj.Leading.NullRows,
			Distinct: sj.Leading.Distinct,
		}
		for _, bj := range sj.Leading.Buckets {
			h.Buckets = append(h.Buckets, histogram.Bucket{
				Lo: bj.Lo.datum(), Hi: bj.Hi.datum(), Rows: bj.Rows, Distinct: bj.Distinct,
			})
		}
		id := MakeID(sj.Table, sj.Columns)
		loaded[id] = &Statistic{
			ID:      id,
			Table:   sj.Table,
			Columns: sj.Columns,
			Data: &histogram.MultiColumn{
				Columns:        sj.Columns,
				Leading:        h,
				Densities:      sj.Densities,
				PrefixDistinct: sj.PrefixDistinct,
				Rows:           sj.Rows,
			},
			BuildCost:   sj.BuildCost,
			UpdateCount: sj.UpdateCount,
			InDropList:  sj.InDropList,
		}
	}
	met := m.metrics()
	m.lockAll()
	defer m.unlockAll()
	var old int64
	for i := range m.shards {
		old += int64(len(m.shards[i].stats))
		m.shards[i].stats = make(map[ID]*Statistic)
	}
	for id, s := range loaded {
		now := m.clock.Add(1)
		s.CreatedAt, s.UpdatedAt = now, now
		m.shardFor(id.Table()).stats[id] = s
	}
	met.statCount.Add(int64(len(loaded)) - old)
	m.bumpEpoch(met)
	return nil
}
