package stats

import (
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/histogram"
	"autostats/internal/storage"
)

func testDB(t *testing.T) *storage.Database {
	t.Helper()
	schema := catalog.NewSchema()
	if err := schema.AddTable(catalog.NewTable("t",
		catalog.Column{Name: "a", Type: catalog.Int},
		catalog.Column{Name: "b", Type: catalog.Int},
	)); err != nil {
		t.Fatal(err)
	}
	db, err := storage.NewDatabase("db", schema)
	if err != nil {
		t.Fatal(err)
	}
	td := mustTable(t, db, "t")
	for i := 0; i < 100; i++ {
		if err := td.Insert(storage.Row{catalog.NewInt(int64(i % 10)), catalog.NewInt(int64(i % 4))}); err != nil {
			t.Fatal(err)
		}
	}
	td.ResetModCounter()
	return db
}

func TestMakeID(t *testing.T) {
	if got := MakeID("Orders", []string{"O_Custkey", "o_orderdate"}); got != "orders(o_custkey,o_orderdate)" {
		t.Errorf("MakeID = %q", got)
	}
	// Order matters: multi-column statistics are asymmetric.
	if MakeID("t", []string{"a", "b"}) == MakeID("t", []string{"b", "a"}) {
		t.Error("column order must be part of the ID")
	}
}

func TestCreateGetDrop(t *testing.T) {
	m := NewManager(testDB(t), histogram.MaxDiff, 0)
	st, err := m.Create("t", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Data.Leading.Distinct != 10 {
		t.Errorf("distinct = %d", st.Data.Leading.Distinct)
	}
	if !m.Has(st.ID) || m.Get(st.ID) != st {
		t.Error("lookup after create failed")
	}
	if m.BuildCount != 1 || m.TotalBuildCost <= 0 {
		t.Errorf("accounting: count=%d cost=%v", m.BuildCount, m.TotalBuildCost)
	}
	// Idempotent create returns existing without a rebuild.
	again, err := m.Create("t", []string{"a"})
	if err != nil || again != st {
		t.Errorf("re-create returned %v, %v", again, err)
	}
	if m.BuildCount != 1 {
		t.Errorf("re-create rebuilt: count=%d", m.BuildCount)
	}
	if !m.Drop(st.ID) {
		t.Error("drop failed")
	}
	if m.Has(st.ID) || m.Drop(st.ID) {
		t.Error("statistic survived drop")
	}
}

func TestDropListLifecycle(t *testing.T) {
	m := NewManager(testDB(t), histogram.MaxDiff, 0)
	st, _ := m.Create("t", []string{"a"})
	if !m.AddToDropList(st.ID) {
		t.Fatal("AddToDropList failed")
	}
	if len(m.Maintained()) != 0 || len(m.DropList()) != 1 {
		t.Error("drop-list membership wrong")
	}
	// §5: a drop-listed statistic is resurrected by Create without rebuild.
	buildCount := m.BuildCount
	re, err := m.Create("t", []string{"a"})
	if err != nil || re.InDropList {
		t.Errorf("resurrect: %v, inDropList=%v", err, re.InDropList)
	}
	if m.BuildCount != buildCount {
		t.Error("resurrection must not rebuild")
	}
	// Purge physically drops drop-listed statistics only.
	m.AddToDropList(st.ID)
	if n := m.PurgeDropList(); n != 1 {
		t.Errorf("PurgeDropList = %d", n)
	}
	if m.Has(st.ID) {
		t.Error("purged statistic still exists")
	}
	if m.AddToDropList(ID("t(zzz)")) {
		t.Error("AddToDropList on unknown should fail")
	}
}

func TestAging(t *testing.T) {
	m := NewManager(testDB(t), histogram.MaxDiff, 0)
	m.AgingWindow = 10
	st, _ := m.Create("t", []string{"a"})
	m.Drop(st.ID)
	if !m.RecentlyDropped(st.ID) {
		t.Error("freshly dropped statistic should be aged")
	}
	for i := 0; i < 11; i++ {
		m.Tick()
	}
	if m.RecentlyDropped(st.ID) {
		t.Error("aging window should have expired")
	}
	m.AgingWindow = 0
	m.Drop(st.ID)
	if m.RecentlyDropped(st.ID) {
		t.Error("aging disabled should never report recently dropped")
	}
}

func TestRefreshAccountingAndDropListSkip(t *testing.T) {
	m := NewManager(testDB(t), histogram.MaxDiff, 0)
	a, _ := m.Create("t", []string{"a"})
	b, _ := m.Create("t", []string{"b"})
	m.AddToDropList(b.ID)
	m.ResetAccounting()
	n, err := m.RefreshTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("refreshed %d stats, want 1 (drop-listed skipped)", n)
	}
	// Refresh replaces the published Statistic; re-fetch for fresh state.
	if got := m.Get(a.ID).UpdateCount; got != 1 {
		t.Errorf("a.UpdateCount = %d, want 1", got)
	}
	if got := m.Get(b.ID).UpdateCount; got != 0 {
		t.Errorf("b.UpdateCount = %d, want 0", got)
	}
	if m.TotalUpdateCost <= 0 {
		t.Error("update cost not charged")
	}
	if err := m.Refresh(ID("t(zzz)")); err == nil {
		t.Error("refresh of unknown statistic should error")
	}
}

// TestRefreshChargesOnlyUpdateAccounting is the regression test for the
// double-counting bug: Refresh used to delegate to the build path, bumping
// TotalBuildCost/TotalBuildTime/BuildCount AND the update-side counters,
// inflating the Table-1 creation metrics on every maintenance cycle.
func TestRefreshChargesOnlyUpdateAccounting(t *testing.T) {
	m := NewManager(testDB(t), histogram.MaxDiff, 0)
	st, err := m.Create("t", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Snapshot()
	if before.BuildCount != 1 || before.TotalBuildCost <= 0 {
		t.Fatalf("setup accounting: %+v", before)
	}
	if err := m.Refresh(st.ID); err != nil {
		t.Fatal(err)
	}
	after := m.Snapshot()
	if after.BuildCount != before.BuildCount {
		t.Errorf("Refresh changed BuildCount: %d -> %d", before.BuildCount, after.BuildCount)
	}
	if after.TotalBuildCost != before.TotalBuildCost {
		t.Errorf("Refresh changed TotalBuildCost: %v -> %v", before.TotalBuildCost, after.TotalBuildCost)
	}
	if after.TotalBuildTime != before.TotalBuildTime {
		t.Errorf("Refresh changed TotalBuildTime: %v -> %v", before.TotalBuildTime, after.TotalBuildTime)
	}
	if after.UpdateOpCount != 1 || after.TotalUpdateCost <= 0 {
		t.Errorf("Refresh must charge the update side: %+v", after)
	}
}

// TestEpochBumpsOnMutations: every observable statistics mutation must
// advance the epoch, and read-only calls must not.
func TestEpochBumpsOnMutations(t *testing.T) {
	m := NewManager(testDB(t), histogram.MaxDiff, 0)
	e0 := m.Epoch()
	st, err := m.Create("t", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	e1 := m.Epoch()
	if e1 <= e0 {
		t.Errorf("Create did not bump epoch: %d -> %d", e0, e1)
	}
	// Idempotent create of an existing, maintained statistic: no change.
	if _, err := m.Create("t", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != e1 {
		t.Errorf("no-op Create bumped epoch: %d -> %d", e1, m.Epoch())
	}
	m.All()
	m.StatsForColumn("t", "a")
	if m.Epoch() != e1 {
		t.Error("read-only calls must not bump the epoch")
	}
	if !m.AddToDropList(st.ID) {
		t.Fatal("AddToDropList failed")
	}
	e2 := m.Epoch()
	if e2 <= e1 {
		t.Error("AddToDropList did not bump epoch")
	}
	// Resurrection via Create is a visibility change too.
	if _, err := m.Create("t", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	e3 := m.Epoch()
	if e3 <= e2 {
		t.Error("resurrecting Create did not bump epoch")
	}
	if err := m.Refresh(st.ID); err != nil {
		t.Fatal(err)
	}
	e4 := m.Epoch()
	if e4 <= e3 {
		t.Error("Refresh did not bump epoch")
	}
	if !m.Drop(st.ID) {
		t.Fatal("drop failed")
	}
	if m.Epoch() <= e4 {
		t.Error("Drop did not bump epoch")
	}
}

func TestStatsForColumnOrdering(t *testing.T) {
	m := NewManager(testDB(t), histogram.MaxDiff, 0)
	_, _ = m.Create("t", []string{"a", "b"})
	_, _ = m.Create("t", []string{"a"})
	got := m.StatsForColumn("T", "A")
	if len(got) != 2 {
		t.Fatalf("StatsForColumn found %d", len(got))
	}
	if !got[0].IsSingleColumn() {
		t.Error("single-column statistic must sort first (most precise)")
	}
	// Leading column must match: stat (a,b) does not serve column b.
	if n := len(m.StatsForColumn("t", "b")); n != 0 {
		t.Errorf("StatsForColumn(b) = %d, want 0", n)
	}
}

func TestMaintenancePolicy(t *testing.T) {
	db := testDB(t)
	m := NewManager(db, histogram.MaxDiff, 0)
	a, _ := m.Create("t", []string{"a"})
	p := MaintenancePolicy{UpdateFraction: 0.2, MaxUpdates: 1, DropListOnly: true}

	// Below threshold: nothing happens.
	rep, err := m.RunMaintenance(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TablesRefreshed != 0 {
		t.Errorf("unexpected refresh: %+v", rep)
	}

	// Cross the modification threshold.
	td := mustTable(t, db, "t")
	for i := 0; i < 40; i++ {
		_ = td.Insert(storage.Row{catalog.NewInt(1), catalog.NewInt(1)})
	}
	rep, err = m.RunMaintenance(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TablesRefreshed != 1 || rep.StatsRefreshed != 1 {
		t.Errorf("refresh pass: %+v", rep)
	}
	if td.ModCounter() != 0 {
		t.Error("mod counter should reset after refresh")
	}

	// Over-updated but NOT drop-listed: protected by DropListOnly.
	// Refresh replaced the published Statistic, so re-fetch the live one.
	a = m.Get(a.ID)
	a.UpdateCount = 5
	rep, _ = m.RunMaintenance(p)
	if rep.StatsDropped != 0 {
		t.Error("DropListOnly policy dropped a maintained statistic")
	}
	m.AddToDropList(a.ID)
	rep, _ = m.RunMaintenance(p)
	if rep.StatsDropped != 1 {
		t.Errorf("expected drop of over-updated drop-listed statistic: %+v", rep)
	}

	// Without DropListOnly (stock SQL Server 7.0), any over-updated
	// statistic is dropped.
	b, _ := m.Create("t", []string{"b"})
	b.UpdateCount = 5
	rep, _ = m.RunMaintenance(MaintenancePolicy{UpdateFraction: 0.2, MaxUpdates: 1})
	if rep.StatsDropped != 1 {
		t.Errorf("stock policy should drop over-updated statistic: %+v", rep)
	}
}

func TestMaintenanceCostUnits(t *testing.T) {
	m := NewManager(testDB(t), histogram.MaxDiff, 0)
	_, _ = m.Create("t", []string{"a"})
	c1 := m.MaintenanceCostUnits()
	if c1 <= 0 {
		t.Fatal("maintenance cost should be positive")
	}
	st2, _ := m.Create("t", []string{"a", "b"})
	c2 := m.MaintenanceCostUnits()
	if c2 <= c1 {
		t.Error("more maintained statistics must cost more")
	}
	m.AddToDropList(st2.ID)
	if got := m.MaintenanceCostUnits(); got != c1 {
		t.Errorf("drop-listed statistic still charged: %v vs %v", got, c1)
	}
}

func TestDropAllAndAll(t *testing.T) {
	m := NewManager(testDB(t), histogram.MaxDiff, 0)
	_, _ = m.Create("t", []string{"a"})
	_, _ = m.Create("t", []string{"b"})
	all := m.All()
	if len(all) != 2 || all[0].ID > all[1].ID {
		t.Errorf("All() not sorted: %v", all)
	}
	if got := len(m.StatsOnTable("t")); got != 2 {
		t.Errorf("StatsOnTable = %d", got)
	}
	m.DropAll()
	if len(m.All()) != 0 {
		t.Error("DropAll left statistics behind")
	}
}
