package stats

import (
	"fmt"
	"math/rand"

	"autostats/internal/catalog"
	"autostats/internal/histogram"
)

// Sampling-based statistics construction. The paper treats sampling ([3],
// [8], [9], [12] in its §2) as complementary to statistics SELECTION: even
// with cheap per-statistic construction, the space of candidate statistics
// is the bottleneck — and §2 notes that building all statistics of a table
// from a single sample introduces unwanted correlation. This implementation
// follows that guidance: each statistic gets its own independent sample,
// drawn with a deterministic per-statistic seed.

// SampleConfig controls sampled construction on a Manager.
type SampleConfig struct {
	// Fraction of rows to sample, in (0, 1]; 0 or 1 disables sampling.
	Fraction float64
	// MinRows floors the sample size so tiny tables stay exact.
	MinRows int
	// Seed makes sampling deterministic (combined with the statistic ID).
	Seed int64
}

// SetSampling enables sampled statistics construction for subsequent
// Create/Refresh calls. Estimated counts are scaled up to the table
// cardinality; distinct counts use the Goodman/"distinct-value scale-up"
// style correction capped by the table size.
func (m *Manager) SetSampling(cfg SampleConfig) error {
	if cfg.Fraction < 0 || cfg.Fraction > 1 {
		return fmt.Errorf("stats: sample fraction %v out of (0,1]", cfg.Fraction)
	}
	if cfg.MinRows <= 0 {
		cfg.MinRows = 100
	}
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	m.sampling = cfg
	return nil
}

// Sampling returns the active sampling configuration (Fraction 0 when
// disabled).
func (m *Manager) Sampling() SampleConfig {
	m.cfgMu.RLock()
	defer m.cfgMu.RUnlock()
	return m.sampling
}

// sampleTuples draws the per-statistic sample. The RNG seed mixes the
// manager seed with the statistic ID so every statistic has an independent
// sample (§2's correlation concern) that is stable across refreshes of the
// same statistic — and, because the sample is drawn over the full gathered
// row set before any partitioning, identical at any build parallelism.
func sampleTuples(cfg SampleConfig, id ID, tuples [][]catalog.Datum) [][]catalog.Datum {
	if cfg.Fraction <= 0 || cfg.Fraction >= 1 {
		return tuples
	}
	want := int(float64(len(tuples)) * cfg.Fraction)
	if want < cfg.MinRows {
		want = cfg.MinRows
	}
	if want >= len(tuples) {
		return tuples
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(hashID(id))))
	// Partial Fisher-Yates over a copy of the index space.
	idx := make([]int, len(tuples))
	for i := range idx {
		idx[i] = i
	}
	out := make([][]catalog.Datum, want)
	for i := 0; i < want; i++ {
		j := i + rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = tuples[idx[i]]
	}
	return out
}

func hashID(id ID) uint64 {
	// FNV-1a.
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// scaleSampled rescales a statistic built from a sample of size sampleN back
// to a population of popN rows: bucket row counts and totals scale linearly;
// distinct counts scale with a first-order estimator d/q capped by both the
// population size and the linear row scale-up.
func scaleSampled(mc *histogram.MultiColumn, sampleN, popN int) {
	if sampleN <= 0 || sampleN >= popN {
		return
	}
	f := float64(popN) / float64(sampleN)
	h := mc.Leading
	var rows int64
	for i := range h.Buckets {
		h.Buckets[i].Rows = int64(float64(h.Buckets[i].Rows)*f + 0.5)
		if h.Buckets[i].Rows < 1 {
			h.Buckets[i].Rows = 1
		}
		d := int64(scaleDistinct(float64(h.Buckets[i].Distinct), f))
		if d > h.Buckets[i].Rows {
			d = h.Buckets[i].Rows
		}
		h.Buckets[i].Distinct = d
		rows += h.Buckets[i].Rows
	}
	h.Rows = rows
	h.NullRows = int64(float64(h.NullRows)*f + 0.5)
	h.Distinct = int64(scaleDistinct(float64(h.Distinct), f))
	if h.Distinct > h.Rows {
		h.Distinct = h.Rows
	}
	for k := range mc.PrefixDistinct {
		dv := int64(scaleDistinct(float64(mc.PrefixDistinct[k]), f))
		if dv > int64(popN) {
			dv = int64(popN)
		}
		mc.PrefixDistinct[k] = dv
		if dv > 0 {
			mc.Densities[k] = 1 / float64(dv)
		}
	}
	mc.Rows = int64(popN)
}

// scaleDistinct applies a damped scale-up: values seen once in the sample
// are likely rare, so pure linear scaling overshoots; the square-root
// interpolation between observed and linear is the classic cheap compromise.
func scaleDistinct(d, f float64) float64 {
	if f <= 1 {
		return d
	}
	scaled := d * (1 + (f-1)/2)
	if lin := d * f; scaled > lin {
		scaled = lin
	}
	return scaled
}
