package stats

import (
	"math"
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/datagen"
	"autostats/internal/histogram"
)

func TestSetSamplingValidation(t *testing.T) {
	m := NewManager(testDB(t), histogram.MaxDiff, 0)
	if err := m.SetSampling(SampleConfig{Fraction: -0.1}); err == nil {
		t.Error("negative fraction should error")
	}
	if err := m.SetSampling(SampleConfig{Fraction: 1.5}); err == nil {
		t.Error("fraction > 1 should error")
	}
	if err := m.SetSampling(SampleConfig{Fraction: 0.2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if m.Sampling().Fraction != 0.2 {
		t.Error("config not stored")
	}
}

func TestSampledBuildCheaperAndScaled(t *testing.T) {
	db, err := datagen.Generate(datagen.Config{Scale: 1, Z: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	full := NewManager(db, histogram.MaxDiff, 0)
	fs, err := full.Create("lineitem", []string{"l_shipdate"})
	if err != nil {
		t.Fatal(err)
	}

	sampled := NewManager(db, histogram.MaxDiff, 0)
	if err := sampled.SetSampling(SampleConfig{Fraction: 0.1, MinRows: 100, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	ss, err := sampled.Create("lineitem", []string{"l_shipdate"})
	if err != nil {
		t.Fatal(err)
	}

	if ss.BuildCost >= fs.BuildCost/2 {
		t.Errorf("sampled build cost %v should be far below full %v", ss.BuildCost, fs.BuildCost)
	}
	// Row totals scale back to the table cardinality (±1% rounding).
	n := float64(mustTable(t, db, "lineitem").RowCount())
	if got := float64(ss.Data.Leading.TotalRows()); math.Abs(got-n)/n > 0.02 {
		t.Errorf("scaled rows %v, want ≈%v", got, n)
	}
	// Selectivity estimates stay close to the full-scan statistic for the
	// hot region of a skewed column.
	for _, probe := range []int64{8035, 8100, 8400} {
		v := catalog.NewDate(probe)
		fullSel := fs.Data.Leading.SelectivityLess(v, true)
		sampSel := ss.Data.Leading.SelectivityLess(v, true)
		if math.Abs(fullSel-sampSel) > 0.08 {
			t.Errorf("DATE<=%d: sampled sel %v vs full %v", probe, sampSel, fullSel)
		}
	}
	// Distinct estimate within a reasonable factor.
	fd, sd := float64(fs.Data.Leading.Distinct), float64(ss.Data.Leading.Distinct)
	if sd < fd/3 || sd > fd*3 {
		t.Errorf("sampled distinct %v vs full %v", sd, fd)
	}
}

func TestSamplingSkipsSmallTables(t *testing.T) {
	m := NewManager(testDB(t), histogram.MaxDiff, 0) // 100-row table
	if err := m.SetSampling(SampleConfig{Fraction: 0.1, MinRows: 200, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	st, err := m.Create("t", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Data.Rows != 100 {
		t.Errorf("small table should be exact, got %d rows", st.Data.Rows)
	}
	if st.Data.Leading.Distinct != 10 {
		t.Errorf("small table distinct should be exact, got %d", st.Data.Leading.Distinct)
	}
}

func TestSamplingDeterministic(t *testing.T) {
	db, _ := datagen.Generate(datagen.Config{Scale: 0.5, Z: 1, Seed: 2})
	build := func() *Statistic {
		m := NewManager(db, histogram.MaxDiff, 0)
		_ = m.SetSampling(SampleConfig{Fraction: 0.2, Seed: 9})
		st, err := m.Create("lineitem", []string{"l_quantity"})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := build(), build()
	if a.Data.Leading.Distinct != b.Data.Leading.Distinct || a.Data.Rows != b.Data.Rows {
		t.Error("sampled build must be deterministic")
	}
	// Different statistics draw different samples (independence, §2).
	m := NewManager(db, histogram.MaxDiff, 0)
	_ = m.SetSampling(SampleConfig{Fraction: 0.2, Seed: 9})
	s1, _ := m.Create("lineitem", []string{"l_quantity"})
	s2, _ := m.Create("lineitem", []string{"l_tax"})
	if s1.Data.Leading.Rows != s2.Data.Leading.Rows {
		// Same sample size is expected; the point is the draw is seeded
		// per-statistic, which we can only assert indirectly here.
		t.Logf("sample sizes: %d vs %d", s1.Data.Leading.Rows, s2.Data.Leading.Rows)
	}
}
