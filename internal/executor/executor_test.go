package executor_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/datagen"
	"autostats/internal/executor"
	"autostats/internal/histogram"
	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/sqlparser"
	"autostats/internal/stats"
	"autostats/internal/storage"
	"autostats/internal/workload"
)

type env struct {
	db   *storage.Database
	sess *optimizer.Session
	ex   *executor.Executor
}

func newEnv(t testing.TB, z float64, scale float64) *env {
	t.Helper()
	db, err := datagen.Generate(datagen.Config{Scale: scale, Z: z, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	return &env{db: db, sess: optimizer.NewSession(stats.NewManager(db, histogram.MaxDiff, 0)), ex: executor.New(db)}
}

// referenceEval evaluates a SELECT by brute force: full cartesian expansion
// with predicate filtering, then grouping/distinct. It returns a sorted
// multiset fingerprint of the output restricted to the columns the real
// executor also emits.
func referenceEval(t *testing.T, db *storage.Database, q *query.Select) []string {
	t.Helper()
	// Column position map built incrementally as tables are appended; rows
	// are filtered eagerly (single-table filters before expansion, join
	// predicates as soon as both sides are present) to keep the reference
	// tractable — the evaluation ORDER differs from the executor's plan,
	// which is the point of an independent oracle.
	cols := map[string]int{}
	width := 0
	present := map[string]bool{}
	rows := [][]catalog.Datum{nil}
	pos := func(c query.ColumnRef) int {
		p, ok := cols[strings.ToLower(c.Table)+"."+strings.ToLower(c.Column)]
		if !ok {
			t.Fatalf("reference: column %s missing", c)
		}
		return p
	}
	for _, tbl := range q.Tables {
		td := mustTable(t, db, tbl)
		tn := strings.ToLower(tbl)
		for i, c := range td.Schema.Columns {
			cols[tn+"."+strings.ToLower(c.Name)] = width + i
		}
		width += len(td.Schema.Columns)
		present[tn] = true
		// Filters and joins that become fully bound with this table.
		var filters []query.Filter
		for _, f := range q.Filters {
			if strings.EqualFold(f.Col.Table, tbl) {
				filters = append(filters, f)
			}
		}
		var joins []query.JoinPred
		for _, j := range q.Joins {
			lt, rt := strings.ToLower(j.Left.Table), strings.ToLower(j.Right.Table)
			if (lt == tn || rt == tn) && present[lt] && present[rt] {
				joins = append(joins, j)
			}
		}
		var expanded [][]catalog.Datum
		td.Scan(func(_ int, r storage.Row) bool {
			for _, f := range filters {
				ok, err := f.Op.Eval(r[td.Schema.ColumnIndex(f.Col.Column)], f.Val)
				if err != nil {
					t.Fatalf("eval %s: %v", f, err)
				}
				if !ok {
					return true
				}
			}
			for _, base := range rows {
				nr := append(append([]catalog.Datum{}, base...), r...)
				ok := true
				for _, j := range joins {
					l, rr := nr[pos(j.Left)], nr[pos(j.Right)]
					if l.Null || rr.Null || l.Compare(rr) != 0 {
						ok = false
						break
					}
				}
				if ok {
					expanded = append(expanded, nr)
				}
			}
			return true
		})
		rows = expanded
	}
	kept := rows
	group := q.GroupingColumns()
	var out []string
	if len(group) > 0 {
		seen := map[string]bool{}
		for _, nr := range kept {
			var sb strings.Builder
			for _, g := range group {
				fmt.Fprintf(&sb, "%s|", nr[pos(g)])
			}
			seen[sb.String()] = true
		}
		for k := range seen {
			out = append(out, k)
		}
	} else {
		for _, nr := range kept {
			var sb strings.Builder
			for _, v := range nr {
				fmt.Fprintf(&sb, "%s|", v)
			}
			out = append(out, sb.String())
		}
	}
	sort.Strings(out)
	return out
}

// fingerprint renders the executor result to the same form as referenceEval.
func fingerprint(t *testing.T, res *executor.Result, q *query.Select) []string {
	t.Helper()
	group := q.GroupingColumns()
	var out []string
	if len(group) > 0 {
		for _, r := range res.Rows {
			var sb strings.Builder
			for _, g := range group {
				p, ok := res.Cols[strings.ToLower(g.Table)+"."+strings.ToLower(g.Column)]
				if !ok {
					t.Fatalf("result missing group column %s", g)
				}
				fmt.Fprintf(&sb, "%s|", r[p])
			}
			out = append(out, sb.String())
		}
	} else {
		// Reorder columns to table order for comparison.
		order := columnOrder(t, res.Cols, q)
		for _, r := range res.Rows {
			var sb strings.Builder
			for _, p := range order {
				fmt.Fprintf(&sb, "%s|", r[p])
			}
			out = append(out, sb.String())
		}
	}
	sort.Strings(out)
	return out
}

func columnOrder(t *testing.T, cols map[string]int, q *query.Select) []int {
	t.Helper()
	var order []int
	for _, tbl := range q.Tables {
		type kv struct {
			name string
			pos  int
		}
		var tcols []kv
		prefix := strings.ToLower(tbl) + "."
		for name, p := range cols {
			if strings.HasPrefix(name, prefix) {
				tcols = append(tcols, kv{name, p})
			}
		}
		sort.Slice(tcols, func(i, j int) bool { return tcols[i].pos < tcols[j].pos })
		for _, c := range tcols {
			order = append(order, c.pos)
		}
	}
	return order
}

// TestExecutorMatchesReference compares the executor against brute-force
// evaluation on a battery of hand-written queries, with and without
// statistics (so different physical plans are exercised on the same query).
func TestExecutorMatchesReference(t *testing.T) {
	sqls := []string{
		"SELECT * FROM region",
		"SELECT * FROM nation WHERE n_regionkey = 0",
		"SELECT * FROM nation WHERE n_nationkey >= 5 AND n_nationkey < 15",
		"SELECT * FROM nation, region WHERE n_regionkey = r_regionkey",
		"SELECT * FROM nation, region WHERE n_regionkey = r_regionkey AND r_name = 'ASIA'",
		"SELECT * FROM supplier, nation WHERE s_nationkey = n_nationkey AND s_acctbal > 0",
		"SELECT * FROM orders, customer WHERE o_custkey = c_custkey AND o_totalprice > 300000",
		"SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 45 AND o_orderstatus = 'F'",
		"SELECT * FROM lineitem, partsupp WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey AND l_linenumber = 1",
		"SELECT o_orderpriority FROM orders GROUP BY o_orderpriority",
		"SELECT DISTINCT c_mktsegment FROM customer",
		"SELECT n_name FROM nation, customer WHERE n_nationkey = c_nationkey GROUP BY n_name",
		"SELECT * FROM nation WHERE n_name <> 'FRANCE' AND n_nationkey < 10",
		"SELECT * FROM supplier ORDER BY s_acctbal",
	}
	for _, z := range []float64{0, 2} {
		e := newEnv(t, z, 0.25)
		for phase := 0; phase < 2; phase++ {
			for _, sql := range sqls {
				q, err := sqlparser.ParseSelect(e.db.Schema, sql)
				if err != nil {
					t.Fatalf("parse %q: %v", sql, err)
				}
				plan, err := e.sess.Optimize(q)
				if err != nil {
					t.Fatalf("optimize %q: %v", sql, err)
				}
				res, err := e.ex.Run(plan)
				if err != nil {
					t.Fatalf("run %q: %v", sql, err)
				}
				got := fingerprint(t, res, q)
				want := referenceEval(t, e.db, q)
				if len(got) != len(want) {
					t.Errorf("z=%v phase=%d %q: %d rows, reference %d\nplan:\n%s", z, phase, sql, len(got), len(want), plan.Format())
					continue
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("z=%v phase=%d %q: row %d differs\n got %s\nwant %s", z, phase, sql, i, got[i], want[i])
						break
					}
				}
			}
			// Phase 2: with full statistics → different plans, same results.
			if phase == 0 {
				for _, tbl := range e.db.Schema.TableNames() {
					td := mustTable(t, e.db, tbl)
					for _, c := range td.Schema.Columns {
						if _, err := e.sess.Manager().Create(tbl, []string{c.Name}); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
		}
	}
}

// TestExecutorMatchesReferenceOnGeneratedWorkload runs a generated workload
// through both evaluators (small scale keeps the cartesian reference
// tractable: only 1-2 table queries).
func TestExecutorMatchesReferenceOnGeneratedWorkload(t *testing.T) {
	e := newEnv(t, 1, 0.2)
	w, err := workload.Generate(e.db, workload.Config{Count: 60, Complexity: workload.Simple, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range w.Queries() {
		plan, err := e.sess.Optimize(q)
		if err != nil {
			t.Fatalf("Q%d optimize: %v", i, err)
		}
		res, err := e.ex.Run(plan)
		if err != nil {
			t.Fatalf("Q%d run: %v", i, err)
		}
		got := fingerprint(t, res, q)
		want := referenceEval(t, e.db, q)
		if len(got) != len(want) {
			t.Errorf("Q%d (%s): %d rows vs reference %d", i, q.SQL(), len(got), len(want))
			continue
		}
		for j := range got {
			if got[j] != want[j] {
				t.Errorf("Q%d (%s): row %d differs", i, q.SQL(), j)
				break
			}
		}
	}
}

func TestDMLExecution(t *testing.T) {
	e := newEnv(t, 0, 0.25)
	before := mustTable(t, e.db, "region").RowCount()

	res, err := e.ex.RunStatement(e.sess, mustParse(t, e.db, "INSERT INTO region VALUES (9, 'ATLANTIS', 'sunk')"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 || mustTable(t, e.db, "region").RowCount() != before+1 {
		t.Errorf("insert affected=%d", res.Affected)
	}

	res, err = e.ex.RunStatement(e.sess, mustParse(t, e.db, "UPDATE region SET r_name = 'SUNKEN' WHERE r_regionkey = 9"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Errorf("update affected=%d", res.Affected)
	}
	qr, err := e.ex.RunStatement(e.sess, mustParse(t, e.db, "SELECT * FROM region WHERE r_name = 'SUNKEN'"))
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 {
		t.Errorf("updated row not found: %d rows", len(qr.Rows))
	}

	res, err = e.ex.RunStatement(e.sess, mustParse(t, e.db, "DELETE FROM region WHERE r_regionkey = 9"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 || mustTable(t, e.db, "region").RowCount() != before {
		t.Errorf("delete affected=%d rows=%d", res.Affected, mustTable(t, e.db, "region").RowCount())
	}
	if res.Cost <= 0 {
		t.Error("DML must charge cost")
	}
}

func mustParse(t *testing.T, db *storage.Database, sql string) query.Statement {
	t.Helper()
	stmt, err := sqlparser.Parse(db.Schema, sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return stmt
}

// TestExecCostTracksPlanShape: an index seek must charge less than a full
// scan for a selective predicate.
func TestExecCostTracksPlanShape(t *testing.T) {
	e := newEnv(t, 2, 0.5)
	sql := "SELECT * FROM orders WHERE o_orderdate > DATE 10400"
	q, _ := sqlparser.ParseSelect(e.db.Schema, sql)
	scanPlan, _ := e.sess.Optimize(q)
	scanRes, err := e.ex.Run(scanPlan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.sess.Manager().Create("orders", []string{"o_orderdate"}); err != nil {
		t.Fatal(err)
	}
	seekPlan, _ := e.sess.Optimize(q)
	if seekPlan.Root.Op != optimizer.OpIndexSeek {
		t.Fatalf("expected seek after stats, got %s", seekPlan.Root.Op)
	}
	seekRes, err := e.ex.Run(seekPlan)
	if err != nil {
		t.Fatal(err)
	}
	if seekRes.Cost >= scanRes.Cost {
		t.Errorf("seek cost %v should beat scan cost %v", seekRes.Cost, scanRes.Cost)
	}
	if len(seekRes.Rows) != len(scanRes.Rows) {
		t.Errorf("seek returned %d rows, scan %d", len(seekRes.Rows), len(scanRes.Rows))
	}
}
