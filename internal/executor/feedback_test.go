package executor_test

import (
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/executor"
	"autostats/internal/feedback"
	"autostats/internal/obs"
	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/storage"
)

// feedbackEnv is an env with a ledger-attached executor next to a plain one.
type feedbackEnv struct {
	*env
	led  *Ledger
	exFB *executor.Executor
}

// Ledger aliases the feedback ledger so the struct above reads naturally.
type Ledger = feedback.Ledger

func newFeedbackEnv(t testing.TB, z, scale float64) *feedbackEnv {
	t.Helper()
	e := newEnv(t, z, scale)
	led := feedback.NewLedger(nil, feedback.Config{Obs: obs.New()})
	exFB := executor.New(e.db)
	exFB.SetFeedback(led)
	return &feedbackEnv{env: e, led: led, exFB: exFB}
}

// countWhere counts table rows passing all filters, as an independent oracle.
func countWhere(t *testing.T, db *storage.Database, table string, filters []query.Filter) int64 {
	t.Helper()
	td := mustTable(t, db, table)
	var n int64
	var ferr error
	td.Scan(func(_ int, r storage.Row) bool {
		for _, f := range filters {
			ok, err := f.Op.Eval(r[td.Schema.ColumnIndex(f.Col.Column)], f.Val)
			if err != nil {
				ferr = err
				return false
			}
			if !ok {
				return true
			}
		}
		n++
		return true
	})
	if ferr != nil {
		t.Fatal(ferr)
	}
	return n
}

// joinCount counts equi-join pairs orders.o_orderkey = lineitem.l_orderkey.
func joinCount(t *testing.T, db *storage.Database) int64 {
	t.Helper()
	orders := mustTable(t, db, "orders")
	lineitem := mustTable(t, db, "lineitem")
	op := orders.Schema.ColumnIndex("o_orderkey")
	lp := lineitem.Schema.ColumnIndex("l_orderkey")
	counts := map[int64]int64{}
	orders.Scan(func(_ int, r storage.Row) bool {
		if !r[op].Null {
			counts[r[op].I]++
		}
		return true
	})
	var n int64
	lineitem.Scan(func(_ int, r storage.Row) bool {
		if !r[lp].Null {
			n += counts[r[lp].I]
		}
		return true
	})
	return n
}

// groupCount counts distinct non-grouped... distinct l_orderkey groups, and
// how many of them have more than minCount rows.
func groupCount(t *testing.T, db *storage.Database, minCount int64) (groups, passing int64) {
	t.Helper()
	lineitem := mustTable(t, db, "lineitem")
	lp := lineitem.Schema.ColumnIndex("l_orderkey")
	counts := map[string]int64{}
	lineitem.Scan(func(_ int, r storage.Row) bool {
		counts[r[lp].String()]++
		return true
	})
	for _, c := range counts {
		groups++
		if c > minCount {
			passing++
		}
	}
	return groups, passing
}

func findObs(t *testing.T, obsList []feedback.NodeObservation, op string) feedback.NodeObservation {
	t.Helper()
	for _, o := range obsList {
		if o.Op == op {
			return o
		}
	}
	t.Fatalf("no %s observation in %+v", op, obsList)
	return feedback.NodeObservation{}
}

func scanNode(table string, filters ...query.Filter) *optimizer.Node {
	return &optimizer.Node{Op: optimizer.OpTableScan, Table: table, Filters: filters, EstRows: 77}
}

// TestActualRowAccountingPerOperator runs every physical operator against an
// independent brute-force oracle: the observation recorded for each node must
// carry the exact materialized row count.
func TestActualRowAccountingPerOperator(t *testing.T) {
	fe := newFeedbackEnv(t, 0, 0.2)
	db := fe.db
	qtyFilter := query.Filter{Col: col2("lineitem", "l_quantity"), Op: query.Gt, Val: catalog.NewFloat(25)}
	dateFilter := query.Filter{Col: col2("orders", "o_orderdate"), Op: query.Gt, Val: catalog.NewDate(9500)}
	joinPred := query.JoinPred{Left: col2("orders", "o_orderkey"), Right: col2("lineitem", "l_orderkey")}

	run := func(t *testing.T, root *optimizer.Node) []feedback.NodeObservation {
		t.Helper()
		res, err := fe.exFB.Run(&optimizer.Plan{Root: root})
		if err != nil {
			t.Fatal(err)
		}
		return res.Feedback
	}

	wantJoin := joinCount(t, db)

	t.Run("TableScan", func(t *testing.T) {
		obsList := run(t, scanNode("lineitem", qtyFilter))
		o := findObs(t, obsList, "TableScan")
		want := countWhere(t, db, "lineitem", []query.Filter{qtyFilter})
		if o.ActualRows != want {
			t.Errorf("scan actual = %d, want %d", o.ActualRows, want)
		}
		if o.Table != "lineitem" || o.Columns != "l_quantity" || o.Signature == "" {
			t.Errorf("scan observation key fields = %+v", o)
		}
		if o.EstRows != 77 {
			t.Errorf("scan est = %g, want the node estimate 77", o.EstRows)
		}
	})

	t.Run("IndexSeek", func(t *testing.T) {
		root := &optimizer.Node{
			Op: optimizer.OpIndexSeek, Table: "orders", IndexCol: "o_orderdate",
			Filters: []query.Filter{dateFilter}, SeekFilters: []query.Filter{dateFilter}, EstRows: 77,
		}
		o := findObs(t, run(t, root), "IndexSeek")
		want := countWhere(t, db, "orders", []query.Filter{dateFilter})
		if o.ActualRows != want {
			t.Errorf("seek actual = %d, want %d", o.ActualRows, want)
		}
		if o.Table != "orders" || o.Columns != "o_orderdate" {
			t.Errorf("seek observation key fields = %+v", o)
		}
	})

	for _, jt := range []struct {
		name string
		op   optimizer.Op
	}{
		{"HashJoin", optimizer.OpHashJoin},
		{"MergeJoin", optimizer.OpMergeJoin},
		{"NLJoin", optimizer.OpNestedLoopJoin},
	} {
		t.Run(jt.name, func(t *testing.T) {
			root := &optimizer.Node{
				Op:       jt.op,
				Children: []*optimizer.Node{scanNode("orders"), scanNode("lineitem")},
				Joins:    []query.JoinPred{joinPred},
				EstRows:  77,
			}
			obsList := run(t, root)
			if len(obsList) != 3 {
				t.Fatalf("got %d observations, want 3 (2 scans + join): %+v", len(obsList), obsList)
			}
			o := findObs(t, obsList, jt.name)
			if o.ActualRows != wantJoin {
				t.Errorf("%s actual = %d, want %d", jt.name, o.ActualRows, wantJoin)
			}
			if o.Table != "" {
				t.Errorf("join observation should carry no table, got %q", o.Table)
			}
		})
	}

	t.Run("IndexNLJoin", func(t *testing.T) {
		root := &optimizer.Node{
			Op:       optimizer.OpIndexNLJoin,
			Children: []*optimizer.Node{scanNode("orders"), scanNode("lineitem")},
			IndexCol: "l_orderkey",
			Joins:    []query.JoinPred{joinPred},
			EstRows:  77,
		}
		obsList := run(t, root)
		// The inner base table is probed inline, not dispatched: only the
		// outer scan and the join node observe.
		if len(obsList) != 2 {
			t.Fatalf("got %d observations, want 2 (outer scan + join): %+v", len(obsList), obsList)
		}
		o := findObs(t, obsList, "IndexNLJoin")
		if o.ActualRows != wantJoin {
			t.Errorf("index NL join actual = %d, want %d", o.ActualRows, wantJoin)
		}
	})

	groups, passing := groupCount(t, db, 3)

	t.Run("HashAgg", func(t *testing.T) {
		root := &optimizer.Node{
			Op:         optimizer.OpHashAggregate,
			Children:   []*optimizer.Node{scanNode("lineitem")},
			GroupBy:    []query.ColumnRef{col2("lineitem", "l_orderkey")},
			Aggregates: []query.Aggregate{{Func: query.CountStar}},
			EstRows:    77,
		}
		o := findObs(t, run(t, root), "HashAgg")
		if o.ActualRows != groups {
			t.Errorf("hash agg actual = %d, want %d groups", o.ActualRows, groups)
		}
	})

	t.Run("StreamAgg", func(t *testing.T) {
		root := &optimizer.Node{
			Op:         optimizer.OpStreamAggregate,
			Children:   []*optimizer.Node{scanNode("lineitem")},
			GroupBy:    []query.ColumnRef{col2("lineitem", "l_orderkey")},
			Aggregates: []query.Aggregate{{Func: query.Sum, Col: col2("lineitem", "l_quantity")}},
			EstRows:    77,
		}
		o := findObs(t, run(t, root), "StreamAgg")
		if o.ActualRows != groups {
			t.Errorf("stream agg actual = %d, want %d groups", o.ActualRows, groups)
		}
	})

	t.Run("Having", func(t *testing.T) {
		root := &optimizer.Node{
			Op:         optimizer.OpHashAggregate,
			Children:   []*optimizer.Node{scanNode("lineitem")},
			GroupBy:    []query.ColumnRef{col2("lineitem", "l_orderkey")},
			Aggregates: []query.Aggregate{{Func: query.CountStar}},
			Having:     []query.HavingPred{{Agg: query.Aggregate{Func: query.CountStar}, Op: query.Gt, Val: catalog.NewInt(3)}},
			EstRows:    77,
		}
		o := findObs(t, run(t, root), "HashAgg")
		if o.ActualRows != passing {
			t.Errorf("post-HAVING actual = %d, want %d", o.ActualRows, passing)
		}
	})

	t.Run("Sort", func(t *testing.T) {
		root := &optimizer.Node{
			Op:       optimizer.OpSort,
			Children: []*optimizer.Node{scanNode("lineitem", qtyFilter)},
			SortBy:   []query.ColumnRef{col2("lineitem", "l_quantity")},
			EstRows:  77,
		}
		o := findObs(t, run(t, root), "Sort")
		want := countWhere(t, db, "lineitem", []query.Filter{qtyFilter})
		if o.ActualRows != want {
			t.Errorf("sort actual = %d, want %d", o.ActualRows, want)
		}
	})
}

func col2(t, c string) query.ColumnRef { return query.ColumnRef{Table: t, Column: c} }

// TestDisabledFeedbackAddsNoAllocations pins the nil-collector fast path: an
// executor that once had a ledger attached and then detached must allocate
// exactly as much per Run as one that never saw feedback at all.
func TestDisabledFeedbackAddsNoAllocations(t *testing.T) {
	e := newEnv(t, 0, 0.05)
	plan := &optimizer.Plan{Root: scanNode("nation")}
	exPlain := executor.New(e.db)
	exDetached := executor.New(e.db)
	exDetached.SetFeedback(feedback.NewLedger(nil, feedback.Config{Obs: obs.New()}))
	exDetached.SetFeedback(nil)

	measure := func(ex *executor.Executor) float64 {
		return testing.AllocsPerRun(50, func() {
			if _, err := ex.Run(plan); err != nil {
				t.Fatal(err)
			}
		})
	}
	plain := measure(exPlain)
	detached := measure(exDetached)
	if plain != detached {
		t.Errorf("disabled feedback path allocates %v/run vs %v/run baseline", detached, plain)
	}
}

// benchPlan builds a moderately complex plan (join + scans) directly, so the
// benchmark isolates execution from optimization.
func benchPlan() *optimizer.Node {
	return &optimizer.Node{
		Op: optimizer.OpHashJoin,
		Children: []*optimizer.Node{
			scanNode("orders", query.Filter{Col: col2("orders", "o_orderdate"), Op: query.Gt, Val: catalog.NewDate(9000)}),
			scanNode("lineitem", query.Filter{Col: col2("lineitem", "l_quantity"), Op: query.Gt, Val: catalog.NewFloat(10)}),
		},
		Joins:   []query.JoinPred{{Left: col2("orders", "o_orderkey"), Right: col2("lineitem", "l_orderkey")}},
		EstRows: 100,
	}
}

// BenchmarkFeedbackCapture compares executor throughput with feedback
// disabled and enabled; the delta is the capture overhead reported in
// BENCH_PR3.json (acceptance: disabled adds no allocations, enabled < 5%).
func BenchmarkFeedbackCapture(b *testing.B) {
	e := newEnv(b, 0, 0.2)
	plan := &optimizer.Plan{Root: benchPlan()}

	b.Run("off", func(b *testing.B) {
		ex := executor.New(e.db)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.Run(plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		ex := executor.New(e.db)
		ex.SetFeedback(feedback.NewLedger(nil, feedback.Config{Obs: obs.New()}))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.Run(plan); err != nil {
				b.Fatal(err)
			}
		}
	})
}
