package executor_test

import (
	"testing"

	"autostats/internal/datagen"
	"autostats/internal/executor"
	"autostats/internal/histogram"
	"autostats/internal/optimizer"
	"autostats/internal/sqlparser"
	"autostats/internal/stats"
)

// TestEndToEndPipeline exercises generate → parse → optimize → execute.
func TestEndToEndPipeline(t *testing.T) {
	db, err := datagen.Generate(datagen.Config{Scale: 0.5, Z: 1, Seed: 7})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	mgr := stats.NewManager(db, histogram.MaxDiff, 0)
	sess := optimizer.NewSession(mgr)
	ex := executor.New(db)

	sqls := []string{
		"SELECT * FROM lineitem WHERE l_quantity < 10",
		"SELECT * FROM orders, customer WHERE o_custkey = c_custkey AND c_acctbal > 5000",
		"SELECT o_orderpriority FROM orders, lineitem WHERE o_orderkey = l_orderkey AND l_shipdate < DATE 9000 GROUP BY o_orderpriority",
		"SELECT DISTINCT c_mktsegment FROM customer",
		"SELECT * FROM supplier, nation, region WHERE s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = 'ASIA' ORDER BY s_acctbal",
	}
	for _, sql := range sqls {
		q, err := sqlparser.ParseSelect(db.Schema, sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		plan, err := sess.Optimize(q)
		if err != nil {
			t.Fatalf("optimize %q: %v", sql, err)
		}
		res, err := ex.Run(plan)
		if err != nil {
			t.Fatalf("execute %q: %v", sql, err)
		}
		if res.Cost <= 0 {
			t.Errorf("query %q: nonpositive execution cost %v", sql, res.Cost)
		}
		t.Logf("%s\n  est cost %.0f, exec cost %.0f, rows %d, sig %s",
			sql, plan.Cost(), res.Cost, len(res.Rows), plan.Signature())
	}
}

// TestPlansImproveWithStats checks that creating statistics changes plans
// for selective predicates (the §1 motivating observation, in miniature).
func TestPlansImproveWithStats(t *testing.T) {
	db, err := datagen.Generate(datagen.Config{Scale: 0.5, Z: 2, Seed: 7})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	mgr := stats.NewManager(db, histogram.MaxDiff, 0)
	sess := optimizer.NewSession(mgr)

	sql := "SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 49 AND o_totalprice > 500000"
	q, err := sqlparser.ParseSelect(db.Schema, sql)
	if err != nil {
		t.Fatal(err)
	}
	before, err := sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.MissingVars) == 0 {
		t.Fatalf("expected missing selectivity variables with no statistics, got none")
	}
	for _, c := range []struct {
		table string
		col   string
	}{
		{"lineitem", "l_quantity"}, {"lineitem", "l_orderkey"},
		{"orders", "o_totalprice"}, {"orders", "o_orderkey"},
	} {
		if _, err := mgr.Create(c.table, []string{c.col}); err != nil {
			t.Fatalf("create stat: %v", err)
		}
	}
	after, err := sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.MissingVars) != 0 {
		t.Errorf("expected no missing vars after stats creation, got %v", after.MissingVars)
	}
	t.Logf("before: cost %.0f  %s", before.Cost(), before.Signature())
	t.Logf("after:  cost %.0f  %s", after.Cost(), after.Signature())
	if before.Signature() == after.Signature() && before.Cost() == after.Cost() {
		t.Errorf("expected plan or cost to change once statistics were available")
	}
}
