package executor_test

import (
	"testing"

	"autostats/internal/sqlparser"
	"autostats/internal/storage"
)

func TestHavingFiltersGroups(t *testing.T) {
	e := newEnv(t, 2, 0.25)
	// Reference counts per group.
	want := map[string]int64{}
	td := mustTable(t, e.db, "orders")
	pi := td.Schema.ColumnIndex("o_orderpriority")
	td.Scan(func(_ int, r storage.Row) bool {
		want[r[pi].S]++
		return true
	})
	cutoff := int64(0)
	for _, c := range want {
		cutoff += c
	}
	cutoff /= int64(len(want)) // average group size

	rows, cols := runAgg(t, e,
		"SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority HAVING COUNT(*) > "+itoa(cutoff))
	gp, cp := cols["orders.o_orderpriority"], cols["count(*)"]
	wantKept := 0
	for _, c := range want {
		if c > cutoff {
			wantKept++
		}
	}
	if len(rows) != wantKept {
		t.Fatalf("HAVING kept %d groups, want %d", len(rows), wantKept)
	}
	for _, r := range rows {
		if r[cp].I <= cutoff {
			t.Errorf("group %q count %d violates HAVING > %d", r[gp].S, r[cp].I, cutoff)
		}
		if r[cp].I != want[r[gp].S] {
			t.Errorf("group %q count %d, want %d", r[gp].S, r[cp].I, want[r[gp].S])
		}
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// TestHavingOnUnprojectedAggregate: HAVING may reference an aggregate not in
// the SELECT list; the engine computes it internally.
func TestHavingOnUnprojectedAggregate(t *testing.T) {
	e := newEnv(t, 0, 0.25)
	rows, cols := runAgg(t, e,
		"SELECT o_orderpriority FROM orders GROUP BY o_orderpriority HAVING SUM(o_totalprice) > 0")
	if len(rows) == 0 {
		t.Fatal("expected surviving groups")
	}
	if _, ok := cols["sum(orders.o_totalprice)"]; !ok {
		t.Error("internally computed HAVING aggregate should appear in output columns")
	}
}

func TestHavingScalarAggregate(t *testing.T) {
	e := newEnv(t, 0, 0.25)
	rows, _ := runAgg(t, e, "SELECT COUNT(*) FROM orders HAVING COUNT(*) > 999999")
	if len(rows) != 0 {
		t.Errorf("unsatisfied scalar HAVING should yield no rows, got %d", len(rows))
	}
	rows, _ = runAgg(t, e, "SELECT COUNT(*) FROM orders HAVING COUNT(*) >= 0")
	if len(rows) != 1 {
		t.Errorf("satisfied scalar HAVING should yield one row, got %d", len(rows))
	}
}

func TestHavingRoundTripAndErrors(t *testing.T) {
	e := newEnv(t, 0, 0.2)
	sql := "SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority HAVING COUNT(*) > 10 AND SUM(o_totalprice) > 1000"
	q, err := sqlparser.ParseSelect(e.db.Schema, sql)
	if err != nil {
		t.Fatal(err)
	}
	re, err := sqlparser.ParseSelect(e.db.Schema, q.SQL())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.SQL(), err)
	}
	if re.SQL() != q.SQL() {
		t.Errorf("round trip: %q -> %q", q.SQL(), re.SQL())
	}
	for _, bad := range []string{
		"SELECT o_orderpriority FROM orders GROUP BY o_orderpriority HAVING o_orderpriority = 'X'", // non-aggregate
		"SELECT COUNT(*) FROM orders HAVING COUNT(*) >",
	} {
		if _, err := sqlparser.ParseSelect(e.db.Schema, bad); err == nil {
			t.Errorf("expected parse error for %q", bad)
		}
	}
}

// TestHavingBothAggStrategies: HAVING must behave identically under hash and
// stream aggregation.
func TestHavingBothAggStrategies(t *testing.T) {
	e := newEnv(t, 0, 0.25)
	sql := "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey HAVING COUNT(*) > 2"
	before, _ := runAgg(t, e, sql) // magic group fraction → hash agg
	if _, err := e.sess.Manager().Create("orders", []string{"o_custkey"}); err != nil {
		t.Fatal(err)
	}
	after, _ := runAgg(t, e, sql) // known high cardinality → possibly stream agg
	if len(before) != len(after) {
		t.Errorf("HAVING results differ across aggregation strategies: %d vs %d", len(before), len(after))
	}
}
