package executor_test

import (
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/optimizer"
	"autostats/internal/query"
)

// TestIndexSeekBoundsWithMixedFilters is the minimized regression for a bug
// the differential oracle surfaced (internal/oracle, seed 7): with seek
// filters "> 1 AND = 2" on an indexed column, the equality overwrote the
// bounds but kept the earlier exclusive flag, turning the point range
// [2, 2] into the empty range (2, 2] and silently losing the matching row.
func TestIndexSeekBoundsWithMixedFilters(t *testing.T) {
	env := newEnv(t, 0, 1)
	region := mustTable(t, env.db, "region")
	if _, ok := region.IndexOn("r_regionkey"); !ok {
		t.Fatal("expected an index on region.r_regionkey")
	}

	mkFilter := func(op query.CmpOp, v int64) query.Filter {
		return query.Filter{
			Col: query.ColumnRef{Table: "region", Column: "r_regionkey"},
			Op:  op,
			Val: catalog.NewInt(v),
		}
	}
	cases := []struct {
		name    string
		filters []query.Filter
		want    int
	}{
		{"gt-then-eq", []query.Filter{mkFilter(query.Gt, 1), mkFilter(query.Eq, 2)}, 1},
		{"eq-then-gt-below", []query.Filter{mkFilter(query.Eq, 2), mkFilter(query.Gt, 1)}, 1},
		{"lt-then-eq", []query.Filter{mkFilter(query.Lt, 3), mkFilter(query.Eq, 2)}, 1},
		{"ge-then-eq", []query.Filter{mkFilter(query.Ge, 1), mkFilter(query.Eq, 2)}, 1},
		// Contradictory combinations must stay empty (residual filters).
		{"eq-then-gt-above", []query.Filter{mkFilter(query.Eq, 2), mkFilter(query.Gt, 3)}, 0},
		{"eq-then-eq", []query.Filter{mkFilter(query.Eq, 2), mkFilter(query.Eq, 3)}, 0},
		{"gt-then-eq-below", []query.Filter{mkFilter(query.Gt, 3), mkFilter(query.Eq, 2)}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Drive the seek operator directly so the test pins the executor
			// behavior regardless of which access path the optimizer picks.
			n := &optimizer.Node{
				Op:          optimizer.OpIndexSeek,
				Table:       "region",
				Index:       "idx_region_r_regionkey",
				IndexCol:    "r_regionkey",
				Filters:     tc.filters,
				SeekFilters: tc.filters,
				EstRows:     1,
				Cost:        1,
			}
			res, err := env.ex.Run(&optimizer.Plan{Root: n})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != tc.want {
				t.Fatalf("%s: got %d rows, want %d", tc.name, len(res.Rows), tc.want)
			}
			// The seek must agree with a plain filtered scan of the table.
			scan := &optimizer.Node{
				Op:      optimizer.OpTableScan,
				Table:   "region",
				Filters: tc.filters,
				EstRows: 1,
				Cost:    1,
			}
			sres, err := env.ex.Run(&optimizer.Plan{Root: scan})
			if err != nil {
				t.Fatal(err)
			}
			if len(sres.Rows) != len(res.Rows) {
				t.Fatalf("%s: seek returned %d rows, scan returned %d", tc.name, len(res.Rows), len(sres.Rows))
			}
		})
	}
}
