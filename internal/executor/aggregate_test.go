package executor_test

import (
	"math"
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/sqlparser"
	"autostats/internal/storage"
)

// runAgg executes a SELECT and returns the single/grouped output with a
// convenience accessor.
func runAgg(t *testing.T, e *env, sql string) ([][]catalog.Datum, map[string]int) {
	t.Helper()
	q, err := sqlparser.ParseSelect(e.db.Schema, sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	plan, err := e.sess.Optimize(q)
	if err != nil {
		t.Fatalf("optimize %q: %v", sql, err)
	}
	res, err := e.ex.Run(plan)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return res.Rows, res.Cols
}

func TestScalarAggregates(t *testing.T) {
	e := newEnv(t, 0, 0.25)
	// Compute expected values straight from storage.
	vals, err := mustTable(t, e.db, "lineitem").ColumnValues("l_quantity")
	if err != nil {
		t.Fatal(err)
	}
	var sum, min, max float64
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		sum += v.F
		min = math.Min(min, v.F)
		max = math.Max(max, v.F)
	}
	n := float64(len(vals))

	rows, cols := runAgg(t, e, "SELECT COUNT(*), SUM(l_quantity), AVG(l_quantity), MIN(l_quantity), MAX(l_quantity) FROM lineitem")
	if len(rows) != 1 {
		t.Fatalf("scalar aggregate returned %d rows", len(rows))
	}
	row := rows[0]
	get := func(key string) catalog.Datum {
		p, ok := cols[key]
		if !ok {
			t.Fatalf("missing output column %q in %v", key, cols)
		}
		return row[p]
	}
	if got := get("count(*)"); got.I != int64(n) {
		t.Errorf("COUNT(*) = %v, want %v", got.I, n)
	}
	if got := get("sum(lineitem.l_quantity)"); math.Abs(got.F-sum) > 1e-6 {
		t.Errorf("SUM = %v, want %v", got.F, sum)
	}
	if got := get("avg(lineitem.l_quantity)"); math.Abs(got.F-sum/n) > 1e-9 {
		t.Errorf("AVG = %v, want %v", got.F, sum/n)
	}
	if got := get("min(lineitem.l_quantity)"); got.F != min {
		t.Errorf("MIN = %v, want %v", got.F, min)
	}
	if got := get("max(lineitem.l_quantity)"); got.F != max {
		t.Errorf("MAX = %v, want %v", got.F, max)
	}
}

func TestGroupedAggregatesMatchReference(t *testing.T) {
	e := newEnv(t, 2, 0.25)
	// Reference: count per group from storage.
	want := map[string]int64{}
	td := mustTable(t, e.db, "orders")
	pi := td.Schema.ColumnIndex("o_orderpriority")
	td.Scan(func(_ int, r storage.Row) bool {
		want[r[pi].S]++
		return true
	})

	// Run under both aggregate strategies (without stats the optimizer
	// picks hash; with o_orderpriority stats the group estimate changes).
	for phase := 0; phase < 2; phase++ {
		rows, cols := runAgg(t, e, "SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority")
		if len(rows) != len(want) {
			t.Fatalf("phase %d: %d groups, want %d", phase, len(rows), len(want))
		}
		gp, cp := cols["orders.o_orderpriority"], cols["count(*)"]
		for _, r := range rows {
			if r[cp].I != want[r[gp].S] {
				t.Errorf("phase %d: group %q count %d, want %d", phase, r[gp].S, r[cp].I, want[r[gp].S])
			}
		}
		if phase == 0 {
			if _, err := e.sess.Manager().Create("orders", []string{"o_orderpriority"}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	e := newEnv(t, 0, 0.25)
	rows, cols := runAgg(t, e, "SELECT COUNT(*), SUM(o_totalprice), MIN(o_totalprice) FROM orders WHERE o_totalprice < -99999")
	if len(rows) != 1 {
		t.Fatalf("scalar aggregate over empty input must return 1 row, got %d", len(rows))
	}
	if got := rows[0][cols["count(*)"]]; got.I != 0 {
		t.Errorf("COUNT(*) over empty = %v", got)
	}
	if got := rows[0][cols["sum(orders.o_totalprice)"]]; !got.Null {
		t.Errorf("SUM over empty should be NULL, got %v", got)
	}
	if got := rows[0][cols["min(orders.o_totalprice)"]]; !got.Null {
		t.Errorf("MIN over empty should be NULL, got %v", got)
	}
	// Grouped aggregate over empty input returns no rows.
	rows, _ = runAgg(t, e, "SELECT o_orderpriority, COUNT(*) FROM orders WHERE o_totalprice < -99999 GROUP BY o_orderpriority")
	if len(rows) != 0 {
		t.Errorf("grouped aggregate over empty input returned %d rows", len(rows))
	}
}

func TestSumOverIntColumnStaysInt(t *testing.T) {
	e := newEnv(t, 0, 0.25)
	rows, cols := runAgg(t, e, "SELECT SUM(p_size) FROM part")
	if got := rows[0][cols["sum(part.p_size)"]]; got.T != catalog.Int {
		t.Errorf("SUM over INT column should be Int, got %v (%s)", got.T, got)
	}
}

func TestAggregateSQLRoundTrip(t *testing.T) {
	e := newEnv(t, 0, 0.25)
	sqls := []string{
		"SELECT COUNT(*) FROM orders",
		"SELECT o_orderpriority, COUNT(*), SUM(o_totalprice) FROM orders GROUP BY o_orderpriority",
		"SELECT MIN(l_shipdate) FROM lineitem",
	}
	for _, sql := range sqls {
		q, err := sqlparser.ParseSelect(e.db.Schema, sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		re, err := sqlparser.ParseSelect(e.db.Schema, q.SQL())
		if err != nil {
			t.Fatalf("re-parse %q: %v", q.SQL(), err)
		}
		if re.SQL() != q.SQL() {
			t.Errorf("round trip: %q -> %q", q.SQL(), re.SQL())
		}
	}
}

func TestAggregateParserErrors(t *testing.T) {
	e := newEnv(t, 0, 0.2)
	for _, bad := range []string{
		"SELECT SUM(*) FROM orders",
		"SELECT FROB(o_totalprice) FROM orders",
		"SELECT SUM(o_orderpriority) FROM orders", // SUM over string
		"SELECT SUM(o_totalprice FROM orders",
	} {
		if _, err := sqlparser.ParseSelect(e.db.Schema, bad); err == nil {
			t.Errorf("expected parse error for %q", bad)
		}
	}
}

// TestAggregatesDoNotChangeCandidates: per §3.1, aggregate arguments are not
// statistics-relevant; candidate sets with and without the aggregates must
// coincide.
func TestAggregatesDoNotChangeRelevance(t *testing.T) {
	e := newEnv(t, 0, 0.2)
	a, err := sqlparser.ParseSelect(e.db.Schema, "SELECT o_orderpriority FROM orders WHERE o_totalprice > 100 GROUP BY o_orderpriority")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sqlparser.ParseSelect(e.db.Schema, "SELECT o_orderpriority, SUM(o_shippriority), COUNT(*) FROM orders WHERE o_totalprice > 100 GROUP BY o_orderpriority")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.sess.MissingStatVars(b), e.sess.MissingStatVars(a); len(got) != len(want) {
		t.Errorf("aggregates changed missing vars: %v vs %v", got, want)
	}
}
