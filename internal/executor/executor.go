// Package executor runs physical plans produced by the optimizer against the
// storage layer and charges deterministic work units in the same currency as
// the optimizer's cost model, so that "execution cost of the workload" (§8)
// is reproducible and hardware-independent. It also executes DML statements,
// driving the row-modification counters behind the statistics update policy.
package executor

import (
	"fmt"
	"sort"
	"strings"

	"autostats/internal/catalog"
	"autostats/internal/feedback"
	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/storage"
)

// Result is the outcome of executing one statement.
type Result struct {
	// Cols maps "table.column" (lower case) to the output column position.
	Cols map[string]int
	// Rows is the output row set (nil for DML).
	Rows [][]catalog.Datum
	// Cost is the total work units charged.
	Cost float64
	// Affected counts rows inserted/updated/deleted by DML.
	Affected int
	// Feedback holds the per-node estimated-vs-actual observations of this
	// execution, in plan post-order. Nil unless a feedback ledger is attached
	// to the executor.
	Feedback []feedback.NodeObservation
}

// Executor evaluates plans and DML against one database.
type Executor struct {
	db *storage.Database
	// fb, when non-nil, receives per-node actual-cardinality observations
	// from every successful query execution (see SetFeedback).
	fb *feedback.Ledger
}

// New creates an executor over db.
func New(db *storage.Database) *Executor { return &Executor{db: db} }

// SetFeedback attaches a feedback ledger: every subsequent successful Run
// records per-plan-node actual cardinalities and flushes the base-table ones
// into the ledger. nil detaches it. With no ledger attached the collector is
// nil and the capture path costs nothing (the obs nil-span idiom). Set it
// before sharing the executor across goroutines.
func (ex *Executor) SetFeedback(l *feedback.Ledger) { ex.fb = l }

// FeedbackLedger returns the attached ledger, or nil.
func (ex *Executor) FeedbackLedger() *feedback.Ledger { return ex.fb }

// Run executes a query plan.
func (ex *Executor) Run(p *optimizer.Plan) (*Result, error) {
	var col *feedback.Collector
	if ex.fb != nil {
		col = ex.fb.NewCollector()
		col.SetBaseRows(p.RawBaseRows)
	}
	rs, cost, err := ex.exec(p.Root, col)
	if err != nil {
		return nil, err
	}
	// Flush only after a fully successful execution so partial runs never
	// feed the ledger.
	col.Flush()
	return &Result{Cols: rs.cols, Rows: rs.rows, Cost: cost, Feedback: col.Nodes()}, nil
}

// resultSet is an intermediate materialized relation.
type resultSet struct {
	cols map[string]int
	rows [][]catalog.Datum
}

func colKey(c query.ColumnRef) string {
	return strings.ToLower(c.Table) + "." + strings.ToLower(c.Column)
}

func (rs *resultSet) colPos(c query.ColumnRef) (int, error) {
	if p, ok := rs.cols[colKey(c)]; ok {
		return p, nil
	}
	return 0, fmt.Errorf("executor: column %s not in intermediate result", c)
}

// exec evaluates one plan node and, when a collector is attached, records the
// node's estimated-vs-actual cardinality. This is the single observation call
// site: every operator materializes its resultSet, so counting rows is free,
// and the nil-collector branch keeps the disabled path allocation-free.
func (ex *Executor) exec(n *optimizer.Node, col *feedback.Collector) (*resultSet, float64, error) {
	rs, cost, err := ex.dispatch(n, col)
	if err != nil {
		return nil, 0, err
	}
	if col != nil {
		actual := int64(len(rs.rows))
		if (n.Op == optimizer.OpTableScan || n.Op == optimizer.OpIndexSeek) && n.Table != "" {
			col.Observe(feedback.ScanObservation(
				n.Op.String(), n.Table, n.Filters, col.RawEstimate(n.Table, n.EstRows), actual))
		} else {
			col.Observe(feedback.NodeObservation{Op: n.Op.String(), EstRows: n.EstRows, ActualRows: actual})
		}
	}
	return rs, cost, nil
}

// dispatch routes a node to its operator implementation. The inner base table
// of an IndexNLJoin is probed inline by execIndexNLJoin rather than executed
// through this dispatcher, so it produces no observation of its own.
func (ex *Executor) dispatch(n *optimizer.Node, col *feedback.Collector) (*resultSet, float64, error) {
	switch n.Op {
	case optimizer.OpTableScan:
		return ex.execScan(n)
	case optimizer.OpIndexSeek:
		return ex.execSeek(n)
	case optimizer.OpHashJoin:
		return ex.execHashJoin(n, col)
	case optimizer.OpMergeJoin:
		return ex.execMergeJoin(n, col)
	case optimizer.OpNestedLoopJoin:
		return ex.execNLJoin(n, col)
	case optimizer.OpIndexNLJoin:
		return ex.execIndexNLJoin(n, col)
	case optimizer.OpHashAggregate:
		return ex.execHashAgg(n, col)
	case optimizer.OpStreamAggregate:
		return ex.execStreamAgg(n, col)
	case optimizer.OpSort:
		return ex.execSort(n, col)
	default:
		return nil, 0, fmt.Errorf("executor: unsupported operator %s", n.Op)
	}
}

// tableResultSet maps every column of the table into the output.
func tableResultSet(td *storage.TableData) *resultSet {
	cols := make(map[string]int, len(td.Schema.Columns))
	tn := strings.ToLower(td.Schema.Name)
	for i, c := range td.Schema.Columns {
		cols[tn+"."+strings.ToLower(c.Name)] = i
	}
	return &resultSet{cols: cols}
}

func evalFilters(rs *resultSet, filters []query.Filter, row []catalog.Datum) (bool, error) {
	for _, f := range filters {
		p, err := rs.colPos(f.Col)
		if err != nil {
			return false, err
		}
		ok, err := f.Op.Eval(row[p], f.Val)
		if err != nil {
			return false, fmt.Errorf("executor: evaluating %s: %w", f, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func (ex *Executor) execScan(n *optimizer.Node) (*resultSet, float64, error) {
	td, err := ex.db.Table(n.Table)
	if err != nil {
		return nil, 0, err
	}
	rs := tableResultSet(td)
	cost := float64(td.RowCount()) * optimizer.CostRowScan
	var ferr error
	td.Scan(func(_ int, r storage.Row) bool {
		ok, err := evalFilters(rs, n.Filters, r)
		if err != nil {
			ferr = err
			return false
		}
		if ok {
			rs.rows = append(rs.rows, append([]catalog.Datum(nil), r...))
		}
		return true
	})
	return rs, cost, ferr
}

// seekBounds derives the index range from the seek filters.
func seekBounds(filters []query.Filter) (lo, hi *catalog.Datum, loInc, hiInc bool) {
	loInc, hiInc = true, true
	for _, f := range filters {
		v := f.Val
		switch f.Op {
		case query.Eq:
			// Reset inclusivity along with the bounds: an earlier exclusive
			// bound (e.g. "> 1 AND = 2") must not turn the point range
			// [2, 2] into the empty range (2, 2]. Contradictory residual
			// filters are re-checked per fetched row, so an over-wide point
			// range is safe; an empty one silently loses rows.
			lo, hi = &v, &v
			loInc, hiInc = true, true
		case query.Lt:
			if hi == nil || v.Compare(*hi) <= 0 {
				hi, hiInc = &v, false
			}
		case query.Le:
			if hi == nil || v.Compare(*hi) < 0 {
				hi, hiInc = &v, true
			}
		case query.Gt:
			if lo == nil || v.Compare(*lo) >= 0 {
				lo, loInc = &v, false
			}
		case query.Ge:
			if lo == nil || v.Compare(*lo) > 0 {
				lo, loInc = &v, true
			}
		}
	}
	return lo, hi, loInc, hiInc
}

func (ex *Executor) execSeek(n *optimizer.Node) (*resultSet, float64, error) {
	td, err := ex.db.Table(n.Table)
	if err != nil {
		return nil, 0, err
	}
	ix, ok := td.IndexOn(n.IndexCol)
	if !ok {
		return nil, 0, fmt.Errorf("executor: no index on %s.%s", n.Table, n.IndexCol)
	}
	lo, hi, loInc, hiInc := seekBounds(n.SeekFilters)
	ids := ix.SeekRange(lo, hi, loInc, hiInc)
	rs := tableResultSet(td)
	cost := optimizer.SeekCost(float64(td.RowCount()))
	for _, id := range ids {
		r, live := td.Get(id)
		if !live {
			continue
		}
		cost += optimizer.CostRowFetch
		ok, err := evalFilters(rs, n.Filters, r)
		if err != nil {
			return nil, 0, err
		}
		if ok {
			rs.rows = append(rs.rows, append([]catalog.Datum(nil), r...))
		}
	}
	return rs, cost, nil
}

// mergeCols concatenates two column maps, with right offsets shifted.
func mergeCols(l, r *resultSet) map[string]int {
	cols := make(map[string]int, len(l.cols)+len(r.cols))
	for k, v := range l.cols {
		cols[k] = v
	}
	lw := rowWidth(l)
	for k, v := range r.cols {
		cols[k] = lw + v
	}
	return cols
}

func rowWidth(rs *resultSet) int {
	w := 0
	for _, v := range rs.cols {
		if v+1 > w {
			w = v + 1
		}
	}
	return w
}

func concatRows(l, r []catalog.Datum) []catalog.Datum {
	out := make([]catalog.Datum, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

// joinKeys resolves each predicate to (leftPos, rightPos), swapping sides if
// the optimizer oriented the predicate the other way.
func joinKeys(l, r *resultSet, preds []query.JoinPred) ([][2]int, error) {
	keys := make([][2]int, len(preds))
	for i, p := range preds {
		lp, lerr := l.colPos(p.Left)
		rp, rerr := r.colPos(p.Right)
		if lerr == nil && rerr == nil {
			keys[i] = [2]int{lp, rp}
			continue
		}
		lp, lerr = l.colPos(p.Right)
		rp, rerr = r.colPos(p.Left)
		if lerr == nil && rerr == nil {
			keys[i] = [2]int{lp, rp}
			continue
		}
		return nil, fmt.Errorf("executor: cannot resolve join predicate %s", p)
	}
	return keys, nil
}

func hashKey(row []catalog.Datum, pos []int) string {
	var b strings.Builder
	for _, p := range pos {
		d := row[p]
		if d.Null {
			b.WriteString("\x00N")
			continue
		}
		switch d.T {
		case catalog.String:
			fmt.Fprintf(&b, "\x00s%s", d.S)
		case catalog.Float:
			fmt.Fprintf(&b, "\x00f%v", d.F)
		default:
			fmt.Fprintf(&b, "\x00i%d", d.I)
		}
	}
	return b.String()
}

func (ex *Executor) execHashJoin(n *optimizer.Node, col *feedback.Collector) (*resultSet, float64, error) {
	l, lc, err := ex.exec(n.Children[0], col)
	if err != nil {
		return nil, 0, err
	}
	r, rc, err := ex.exec(n.Children[1], col)
	if err != nil {
		return nil, 0, err
	}
	keys, err := joinKeys(l, r, n.Joins)
	if err != nil {
		return nil, 0, err
	}
	lpos := make([]int, len(keys))
	rpos := make([]int, len(keys))
	for i, k := range keys {
		lpos[i], rpos[i] = k[0], k[1]
	}
	cost := lc + rc
	// Build on the right child (matching the plan's convention).
	ht := make(map[string][][]catalog.Datum, len(r.rows))
	for _, row := range r.rows {
		if anyNull(row, rpos) {
			continue
		}
		k := hashKey(row, rpos)
		ht[k] = append(ht[k], row)
	}
	cost += float64(len(r.rows)) * optimizer.CostHashBuild
	out := &resultSet{cols: mergeCols(l, r)}
	for _, lrow := range l.rows {
		cost += optimizer.CostHashProbe
		if anyNull(lrow, lpos) {
			continue
		}
		for _, rrow := range ht[hashKey(lrow, lpos)] {
			out.rows = append(out.rows, concatRows(lrow, rrow))
			cost += optimizer.CostRowOut
		}
	}
	return out, cost, nil
}

func anyNull(row []catalog.Datum, pos []int) bool {
	for _, p := range pos {
		if row[p].Null {
			return true
		}
	}
	return false
}

func (ex *Executor) execMergeJoin(n *optimizer.Node, col *feedback.Collector) (*resultSet, float64, error) {
	l, lc, err := ex.exec(n.Children[0], col)
	if err != nil {
		return nil, 0, err
	}
	r, rc, err := ex.exec(n.Children[1], col)
	if err != nil {
		return nil, 0, err
	}
	keys, err := joinKeys(l, r, n.Joins)
	if err != nil {
		return nil, 0, err
	}
	lpos := make([]int, len(keys))
	rpos := make([]int, len(keys))
	for i, k := range keys {
		lpos[i], rpos[i] = k[0], k[1]
	}
	cost := lc + rc +
		optimizer.SortCost(float64(len(l.rows))) + optimizer.SortCost(float64(len(r.rows))) +
		float64(len(l.rows)) + float64(len(r.rows))
	sortRows(l.rows, lpos)
	sortRows(r.rows, rpos)
	out := &resultSet{cols: mergeCols(l, r)}
	i, j := 0, 0
	for i < len(l.rows) && j < len(r.rows) {
		if anyNull(l.rows[i], lpos) {
			i++
			continue
		}
		if anyNull(r.rows[j], rpos) {
			j++
			continue
		}
		c := compareKeys(l.rows[i], lpos, r.rows[j], rpos)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Emit the cross product of the two equal-key groups.
			i2 := i
			for i2 < len(l.rows) && compareKeys(l.rows[i2], lpos, r.rows[j], rpos) == 0 {
				i2++
			}
			j2 := j
			for j2 < len(r.rows) && compareKeys(l.rows[i], lpos, r.rows[j2], rpos) == 0 {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					out.rows = append(out.rows, concatRows(l.rows[a], r.rows[b]))
					cost += optimizer.CostRowOut
				}
			}
			i, j = i2, j2
		}
	}
	return out, cost, nil
}

func sortRows(rows [][]catalog.Datum, pos []int) {
	sort.SliceStable(rows, func(a, b int) bool {
		for _, p := range pos {
			c := rows[a][p].Compare(rows[b][p])
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
}

func compareKeys(lrow []catalog.Datum, lpos []int, rrow []catalog.Datum, rpos []int) int {
	for i := range lpos {
		c := lrow[lpos[i]].Compare(rrow[rpos[i]])
		if c != 0 {
			return c
		}
	}
	return 0
}

func (ex *Executor) execNLJoin(n *optimizer.Node, col *feedback.Collector) (*resultSet, float64, error) {
	l, lc, err := ex.exec(n.Children[0], col)
	if err != nil {
		return nil, 0, err
	}
	r, rc, err := ex.exec(n.Children[1], col)
	if err != nil {
		return nil, 0, err
	}
	keys, err := joinKeys(l, r, n.Joins)
	if err != nil {
		return nil, 0, err
	}
	// The inner subtree is logically re-evaluated per outer row; we
	// materialize once and charge its cost per outer iteration, matching
	// the plan cost model. With equi-join predicates the matching itself is
	// done through a hash table: the COST charged is still the nested-loop
	// cost (that mispriced plans hurt is the point of the experiments), but
	// wall-clock time stays near-linear instead of O(|L|·|R|).
	outer := float64(len(l.rows))
	if outer < 1 {
		outer = 1
	}
	cost := lc + outer*rc
	out := &resultSet{cols: mergeCols(l, r)}
	if len(keys) > 0 {
		lpos := make([]int, len(keys))
		rpos := make([]int, len(keys))
		for i, k := range keys {
			lpos[i], rpos[i] = k[0], k[1]
		}
		ht := make(map[string][][]catalog.Datum, len(r.rows))
		for _, rrow := range r.rows {
			if !anyNull(rrow, rpos) {
				k := hashKey(rrow, rpos)
				ht[k] = append(ht[k], rrow)
			}
		}
		for _, lrow := range l.rows {
			if anyNull(lrow, lpos) {
				continue
			}
			for _, rrow := range ht[hashKey(lrow, lpos)] {
				out.rows = append(out.rows, concatRows(lrow, rrow))
				cost += optimizer.CostRowOut
			}
		}
		return out, cost, nil
	}
	for _, lrow := range l.rows {
		for _, rrow := range r.rows {
			out.rows = append(out.rows, concatRows(lrow, rrow))
			cost += optimizer.CostRowOut
		}
	}
	return out, cost, nil
}

func (ex *Executor) execIndexNLJoin(n *optimizer.Node, col *feedback.Collector) (*resultSet, float64, error) {
	l, lc, err := ex.exec(n.Children[0], col)
	if err != nil {
		return nil, 0, err
	}
	inner := n.Children[1]
	if inner.Op != optimizer.OpTableScan && inner.Op != optimizer.OpIndexSeek {
		return nil, 0, fmt.Errorf("executor: index NL join inner must be a base table, got %s", inner.Op)
	}
	td, err := ex.db.Table(inner.Table)
	if err != nil {
		return nil, 0, err
	}
	ix, ok := td.IndexOn(n.IndexCol)
	if !ok {
		return nil, 0, fmt.Errorf("executor: no index on %s.%s", inner.Table, n.IndexCol)
	}
	r := tableResultSet(td)
	keys, err := joinKeys(l, r, n.Joins)
	if err != nil {
		return nil, 0, err
	}
	// Find which predicate drives the index.
	ixPred := -1
	for i, p := range n.Joins {
		side := p.Right
		if !strings.EqualFold(side.Table, inner.Table) {
			side = p.Left
		}
		if strings.EqualFold(side.Column, n.IndexCol) {
			ixPred = i
			break
		}
	}
	if ixPred < 0 {
		return nil, 0, fmt.Errorf("executor: index NL join predicate for column %s not found", n.IndexCol)
	}
	cost := lc
	seek := optimizer.SeekCost(float64(td.RowCount()))
	out := &resultSet{cols: mergeCols(l, r)}
	for _, lrow := range l.rows {
		cost += seek
		key := lrow[keys[ixPred][0]]
		if key.Null {
			continue
		}
		for _, id := range ix.SeekEqual(key) {
			rrow, live := td.Get(id)
			if !live {
				continue
			}
			cost += optimizer.CostRowFetch
			pass, err := evalFilters(r, inner.Filters, rrow)
			if err != nil {
				return nil, 0, err
			}
			if !pass {
				continue
			}
			match := true
			for ki, k := range keys {
				if ki == ixPred {
					continue
				}
				if lrow[k[0]].Null || rrow[k[1]].Null || lrow[k[0]].Compare(rrow[k[1]]) != 0 {
					match = false
					break
				}
			}
			if match {
				out.rows = append(out.rows, concatRows(lrow, rrow))
				cost += optimizer.CostRowOut
			}
		}
	}
	return out, cost, nil
}

func (ex *Executor) execHashAgg(n *optimizer.Node, col *feedback.Collector) (*resultSet, float64, error) {
	in, c, err := ex.exec(n.Children[0], col)
	if err != nil {
		return nil, 0, err
	}
	// Scalar aggregate: no grouping columns, one output row.
	if len(n.GroupBy) == 0 {
		states, err := newAggStates(in, n.Aggregates)
		if err != nil {
			return nil, 0, err
		}
		for _, row := range in.rows {
			for i := range states {
				states[i].update(row)
			}
		}
		tuple := make([]catalog.Datum, len(states))
		for i := range states {
			tuple[i] = states[i].final()
		}
		out := &resultSet{cols: aggOutputCols(nil, n.Aggregates), rows: [][]catalog.Datum{tuple}}
		out, err = applyHaving(out, n.Having)
		if err != nil {
			return nil, 0, err
		}
		return out, c + optimizer.CostStreamRow*float64(len(in.rows)) + optimizer.CostRowOut, nil
	}

	pos := make([]int, len(n.GroupBy))
	for i, g := range n.GroupBy {
		p, err := in.colPos(g)
		if err != nil {
			return nil, 0, err
		}
		pos[i] = p
	}
	type group struct {
		tuple  []catalog.Datum
		states []aggState
	}
	groups := make(map[string]*group)
	var order []string
	for _, row := range in.rows {
		k := hashKey(row, pos)
		g, ok := groups[k]
		if !ok {
			tuple := make([]catalog.Datum, len(pos))
			for i, p := range pos {
				tuple[i] = row[p]
			}
			states, err := newAggStates(in, n.Aggregates)
			if err != nil {
				return nil, 0, err
			}
			g = &group{tuple: tuple, states: states}
			groups[k] = g
			order = append(order, k)
		}
		for i := range g.states {
			g.states[i].update(row)
		}
	}
	cost := c + optimizer.HashAggCost(float64(len(in.rows)), float64(len(groups)))
	out := &resultSet{cols: aggOutputCols(n.GroupBy, n.Aggregates)}
	for _, k := range order {
		g := groups[k]
		row := g.tuple
		for i := range g.states {
			row = append(row, g.states[i].final())
		}
		out.rows = append(out.rows, row)
	}
	out, err = applyHaving(out, n.Having)
	if err != nil {
		return nil, 0, err
	}
	return out, cost, nil
}

func (ex *Executor) execStreamAgg(n *optimizer.Node, col *feedback.Collector) (*resultSet, float64, error) {
	in, c, err := ex.exec(n.Children[0], col)
	if err != nil {
		return nil, 0, err
	}
	pos := make([]int, len(n.GroupBy))
	for i, g := range n.GroupBy {
		p, err := in.colPos(g)
		if err != nil {
			return nil, 0, err
		}
		pos[i] = p
	}
	sortRows(in.rows, pos)
	out := &resultSet{cols: aggOutputCols(n.GroupBy, n.Aggregates)}
	var states []aggState
	flush := func(boundary []catalog.Datum) {
		row := make([]catalog.Datum, len(pos), len(pos)+len(states))
		copy(row, boundary)
		for i := range states {
			row = append(row, states[i].final())
		}
		out.rows = append(out.rows, row)
	}
	var curKey []catalog.Datum
	for i, row := range in.rows {
		newGroup := i == 0 || compareKeys(row, pos, in.rows[i-1], pos) != 0
		if newGroup {
			if i > 0 {
				flush(curKey)
			}
			curKey = make([]catalog.Datum, len(pos))
			for k, p := range pos {
				curKey[k] = row[p]
			}
			var err error
			states, err = newAggStates(in, n.Aggregates)
			if err != nil {
				return nil, 0, err
			}
		}
		for k := range states {
			states[k].update(row)
		}
	}
	if len(in.rows) > 0 {
		flush(curKey)
	}
	cost := c + optimizer.StreamAggCost(float64(len(in.rows)), float64(len(out.rows)))
	out, err = applyHaving(out, n.Having)
	if err != nil {
		return nil, 0, err
	}
	return out, cost, nil
}

func (ex *Executor) execSort(n *optimizer.Node, col *feedback.Collector) (*resultSet, float64, error) {
	in, c, err := ex.exec(n.Children[0], col)
	if err != nil {
		return nil, 0, err
	}
	pos := make([]int, len(n.SortBy))
	for i, s := range n.SortBy {
		p, err := in.colPos(s)
		if err != nil {
			return nil, 0, err
		}
		pos[i] = p
	}
	sortRows(in.rows, pos)
	return in, c + optimizer.SortCost(float64(len(in.rows))), nil
}
