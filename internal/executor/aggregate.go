package executor

import (
	"fmt"

	"autostats/internal/catalog"
	"autostats/internal/query"
)

// aggState accumulates one aggregate expression over a group, with SQL NULL
// semantics: NULL inputs are skipped; empty groups yield NULL (except COUNT,
// which yields 0).
type aggState struct {
	fn    query.AggFunc
	pos   int // input column position; -1 for COUNT(*)
	count int64
	sum   float64
	isInt bool
	min   catalog.Datum
	max   catalog.Datum
	seen  bool
}

func newAggStates(rs *resultSet, aggs []query.Aggregate) ([]aggState, error) {
	out := make([]aggState, len(aggs))
	for i, a := range aggs {
		st := aggState{fn: a.Func, pos: -1}
		if a.Func != query.CountStar {
			p, err := rs.colPos(a.Col)
			if err != nil {
				return nil, fmt.Errorf("executor: aggregate %s: %w", a.SQL(), err)
			}
			st.pos = p
		}
		out[i] = st
	}
	return out, nil
}

func (s *aggState) update(row []catalog.Datum) {
	if s.fn == query.CountStar {
		s.count++
		return
	}
	v := row[s.pos]
	if v.Null {
		return
	}
	s.count++
	switch s.fn {
	case query.Sum, query.Avg:
		if v.T == catalog.Float {
			s.sum += v.F
		} else {
			s.sum += float64(v.I)
			s.isInt = v.T == catalog.Int
		}
	case query.Min:
		if !s.seen || v.Compare(s.min) < 0 {
			s.min = v
		}
	case query.Max:
		if !s.seen || v.Compare(s.max) > 0 {
			s.max = v
		}
	}
	s.seen = true
}

func (s *aggState) final() catalog.Datum {
	switch s.fn {
	case query.CountStar, query.Count:
		return catalog.NewInt(s.count)
	case query.Sum:
		if s.count == 0 {
			return catalog.NewNull(catalog.Float)
		}
		if s.isInt {
			return catalog.NewInt(int64(s.sum))
		}
		return catalog.NewFloat(s.sum)
	case query.Avg:
		if s.count == 0 {
			return catalog.NewNull(catalog.Float)
		}
		return catalog.NewFloat(s.sum / float64(s.count))
	case query.Min:
		if !s.seen {
			return catalog.NewNull(catalog.Float)
		}
		return s.min
	case query.Max:
		if !s.seen {
			return catalog.NewNull(catalog.Float)
		}
		return s.max
	default:
		return catalog.NewNull(catalog.Float)
	}
}

// aggOutputCols builds the output column map of an aggregate node: group
// columns first, then aggregate expressions keyed by Aggregate.Key().
func aggOutputCols(groupBy []query.ColumnRef, aggs []query.Aggregate) map[string]int {
	cols := make(map[string]int, len(groupBy)+len(aggs))
	for i, g := range groupBy {
		cols[colKey(g)] = i
	}
	for i, a := range aggs {
		cols[a.Key()] = len(groupBy) + i
	}
	return cols
}

// applyHaving filters aggregate output rows by the HAVING predicates, with
// SQL NULL semantics (a NULL aggregate never satisfies a predicate).
func applyHaving(out *resultSet, having []query.HavingPred) (*resultSet, error) {
	if len(having) == 0 {
		return out, nil
	}
	kept := out.rows[:0]
	for _, row := range out.rows {
		ok := true
		for _, h := range having {
			p, exists := out.cols[h.Agg.Key()]
			if !exists {
				return nil, fmt.Errorf("executor: HAVING references uncomputed aggregate %s", h.Agg.SQL())
			}
			match, err := h.Op.Eval(row[p], h.Val)
			if err != nil {
				return nil, fmt.Errorf("executor: evaluating HAVING %s: %w", h.Agg.SQL(), err)
			}
			if !match {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, row)
		}
	}
	out.rows = kept
	return out, nil
}
