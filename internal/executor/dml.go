package executor

import (
	"fmt"

	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/storage"
)

// RunStatement executes any statement. Queries are optimized with the given
// session first; DML goes straight to storage.
func (ex *Executor) RunStatement(sess *optimizer.Session, stmt query.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *query.Select:
		plan, err := sess.Optimize(s)
		if err != nil {
			return nil, err
		}
		return ex.Run(plan)
	case *query.Insert:
		return ex.runInsert(s)
	case *query.Delete:
		return ex.runDelete(s)
	case *query.Update:
		return ex.runUpdate(s)
	default:
		return nil, fmt.Errorf("executor: unsupported statement type %T", stmt)
	}
}

func (ex *Executor) runInsert(s *query.Insert) (*Result, error) {
	td, err := ex.db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	if err := td.Insert(storage.Row(s.Values)); err != nil {
		return nil, err
	}
	return &Result{Affected: 1, Cost: 1}, nil
}

// matchingIDs scans the table for rows satisfying the filters, charging a
// full-scan cost (DML in this engine always scans; its cost is dominated by
// table size, which is what the update-cost experiments measure).
func (ex *Executor) matchingIDs(td *storage.TableData, filters []query.Filter) ([]int, float64, error) {
	rs := tableResultSet(td)
	var ids []int
	var ferr error
	td.Scan(func(id int, r storage.Row) bool {
		ok, err := evalFilters(rs, filters, r)
		if err != nil {
			ferr = err
			return false
		}
		if ok {
			ids = append(ids, id)
		}
		return true
	})
	return ids, float64(td.RowCount()) * optimizer.CostRowScan, ferr
}

func (ex *Executor) runDelete(s *query.Delete) (*Result, error) {
	td, err := ex.db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	ids, cost, err := ex.matchingIDs(td, s.Filters)
	if err != nil {
		return nil, err
	}
	n := td.Delete(ids)
	return &Result{Affected: n, Cost: cost + float64(n)}, nil
}

func (ex *Executor) runUpdate(s *query.Update) (*Result, error) {
	td, err := ex.db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	col := td.Schema.ColumnIndex(s.SetCol)
	if col < 0 {
		return nil, fmt.Errorf("executor: update %s: unknown column %s", s.Table, s.SetCol)
	}
	ids, cost, err := ex.matchingIDs(td, s.Filters)
	if err != nil {
		return nil, err
	}
	n := td.Update(ids, col, s.SetVal)
	return &Result{Affected: n, Cost: cost + float64(n)}, nil
}
