package feedback

import (
	"fmt"
	"sync"
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/obs"
	"autostats/internal/query"
	"autostats/internal/stats"
)

// fakeVersioner lets tests move the epoch and data version by hand.
type fakeVersioner struct {
	mu    sync.Mutex
	epoch uint64
	dv    int64
}

func (f *fakeVersioner) StatsEpoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

func (f *fakeVersioner) DataVersion() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dv
}

func (f *fakeVersioner) bump(epoch uint64, dv int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.epoch, f.dv = epoch, dv
}

func testLedger(t *testing.T, cfg Config) (*Ledger, *fakeVersioner) {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	ver := &fakeVersioner{}
	return NewLedger(ver, cfg), ver
}

func observe(l *Ledger, table, cols, sig string, est float64, actual int64) {
	c := l.NewCollector()
	c.Observe(NodeObservation{Op: "Scan", Table: table, Columns: cols, Signature: sig, EstRows: est, ActualRows: actual})
	c.Flush()
}

func TestQError(t *testing.T) {
	cases := []struct {
		est, actual, want float64
	}{
		{10, 10, 1},
		{10, 1000, 100},
		{1000, 10, 100},
		{0, 0, 1},     // both floored to one row
		{0.2, 50, 50}, // estimate floored to one row
	}
	for _, c := range cases {
		if got := QError(c.est, float64(c.actual)); got != c.want {
			t.Errorf("QError(%g, %g) = %g, want %g", c.est, c.actual, got, c.want)
		}
	}
}

func TestFilterSignatureOrderIndependent(t *testing.T) {
	a := query.Filter{Col: query.ColumnRef{Table: "T", Column: "A"}, Op: query.Gt, Val: catalog.NewInt(5)}
	b := query.Filter{Col: query.ColumnRef{Table: "T", Column: "B"}, Op: query.Eq, Val: catalog.NewInt(7)}
	if query.FilterSignature([]query.Filter{a, b}) != query.FilterSignature([]query.Filter{b, a}) {
		t.Error("FilterSignature should be clause-order independent")
	}
	if query.FilterColumns([]query.Filter{a, b, a}) != "a,b" {
		t.Errorf("FilterColumns = %q, want %q", query.FilterColumns([]query.Filter{a, b, a}), "a,b")
	}
}

func TestLedgerAggregationAndSummaries(t *testing.T) {
	l, _ := testLedger(t, Config{})
	observe(l, "lineitem", "l_quantity", "l_quantity>45", 10, 1000)
	observe(l, "lineitem", "l_quantity", "l_quantity>45", 10, 1000)
	observe(l, "orders", "o_orderdate", "o_orderdate>100", 50, 50)

	sums := l.QErrorSummaries()
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2: %+v", len(sums), sums)
	}
	li := sums[0]
	if li.Table != "lineitem" || li.Column != "l_quantity" {
		t.Fatalf("unexpected first summary %+v", li)
	}
	if li.Count != 2 || li.MaxQ != 100 || li.MeanQ < 99 || li.MeanQ > 101 {
		t.Errorf("lineitem summary = %+v, want count 2, maxQ 100, meanQ ~100", li)
	}
	if sums[1].MaxQ != 1 {
		t.Errorf("orders summary maxQ = %g, want 1", sums[1].MaxQ)
	}
}

func TestLedgerCorrectionLifecycle(t *testing.T) {
	l, ver := testLedger(t, Config{MinObservations: 2})

	// Below MinObservations: no correction yet.
	observe(l, "t", "a", "a>1", 10, 1000)
	if _, ok := l.CorrectSelectivity("t", "a", "a>1"); ok {
		t.Fatal("correction applied before MinObservations")
	}
	v0 := l.Version()

	// Second observation publishes a correction and bumps the version.
	observe(l, "t", "a", "a>1", 10, 1000)
	f, ok := l.CorrectSelectivity("t", "a", "a>1")
	if !ok || f < 99 || f > 101 {
		t.Fatalf("correction = %g, %v; want ~100, true", f, ok)
	}
	if l.Version() == v0 {
		t.Error("publishing a correction should bump the ledger version")
	}

	// Unknown signature misses.
	if _, ok := l.CorrectSelectivity("t", "a", "a>999"); ok {
		t.Error("unknown signature should miss")
	}

	// Epoch change invalidates the evidence window: no correction, no summary.
	ver.bump(1, 0)
	if _, ok := l.CorrectSelectivity("t", "a", "a>1"); ok {
		t.Error("correction survived an epoch bump")
	}
	if len(l.QErrorSummaries()) != 0 {
		t.Error("summaries survived an epoch bump")
	}

	// New observation under the new stamp resets the window and re-learns.
	observe(l, "t", "a", "a>1", 500, 1000)
	observe(l, "t", "a", "a>1", 500, 1000)
	f, ok = l.CorrectSelectivity("t", "a", "a>1")
	if !ok || f < 1.9 || f > 2.1 {
		t.Fatalf("re-learned correction = %g, %v; want ~2, true", f, ok)
	}
	st := l.Stats()
	if st.Resets != 1 {
		t.Errorf("resets = %d, want 1", st.Resets)
	}
}

func TestLedgerEviction(t *testing.T) {
	l, _ := testLedger(t, Config{Capacity: 2})
	observe(l, "t", "a", "a=1", 1, 1)
	observe(l, "t", "a", "a=2", 1, 1)
	observe(l, "t", "a", "a=3", 1, 1) // evicts a=1
	st := l.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("entries=%d evictions=%d, want 2 and 1", st.Entries, st.Evictions)
	}
	// a=2 is older than a=3; touching a=2 then adding a=4 must evict a=3.
	observe(l, "t", "a", "a=2", 1, 1)
	observe(l, "t", "a", "a=4", 1, 1)
	found := map[string]bool{}
	for _, e := range l.Entries() {
		found[e.Key.Signature] = true
	}
	if !found["a=2"] || !found["a=4"] || found["a=3"] {
		t.Errorf("LRU order violated; surviving entries: %v", found)
	}
}

func TestLedgerConcurrentAccess(t *testing.T) {
	l, ver := testLedger(t, Config{Capacity: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sig := fmt.Sprintf("a>%d", i%100)
				observe(l, "t", "a", sig, 10, int64(10+i%7))
				l.CorrectSelectivity("t", "a", sig)
				l.QErrorSummaries()
				if i%50 == 0 {
					ver.bump(uint64(g), int64(i))
				}
			}
		}(g)
	}
	wg.Wait()
	if st := l.Stats(); st.Observations != 1600 {
		t.Errorf("observations = %d, want 1600", st.Observations)
	}
}

func TestNilLedgerAndCollector(t *testing.T) {
	var l *Ledger
	c := l.NewCollector()
	if c != nil {
		t.Fatal("nil ledger should hand out a nil collector")
	}
	c.Observe(NodeObservation{Op: "Scan", Table: "t"})
	c.Flush()
	if c.Nodes() != nil {
		t.Error("nil collector should report no nodes")
	}
	if _, ok := l.CorrectSelectivity("t", "a", "a=1"); ok {
		t.Error("nil ledger returned a correction")
	}
	if l.QErrorSummaries() != nil || l.Entries() != nil || l.Version() != 0 {
		t.Error("nil ledger accessors should return zero values")
	}
	_ = l.Stats()
}

// TestManagerVersions pins the adapter to the manager's epoch and the
// database's data version.
func TestManagerVersions(t *testing.T) {
	// A nil-db manager is not constructible here without storage fixtures;
	// the adapter is exercised end-to-end in the bench and facade tests. This
	// test just checks the zero-value behaviour of NewLedger(nil, ...).
	l := NewLedger(nil, Config{Obs: obs.New()})
	observe(l, "t", "a", "a=1", 1, 1)
	if len(l.QErrorSummaries()) != 1 {
		t.Error("zero versioner should keep entries current forever")
	}
}

var _ stats.FeedbackProvider = (*Ledger)(nil)
