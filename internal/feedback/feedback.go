// Package feedback closes the loop between the executor and the statistics
// manager: the executor records per-plan-node actual cardinalities, a
// bounded-memory ledger aggregates them into q-error summaries keyed by
// (table, column set, predicate signature), and two consumers act on them —
// the maintenance policy refreshes statistics whose observed q-error exceeds
// a threshold even when row-modification counters have not fired
// (stats.FeedbackProvider), and the optimizer applies learned selectivity
// corrections for previously seen predicate signatures (the Ledger's
// CorrectSelectivity method).
//
// Q-error is max(est, actual) / min(est, actual) with both sides floored at
// one row: 1.0 means a perfect estimate and the metric is symmetric in over-
// and under-estimation.
//
// Invalidation follows the plan cache's scheme: every observation is stamped
// with the statistics epoch and storage data version current when its
// execution started. An entry whose stamp no longer matches is a stale
// evidence window — it is reset on the next observation, excluded from
// q-error summaries, and its correction is not applied. A feedback-triggered
// refresh therefore cannot re-fire on the evidence that caused it: the
// refresh bumps the epoch, which retires the evidence.
package feedback

import (
	"strings"

	"autostats/internal/query"
)

// QError returns max(est,actual)/min(est,actual) with both sides floored at
// one row.
func QError(est, actual float64) float64 {
	if est < 1 {
		est = 1
	}
	if actual < 1 {
		actual = 1
	}
	if est > actual {
		return est / actual
	}
	return actual / est
}

// Key identifies one feedback ledger entry: the base table, the distinct
// filter columns (sorted, comma-joined), and the full canonical predicate
// signature including constants. Two queries that filter the same columns
// with different constants share (Table, Columns) — the granularity at which
// per-statistic accuracy is judged — but keep separate signatures, the
// granularity at which selectivity corrections are learned.
type Key struct {
	Table     string
	Columns   string
	Signature string
}

// NodeObservation is one plan operator's estimated-vs-actual row counts from
// a single execution. Table, Columns and Signature are set only for base
// table access operators (scan/seek); other operators report counts for
// accounting and tests but are not absorbed into the ledger.
type NodeObservation struct {
	// Op is the plan operator name ("Scan", "HashJoin", ...).
	Op string
	// Table is the lower-cased base table for scan/seek operators, "" else.
	Table string
	// Columns is the canonical filter column set (query.FilterColumns).
	Columns string
	// Signature is the canonical predicate signature (query.FilterSignature).
	Signature string
	// EstRows is the optimizer's estimate with any learned correction backed
	// out — the raw cost-model estimate, so q-errors always measure the
	// underlying statistics, not the correction layer.
	EstRows float64
	// ActualRows is the executor's materialized row count for the node.
	ActualRows int64
}

// ScanObservation builds the observation for a base-table access operator
// from its filter set. It is shared by the executor (recording) so table,
// column-set and signature canonicalization can never drift from the
// optimizer's view of the same predicate.
func ScanObservation(op, table string, filters []query.Filter, estRows float64, actualRows int64) NodeObservation {
	return NodeObservation{
		Op:         op,
		Table:      strings.ToLower(table),
		Columns:    query.FilterColumns(filters),
		Signature:  query.FilterSignature(filters),
		EstRows:    estRows,
		ActualRows: actualRows,
	}
}

// Collector gathers one execution's node observations. It is created per
// Executor.Run via Ledger.NewCollector (stamping the statistics epoch and
// data version at execution start) and is not safe for concurrent use — each
// running query owns its own collector. All methods are nil-safe so the
// executor's disabled path stays allocation-free: with no ledger attached the
// collector is nil and Observe/Flush are no-ops.
type Collector struct {
	led         *Ledger
	epoch       uint64
	dataVersion int64
	nodes       []NodeObservation
	// baseRows maps lower-cased table names to the optimizer's raw
	// pre-correction filtered-row estimate (see SetBaseRows).
	baseRows map[string]float64
}

// SetBaseRows installs the plan's raw (pre-correction) base-table row
// estimates. When the optimizer applied a learned correction to a table's
// selectivity, the plan node's EstRows reflects the corrected value;
// RawEstimate backs it out so the ledger always measures the underlying
// statistics. No-op on a nil collector.
func (c *Collector) SetBaseRows(m map[string]float64) {
	if c == nil {
		return
	}
	c.baseRows = m
}

// RawEstimate returns the raw pre-correction estimate for a base table,
// falling back to est when no correction was applied.
func (c *Collector) RawEstimate(table string, est float64) float64 {
	if c == nil {
		return est
	}
	if v, ok := c.baseRows[strings.ToLower(table)]; ok {
		return v
	}
	return est
}

// Observe appends one node observation. No-op on a nil collector.
func (c *Collector) Observe(o NodeObservation) {
	if c == nil {
		return
	}
	c.nodes = append(c.nodes, o)
}

// Nodes returns the observations recorded so far, in plan post-order.
func (c *Collector) Nodes() []NodeObservation {
	if c == nil {
		return nil
	}
	return c.nodes
}

// Flush absorbs the collected base-table observations into the ledger.
// Callers flush only after a successful execution so partial runs never
// feed the ledger. No-op on a nil collector.
func (c *Collector) Flush() {
	if c == nil || c.led == nil {
		return
	}
	c.led.absorb(c)
}
