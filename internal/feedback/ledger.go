package feedback

import (
	"container/list"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"autostats/internal/obs"
	"autostats/internal/stats"
)

// Versioner supplies the current statistics epoch and storage data version —
// the same pair the optimizer's plan cache keys on. Observations and learned
// corrections are valid only while both still match the values stamped at
// execution time.
type Versioner interface {
	StatsEpoch() uint64
	DataVersion() int64
}

// ManagerVersions adapts a stats.Manager (and its database) into a Versioner.
func ManagerVersions(m *stats.Manager) Versioner { return managerVersioner{m} }

type managerVersioner struct{ m *stats.Manager }

func (v managerVersioner) StatsEpoch() uint64 { return v.m.Epoch() }
func (v managerVersioner) DataVersion() int64 { return v.m.Database().DataVersion() }

// zeroVersioner pins both versions to zero: entries never invalidate. Used
// when no Versioner is supplied (tests, standalone ledgers).
type zeroVersioner struct{}

func (zeroVersioner) StatsEpoch() uint64 { return 0 }
func (zeroVersioner) DataVersion() int64 { return 0 }

// DefaultCapacity bounds the ledger when Config.Capacity is zero.
const DefaultCapacity = 4096

// DefaultMaxCorrection clamps learned selectivity correction factors to
// [1/DefaultMaxCorrection, DefaultMaxCorrection] when Config.MaxCorrection
// is zero.
const DefaultMaxCorrection = 1000

// Config tunes a Ledger. The zero value selects the documented defaults.
type Config struct {
	// Capacity bounds the number of ledger entries; the least recently
	// observed or applied entry is evicted first. <=0 means DefaultCapacity.
	Capacity int
	// MinObservations is how many observations an entry needs in its current
	// evidence window before its correction is applied and its q-error
	// summary is trusted. <=0 means 1.
	MinObservations int64
	// MaxCorrection clamps correction factors. <=0 means DefaultMaxCorrection.
	MaxCorrection float64
	// Obs receives the ledger's metrics; nil means obs.Default.
	Obs *obs.Registry
}

// ledgerMetrics caches the ledger's observability handles (the interned-
// handle idiom of managerMetrics and sessionMetrics).
type ledgerMetrics struct {
	observations *obs.Counter
	evictions    *obs.Counter
	resets       *obs.Counter
	entries      *obs.Gauge
	qerror       *obs.Histo
	corrHits     *obs.Counter
	corrMisses   *obs.Counter
}

func newLedgerMetrics(reg *obs.Registry) ledgerMetrics {
	return ledgerMetrics{
		observations: reg.Counter("feedback.observations"),
		evictions:    reg.Counter("feedback.ledger.evictions"),
		resets:       reg.Counter("feedback.ledger.resets"),
		entries:      reg.Gauge("feedback.ledger.entries"),
		qerror:       reg.Histo("feedback.qerror"),
		corrHits:     reg.Counter("feedback.correction.hits"),
		corrMisses:   reg.Counter("feedback.correction.misses"),
	}
}

// entry is one ledger slot. Aggregates cover a single evidence window: the
// (epoch, dataVersion) pair stamped on its observations. A stamp mismatch on
// the next observation resets the window.
type entry struct {
	key         Key
	epoch       uint64
	dataVersion int64
	count       int64
	sumLogQ     float64
	maxQ        float64
	// sumLogRatio accumulates ln(actual/est) (both floored at one row) — its
	// mean exponentiated is the geometric-mean correction factor.
	sumLogRatio float64
	lastEst     float64
	lastActual  int64
	// quant is the published quantized correction (0 until MinObservations);
	// a change bumps the ledger version so cached plans re-optimize.
	quant int
}

// factor returns the entry's correction factor clamped to [1/max, max].
func (e *entry) factor(max float64) float64 {
	if e.count == 0 {
		return 1
	}
	f := math.Exp(e.sumLogRatio / float64(e.count))
	if f > max {
		return max
	}
	if f < 1/max {
		return 1 / max
	}
	return f
}

// Ledger is the concurrency-safe execution-feedback store: a bounded LRU of
// per-(table, column set, predicate signature) q-error and correction
// aggregates. It implements stats.FeedbackProvider (QErrorSummaries) for the
// maintenance policy and the optimizer's CorrectionSource (CorrectSelectivity
// / Version) for the selectivity correction cache.
type Ledger struct {
	ver     Versioner
	minObs  int64
	maxCorr float64
	met     ledgerMetrics

	// version bumps whenever any entry's published correction changes, so
	// plan-cache keys that embed it go stale exactly when estimates would.
	version atomic.Uint64

	mu           sync.Mutex
	capacity     int
	order        *list.List            // front = most recently used
	entries      map[Key]*list.Element // element value is *entry
	observations uint64
	evictions    uint64
	resets       uint64
	corrHits     uint64
	corrMisses   uint64
}

// NewLedger creates a ledger validated against ver (nil pins both versions to
// zero, disabling invalidation).
func NewLedger(ver Versioner, cfg Config) *Ledger {
	if ver == nil {
		ver = zeroVersioner{}
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.MinObservations <= 0 {
		cfg.MinObservations = 1
	}
	if cfg.MaxCorrection <= 0 {
		cfg.MaxCorrection = DefaultMaxCorrection
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default
	}
	return &Ledger{
		ver:      ver,
		minObs:   cfg.MinObservations,
		maxCorr:  cfg.MaxCorrection,
		met:      newLedgerMetrics(reg),
		capacity: cfg.Capacity,
		order:    list.New(),
		entries:  make(map[Key]*list.Element, cfg.Capacity),
	}
}

// NewCollector creates a per-execution collector stamped with the current
// statistics epoch and data version. Safe on a nil ledger (returns a nil
// collector, whose methods are all no-ops).
func (l *Ledger) NewCollector() *Collector {
	if l == nil {
		return nil
	}
	return &Collector{led: l, epoch: l.ver.StatsEpoch(), dataVersion: l.ver.DataVersion()}
}

// Version returns the corrections version for plan-cache keying: it changes
// exactly when some entry's published correction factor changes.
func (l *Ledger) Version() uint64 {
	if l == nil {
		return 0
	}
	return l.version.Load()
}

// absorb folds a collector's base-table observations into the ledger.
func (l *Ledger) absorb(c *Collector) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, o := range c.nodes {
		if o.Table == "" || o.Columns == "" {
			continue
		}
		key := Key{Table: o.Table, Columns: o.Columns, Signature: o.Signature}
		el, ok := l.entries[key]
		var e *entry
		if ok {
			e = el.Value.(*entry)
			l.order.MoveToFront(el)
		} else {
			if l.order.Len() >= l.capacity {
				oldest := l.order.Back()
				if oldest != nil {
					l.order.Remove(oldest)
					old := oldest.Value.(*entry)
					delete(l.entries, old.key)
					l.evictions++
					l.met.evictions.Inc()
					if old.quant != 0 {
						l.version.Add(1)
					}
				}
			}
			e = &entry{key: key, epoch: c.epoch, dataVersion: c.dataVersion}
			l.entries[key] = l.order.PushFront(e)
		}
		if e.epoch != c.epoch || e.dataVersion != c.dataVersion {
			// Stale evidence window: statistics or data changed since the
			// entry's observations. Start fresh under the new stamp.
			*e = entry{key: key, epoch: c.epoch, dataVersion: c.dataVersion}
			l.resets++
			l.met.resets.Inc()
		}
		q := QError(o.EstRows, float64(o.ActualRows))
		est, act := o.EstRows, float64(o.ActualRows)
		if est < 1 {
			est = 1
		}
		if act < 1 {
			act = 1
		}
		e.count++
		e.sumLogQ += math.Log(q)
		if q > e.maxQ {
			e.maxQ = q
		}
		e.sumLogRatio += math.Log(act / est)
		e.lastEst = o.EstRows
		e.lastActual = o.ActualRows
		l.observations++
		l.met.observations.Inc()
		l.met.qerror.Observe(q)
		quant := 0
		if e.count >= l.minObs {
			quant = int(math.Round(math.Log2(e.factor(l.maxCorr)) * 8))
		}
		if quant != e.quant {
			e.quant = quant
			l.version.Add(1)
		}
	}
	l.met.entries.Set(int64(l.order.Len()))
}

// CorrectSelectivity returns the learned multiplicative correction for a
// predicate signature on table, and whether one applies. A correction applies
// only when its evidence window matches the current statistics epoch and data
// version and has at least MinObservations observations.
func (l *Ledger) CorrectSelectivity(table, columns, signature string) (float64, bool) {
	if l == nil {
		return 1, false
	}
	curEpoch, curVer := l.ver.StatsEpoch(), l.ver.DataVersion()
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.entries[Key{Table: strings.ToLower(table), Columns: columns, Signature: signature}]
	if !ok {
		l.corrMisses++
		l.met.corrMisses.Inc()
		return 1, false
	}
	e := el.Value.(*entry)
	if e.epoch != curEpoch || e.dataVersion != curVer || e.count < l.minObs {
		l.corrMisses++
		l.met.corrMisses.Inc()
		return 1, false
	}
	l.order.MoveToFront(el)
	l.corrHits++
	l.met.corrHits.Inc()
	return e.factor(l.maxCorr), true
}

// QErrorSummaries implements stats.FeedbackProvider: per-(table, column)
// accuracy over entries whose evidence window matches the current statistics
// epoch and data version. Multi-column predicates attribute their q-error to
// every referenced column — evidence of "some statistic here is off", refined
// by the refresh itself.
func (l *Ledger) QErrorSummaries() []stats.QErrorSummary {
	if l == nil {
		return nil
	}
	curEpoch, curVer := l.ver.StatsEpoch(), l.ver.DataVersion()
	type agg struct {
		count   int64
		maxQ    float64
		sumLogQ float64
	}
	l.mu.Lock()
	byCol := make(map[[2]string]*agg)
	for _, el := range l.entries {
		e := el.Value.(*entry)
		if e.epoch != curEpoch || e.dataVersion != curVer || e.count == 0 {
			continue
		}
		for _, col := range strings.Split(e.key.Columns, ",") {
			k := [2]string{e.key.Table, col}
			a := byCol[k]
			if a == nil {
				a = &agg{}
				byCol[k] = a
			}
			a.count += e.count
			a.sumLogQ += e.sumLogQ
			if e.maxQ > a.maxQ {
				a.maxQ = e.maxQ
			}
		}
	}
	l.mu.Unlock()
	out := make([]stats.QErrorSummary, 0, len(byCol))
	for k, a := range byCol {
		out = append(out, stats.QErrorSummary{
			Table:  k[0],
			Column: k[1],
			Count:  a.count,
			MaxQ:   a.maxQ,
			MeanQ:  math.Exp(a.sumLogQ / float64(a.count)),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Column < out[j].Column
	})
	return out
}

// EntrySnapshot is a point-in-time copy of one ledger entry for reporting.
type EntrySnapshot struct {
	Key        Key
	Count      int64
	MaxQ       float64
	MeanQ      float64
	Correction float64
	LastEst    float64
	LastActual int64
	// Current reports whether the entry's evidence window matches the current
	// statistics epoch and data version.
	Current bool
}

// Entries returns every ledger entry, worst current q-error first. Safe on a
// nil ledger.
func (l *Ledger) Entries() []EntrySnapshot {
	if l == nil {
		return nil
	}
	curEpoch, curVer := l.ver.StatsEpoch(), l.ver.DataVersion()
	l.mu.Lock()
	out := make([]EntrySnapshot, 0, len(l.entries))
	for _, el := range l.entries {
		e := el.Value.(*entry)
		snap := EntrySnapshot{
			Key:        e.key,
			Count:      e.count,
			MaxQ:       e.maxQ,
			Correction: e.factor(l.maxCorr),
			LastEst:    e.lastEst,
			LastActual: e.lastActual,
			Current:    e.epoch == curEpoch && e.dataVersion == curVer,
		}
		if e.count > 0 {
			snap.MeanQ = math.Exp(e.sumLogQ / float64(e.count))
		}
		out = append(out, snap)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Current != out[j].Current {
			return out[i].Current
		}
		if out[i].MaxQ != out[j].MaxQ {
			return out[i].MaxQ > out[j].MaxQ
		}
		return out[i].Key.Signature < out[j].Key.Signature
	})
	return out
}

// LedgerStats is a snapshot of the ledger's cumulative counters.
type LedgerStats struct {
	Entries          int
	Observations     uint64
	Evictions        uint64
	Resets           uint64
	CorrectionHits   uint64
	CorrectionMisses uint64
	Version          uint64
}

// Stats returns the counter snapshot. Safe on a nil ledger.
func (l *Ledger) Stats() LedgerStats {
	if l == nil {
		return LedgerStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return LedgerStats{
		Entries:          l.order.Len(),
		Observations:     l.observations,
		Evictions:        l.evictions,
		Resets:           l.resets,
		CorrectionHits:   l.corrHits,
		CorrectionMisses: l.corrMisses,
		Version:          l.version.Load(),
	}
}
