package storage

import (
	"fmt"
	"strings"

	"autostats/internal/catalog"
)

// Database binds a schema to table data. It is the unit the optimizer,
// executor and statistics manager all operate on.
type Database struct {
	Name   string
	Schema *catalog.Schema
	tables map[string]*TableData
}

// NewDatabase creates an empty database for the given schema, with one
// empty TableData per schema table and secondary indexes built per the
// schema's index definitions.
func NewDatabase(name string, schema *catalog.Schema) (*Database, error) {
	db := &Database{Name: name, Schema: schema, tables: make(map[string]*TableData)}
	for key, t := range schema.Tables {
		db.tables[key] = NewTableData(t)
	}
	for _, ix := range schema.Indexes {
		td, err := db.Table(ix.Table)
		if err != nil {
			return nil, err
		}
		if err := td.CreateIndex(ix.Column); err != nil {
			return nil, fmt.Errorf("storage: building index %s: %w", ix.Name, err)
		}
	}
	return db, nil
}

// Table returns the data for the named table.
func (db *Database) Table(name string) (*TableData, error) {
	td, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %s", name)
	}
	return td, nil
}

// TotalRows returns the number of live rows across all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, td := range db.tables {
		n += td.RowCount()
	}
	return n
}

// DataVersion sums the per-table content-change counters. It changes
// whenever any table's rows change, so together with the statistics epoch it
// fingerprints everything a cached plan's estimates depend on.
func (db *Database) DataVersion() int64 {
	var v int64
	for _, td := range db.tables {
		v += td.Version()
	}
	return v
}
