package storage

import (
	"fmt"

	"autostats/internal/catalog"
)

// Streaming scan seam for bounded-memory statistics construction. A
// BlockIter yields the live rows of a table projected onto a column set in
// fixed-size blocks, under a snapshot guard: the table's read lock is held
// from Open to Close, so every block belongs to one consistent table
// version — the same guarantee MultiColumnValuesSeq gives a one-shot
// gather, without materializing the full projection. Writers queue behind
// the guard for the duration of the scan; the statistics build path keeps
// that window short by releasing the iterator before the merge pass.

// DefaultBlockSize is the rows-per-block used when OpenBlockIter is called
// with a non-positive block size.
const DefaultBlockSize = 1024

// BlockIter streams projected row blocks of one table snapshot. It is not
// safe for concurrent use; one goroutine opens, drains and closes it. The
// slice returned by Next is reused between calls — callers must copy any
// datum they retain past the next Next call.
type BlockIter struct {
	t    *TableData
	ords []int
	// pos is the next row ID to examine; rows is the snapshot's backing
	// slice length (stable while the guard is held).
	pos  int
	rows int
	live int
	seq  int64
	ver  int64

	// buf and flat back the reused block: buf[i] is flat[i*w:(i+1)*w].
	buf    [][]catalog.Datum
	flat   []catalog.Datum
	closed bool
}

// OpenBlockIter opens a streaming scan of the named columns in blocks of at
// most blockSize rows (<= 0 means DefaultBlockSize). The table read lock is
// held until Close: the scan observes exactly one table version, and the
// delta-log sequence reported by Seq corresponds to it atomically. Callers
// MUST Close the iterator (Close is idempotent), must not call other
// methods of the same TableData while it is open (the guard is held by this
// goroutine), and must copy datums they retain across Next calls.
func (t *TableData) OpenBlockIter(cols []string, blockSize int) (*BlockIter, error) {
	ords := make([]int, len(cols))
	for i, c := range cols {
		ci := t.Schema.ColumnIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("storage: table %s has no column %s", t.Schema.Name, c)
		}
		ords[i] = ci
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	t.mu.RLock()
	t.openSnapshots.Add(1)
	w := len(ords)
	it := &BlockIter{
		t:    t,
		ords: ords,
		rows: len(t.rows),
		live: t.live,
		seq:  t.deltaBase + int64(len(t.deltas)),
		ver:  t.version,
		buf:  make([][]catalog.Datum, 0, blockSize),
		flat: make([]catalog.Datum, blockSize*w),
	}
	return it, nil
}

// Next returns the next block of projected live-row tuples and true, or nil
// and false when the scan is exhausted or the iterator closed. The returned
// slice (and the tuples in it) are reused by the following Next call.
func (it *BlockIter) Next() ([][]catalog.Datum, bool) {
	if it.closed || it.pos >= it.rows {
		return nil, false
	}
	w := len(it.ords)
	it.buf = it.buf[:0]
	used := 0
	for it.pos < it.rows && len(it.buf) < cap(it.buf) {
		id := it.pos
		it.pos++
		if it.t.dead[id] {
			continue
		}
		r := it.t.rows[id]
		tuple := it.flat[used : used+w : used+w]
		for i, o := range it.ords {
			tuple[i] = r[o]
		}
		used += w
		it.buf = append(it.buf, tuple)
	}
	if len(it.buf) == 0 {
		return nil, false
	}
	return it.buf, true
}

// LiveRows returns the number of live rows in the snapshot (the total the
// blocks will sum to).
func (it *BlockIter) LiveRows() int { return it.live }

// Seq returns the delta-log sequence observed at open — the watermark a
// statistic built from this scan records so a later folding refresh replays
// exactly the modifications the scan did not see.
func (it *BlockIter) Seq() int64 { return it.seq }

// Version returns the table content version the snapshot pins. While the
// iterator is open it cannot change (the guard excludes writers); it is
// exposed so builds can assert the invariant cheaply.
func (it *BlockIter) Version() int64 { return it.ver }

// Close releases the snapshot guard. Idempotent; after Close, Next returns
// false. Every open iterator must be closed, including on error and
// cancellation paths — the leak-check oracle counts open snapshots.
func (it *BlockIter) Close() {
	if it.closed {
		return
	}
	it.closed = true
	it.t.openSnapshots.Add(-1)
	it.t.mu.RUnlock()
}
