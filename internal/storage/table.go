// Package storage implements the in-memory row store the executor runs
// against: tables of datum rows, sorted secondary indexes, and the
// row-modification counters that drive the statistics update policy (§6 of
// the paper mirrors SQL Server 7.0's per-table modification counter).
package storage

import (
	"fmt"
	"sort"
	"sync"

	"autostats/internal/catalog"
)

// Row is one tuple; column order matches the table schema.
type Row []catalog.Datum

// TableData holds the rows of one table plus its secondary indexes.
//
// Deletion is implemented with a tombstone bitmap so row IDs stay stable for
// the indexes; Compact rewrites the table when tombstones accumulate.
type TableData struct {
	mu sync.RWMutex

	Schema *catalog.Table
	rows   []Row
	dead   []bool
	live   int

	indexes map[string]*Index // by column name (lower-cased by caller convention)

	// modCounter counts rows inserted/updated/deleted since the last
	// statistics refresh on this table (the SQL Server 7.0 policy counter).
	modCounter int64
	// version counts every content change since creation and is never
	// reset (unlike modCounter). It feeds the optimizer's plan-cache key so
	// DML invalidates cached plans whose cardinality inputs went stale.
	version int64
}

// NewTableData creates an empty table.
func NewTableData(schema *catalog.Table) *TableData {
	return &TableData{Schema: schema, indexes: make(map[string]*Index)}
}

// Insert appends a row. The row must match the schema arity.
func (t *TableData) Insert(r Row) error {
	if len(r) != len(t.Schema.Columns) {
		return fmt.Errorf("storage: insert into %s: got %d values, want %d", t.Schema.Name, len(r), len(t.Schema.Columns))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := len(t.rows)
	t.rows = append(t.rows, r)
	t.dead = append(t.dead, false)
	t.live++
	t.modCounter++
	t.version++
	for col, ix := range t.indexes {
		ci := t.Schema.ColumnIndex(col)
		ix.insert(r[ci], id)
	}
	return nil
}

// BulkLoad replaces the table contents with rows, rebuilding all indexes.
// It does not bump the modification counter: loading is the baseline against
// which modifications are counted.
func (t *TableData) BulkLoad(rows []Row) error {
	for _, r := range rows {
		if len(r) != len(t.Schema.Columns) {
			return fmt.Errorf("storage: bulk load into %s: got %d values, want %d", t.Schema.Name, len(r), len(t.Schema.Columns))
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = rows
	t.dead = make([]bool, len(rows))
	t.live = len(rows)
	t.version++
	for col := range t.indexes {
		t.rebuildIndexLocked(col)
	}
	return nil
}

// RowCount returns the number of live rows.
func (t *TableData) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// ModCounter returns rows modified since the last ResetModCounter.
func (t *TableData) ModCounter() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.modCounter
}

// Version returns the monotonically increasing content-change counter.
func (t *TableData) Version() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// ResetModCounter zeroes the modification counter (called when statistics on
// the table are refreshed).
func (t *TableData) ResetModCounter() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.modCounter = 0
}

// Scan invokes fn for every live row. fn must not retain the row slice.
// Returning false from fn stops the scan.
func (t *TableData) Scan(fn func(id int, r Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for id, r := range t.rows {
		if t.dead[id] {
			continue
		}
		if !fn(id, r) {
			return
		}
	}
}

// Get returns the row with the given ID, or false if it was deleted.
func (t *TableData) Get(id int) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || id >= len(t.rows) || t.dead[id] {
		return nil, false
	}
	return t.rows[id], true
}

// Delete tombstones the rows with the given IDs and returns how many were
// live. Index entries are removed lazily at lookup time via the tombstone
// check, keeping delete O(1) per row.
func (t *TableData) Delete(ids []int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, id := range ids {
		if id < 0 || id >= len(t.rows) || t.dead[id] {
			continue
		}
		t.dead[id] = true
		t.live--
		n++
	}
	t.modCounter += int64(n)
	t.version += int64(n)
	return n
}

// Update overwrites column col (by ordinal) of the given rows with v and
// returns how many rows were live. Indexed columns trigger an index fix-up.
func (t *TableData) Update(ids []int, col int, v catalog.Datum) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	colName := t.Schema.Columns[col].Name
	ix := t.indexes[keyOf(colName)]
	n := 0
	for _, id := range ids {
		if id < 0 || id >= len(t.rows) || t.dead[id] {
			continue
		}
		if ix != nil {
			ix.remove(t.rows[id][col], id)
			ix.insert(v, id)
		}
		t.rows[id][col] = v
		n++
	}
	t.modCounter += int64(n)
	t.version += int64(n)
	return n
}

// Compact rewrites the table dropping tombstoned rows and rebuilds indexes.
func (t *TableData) Compact() {
	t.mu.Lock()
	defer t.mu.Unlock()
	rows := make([]Row, 0, t.live)
	for id, r := range t.rows {
		if !t.dead[id] {
			rows = append(rows, r)
		}
	}
	t.rows = rows
	t.dead = make([]bool, len(rows))
	for col := range t.indexes {
		t.rebuildIndexLocked(col)
	}
}

// ColumnValues returns the live values of the named column, in row order.
// It is the feed for histogram construction.
func (t *TableData) ColumnValues(col string) ([]catalog.Datum, error) {
	ci := t.Schema.ColumnIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("storage: table %s has no column %s", t.Schema.Name, col)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]catalog.Datum, 0, t.live)
	for id, r := range t.rows {
		if !t.dead[id] {
			out = append(out, r[ci])
		}
	}
	return out, nil
}

// MultiColumnValues returns live tuples of the named columns, for
// multi-column statistics construction.
func (t *TableData) MultiColumnValues(cols []string) ([][]catalog.Datum, error) {
	ords := make([]int, len(cols))
	for i, c := range cols {
		ci := t.Schema.ColumnIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("storage: table %s has no column %s", t.Schema.Name, c)
		}
		ords[i] = ci
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([][]catalog.Datum, 0, t.live)
	for id, r := range t.rows {
		if t.dead[id] {
			continue
		}
		tuple := make([]catalog.Datum, len(ords))
		for i, o := range ords {
			tuple[i] = r[o]
		}
		out = append(out, tuple)
	}
	return out, nil
}

func keyOf(col string) string {
	// Index map keys are lower-cased column names.
	b := []byte(col)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// CreateIndex builds a sorted secondary index on the named column.
func (t *TableData) CreateIndex(col string) error {
	if t.Schema.ColumnIndex(col) < 0 {
		return fmt.Errorf("storage: table %s has no column %s", t.Schema.Name, col)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.indexes[keyOf(col)] = nil
	t.rebuildIndexLocked(keyOf(col))
	return nil
}

// IndexOn returns the index on the named column, if built.
func (t *TableData) IndexOn(col string) (*Index, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.indexes[keyOf(col)]
	return ix, ok && ix != nil
}

func (t *TableData) rebuildIndexLocked(colKey string) {
	ci := t.Schema.ColumnIndex(colKey)
	ix := &Index{Column: t.Schema.Columns[ci].Name}
	for id, r := range t.rows {
		if !t.dead[id] {
			ix.entries = append(ix.entries, indexEntry{key: r[ci], rowID: id})
		}
	}
	sort.SliceStable(ix.entries, func(a, b int) bool {
		return ix.entries[a].key.Compare(ix.entries[b].key) < 0
	})
	t.indexes[colKey] = ix
}
