// Package storage implements the in-memory row store the executor runs
// against: tables of datum rows, sorted secondary indexes, and the
// row-modification counters that drive the statistics update policy (§6 of
// the paper mirrors SQL Server 7.0's per-table modification counter).
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"autostats/internal/catalog"
)

// Row is one tuple; column order matches the table schema.
type Row []catalog.Datum

// TableData holds the rows of one table plus its secondary indexes.
//
// Deletion is implemented with a tombstone bitmap so row IDs stay stable for
// the indexes; Compact rewrites the table when tombstones accumulate.
type TableData struct {
	mu sync.RWMutex

	Schema *catalog.Table
	rows   []Row
	dead   []bool
	live   int

	indexes map[string]*Index // by column name (lower-cased by caller convention)

	// modCounter counts rows inserted/updated/deleted since the last
	// statistics refresh on this table (the SQL Server 7.0 policy counter).
	modCounter int64
	// version counts every content change since creation and is never
	// reset (unlike modCounter). It feeds the optimizer's plan-cache key so
	// DML invalidates cached plans whose cardinality inputs went stale.
	version int64

	// Delta log (opt-in, see EnableDeltaLog): a bounded sequence-numbered
	// record of row modifications since the last trim, letting the statistics
	// manager fold deltas into existing histograms instead of rescanning the
	// table. deltaCap == 0 means the log is disabled and DML pays nothing.
	deltaCap  int
	deltaBase int64 // sequence number of deltas[0]
	deltas    []DeltaRec

	// openSnapshots counts live BlockIter snapshot guards on this table.
	// It exists for leak detection: a streaming statistics build that exits
	// on any path — success, error, cancellation — must bring it back to
	// zero. Atomic, not mu-guarded, so leak checks need no lock.
	openSnapshots atomic.Int64
}

// OpenSnapshots returns the number of currently open BlockIter snapshot
// guards — zero whenever no streaming scan is in flight. Tests use it to
// prove cancelled builds release their snapshots.
func (t *TableData) OpenSnapshots() int64 {
	return t.openSnapshots.Load()
}

// DeltaRec is one logged row modification: Del marks a deletion, otherwise an
// insertion. An update logs a deletion of the old row followed by an
// insertion of the new one. Row is a private copy, never mutated after
// logging, so readers may hold records without a lock.
type DeltaRec struct {
	Del bool
	Row Row
}

// DefaultDeltaLogCap bounds the delta log when EnableDeltaLog is called with
// a non-positive capacity.
const DefaultDeltaLogCap = 4096

// NewTableData creates an empty table.
func NewTableData(schema *catalog.Table) *TableData {
	return &TableData{Schema: schema, indexes: make(map[string]*Index)}
}

// Insert appends a row. The row must match the schema arity.
func (t *TableData) Insert(r Row) error {
	if len(r) != len(t.Schema.Columns) {
		return fmt.Errorf("storage: insert into %s: got %d values, want %d", t.Schema.Name, len(r), len(t.Schema.Columns))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := len(t.rows)
	t.rows = append(t.rows, r)
	t.dead = append(t.dead, false)
	t.live++
	t.modCounter++
	t.version++
	t.appendDeltaLocked(false, r)
	for col, ix := range t.indexes {
		ci := t.Schema.ColumnIndex(col)
		ix.insert(r[ci], id)
	}
	return nil
}

// BulkLoad replaces the table contents with rows, rebuilding all indexes.
// It does not bump the modification counter: loading is the baseline against
// which modifications are counted.
func (t *TableData) BulkLoad(rows []Row) error {
	for _, r := range rows {
		if len(r) != len(t.Schema.Columns) {
			return fmt.Errorf("storage: bulk load into %s: got %d values, want %d", t.Schema.Name, len(r), len(t.Schema.Columns))
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = rows
	t.dead = make([]bool, len(rows))
	t.live = len(rows)
	t.version++
	// A bulk load replaces content wholesale without logging per-row deltas,
	// so every outstanding watermark must be invalidated.
	t.trimDeltasLocked(1)
	for col := range t.indexes {
		t.rebuildIndexLocked(col)
	}
	return nil
}

// RowCount returns the number of live rows.
func (t *TableData) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// ModCounter returns rows modified since the last ResetModCounter.
func (t *TableData) ModCounter() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.modCounter
}

// Version returns the monotonically increasing content-change counter.
func (t *TableData) Version() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// ResetModCounter zeroes the modification counter (called when statistics on
// the table are refreshed). The delta log is trimmed to the current sequence:
// watermarks equal to DeltaSeq stay valid (and see an empty window); older
// watermarks are invalidated, forcing their statistics to rebuild.
func (t *TableData) ResetModCounter() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.modCounter = 0
	t.trimDeltasLocked(0)
}

// EnableDeltaLog turns on row-modification logging with the given capacity
// (<= 0 uses DefaultDeltaLogCap). Enabling invalidates previously handed-out
// sequence watermarks — modifications made while the log was off were never
// recorded — so statistics built before the switch take one full rebuild
// before they can fold.
func (t *TableData) EnableDeltaLog(capacity int) {
	if capacity <= 0 {
		capacity = DefaultDeltaLogCap
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.deltaCap == 0 {
		t.trimDeltasLocked(1)
	}
	t.deltaCap = capacity
}

// DisableDeltaLog stops logging and drops the current log.
func (t *TableData) DisableDeltaLog() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.deltaCap = 0
	t.trimDeltasLocked(0)
}

// DeltaLogEnabled reports whether row modifications are being logged.
func (t *TableData) DeltaLogEnabled() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.deltaCap > 0
}

// DeltaSeq returns the log's current sequence number: the watermark a freshly
// built statistic records so a later DeltaWindow call replays exactly the
// modifications it has not seen.
func (t *TableData) DeltaSeq() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.deltaBase + int64(len(t.deltas))
}

// DeltaWindow returns the modifications logged since the given watermark and
// the new watermark to record after folding them. ok is false when the window
// is unavailable — the log is disabled, the watermark predates a trim or an
// overflow, or it is from the future — in which case the caller must fall
// back to a full rebuild. The returned records are immutable; they remain
// valid after the lock is released.
func (t *TableData) DeltaWindow(since int64) (recs []DeltaRec, next int64, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	next = t.deltaBase + int64(len(t.deltas))
	if t.deltaCap == 0 || since < t.deltaBase || since > next {
		return nil, next, false
	}
	return t.deltas[since-t.deltaBase:], next, true
}

// trimDeltasLocked drops all buffered records, advancing the base by the
// dropped count plus skew. A skew of 0 keeps current watermarks valid (their
// windows become empty); a positive skew invalidates every outstanding
// watermark (used when unlogged modifications happened, e.g. BulkLoad or
// enabling the log). Callers must hold mu. The buffer is released, never
// reused, so previously returned DeltaWindow slices stay immutable.
func (t *TableData) trimDeltasLocked(skew int64) {
	t.deltaBase += int64(len(t.deltas)) + skew
	t.deltas = nil
}

// appendDeltaLocked logs one modification, copying the row. On overflow the
// buffered window is dropped: watermarks that had already consumed it stay
// valid, while older ones see DeltaWindow ok=false and rebuild. Callers must
// hold mu.
func (t *TableData) appendDeltaLocked(del bool, r Row) {
	if t.deltaCap == 0 {
		return
	}
	if len(t.deltas) >= t.deltaCap {
		t.trimDeltasLocked(0)
	}
	t.deltas = append(t.deltas, DeltaRec{Del: del, Row: append(Row(nil), r...)})
}

// Scan invokes fn for every live row. fn must not retain the row slice.
// Returning false from fn stops the scan.
func (t *TableData) Scan(fn func(id int, r Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for id, r := range t.rows {
		if t.dead[id] {
			continue
		}
		if !fn(id, r) {
			return
		}
	}
}

// Get returns the row with the given ID, or false if it was deleted.
func (t *TableData) Get(id int) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || id >= len(t.rows) || t.dead[id] {
		return nil, false
	}
	return t.rows[id], true
}

// Delete tombstones the rows with the given IDs and returns how many were
// live. Index entries are removed lazily at lookup time via the tombstone
// check, keeping delete O(1) per row.
func (t *TableData) Delete(ids []int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, id := range ids {
		if id < 0 || id >= len(t.rows) || t.dead[id] {
			continue
		}
		t.appendDeltaLocked(true, t.rows[id])
		t.dead[id] = true
		t.live--
		n++
	}
	t.modCounter += int64(n)
	t.version += int64(n)
	return n
}

// Update overwrites column col (by ordinal) of the given rows with v and
// returns how many rows were live. Indexed columns trigger an index fix-up.
func (t *TableData) Update(ids []int, col int, v catalog.Datum) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	colName := t.Schema.Columns[col].Name
	ix := t.indexes[keyOf(colName)]
	n := 0
	for _, id := range ids {
		if id < 0 || id >= len(t.rows) || t.dead[id] {
			continue
		}
		if ix != nil {
			ix.remove(t.rows[id][col], id)
			ix.insert(v, id)
		}
		// An update logs delete-old + insert-new; the old row must be copied
		// before the in-place overwrite below.
		t.appendDeltaLocked(true, t.rows[id])
		t.rows[id][col] = v
		t.appendDeltaLocked(false, t.rows[id])
		n++
	}
	t.modCounter += int64(n)
	t.version += int64(n)
	return n
}

// Compact rewrites the table dropping tombstoned rows and rebuilds indexes.
func (t *TableData) Compact() {
	t.mu.Lock()
	defer t.mu.Unlock()
	rows := make([]Row, 0, t.live)
	for id, r := range t.rows {
		if !t.dead[id] {
			rows = append(rows, r)
		}
	}
	t.rows = rows
	t.dead = make([]bool, len(rows))
	for col := range t.indexes {
		t.rebuildIndexLocked(col)
	}
}

// ColumnValues returns the live values of the named column, in row order.
// It is the feed for histogram construction.
func (t *TableData) ColumnValues(col string) ([]catalog.Datum, error) {
	ci := t.Schema.ColumnIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("storage: table %s has no column %s", t.Schema.Name, col)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]catalog.Datum, 0, t.live)
	for id, r := range t.rows {
		if !t.dead[id] {
			out = append(out, r[ci])
		}
	}
	return out, nil
}

// MultiColumnValues returns live tuples of the named columns, for
// multi-column statistics construction.
func (t *TableData) MultiColumnValues(cols []string) ([][]catalog.Datum, error) {
	out, _, err := t.MultiColumnValuesSeq(cols)
	return out, err
}

// MultiColumnValuesSeq is MultiColumnValues plus the delta-log sequence
// observed under the same lock, so the tuples and the watermark form one
// atomic snapshot: a statistic built from the tuples and stamped with the
// sequence can later fold exactly the modifications it has not seen.
func (t *TableData) MultiColumnValuesSeq(cols []string) ([][]catalog.Datum, int64, error) {
	ords := make([]int, len(cols))
	for i, c := range cols {
		ci := t.Schema.ColumnIndex(c)
		if ci < 0 {
			return nil, 0, fmt.Errorf("storage: table %s has no column %s", t.Schema.Name, c)
		}
		ords[i] = ci
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.gatherLocked(ords), t.deltaBase + int64(len(t.deltas)), nil
}

// MultiColumnValuesPartitioned returns the live tuples of the named columns
// split into at most parts contiguous partitions of near-equal size, plus the
// delta-log sequence, all gathered under a single lock acquisition: the
// partitions cover exactly one consistent version of the table, so partial
// histograms built from them merge into a statistic no concurrent DML can
// tear. The partitions are subslices of one backing slice.
func (t *TableData) MultiColumnValuesPartitioned(cols []string, parts int) ([][][]catalog.Datum, int64, error) {
	ords := make([]int, len(cols))
	for i, c := range cols {
		ci := t.Schema.ColumnIndex(c)
		if ci < 0 {
			return nil, 0, fmt.Errorf("storage: table %s has no column %s", t.Schema.Name, c)
		}
		ords[i] = ci
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	flat := t.gatherLocked(ords)
	return splitTuples(flat, parts), t.deltaBase + int64(len(t.deltas)), nil
}

// gatherLocked projects the live rows onto the given column ordinals.
// Callers must hold mu.
func (t *TableData) gatherLocked(ords []int) [][]catalog.Datum {
	out := make([][]catalog.Datum, 0, t.live)
	for id, r := range t.rows {
		if t.dead[id] {
			continue
		}
		tuple := make([]catalog.Datum, len(ords))
		for i, o := range ords {
			tuple[i] = r[o]
		}
		out = append(out, tuple)
	}
	return out
}

// splitTuples cuts tuples into at most k contiguous subslices.
func splitTuples(tuples [][]catalog.Datum, k int) [][][]catalog.Datum {
	if k > len(tuples) {
		k = len(tuples)
	}
	if k <= 1 {
		return [][][]catalog.Datum{tuples}
	}
	out := make([][][]catalog.Datum, 0, k)
	chunk := (len(tuples) + k - 1) / k
	for start := 0; start < len(tuples); start += chunk {
		end := start + chunk
		if end > len(tuples) {
			end = len(tuples)
		}
		out = append(out, tuples[start:end])
	}
	return out
}

func keyOf(col string) string {
	// Index map keys are lower-cased column names.
	b := []byte(col)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// CreateIndex builds a sorted secondary index on the named column.
func (t *TableData) CreateIndex(col string) error {
	if t.Schema.ColumnIndex(col) < 0 {
		return fmt.Errorf("storage: table %s has no column %s", t.Schema.Name, col)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.indexes[keyOf(col)] = nil
	t.rebuildIndexLocked(keyOf(col))
	return nil
}

// IndexOn returns the index on the named column, if built.
func (t *TableData) IndexOn(col string) (*Index, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.indexes[keyOf(col)]
	return ix, ok && ix != nil
}

func (t *TableData) rebuildIndexLocked(colKey string) {
	ci := t.Schema.ColumnIndex(colKey)
	ix := &Index{Column: t.Schema.Columns[ci].Name}
	for id, r := range t.rows {
		if !t.dead[id] {
			ix.entries = append(ix.entries, indexEntry{key: r[ci], rowID: id})
		}
	}
	sort.SliceStable(ix.entries, func(a, b int) bool {
		return ix.entries[a].key.Compare(ix.entries[b].key) < 0
	})
	t.indexes[colKey] = ix
}
