package storage

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"autostats/internal/catalog"
)

func blockIterTable(t *testing.T, rows int) *TableData {
	t.Helper()
	schema := catalog.NewSchema()
	if err := schema.AddTable(catalog.NewTable("t",
		catalog.Column{Name: "a", Type: catalog.Int},
		catalog.Column{Name: "b", Type: catalog.Int},
		catalog.Column{Name: "c", Type: catalog.String},
	)); err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase("db", schema)
	if err != nil {
		t.Fatal(err)
	}
	td, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		r := Row{
			catalog.NewInt(int64(i)),
			catalog.NewInt(int64(i % 7)),
			catalog.NewString(fmt.Sprintf("s%d", i%3)),
		}
		if err := td.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return td
}

// drain collects every block, copying tuples out of the reused buffer.
func drain(it *BlockIter) [][]catalog.Datum {
	var out [][]catalog.Datum
	for {
		block, ok := it.Next()
		if !ok {
			return out
		}
		for _, tup := range block {
			out = append(out, append([]catalog.Datum(nil), tup...))
		}
	}
}

// TestBlockIterMatchesGather: the concatenated blocks must equal the
// one-shot MultiColumnValuesSeq projection — same tuples, same order, same
// delta watermark — at every block size, including sizes that do not divide
// the row count and after deletions punched holes in the row IDs.
func TestBlockIterMatchesGather(t *testing.T) {
	td := blockIterTable(t, 157)
	td.EnableDeltaLog(0)
	// Tombstone a scattered subset so blocks must skip dead rows.
	var dead []int
	for id := 3; id < 157; id += 11 {
		dead = append(dead, id)
	}
	td.Delete(dead)

	cols := []string{"b", "c"}
	want, wantSeq, err := td.MultiColumnValuesSeq(cols)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{1, 2, 7, 64, 1000} {
		it, err := td.OpenBlockIter(cols, bs)
		if err != nil {
			t.Fatal(err)
		}
		if it.LiveRows() != len(want) {
			t.Errorf("block=%d: LiveRows=%d want %d", bs, it.LiveRows(), len(want))
		}
		if it.Seq() != wantSeq {
			t.Errorf("block=%d: Seq=%d want %d", bs, it.Seq(), wantSeq)
		}
		got := drain(it)
		it.Close()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("block=%d: streamed tuples differ from one-shot gather", bs)
		}
	}
}

// TestBlockIterSnapshotGuard: a writer started while the iterator is open
// must not affect the scan — the guard holds it off until Close, after
// which the write lands.
func TestBlockIterSnapshotGuard(t *testing.T) {
	td := blockIterTable(t, 40)
	it, err := td.OpenBlockIter([]string{"a"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n := td.OpenSnapshots(); n != 1 {
		t.Fatalf("OpenSnapshots=%d after open", n)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Blocks until the snapshot guard is released.
		td.Insert(Row{catalog.NewInt(999), catalog.NewInt(0), catalog.NewString("x")})
	}()
	got := drain(it)
	if len(got) != 40 {
		t.Errorf("scan saw %d rows, want the 40 of the snapshot", len(got))
	}
	it.Close()
	wg.Wait()
	if n := td.RowCount(); n != 41 {
		t.Errorf("RowCount=%d after guarded insert, want 41", n)
	}
	if n := td.OpenSnapshots(); n != 0 {
		t.Errorf("OpenSnapshots=%d after close", n)
	}
	// Close must be idempotent.
	it.Close()
	if n := td.OpenSnapshots(); n != 0 {
		t.Errorf("OpenSnapshots=%d after double close", n)
	}
	if _, ok := it.Next(); ok {
		t.Error("Next returned a block after Close")
	}
}

// TestBlockIterUnknownColumn: a bad column errors without leaving a guard.
func TestBlockIterUnknownColumn(t *testing.T) {
	td := blockIterTable(t, 5)
	if _, err := td.OpenBlockIter([]string{"nope"}, 4); err == nil {
		t.Fatal("no error for unknown column")
	}
	if n := td.OpenSnapshots(); n != 0 {
		t.Errorf("OpenSnapshots=%d after failed open", n)
	}
	// The table must still be writable (no lock leaked).
	if err := td.Insert(Row{catalog.NewInt(1), catalog.NewInt(1), catalog.NewString("y")}); err != nil {
		t.Fatal(err)
	}
}

// TestBlockIterEmptyTable: zero rows yield zero blocks, not a hang.
func TestBlockIterEmptyTable(t *testing.T) {
	td := blockIterTable(t, 0)
	it, err := td.OpenBlockIter([]string{"a", "b"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if got := drain(it); len(got) != 0 {
		t.Errorf("empty table yielded %d tuples", len(got))
	}
	if it.LiveRows() != 0 {
		t.Errorf("LiveRows=%d on empty table", it.LiveRows())
	}
}
