package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"autostats/internal/catalog"
)

func empSchema() *catalog.Table {
	return catalog.NewTable("emp",
		catalog.Column{Name: "id", Type: catalog.Int},
		catalog.Column{Name: "salary", Type: catalog.Float},
		catalog.Column{Name: "name", Type: catalog.String},
	)
}

func row(id int64, salary float64, name string) Row {
	return Row{catalog.NewInt(id), catalog.NewFloat(salary), catalog.NewString(name)}
}

func TestInsertScanGet(t *testing.T) {
	td := NewTableData(empSchema())
	for i := 0; i < 10; i++ {
		if err := td.Insert(row(int64(i), float64(i)*100, "e")); err != nil {
			t.Fatal(err)
		}
	}
	if td.RowCount() != 10 {
		t.Fatalf("RowCount = %d", td.RowCount())
	}
	seen := 0
	td.Scan(func(id int, r Row) bool {
		if r[0].I != int64(id) {
			t.Errorf("row %d has id datum %d", id, r[0].I)
		}
		seen++
		return true
	})
	if seen != 10 {
		t.Errorf("scan saw %d rows", seen)
	}
	if _, ok := td.Get(5); !ok {
		t.Error("Get(5) failed")
	}
	if _, ok := td.Get(99); ok {
		t.Error("Get(99) should fail")
	}
}

func TestInsertArityError(t *testing.T) {
	td := NewTableData(empSchema())
	if err := td.Insert(Row{catalog.NewInt(1)}); err == nil {
		t.Error("expected arity error")
	}
}

func TestDeleteTombstonesAndCompact(t *testing.T) {
	td := NewTableData(empSchema())
	for i := 0; i < 10; i++ {
		_ = td.Insert(row(int64(i), 0, "x"))
	}
	n := td.Delete([]int{2, 4, 4, 99})
	if n != 2 {
		t.Fatalf("Delete removed %d, want 2", n)
	}
	if td.RowCount() != 8 {
		t.Errorf("RowCount after delete = %d", td.RowCount())
	}
	if _, ok := td.Get(2); ok {
		t.Error("deleted row still visible")
	}
	td.Compact()
	if td.RowCount() != 8 {
		t.Errorf("RowCount after compact = %d", td.RowCount())
	}
	seen := 0
	td.Scan(func(_ int, _ Row) bool { seen++; return true })
	if seen != 8 {
		t.Errorf("scan after compact saw %d", seen)
	}
}

func TestUpdateAndModCounter(t *testing.T) {
	td := NewTableData(empSchema())
	for i := 0; i < 5; i++ {
		_ = td.Insert(row(int64(i), 0, "x"))
	}
	if td.ModCounter() != 5 {
		t.Fatalf("mod counter after inserts = %d", td.ModCounter())
	}
	n := td.Update([]int{1, 3}, 1, catalog.NewFloat(999))
	if n != 2 {
		t.Fatalf("Update touched %d", n)
	}
	if td.ModCounter() != 7 {
		t.Errorf("mod counter after update = %d", td.ModCounter())
	}
	r, _ := td.Get(1)
	if r[1].F != 999 {
		t.Errorf("update not applied: %v", r[1])
	}
	td.ResetModCounter()
	if td.ModCounter() != 0 {
		t.Error("ResetModCounter failed")
	}
}

func TestBulkLoadDoesNotBumpModCounter(t *testing.T) {
	td := NewTableData(empSchema())
	rows := []Row{row(1, 1, "a"), row(2, 2, "b")}
	if err := td.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	if td.ModCounter() != 0 {
		t.Errorf("bulk load bumped mod counter to %d", td.ModCounter())
	}
	if td.RowCount() != 2 {
		t.Errorf("RowCount = %d", td.RowCount())
	}
	if err := td.BulkLoad([]Row{{catalog.NewInt(1)}}); err == nil {
		t.Error("expected arity error from bulk load")
	}
}

func TestIndexMaintainedAcrossDML(t *testing.T) {
	td := NewTableData(empSchema())
	if err := td.CreateIndex("salary"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		_ = td.Insert(row(int64(i), float64(i%5)*10, "x"))
	}
	ix, ok := td.IndexOn("SALARY")
	if !ok {
		t.Fatal("index not found")
	}
	ids := ix.SeekEqual(catalog.NewFloat(20))
	if len(ids) != 4 {
		t.Fatalf("SeekEqual(20) found %d rows, want 4", len(ids))
	}
	// Update a matching row away and a non-matching row in.
	td.Update([]int{ids[0]}, 1, catalog.NewFloat(55))
	td.Update([]int{0}, 1, catalog.NewFloat(20)) // row 0 had salary 0
	ids = ix.SeekEqual(catalog.NewFloat(20))
	if len(ids) != 4 {
		t.Fatalf("after updates SeekEqual(20) found %d rows, want 4", len(ids))
	}
	// Deleted rows remain in the index but Get filters them.
	td.Delete([]int{ids[0]})
	live := 0
	for _, id := range ix.SeekEqual(catalog.NewFloat(20)) {
		if _, ok := td.Get(id); ok {
			live++
		}
	}
	if live != 3 {
		t.Fatalf("live matches after delete = %d, want 3", live)
	}
}

// TestIndexSeekRangeMatchesScan: property test — SeekRange agrees with a
// linear scan for random data and random bounds.
func TestIndexSeekRangeMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	td := NewTableData(empSchema())
	if err := td.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		_ = td.Insert(row(int64(rng.Intn(50)), 0, "x"))
	}
	ix, _ := td.IndexOn("id")

	f := func(loRaw, hiRaw int8, loInc, hiInc, loNil, hiNil bool) bool {
		var lo, hi *catalog.Datum
		if !loNil {
			d := catalog.NewInt(int64(loRaw) % 50)
			lo = &d
		}
		if !hiNil {
			d := catalog.NewInt(int64(hiRaw) % 50)
			hi = &d
		}
		got := append([]int(nil), ix.SeekRange(lo, hi, loInc, hiInc)...)
		sort.Ints(got)
		var want []int
		td.Scan(func(id int, r Row) bool {
			v := r[0]
			if lo != nil {
				c := v.Compare(*lo)
				if c < 0 || (!loInc && c == 0) {
					return true
				}
			}
			if hi != nil {
				c := v.Compare(*hi)
				if c > 0 || (!hiInc && c == 0) {
					return true
				}
			}
			want = append(want, id)
			return true
		})
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestColumnValues(t *testing.T) {
	td := NewTableData(empSchema())
	_ = td.Insert(row(1, 10, "a"))
	_ = td.Insert(row(2, 20, "b"))
	td.Delete([]int{0})
	vals, err := td.ColumnValues("salary")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0].F != 20 {
		t.Errorf("ColumnValues = %v", vals)
	}
	if _, err := td.ColumnValues("nope"); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestMultiColumnValues(t *testing.T) {
	td := NewTableData(empSchema())
	_ = td.Insert(row(1, 10, "a"))
	_ = td.Insert(row(2, 20, "b"))
	tuples, err := td.MultiColumnValues([]string{"name", "id"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 || tuples[0][0].S != "a" || tuples[0][1].I != 1 {
		t.Errorf("MultiColumnValues = %v", tuples)
	}
	if _, err := td.MultiColumnValues([]string{"id", "zz"}); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestDatabaseSetup(t *testing.T) {
	schema := catalog.NewSchema()
	if err := schema.AddTable(empSchema()); err != nil {
		t.Fatal(err)
	}
	if err := schema.AddIndex(catalog.Index{Name: "ix", Table: "emp", Column: "id"}); err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase("test", schema)
	if err != nil {
		t.Fatal(err)
	}
	td, err := db.Table("EMP")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := td.IndexOn("id"); !ok {
		t.Error("schema index was not built")
	}
	if _, err := db.Table("nope"); err == nil {
		t.Error("expected unknown-table error")
	}
	_ = td.Insert(row(1, 1, "x"))
	if db.TotalRows() != 1 {
		t.Errorf("TotalRows = %d", db.TotalRows())
	}
}
