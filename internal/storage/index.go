package storage

import (
	"sort"

	"autostats/internal/catalog"
)

type indexEntry struct {
	key   catalog.Datum
	rowID int
}

// Index is a sorted secondary index over one column. Lookups binary-search
// the entry slice; inserts keep it sorted. This models a B-tree closely
// enough for cost purposes (O(log n) seek + O(matches) scan).
type Index struct {
	Column  string
	entries []indexEntry
}

// Len returns the number of entries (including entries pointing at
// tombstoned rows; the executor filters those via TableData.Get).
func (ix *Index) Len() int { return len(ix.entries) }

func (ix *Index) insert(key catalog.Datum, rowID int) {
	i := sort.Search(len(ix.entries), func(i int) bool {
		return ix.entries[i].key.Compare(key) >= 0
	})
	ix.entries = append(ix.entries, indexEntry{})
	copy(ix.entries[i+1:], ix.entries[i:])
	ix.entries[i] = indexEntry{key: key, rowID: rowID}
}

func (ix *Index) remove(key catalog.Datum, rowID int) {
	i := sort.Search(len(ix.entries), func(i int) bool {
		return ix.entries[i].key.Compare(key) >= 0
	})
	for ; i < len(ix.entries) && ix.entries[i].key.Compare(key) == 0; i++ {
		if ix.entries[i].rowID == rowID {
			ix.entries = append(ix.entries[:i], ix.entries[i+1:]...)
			return
		}
	}
}

// SeekEqual returns the row IDs whose key equals v.
func (ix *Index) SeekEqual(v catalog.Datum) []int {
	lo := sort.Search(len(ix.entries), func(i int) bool {
		return ix.entries[i].key.Compare(v) >= 0
	})
	var ids []int
	for i := lo; i < len(ix.entries) && ix.entries[i].key.Compare(v) == 0; i++ {
		ids = append(ids, ix.entries[i].rowID)
	}
	return ids
}

// SeekRange returns the row IDs with lo ≤ key ≤ hi, where a nil bound is
// unbounded and loInc/hiInc control bound inclusivity.
func (ix *Index) SeekRange(lo, hi *catalog.Datum, loInc, hiInc bool) []int {
	start := 0
	if lo != nil {
		start = sort.Search(len(ix.entries), func(i int) bool {
			c := ix.entries[i].key.Compare(*lo)
			if loInc {
				return c >= 0
			}
			return c > 0
		})
	}
	end := len(ix.entries)
	if hi != nil {
		end = sort.Search(len(ix.entries), func(i int) bool {
			c := ix.entries[i].key.Compare(*hi)
			if hiInc {
				return c > 0
			}
			return c >= 0
		})
	}
	if start >= end {
		return nil
	}
	ids := make([]int, 0, end-start)
	for i := start; i < end; i++ {
		ids = append(ids, ix.entries[i].rowID)
	}
	return ids
}
