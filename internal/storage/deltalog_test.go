package storage

import (
	"testing"

	"autostats/internal/catalog"
)

// TestDeltaLogDisabledByDefault: with the log off, DML pays nothing and
// DeltaWindow always reports unavailable so callers fall back to rebuilds.
func TestDeltaLogDisabledByDefault(t *testing.T) {
	td := NewTableData(empSchema())
	if td.DeltaLogEnabled() {
		t.Fatal("delta log enabled by default")
	}
	if err := td.Insert(row(1, 100, "a")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := td.DeltaWindow(0); ok {
		t.Fatal("DeltaWindow ok with the log disabled")
	}
}

// TestDeltaLogRecordsDML: inserts, deletes and updates log copy-on-write
// records replaying exactly the modifications since a watermark.
func TestDeltaLogRecordsDML(t *testing.T) {
	td := NewTableData(empSchema())
	if err := td.Insert(row(1, 100, "a")); err != nil {
		t.Fatal(err)
	}
	td.EnableDeltaLog(0)
	since := td.DeltaSeq()

	if err := td.Insert(row(2, 200, "b")); err != nil {
		t.Fatal(err)
	}
	td.Delete([]int{0})
	td.Update([]int{1}, 1, catalog.NewFloat(250))

	recs, next, ok := td.DeltaWindow(since)
	if !ok {
		t.Fatal("window unavailable")
	}
	if len(recs) != 4 { // insert, delete, update = del-old + ins-new
		t.Fatalf("logged %d records, want 4", len(recs))
	}
	if recs[0].Del || recs[0].Row[0].I != 2 {
		t.Fatalf("rec0 = %+v, want insert of id 2", recs[0])
	}
	if !recs[1].Del || recs[1].Row[0].I != 1 {
		t.Fatalf("rec1 = %+v, want delete of id 1", recs[1])
	}
	if !recs[2].Del || recs[2].Row[1].F != 200 {
		t.Fatalf("rec2 = %+v, want delete of pre-update row (salary 200)", recs[2])
	}
	if recs[3].Del || recs[3].Row[1].F != 250 {
		t.Fatalf("rec3 = %+v, want insert of post-update row (salary 250)", recs[3])
	}
	if next != td.DeltaSeq() {
		t.Fatalf("next = %d, DeltaSeq = %d", next, td.DeltaSeq())
	}
	// The logged rows are copies: mutating the table again must not change
	// the already-returned record.
	td.Update([]int{1}, 1, catalog.NewFloat(999))
	if recs[3].Row[1].F != 250 {
		t.Fatal("delta record aliases live row storage")
	}
}

// TestDeltaLogEnableInvalidatesOldWatermarks: a watermark taken before
// EnableDeltaLog must not see an (empty) window — modifications made while
// the log was off were never recorded.
func TestDeltaLogEnableInvalidatesOldWatermarks(t *testing.T) {
	td := NewTableData(empSchema())
	before := td.DeltaSeq()
	td.EnableDeltaLog(0)
	if _, _, ok := td.DeltaWindow(before); ok {
		t.Fatal("pre-enable watermark still valid")
	}
	if _, _, ok := td.DeltaWindow(td.DeltaSeq()); !ok {
		t.Fatal("fresh watermark invalid")
	}
}

// TestDeltaLogTrimAndOverflow: ResetModCounter keeps head watermarks valid;
// overflow drops the buffered window but keeps consumed watermarks valid.
func TestDeltaLogTrimAndOverflow(t *testing.T) {
	td := NewTableData(empSchema())
	td.EnableDeltaLog(4)
	stale := td.DeltaSeq()
	for i := 0; i < 3; i++ {
		if err := td.Insert(row(int64(i), 1, "x")); err != nil {
			t.Fatal(err)
		}
	}
	td.ResetModCounter()
	if _, _, ok := td.DeltaWindow(stale); ok {
		t.Fatal("trimmed watermark still valid")
	}
	head := td.DeltaSeq()
	if recs, _, ok := td.DeltaWindow(head); !ok || len(recs) != 0 {
		t.Fatalf("head watermark after trim: ok=%v recs=%d", ok, len(recs))
	}

	// Overflow: cap 4, insert 6. The first trim drops the filled window;
	// watermarks inside it go stale, the pre-overflow head stays consistent.
	for i := 0; i < 6; i++ {
		if err := td.Insert(row(int64(10+i), 1, "y")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := td.DeltaWindow(head + 2); ok {
		t.Fatal("watermark inside dropped window still valid")
	}
	recs, _, ok := td.DeltaWindow(head + 4)
	if !ok || len(recs) != 2 {
		t.Fatalf("post-overflow window: ok=%v recs=%d, want 2", ok, len(recs))
	}
}

// TestDeltaLogBulkLoadInvalidates: BulkLoad replaces content without logging,
// so every outstanding watermark must turn invalid.
func TestDeltaLogBulkLoadInvalidates(t *testing.T) {
	td := NewTableData(empSchema())
	td.EnableDeltaLog(0)
	head := td.DeltaSeq()
	if err := td.BulkLoad([]Row{row(1, 1, "a")}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := td.DeltaWindow(head); ok {
		t.Fatal("pre-bulkload watermark still valid")
	}
}

// TestMultiColumnValuesPartitioned: the partitions cover every live tuple
// exactly once, in row order, and the sequence matches the snapshot.
func TestMultiColumnValuesPartitioned(t *testing.T) {
	td := NewTableData(empSchema())
	td.EnableDeltaLog(0)
	for i := 0; i < 10; i++ {
		if err := td.Insert(row(int64(i), float64(i), "r")); err != nil {
			t.Fatal(err)
		}
	}
	td.Delete([]int{3, 7})
	for _, parts := range []int{1, 3, 4, 100} {
		chunks, seq, err := td.MultiColumnValuesPartitioned([]string{"id", "salary"}, parts)
		if err != nil {
			t.Fatal(err)
		}
		if seq != td.DeltaSeq() {
			t.Fatalf("parts=%d: seq %d != DeltaSeq %d", parts, seq, td.DeltaSeq())
		}
		var ids []int64
		for _, c := range chunks {
			for _, tp := range c {
				if len(tp) != 2 {
					t.Fatalf("tuple arity %d", len(tp))
				}
				ids = append(ids, tp[0].I)
			}
		}
		if len(ids) != 8 {
			t.Fatalf("parts=%d: %d tuples, want 8", parts, len(ids))
		}
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				t.Fatalf("parts=%d: partition concatenation not in row order: %v", parts, ids)
			}
		}
	}
	if _, _, err := td.MultiColumnValuesPartitioned([]string{"nope"}, 2); err == nil {
		t.Fatal("expected unknown-column error")
	}
}

// TestMultiColumnValuesSeqMatchesLegacy: the seq variant returns the same
// tuples as MultiColumnValues.
func TestMultiColumnValuesSeqMatchesLegacy(t *testing.T) {
	td := NewTableData(empSchema())
	for i := 0; i < 5; i++ {
		if err := td.Insert(row(int64(i), float64(i), "s")); err != nil {
			t.Fatal(err)
		}
	}
	a, err := td.MultiColumnValues([]string{"salary"})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := td.MultiColumnValuesSeq([]string{"salary"})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("len %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i][0].Compare(b[i][0]) != 0 {
			t.Fatalf("tuple %d differs", i)
		}
	}
}
