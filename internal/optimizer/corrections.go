package optimizer

// CorrectionSource supplies learned selectivity corrections from execution
// feedback. The optimizer queries it per filtered base-table access, keyed by
// the canonical column list and predicate signature of internal/query
// (FilterColumns / FilterSignature); internal/feedback.Ledger is the
// production implementation, but the optimizer depends only on this interface
// so the packages stay decoupled.
//
// Implementations must be safe for concurrent use: one source is shared by
// every session clone.
type CorrectionSource interface {
	// CorrectSelectivity returns a multiplicative factor to apply to the
	// estimated selectivity of the matching filtered table access, and
	// whether a sufficiently-observed, currently-valid correction exists.
	// Factors above 1 repair underestimates, below 1 overestimates.
	CorrectSelectivity(table, columns, signature string) (float64, bool)
	// Version identifies the current set of published corrections; it
	// changes whenever any correction materially changes (including
	// invalidation by a statistics refresh or data change). Plan-cache keys
	// embed it so cached plans built under stale corrections are not reused.
	Version() uint64
}

// SetCorrections attaches a correction source (nil detaches). Like the plan
// cache, the source is shared by clones; set it before cloning.
func (s *Session) SetCorrections(c CorrectionSource) { s.corr = c }

// Corrections returns the attached correction source, or nil.
func (s *Session) Corrections() CorrectionSource { return s.corr }

// corrVersion returns the correction-set version, 0 with no source attached.
func (s *Session) corrVersion() uint64 {
	if s.corr == nil {
		return 0
	}
	return s.corr.Version()
}
