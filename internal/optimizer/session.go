package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"autostats/internal/obs"
	"autostats/internal/query"
	"autostats/internal/stats"
)

// Session is one optimization session against a database. It carries the two
// server extensions of §7.2:
//
//   - IgnoreStatisticsSubset: a connection-specific buffer of statistics the
//     optimizer must not consider (used by the Shrinking Set algorithm to
//     obtain Plan(Q, S−{s}) without physically dropping s);
//   - SetSelectivityOverrides: parameterized selectivities for predicates
//     that would otherwise fall back to default magic numbers (used by MNSA
//     to construct P_low and P_high).
//
// Sessions are not safe for concurrent use; create one per goroutine (Clone
// is the cheap way to do that). The attached PlanCache, by contrast, IS safe
// for concurrent use and is intentionally shared across clones.
type Session struct {
	mgr *stats.Manager
	// prov is the statistics view every estimator read goes through. It
	// defaults to mgr; SetStatsProvider substitutes a wrapper (fault
	// injection, tracing) without touching the manager used for mutations.
	prov  stats.Provider
	Magic MagicNumbers

	ignored   map[stats.ID]bool
	overrides map[int]float64
	// ignoredKey / overridesKey are the canonical string renderings of the
	// two buffers above, recomputed when the buffers mutate so the plan-cache
	// key assembly on the per-statement lookup path never sorts, joins or
	// allocates (see Session.cacheKey and BenchmarkCacheKey).
	ignoredKey   string
	overridesKey string
	// tmplQ / tmplStr memoize the last statement template render: sessions
	// are single-goroutine and the MNSA probe loop re-optimizes the same
	// *Select many times with varying overrides.
	tmplQ   *query.Select
	tmplStr string
	// degraded collects the reasons statistics could not be provided for
	// the statement being processed (set by the resilience-aware MNSA
	// driver, cleared per statement). While non-empty, Optimize tags plans
	// Degraded and bypasses the plan cache in both directions.
	degraded map[string]bool
	cache    *PlanCache
	corr     CorrectionSource
	met      sessionMetrics
}

// sessionMetrics caches the session's observability handles. A session is
// single-goroutine, so handles are captured once at construction (from the
// manager's registry — call stats.Manager.SetObsRegistry before creating
// sessions) and shared by clones.
type sessionMetrics struct {
	reg             *obs.Registry
	optimizations   *obs.Counter
	optimizeLatency *obs.Timing
	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	cacheEvictions  *obs.Counter
	degradedPlans   *obs.Counter
	cacheBypasses   *obs.Counter
}

func newSessionMetrics(reg *obs.Registry) sessionMetrics {
	return sessionMetrics{
		reg:             reg,
		optimizations:   reg.Counter("optimizer.optimizations"),
		optimizeLatency: reg.Timing("optimizer.optimize.latency"),
		cacheHits:       reg.Counter("optimizer.plancache.hits"),
		cacheMisses:     reg.Counter("optimizer.plancache.misses"),
		cacheEvictions:  reg.Counter("optimizer.plancache.evictions"),
		degradedPlans:   reg.Counter("degraded.plans"),
		cacheBypasses:   reg.Counter("degraded.plancache_bypasses"),
	}
}

// NewSession creates a session over the given statistics manager with
// default magic numbers.
func NewSession(mgr *stats.Manager) *Session {
	return &Session{
		mgr:       mgr,
		prov:      mgr,
		Magic:     DefaultMagicNumbers(),
		ignored:   make(map[stats.ID]bool),
		overrides: make(map[int]float64),
		met:       newSessionMetrics(mgr.ObsRegistry()),
	}
}

// Manager returns the underlying statistics manager.
func (s *Session) Manager() *stats.Manager { return s.mgr }

// SetStatsProvider routes all of the session's statistics reads through p
// (nil restores the manager itself). Mutating paths — statistics creation
// by MNSA, maintenance — keep going to the Manager; only the optimizer's
// read-side view is swapped. Used by the fault-injection oracle to present
// stale or torn statistics state to the optimizer.
func (s *Session) SetStatsProvider(p stats.Provider) {
	if p == nil {
		s.prov = s.mgr
		return
	}
	s.prov = p
}

// StatsProvider returns the view the session's reads currently go through.
func (s *Session) StatsProvider() stats.Provider { return s.prov }

// Obs returns the registry the session's optimizer metrics go to (the
// manager's registry at session creation time).
func (s *Session) Obs() *obs.Registry { return s.met.reg }

// SetPlanCache attaches a plan cache (nil detaches). Shared caches are safe:
// the cache key embeds every session-specific optimizer input.
func (s *Session) SetPlanCache(c *PlanCache) { s.cache = c }

// PlanCache returns the attached plan cache, or nil.
func (s *Session) PlanCache() *PlanCache { return s.cache }

// Clone returns an independent session for use by another goroutine: same
// manager, magic numbers and (shared, thread-safe) plan cache and correction
// source, but fresh ignore and override buffers so the clones cannot
// interfere.
func (s *Session) Clone() *Session {
	return &Session{
		mgr:       s.mgr,
		prov:      s.prov,
		Magic:     s.Magic,
		ignored:   make(map[stats.ID]bool),
		overrides: make(map[int]float64),
		cache:     s.cache,
		corr:      s.corr,
		met:       s.met,
	}
}

// IgnoreStatisticsSubset replaces the session's ignore buffer: subsequent
// optimizations behave as if the listed statistics did not exist. The dbID
// parameter mirrors the server call signature; it must match the managed
// database's name ("" matches any). A mismatch returns an error and leaves
// the buffer untouched — silently ignoring it would make Shrinking Set
// results look like every statistic is essential.
func (s *Session) IgnoreStatisticsSubset(dbID string, ids []stats.ID) error {
	if dbID != "" && dbID != s.mgr.Database().Name {
		return fmt.Errorf("optimizer: IgnoreStatisticsSubset for database %q, but session manages %q", dbID, s.mgr.Database().Name)
	}
	s.ignored = make(map[stats.ID]bool, len(ids))
	for _, id := range ids {
		s.ignored[id] = true
	}
	s.ignoredKey = renderIgnoredKey(s.ignored)
	return nil
}

// ClearIgnored empties the ignore buffer.
func (s *Session) ClearIgnored() {
	s.ignored = make(map[stats.ID]bool)
	s.ignoredKey = ""
}

// Ignored reports whether the statistic is currently ignored.
func (s *Session) Ignored(id stats.ID) bool { return s.ignored[id] }

// SetSelectivityOverrides replaces the per-predicate selectivity parameters.
// An override applies ONLY where the optimizer would otherwise use a default
// magic number; predicates covered by visible statistics are unaffected
// (§7.2: "accept the selectivity of such predicates as a parameter rather
// than using the default magic number").
func (s *Session) SetSelectivityOverrides(ov map[int]float64) {
	s.overrides = make(map[int]float64, len(ov))
	for k, v := range ov {
		s.overrides[k] = v
	}
	s.overridesKey = renderOverridesKey(s.overrides)
}

// ClearOverrides removes all selectivity overrides.
func (s *Session) ClearOverrides() {
	s.overrides = make(map[int]float64)
	s.overridesKey = ""
}

// renderIgnoredKey canonicalizes the ignore buffer for the plan-cache key:
// sorted statistic IDs, comma-joined. Computed on mutation, not lookup.
func renderIgnoredKey(ignored map[stats.ID]bool) string {
	if len(ignored) == 0 {
		return ""
	}
	ids := make([]string, 0, len(ignored))
	for id := range ignored {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	return strings.Join(ids, ",")
}

// renderOverridesKey canonicalizes the override buffer for the plan-cache
// key: sorted "var=sel" pairs, comma-joined. Computed on mutation, not lookup.
func renderOverridesKey(overrides map[int]float64) string {
	if len(overrides) == 0 {
		return ""
	}
	vars := make([]int, 0, len(overrides))
	for v := range overrides {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = fmt.Sprintf("%d=%g", v, overrides[v])
	}
	return strings.Join(parts, ",")
}

// MarkDegraded records one reason the current statement is planned in
// degraded mode (a statistic was unavailable — breaker open, build timeout,
// build failure). While any reason is recorded, Optimize tags plans with the
// reasons and bypasses the plan cache so the degraded plan is never reused
// once statistics recover. The resilience-aware MNSA driver calls this;
// ClearDegraded resets it at the next statement boundary.
func (s *Session) MarkDegraded(reason string) {
	if s.degraded == nil {
		s.degraded = make(map[string]bool)
	}
	s.degraded[reason] = true
}

// ClearDegraded resets the degraded-mode reasons for a new statement.
func (s *Session) ClearDegraded() { s.degraded = nil }

// DegradedReasons returns the recorded reasons, sorted; nil when healthy.
func (s *Session) DegradedReasons() []string {
	if len(s.degraded) == 0 {
		return nil
	}
	out := make([]string, 0, len(s.degraded))
	for r := range s.degraded {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
