package optimizer

import (
	"container/list"
	"math"
	"strconv"
	"strings"
	"sync"

	"autostats/internal/query"
)

// maxCachedParams bounds the number of lifted filter constants a plan-cache
// key can carry. Statements with more filters bypass the cache entirely
// (mirroring the optimizer's own 16-table join limit); the fixed-size array
// keeps planKey comparable and the lookup path allocation-free.
const maxCachedParams = 16

// bucketMissing marks a lifted constant whose predicate has no visible
// statistic: its selectivity comes from an override or magic number, neither
// of which depends on the constant's value, so every such constant shares one
// bucket (the override string and magic numbers are separate key fields).
const bucketMissing = int8(127)

// planKey identifies a cached plan. Two optimizations may share a plan only
// when every input the cost model reads is identical up to constant lifting:
// the statement template (the canonical SQL print with comparison constants
// replaced by '?'), the per-constant selectivity buckets, the statistics
// epoch (bumped by every create/drop/refresh/drop-list change), the storage
// data version (bumped by every DML row change), the magic numbers, the
// feedback-correction version (bumped when a learned correction materially
// changes), and the session's ignore buffer and selectivity overrides.
//
// The bucket vector is what makes constant lifting safe: a constant whose
// estimated selectivity lands in a different power-of-two regime gets a
// different key, so a cached plan is only ever reused where the selectivity
// it was costed under still (approximately) holds. The struct is comparable
// so it can key a map directly.
type planKey struct {
	template    string
	buckets     [maxCachedParams]int8 // slots past len(Filters) stay zero
	epoch       uint64
	dataVersion int64
	fbver       uint64
	magic       MagicNumbers
	ignored     string // sorted statistic IDs, comma-joined
	overrides   string // sorted "var=sel" pairs, comma-joined
}

// PlanCacheStats is a point-in-time snapshot of cache effectiveness counters
// aggregated across all shards.
type PlanCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Size      int
	Capacity  int
	Shards    int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s PlanCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// defaultPlanCacheShards is the shard count for caches large enough to split.
// Eight single-mutex LRUs keep lock hold times short at parallelism >= 4
// without fragmenting small caches; capacities below the shard count use one
// shard so tiny (test-sized) caches keep exact global LRU semantics.
const defaultPlanCacheShards = 8

// PlanCache is a concurrency-safe, sharded LRU cache of optimized plans. It
// is shared by all sessions cloned from one System: the key embeds every
// per-session knob (magic numbers, ignore buffer, overrides), so sessions
// with different settings never collide, while workers running the same
// workload share hits. Keys hash to shards by statement template; each shard
// has its own lock and LRU list, so concurrent lookups of different
// templates never contend.
//
// Plans are treated as immutable once published; callers must not mutate a
// Plan returned from the cache. A hit whose constants differ from the entry's
// returns a rebound copy (see rebindPlan), never the entry itself with stale
// literals.
type PlanCache struct {
	capacity int // total, summed over shards
	perShard int
	shards   []planShard
}

// planShard is one independently locked LRU. Counters live under the same
// mutex as the list so per-shard snapshots are internally consistent.
type planShard struct {
	mu        sync.Mutex
	order     *list.List                // front = most recently used
	entries   map[planKey]*list.Element // element value is *cacheEntry
	hits      uint64
	misses    uint64
	evictions uint64
}

// cacheEntry stores the plan together with its key. The plan's Query field is
// the representative statement the entry was optimized from; its concrete
// constants are the ones a parameter-differing hit rebinds away from, and its
// SQL() is what introspection (Keys) reports.
type cacheEntry struct {
	key  planKey
	plan *Plan
}

// NewPlanCache creates a cache holding at most capacity plans. Capacity <= 0
// returns nil, which every method treats as a disabled cache.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		return nil
	}
	n := defaultPlanCacheShards
	if capacity < n {
		n = 1
	}
	c := &PlanCache{
		capacity: capacity,
		perShard: (capacity + n - 1) / n,
		shards:   make([]planShard, n),
	}
	for i := range c.shards {
		c.shards[i].order = list.New()
		c.shards[i].entries = make(map[planKey]*list.Element, c.perShard)
	}
	return c
}

// shard maps a key to its shard (FNV-1a over the state-independent key
// fields, inlined so the lookup path does not allocate). The hash covers the
// template, buckets, knob strings and magic numbers but deliberately skips
// epoch/dataVersion/fbver: those change on every invalidation, and keeping
// them out means one logical statement stays on one shard across refreshes
// (its stale predecessors age out of that same shard's LRU).
func (c *PlanCache) shard(key planKey) *planShard {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	h := uint64(14695981039346656037)
	step := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < len(key.template); i++ {
		step(key.template[i])
	}
	for _, b := range key.buckets {
		step(byte(b))
	}
	for i := 0; i < len(key.ignored); i++ {
		step(key.ignored[i])
	}
	for i := 0; i < len(key.overrides); i++ {
		step(key.overrides[i])
	}
	for _, f := range [...]float64{key.magic.Eq, key.magic.Range, key.magic.Ne, key.magic.Join, key.magic.GroupFrac} {
		bits := math.Float64bits(f)
		for s := 0; s < 64; s += 8 {
			step(byte(bits >> s))
		}
	}
	return &c.shards[h%uint64(len(c.shards))]
}

// get returns the plan cached under key, if present, and marks it recently
// used. When the entry's constants match q's exactly the cached *Plan is
// returned as-is (so repeated optimization of the same statement yields the
// same pointer); otherwise a copy rebound to q's constants is returned.
func (c *PlanCache) get(key planKey, q *query.Select) (*Plan, bool) {
	if c == nil {
		return nil, false
	}
	sh := c.shard(key)
	sh.mu.Lock()
	el, ok := sh.entries[key]
	if !ok {
		sh.misses++
		sh.mu.Unlock()
		return nil, false
	}
	sh.hits++
	sh.order.MoveToFront(el)
	p := el.Value.(*cacheEntry).plan
	sh.mu.Unlock()
	// Rebinding happens outside the shard lock: entries are immutable once
	// published, so only the (cheap) hit bookkeeping needs the mutex.
	if sameConstants(p.Query, q) {
		return p, true
	}
	return rebindPlan(p, q), true
}

// put stores a plan under key, evicting the shard's least recently used
// entry when the shard is full. Reports whether an entry was evicted, so
// callers can mirror the eviction to their own metrics.
func (c *PlanCache) put(key planKey, p *Plan) bool {
	if c == nil {
		return false
	}
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[key]; ok {
		el.Value.(*cacheEntry).plan = p
		sh.order.MoveToFront(el)
		return false
	}
	evicted := false
	if sh.order.Len() >= c.perShard {
		oldest := sh.order.Back()
		if oldest != nil {
			sh.order.Remove(oldest)
			delete(sh.entries, oldest.Value.(*cacheEntry).key)
			sh.evictions++
			evicted = true
		}
	}
	sh.entries[key] = sh.order.PushFront(&cacheEntry{key: key, plan: p})
	return evicted
}

// Stats returns a snapshot of the cache counters summed across shards. Each
// shard is snapshotted under its own lock, so the total is a sum of
// internally consistent per-shard views (lookups racing the aggregation may
// land in either side of the sum, never in both). Safe on a nil cache.
func (c *PlanCache) Stats() PlanCacheStats {
	if c == nil {
		return PlanCacheStats{}
	}
	st := PlanCacheStats{Capacity: c.capacity, Shards: len(c.shards)}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Evictions += sh.evictions
		st.Size += sh.order.Len()
		sh.mu.Unlock()
	}
	return st
}

// Len returns the number of cached plans. Safe on a nil cache.
func (c *PlanCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}

// CachedPlanKey describes one cache entry for inspection: the key fields
// the staleness discipline hinges on, plus the stored plan's signature and
// cost so tests can prove an entry is the plan a fresh optimization would
// produce under that key's state. SQL is the representative statement the
// entry was built from (concrete constants, re-parseable); Template and
// Buckets are the parameterized key the entry is reachable under.
type CachedPlanKey struct {
	SQL             string
	Template        string
	Buckets         string
	Epoch           uint64
	DataVersion     int64
	FeedbackVersion uint64
	Ignored         string
	Overrides       string
	Signature       string
	Cost            float64
}

// Keys returns a snapshot of every cached entry, MRU-first within each
// shard. Each shard is snapshotted atomically under its lock; entries are
// immutable once published, so any entry that appears is exactly what some
// lookup could have been served. It is an introspection hook for correctness
// harnesses ("no cached plan may carry the current epoch yet a stale
// signature"); production code has no reason to call it. Safe on a nil cache.
func (c *PlanCache) Keys() []CachedPlanKey {
	if c == nil {
		return nil
	}
	var out []CachedPlanKey
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.order.Front(); el != nil; el = el.Next() {
			e := el.Value.(*cacheEntry)
			out = append(out, CachedPlanKey{
				SQL:             e.plan.Query.SQL(),
				Template:        e.key.template,
				Buckets:         formatBuckets(e.key.buckets, len(e.plan.Query.Filters)),
				Epoch:           e.key.epoch,
				DataVersion:     e.key.dataVersion,
				FeedbackVersion: e.key.fbver,
				Ignored:         e.key.ignored,
				Overrides:       e.key.overrides,
				Signature:       e.plan.Signature(),
				Cost:            e.plan.Cost(),
			})
		}
		sh.mu.Unlock()
	}
	return out
}

// formatBuckets renders the first n bucket slots, "m" for bucketMissing.
func formatBuckets(b [maxCachedParams]int8, n int) string {
	if n > maxCachedParams {
		n = maxCachedParams
	}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		if b[i] == bucketMissing {
			sb.WriteByte('m')
		} else {
			sb.WriteString(strconv.Itoa(int(b[i])))
		}
	}
	return sb.String()
}

// Clear drops every cached plan but keeps the counters. Safe on a nil cache.
func (c *PlanCache) Clear() {
	if c == nil {
		return
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.order.Init()
		sh.entries = make(map[planKey]*list.Element, c.perShard)
		sh.mu.Unlock()
	}
}

// cacheKey assembles the planKey for the session's current state from the
// precomputed template and bucket vector. Every field is either an atomic
// provider read or a string precomputed when the session mutated (ignored,
// overrides) — the function performs no allocation, sorting or joining; see
// BenchmarkCacheKey.
func (s *Session) cacheKey(template string, buckets [maxCachedParams]int8) planKey {
	return planKey{
		template:    template,
		buckets:     buckets,
		epoch:       s.prov.Epoch(),
		dataVersion: s.prov.Database().DataVersion(),
		fbver:       s.corrVersion(),
		magic:       s.Magic,
		ignored:     s.ignoredKey,
		overrides:   s.overridesKey,
	}
}
