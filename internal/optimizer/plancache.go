package optimizer

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// planKey identifies a cached plan. Two optimizations may share a plan only
// when every input the cost model reads is identical: the query text, the
// statistics epoch (bumped by every create/drop/refresh/drop-list change),
// the storage data version (bumped by every DML row change), the magic
// numbers, the feedback-correction version (bumped when a learned correction
// materially changes), and the session's ignore buffer and selectivity
// overrides. The struct is comparable so it can key a map directly.
type planKey struct {
	sql         string
	epoch       uint64
	dataVersion int64
	fbver       uint64
	magic       MagicNumbers
	ignored     string // sorted statistic IDs, comma-joined
	overrides   string // sorted "var=sel" pairs, comma-joined
}

// PlanCacheStats is a point-in-time snapshot of cache effectiveness counters.
type PlanCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Size      int
	Capacity  int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s PlanCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// PlanCache is a concurrency-safe LRU cache of optimized plans. It is shared
// by all sessions cloned from one System: the key embeds every per-session
// knob (magic numbers, ignore buffer, overrides), so sessions with different
// settings never collide, while workers running the same workload share hits.
//
// Plans are treated as immutable once published; callers must not mutate a
// Plan returned from the cache.
type PlanCache struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List                // front = most recently used
	entries   map[planKey]*list.Element // element value is *cacheEntry
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key  planKey
	plan *Plan
}

// NewPlanCache creates a cache holding at most capacity plans. Capacity <= 0
// returns nil, which every method treats as a disabled cache.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		return nil
	}
	return &PlanCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[planKey]*list.Element, capacity),
	}
}

// get returns the cached plan for key, if present, and marks it recently used.
func (c *PlanCache) get(key planKey) (*Plan, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

// put stores a plan under key, evicting the least recently used entry when
// the cache is full. Reports whether an entry was evicted, so callers can
// mirror the eviction to their own metrics.
func (c *PlanCache) put(key planKey, p *Plan) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).plan = p
		c.order.MoveToFront(el)
		return false
	}
	evicted := false
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
			c.evictions++
			evicted = true
		}
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, plan: p})
	return evicted
}

// Stats returns a snapshot of the cache counters. Safe on a nil cache.
func (c *PlanCache) Stats() PlanCacheStats {
	if c == nil {
		return PlanCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.order.Len(),
		Capacity:  c.capacity,
	}
}

// Len returns the number of cached plans. Safe on a nil cache.
func (c *PlanCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CachedPlanKey describes one cache entry for inspection: the key fields
// the staleness discipline hinges on, plus the stored plan's signature and
// cost so tests can prove an entry is the plan a fresh optimization would
// produce under that key's state.
type CachedPlanKey struct {
	SQL             string
	Epoch           uint64
	DataVersion     int64
	FeedbackVersion uint64
	Ignored         string
	Overrides       string
	Signature       string
	Cost            float64
}

// Keys returns a snapshot of every cached entry in MRU-first order. It is
// an introspection hook for correctness harnesses ("no cached plan may
// carry the current epoch yet a stale signature"); production code has no
// reason to call it. Safe on a nil cache.
func (c *PlanCache) Keys() []CachedPlanKey {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CachedPlanKey, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		out = append(out, CachedPlanKey{
			SQL:             e.key.sql,
			Epoch:           e.key.epoch,
			DataVersion:     e.key.dataVersion,
			FeedbackVersion: e.key.fbver,
			Ignored:         e.key.ignored,
			Overrides:       e.key.overrides,
			Signature:       e.plan.Signature(),
			Cost:            e.plan.Cost(),
		})
	}
	return out
}

// Clear drops every cached plan but keeps the counters. Safe on a nil cache.
func (c *PlanCache) Clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = make(map[planKey]*list.Element, c.capacity)
}

// cacheKey builds the planKey for q under the session's current state. The
// returned epoch lets Optimize re-check for concurrent statistics mutations
// before publishing the plan.
func (s *Session) cacheKey(sql string) planKey {
	key := planKey{
		sql:         sql,
		epoch:       s.prov.Epoch(),
		dataVersion: s.prov.Database().DataVersion(),
		fbver:       s.corrVersion(),
		magic:       s.Magic,
	}
	if len(s.ignored) > 0 {
		ids := make([]string, 0, len(s.ignored))
		for id := range s.ignored {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		key.ignored = strings.Join(ids, ",")
	}
	if len(s.overrides) > 0 {
		vars := make([]int, 0, len(s.overrides))
		for v := range s.overrides {
			vars = append(vars, v)
		}
		sort.Ints(vars)
		var b strings.Builder
		for i, v := range vars {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d=%g", v, s.overrides[v])
		}
		key.overrides = b.String()
	}
	return key
}
