package optimizer

import (
	"fmt"
	"math"
	"strings"

	"autostats/internal/query"
	"autostats/internal/stats"
)

// Op is a physical operator kind.
type Op int

// Physical operators. Filters are folded into the scan/seek nodes that
// evaluate them; sorts required by merge join and ORDER BY are explicit.
const (
	OpTableScan Op = iota
	OpIndexSeek
	OpHashJoin
	OpMergeJoin
	OpNestedLoopJoin
	OpIndexNLJoin
	OpHashAggregate
	OpStreamAggregate
	OpSort
)

// String names the operator.
func (op Op) String() string {
	switch op {
	case OpTableScan:
		return "TableScan"
	case OpIndexSeek:
		return "IndexSeek"
	case OpHashJoin:
		return "HashJoin"
	case OpMergeJoin:
		return "MergeJoin"
	case OpNestedLoopJoin:
		return "NLJoin"
	case OpIndexNLJoin:
		return "IndexNLJoin"
	case OpHashAggregate:
		return "HashAgg"
	case OpStreamAggregate:
		return "StreamAgg"
	case OpSort:
		return "Sort"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// Cost model constants, shared with the executor so estimated and actual
// work are in the same currency.
const (
	// CostRowScan is charged per row read by a sequential scan.
	CostRowScan = 1.0
	// CostRowFetch is charged per row fetched through an index (random
	// access penalty). Index access beats a scan only below ~1/CostRowFetch
	// selectivity — the access-path decision statistics influence.
	CostRowFetch = 4.0
	// CostHashBuild is charged per row inserted in a hash table.
	CostHashBuild = 2.0
	// CostHashProbe is charged per probing row.
	CostHashProbe = 1.0
	// CostRowOut is charged per row emitted by a join or aggregate.
	CostRowOut = 0.5
	// CostSortFactor scales n·log2(n) for sorting.
	CostSortFactor = 0.5
	// CostGroupInsert is charged per input row of a hash aggregate.
	CostGroupInsert = 1.5
	// CostGroupSpill is charged per GROUP of a hash aggregate, modeling the
	// memory/spill pressure of wide hash tables. It makes the hash-vs-sort
	// aggregation choice depend on the estimated group count — i.e. on the
	// GROUP BY distinct-fraction selectivity variable of §4.1.
	CostGroupSpill = 8.0
	// CostStreamRow is charged per input row of a sort-based (stream)
	// aggregate, on top of the input sort.
	CostStreamRow = 1.0
)

// HashAggCost estimates hash aggregation of in rows into groups.
func HashAggCost(in, groups float64) float64 {
	return CostGroupInsert*in + CostGroupSpill*groups + CostRowOut*groups
}

// StreamAggCost estimates sort-based aggregation of in rows into groups.
func StreamAggCost(in, groups float64) float64 {
	return SortCost(in) + CostStreamRow*in + CostRowOut*groups
}

// SortCost returns the cost of sorting n rows.
func SortCost(n float64) float64 {
	if n < 1 {
		n = 1
	}
	return CostSortFactor * n * math.Log2(n+2)
}

// SeekCost returns the B-tree traversal cost on a table of n rows.
func SeekCost(n float64) float64 { return math.Log2(n+2) + 1 }

// Node is one physical plan operator.
type Node struct {
	Op       Op
	Children []*Node

	// Table and Index describe scans/seeks; Index also names the inner
	// index of an IndexNLJoin.
	Table string
	Index string
	// IndexCol is the column the seek ranges over.
	IndexCol string
	// Filters are the predicates evaluated at this node (scan/seek nodes).
	Filters []query.Filter
	// SeekFilters are the subset of Filters satisfied by the index range
	// itself (the rest are residual).
	SeekFilters []query.Filter
	// Joins are the equi-join predicates applied at a join node.
	Joins []query.JoinPred
	// GroupBy lists grouping columns of an aggregate node.
	GroupBy []query.ColumnRef
	// Aggregates lists aggregate expressions computed at an aggregate node
	// (empty GroupBy with non-empty Aggregates is a scalar aggregate).
	Aggregates []query.Aggregate
	// Having lists HAVING predicates filtering the aggregate output.
	Having []query.HavingPred
	// SortBy lists ordering columns of a Sort.
	SortBy []query.ColumnRef

	// EstRows is the optimizer's cardinality estimate for this node's
	// output.
	EstRows float64
	// Cost is the cumulative estimated cost of the subtree.
	Cost float64
}

// LocalCost returns this node's own cost: subtree cost minus children
// subtree costs. This drives FindNextStatToBuild's most-expensive-operator
// heuristic (§4.2).
func (n *Node) LocalCost() float64 {
	c := n.Cost
	for _, ch := range n.Children {
		c -= ch.Cost
	}
	return c
}

// Plan is an optimized query plan.
type Plan struct {
	Root *Node
	// Query is the optimized statement.
	Query *query.Select
	// UsedStats lists the statistics the estimator consulted.
	UsedStats []stats.ID
	// MissingVars lists the selectivity variables that fell back to magic
	// numbers (or overrides) because no applicable statistic was visible.
	MissingVars []int
	// RawBaseRows maps lower-cased table names to the raw (pre-correction)
	// filtered-row estimate for tables whose selectivity was adjusted by a
	// learned feedback correction. Nil when no correction was applied. The
	// executor's feedback collector uses it to back corrections out of
	// EstRows, so q-errors always measure the underlying statistics rather
	// than the correction layer.
	RawBaseRows map[string]float64
	// Degraded lists why this plan was produced in degraded mode (sorted,
	// deduplicated reasons like "stats-build:breaker-open"): a statistic the
	// analysis wanted was unavailable, so the affected selectivity variables
	// fell back to the default magic numbers of §4/§6. Degraded plans are
	// still correct — only their cost estimates lean on magic numbers — and
	// are never published to the plan cache, so the query re-optimizes to a
	// non-degraded plan as soon as the statistics recover. Empty for
	// healthy plans.
	Degraded []string
}

// IsDegraded reports whether the plan was produced in degraded mode.
func (p *Plan) IsDegraded() bool { return len(p.Degraded) > 0 }

// Cost returns the estimated cost of the whole plan.
func (p *Plan) Cost() float64 { return p.Root.Cost }

// Signature renders the execution tree as a canonical string; two plans are
// execution-tree equivalent (§3.2) iff their signatures are equal. The
// signature covers operator kinds, tables, indexes, join predicates and
// filter predicates — everything that determines the execution strategy —
// but not cardinality or cost estimates.
func (p *Plan) Signature() string {
	var b strings.Builder
	writeSignature(&b, p.Root)
	return b.String()
}

func writeSignature(b *strings.Builder, n *Node) {
	b.WriteString(n.Op.String())
	b.WriteByte('(')
	first := true
	sep := func() {
		if !first {
			b.WriteByte(',')
		}
		first = false
	}
	if n.Table != "" {
		sep()
		b.WriteString(n.Table)
	}
	if n.Index != "" {
		sep()
		b.WriteString("ix:" + n.Index)
	}
	for _, f := range n.Filters {
		sep()
		b.WriteString(f.String())
	}
	for _, j := range n.Joins {
		sep()
		b.WriteString(j.String())
	}
	for _, g := range n.GroupBy {
		sep()
		b.WriteString("g:" + g.String())
	}
	for _, a := range n.Aggregates {
		sep()
		b.WriteString("a:" + a.SQL())
	}
	for _, h := range n.Having {
		sep()
		b.WriteString("h:" + h.SQL())
	}
	for _, s := range n.SortBy {
		sep()
		b.WriteString("o:" + s.String())
	}
	for _, ch := range n.Children {
		sep()
		writeSignature(b, ch)
	}
	b.WriteByte(')')
}

// Format pretty-prints the plan tree with estimates, for tools and examples.
func (p *Plan) Format() string {
	var b strings.Builder
	formatNode(&b, p.Root, 0)
	return b.String()
}

func formatNode(b *strings.Builder, n *Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Op.String())
	if n.Table != "" {
		fmt.Fprintf(b, " %s", n.Table)
	}
	if n.Index != "" {
		fmt.Fprintf(b, " (index %s)", n.Index)
	}
	for _, j := range n.Joins {
		fmt.Fprintf(b, " [%s]", j)
	}
	for _, f := range n.Filters {
		fmt.Fprintf(b, " [%s]", f)
	}
	if len(n.GroupBy) > 0 {
		fmt.Fprintf(b, " group by %v", n.GroupBy)
	}
	fmt.Fprintf(b, "  rows=%.1f cost=%.1f\n", n.EstRows, n.Cost)
	for _, ch := range n.Children {
		formatNode(b, ch, depth+1)
	}
}
