package optimizer

import (
	"sync"
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/query"
	"autostats/internal/stats"
	"autostats/internal/storage"
)

func cachedSession(t testing.TB, capacity int) (*Session, *PlanCache) {
	t.Helper()
	sess, _ := testSession(t, 2)
	c := NewPlanCache(capacity)
	sess.SetPlanCache(c)
	return sess, c
}

func dateQuery(cutoff int64) *query.Select {
	return mkSelect([]string{"orders"},
		[]query.Filter{{Col: col("orders", "o_orderdate"), Op: query.Gt, Val: catalog.NewDate(cutoff)}},
		nil, nil)
}

func TestPlanCacheHitAndCounters(t *testing.T) {
	sess, c := cachedSession(t, 8)
	q := dateQuery(10400)
	p1, err := sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("second optimization of an identical query should return the cached plan")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("stats after hit: %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", st.HitRate())
	}
}

func TestPlanCacheEpochInvalidation(t *testing.T) {
	sess, c := cachedSession(t, 8)
	q := dateQuery(10400)
	p1, _ := sess.Optimize(q)
	// Creating a statistic bumps the epoch: the cached plan must not be
	// reused, and the fresh plan should differ (the new histogram flips the
	// access path for this selective predicate).
	if _, err := sess.Manager().Create("orders", []string{"o_orderdate"}); err != nil {
		t.Fatal(err)
	}
	p2, _ := sess.Optimize(q)
	if p1 == p2 {
		t.Fatal("epoch bump must invalidate the cached plan")
	}
	if p1.Signature() == p2.Signature() {
		t.Error("plan should change once the statistic exists")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Errorf("stats: %+v", st)
	}
	// Drop-list toggles also bump the epoch.
	id := stats.MakeID("orders", []string{"o_orderdate"})
	sess.Manager().AddToDropList(id)
	p3, _ := sess.Optimize(q)
	if p3 == p2 {
		t.Error("drop-list change must invalidate the cached plan")
	}
}

func TestPlanCacheDataVersionInvalidation(t *testing.T) {
	sess, _ := cachedSession(t, 8)
	q := dateQuery(10400)
	p1, _ := sess.Optimize(q)
	td := mustTable(t, sess.Manager().Database(), "orders")
	row, _ := td.Get(0)
	if err := td.Insert(append(storage.Row(nil), row...)); err != nil {
		t.Fatal(err)
	}
	p2, _ := sess.Optimize(q)
	if p1 == p2 {
		t.Error("DML must invalidate the cached plan via the data version")
	}
}

func TestPlanCacheSessionKnobsKeyed(t *testing.T) {
	sess, c := cachedSession(t, 16)
	id, err := sess.Manager().Create("orders", []string{"o_orderdate"})
	if err != nil {
		t.Fatal(err)
	}
	q := dateQuery(10400)
	p1, _ := sess.Optimize(q)
	// A non-empty ignore buffer marks the session as running what-if probes:
	// those optimizations bypass the cache entirely — no lookup, no insert —
	// so hypothetical-configuration plans can never pollute the production
	// cache (they surface as bypasses, not misses).
	bypassBefore := sess.Obs().Snapshot().Counters["degraded.plancache_bypasses"]
	if err := sess.IgnoreStatisticsSubset("", []stats.ID{id.ID}); err != nil {
		t.Fatal(err)
	}
	p2, _ := sess.Optimize(q)
	if p1 == p2 {
		t.Error("ignoring the statistic must not serve the cached production plan")
	}
	// Overrides bite under the ignored statistic and must change the probe's
	// plan content, even though neither probe touches the cache.
	sess.SetSelectivityOverrides(map[int]float64{q.Filters[0].VarID: 0.0005})
	p3, _ := sess.Optimize(q)
	if p3.Signature() == p2.Signature() {
		t.Error("selectivity override should change the what-if plan")
	}
	st := c.Stats()
	if st.Size != 1 || st.Misses != 1 {
		t.Errorf("what-if probes must not touch the cache: %+v", st)
	}
	bypasses := sess.Obs().Snapshot().Counters["degraded.plancache_bypasses"] - bypassBefore
	if bypasses != 2 {
		t.Errorf("plancache_bypasses = %d, want 2 (one per ignored-set probe)", bypasses)
	}
	sess.ClearOverrides()
	sess.ClearIgnored()
	// Magic numbers are part of the cache key.
	orig := sess.Magic
	sess.Magic.Range = 0.5
	p5, _ := sess.Optimize(q)
	if p5 == p1 {
		t.Error("magic numbers must be part of the cache key")
	}
	// Restoring the original knobs hits the original entry.
	sess.Magic = orig
	p6, _ := sess.Optimize(q)
	if p6 != p1 {
		t.Error("restoring session knobs should hit the original cache entry")
	}
	if st := c.Stats(); st.Hits < 1 {
		t.Errorf("expected the restored-knobs lookup to hit: %+v", st)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	// Distinct templates: with parameterized keys, dateQuery variants that
	// differ only in their constant share one entry, so eviction needs
	// statements whose shapes differ. Capacity 2 uses a single shard, making
	// the LRU order exact and global.
	sess, c := cachedSession(t, 2)
	q1 := dateQuery(10000)
	q2 := mkSelect([]string{"orders"},
		[]query.Filter{{Col: col("orders", "o_totalprice"), Op: query.Gt, Val: catalog.NewFloat(1000)}},
		nil, nil)
	q3 := mkSelect([]string{"customer"},
		[]query.Filter{{Col: col("customer", "c_custkey"), Op: query.Gt, Val: catalog.NewInt(10)}},
		nil, nil)
	p1, _ := sess.Optimize(q1)
	_, _ = sess.Optimize(q2)
	// Touch q1 so q2 is the LRU victim when q3 arrives.
	if got, _ := sess.Optimize(q1); got != p1 {
		t.Fatal("expected q1 hit")
	}
	_, _ = sess.Optimize(q3)
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Errorf("after overflow: %+v", st)
	}
	if got, _ := sess.Optimize(q1); got != p1 {
		t.Error("recently used q1 should have survived eviction")
	}
	before := c.Stats().Hits
	_, _ = sess.Optimize(q2)
	if c.Stats().Hits != before {
		t.Error("q2 should have been evicted (miss expected)")
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	if NewPlanCache(0) != nil {
		t.Error("capacity 0 should disable the cache")
	}
	var c *PlanCache
	if c.Len() != 0 || c.Stats() != (PlanCacheStats{}) {
		t.Error("nil cache methods should be safe no-ops")
	}
	c.Clear()
	sess, _ := testSession(t, 2)
	sess.SetPlanCache(nil)
	q := dateQuery(10400)
	p1, _ := sess.Optimize(q)
	p2, _ := sess.Optimize(q)
	if p1 == p2 {
		t.Error("without a cache each optimization builds a fresh plan")
	}
}

// TestConcurrentOptimizeAndMutate races cached optimization in several
// cloned sessions against statistics creation/drop in another goroutine.
// Correctness bar: no race reports (run under -race) and every returned plan
// is non-nil with a positive cost.
func TestConcurrentOptimizeAndMutate(t *testing.T) {
	proto, _ := cachedSession(t, 64)
	mgr := proto.Manager()
	queries := []*query.Select{dateQuery(10000), dateQuery(10200), dateQuery(10400)}

	stop := make(chan struct{})
	var mutator sync.WaitGroup
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		cols := [][]string{{"o_orderdate"}, {"o_custkey"}, {"o_totalprice"}}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c := cols[i%len(cols)]
			if _, err := mgr.Create("orders", c); err != nil {
				t.Errorf("create: %v", err)
				return
			}
			if i%3 == 0 {
				mgr.Drop(stats.MakeID("orders", c))
			}
		}
	}()

	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			sess := proto.Clone()
			for i := 0; i < 40; i++ {
				p, err := sess.Optimize(queries[(w+i)%len(queries)])
				if err != nil {
					t.Errorf("optimize: %v", err)
					return
				}
				if p == nil || p.Cost() <= 0 {
					t.Errorf("bad plan under concurrency: %v", p)
					return
				}
			}
		}(w)
	}
	workers.Wait()
	close(stop)
	mutator.Wait()
}
