package optimizer

import (
	"sort"
	"strings"

	"autostats/internal/catalog"
	"autostats/internal/histogram"
	"autostats/internal/query"
	"autostats/internal/stats"
)

// MinSelectivity floors estimated selectivities so cardinalities never
// collapse to exactly zero (which would make every plan cost-equivalent).
const MinSelectivity = 1e-6

// estimator carries per-query estimation state: which statistics were
// consulted and which selectivity variables fell back to magic numbers.
type estimator struct {
	sess         *Session
	q            *query.Select
	used         map[stats.ID]bool
	missing      map[int]bool
	joinSelCache map[int]float64
}

func newEstimator(sess *Session, q *query.Select) *estimator {
	return &estimator{
		sess:         sess,
		q:            q,
		used:         make(map[stats.ID]bool),
		missing:      make(map[int]bool),
		joinSelCache: make(map[int]float64),
	}
}

// visibleStatsFor returns the non-ignored statistics whose leading column is
// table.column, most precise (fewest columns) first.
func (e *estimator) visibleStatsFor(table, column string) []*stats.Statistic {
	all := e.sess.prov.StatsForColumn(table, column)
	out := all[:0:0]
	for _, s := range all {
		if !e.sess.ignored[s.ID] {
			out = append(out, s)
		}
	}
	return out
}

// visibleStatByID returns the statistic if it exists and is not ignored.
func (e *estimator) visibleStatByID(id stats.ID) *stats.Statistic {
	if e.sess.ignored[id] {
		return nil
	}
	return e.sess.prov.Get(id)
}

// histogramOpSel estimates one comparison's selectivity from a histogram.
// It is the single place the operator-to-histogram mapping lives: filterSel
// uses it for costing and the plan cache's filterBucket uses it for key
// bucketing, so the two can never drift apart.
func histogramOpSel(h *histogram.Histogram, op query.CmpOp, v catalog.Datum) float64 {
	switch op {
	case query.Eq:
		return h.SelectivityEq(v)
	case query.Ne:
		return 1 - h.SelectivityEq(v) - h.NullFraction()
	case query.Lt:
		return h.SelectivityLess(v, false)
	case query.Le:
		return h.SelectivityLess(v, true)
	case query.Gt:
		return 1 - h.SelectivityLess(v, true) - h.NullFraction()
	case query.Ge:
		return 1 - h.SelectivityLess(v, false) - h.NullFraction()
	default:
		return 1
	}
}

// filterSel estimates the selectivity of one filter. When no statistic with
// a matching leading column is visible, the predicate's selectivity variable
// is recorded as missing and the override (if any) or the magic number is
// used.
func (e *estimator) filterSel(f query.Filter) float64 {
	cands := e.visibleStatsFor(f.Col.Table, f.Col.Column)
	if len(cands) > 0 {
		st := cands[0]
		e.used[st.ID] = true
		return clampSel(histogramOpSel(st.Data.Leading, f.Op, f.Val))
	}
	e.missing[f.VarID] = true
	if ov, ok := e.sess.overrides[f.VarID]; ok {
		return clampSel(ov)
	}
	m := e.sess.Magic
	switch {
	case f.Op == query.Eq:
		return m.Eq
	case f.Op == query.Ne:
		return m.Ne
	default:
		return m.Range
	}
}

func clampSel(s float64) float64 {
	if s < MinSelectivity {
		return MinSelectivity
	}
	if s > 1 {
		return 1
	}
	return s
}

// tableSelectivity estimates the combined selectivity of a conjunction of
// filters on one table. Equality predicates covered by the longest usable
// leading prefix of a visible multi-column statistic are estimated together
// through the prefix density (capturing correlation); the rest multiply
// independently.
func (e *estimator) tableSelectivity(table string, filters []query.Filter) float64 {
	if len(filters) == 0 {
		return 1
	}
	// Equality filters eligible for multi-column coverage: no override on
	// their variable (overrides must win to keep MNSA's P_low/P_high exact).
	eqCols := make(map[string]query.Filter)
	for _, f := range filters {
		if f.Op != query.Eq {
			continue
		}
		if _, ov := e.sess.overrides[f.VarID]; ov {
			// Only pre-empts coverage when the variable would use the
			// override, i.e. when it has no single-column coverage either;
			// keeping it out of prefix coverage is the conservative choice.
			continue
		}
		eqCols[strings.ToLower(f.Col.Column)] = f
	}
	var bestStat *stats.Statistic
	bestLen := 1 // require >= 2 covered columns to engage a prefix density
	if len(eqCols) >= 2 {
		for _, st := range e.sess.prov.StatsOnTable(table) {
			if e.sess.ignored[st.ID] || len(st.Columns) < 2 {
				continue
			}
			k := 0
			for _, c := range st.Columns {
				if _, ok := eqCols[c]; !ok {
					break
				}
				k++
			}
			if k > bestLen {
				bestLen, bestStat = k, st
			}
		}
	}
	covered := make(map[int]bool)
	sel := 1.0
	if bestStat != nil {
		e.used[bestStat.ID] = true
		sel *= clampSel(bestStat.Data.PrefixDensity(bestLen))
		for _, c := range bestStat.Columns[:bestLen] {
			covered[eqCols[c].VarID] = true
		}
	}
	for _, f := range filters {
		if covered[f.VarID] {
			continue
		}
		sel *= e.filterSel(f)
	}
	return clampSel(sel)
}

// distinctOf returns the distinct-value count of a column from any visible
// statistic with that leading column.
func (e *estimator) distinctOf(c query.ColumnRef) (float64, bool) {
	cands := e.visibleStatsFor(c.Table, c.Column)
	if len(cands) == 0 {
		return 0, false
	}
	st := cands[0]
	e.used[st.ID] = true
	d := st.Data.Leading.Distinct
	if d < 1 {
		d = 1
	}
	return float64(d), true
}

// joinSel estimates one equi-join predicate's selectivity from the two
// sides' leading histograms via the bucket-overlap dot product (accurate
// under skew); with either side uncovered the variable is missing and the
// override or join magic number applies. Results are memoized per variable:
// join enumeration consults the same predicate many times.
func (e *estimator) joinSel(j query.JoinPred) float64 {
	if sel, ok := e.joinSelCache[j.VarID]; ok {
		return sel
	}
	sel := e.joinSelUncached(j)
	e.joinSelCache[j.VarID] = sel
	return sel
}

func (e *estimator) joinSelUncached(j query.JoinPred) float64 {
	lc := e.visibleStatsFor(j.Left.Table, j.Left.Column)
	rc := e.visibleStatsFor(j.Right.Table, j.Right.Column)
	if len(lc) > 0 && len(rc) > 0 {
		e.used[lc[0].ID] = true
		e.used[rc[0].ID] = true
		return clampSel(histogram.JoinSelectivity(lc[0].Data.Leading, rc[0].Data.Leading))
	}
	e.missing[j.VarID] = true
	if ov, ok := e.sess.overrides[j.VarID]; ok {
		return clampSel(ov)
	}
	return e.sess.Magic.Join
}

// joinGroupSel estimates the combined selectivity of all join predicates
// between one pair of tables. Predicates multiply independently, each
// estimated by the histogram dot product; with two or more predicates the
// pair of multi-column statistics on the (sorted) join columns of each side
// (§7.1's per-table join-column statistic), when visible, caps the product
// from below via the containment bound 1/max(DV_left, DV_right) — the
// correlation correction for composite foreign keys, without ever overriding
// a histogram-based estimate with a cruder one.
func (e *estimator) joinGroupSel(preds []query.JoinPred) float64 {
	sel := 1.0
	for _, p := range preds {
		sel *= e.joinSel(p)
	}
	sel = clampSel(sel)
	if len(preds) >= 2 {
		lTable, rTable := preds[0].Left.Table, preds[0].Right.Table
		lCols := make([]string, len(preds))
		rCols := make([]string, len(preds))
		for i, p := range preds {
			lCols[i], rCols[i] = p.Left.Column, p.Right.Column
		}
		sort.Strings(lCols)
		sort.Strings(rCols)
		lStat := e.visibleStatByID(stats.MakeID(lTable, lCols))
		rStat := e.visibleStatByID(stats.MakeID(rTable, rCols))
		if lStat != nil && rStat != nil {
			e.used[lStat.ID] = true
			e.used[rStat.ID] = true
			lv := float64(lStat.Data.DistinctPrefix(len(lCols)))
			rv := float64(rStat.Data.DistinctPrefix(len(rCols)))
			m := lv
			if rv > m {
				m = rv
			}
			if m >= 1 && sel < 1/m {
				sel = clampSel(1 / m)
			}
		}
	}
	return sel
}

// groupCount estimates the number of groups a GROUP BY / DISTINCT produces
// from inputRows input rows. When every grouping column is covered by
// statistics the estimate is the (capped) product of per-table distinct
// counts; otherwise the clause's distinct-fraction variable is missing and
// the override or magic fraction applies (§4.1).
func (e *estimator) groupCount(inputRows float64) float64 {
	cols := e.q.GroupingColumns()
	if len(cols) == 0 {
		return inputRows
	}
	byTable := make(map[string][]string)
	var tables []string
	for _, c := range cols {
		t := strings.ToLower(c.Table)
		if _, ok := byTable[t]; !ok {
			tables = append(tables, t)
		}
		byTable[t] = append(byTable[t], strings.ToLower(c.Column))
	}
	sort.Strings(tables)
	distinct := 1.0
	covered := true
	for _, t := range tables {
		tcols := byTable[t]
		sort.Strings(tcols)
		if len(tcols) >= 2 {
			if st := e.visibleStatByID(stats.MakeID(t, tcols)); st != nil {
				e.used[st.ID] = true
				dv := float64(st.Data.DistinctPrefix(len(tcols)))
				if dv < 1 {
					dv = 1
				}
				distinct *= dv
				continue
			}
		}
		// Fall back to independent per-column distinct counts, capped by
		// the table cardinality.
		prod := 1.0
		ok := true
		for _, c := range tcols {
			v, has := e.distinctOf(query.ColumnRef{Table: t, Column: c})
			if !has {
				ok = false
				break
			}
			prod *= v
		}
		if !ok {
			covered = false
			break
		}
		if td, err := e.sess.prov.Database().Table(t); err == nil {
			if cap := float64(td.RowCount()); prod > cap && cap >= 1 {
				prod = cap
			}
		}
		distinct *= prod
	}
	if covered {
		if distinct > inputRows {
			distinct = inputRows
		}
		if distinct < 1 {
			distinct = 1
		}
		return distinct
	}
	if e.q.GroupVarID >= 0 {
		e.missing[e.q.GroupVarID] = true
		if ov, ok := e.sess.overrides[e.q.GroupVarID]; ok {
			g := clampSel(ov) * inputRows
			if g < 1 {
				g = 1
			}
			return g
		}
	}
	g := e.sess.Magic.GroupFrac * inputRows
	if g < 1 {
		g = 1
	}
	return g
}

// missingVars returns the sorted selectivity-variable IDs that fell back to
// magic numbers during estimation.
func (e *estimator) missingVars() []int {
	out := make([]int, 0, len(e.missing))
	for v := range e.missing {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// usedStats returns the sorted IDs of statistics consulted.
func (e *estimator) usedStats() []stats.ID {
	out := make([]stats.ID, 0, len(e.used))
	for id := range e.used {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
