package optimizer

import (
	"autostats/internal/catalog"
	"autostats/internal/query"
)

// sameConstants reports whether two template-equal statements carry the same
// lifted constants (filter and HAVING literals). When they do, the cached
// plan can be served unchanged — in particular, repeated optimization of the
// same *Select returns the identical *Plan pointer.
func sameConstants(a, b *query.Select) bool {
	if a == b {
		return true
	}
	if len(a.Filters) != len(b.Filters) || len(a.Having) != len(b.Having) {
		return false
	}
	for i := range a.Filters {
		if a.Filters[i].Val != b.Filters[i].Val {
			return false
		}
	}
	for i := range a.Having {
		if a.Having[i].Val != b.Having[i].Val {
			return false
		}
	}
	return true
}

// rebindPlan clones a cached plan for a template-equal query with different
// constants. The plan shape, cardinality estimates and costs carry over —
// the cache key's bucket vector guarantees the new constants sit in the same
// selectivity regime the plan was costed under — but every literal embedded
// in the tree (scan/seek Filters, SeekFilters, HAVING predicates) is
// substituted with q's, so execution evaluates exactly the new statement.
// Filters substitute by selectivity-variable identity; template equality
// guarantees the VarID assignment (dense, in filter order) corresponds.
func rebindPlan(cached *Plan, q *query.Select) *Plan {
	byVar := make(map[int]catalog.Datum, len(q.Filters))
	for _, f := range q.Filters {
		byVar[f.VarID] = f.Val
	}
	return &Plan{
		Root:        rebindNode(cached.Root, byVar, q),
		Query:       q,
		UsedStats:   cached.UsedStats,
		MissingVars: cached.MissingVars,
		RawBaseRows: cached.RawBaseRows,
	}
}

func rebindNode(n *Node, byVar map[int]catalog.Datum, q *query.Select) *Node {
	m := *n
	if len(n.Children) > 0 {
		m.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			m.Children[i] = rebindNode(ch, byVar, q)
		}
	}
	if len(n.Filters) > 0 {
		m.Filters = rebindFilters(n.Filters, byVar)
	}
	if len(n.SeekFilters) > 0 {
		m.SeekFilters = rebindFilters(n.SeekFilters, byVar)
	}
	// HAVING predicates carry no selectivity variable; template equality
	// guarantees q.Having matches the node's slice position-for-position.
	if len(n.Having) > 0 && len(q.Having) == len(n.Having) {
		m.Having = q.Having
	}
	return &m
}

func rebindFilters(fs []query.Filter, byVar map[int]catalog.Datum) []query.Filter {
	out := make([]query.Filter, len(fs))
	copy(out, fs)
	for i := range out {
		if v, ok := byVar[out[i].VarID]; ok {
			out[i].Val = v
		}
	}
	return out
}
