package optimizer

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"autostats/internal/catalog"
	"autostats/internal/datagen"
	"autostats/internal/histogram"
	"autostats/internal/query"
	"autostats/internal/stats"
	"autostats/internal/storage"
)

func testSession(t testing.TB, z float64) (*Session, *storage.Database) {
	t.Helper()
	db, err := datagen.Generate(datagen.Config{Scale: 0.5, Z: z, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	mgr := stats.NewManager(db, histogram.MaxDiff, 0)
	return NewSession(mgr), db
}

// q builds a normalized Select programmatically.
func mkSelect(tables []string, filters []query.Filter, joins []query.JoinPred, groupBy []query.ColumnRef) *query.Select {
	s := &query.Select{Tables: tables, Filters: filters, Joins: joins, GroupBy: groupBy, GroupVarID: -1}
	s.Normalize()
	return s
}

func col(t, c string) query.ColumnRef { return query.ColumnRef{Table: t, Column: c} }

func TestSingleTableScanPlan(t *testing.T) {
	sess, db := testSession(t, 0)
	q := mkSelect([]string{"lineitem"},
		[]query.Filter{{Col: col("lineitem", "l_quantity"), Op: query.Lt, Val: catalog.NewFloat(10)}},
		nil, nil)
	p, err := sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Op != OpTableScan {
		t.Errorf("expected TableScan, got %s", p.Root.Op)
	}
	n := float64(mustTable(t, db, "lineitem").RowCount())
	if p.Root.Cost != n*CostRowScan {
		t.Errorf("scan cost = %v, want %v", p.Root.Cost, n)
	}
	if len(p.MissingVars) != 1 {
		t.Errorf("missing vars = %v", p.MissingVars)
	}
}

// TestAccessPathFlipsWithStats: the core §1 phenomenon in miniature — with
// no statistics, a magic range selectivity of 0.30 keeps a table scan; once
// a histogram reveals a highly selective predicate, the index seek wins.
func TestAccessPathFlipsWithStats(t *testing.T) {
	sess, _ := testSession(t, 2)
	// o_orderdate is indexed; under z=2 dates cluster near 8035, so a high
	// cutoff is very selective.
	q := mkSelect([]string{"orders"},
		[]query.Filter{{Col: col("orders", "o_orderdate"), Op: query.Gt, Val: catalog.NewDate(10400)}},
		nil, nil)
	before, err := sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if before.Root.Op != OpTableScan {
		t.Fatalf("with magic 0.30 expected TableScan, got %s", before.Root.Op)
	}
	if _, err := sess.Manager().Create("orders", []string{"o_orderdate"}); err != nil {
		t.Fatal(err)
	}
	after, err := sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Root.Op != OpIndexSeek {
		t.Errorf("with statistics expected IndexSeek, got %s\n%s", after.Root.Op, after.Format())
	}
	if len(after.MissingVars) != 0 {
		t.Errorf("missing vars after stats = %v", after.MissingVars)
	}
	if len(after.UsedStats) == 0 {
		t.Error("UsedStats should record the consulted statistic")
	}
}

func TestIgnoreStatisticsSubset(t *testing.T) {
	sess, _ := testSession(t, 2)
	id, _ := sess.Manager().Create("orders", []string{"o_orderdate"})
	q := mkSelect([]string{"orders"},
		[]query.Filter{{Col: col("orders", "o_orderdate"), Op: query.Gt, Val: catalog.NewDate(10400)}},
		nil, nil)
	with, _ := sess.Optimize(q)
	if err := sess.IgnoreStatisticsSubset(sess.Manager().Database().Name, []stats.ID{id.ID}); err != nil {
		t.Fatal(err)
	}
	without, _ := sess.Optimize(q)
	if with.Signature() == without.Signature() {
		t.Error("ignoring the only relevant statistic should change the plan")
	}
	if len(without.MissingVars) != 1 {
		t.Errorf("ignored statistic should make the variable missing: %v", without.MissingVars)
	}
	// Wrong database id: the call must fail and leave the buffer untouched.
	sess.ClearIgnored()
	if err := sess.IgnoreStatisticsSubset("not-this-db", []stats.ID{id.ID}); err == nil {
		t.Error("IgnoreStatisticsSubset with wrong db id should return an error")
	}
	if sess.Ignored(id.ID) {
		t.Error("failed IgnoreStatisticsSubset must not modify the ignore buffer")
	}
	again, _ := sess.Optimize(q)
	if again.Signature() != with.Signature() {
		t.Error("failed IgnoreStatisticsSubset must not change planning")
	}
	sess.ClearIgnored()
}

// TestOverridesOnlyApplyWhenMissing: §7.2 — a selectivity parameter replaces
// the MAGIC NUMBER, never a histogram estimate.
func TestOverridesOnlyApplyWhenMissing(t *testing.T) {
	sess, _ := testSession(t, 2)
	q := mkSelect([]string{"orders"},
		[]query.Filter{{Col: col("orders", "o_totalprice"), Op: query.Gt, Val: catalog.NewFloat(100)}},
		nil, []query.ColumnRef{col("orders", "o_orderpriority")})
	// Missing: override moves the estimate.
	sess.SetSelectivityOverrides(map[int]float64{0: 0.001})
	low, _ := sess.Optimize(q)
	sess.SetSelectivityOverrides(map[int]float64{0: 0.999})
	high, _ := sess.Optimize(q)
	sess.ClearOverrides()
	if low.Cost() >= high.Cost() {
		t.Errorf("override should move cost: low %v, high %v", low.Cost(), high.Cost())
	}
	// Covered: override is inert.
	if _, err := sess.Manager().Create("orders", []string{"o_totalprice"}); err != nil {
		t.Fatal(err)
	}
	base, _ := sess.Optimize(q)
	sess.SetSelectivityOverrides(map[int]float64{0: 0.001})
	ov, _ := sess.Optimize(q)
	sess.ClearOverrides()
	if base.Cost() != ov.Cost() {
		t.Errorf("override applied despite statistics: %v vs %v", base.Cost(), ov.Cost())
	}
}

func TestMissingStatVars(t *testing.T) {
	sess, _ := testSession(t, 0)
	q := mkSelect([]string{"lineitem", "orders"},
		[]query.Filter{
			{Col: col("lineitem", "l_quantity"), Op: query.Lt, Val: catalog.NewFloat(10)},
			{Col: col("orders", "o_totalprice"), Op: query.Gt, Val: catalog.NewFloat(1000)},
		},
		[]query.JoinPred{{Left: col("lineitem", "l_orderkey"), Right: col("orders", "o_orderkey")}},
		[]query.ColumnRef{col("orders", "o_orderpriority")})
	missing := sess.MissingStatVars(q)
	if len(missing) != 4 {
		t.Fatalf("all 4 vars should be missing, got %v", missing)
	}
	// Join stats cover the join var; one side alone does not.
	_, _ = sess.Manager().Create("lineitem", []string{"l_orderkey"})
	if got := sess.MissingStatVars(q); len(got) != 4 {
		t.Errorf("join var needs BOTH sides: %v", got)
	}
	_, _ = sess.Manager().Create("orders", []string{"o_orderkey"})
	if got := sess.MissingStatVars(q); len(got) != 3 {
		t.Errorf("after join pair: %v", got)
	}
	_, _ = sess.Manager().Create("lineitem", []string{"l_quantity"})
	_, _ = sess.Manager().Create("orders", []string{"o_totalprice"})
	if got := sess.MissingStatVars(q); len(got) != 1 || got[0] != q.GroupVarID {
		t.Errorf("only the group var should remain: %v", got)
	}
	_, _ = sess.Manager().Create("orders", []string{"o_orderpriority"})
	if got := sess.MissingStatVars(q); len(got) != 0 {
		t.Errorf("nothing should be missing: %v", got)
	}
}

// TestCostMonotonicity is the property MNSA's correctness rests on (§4.1):
// the optimizer-estimated cost is monotone in every selectivity variable.
// We pin all missing variables to random vectors u ≤ v and require
// Cost(P(u)) ≤ Cost(P(v)); since the optimizer returns the min-cost plan
// and every individual plan's cost is monotone, the minimum is monotone.
func TestCostMonotonicity(t *testing.T) {
	sess, _ := testSession(t, 1)
	queries := []*query.Select{
		mkSelect([]string{"lineitem", "orders"},
			[]query.Filter{
				{Col: col("lineitem", "l_quantity"), Op: query.Lt, Val: catalog.NewFloat(10)},
				{Col: col("orders", "o_totalprice"), Op: query.Gt, Val: catalog.NewFloat(1000)},
			},
			[]query.JoinPred{{Left: col("lineitem", "l_orderkey"), Right: col("orders", "o_orderkey")}},
			nil),
		mkSelect([]string{"lineitem", "orders", "customer"},
			[]query.Filter{
				{Col: col("customer", "c_acctbal"), Op: query.Gt, Val: catalog.NewFloat(0)},
			},
			[]query.JoinPred{
				{Left: col("lineitem", "l_orderkey"), Right: col("orders", "o_orderkey")},
				{Left: col("orders", "o_custkey"), Right: col("customer", "c_custkey")},
			},
			[]query.ColumnRef{col("customer", "c_mktsegment")}),
	}
	rng := rand.New(rand.NewSource(17))
	for qi, q := range queries {
		nv := q.NumVars()
		f := func() bool {
			u := make(map[int]float64, nv)
			v := make(map[int]float64, nv)
			for i := 0; i < nv; i++ {
				a := rng.Float64()
				b := a + rng.Float64()*(1-a)
				u[i], v[i] = a, b
			}
			sess.SetSelectivityOverrides(u)
			pu, err := sess.Optimize(q)
			if err != nil {
				t.Fatal(err)
			}
			sess.SetSelectivityOverrides(v)
			pv, err := sess.Optimize(q)
			if err != nil {
				t.Fatal(err)
			}
			sess.ClearOverrides()
			// Allow a hair of float slack.
			return pu.Cost() <= pv.Cost()*(1+1e-9)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("query %d violates cost monotonicity: %v", qi, err)
		}
	}
}

func TestJoinPlanShapes(t *testing.T) {
	sess, _ := testSession(t, 0)
	q := mkSelect([]string{"lineitem", "orders"}, nil,
		[]query.JoinPred{{Left: col("lineitem", "l_orderkey"), Right: col("orders", "o_orderkey")}},
		nil)
	p, err := sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	switch p.Root.Op {
	case OpHashJoin, OpMergeJoin, OpIndexNLJoin, OpNestedLoopJoin:
	default:
		t.Errorf("join query produced %s", p.Root.Op)
	}
	if len(p.Root.Children) != 2 {
		t.Errorf("join has %d children", len(p.Root.Children))
	}
}

func TestEightWayJoinCompletes(t *testing.T) {
	sess, db := testSession(t, 0)
	tables := db.Schema.TableNames()
	if len(tables) != 8 {
		t.Fatalf("TPC-D has %d tables", len(tables))
	}
	var joins []query.JoinPred
	for _, fk := range db.Schema.ForeignKeys {
		joins = append(joins, query.JoinPred{
			Left:  col(strings.ToLower(fk.Table), strings.ToLower(fk.Column)),
			Right: col(strings.ToLower(fk.RefTable), strings.ToLower(fk.RefColumn)),
		})
	}
	q := mkSelect(tables, nil, joins, nil)
	p, err := sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Count the base tables in the plan.
	seen := map[string]bool{}
	var walk func(*Node)
	walk = func(n *Node) {
		if n.Table != "" {
			seen[n.Table] = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
	if len(seen) != 8 {
		t.Errorf("plan covers %d tables, want 8", len(seen))
	}
}

func TestCartesianFallback(t *testing.T) {
	sess, _ := testSession(t, 0)
	q := mkSelect([]string{"region", "nation"}, nil, nil, nil) // no join pred
	p, err := sess.Optimize(q)
	if err != nil {
		t.Fatalf("disconnected query must still plan: %v", err)
	}
	if p.Root.EstRows < 100 {
		t.Errorf("cartesian estimate too low: %v", p.Root.EstRows)
	}
}

func TestOptimizeErrors(t *testing.T) {
	sess, _ := testSession(t, 0)
	if _, err := sess.Optimize(&query.Select{}); err == nil {
		t.Error("no tables should error")
	}
	dup := mkSelect([]string{"orders", "orders"}, nil, nil, nil)
	if _, err := sess.Optimize(dup); err == nil {
		t.Error("self-join should error")
	}
	badJoin := mkSelect([]string{"orders"}, nil,
		[]query.JoinPred{{Left: col("orders", "o_custkey"), Right: col("customer", "c_custkey")}}, nil)
	if _, err := sess.Optimize(badJoin); err == nil {
		t.Error("join referencing absent table should error")
	}
}

func TestSignatureStability(t *testing.T) {
	sess, _ := testSession(t, 1)
	q := mkSelect([]string{"lineitem", "orders"},
		[]query.Filter{{Col: col("lineitem", "l_quantity"), Op: query.Lt, Val: catalog.NewFloat(10)}},
		[]query.JoinPred{{Left: col("lineitem", "l_orderkey"), Right: col("orders", "o_orderkey")}},
		nil)
	p1, _ := sess.Optimize(q)
	p2, _ := sess.Optimize(q)
	if p1.Signature() != p2.Signature() {
		t.Error("optimization must be deterministic")
	}
	if p1.Cost() != p2.Cost() {
		t.Error("cost must be deterministic")
	}
}

func TestGroupAggregateChoice(t *testing.T) {
	sess, _ := testSession(t, 0)
	mgr := sess.Manager()
	// High-cardinality grouping: with statistics the optimizer should know
	// the group count is near the input size and prefer the sort-based
	// aggregate; with the magic fraction (0.1) it prefers hash.
	q := mkSelect([]string{"orders"}, nil, nil, []query.ColumnRef{col("orders", "o_orderkey")})
	before, _ := sess.Optimize(q)
	if before.Root.Op != OpHashAggregate {
		t.Errorf("magic group fraction should pick HashAgg, got %s", before.Root.Op)
	}
	_, _ = mgr.Create("orders", []string{"o_orderkey"})
	after, _ := sess.Optimize(q)
	if after.Root.Op != OpStreamAggregate {
		t.Errorf("known high-cardinality grouping should pick StreamAgg, got %s", after.Root.Op)
	}
}

func TestMultiColumnDensityUsedForEqConjunction(t *testing.T) {
	sess, _ := testSession(t, 2)
	mgr := sess.Manager()
	q := mkSelect([]string{"part"},
		[]query.Filter{
			{Col: col("part", "p_brand"), Op: query.Eq, Val: catalog.NewString("Brand#11")},
			{Col: col("part", "p_container"), Op: query.Eq, Val: catalog.NewString("SM BAG")},
		}, nil, nil)
	_, _ = mgr.Create("part", []string{"p_brand"})
	_, _ = mgr.Create("part", []string{"p_container"})
	indep, _ := sess.Optimize(q)
	_, _ = mgr.Create("part", []string{"p_brand", "p_container"})
	multi, _ := sess.Optimize(q)
	usesMulti := false
	for _, id := range multi.UsedStats {
		if id == stats.MakeID("part", []string{"p_brand", "p_container"}) {
			usesMulti = true
		}
	}
	if !usesMulti {
		t.Error("multi-column statistic should be consulted for the equality conjunction")
	}
	_ = indep
}
