package optimizer

import (
	"testing"

	"autostats/internal/storage"
)

// mustTable fetches a table the test itself created, failing the test on a
// bad name (the library API returns an error instead of panicking).
func mustTable(t *testing.T, db *storage.Database, name string) *storage.TableData {
	t.Helper()
	td, err := db.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	return td
}
