package optimizer

import (
	"sync"
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/query"
	"autostats/internal/sqlparser"
	"autostats/internal/stats"
)

// TestPlanCacheParameterizedHit: the tentpole behavior. Statements that share
// a template and whose constants sit in the same selectivity regime hit one
// cache entry; the served plan carries the new statement's literals.
func TestPlanCacheParameterizedHit(t *testing.T) {
	sess, c := cachedSession(t, 8)
	q1, q2 := dateQuery(10000), dateQuery(10200)
	// No statistics exist, so both constants share the missing-stat bucket.
	p1, err := sess.Optimize(q1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sess.Optimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("parameter-differing statements should share an entry: %+v", st)
	}
	if p1 == p2 {
		t.Fatal("a rebound hit must not alias the cached plan")
	}
	if got := p2.Root.Filters[0].Val; got != q2.Filters[0].Val {
		t.Errorf("served plan carries literal %v, want q2's %v", got, q2.Filters[0].Val)
	}
	if p1.Root.Filters[0].Val != q1.Filters[0].Val {
		t.Error("rebinding must not mutate the cached plan's literals")
	}
	if p2.Query != q2 {
		t.Error("served plan must reference the statement it answers")
	}
	// Shape and cost carry over; Signature differs only in the literals.
	if p2.Cost() != p1.Cost() || p2.Root.Op != p1.Root.Op {
		t.Error("same-bucket rebind should preserve shape and cost")
	}
}

// TestPlanCacheRebindSeekFilters: rebinding must reach literals embedded in
// index-seek nodes, not just scan filters — a served seek with a stale
// constant would fetch the wrong rows.
func TestPlanCacheRebindSeekFilters(t *testing.T) {
	sess, c := cachedSession(t, 8)
	if _, err := sess.Manager().Create("orders", []string{"o_orderdate"}); err != nil {
		t.Fatal(err)
	}
	// Find two cutoffs whose histogram estimates land in the same
	// power-of-two bucket so the second lookup is a guaranteed hit.
	mk := func(cutoff int64) *query.Select { return dateQuery(cutoff) }
	base := int64(10500) // selective tail of the 8035..10591 date range
	b0 := sess.filterBucket(mk(base).Filters[0])
	var partner int64
	for d := base + 1; d < base+400; d++ {
		if sess.filterBucket(mk(d).Filters[0]) == b0 {
			partner = d
			break
		}
	}
	if partner == 0 {
		t.Skip("no same-bucket partner cutoff in range")
	}
	q1, q2 := mk(base), mk(partner)
	p1, err := sess.Optimize(q1)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Root.Op != OpIndexSeek {
		t.Fatalf("selective predicate with a histogram should seek, got %s", p1.Root.Op)
	}
	p2, err := sess.Optimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("same-bucket cutoffs should hit: %+v", st)
	}
	if got := p2.Root.SeekFilters[0].Val; got != q2.Filters[0].Val {
		t.Errorf("seek literal = %v, want %v", got, q2.Filters[0].Val)
	}
	if p1.Root.SeekFilters[0].Val != q1.Filters[0].Val {
		t.Error("cached plan's seek literal must be untouched")
	}
}

// TestPlanCacheBucketKeying: constants in different selectivity regimes get
// different keys — a plan costed for a 0.1% predicate must not be served to a
// 50% one.
func TestPlanCacheBucketKeying(t *testing.T) {
	sess, c := cachedSession(t, 8)
	if _, err := sess.Manager().Create("orders", []string{"o_orderdate"}); err != nil {
		t.Fatal(err)
	}
	wide, narrow := dateQuery(8100), dateQuery(10500) // ~everything vs. tail
	bw := sess.filterBucket(wide.Filters[0])
	bn := sess.filterBucket(narrow.Filters[0])
	if bw == bn {
		t.Fatalf("test constants must straddle a bucket boundary (both %d)", bw)
	}
	if _, err := sess.Optimize(wide); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Optimize(narrow); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 2 || st.Size != 2 {
		t.Errorf("different regimes must be distinct entries: %+v", st)
	}
}

// TestPlanCacheCanonicalTextHit: trivially different SQL texts — whitespace,
// keyword/identifier case, comments, redundant parentheses — must share one
// cache entry (the PR 3 benchmark's 0% hit rate came from keying on raw SQL).
func TestPlanCacheCanonicalTextHit(t *testing.T) {
	sess, c := cachedSession(t, 8)
	schema := sess.Manager().Database().Schema
	variants := []string{
		"SELECT * FROM orders WHERE o_totalprice > 1000",
		"select * from ORDERS where O_TOTALPRICE > 1000",
		"SELECT  *  FROM\n\torders\nWHERE  o_totalprice  >  1000",
		"SELECT * FROM orders WHERE (o_totalprice > 1000)",
		"SELECT * FROM orders WHERE ((o_totalprice > 1000)) -- tail comment",
		"SELECT /* hint */ * FROM orders WHERE o_totalprice > 1000 /* done */",
	}
	var first *Plan
	for i, sql := range variants {
		q, err := sqlparser.ParseSelect(schema, sql)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		p, err := sess.Optimize(q)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if i == 0 {
			first = p
			continue
		}
		if p != first {
			t.Errorf("variant %d (%q) missed the cache", i, sql)
		}
	}
	if st := c.Stats(); st.Hits != uint64(len(variants)-1) || st.Misses != 1 || st.Size != 1 {
		t.Errorf("canonicalization stats: %+v", st)
	}
}

// TestPlanCacheFilterCountBypass: statements with more filters than the key's
// bucket vector can carry skip the cache in both directions.
func TestPlanCacheFilterCountBypass(t *testing.T) {
	sess, c := cachedSession(t, 8)
	filters := make([]query.Filter, maxCachedParams+1)
	for i := range filters {
		filters[i] = query.Filter{Col: col("orders", "o_totalprice"), Op: query.Gt, Val: catalog.NewFloat(float64(i))}
	}
	q := mkSelect([]string{"orders"}, filters, nil, nil)
	p1, err := sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("over-wide statements must not be cached")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Size != 0 {
		t.Errorf("bypass should not touch the cache: %+v", st)
	}
}

// TestCacheKeyNoAlloc: assembling the cache key from the precomputed
// template, buckets and knob strings performs zero allocations, even with a
// populated ignore buffer and override set (satellite: the old key re-sorted
// and re-joined both maps on every lookup).
func TestCacheKeyNoAlloc(t *testing.T) {
	sess, _ := cachedSession(t, 8)
	if err := sess.IgnoreStatisticsSubset("", []stats.ID{
		stats.MakeID("orders", []string{"o_orderdate"}),
		stats.MakeID("orders", []string{"o_totalprice"}),
	}); err != nil {
		t.Fatal(err)
	}
	sess.SetSelectivityOverrides(map[int]float64{0: 0.25, 3: 0.001})
	q := dateQuery(10400)
	tmpl, buckets := sess.planParams(q)
	if n := testing.AllocsPerRun(200, func() {
		key := sess.cacheKey(tmpl, buckets)
		_ = key
	}); n != 0 {
		t.Errorf("cacheKey allocates %v times per call, want 0", n)
	}
}

func BenchmarkCacheKey(b *testing.B) {
	sess, _ := cachedSession(b, 8)
	sess.SetSelectivityOverrides(map[int]float64{0: 0.25, 3: 0.001})
	q := dateQuery(10400)
	tmpl, buckets := sess.planParams(q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := sess.cacheKey(tmpl, buckets)
		_ = key
	}
}

// TestPlanCacheShardedAggregation: a capacity large enough to shard still
// reports exact totals through Stats/Len/Keys, and Clear empties every shard.
func TestPlanCacheShardedAggregation(t *testing.T) {
	sess, c := cachedSession(t, 64)
	if got := c.Stats().Shards; got != defaultPlanCacheShards {
		t.Fatalf("shards = %d, want %d", got, defaultPlanCacheShards)
	}
	// Constants are lifted out of the key, so distinct entries need distinct
	// statement shapes: vary the operator, the filtered column and the
	// projection to spread 16 templates over the shards.
	ops := []query.CmpOp{query.Gt, query.Ge, query.Lt, query.Le}
	const n = 16
	for i := 0; i < n; i++ {
		var f query.Filter
		if i%2 == 0 {
			f = query.Filter{Col: col("orders", "o_totalprice"), Op: ops[i/2%4], Val: catalog.NewFloat(1000)}
		} else {
			f = query.Filter{Col: col("orders", "o_custkey"), Op: ops[i/2%4], Val: catalog.NewInt(50)}
		}
		q := mkSelect([]string{"orders"}, []query.Filter{f}, nil, nil)
		if i >= 8 {
			q.Projection = []query.ColumnRef{col("orders", "o_custkey")}
		}
		if _, err := sess.Optimize(q); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Size != c.Len() {
		t.Errorf("Stats().Size=%d disagrees with Len()=%d", st.Size, c.Len())
	}
	if keys := c.Keys(); len(keys) != st.Size {
		t.Errorf("Keys() length %d, want %d", len(keys), st.Size)
	}
	c.Clear()
	if c.Len() != 0 || len(c.Keys()) != 0 {
		t.Error("Clear must empty every shard")
	}
	if got := c.Stats(); got.Hits != st.Hits || got.Misses != st.Misses {
		t.Error("Clear must preserve counters")
	}
}

// TestPlanCacheShardedChurn: concurrent cached optimization across clones
// while another goroutine drains Stats/Keys/Len. Bar: -race clean, and every
// Keys snapshot internally consistent (entry count never exceeds capacity).
func TestPlanCacheShardedChurn(t *testing.T) {
	proto, c := cachedSession(t, 64)
	queries := make([]*query.Select, 8)
	for i := range queries {
		queries[i] = mkSelect([]string{"orders"},
			[]query.Filter{{Col: col("orders", "o_totalprice"), Op: query.Gt, Val: catalog.NewFloat(float64(50 * i))}},
			nil, nil)
		if i%2 == 0 {
			queries[i].Projection = []query.ColumnRef{col("orders", "o_custkey")}
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := proto.Clone()
			for i := 0; i < 60; i++ {
				if _, err := sess.Optimize(queries[(w+i)%len(queries)]); err != nil {
					t.Errorf("optimize: %v", err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if got := len(c.Keys()); got > 64 {
				t.Errorf("Keys snapshot has %d entries, capacity 64", got)
				return
			}
			_ = c.Stats()
			_ = c.Len()
		}
	}()
	wg.Wait()
	<-done
}
