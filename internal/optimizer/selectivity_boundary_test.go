package optimizer

import (
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/histogram"
	"autostats/internal/query"
	"autostats/internal/stats"
	"autostats/internal/storage"
)

// boundarySession builds a session over a hand-constructed single-table
// database so each boundary distribution (empty, single-value, all-NULL,
// mixed) is exact rather than sampled.
func boundarySession(t *testing.T, rows []storage.Row) (*Session, *stats.Manager) {
	t.Helper()
	schema := catalog.NewSchema()
	tab := catalog.NewTable("b",
		catalog.Column{Name: "k", Type: catalog.Int},
		catalog.Column{Name: "v", Type: catalog.Int},
	)
	tab.PrimaryKey = "k"
	if err := schema.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	db, err := storage.NewDatabase("boundary", schema)
	if err != nil {
		t.Fatal(err)
	}
	td, err := db.Table("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) > 0 {
		if err := td.BulkLoad(rows); err != nil {
			t.Fatal(err)
		}
	}
	mgr := stats.NewManager(db, histogram.MaxDiff, 0)
	if _, err := mgr.Create("b", []string{"v"}); err != nil {
		t.Fatal(err)
	}
	return NewSession(mgr), mgr
}

func filterRows(t *testing.T, sess *Session, op query.CmpOp, val int64) float64 {
	t.Helper()
	s := &query.Select{
		Tables:     []string{"b"},
		Filters:    []query.Filter{{Col: query.ColumnRef{Table: "b", Column: "v"}, Op: op, Val: catalog.NewInt(val)}},
		GroupVarID: -1,
	}
	s.Normalize()
	p, err := sess.Optimize(s)
	if err != nil {
		t.Fatal(err)
	}
	return p.Root.EstRows
}

// TestSelectivityEmptyTable: with a statistic built over zero rows every
// estimate must stay finite and non-negative — the optimizer floors
// cardinalities rather than collapsing to NaN or negative rows.
func TestSelectivityEmptyTable(t *testing.T) {
	sess, _ := boundarySession(t, nil)
	for _, op := range []query.CmpOp{query.Eq, query.Ne, query.Lt, query.Le, query.Gt, query.Ge} {
		got := filterRows(t, sess, op, 5)
		if got != got || got < 0 { // NaN or negative
			t.Errorf("op %v over empty table estimated %v rows", op, got)
		}
		if got > 1 {
			t.Errorf("op %v over empty table estimated %v rows, want <= 1", op, got)
		}
	}
}

// TestSelectivitySingleValueColumn: the estimate for the lone value must be
// the full table; misses must floor near zero (MinSelectivity), never go
// negative.
func TestSelectivitySingleValueColumn(t *testing.T) {
	var rows []storage.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, storage.Row{catalog.NewInt(int64(i)), catalog.NewInt(7)})
	}
	sess, _ := boundarySession(t, rows)
	if got := filterRows(t, sess, query.Eq, 7); got != 100 {
		t.Errorf("Eq on the lone value estimated %v rows, want 100", got)
	}
	if got := filterRows(t, sess, query.Eq, 8); got > 100*MinSelectivity+1e-9 {
		t.Errorf("Eq miss estimated %v rows, want the MinSelectivity floor", got)
	}
	// Ne of the lone value matches nothing; Ne of a miss matches all.
	if got := filterRows(t, sess, query.Ne, 7); got > 100*MinSelectivity+1e-9 {
		t.Errorf("Ne of the lone value estimated %v rows, want floor", got)
	}
	if got := filterRows(t, sess, query.Ne, 12345); got != 100 {
		t.Errorf("Ne miss estimated %v rows, want 100", got)
	}
}

// TestSelectivityAllNullColumn: NULL never satisfies a comparison, so every
// predicate over an all-NULL column must estimate (floored) zero rows even
// though the table itself is large.
func TestSelectivityAllNullColumn(t *testing.T) {
	var rows []storage.Row
	for i := 0; i < 200; i++ {
		rows = append(rows, storage.Row{catalog.NewInt(int64(i)), catalog.NewNull(catalog.Int)})
	}
	sess, _ := boundarySession(t, rows)
	floor := 200*MinSelectivity + 1e-9
	for _, op := range []query.CmpOp{query.Eq, query.Ne, query.Lt, query.Le, query.Gt, query.Ge} {
		if got := filterRows(t, sess, op, 0); got > floor {
			t.Errorf("op %v over all-NULL column estimated %v rows, want <= %v", op, got, floor)
		}
	}
}

// TestSelectivityOutOfRange: probes far outside the summarized domain must
// clamp to the floor on the empty side and the full table on the covering
// side — mirroring the histogram-level contract through the whole
// estimation path, including the NULL adjustment for Gt/Ge/Ne.
func TestSelectivityOutOfRange(t *testing.T) {
	var rows []storage.Row
	for i := 0; i < 100; i++ {
		v := catalog.NewInt(int64(10 + i%20))
		if i%4 == 0 { // 25% NULLs to exercise the NullFraction subtraction
			v = catalog.NewNull(catalog.Int)
		}
		rows = append(rows, storage.Row{catalog.NewInt(int64(i)), v})
	}
	sess, _ := boundarySession(t, rows)
	const far = int64(1) << 40
	floor := 100*MinSelectivity + 1e-9
	nonNull := 75.0

	if got := filterRows(t, sess, query.Lt, -far); got > floor {
		t.Errorf("Lt far below estimated %v rows, want floor", got)
	}
	if got := filterRows(t, sess, query.Gt, far); got > floor {
		t.Errorf("Gt far above estimated %v rows, want floor", got)
	}
	// The covering side must count only non-NULL rows: NULLs fail "< huge"
	// at execution, and the estimator subtracts NullFraction accordingly.
	if got := filterRows(t, sess, query.Lt, far); got != nonNull {
		t.Errorf("Lt far above estimated %v rows, want %v (NULLs excluded)", got, nonNull)
	}
	if got := filterRows(t, sess, query.Ge, -far); got != nonNull {
		t.Errorf("Ge far below estimated %v rows, want %v (NULLs excluded)", got, nonNull)
	}
	if got := filterRows(t, sess, query.Eq, far); got > floor {
		t.Errorf("Eq far outside estimated %v rows, want floor", got)
	}
}

// TestSelectivityIgnoredStatFallsBackToMagic: when the only statistic is
// ignored (MNSA's what-if mode), the estimator must fall back to the magic
// number rather than a zero estimate.
func TestSelectivityIgnoredStatFallsBackToMagic(t *testing.T) {
	var rows []storage.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, storage.Row{catalog.NewInt(int64(i)), catalog.NewInt(int64(i % 10))})
	}
	sess, mgr := boundarySession(t, rows)
	if err := sess.IgnoreStatisticsSubset("", []stats.ID{stats.MakeID("b", []string{"v"})}); err != nil {
		t.Fatal(err)
	}
	got := filterRows(t, sess, query.Eq, 3)
	want := 100 * sess.Magic.Eq
	if got != want {
		t.Errorf("ignored stat: estimated %v rows, want magic-number estimate %v", got, want)
	}
	_ = mgr
}
