package optimizer

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"time"

	"autostats/internal/query"
)

// Optimize produces the best plan for q under the session's visible
// statistics, ignore buffer and selectivity overrides. The search is
// dynamic programming over connected table subsets with hash, merge,
// nested-loop and index-nested-loop join strategies and scan-vs-seek access
// paths; self-joins are not supported.
func (s *Session) Optimize(q *query.Select) (*Plan, error) {
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("optimizer: query has no tables")
	}
	if len(q.Tables) > 16 {
		return nil, fmt.Errorf("optimizer: %d tables exceeds the 16-table join limit", len(q.Tables))
	}

	// Degraded mode bypasses the cache in both directions: a degraded plan
	// must never be served after statistics recover, and a healthy cached
	// plan under the same key would mask that this statement's statistics
	// were unavailable. Re-optimizing each time makes recovery automatic —
	// the first Optimize after the session's degraded reasons clear produces
	// (and caches) a healthy plan again.
	degraded := len(s.degraded) > 0

	// What-if probes — optimizations under an ignored-statistics subset
	// (MNSA's shrinking-set search) — bypass the cache in both directions
	// too: their plans reflect a hypothetical statistics configuration no
	// production statement will ever run under, so inserting them would
	// pollute the cache with entries that can never be hits, and a tuning
	// sweep would evict the workload's real plans. They are counted as
	// bypasses, not misses: the hit rate should measure the production
	// workload, not the tuner's probes.
	whatIf := len(s.ignored) > 0

	// The cache key is parameterized: the statement template plus the
	// selectivity bucket of each lifted constant (see paramkey.go).
	// Statements with more filters than the key can carry bypass the cache.
	// The epoch is read before the bucket probe and re-checked in the
	// assembled key: if a statistics mutation lands between the two reads the
	// buckets may mix old and new histograms, so the lookup (and the publish
	// below) is abandoned rather than risk caching under a torn key.
	var key planKey
	cacheable := false
	if s.cache != nil && !degraded && !whatIf && len(q.Filters) <= maxCachedParams {
		e0 := s.prov.Epoch()
		tmpl, buckets := s.planParams(q)
		key = s.cacheKey(tmpl, buckets)
		cacheable = key.epoch == e0
		if cacheable {
			if p, ok := s.cache.get(key, q); ok {
				s.met.cacheHits.Inc()
				return p, nil
			}
			s.met.cacheMisses.Inc()
		}
	}

	start := time.Now()
	p, err := s.optimize(q)
	if err != nil {
		return nil, err
	}
	s.met.optimizations.Inc()
	s.met.optimizeLatency.Observe(time.Since(start))
	if degraded {
		p.Degraded = s.DegradedReasons()
		s.met.degradedPlans.Inc()
		if s.cache != nil {
			s.met.cacheBypasses.Inc()
		}
		return p, nil
	}
	if whatIf {
		if s.cache != nil {
			s.met.cacheBypasses.Inc()
		}
		return p, nil
	}
	// Publish only if no statistics, data, or correction mutation raced with
	// this optimization; a plan built from a torn read must not be cached.
	if cacheable && s.prov.Epoch() == key.epoch && s.prov.Database().DataVersion() == key.dataVersion && s.corrVersion() == key.fbver {
		if s.cache.put(key, p) {
			s.met.cacheEvictions.Inc()
		}
	}
	return p, nil
}

func (s *Session) optimize(q *query.Select) (*Plan, error) {
	e := newEstimator(s, q)

	// Map table -> bit position, rejecting self-joins.
	pos := make(map[string]int, len(q.Tables))
	tables := make([]string, len(q.Tables))
	for i, t := range q.Tables {
		lt := strings.ToLower(t)
		if _, dup := pos[lt]; dup {
			return nil, fmt.Errorf("optimizer: self-join on table %s is not supported", t)
		}
		pos[lt] = i
		tables[i] = lt
	}

	// Base table info: raw rows, filtered selectivity, best access path. A
	// learned feedback correction, when one matches the table's predicate
	// signature, multiplies the estimated selectivity; the raw estimate is
	// kept in rawBase so the executor's feedback collector can measure the
	// underlying statistics rather than the correction layer.
	base := make([]baseInfo, len(tables))
	var rawBase map[string]float64
	for i, t := range tables {
		td, err := s.prov.Database().Table(t)
		if err != nil {
			return nil, err
		}
		n := float64(td.RowCount())
		filters := q.FiltersOn(t)
		sel := e.tableSelectivity(t, filters)
		if s.corr != nil && len(filters) > 0 {
			if f, ok := s.corr.CorrectSelectivity(t, query.FilterColumns(filters), query.FilterSignature(filters)); ok {
				if rawBase == nil {
					rawBase = make(map[string]float64)
				}
				rawBase[t] = n * sel
				sel = clampSel(sel * f)
			}
		}
		base[i] = baseInfo{rawRows: n, sel: sel, plan: e.bestAccessPath(t, n, sel, filters)}
	}

	// Group join predicates by (unordered) table pair, orienting Left to the
	// lower-position table so multi-column lookups see consistent sides.
	type pairKey struct{ lo, hi int }
	groups := make(map[pairKey][]query.JoinPred)
	var pairs []pairKey
	for _, j := range q.Joins {
		li, lok := pos[strings.ToLower(j.Left.Table)]
		ri, rok := pos[strings.ToLower(j.Right.Table)]
		if !lok || !rok {
			return nil, fmt.Errorf("optimizer: join predicate %s references a table not in FROM", j)
		}
		if li == ri {
			return nil, fmt.Errorf("optimizer: join predicate %s joins a table to itself", j)
		}
		if li > ri {
			li, ri = ri, li
			j.Left, j.Right = j.Right, j.Left
		}
		k := pairKey{li, ri}
		if _, ok := groups[k]; !ok {
			pairs = append(pairs, k)
		}
		groups[k] = append(groups[k], j)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].lo != pairs[b].lo {
			return pairs[a].lo < pairs[b].lo
		}
		return pairs[a].hi < pairs[b].hi
	})
	pairSel := make(map[pairKey]float64, len(pairs))
	for _, k := range pairs {
		pairSel[k] = e.joinGroupSel(groups[k])
	}

	full := (1 << len(tables)) - 1

	// card returns the estimated output cardinality of joining a table
	// subset: product of filtered base cardinalities and the selectivities
	// of all join-predicate groups internal to the subset.
	cardMemo := make(map[int]float64)
	var card func(mask int) float64
	card = func(mask int) float64 {
		if c, ok := cardMemo[mask]; ok {
			return c
		}
		c := 1.0
		for i := range tables {
			if mask&(1<<i) != 0 {
				c *= base[i].rawRows * base[i].sel
			}
		}
		for _, k := range pairs {
			if mask&(1<<k.lo) != 0 && mask&(1<<k.hi) != 0 {
				c *= pairSel[k]
			}
		}
		if c < MinSelectivity {
			c = MinSelectivity
		}
		cardMemo[mask] = c
		return c
	}

	// connecting returns the oriented predicates between left and right
	// submasks (Left side in leftMask, Right side in rightMask).
	connecting := func(leftMask, rightMask int) []query.JoinPred {
		var out []query.JoinPred
		for _, k := range pairs {
			var ps []query.JoinPred
			switch {
			case leftMask&(1<<k.lo) != 0 && rightMask&(1<<k.hi) != 0:
				ps = groups[k]
			case leftMask&(1<<k.hi) != 0 && rightMask&(1<<k.lo) != 0:
				for _, p := range groups[k] {
					p.Left, p.Right = p.Right, p.Left
					ps = append(ps, p)
				}
			}
			out = append(out, ps...)
		}
		return out
	}

	best := make([]*Node, full+1)
	for i := range tables {
		best[1<<i] = base[i].plan
	}

	masks := make([]int, 0, full)
	for m := 1; m <= full; m++ {
		if bits.OnesCount(uint(m)) >= 2 {
			masks = append(masks, m)
		}
	}
	sort.Slice(masks, func(a, b int) bool {
		ca, cb := bits.OnesCount(uint(masks[a])), bits.OnesCount(uint(masks[b]))
		if ca != cb {
			return ca < cb
		}
		return masks[a] < masks[b]
	})

	for _, mask := range masks {
		outRows := card(mask)
		consider := func(cartesian bool) {
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				rest := mask ^ sub
				left, right := best[sub], best[rest]
				if left == nil || right == nil {
					continue
				}
				preds := connecting(sub, rest)
				if len(preds) == 0 && !cartesian {
					continue
				}
				for _, cand := range e.joinCandidates(left, right, preds, outRows, rest, tables, base, q) {
					if best[mask] == nil || cand.Cost < best[mask].Cost {
						best[mask] = cand
					}
				}
			}
		}
		consider(false)
		if best[mask] == nil {
			consider(true) // disconnected subset: cartesian product fallback
		}
	}

	root := best[full]
	if root == nil {
		return nil, fmt.Errorf("optimizer: failed to build a plan for %s", q.SQL())
	}

	aggs := aggregateSet(q)
	if cols := q.GroupingColumns(); len(cols) > 0 {
		groupRows := e.groupCount(root.EstRows)
		// Hash vs. sort-based aggregation: the choice hinges on the
		// estimated group count, i.e. the GROUP BY selectivity variable.
		op := OpHashAggregate
		cost := HashAggCost(root.EstRows, groupRows)
		if sc := StreamAggCost(root.EstRows, groupRows); sc < cost {
			op, cost = OpStreamAggregate, sc
		}
		outRows := groupRows * havingSelectivity(q)
		if outRows < 1 {
			outRows = 1
		}
		root = &Node{
			Op:         op,
			Children:   []*Node{root},
			GroupBy:    cols,
			Aggregates: aggs,
			Having:     q.Having,
			EstRows:    outRows,
			Cost:       root.Cost + cost,
		}
	} else if len(aggs) > 0 {
		// Scalar aggregate: one pass, one output row.
		root = &Node{
			Op:         OpHashAggregate,
			Children:   []*Node{root},
			Aggregates: aggs,
			Having:     q.Having,
			EstRows:    1,
			Cost:       root.Cost + CostStreamRow*root.EstRows + CostRowOut,
		}
	}
	if len(q.OrderBy) > 0 {
		root = &Node{
			Op:       OpSort,
			Children: []*Node{root},
			SortBy:   q.OrderBy,
			EstRows:  root.EstRows,
			Cost:     root.Cost + SortCost(root.EstRows),
		}
	}

	return &Plan{Root: root, Query: q, UsedStats: e.usedStats(), MissingVars: e.missingVars(), RawBaseRows: rawBase}, nil
}

// aggregateSet unions the SELECT-list aggregates with any extra aggregates
// HAVING references, deduplicated by output key, so the executor computes
// everything the predicates need.
func aggregateSet(q *query.Select) []query.Aggregate {
	out := append([]query.Aggregate(nil), q.Aggregates...)
	seen := make(map[string]bool, len(out))
	for _, a := range out {
		seen[a.Key()] = true
	}
	for _, h := range q.Having {
		if !seen[h.Agg.Key()] {
			seen[h.Agg.Key()] = true
			out = append(out, h.Agg)
		}
	}
	return out
}

// havingSelectivity prices HAVING predicates with a fixed factor per
// conjunct: no statistics can exist on aggregate outputs, and the constant
// keeps the cost model monotone in the real selectivity variables.
func havingSelectivity(q *query.Select) float64 {
	sel := 1.0
	for range q.Having {
		sel *= 0.5
	}
	return sel
}

// bestAccessPath picks the cheapest way to produce the filtered rows of one
// table: a sequential scan, or a seek on any index whose column carries a
// sargable filter. This is the access-path decision that statistics most
// directly influence (magic range selectivity 0.30 never justifies a seek;
// a histogram showing 0.1 % does).
func (e *estimator) bestAccessPath(table string, rawRows, sel float64, filters []query.Filter) *Node {
	outRows := rawRows * sel
	if outRows < MinSelectivity {
		outRows = MinSelectivity
	}
	bestNode := &Node{
		Op:      OpTableScan,
		Table:   table,
		Filters: filters,
		EstRows: outRows,
		Cost:    rawRows * CostRowScan,
	}
	schema := e.sess.prov.Database().Schema
	for _, ix := range schema.Indexes {
		if !strings.EqualFold(ix.Table, table) {
			continue
		}
		var seekFilters []query.Filter
		seekSel := 1.0
		for _, f := range filters {
			if !strings.EqualFold(f.Col.Column, ix.Column) || f.Op == query.Ne {
				continue
			}
			seekFilters = append(seekFilters, f)
			seekSel *= e.filterSel(f)
		}
		if len(seekFilters) == 0 {
			continue
		}
		cost := SeekCost(rawRows) + CostRowFetch*rawRows*seekSel
		if cost < bestNode.Cost {
			bestNode = &Node{
				Op:          OpIndexSeek,
				Table:       table,
				Index:       ix.Name,
				IndexCol:    ix.Column,
				Filters:     filters,
				SeekFilters: seekFilters,
				EstRows:     outRows,
				Cost:        cost,
			}
		}
	}
	return bestNode
}

// baseInfo caches per-table estimates during one optimization.
type baseInfo struct {
	rawRows float64
	sel     float64
	plan    *Node
}

// joinCandidates enumerates physical join implementations of left ⋈ right.
func (e *estimator) joinCandidates(left, right *Node, preds []query.JoinPred, outRows float64, rightMask int, tables []string, base []baseInfo, q *query.Select) []*Node {
	var out []*Node
	mk := func(op Op, cost float64, index, indexCol string) {
		out = append(out, &Node{
			Op:       op,
			Children: []*Node{left, right},
			Joins:    preds,
			Index:    index,
			IndexCol: indexCol,
			EstRows:  outRows,
			Cost:     cost,
		})
	}
	outCost := CostRowOut * outRows
	if len(preds) > 0 {
		// Hash join: right child is the build side.
		mk(OpHashJoin, left.Cost+right.Cost+CostHashBuild*right.EstRows+CostHashProbe*left.EstRows+outCost, "", "")
		// Merge join: sort both inputs on the join keys.
		mk(OpMergeJoin, left.Cost+right.Cost+SortCost(left.EstRows)+SortCost(right.EstRows)+left.EstRows+right.EstRows+outCost, "", "")
	}
	// Plain nested loops: rescan the inner (right) subtree per outer row.
	outer := left.EstRows
	if outer < 1 {
		outer = 1
	}
	mk(OpNestedLoopJoin, left.Cost+outer*right.Cost+outCost, "", "")

	// Index nested loops: right side must be a single base table with an
	// index on one of its join columns.
	if bits.OnesCount(uint(rightMask)) == 1 && len(preds) > 0 {
		ti := bits.TrailingZeros(uint(rightMask))
		table := tables[ti]
		schema := e.sess.prov.Database().Schema
		for _, p := range preds {
			if !strings.EqualFold(p.Right.Table, table) {
				continue
			}
			ix, ok := schema.IndexOn(table, p.Right.Column)
			if !ok {
				continue
			}
			perProbeFetch := base[ti].rawRows * e.joinSel(p)
			if perProbeFetch < MinSelectivity {
				perProbeFetch = MinSelectivity
			}
			cost := left.Cost + outer*(SeekCost(base[ti].rawRows)+CostRowFetch*perProbeFetch) + outCost
			mk(OpIndexNLJoin, cost, ix.Name, p.Right.Column)
			break
		}
	}
	return out
}

// MissingStatVars returns the selectivity variables of q that would fall
// back to magic numbers under the session's current visible statistics —
// step (a) of §4.1. It runs the estimator without plan enumeration.
func (s *Session) MissingStatVars(q *query.Select) []int {
	e := newEstimator(s, q)
	for _, t := range q.Tables {
		e.tableSelectivity(strings.ToLower(t), q.FiltersOn(t))
	}
	// Group joins by pair exactly as Optimize does.
	type pairKey struct{ l, r string }
	groups := make(map[pairKey][]query.JoinPred)
	var keys []pairKey
	for _, j := range q.Joins {
		lt, rt := strings.ToLower(j.Left.Table), strings.ToLower(j.Right.Table)
		if lt > rt {
			lt, rt = rt, lt
			j.Left, j.Right = j.Right, j.Left
		}
		k := pairKey{lt, rt}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], j)
	}
	for _, k := range keys {
		e.joinGroupSel(groups[k])
	}
	e.groupCount(1000)
	return e.missingVars()
}
