// Package optimizer implements the cost-based query optimizer the selection
// algorithms run against: histogram/magic-number selectivity estimation,
// dynamic-programming join enumeration, access-path selection, and the two
// server extensions of §7.2 — Ignore_Statistics_Subset and parameterized
// predicate selectivities.
//
// Its cost model is monotone in every per-predicate selectivity variable,
// the cost-monotonicity assumption MNSA relies on (§4.1); a property test
// asserts this.
package optimizer

// MagicNumbers are the system-wide default selectivities used when no
// statistics are available for a predicate (§4.1: "Magic numbers are system
// wide constants between 0 and 1 that are predetermined for various kinds of
// predicates"). The defaults mirror classic System-R-descended optimizers:
// 0.30 for a range predicate (the value the paper quotes), 0.10 for
// equality.
type MagicNumbers struct {
	// Eq is the default selectivity of an equality predicate (col = const).
	Eq float64
	// Range is the default selectivity of an inequality predicate
	// (col < const etc.).
	Range float64
	// Ne is the default selectivity of a non-equality predicate.
	Ne float64
	// Join is the default selectivity of an equi-join predicate when either
	// side lacks statistics.
	Join float64
	// GroupFrac is the default distinct-value fraction for a GROUP BY /
	// SELECT DISTINCT clause (§4.1's aggregation selectivity variable).
	GroupFrac float64
}

// DefaultMagicNumbers returns the stock configuration.
func DefaultMagicNumbers() MagicNumbers {
	return MagicNumbers{Eq: 0.10, Range: 0.30, Ne: 0.90, Join: 0.10, GroupFrac: 0.10}
}
