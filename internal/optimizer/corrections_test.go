package optimizer

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/query"
	"autostats/internal/stats"
)

// fakeCorrections is a canned CorrectionSource; the production implementation
// (internal/feedback.Ledger) is covered in its own package.
type fakeCorrections struct {
	mu      sync.Mutex
	factors map[[3]string]float64
	ver     atomic.Uint64
}

func (f *fakeCorrections) set(table, columns, signature string, factor float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.factors == nil {
		f.factors = make(map[[3]string]float64)
	}
	f.factors[[3]string{table, columns, signature}] = factor
	f.ver.Add(1)
}

func (f *fakeCorrections) CorrectSelectivity(table, columns, signature string) (float64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.factors[[3]string{table, columns, signature}]
	return v, ok
}

func (f *fakeCorrections) Version() uint64 { return f.ver.Load() }

var _ CorrectionSource = (*fakeCorrections)(nil)

func quantityQuery() *query.Select {
	return mkSelect([]string{"lineitem"},
		[]query.Filter{{Col: col("lineitem", "l_quantity"), Op: query.Gt, Val: catalog.NewFloat(10)}},
		nil, nil)
}

// TestCorrectionAdjustsEstimate: a matching learned correction multiplies the
// base-table selectivity, and the plan records the raw pre-correction
// estimate so feedback keeps measuring the underlying statistics.
func TestCorrectionAdjustsEstimate(t *testing.T) {
	sess, db := testSession(t, 0)
	q := quantityQuery()
	before, err := sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if before.RawBaseRows != nil {
		t.Fatalf("RawBaseRows = %v without a correction source", before.RawBaseRows)
	}

	filters := q.FiltersOn("lineitem")
	fc := &fakeCorrections{}
	fc.set("lineitem", query.FilterColumns(filters), query.FilterSignature(filters), 2)
	sess.SetCorrections(fc)
	after, err := sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := after.Root.EstRows, 2*before.Root.EstRows; math.Abs(got-want) > 1e-9*want {
		t.Errorf("corrected EstRows = %v, want %v (2x raw)", got, want)
	}
	raw, ok := after.RawBaseRows["lineitem"]
	if !ok {
		t.Fatalf("RawBaseRows missing lineitem: %v", after.RawBaseRows)
	}
	if math.Abs(raw-before.Root.EstRows) > 1e-9*before.Root.EstRows {
		t.Errorf("RawBaseRows = %v, want raw estimate %v", raw, before.Root.EstRows)
	}
	// A correction on a different signature must not apply.
	fc2 := &fakeCorrections{}
	fc2.set("lineitem", "l_quantity", "no-such-signature", 10)
	sess.SetCorrections(fc2)
	other, err := sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if other.Root.EstRows != before.Root.EstRows || other.RawBaseRows != nil {
		t.Errorf("non-matching correction applied: rows=%v raw=%v", other.Root.EstRows, other.RawBaseRows)
	}
	_ = db
}

// TestCorrectionVersionInvalidatesPlanCache: cached plans embed the
// correction-set version, so publishing a new correction is a cache miss —
// the same stats-epoch discipline the plan cache already applies.
func TestCorrectionVersionInvalidatesPlanCache(t *testing.T) {
	sess, _ := testSession(t, 0)
	fc := &fakeCorrections{}
	sess.SetCorrections(fc)
	sess.SetPlanCache(NewPlanCache(8))
	q := quantityQuery()
	for i := 0; i < 2; i++ {
		if _, err := sess.Optimize(q); err != nil {
			t.Fatal(err)
		}
	}
	st := sess.PlanCache().Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("before version bump: %+v, want 1 hit / 1 miss", st)
	}

	filters := q.FiltersOn("lineitem")
	fc.set("lineitem", query.FilterColumns(filters), query.FilterSignature(filters), 3)
	corrected, err := sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	st = sess.PlanCache().Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("after version bump: %+v, want 1 hit / 2 misses", st)
	}
	if corrected.RawBaseRows == nil {
		t.Error("re-optimized plan did not pick up the new correction")
	}
	// The corrected plan is itself cached under the new version.
	if _, err := sess.Optimize(q); err != nil {
		t.Fatal(err)
	}
	if st = sess.PlanCache().Stats(); st.Hits != 2 {
		t.Fatalf("corrected plan not cached: %+v", st)
	}
}

// TestCloneIsolation audits Clone for shared mutable state: the ignore and
// override buffers must be fresh maps (not aliases of the parent's), while
// manager, plan cache and correction source are intentionally shared.
func TestCloneIsolation(t *testing.T) {
	sess, _ := testSession(t, 0)
	fc := &fakeCorrections{}
	sess.SetCorrections(fc)
	sess.SetPlanCache(NewPlanCache(4))
	sess.SetSelectivityOverrides(map[int]float64{7: 0.5})
	if err := sess.IgnoreStatisticsSubset("", []stats.ID{stats.MakeID("orders", []string{"o_orderdate"})}); err != nil {
		t.Fatal(err)
	}

	c := sess.Clone()
	if c.Corrections() != fc || c.PlanCache() != sess.PlanCache() || c.Manager() != sess.Manager() {
		t.Error("Clone must share manager, plan cache and correction source")
	}
	if len(c.ignored) != 0 || len(c.overrides) != 0 {
		t.Fatalf("Clone inherited buffers: ignored=%v overrides=%v", c.ignored, c.overrides)
	}
	// Mutating the clone's buffers must not leak into the parent.
	c.SetSelectivityOverrides(map[int]float64{1: 0.9})
	c.ignored[stats.MakeID("lineitem", []string{"l_quantity"})] = true
	if len(sess.overrides) != 1 || sess.overrides[7] != 0.5 {
		t.Errorf("parent overrides mutated via clone: %v", sess.overrides)
	}
	if sess.Ignored(stats.MakeID("lineitem", []string{"l_quantity"})) {
		t.Error("parent ignore buffer mutated via clone")
	}
}

// TestCloneConcurrentSessions is the -race regression for Clone: clones with
// divergent per-session buffers optimizing in parallel against the shared
// cache and correction source must not trip the race detector.
func TestCloneConcurrentSessions(t *testing.T) {
	sess, _ := testSession(t, 0)
	fc := &fakeCorrections{}
	q := quantityQuery()
	filters := q.FiltersOn("lineitem")
	fc.set("lineitem", query.FilterColumns(filters), query.FilterSignature(filters), 2)
	sess.SetCorrections(fc)
	sess.SetPlanCache(NewPlanCache(32))

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := sess.Clone()
			c.SetSelectivityOverrides(map[int]float64{g: 0.1 * float64(g+1)})
			for i := 0; i < 20; i++ {
				if _, err := c.Optimize(q); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
