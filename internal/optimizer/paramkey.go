package optimizer

import (
	"math"

	"autostats/internal/query"
)

// This file computes the parameterized half of the plan-cache key: the
// statement template and the per-constant selectivity buckets.
//
// Lifting constants out of the key is what makes the cache hit on the
// repeated-template workloads the MNSA loop generates, but it is only safe
// if a constant in a different selectivity regime cannot be served a plan
// costed for another regime: the access-path and join-order decisions hinge
// on those selectivities. So each lifted constant contributes the
// power-of-two bucket of the selectivity estimate the optimizer itself would
// use — probed through the same visible-statistics pipeline as filterSel.
// Constants in the same bucket are within a factor of two of each other,
// comfortably inside estimate-grade noise; constants in different regimes
// get different keys and fresh optimizations.
//
// Learned feedback corrections also shift the selectivities the optimizer
// uses, but a correction factor is keyed by the predicate's column signature,
// not by the constant's value — it shifts every constant of a template
// equally. The key's fbver field (bumped whenever a correction materially
// changes) therefore covers the correction half of the pipeline, and the
// buckets only need to quantize the raw histogram estimate.

// filterBucket quantizes the selectivity estimate for one filter constant.
// The probe mirrors filterSel's statistics path: the first visible (non-
// ignored) statistic whose leading column matches estimates the predicate
// through its histogram. With no visible statistic the estimate falls back
// to an override or magic number, neither of which depends on the constant,
// so all such constants share the bucketMissing sentinel.
func (s *Session) filterBucket(f query.Filter) int8 {
	for _, st := range s.prov.StatsForColumn(f.Col.Table, f.Col.Column) {
		if s.ignored[st.ID] {
			continue
		}
		return quantizeSel(clampSel(histogramOpSel(st.Data.Leading, f.Op, f.Val)))
	}
	return bucketMissing
}

// quantizeSel maps a clamped selectivity to its power-of-two regime:
// 0 for (0.5, 1], -1 for (0.25, 0.5], … down to -20 at the MinSelectivity
// floor. One bucket per doubling matches the granularity at which the cost
// model's decisions (e.g. the scan-vs-seek flip around 1/CostRowFetch) can
// plausibly move.
func quantizeSel(sel float64) int8 {
	b := math.Floor(math.Log2(sel))
	if b < -20 {
		b = -20
	}
	if b > 0 {
		b = 0
	}
	return int8(b)
}

// planParams returns the statement template and the bucket vector for q.
// The template render is memoized per query pointer: sessions are single-
// goroutine, and both the MNSA probe loop (same query, varying overrides)
// and plain re-execution optimize the same *Select repeatedly.
func (s *Session) planParams(q *query.Select) (string, [maxCachedParams]int8) {
	if s.tmplQ != q {
		s.tmplStr = q.Template()
		s.tmplQ = q
	}
	var buckets [maxCachedParams]int8
	for i, f := range q.Filters {
		if i >= maxCachedParams {
			break
		}
		buckets[i] = s.filterBucket(f)
	}
	return s.tmplStr, buckets
}
