package datagen

import (
	"math"
	"math/rand"
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/storage"
)

func TestSchemaShape(t *testing.T) {
	s := Schema()
	if got := len(s.TableNames()); got != 8 {
		t.Errorf("TPC-D has 8 tables, got %d", got)
	}
	if got := len(s.Indexes); got != 13 {
		t.Errorf("tuned schema has 13 indexes, got %d", got)
	}
	li, err := s.Table("lineitem")
	if err != nil || len(li.Columns) != 16 {
		t.Errorf("lineitem: %v, %d columns", err, len(li.Columns))
	}
	if li.PrimaryKey != "" {
		t.Error("lineitem has no single-column PK")
	}
	o, _ := s.Table("orders")
	if o.PrimaryKey != "o_orderkey" {
		t.Errorf("orders PK = %q", o.PrimaryKey)
	}
}

func TestZipfUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[z.Next()]++
	}
	for r, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("uniform rank %d drawn %d times (expect ~1000)", r, c)
		}
	}
}

func TestZipfSkewIncreasesWithZ(t *testing.T) {
	top1 := func(zv float64) float64 {
		rng := rand.New(rand.NewSource(2))
		z := NewZipf(rng, 100, zv)
		hits := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if z.Next() == 0 {
				hits++
			}
		}
		return float64(hits) / n
	}
	f0, f1, f2, f4 := top1(0), top1(1), top1(2), top1(4)
	if !(f0 < f1 && f1 < f2 && f2 < f4) {
		t.Errorf("top-rank frequency must grow with z: %v %v %v %v", f0, f1, f2, f4)
	}
	if f4 < 0.9 {
		t.Errorf("z=4 should concentrate almost all mass on rank 0, got %v", f4)
	}
	if math.Abs(f0-0.01) > 0.01 {
		t.Errorf("z=0 top rank should be ~1/100, got %v", f0)
	}
}

func TestZipfDomainBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 7, 3)
	for i := 0; i < 1000; i++ {
		if r := z.Next(); r < 0 || r >= 7 {
			t.Fatalf("rank %d out of [0,7)", r)
		}
	}
	one := NewZipf(rng, 0, 2) // degenerate domain clamps to 1
	if one.N() != 1 || one.Next() != 0 {
		t.Error("degenerate domain should clamp to a single rank")
	}
}

func TestGenerateRowCounts(t *testing.T) {
	db, err := Generate(Config{Scale: 1, Z: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"region": 5, "nation": 25, "supplier": 10, "customer": 150,
		"part": 200, "partsupp": 800, "orders": 1500, "lineitem": 6000,
	}
	for tbl, n := range want {
		if got := mustTable(t, db, tbl).RowCount(); got != n {
			t.Errorf("%s rows = %d, want %d", tbl, got, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Scale: 0.25, Z: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Scale: 0.25, Z: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range a.Schema.TableNames() {
		ra, _ := mustTable(t, a, tbl).ColumnValues(mustTable(t, a, tbl).Schema.Columns[0].Name)
		rb, _ := mustTable(t, b, tbl).ColumnValues(mustTable(t, b, tbl).Schema.Columns[0].Name)
		if len(ra) != len(rb) {
			t.Fatalf("%s row counts differ", tbl)
		}
		for i := range ra {
			if ra[i].Compare(rb[i]) != 0 {
				t.Fatalf("%s row %d differs", tbl, i)
			}
		}
	}
}

// TestForeignKeyIntegrity: every FK value must reference an existing parent
// key, and partsupp pairs must be unique with lineitem referencing them.
func TestForeignKeyIntegrity(t *testing.T) {
	db, err := Generate(Config{Scale: 0.5, Z: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, fk := range db.Schema.ForeignKeys {
		parents := map[int64]bool{}
		pv, err := mustTable(t, db, fk.RefTable).ColumnValues(fk.RefColumn)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range pv {
			parents[v.I] = true
		}
		cv, err := mustTable(t, db, fk.Table).ColumnValues(fk.Column)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range cv {
			if !parents[v.I] {
				t.Fatalf("FK violation: %s.%s=%d has no parent in %s.%s", fk.Table, fk.Column, v.I, fk.RefTable, fk.RefColumn)
			}
		}
	}

	// partsupp (partkey, suppkey) pairs unique.
	ps, err := mustTable(t, db, "partsupp").MultiColumnValues([]string{"ps_partkey", "ps_suppkey"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int64]bool{}
	for _, p := range ps {
		k := [2]int64{p[0].I, p[1].I}
		if seen[k] {
			t.Fatalf("duplicate partsupp pair %v", k)
		}
		seen[k] = true
	}
	// lineitem pairs reference existing partsupp pairs.
	li, err := mustTable(t, db, "lineitem").MultiColumnValues([]string{"l_partkey", "l_suppkey"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range li {
		if !seen[[2]int64{p[0].I, p[1].I}] {
			t.Fatalf("lineitem pair (%d,%d) not in partsupp", p[0].I, p[1].I)
		}
	}
}

func TestGenerateSkewShowsInData(t *testing.T) {
	uniform, _ := Generate(Config{Scale: 1, Z: 0, Seed: 7})
	skewed, _ := Generate(Config{Scale: 1, Z: 2, Seed: 7})
	top := func(db *storage.Database) float64 {
		vals, _ := mustTable(t, db, "orders").ColumnValues("o_custkey")
		counts := map[int64]int{}
		best := 0
		for _, v := range vals {
			counts[v.I]++
			if counts[v.I] > best {
				best = counts[v.I]
			}
		}
		return float64(best) / float64(len(vals))
	}
	if top(skewed) < 3*top(uniform) {
		t.Errorf("z=2 hot key share %v should far exceed uniform %v", top(skewed), top(uniform))
	}
}

func TestConfigByName(t *testing.T) {
	for _, name := range DatabaseNames() {
		cfg, err := ConfigByName(name)
		if err != nil {
			t.Errorf("ConfigByName(%q): %v", name, err)
		}
		if name == "TPCD_MIX" && !cfg.Mix {
			t.Error("TPCD_MIX should set Mix")
		}
	}
	if _, err := ConfigByName("TPCD_9"); err == nil {
		t.Error("expected error for unknown database name")
	}
}

func TestStringPoolsSane(t *testing.T) {
	if len(partTypes) != 150 {
		t.Errorf("part types = %d, want 150", len(partTypes))
	}
	if len(brands) != 25 {
		t.Errorf("brands = %d, want 25", len(brands))
	}
	if len(nationNames) != 25 || len(regionNames) != 5 {
		t.Error("nation/region name pools wrong")
	}
}

func TestDatesWithinBenchmarkRange(t *testing.T) {
	db, _ := Generate(Config{Scale: 0.25, Z: 1, Seed: 2})
	vals, _ := mustTable(t, db, "orders").ColumnValues("o_orderdate")
	for _, v := range vals {
		if v.T != catalog.Date || v.I < startDate || v.I >= startDate+dateSpan {
			t.Fatalf("order date %v out of range", v)
		}
	}
}
