// Package datagen generates skewed TPC-D databases, reproducing the paper's
// modified dbgen ([17]): every non-key column is drawn from a Zipfian
// distribution whose parameter z ranges from 0 (uniform) to 4 (highly
// skewed), and a MIX mode assigns each column a random z in [0,4].
package datagen

import (
	"math"
	"math/rand"
)

// Zipf samples ranks 0..n-1 with probability proportional to 1/(rank+1)^z.
// z = 0 degenerates to uniform. Sampling is O(log n) by binary search over
// the precomputed CDF; construction is O(n).
type Zipf struct {
	rng *rand.Rand
	n   int
	z   float64
	cdf []float64 // cdf[i] = P(rank <= i); empty when z == 0
}

// NewZipf builds a sampler over n ranks with skew z using rng.
func NewZipf(rng *rand.Rand, n int, z float64) *Zipf {
	if n < 1 {
		n = 1
	}
	s := &Zipf{rng: rng, n: n, z: z}
	if z <= 0 {
		return s
	}
	s.cdf = make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), z)
		s.cdf[i] = sum
	}
	inv := 1 / sum
	for i := range s.cdf {
		s.cdf[i] *= inv
	}
	return s
}

// Next returns the next sampled rank in [0, n).
func (s *Zipf) Next() int {
	if s.z <= 0 {
		return s.rng.Intn(s.n)
	}
	u := s.rng.Float64()
	lo, hi := 0, s.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the domain size.
func (s *Zipf) N() int { return s.n }
