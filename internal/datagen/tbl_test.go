package datagen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteLoadTblRoundTrip(t *testing.T) {
	db, err := Generate(Config{Scale: 0.25, Z: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteTbl(db, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range db.Schema.TableNames() {
		if _, err := os.Stat(filepath.Join(dir, name+".tbl")); err != nil {
			t.Fatalf("missing %s.tbl: %v", name, err)
		}
	}
	back, err := LoadTbl(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range db.Schema.TableNames() {
		a, b := mustTable(t, db, name), mustTable(t, back, name)
		if a.RowCount() != b.RowCount() {
			t.Fatalf("%s: %d rows vs %d after reload", name, a.RowCount(), b.RowCount())
		}
		for _, col := range a.Schema.Columns {
			av, _ := a.ColumnValues(col.Name)
			bv, _ := b.ColumnValues(col.Name)
			for i := range av {
				if av[i].Compare(bv[i]) != 0 {
					t.Fatalf("%s.%s row %d: %s vs %s", name, col.Name, i, av[i], bv[i])
				}
			}
		}
		// Indexes must be rebuilt on load.
		if _, ok := mustTable(t, back, "orders").IndexOn("o_orderkey"); !ok {
			t.Fatal("schema indexes not rebuilt after LoadTbl")
		}
	}
}

func TestLoadTblErrors(t *testing.T) {
	if _, err := LoadTbl(t.TempDir()); err == nil {
		t.Error("expected error for missing files")
	}
	dir := t.TempDir()
	// Write a malformed file for the alphabetically first table.
	if err := os.WriteFile(filepath.Join(dir, "customer.tbl"), []byte("1|only-two-fields\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadTbl(dir)
	if err == nil || !strings.Contains(err.Error(), "fields") {
		t.Errorf("expected field-count error, got %v", err)
	}
}
