package datagen

import (
	"context"
	"fmt"
	"math/rand"

	"autostats/internal/catalog"
	"autostats/internal/storage"
)

// Config controls database generation.
type Config struct {
	// Scale multiplies the base row counts. Scale 1.0 yields a ~8.7k-row
	// database (lineitem 6000 rows) preserving TPC-D's table-size ratios
	// (1/1000 of SF=1). Experiments report ratios, which are scale-robust.
	Scale float64
	// Z is the Zipfian skew parameter applied to every non-key column,
	// between 0 (uniform) and 4 (highly skewed). Ignored when Mix is set.
	Z float64
	// Mix assigns each column an independent random z in [0, 4] — the
	// paper's TPCD_MIX database.
	Mix bool
	// Seed makes generation deterministic.
	Seed int64
}

// Named database configurations used throughout the paper's §8.
var (
	// TPCD0 is the uniform database (z = 0).
	TPCD0 = Config{Scale: 1, Z: 0, Seed: 42}
	// TPCD2 is moderately skewed (z = 2).
	TPCD2 = Config{Scale: 1, Z: 2, Seed: 42}
	// TPCD4 is highly skewed (z = 4).
	TPCD4 = Config{Scale: 1, Z: 4, Seed: 42}
	// TPCDMix assigns each column a random skew in [0, 4].
	TPCDMix = Config{Scale: 1, Mix: true, Seed: 42}
)

// ConfigByName resolves the paper's database names (TPCD_0, TPCD_2, TPCD_4,
// TPCD_MIX) to configurations.
func ConfigByName(name string) (Config, error) {
	switch name {
	case "TPCD_0":
		return TPCD0, nil
	case "TPCD_2":
		return TPCD2, nil
	case "TPCD_4":
		return TPCD4, nil
	case "TPCD_MIX":
		return TPCDMix, nil
	default:
		return Config{}, fmt.Errorf("datagen: unknown database name %q", name)
	}
}

// DatabaseNames lists the four §8 databases in presentation order.
func DatabaseNames() []string { return []string{"TPCD_0", "TPCD_2", "TPCD_4", "TPCD_MIX"} }

// Base row counts at Scale = 1 (TPC-D SF=1 divided by 1000).
const (
	baseSupplier = 10
	baseCustomer = 150
	basePart     = 200
	basePartSupp = 800
	baseOrders   = 1500
	baseLineItem = 6000

	// startDate is 1992-01-01 in days since the Unix epoch; the benchmark's
	// order dates span seven years from there.
	startDate = 8035
	dateSpan  = 2556
)

// gen bundles the RNG and skew policy during one generation run.
type gen struct {
	rng *rand.Rand
	cfg Config
}

// colZ picks the skew for the next column: the global Z, or a fresh random
// z in [0,4] in MIX mode.
func (g *gen) colZ() float64 {
	if g.cfg.Mix {
		return g.rng.Float64() * 4
	}
	return g.cfg.Z
}

// zipfInt returns a sampler producing Int datums over lo..lo+n-1.
func (g *gen) zipfInt(n int, lo int64) func() catalog.Datum {
	z := NewZipf(g.rng, n, g.colZ())
	return func() catalog.Datum { return catalog.NewInt(lo + int64(z.Next())) }
}

// zipfFloat returns a sampler over n evenly spaced floats in [lo, hi].
func (g *gen) zipfFloat(n int, lo, hi float64) func() catalog.Datum {
	z := NewZipf(g.rng, n, g.colZ())
	step := (hi - lo) / float64(n)
	return func() catalog.Datum { return catalog.NewFloat(lo + float64(z.Next())*step) }
}

// zipfChoice returns a sampler over a fixed string pool.
func (g *gen) zipfChoice(pool []string) func() catalog.Datum {
	z := NewZipf(g.rng, len(pool), g.colZ())
	return func() catalog.Datum { return catalog.NewString(pool[z.Next()]) }
}

// zipfLabel returns a sampler over n synthetic strings "prefix#00042".
func (g *gen) zipfLabel(prefix string, n int) func() catalog.Datum {
	z := NewZipf(g.rng, n, g.colZ())
	return func() catalog.Datum {
		return catalog.NewString(fmt.Sprintf("%s#%06d", prefix, z.Next()))
	}
}

// zipfDate returns a sampler over the benchmark date range.
func (g *gen) zipfDate() func() catalog.Datum {
	z := NewZipf(g.rng, dateSpan, g.colZ())
	return func() catalog.Datum { return catalog.NewDate(startDate + int64(z.Next())) }
}

var (
	regionNames  = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames  = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	segments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	orderStatus  = []string{"F", "O", "P"}
	priorities   = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes    = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	shipInstruct = []string{"COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"}
	returnFlags  = []string{"A", "N", "R"}
	lineStatus   = []string{"F", "O"}
	mfgrs        = []string{"Manufacturer#1", "Manufacturer#2", "Manufacturer#3", "Manufacturer#4", "Manufacturer#5"}
	containers   = []string{"JUMBO BAG", "JUMBO BOX", "JUMBO CAN", "JUMBO CASE", "JUMBO DRUM", "JUMBO JAR", "JUMBO PACK", "JUMBO PKG", "LG BAG", "LG BOX", "LG CAN", "LG CASE", "LG DRUM", "LG JAR", "LG PACK", "LG PKG", "MED BAG", "MED BOX", "MED CAN", "MED CASE", "MED DRUM", "MED JAR", "MED PACK", "MED PKG", "SM BAG", "SM BOX", "SM CAN", "SM CASE", "SM DRUM", "SM JAR", "SM PACK", "SM PKG", "WRAP BAG", "WRAP BOX", "WRAP CAN", "WRAP CASE", "WRAP DRUM", "WRAP JAR", "WRAP PACK", "WRAP PKG"}
	partTypes    = buildPartTypes()
	brands       = buildBrands()
)

func buildPartTypes() []string {
	syl1 := []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	syl2 := []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	syl3 := []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	var out []string
	for _, a := range syl1 {
		for _, b := range syl2 {
			for _, c := range syl3 {
				out = append(out, a+" "+b+" "+c)
			}
		}
	}
	return out
}

func buildBrands() []string {
	var out []string
	for i := 1; i <= 5; i++ {
		for j := 1; j <= 5; j++ {
			out = append(out, fmt.Sprintf("Brand#%d%d", i, j))
		}
	}
	return out
}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}

// Generate builds a fully loaded skewed TPC-D database.
func Generate(cfg Config) (*storage.Database, error) {
	return GenerateCtx(context.Background(), cfg)
}

// GenerateCtx is Generate honoring cancellation: ctx is checked before each
// table and every 1024 generated rows, so an interrupted CLI returns
// promptly instead of finishing a large scale factor. The partially built
// in-memory database is simply discarded — nothing touches disk here.
func GenerateCtx(ctx context.Context, cfg Config) (*storage.Database, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	g := &gen{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
	schema := Schema()
	dbName := fmt.Sprintf("tpcd_z%.1f_s%.2f", cfg.Z, cfg.Scale)
	if cfg.Mix {
		dbName = fmt.Sprintf("tpcd_mix_s%.2f", cfg.Scale)
	}
	db, err := storage.NewDatabase(dbName, schema)
	if err != nil {
		return nil, err
	}

	nSupp := scaled(baseSupplier, cfg.Scale)
	nCust := scaled(baseCustomer, cfg.Scale)
	nPart := scaled(basePart, cfg.Scale)
	nPartSupp := scaled(basePartSupp, cfg.Scale)
	nOrders := scaled(baseOrders, cfg.Scale)
	nLine := scaled(baseLineItem, cfg.Scale)

	load := func(table string, n int, mkRow func(i int) storage.Row) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		rows := make([]storage.Row, n)
		for i := 0; i < n; i++ {
			if i&1023 == 1023 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			rows[i] = mkRow(i)
		}
		td, err := db.Table(table)
		if err != nil {
			return err
		}
		return td.BulkLoad(rows)
	}

	// region: fixed 5 rows.
	comment := g.zipfLabel("comment", 500)
	if err := load("region", len(regionNames), func(i int) storage.Row {
		return storage.Row{catalog.NewInt(int64(i)), catalog.NewString(regionNames[i]), comment()}
	}); err != nil {
		return nil, err
	}

	// nation: fixed 25 rows; region FK skewed.
	nRegion := g.zipfInt(len(regionNames), 0)
	comment = g.zipfLabel("comment", 500)
	if err := load("nation", len(nationNames), func(i int) storage.Row {
		return storage.Row{catalog.NewInt(int64(i)), catalog.NewString(nationNames[i]), nRegion(), comment()}
	}); err != nil {
		return nil, err
	}

	// supplier.
	sNation := g.zipfInt(len(nationNames), 0)
	sPhone := g.zipfLabel("phone", 1000)
	sBal := g.zipfFloat(2000, -999.99, 9999.99)
	sAddr := g.zipfLabel("addr", 1000)
	comment = g.zipfLabel("comment", 500)
	if err := load("supplier", nSupp, func(i int) storage.Row {
		return storage.Row{
			catalog.NewInt(int64(i)),
			catalog.NewString(fmt.Sprintf("Supplier#%06d", i)),
			sAddr(), sNation(), sPhone(), sBal(), comment(),
		}
	}); err != nil {
		return nil, err
	}

	// customer.
	cNation := g.zipfInt(len(nationNames), 0)
	cPhone := g.zipfLabel("phone", 1000)
	cBal := g.zipfFloat(2000, -999.99, 9999.99)
	cSeg := g.zipfChoice(segments)
	cAddr := g.zipfLabel("addr", 1000)
	comment = g.zipfLabel("comment", 500)
	if err := load("customer", nCust, func(i int) storage.Row {
		return storage.Row{
			catalog.NewInt(int64(i)),
			catalog.NewString(fmt.Sprintf("Customer#%06d", i)),
			cAddr(), cNation(), cPhone(), cBal(), cSeg(), comment(),
		}
	}); err != nil {
		return nil, err
	}

	// part.
	pMfgr := g.zipfChoice(mfgrs)
	pBrand := g.zipfChoice(brands)
	pType := g.zipfChoice(partTypes)
	pSize := g.zipfInt(50, 1)
	pContainer := g.zipfChoice(containers)
	pPrice := g.zipfFloat(1100, 900, 2000)
	comment = g.zipfLabel("comment", 500)
	if err := load("part", nPart, func(i int) storage.Row {
		return storage.Row{
			catalog.NewInt(int64(i)),
			catalog.NewString(fmt.Sprintf("Part#%06d", i)),
			pMfgr(), pBrand(), pType(), pSize(), pContainer(), pPrice(), comment(),
		}
	}); err != nil {
		return nil, err
	}

	// partsupp: as in TPC-D, each part is supplied by a few DISTINCT
	// suppliers, so (ps_partkey, ps_suppkey) pairs are unique. Suppliers are
	// still drawn from a skewed distribution; uniqueness is what keeps
	// composite-key joins from exploding combinatorially, exactly as in the
	// benchmark's data.
	suppPerPart := nPartSupp / nPart
	if suppPerPart < 1 {
		suppPerPart = 1
	}
	if suppPerPart > nSupp {
		suppPerPart = nSupp
	}
	nPartSupp = suppPerPart * nPart
	psSupp := NewZipf(g.rng, nSupp, g.colZ())
	psQty := g.zipfInt(9999, 1)
	psCost := g.zipfFloat(1000, 1, 1000)
	comment = g.zipfLabel("comment", 500)
	psPairs := make([][2]int64, 0, nPartSupp)
	for p := 0; p < nPart; p++ {
		seen := make(map[int]bool, suppPerPart)
		for len(seen) < suppPerPart {
			s := psSupp.Next()
			for attempts := 0; seen[s] && attempts < 8; attempts++ {
				s = psSupp.Next()
			}
			if seen[s] {
				// Skewed draws collide; fall back to scanning for a free
				// supplier deterministically.
				for t := 0; t < nSupp; t++ {
					if !seen[t] {
						s = t
						break
					}
				}
			}
			seen[s] = true
			psPairs = append(psPairs, [2]int64{int64(p), int64(s)})
		}
	}
	if err := load("partsupp", nPartSupp, func(i int) storage.Row {
		return storage.Row{
			catalog.NewInt(psPairs[i][0]), catalog.NewInt(psPairs[i][1]),
			psQty(), psCost(), comment(),
		}
	}); err != nil {
		return nil, err
	}

	// orders.
	oCust := g.zipfInt(nCust, 0)
	oStatus := g.zipfChoice(orderStatus)
	oPrice := g.zipfFloat(5000, 850, 555000)
	oDate := g.zipfDate()
	oPriority := g.zipfChoice(priorities)
	oClerk := g.zipfLabel("Clerk", maxInt(nSupp, 10))
	oShip := g.zipfInt(2, 0)
	comment = g.zipfLabel("comment", 500)
	if err := load("orders", nOrders, func(i int) storage.Row {
		return storage.Row{
			catalog.NewInt(int64(i)), oCust(), oStatus(), oPrice(), oDate(),
			oPriority(), oClerk(), oShip(), comment(),
		}
	}); err != nil {
		return nil, err
	}

	// lineitem: (l_partkey, l_suppkey) references an existing partsupp pair,
	// as the benchmark mandates — the pair index itself is drawn skewed.
	lOrder := g.zipfInt(nOrders, 0)
	lPair := NewZipf(g.rng, len(psPairs), g.colZ())
	lNum := g.zipfInt(7, 1)
	lQty := g.zipfFloat(50, 1, 50)
	lPrice := g.zipfFloat(5000, 900, 105000)
	lDiscount := g.zipfFloat(11, 0, 0.10)
	lTax := g.zipfFloat(9, 0, 0.08)
	lRet := g.zipfChoice(returnFlags)
	lStatus := g.zipfChoice(lineStatus)
	lShip := g.zipfDate()
	lCommit := g.zipfDate()
	lReceipt := g.zipfDate()
	lInstruct := g.zipfChoice(shipInstruct)
	lMode := g.zipfChoice(shipModes)
	comment = g.zipfLabel("comment", 500)
	if err := load("lineitem", nLine, func(i int) storage.Row {
		pair := psPairs[lPair.Next()]
		return storage.Row{
			lOrder(), catalog.NewInt(pair[0]), catalog.NewInt(pair[1]), lNum(),
			lQty(), lPrice(), lDiscount(), lTax(),
			lRet(), lStatus(), lShip(), lCommit(), lReceipt(), lInstruct(), lMode(), comment(),
		}
	}); err != nil {
		return nil, err
	}

	return db, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
