package datagen

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestGenerateCtxCanceled verifies that a pre-canceled context stops
// generation before any table loads.
func TestGenerateCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateCtx(ctx, Config{Scale: 0.05, Z: 1, Seed: 1}); err != context.Canceled {
		t.Fatalf("GenerateCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
}

// TestWriteTblCtxCanceledLeavesNothing verifies the no-partial-dataset
// guarantee: cancellation mid-write removes every .tbl file already created,
// and the output directory too when WriteTblCtx created it.
func TestWriteTblCtxCanceledLeavesNothing(t *testing.T) {
	db, err := Generate(Config{Scale: 0.05, Z: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := filepath.Join(t.TempDir(), "out")
	if err := WriteTblCtx(ctx, db, dir); err != context.Canceled {
		t.Fatalf("WriteTblCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("canceled WriteTblCtx left output directory behind (stat err = %v)", err)
	}
}

// stepCtx reports Canceled only after its Err has been consulted `after`
// times, letting tests cancel deterministically partway through a write.
type stepCtx struct {
	context.Context
	calls, after int
}

func (c *stepCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// TestWriteTblCtxMidWriteCancelRemovesCreatedFiles cancels after the first
// table's pre-check, so at least one .tbl file exists before the cancellation
// is observed and the cleanup path must actually delete files.
func TestWriteTblCtxMidWriteCancelRemovesCreatedFiles(t *testing.T) {
	db, err := Generate(Config{Scale: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() // pre-existing: only the files should be removed
	ctx := &stepCtx{Context: context.Background(), after: 1}
	if err := WriteTblCtx(ctx, db, dir); err != context.Canceled {
		t.Fatalf("mid-write cancel: err = %v, want context.Canceled", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("mid-write cancel left %d files behind", len(entries))
	}
}

// TestWriteTblCtxErrorCleansCreatedFiles verifies cleanup on a non-ctx
// failure path too: an unwritable directory must not accumulate .tbl files.
func TestWriteTblCtxErrorCleansCreatedFiles(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("permission-based failure injection does not work as root")
	}
	db, err := Generate(Config{Scale: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if err := WriteTblCtx(context.Background(), db, dir); err == nil {
		t.Fatal("WriteTblCtx into read-only dir succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed WriteTblCtx left %d files behind", len(entries))
	}
}

// TestWriteTblCtxCleanRoundTrip verifies the happy path still inverts via
// LoadTbl after the cancellation plumbing.
func TestWriteTblCtxCleanRoundTrip(t *testing.T) {
	db, err := Generate(Config{Scale: 0.02, Z: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "tbl")
	if err := WriteTblCtx(context.Background(), db, dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTbl(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range db.Schema.TableNames() {
		want, err := db.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if got.RowCount() != want.RowCount() {
			t.Fatalf("%s: %d rows after round trip, want %d", name, got.RowCount(), want.RowCount())
		}
	}
}
