package datagen

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"autostats/internal/catalog"
	"autostats/internal/storage"
)

// WriteTbl writes every table of the database as a pipe-delimited
// <table>.tbl file under dir, the flat-file format of the original dbgen
// tool (one row per line, columns separated by '|').
func WriteTbl(db *storage.Database, dir string) error {
	return WriteTblCtx(context.Background(), db, dir)
}

// WriteTblCtx is WriteTbl honoring cancellation, with the stronger guarantee
// that a failed or interrupted run leaves no partial dataset behind: every
// .tbl file created so far is removed, and the directory too if this call
// created it and it is otherwise empty. ctx is checked before each table and
// every 4096 rows while streaming.
func WriteTblCtx(ctx context.Context, db *storage.Database, dir string) (err error) {
	madeDir := false
	if _, serr := os.Stat(dir); os.IsNotExist(serr) {
		madeDir = true
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var created []string
	defer func() {
		if err == nil {
			return
		}
		for _, p := range created {
			os.Remove(p)
		}
		if madeDir {
			os.Remove(dir) // only succeeds if empty, which is the point
		}
	}()
	for _, name := range db.Schema.TableNames() {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		td, terr := db.Table(name)
		if terr != nil {
			return terr
		}
		path := filepath.Join(dir, name+".tbl")
		f, ferr := os.Create(path)
		if ferr != nil {
			return ferr
		}
		created = append(created, path)
		w := bufio.NewWriter(f)
		var werr error
		td.Scan(func(i int, r storage.Row) bool {
			if i&4095 == 4095 {
				if werr = ctx.Err(); werr != nil {
					return false
				}
			}
			for j, d := range r {
				if j > 0 {
					if _, werr = w.WriteString("|"); werr != nil {
						return false
					}
				}
				if _, werr = w.WriteString(tblField(d)); werr != nil {
					return false
				}
			}
			if _, werr = w.WriteString("\n"); werr != nil {
				return false
			}
			return true
		})
		if werr == nil {
			werr = w.Flush()
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			if werr == ctx.Err() && werr != nil {
				return werr
			}
			return fmt.Errorf("datagen: writing %s.tbl: %w", name, werr)
		}
	}
	return nil
}

func tblField(d catalog.Datum) string {
	if d.Null {
		return ""
	}
	switch d.T {
	case catalog.Int, catalog.Date:
		return strconv.FormatInt(d.I, 10)
	case catalog.Float:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	default:
		return d.S
	}
}

// LoadTbl reads <table>.tbl files from dir into a fresh database over the
// TPC-D schema, inverting WriteTbl.
func LoadTbl(dir string) (*storage.Database, error) {
	schema := Schema()
	db, err := storage.NewDatabase("tpcd_tbl", schema)
	if err != nil {
		return nil, err
	}
	for _, name := range schema.TableNames() {
		path := filepath.Join(dir, name+".tbl")
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		tbl, _ := schema.Table(name)
		rows, err := readTblRows(f, tbl)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("datagen: reading %s: %w", path, err)
		}
		td, err := db.Table(name)
		if err != nil {
			return nil, err
		}
		if err := td.BulkLoad(rows); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func readTblRows(r io.Reader, tbl *catalog.Table) ([]storage.Row, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var rows []storage.Row
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) != len(tbl.Columns) {
			return nil, fmt.Errorf("line %d: %d fields, want %d", lineNo, len(fields), len(tbl.Columns))
		}
		row := make(storage.Row, len(fields))
		for i, field := range fields {
			d, err := parseTblField(field, tbl.Columns[i].Type)
			if err != nil {
				return nil, fmt.Errorf("line %d column %s: %w", lineNo, tbl.Columns[i].Name, err)
			}
			row[i] = d
		}
		rows = append(rows, row)
	}
	return rows, sc.Err()
}

func parseTblField(s string, t catalog.Type) (catalog.Datum, error) {
	if s == "" && t != catalog.String {
		return catalog.NewNull(t), nil
	}
	switch t {
	case catalog.Int:
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return catalog.Datum{}, err
		}
		return catalog.NewInt(v), nil
	case catalog.Date:
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return catalog.Datum{}, err
		}
		return catalog.NewDate(v), nil
	case catalog.Float:
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return catalog.Datum{}, err
		}
		return catalog.NewFloat(v), nil
	default:
		return catalog.NewString(s), nil
	}
}
