package datagen

import (
	"fmt"

	"autostats/internal/catalog"
)

// Schema returns the TPC-D benchmark schema: eight tables, the standard
// foreign-key join graph, and the thirteen indexes of the paper's "tuned
// TPC-D database ... with 13 indexes" (§1).
func Schema() *catalog.Schema {
	s := catalog.NewSchema()
	mustAdd := func(t *catalog.Table, pk string) {
		t.PrimaryKey = pk
		if err := s.AddTable(t); err != nil {
			panic(err)
		}
	}
	mustAdd(catalog.NewTable("region",
		catalog.Column{Name: "r_regionkey", Type: catalog.Int},
		catalog.Column{Name: "r_name", Type: catalog.String},
		catalog.Column{Name: "r_comment", Type: catalog.String},
	), "r_regionkey")
	mustAdd(catalog.NewTable("nation",
		catalog.Column{Name: "n_nationkey", Type: catalog.Int},
		catalog.Column{Name: "n_name", Type: catalog.String},
		catalog.Column{Name: "n_regionkey", Type: catalog.Int},
		catalog.Column{Name: "n_comment", Type: catalog.String},
	), "n_nationkey")
	mustAdd(catalog.NewTable("supplier",
		catalog.Column{Name: "s_suppkey", Type: catalog.Int},
		catalog.Column{Name: "s_name", Type: catalog.String},
		catalog.Column{Name: "s_address", Type: catalog.String},
		catalog.Column{Name: "s_nationkey", Type: catalog.Int},
		catalog.Column{Name: "s_phone", Type: catalog.String},
		catalog.Column{Name: "s_acctbal", Type: catalog.Float},
		catalog.Column{Name: "s_comment", Type: catalog.String},
	), "s_suppkey")
	mustAdd(catalog.NewTable("customer",
		catalog.Column{Name: "c_custkey", Type: catalog.Int},
		catalog.Column{Name: "c_name", Type: catalog.String},
		catalog.Column{Name: "c_address", Type: catalog.String},
		catalog.Column{Name: "c_nationkey", Type: catalog.Int},
		catalog.Column{Name: "c_phone", Type: catalog.String},
		catalog.Column{Name: "c_acctbal", Type: catalog.Float},
		catalog.Column{Name: "c_mktsegment", Type: catalog.String},
		catalog.Column{Name: "c_comment", Type: catalog.String},
	), "c_custkey")
	mustAdd(catalog.NewTable("part",
		catalog.Column{Name: "p_partkey", Type: catalog.Int},
		catalog.Column{Name: "p_name", Type: catalog.String},
		catalog.Column{Name: "p_mfgr", Type: catalog.String},
		catalog.Column{Name: "p_brand", Type: catalog.String},
		catalog.Column{Name: "p_type", Type: catalog.String},
		catalog.Column{Name: "p_size", Type: catalog.Int},
		catalog.Column{Name: "p_container", Type: catalog.String},
		catalog.Column{Name: "p_retailprice", Type: catalog.Float},
		catalog.Column{Name: "p_comment", Type: catalog.String},
	), "p_partkey")
	mustAdd(catalog.NewTable("partsupp",
		catalog.Column{Name: "ps_partkey", Type: catalog.Int},
		catalog.Column{Name: "ps_suppkey", Type: catalog.Int},
		catalog.Column{Name: "ps_availqty", Type: catalog.Int},
		catalog.Column{Name: "ps_supplycost", Type: catalog.Float},
		catalog.Column{Name: "ps_comment", Type: catalog.String},
	), "")
	mustAdd(catalog.NewTable("orders",
		catalog.Column{Name: "o_orderkey", Type: catalog.Int},
		catalog.Column{Name: "o_custkey", Type: catalog.Int},
		catalog.Column{Name: "o_orderstatus", Type: catalog.String},
		catalog.Column{Name: "o_totalprice", Type: catalog.Float},
		catalog.Column{Name: "o_orderdate", Type: catalog.Date},
		catalog.Column{Name: "o_orderpriority", Type: catalog.String},
		catalog.Column{Name: "o_clerk", Type: catalog.String},
		catalog.Column{Name: "o_shippriority", Type: catalog.Int},
		catalog.Column{Name: "o_comment", Type: catalog.String},
	), "o_orderkey")
	mustAdd(catalog.NewTable("lineitem",
		catalog.Column{Name: "l_orderkey", Type: catalog.Int},
		catalog.Column{Name: "l_partkey", Type: catalog.Int},
		catalog.Column{Name: "l_suppkey", Type: catalog.Int},
		catalog.Column{Name: "l_linenumber", Type: catalog.Int},
		catalog.Column{Name: "l_quantity", Type: catalog.Float},
		catalog.Column{Name: "l_extendedprice", Type: catalog.Float},
		catalog.Column{Name: "l_discount", Type: catalog.Float},
		catalog.Column{Name: "l_tax", Type: catalog.Float},
		catalog.Column{Name: "l_returnflag", Type: catalog.String},
		catalog.Column{Name: "l_linestatus", Type: catalog.String},
		catalog.Column{Name: "l_shipdate", Type: catalog.Date},
		catalog.Column{Name: "l_commitdate", Type: catalog.Date},
		catalog.Column{Name: "l_receiptdate", Type: catalog.Date},
		catalog.Column{Name: "l_shipinstruct", Type: catalog.String},
		catalog.Column{Name: "l_shipmode", Type: catalog.String},
		catalog.Column{Name: "l_comment", Type: catalog.String},
	), "")

	fks := []catalog.ForeignKey{
		{Table: "nation", Column: "n_regionkey", RefTable: "region", RefColumn: "r_regionkey"},
		{Table: "supplier", Column: "s_nationkey", RefTable: "nation", RefColumn: "n_nationkey"},
		{Table: "customer", Column: "c_nationkey", RefTable: "nation", RefColumn: "n_nationkey"},
		{Table: "partsupp", Column: "ps_partkey", RefTable: "part", RefColumn: "p_partkey"},
		{Table: "partsupp", Column: "ps_suppkey", RefTable: "supplier", RefColumn: "s_suppkey"},
		{Table: "orders", Column: "o_custkey", RefTable: "customer", RefColumn: "c_custkey"},
		{Table: "lineitem", Column: "l_orderkey", RefTable: "orders", RefColumn: "o_orderkey"},
		{Table: "lineitem", Column: "l_partkey", RefTable: "part", RefColumn: "p_partkey"},
		{Table: "lineitem", Column: "l_suppkey", RefTable: "supplier", RefColumn: "s_suppkey"},
		// TPC-D's composite foreign key LINEITEM(L_PARTKEY, L_SUPPKEY) →
		// PARTSUPP, expressed as two single-column edges; the workload
		// generator emits both predicates together, which also exercises
		// multi-column join statistics (§3.1).
		{Table: "lineitem", Column: "l_partkey", RefTable: "partsupp", RefColumn: "ps_partkey"},
		{Table: "lineitem", Column: "l_suppkey", RefTable: "partsupp", RefColumn: "ps_suppkey"},
	}
	for _, fk := range fks {
		if err := s.AddForeignKey(fk); err != nil {
			panic(err)
		}
	}

	// The 13 indexes of the tuned configuration: primary keys, the hot
	// foreign keys, and the date column the benchmark queries range over.
	indexes := []struct{ table, column string }{
		{"region", "r_regionkey"},
		{"nation", "n_nationkey"},
		{"supplier", "s_suppkey"},
		{"supplier", "s_nationkey"},
		{"customer", "c_custkey"},
		{"customer", "c_nationkey"},
		{"part", "p_partkey"},
		{"partsupp", "ps_partkey"},
		{"orders", "o_orderkey"},
		{"orders", "o_custkey"},
		{"orders", "o_orderdate"},
		{"lineitem", "l_orderkey"},
		{"lineitem", "l_partkey"},
	}
	for i, ix := range indexes {
		err := s.AddIndex(catalog.Index{
			Name:   fmt.Sprintf("ix_%d_%s_%s", i+1, ix.table, ix.column),
			Table:  ix.table,
			Column: ix.column,
			Unique: isPrimaryKey(s, ix.table, ix.column),
		})
		if err != nil {
			panic(err)
		}
	}
	return s
}

func isPrimaryKey(s *catalog.Schema, table, column string) bool {
	t, err := s.Table(table)
	if err != nil {
		return false
	}
	return t.PrimaryKey == column
}
