package histogram

import (
	"fmt"
	"math"
	"strings"

	"autostats/internal/catalog"
)

// MultiColumn is the asymmetric multi-column statistic of §7.1: a histogram
// on the leading column plus density information on each leading prefix.
// A statistic on (a,b,c) carries a histogram on a and densities for (a),
// (a,b) and (a,b,c); it is NOT symmetric in its columns.
//
// Density of a prefix is defined as 1 / (number of distinct prefix value
// combinations): the expected fraction of rows selected by equality
// predicates binding every column of the prefix.
type MultiColumn struct {
	Columns        []string
	Leading        *Histogram
	Densities      []float64
	PrefixDistinct []int64
	Rows           int64
}

// BuildMulti constructs a multi-column statistic from column tuples. Each
// tuple must have len(columns) datums, ordered to match columns.
func BuildMulti(kind Kind, columns []string, tuples [][]catalog.Datum, maxBuckets int) (*MultiColumn, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("histogram: multi-column statistic needs at least one column")
	}
	for _, t := range tuples {
		if len(t) != len(columns) {
			return nil, fmt.Errorf("histogram: tuple arity %d does not match %d columns", len(t), len(columns))
		}
	}
	leading := make([]catalog.Datum, len(tuples))
	for i, t := range tuples {
		leading[i] = t[0]
	}
	mc := &MultiColumn{
		Columns:        append([]string(nil), columns...),
		Leading:        Build(kind, leading, maxBuckets),
		Densities:      make([]float64, len(columns)),
		PrefixDistinct: make([]int64, len(columns)),
		Rows:           int64(len(tuples)),
	}
	// The leading prefix's distinct count comes from the histogram itself —
	// distinct non-NULL values plus one combination for NULL when present —
	// so it uses the same value-equality (Datum.Compare) the estimator uses,
	// and single-pass and partition-merged builds agree exactly.
	dv := mc.Leading.Distinct
	if mc.Leading.NullRows > 0 {
		dv++
	}
	setPrefixDistinct(mc, 0, dv)
	// Count distinct combinations for each longer leading prefix.
	for k := 2; k <= len(columns); k++ {
		seen := make(map[string]struct{}, len(tuples))
		for _, t := range tuples {
			seen[encodePrefix(t[:k])] = struct{}{}
		}
		setPrefixDistinct(mc, k-1, int64(len(seen)))
	}
	return mc, nil
}

// encodePrefix renders a datum tuple as a collision-safe map key.
func encodePrefix(t []catalog.Datum) string {
	var b strings.Builder
	for _, d := range t {
		if d.Null {
			b.WriteString("\x00N")
		} else {
			switch d.T {
			case catalog.String:
				fmt.Fprintf(&b, "\x00s%d:%s", len(d.S), d.S)
			case catalog.Float:
				fmt.Fprintf(&b, "\x00f%x", math.Float64bits(d.F))
			default:
				fmt.Fprintf(&b, "\x00i%d", d.I)
			}
		}
	}
	return b.String()
}

// PrefixDensity returns the density of the k-column leading prefix
// (1-indexed: k=1 is the leading column alone). Out-of-range k returns 1.
func (mc *MultiColumn) PrefixDensity(k int) float64 {
	if k < 1 || k > len(mc.Densities) {
		return 1
	}
	return mc.Densities[k-1]
}

// DistinctPrefix returns the distinct combination count of the k-column
// leading prefix, or 0 when out of range.
func (mc *MultiColumn) DistinctPrefix(k int) int64 {
	if k < 1 || k > len(mc.PrefixDistinct) {
		return 0
	}
	return mc.PrefixDistinct[k-1]
}

// BuildCostUnits models the work to build a statistic over rows values of
// width cols: a sort (n log n) plus a bucketing pass, scaled by tuple width.
// The statistics manager charges these units as the "creation cost" and
// "update cost" of §8; wall-clock build time is measured separately and
// tracks these units closely since the builders do the real work.
func BuildCostUnits(rows int64, cols int) float64 {
	if rows <= 0 {
		return 1
	}
	n := float64(rows)
	return n*(math.Log2(n+2)+1)*float64(cols) + n
}

// String summarizes the statistic.
func (mc *MultiColumn) String() string {
	return fmt.Sprintf("multi-column(%s): %d rows, prefix distinct %v",
		strings.Join(mc.Columns, ","), mc.Rows, mc.PrefixDistinct)
}
