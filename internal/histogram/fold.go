package histogram

import (
	"sort"

	"autostats/internal/catalog"
)

// Incremental maintenance: instead of rebuilding a histogram from a full
// table scan, FoldMulti folds logged row deltas into the existing buckets.
// Bucket row counts, totals and NULL counts stay exact under folding; bucket
// boundaries, distinct counts and prefix densities are left as built — that
// drift is the "fold error", and the statistics manager bounds it by falling
// back to a full rebuild once the folded-row fraction crosses its threshold
// (see stats.FoldConfig).

// Clone returns a deep copy of the histogram; folding always operates on a
// clone so published statistics stay immutable snapshots.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.Buckets = append([]Bucket(nil), h.Buckets...)
	return &c
}

// Clone returns a deep copy of the multi-column statistic.
func (mc *MultiColumn) Clone() *MultiColumn {
	c := *mc
	c.Columns = append([]string(nil), mc.Columns...)
	c.Leading = mc.Leading.Clone()
	c.Densities = append([]float64(nil), mc.Densities...)
	c.PrefixDistinct = append([]int64(nil), mc.PrefixDistinct...)
	return &c
}

// FoldMulti returns a clone of mc with the leading-column values of inserted
// and deleted rows folded into the leading histogram and the row totals. The
// input statistic is not modified. Distinct counts and prefix densities are
// intentionally left stale; callers bound the resulting error by rebuilding
// once enough rows have been folded.
func FoldMulti(mc *MultiColumn, inserts, deletes []catalog.Datum) *MultiColumn {
	out := mc.Clone()
	h := out.Leading
	for _, v := range inserts {
		h.foldInsert(v)
	}
	for _, v := range deletes {
		h.foldDelete(v)
	}
	out.Rows += int64(len(inserts)) - int64(len(deletes))
	if out.Rows < 0 {
		out.Rows = 0
	}
	return out
}

// bucketFor locates the bucket that should absorb v: the first bucket whose
// upper bound is >= v. Returns len(Buckets) when v lies above every bucket.
func (h *Histogram) bucketFor(v catalog.Datum) int {
	return sort.Search(len(h.Buckets), func(i int) bool {
		return v.Compare(h.Buckets[i].Hi) <= 0
	})
}

// foldInsert adds one row with value v. Out-of-range values extend the
// nearest bucket's boundary so the histogram keeps covering the live domain.
func (h *Histogram) foldInsert(v catalog.Datum) {
	if v.Null {
		h.NullRows++
		return
	}
	if len(h.Buckets) == 0 {
		h.Buckets = append(h.Buckets, Bucket{Lo: v, Hi: v, Rows: 1, Distinct: 1})
		h.Rows++
		h.Distinct++
		return
	}
	i := h.bucketFor(v)
	if i == len(h.Buckets) {
		i--
		h.Buckets[i].Hi = v
	} else if v.Compare(h.Buckets[i].Lo) < 0 {
		h.Buckets[i].Lo = v
	}
	h.Buckets[i].Rows++
	h.Rows++
}

// foldDelete removes one row with value v. Values outside every bucket only
// adjust the totals: the histogram never summarized them.
func (h *Histogram) foldDelete(v catalog.Datum) {
	if v.Null {
		if h.NullRows > 0 {
			h.NullRows--
		}
		return
	}
	if h.Rows > 0 {
		h.Rows--
	}
	if i := h.bucketFor(v); i < len(h.Buckets) && v.Compare(h.Buckets[i].Lo) >= 0 && h.Buckets[i].Rows > 0 {
		h.Buckets[i].Rows--
	}
}

// FoldCostUnits models the work to fold n logged row deltas into an existing
// histogram: a binary bucket search per delta. Compare with BuildCostUnits —
// the n·log n sort over the whole table — to see what incremental
// maintenance saves.
func FoldCostUnits(n int64) float64 {
	if n <= 0 {
		return 1
	}
	return float64(n) * 2
}
