package histogram

import (
	"testing"

	"autostats/internal/catalog"
)

// kinds covers both construction strategies for every boundary case.
var kinds = []Kind{EquiDepth, MaxDiff}

// TestEmptyColumn: a histogram built over no values must summarize zero
// rows and estimate zero selectivity for every predicate shape without
// dividing by zero.
func TestEmptyColumn(t *testing.T) {
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) {
			h := Build(k, nil, DefaultBuckets)
			if h.TotalRows() != 0 || h.Rows != 0 || h.NullRows != 0 || h.Distinct != 0 {
				t.Fatalf("empty column: %+v", h)
			}
			if len(h.Buckets) != 0 {
				t.Fatalf("empty column built %d buckets", len(h.Buckets))
			}
			probe := catalog.NewInt(7)
			if got := h.SelectivityEq(probe); got != 0 {
				t.Errorf("SelectivityEq on empty = %v, want 0", got)
			}
			for _, inc := range []bool{true, false} {
				if got := h.SelectivityLess(probe, inc); got != 0 {
					t.Errorf("SelectivityLess(inclusive=%v) on empty = %v, want 0", inc, got)
				}
			}
			if got := h.NullFraction(); got != 0 {
				t.Errorf("NullFraction on empty = %v, want 0", got)
			}
		})
	}
}

// TestSingleValueColumn: every row holds the same value — equality on that
// value must estimate selectivity 1, everything else 0, and range
// predicates must split exactly at the value.
func TestSingleValueColumn(t *testing.T) {
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) {
			vals := make([]catalog.Datum, 50)
			for i := range vals {
				vals[i] = catalog.NewInt(42)
			}
			h := Build(k, vals, DefaultBuckets)
			if h.Rows != 50 || h.Distinct != 1 || len(h.Buckets) != 1 {
				t.Fatalf("single-value column: %+v", h)
			}
			cases := []struct {
				name string
				got  float64
				want float64
			}{
				{"eq-hit", h.SelectivityEq(catalog.NewInt(42)), 1},
				{"eq-miss-below", h.SelectivityEq(catalog.NewInt(41)), 0},
				{"eq-miss-above", h.SelectivityEq(catalog.NewInt(43)), 0},
				{"lt-value", h.SelectivityLess(catalog.NewInt(42), false), 0},
				{"le-value", h.SelectivityLess(catalog.NewInt(42), true), 1},
				{"lt-above", h.SelectivityLess(catalog.NewInt(100), false), 1},
				{"le-below", h.SelectivityLess(catalog.NewInt(0), true), 0},
			}
			for _, c := range cases {
				if c.got != c.want {
					t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
				}
			}
		})
	}
}

// TestAllNullColumn: NULLs are excluded from buckets but counted in
// TotalRows, so value predicates (which NULL never satisfies) estimate 0
// while NullFraction is 1.
func TestAllNullColumn(t *testing.T) {
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) {
			vals := make([]catalog.Datum, 30)
			for i := range vals {
				vals[i] = catalog.NewNull(catalog.Int)
			}
			h := Build(k, vals, DefaultBuckets)
			if h.Rows != 0 || h.NullRows != 30 || h.TotalRows() != 30 {
				t.Fatalf("all-NULL column: %+v", h)
			}
			if len(h.Buckets) != 0 {
				t.Fatalf("all-NULL column built %d buckets", len(h.Buckets))
			}
			if got := h.NullFraction(); got != 1 {
				t.Errorf("NullFraction = %v, want 1", got)
			}
			if got := h.SelectivityEq(catalog.NewInt(0)); got != 0 {
				t.Errorf("SelectivityEq over all-NULL = %v, want 0", got)
			}
			if got := h.SelectivityLess(catalog.NewInt(1<<50), true); got != 0 {
				t.Errorf("SelectivityLess over all-NULL = %v, want 0", got)
			}
		})
	}
}

// TestOutOfRangePredicates: probes beyond either end of the summarized
// domain must clamp cleanly to 0 or 1 — the extrapolation the differential
// oracle's out-of-range workload knob leans on.
func TestOutOfRangePredicates(t *testing.T) {
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) {
			var vals []catalog.Datum
			for i := 0; i < 100; i++ {
				vals = append(vals, catalog.NewInt(int64(10+i%20)))
			}
			h := Build(k, vals, 8)
			below := catalog.NewInt(-1 << 40)
			above := catalog.NewInt(1 << 40)
			cases := []struct {
				name string
				got  float64
				want float64
			}{
				{"eq-far-below", h.SelectivityEq(below), 0},
				{"eq-far-above", h.SelectivityEq(above), 0},
				{"lt-far-below", h.SelectivityLess(below, false), 0},
				{"le-far-below", h.SelectivityLess(below, true), 0},
				{"lt-far-above", h.SelectivityLess(above, false), 1},
				{"le-far-above", h.SelectivityLess(above, true), 1},
			}
			for _, c := range cases {
				if c.got != c.want {
					t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
				}
			}
		})
	}
}

// TestMixedNullBoundaries: a half-NULL column must keep value-predicate
// estimates relative to ALL rows (NULLs dilute selectivity, matching
// execution where NULL rows never pass a comparison).
func TestMixedNullBoundaries(t *testing.T) {
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) {
			var vals []catalog.Datum
			for i := 0; i < 40; i++ {
				vals = append(vals, catalog.NewInt(5))
			}
			for i := 0; i < 60; i++ {
				vals = append(vals, catalog.NewNull(catalog.Int))
			}
			h := Build(k, vals, DefaultBuckets)
			if got := h.SelectivityEq(catalog.NewInt(5)); got != 0.4 {
				t.Errorf("SelectivityEq = %v, want 0.4 (diluted by NULLs)", got)
			}
			if got := h.SelectivityLess(catalog.NewInt(6), true); got != 0.4 {
				t.Errorf("SelectivityLess = %v, want 0.4", got)
			}
			if got := h.NullFraction(); got != 0.6 {
				t.Errorf("NullFraction = %v, want 0.6", got)
			}
		})
	}
}

// TestTinyBucketBudget: a bucket budget of 1 must still produce a valid
// summary covering the whole domain.
func TestTinyBucketBudget(t *testing.T) {
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) {
			var vals []catalog.Datum
			for i := 0; i < 100; i++ {
				vals = append(vals, catalog.NewInt(int64(i)))
			}
			h := Build(k, vals, 1)
			if len(h.Buckets) != 1 {
				t.Fatalf("budget 1 built %d buckets", len(h.Buckets))
			}
			b := h.Buckets[0]
			if b.Lo.I != 0 || b.Hi.I != 99 || b.Rows != 100 || b.Distinct != 100 {
				t.Fatalf("single bucket does not cover the domain: %+v", b)
			}
			if got := h.SelectivityLess(catalog.NewInt(200), true); got != 1 {
				t.Errorf("whole-domain range = %v, want 1", got)
			}
		})
	}
}
