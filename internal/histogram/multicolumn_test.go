package histogram

import (
	"math"
	"math/rand"
	"testing"

	"autostats/internal/catalog"
)

func pairTuples(rng *rand.Rand, n, d1, d2 int) [][]catalog.Datum {
	out := make([][]catalog.Datum, n)
	for i := range out {
		out[i] = []catalog.Datum{
			catalog.NewInt(int64(rng.Intn(d1))),
			catalog.NewInt(int64(rng.Intn(d2))),
		}
	}
	return out
}

func TestBuildMultiDensities(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tuples := pairTuples(rng, 3000, 20, 10)
	mc, err := BuildMulti(MaxDiff, []string{"a", "b"}, tuples, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Exact distinct counts.
	d1 := map[int64]bool{}
	d2 := map[[2]int64]bool{}
	for _, tp := range tuples {
		d1[tp[0].I] = true
		d2[[2]int64{tp[0].I, tp[1].I}] = true
	}
	if got := mc.DistinctPrefix(1); got != int64(len(d1)) {
		t.Errorf("DistinctPrefix(1) = %d, want %d", got, len(d1))
	}
	if got := mc.DistinctPrefix(2); got != int64(len(d2)) {
		t.Errorf("DistinctPrefix(2) = %d, want %d", got, len(d2))
	}
	if got := mc.PrefixDensity(2); math.Abs(got-1/float64(len(d2))) > 1e-12 {
		t.Errorf("PrefixDensity(2) = %v", got)
	}
	// Out-of-range prefixes are inert.
	if mc.PrefixDensity(0) != 1 || mc.PrefixDensity(3) != 1 {
		t.Error("out-of-range PrefixDensity should be 1")
	}
	if mc.DistinctPrefix(0) != 0 || mc.DistinctPrefix(3) != 0 {
		t.Error("out-of-range DistinctPrefix should be 0")
	}
	// The leading histogram summarizes column a.
	if mc.Leading.Distinct != int64(len(d1)) {
		t.Errorf("leading histogram distinct = %d", mc.Leading.Distinct)
	}
}

func TestBuildMultiAsymmetric(t *testing.T) {
	// (a,b) and (b,a) are different statistics: the histogram is on the
	// leading column only (§7.1's asymmetry).
	tuples := [][]catalog.Datum{
		{catalog.NewInt(1), catalog.NewInt(100)},
		{catalog.NewInt(1), catalog.NewInt(200)},
	}
	ab, _ := BuildMulti(MaxDiff, []string{"a", "b"}, tuples, 10)
	rev := [][]catalog.Datum{
		{catalog.NewInt(100), catalog.NewInt(1)},
		{catalog.NewInt(200), catalog.NewInt(1)},
	}
	ba, _ := BuildMulti(MaxDiff, []string{"b", "a"}, rev, 10)
	if ab.Leading.Distinct == ba.Leading.Distinct {
		t.Error("leading histograms of (a,b) and (b,a) should differ here")
	}
	if ab.DistinctPrefix(2) != ba.DistinctPrefix(2) {
		t.Error("full-prefix distinct count is order-independent")
	}
}

func TestBuildMultiErrors(t *testing.T) {
	if _, err := BuildMulti(MaxDiff, nil, nil, 10); err == nil {
		t.Error("expected error for zero columns")
	}
	bad := [][]catalog.Datum{{catalog.NewInt(1)}}
	if _, err := BuildMulti(MaxDiff, []string{"a", "b"}, bad, 10); err == nil {
		t.Error("expected arity error")
	}
}

func TestEncodePrefixCollisionSafety(t *testing.T) {
	// Strings that would collide under naive concatenation must not.
	a := []catalog.Datum{catalog.NewString("ab"), catalog.NewString("c")}
	b := []catalog.Datum{catalog.NewString("a"), catalog.NewString("bc")}
	if encodePrefix(a) == encodePrefix(b) {
		t.Error("prefix encoding collision for ('ab','c') vs ('a','bc')")
	}
	n := []catalog.Datum{catalog.NewNull(catalog.Int)}
	z := []catalog.Datum{catalog.NewInt(0)}
	if encodePrefix(n) == encodePrefix(z) {
		t.Error("NULL must encode differently from zero")
	}
}

func TestBuildMultiSingleColumn(t *testing.T) {
	tuples := [][]catalog.Datum{{catalog.NewInt(1)}, {catalog.NewInt(1)}, {catalog.NewInt(2)}}
	mc, err := BuildMulti(EquiDepth, []string{"x"}, tuples, 10)
	if err != nil {
		t.Fatal(err)
	}
	if mc.DistinctPrefix(1) != 2 || mc.Rows != 3 {
		t.Errorf("single-column multi stat: %+v", mc)
	}
}
