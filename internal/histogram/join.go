package histogram

// JoinSelectivity estimates the selectivity of an equi-join between two
// columns summarized by h1 and h2: the expected number of matching row pairs
// divided by |R1|·|R2|. It computes a bucket-overlap "dot product" with the
// standard containment assumption inside each overlap (the min(d1,d2)
// distinct values on the sparser side all find partners):
//
//	matches(b1∩b2) = r1·r2 / max(d1, d2)
//
// where r and d are the rows and distinct values each bucket contributes to
// the overlap (prorated by value-range fraction). With MaxDiff histograms,
// hot values occupy singleton buckets, so heavily skewed foreign-key joins —
// where the naive 1/max(V) estimate is off by orders of magnitude — are
// estimated accurately.
func JoinSelectivity(h1, h2 *Histogram) float64 {
	n1, n2 := float64(h1.TotalRows()), float64(h2.TotalRows())
	if n1 <= 0 || n2 <= 0 || len(h1.Buckets) == 0 || len(h2.Buckets) == 0 {
		return 0
	}
	matches := 0.0
	j := 0
	for i := range h1.Buckets {
		b1 := &h1.Buckets[i]
		lo1, hi1 := b1.Lo.ToFloat(), b1.Hi.ToFloat()
		// Advance j past h2 buckets entirely below b1.
		for j < len(h2.Buckets) && h2.Buckets[j].Hi.Compare(b1.Lo) < 0 {
			j++
		}
		for k := j; k < len(h2.Buckets); k++ {
			b2 := &h2.Buckets[k]
			if b2.Lo.Compare(b1.Hi) > 0 {
				break
			}
			lo2, hi2 := b2.Lo.ToFloat(), b2.Hi.ToFloat()
			lo, hi := lo1, hi1
			if lo2 > lo {
				lo = lo2
			}
			if hi2 < hi {
				hi = hi2
			}
			f1 := overlapFraction(lo1, hi1, lo, hi)
			f2 := overlapFraction(lo2, hi2, lo, hi)
			r1, d1 := float64(b1.Rows)*f1, float64(b1.Distinct)*f1
			r2, d2 := float64(b2.Rows)*f2, float64(b2.Distinct)*f2
			if d1 < 1 {
				d1 = 1
			}
			if d2 < 1 {
				d2 = 1
			}
			dmax := d1
			if d2 > dmax {
				dmax = d2
			}
			matches += r1 * r2 / dmax
		}
	}
	sel := matches / (n1 * n2)
	return clamp01(sel)
}

// overlapFraction returns the fraction of [blo, bhi] covered by [lo, hi].
// Degenerate (single-point) buckets are either fully in or out.
func overlapFraction(blo, bhi, lo, hi float64) float64 {
	if bhi <= blo {
		if lo <= blo && blo <= hi {
			return 1
		}
		return 0
	}
	if hi < lo {
		return 0
	}
	f := (hi - lo) / (bhi - blo)
	if f > 1 {
		return 1
	}
	if f < 0 {
		return 0
	}
	return f
}
