package histogram

import (
	"math"
	"math/rand"
	"testing"

	"autostats/internal/catalog"
)

// exactJoinSel counts matching pairs exactly.
func exactJoinSel(a, b []catalog.Datum) float64 {
	counts := map[int64]int{}
	for _, v := range b {
		if !v.Null {
			counts[v.I]++
		}
	}
	matches := 0
	for _, v := range a {
		if !v.Null {
			matches += counts[v.I]
		}
	}
	return float64(matches) / (float64(len(a)) * float64(len(b)))
}

func zipfInts(rng *rand.Rand, n, domain int, z float64) []catalog.Datum {
	// Inline Zipf sampler to avoid importing datagen (cycle-free but keeps
	// the test self-contained).
	cdf := make([]float64, domain)
	sum := 0.0
	for i := 0; i < domain; i++ {
		sum += 1 / math.Pow(float64(i+1), z)
		cdf[i] = sum
	}
	out := make([]catalog.Datum, n)
	for i := range out {
		u := rng.Float64() * sum
		lo, hi := 0, domain-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = catalog.NewInt(int64(lo))
	}
	return out
}

// TestJoinSelectivityExactWithSingletonBuckets: when both histograms have
// one bucket per value, the dot product is exact.
func TestJoinSelectivityExactWithSingletonBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := zipfInts(rng, 3000, 50, 1.5)
	b := zipfInts(rng, 500, 50, 0)
	ha := Build(MaxDiff, a, 100) // 50 distinct < 100 buckets → singletons
	hb := Build(MaxDiff, b, 100)
	got := JoinSelectivity(ha, hb)
	want := exactJoinSel(a, b)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("JoinSelectivity = %v, exact %v", got, want)
	}
}

// TestJoinSelectivityUnderSkew: the headline motivation — a z=2 skewed FK
// join must be estimated within a small factor, where the naive 1/max(V)
// estimate is off by orders of magnitude.
func TestJoinSelectivityUnderSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fk := zipfInts(rng, 6000, 1500, 2) // hot-key foreign keys
	var pk []catalog.Datum
	for i := 0; i < 1500; i++ {
		pk = append(pk, catalog.NewInt(int64(i)))
	}
	hfk := Build(MaxDiff, fk, 200)
	hpk := Build(MaxDiff, pk, 200)
	got := JoinSelectivity(hfk, hpk)
	want := exactJoinSel(fk, pk) // = 1/1500 exactly (PK unique)
	if got < want/3 || got > want*3 {
		t.Errorf("skewed FK-PK join: got %v, want within 3x of %v", got, want)
	}

	// And the reverse direction: joining two skewed FK columns, where
	// matches concentrate on the hot keys. The naive estimate 1/max(V)
	// would be ~1/1500; the true value is far larger.
	fk2 := zipfInts(rng, 800, 1500, 2)
	hfk2 := Build(MaxDiff, fk2, 200)
	got = JoinSelectivity(hfk, hfk2)
	want = exactJoinSel(fk, fk2)
	naive := 1.0 / 1500
	if want < naive*5 {
		t.Skip("generated data insufficiently skewed for this assertion")
	}
	if got < want/5 || got > want*5 {
		t.Errorf("skewed FK-FK join: got %v, true %v (naive %v)", got, want, naive)
	}
}

func TestJoinSelectivityDisjointDomains(t *testing.T) {
	a := Build(MaxDiff, intVals(1, 2, 3), 10)
	b := Build(MaxDiff, intVals(100, 200), 10)
	if got := JoinSelectivity(a, b); got != 0 {
		t.Errorf("disjoint join selectivity = %v, want 0", got)
	}
}

func TestJoinSelectivityEmpty(t *testing.T) {
	a := Build(MaxDiff, nil, 10)
	b := Build(MaxDiff, intVals(1), 10)
	if got := JoinSelectivity(a, b); got != 0 {
		t.Errorf("empty join selectivity = %v", got)
	}
}

func TestJoinSelectivitySymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := zipfInts(rng, 1000, 80, 1)
	b := zipfInts(rng, 400, 80, 2)
	ha, hb := Build(MaxDiff, a, 40), Build(MaxDiff, b, 40)
	ab, ba := JoinSelectivity(ha, hb), JoinSelectivity(hb, ha)
	if math.Abs(ab-ba)/math.Max(ab, ba) > 0.05 {
		t.Errorf("join selectivity should be (near) symmetric: %v vs %v", ab, ba)
	}
}
