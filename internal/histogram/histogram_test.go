package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"autostats/internal/catalog"
)

func intVals(vs ...int64) []catalog.Datum {
	out := make([]catalog.Datum, len(vs))
	for i, v := range vs {
		out[i] = catalog.NewInt(v)
	}
	return out
}

func randomInts(rng *rand.Rand, n, domain int) []catalog.Datum {
	out := make([]catalog.Datum, n)
	for i := range out {
		out[i] = catalog.NewInt(int64(rng.Intn(domain)))
	}
	return out
}

// checkInvariants asserts the structural invariants every histogram must
// satisfy: buckets sorted and non-overlapping, rows and distinct counts sum
// to the column totals.
func checkInvariants(t *testing.T, h *Histogram, values []catalog.Datum) {
	t.Helper()
	var rows, distinct int64
	for i, b := range h.Buckets {
		if b.Lo.Compare(b.Hi) > 0 {
			t.Errorf("bucket %d has Lo > Hi", i)
		}
		if i > 0 && h.Buckets[i-1].Hi.Compare(b.Lo) >= 0 {
			t.Errorf("bucket %d overlaps previous", i)
		}
		if b.Rows <= 0 || b.Distinct <= 0 {
			t.Errorf("bucket %d has nonpositive counts: %+v", i, b)
		}
		rows += b.Rows
		distinct += b.Distinct
	}
	nonNull := int64(0)
	exact := map[int64]bool{}
	for _, v := range values {
		if !v.Null {
			nonNull++
			exact[v.I] = true
		}
	}
	if rows != nonNull {
		t.Errorf("bucket rows sum %d != non-null values %d", rows, nonNull)
	}
	if distinct != int64(len(exact)) {
		t.Errorf("bucket distinct sum %d != exact distinct %d", distinct, len(exact))
	}
	if h.Distinct != int64(len(exact)) {
		t.Errorf("h.Distinct = %d, want %d", h.Distinct, len(exact))
	}
}

func TestBuildInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, kind := range []Kind{EquiDepth, MaxDiff} {
		for _, n := range []int{0, 1, 10, 1000} {
			for _, domain := range []int{1, 5, 300} {
				if n == 0 {
					h := Build(kind, nil, 50)
					if len(h.Buckets) != 0 || h.TotalRows() != 0 {
						t.Errorf("%v empty build: %+v", kind, h)
					}
					continue
				}
				vals := randomInts(rng, n, domain)
				h := Build(kind, vals, 50)
				checkInvariants(t, h, vals)
				if len(h.Buckets) > 50 {
					t.Errorf("%v n=%d domain=%d: %d buckets exceeds budget", kind, n, domain, len(h.Buckets))
				}
			}
		}
	}
}

func TestNullsTracked(t *testing.T) {
	vals := intVals(1, 2, 3)
	vals = append(vals, catalog.NewNull(catalog.Int), catalog.NewNull(catalog.Int))
	h := Build(MaxDiff, vals, 10)
	if h.NullRows != 2 || h.Rows != 3 || h.TotalRows() != 5 {
		t.Errorf("null accounting: %+v", h)
	}
	if got := h.NullFraction(); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("NullFraction = %v", got)
	}
}

// TestMaxDiffExactWhenFewDistinct: with fewer distinct values than buckets,
// MaxDiff keeps one value per bucket, so equality selectivity is exact.
func TestMaxDiffExactWhenFewDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := randomInts(rng, 2000, 40)
	h := Build(MaxDiff, vals, 200)
	counts := map[int64]int{}
	for _, v := range vals {
		counts[v.I]++
	}
	for v, c := range counts {
		want := float64(c) / float64(len(vals))
		got := h.SelectivityEq(catalog.NewInt(v))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("SelectivityEq(%d) = %v, want exactly %v", v, got, want)
		}
	}
	if got := h.SelectivityEq(catalog.NewInt(1000)); got != 0 {
		t.Errorf("SelectivityEq(out of domain) = %v", got)
	}
}

// TestSelectivityLessMatchesExact: property test against exact counting,
// with tolerance for within-bucket interpolation.
func TestSelectivityLessMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, kind := range []Kind{EquiDepth, MaxDiff} {
		vals := randomInts(rng, 5000, 1000)
		h := Build(kind, vals, 100)
		f := func(raw int16, inclusive bool) bool {
			v := catalog.NewInt(int64(raw)%1200 - 100)
			exact := 0
			for _, x := range vals {
				c := x.Compare(v)
				if c < 0 || (inclusive && c == 0) {
					exact++
				}
			}
			want := float64(exact) / float64(len(vals))
			got := h.SelectivityLess(v, inclusive)
			return math.Abs(got-want) < 0.05
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

// TestEquiDepthBucketsBalanced: no bucket of a single-frequency distribution
// should be grossly oversized.
func TestEquiDepthBucketsBalanced(t *testing.T) {
	vals := make([]catalog.Datum, 0, 10000)
	for i := 0; i < 10000; i++ {
		vals = append(vals, catalog.NewInt(int64(i)))
	}
	h := Build(EquiDepth, vals, 100)
	target := int64(10000 / 100)
	for i, b := range h.Buckets {
		if b.Rows > 2*target {
			t.Errorf("bucket %d holds %d rows (target %d)", i, b.Rows, target)
		}
	}
	if len(h.Buckets) < 90 {
		t.Errorf("expected ~100 buckets, got %d", len(h.Buckets))
	}
}

// TestMaxDiffIsolatesHeavyHitter: the headline property of MaxDiff — a hot
// value must land in its own (or a tight) bucket so its frequency estimate
// is accurate under skew.
func TestMaxDiffIsolatesHeavyHitter(t *testing.T) {
	var vals []catalog.Datum
	for i := 0; i < 5000; i++ {
		vals = append(vals, catalog.NewInt(0)) // heavy hitter
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		vals = append(vals, catalog.NewInt(int64(1+rng.Intn(2000))))
	}
	h := Build(MaxDiff, vals, 50)
	got := h.SelectivityEq(catalog.NewInt(0))
	if math.Abs(got-0.5) > 0.05 {
		t.Errorf("heavy hitter selectivity %v, want ≈0.5", got)
	}
}

func TestSelectivityEqUniformAssumption(t *testing.T) {
	// 100 values, each appearing 10 times, 10 buckets: eq selectivity must
	// be ~1/100 everywhere.
	var vals []catalog.Datum
	for v := 0; v < 100; v++ {
		for k := 0; k < 10; k++ {
			vals = append(vals, catalog.NewInt(int64(v)))
		}
	}
	h := Build(EquiDepth, vals, 10)
	for v := 0; v < 100; v += 7 {
		got := h.SelectivityEq(catalog.NewInt(int64(v)))
		if math.Abs(got-0.01) > 0.005 {
			t.Errorf("SelectivityEq(%d) = %v, want ≈0.01", v, got)
		}
	}
}

func TestStringHistogram(t *testing.T) {
	vals := []catalog.Datum{
		catalog.NewString("apple"), catalog.NewString("apple"),
		catalog.NewString("banana"), catalog.NewString("cherry"),
	}
	h := Build(MaxDiff, vals, 10)
	if got := h.SelectivityEq(catalog.NewString("apple")); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("apple selectivity %v", got)
	}
	if got := h.SelectivityLess(catalog.NewString("b"), false); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("< 'b' selectivity %v", got)
	}
}

func TestBuildCostUnitsMonotone(t *testing.T) {
	if BuildCostUnits(100, 1) >= BuildCostUnits(1000, 1) {
		t.Error("build cost must grow with rows")
	}
	if BuildCostUnits(1000, 1) >= BuildCostUnits(1000, 3) {
		t.Error("build cost must grow with column count")
	}
	if BuildCostUnits(0, 1) <= 0 {
		t.Error("build cost must be positive")
	}
}

func TestKindString(t *testing.T) {
	if EquiDepth.String() != "equi-depth" || MaxDiff.String() != "maxdiff" {
		t.Error("Kind.String mismatch")
	}
}
