package histogram

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"autostats/internal/catalog"
)

// streamTuples generates a deterministic mixed-type tuple set with NULLs,
// duplicate leading values, and cross-type numeric ties (Int 5 vs Float 5.0
// exercise tieBreak in collectFreqs).
func streamTuples(n int, seed int64) [][]catalog.Datum {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]catalog.Datum, n)
	for i := range out {
		var lead catalog.Datum
		switch rng.Intn(5) {
		case 0:
			lead = catalog.NewNull(catalog.Int)
		case 1:
			lead = catalog.NewFloat(float64(rng.Intn(8)))
		default:
			lead = catalog.NewInt(int64(rng.Intn(8)))
		}
		out[i] = []catalog.Datum{
			lead,
			catalog.NewString(fmt.Sprintf("g%d", rng.Intn(5))),
			catalog.NewInt(int64(rng.Intn(3))),
		}
	}
	return out
}

// feedBlocks pushes tuples into the builder through a reused block buffer of
// the given size, mimicking how a storage BlockIter recycles its backing
// array — this is what catches any missing copy in AddBlock.
func feedBlocks(t *testing.T, b *PartialBuilder, tuples [][]catalog.Datum, blockSize int) {
	t.Helper()
	width := 0
	if len(tuples) > 0 {
		width = len(tuples[0])
	}
	flat := make([]catalog.Datum, blockSize*width)
	block := make([][]catalog.Datum, 0, blockSize)
	for start := 0; start < len(tuples); start += blockSize {
		end := start + blockSize
		if end > len(tuples) {
			end = len(tuples)
		}
		block = block[:0]
		for i, src := range tuples[start:end] {
			dst := flat[i*width : (i+1)*width : (i+1)*width]
			copy(dst, src)
			block = append(block, dst)
		}
		if err := b.AddBlock(block); err != nil {
			t.Fatal(err)
		}
		// Scribble over the buffer to prove the builder copied what it kept.
		for i := range flat {
			flat[i] = catalog.NewString("POISON")
		}
	}
}

// TestPartialBuilderMatchesBuildPartial: Finish() must be bitwise-identical
// to the one-shot BuildPartial over the concatenated blocks, at every block
// size, for single- and multi-column statistics.
func TestPartialBuilderMatchesBuildPartial(t *testing.T) {
	tuples := streamTuples(233, 1)
	for _, cols := range [][]string{{"a"}, {"a", "b"}, {"a", "b", "c"}} {
		proj := make([][]catalog.Datum, len(tuples))
		for i, tup := range tuples {
			proj[i] = tup[:len(cols)]
		}
		want, err := BuildPartial(cols, proj)
		if err != nil {
			t.Fatal(err)
		}
		for _, bs := range []int{1, 3, 17, 64, 500} {
			b, err := NewPartialBuilder(cols)
			if err != nil {
				t.Fatal(err)
			}
			feedBlocks(t, b, proj, bs)
			if got := b.Rows(); got != int64(len(proj)) {
				t.Errorf("cols=%d block=%d: Rows=%d want %d", len(cols), bs, got, len(proj))
			}
			got := b.Finish()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("cols=%d block=%d: streamed partial differs from BuildPartial", len(cols), bs)
			}
			// The builder must reset: a second partition through the same
			// builder must match a fresh BuildPartial of that partition.
			feedBlocks(t, b, proj[:50], bs)
			want2, err := BuildPartial(cols, proj[:50])
			if err != nil {
				t.Fatal(err)
			}
			if got2 := b.Finish(); !reflect.DeepEqual(got2, want2) {
				t.Errorf("cols=%d block=%d: reused builder differs from BuildPartial", len(cols), bs)
			}
		}
	}
}

// TestPartialBuilderEmptyAndErrors: zero-row partitions are valid; arity
// mismatches are rejected without corrupting the partition.
func TestPartialBuilderEmptyAndErrors(t *testing.T) {
	if _, err := NewPartialBuilder(nil); err == nil {
		t.Error("no error for zero columns")
	}
	b, err := NewPartialBuilder([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddBlock([][]catalog.Datum{{catalog.NewInt(1)}}); err == nil {
		t.Error("no error for arity mismatch")
	}
	want, err := BuildPartial([]string{"a", "b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Finish(); !reflect.DeepEqual(got, want) {
		t.Error("empty Finish differs from BuildPartial over no tuples")
	}
}

// TestPartialBuilderMemBytes: the estimate grows as rows land, matches the
// finished partial's scale, and resets with Finish.
func TestPartialBuilderMemBytes(t *testing.T) {
	b, err := NewPartialBuilder([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if b.MemBytes() != 0 {
		t.Errorf("fresh builder MemBytes=%d", b.MemBytes())
	}
	tuples := streamTuples(100, 2)
	proj := make([][]catalog.Datum, len(tuples))
	for i, tup := range tuples {
		proj[i] = tup[:2]
	}
	feedBlocks(t, b, proj, 10)
	mid := b.MemBytes()
	if mid <= 0 {
		t.Fatalf("MemBytes=%d after 100 rows", mid)
	}
	feedBlocks(t, b, proj, 10)
	if after := b.MemBytes(); after <= mid {
		t.Errorf("MemBytes did not grow: %d -> %d", mid, after)
	}
	p := b.Finish()
	if b.MemBytes() != 0 {
		t.Errorf("MemBytes=%d after Finish", b.MemBytes())
	}
	if p.MemBytes() <= 0 {
		t.Errorf("finished partial MemBytes=%d", p.MemBytes())
	}
	// The collapsed partial retains at most what the builder held (duplicate
	// leading values collapse into frequencies).
	if p.MemBytes() > 2*mid+b.MemBytes() {
		t.Errorf("partial estimate %d out of scale with builder estimate %d", p.MemBytes(), mid)
	}
}

// TestPartialCodecRoundtrip: Encode/Decode must reproduce the partial
// exactly — reflect.DeepEqual on the full struct including tie-break float
// bits — and partials that passed through the codec must merge to the same
// histogram as the originals.
func TestPartialCodecRoundtrip(t *testing.T) {
	tuples := streamTuples(321, 3)
	cols := []string{"a", "b", "c"}
	parts := SplitTuples(tuples, 4)
	var orig, decoded []*Partial
	for _, part := range parts {
		p, err := BuildPartial(cols, part)
		if err != nil {
			t.Fatal(err)
		}
		orig = append(orig, p)
		var buf bytes.Buffer
		if err := EncodePartial(&buf, p); err != nil {
			t.Fatal(err)
		}
		q, err := DecodePartial(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatal("decoded partial differs from original")
		}
		decoded = append(decoded, q)
	}
	for _, kind := range []Kind{EquiDepth, MaxDiff} {
		want, err := MergePartials(kind, cols, orig, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MergePartials(kind, cols, decoded, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("kind=%v: merge of decoded partials differs", kind)
		}
	}
}

// TestPartialCodecFloatBits: negative zero, NaN-adjacent bit patterns and
// NULL datums must survive the roundtrip bit-for-bit, since tieBreak
// compares Float64bits.
func TestPartialCodecFloatBits(t *testing.T) {
	vals := []catalog.Datum{
		catalog.NewFloat(0.0),
		{T: catalog.Float, F: negZero()},
		catalog.NewFloat(5.0),
		catalog.NewInt(5),
		catalog.NewNull(catalog.Float),
		catalog.NewString(""),
		catalog.NewString("x\x00y"),
		catalog.NewDate(19000),
	}
	tuples := make([][]catalog.Datum, len(vals))
	for i, v := range vals {
		tuples[i] = []catalog.Datum{v}
	}
	p, err := BuildPartial([]string{"a"}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodePartial(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := DecodePartial(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Error("edge-case datums did not survive the codec roundtrip")
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}

// TestPartialCodecCorrupt: garbage input errors instead of yielding a bogus
// partial.
func TestPartialCodecCorrupt(t *testing.T) {
	if _, err := DecodePartial(strings.NewReader("not a spill file")); err == nil {
		t.Error("no error for bad magic")
	}
	if _, err := DecodePartial(strings.NewReader("")); err == nil {
		t.Error("no error for empty input")
	}
	// Truncated body after a valid header.
	tuples := streamTuples(50, 4)
	proj := make([][]catalog.Datum, len(tuples))
	for i, tup := range tuples {
		proj[i] = tup[:1]
	}
	p, err := BuildPartial([]string{"a"}, proj)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodePartial(&buf, p); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := DecodePartial(bytes.NewReader(trunc)); err == nil {
		t.Error("no error for truncated spill file")
	}
}

// BenchmarkStreamingPartialBuild measures per-build allocations of the
// streaming partition path; the statsbuild-bench CI job runs it with
// -benchmem to watch for O(table) regressions in the builder itself.
func BenchmarkStreamingPartialBuild(b *testing.B) {
	tuples := streamTuples(8192, 7)
	cols := []string{"a", "b"}
	proj := make([][]catalog.Datum, len(tuples))
	for i, tup := range tuples {
		proj[i] = tup[:2]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb, err := NewPartialBuilder(cols)
		if err != nil {
			b.Fatal(err)
		}
		for start := 0; start < len(proj); start += 256 {
			end := start + 256
			if end > len(proj) {
				end = len(proj)
			}
			if err := pb.AddBlock(proj[start:end]); err != nil {
				b.Fatal(err)
			}
		}
		p := pb.Finish()
		if _, err := MergePartials(EquiDepth, cols, []*Partial{p}, 10); err != nil {
			b.Fatal(err)
		}
	}
}
