package histogram

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"autostats/internal/catalog"
)

// Binary spill codec for Partial. A streaming build that exceeds its
// memory budget writes completed partials to temp files and reloads them
// for the final merge; the roundtrip must be EXACT — every datum field is
// preserved bit-for-bit (float payloads via Float64bits, the tie-break
// fields I/F/S even for types that do not use them) so a spilled-and-
// reloaded build stays bitwise-identical to an all-in-memory one.

// partialMagic guards against decoding a foreign or truncated file.
var partialMagic = [4]byte{'A', 'S', 'P', '1'}

// datumNullBit marks NULL in the datum tag byte; the low bits carry the
// catalog.Type.
const datumNullBit = 0x80

// EncodePartial writes p in the spill format.
func EncodePartial(w io.Writer, p *Partial) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(partialMagic[:]); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putDatum := func(d catalog.Datum) error {
		tag := byte(d.T)
		if d.Null {
			tag |= datumNullBit
		}
		if err := bw.WriteByte(tag); err != nil {
			return err
		}
		if err := putVarint(d.I); err != nil {
			return err
		}
		var fbits [8]byte
		binary.LittleEndian.PutUint64(fbits[:], math.Float64bits(d.F))
		if _, err := bw.Write(fbits[:]); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(d.S))); err != nil {
			return err
		}
		_, err := bw.WriteString(d.S)
		return err
	}

	if err := putUvarint(uint64(p.cols)); err != nil {
		return err
	}
	if err := putVarint(p.rows); err != nil {
		return err
	}
	if err := putVarint(p.nulls); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(p.freqs))); err != nil {
		return err
	}
	for _, vf := range p.freqs {
		if err := putDatum(vf.v); err != nil {
			return err
		}
		if err := putVarint(vf.f); err != nil {
			return err
		}
	}
	for _, set := range p.prefixes {
		if err := putUvarint(uint64(len(set))); err != nil {
			return err
		}
		// Map order is nondeterministic but irrelevant: decode rebuilds the
		// set, and set equality is all the merge consumes.
		for key := range set {
			if err := putUvarint(uint64(len(key))); err != nil {
				return err
			}
			if _, err := bw.WriteString(key); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DecodePartial reads one Partial in the spill format.
func DecodePartial(r io.Reader) (*Partial, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("histogram: spill header: %w", err)
	}
	if magic != partialMagic {
		return nil, fmt.Errorf("histogram: bad spill magic %q", magic[:])
	}
	getString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	getDatum := func() (catalog.Datum, error) {
		var d catalog.Datum
		tag, err := br.ReadByte()
		if err != nil {
			return d, err
		}
		d.T = catalog.Type(tag &^ datumNullBit)
		d.Null = tag&datumNullBit != 0
		if d.I, err = binary.ReadVarint(br); err != nil {
			return d, err
		}
		var fbits [8]byte
		if _, err := io.ReadFull(br, fbits[:]); err != nil {
			return d, err
		}
		d.F = math.Float64frombits(binary.LittleEndian.Uint64(fbits[:]))
		if d.S, err = getString(); err != nil {
			return d, err
		}
		return d, nil
	}

	cols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("histogram: spill cols: %w", err)
	}
	if cols == 0 {
		return nil, fmt.Errorf("histogram: spill partial has zero columns")
	}
	p := &Partial{cols: int(cols)}
	if p.rows, err = binary.ReadVarint(br); err != nil {
		return nil, fmt.Errorf("histogram: spill rows: %w", err)
	}
	if p.nulls, err = binary.ReadVarint(br); err != nil {
		return nil, fmt.Errorf("histogram: spill nulls: %w", err)
	}
	nfreqs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("histogram: spill freq count: %w", err)
	}
	if nfreqs > 0 {
		p.freqs = make([]valueFreq, 0, nfreqs)
	}
	for i := uint64(0); i < nfreqs; i++ {
		v, err := getDatum()
		if err != nil {
			return nil, fmt.Errorf("histogram: spill freq %d: %w", i, err)
		}
		f, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("histogram: spill freq %d: %w", i, err)
		}
		p.freqs = append(p.freqs, valueFreq{v: v, f: f})
	}
	if p.cols > 1 {
		p.prefixes = make([]map[string]struct{}, p.cols-1)
		for k := range p.prefixes {
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("histogram: spill prefix set %d: %w", k, err)
			}
			set := make(map[string]struct{}, n)
			for i := uint64(0); i < n; i++ {
				key, err := getString()
				if err != nil {
					return nil, fmt.Errorf("histogram: spill prefix key: %w", err)
				}
				set[key] = struct{}{}
			}
			p.prefixes[k] = set
		}
	}
	return p, nil
}
