package histogram

import (
	"math/rand"
	"reflect"
	"testing"

	"autostats/internal/catalog"
)

func mustBuildMulti(t testing.TB, kind Kind, cols []string, tuples [][]catalog.Datum, buckets int) *MultiColumn {
	t.Helper()
	mc, err := BuildMulti(kind, cols, tuples, buckets)
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

// TestFoldMultiRowTotals: folding keeps bucket row sums, NULL counts and the
// statistic row total exact, and never mutates the input.
func TestFoldMultiRowTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tuples := randTuples(rng, 400, 1)
	mc := mustBuildMulti(t, MaxDiff, []string{"a"}, tuples, 12)
	before := mc.Clone()

	ins := []catalog.Datum{catalog.NewInt(3), catalog.NewInt(999), catalog.NewInt(-50), {Null: true}}
	del := []catalog.Datum{tuples[0][0], tuples[10][0]}
	folded := FoldMulti(mc, ins, del)

	if !reflect.DeepEqual(mc, before) {
		t.Fatal("FoldMulti mutated its input")
	}
	if want := before.Rows + int64(len(ins)) - int64(len(del)); folded.Rows != want {
		t.Fatalf("folded Rows = %d, want %d", folded.Rows, want)
	}
	nonNullDelta := int64(0)
	for _, v := range ins {
		if !v.Null {
			nonNullDelta++
		}
	}
	for _, v := range del {
		if !v.Null {
			nonNullDelta--
		}
	}
	if want := before.Leading.Rows + nonNullDelta; folded.Leading.Rows != want {
		t.Fatalf("folded leading Rows = %d, want %d", folded.Leading.Rows, want)
	}
	var bucketRows int64
	for _, b := range folded.Leading.Buckets {
		bucketRows += b.Rows
	}
	if bucketRows != folded.Leading.Rows {
		t.Fatalf("bucket rows %d != histogram rows %d after fold", bucketRows, folded.Leading.Rows)
	}
	if want := before.Leading.NullRows + 1; folded.Leading.NullRows != want {
		t.Fatalf("folded NullRows = %d, want %d", folded.Leading.NullRows, want)
	}
}

// TestFoldOutOfRange: inserts beyond the histogram's domain extend the edge
// buckets so later folds and estimates still land somewhere.
func TestFoldOutOfRange(t *testing.T) {
	vals := []catalog.Datum{catalog.NewInt(10), catalog.NewInt(20), catalog.NewInt(30)}
	tuples := make([][]catalog.Datum, len(vals))
	for i, v := range vals {
		tuples[i] = []catalog.Datum{v}
	}
	mc := mustBuildMulti(t, EquiDepth, []string{"a"}, tuples, 2)
	folded := FoldMulti(mc, []catalog.Datum{catalog.NewInt(1), catalog.NewInt(100)}, nil)
	h := folded.Leading
	if h.Buckets[0].Lo.Compare(catalog.NewInt(1)) != 0 {
		t.Fatalf("low insert did not extend first bucket: Lo=%v", h.Buckets[0].Lo)
	}
	if h.Buckets[len(h.Buckets)-1].Hi.Compare(catalog.NewInt(100)) != 0 {
		t.Fatalf("high insert did not extend last bucket: Hi=%v", h.Buckets[len(h.Buckets)-1].Hi)
	}
	if h.Rows != 5 {
		t.Fatalf("rows = %d, want 5", h.Rows)
	}
}

// TestFoldEmptyHistogram: folding into a statistic built over zero rows
// creates a seed bucket instead of dropping the delta.
func TestFoldEmptyHistogram(t *testing.T) {
	mc := mustBuildMulti(t, MaxDiff, []string{"a"}, nil, 0)
	folded := FoldMulti(mc, []catalog.Datum{catalog.NewInt(7), catalog.NewInt(7)}, nil)
	h := folded.Leading
	if len(h.Buckets) != 1 || h.Rows != 2 {
		t.Fatalf("empty fold: buckets=%d rows=%d", len(h.Buckets), h.Rows)
	}
	// Delete below zero floors at zero rather than going negative.
	drained := FoldMulti(folded, nil, []catalog.Datum{catalog.NewInt(7), catalog.NewInt(7), catalog.NewInt(7)})
	if drained.Leading.Rows != 0 || drained.Rows != 0 {
		t.Fatalf("over-delete: leading rows=%d total=%d", drained.Leading.Rows, drained.Rows)
	}
}

// TestCloneIndependence: mutating a clone must not leak into the original.
func TestCloneIndependence(t *testing.T) {
	tuples := randTuples(rand.New(rand.NewSource(9)), 50, 2)
	mc := mustBuildMulti(t, MaxDiff, []string{"a", "b"}, tuples, 8)
	c := mc.Clone()
	c.Leading.Buckets[0].Rows += 100
	c.Densities[0] = -1
	c.PrefixDistinct[1] = -1
	if mc.Leading.Buckets[0].Rows == c.Leading.Buckets[0].Rows {
		t.Fatal("clone shares bucket storage")
	}
	if mc.Densities[0] == -1 || mc.PrefixDistinct[1] == -1 {
		t.Fatal("clone shares density storage")
	}
}

// BenchmarkBuildMulti / BenchmarkBuildMultiParallel4 cover the build hot
// path for the -benchmem allocation regression in CI.
func BenchmarkBuildMulti(b *testing.B) {
	tuples := randTuples(rand.New(rand.NewSource(1)), 5000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildMulti(MaxDiff, []string{"a"}, tuples, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildMultiParallel4(b *testing.B) {
	tuples := randTuples(rand.New(rand.NewSource(1)), 5000, 1)
	parts := SplitTuples(tuples, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildMultiParallel(MaxDiff, []string{"a"}, parts, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFoldMulti measures the incremental-maintenance hot path.
func BenchmarkFoldMulti(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tuples := randTuples(rng, 5000, 1)
	mc, err := BuildMulti(MaxDiff, []string{"a"}, tuples, 0)
	if err != nil {
		b.Fatal(err)
	}
	deltas := make([]catalog.Datum, 256)
	for i := range deltas {
		deltas[i] = catalog.NewInt(int64(rng.Intn(400)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FoldMulti(mc, deltas[:128], deltas[128:])
	}
}

// TestFoldAllocsBounded is the allocation regression gate for the fold hot
// path: folding must cost a clone plus per-delta search work, never a
// per-delta allocation. The bound is generous; it exists to catch gross
// regressions (e.g. an accidental re-sort or per-delta boxing).
func TestFoldAllocsBounded(t *testing.T) {
	tuples := randTuples(rand.New(rand.NewSource(4)), 2000, 1)
	mc := mustBuildMulti(t, MaxDiff, []string{"a"}, tuples, 0)
	ins := make([]catalog.Datum, 64)
	for i := range ins {
		ins[i] = catalog.NewInt(int64(i))
	}
	allocs := testing.AllocsPerRun(50, func() {
		FoldMulti(mc, ins, nil)
	})
	if allocs > 16 {
		t.Fatalf("FoldMulti allocates %.0f objects per call for 64 deltas; want <= 16 (clone-dominated)", allocs)
	}
}
