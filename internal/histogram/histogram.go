// Package histogram implements the statistics summary structures: equi-depth
// and MaxDiff single-column histograms, and the asymmetric multi-column
// statistic used by Microsoft SQL Server 7.0 (histogram on the leading
// column plus density information on each leading prefix), as described in
// §3 and §7.1 of the paper.
//
// The selection algorithms in internal/core are deliberately oblivious to
// the histogram variant (§1: "the proposed algorithms do not depend on the
// specific structure of statistics used in a DBMS").
package histogram

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"autostats/internal/catalog"
)

// Kind identifies the histogram construction strategy.
type Kind int

const (
	// EquiDepth buckets hold (approximately) equal row counts.
	EquiDepth Kind = iota
	// MaxDiff places bucket boundaries at the largest adjacent frequency
	// differences (Poosala et al., SIGMOD 1996 [14] in the paper).
	MaxDiff
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case EquiDepth:
		return "equi-depth"
	case MaxDiff:
		return "maxdiff"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DefaultBuckets is the bucket budget used when callers do not specify one.
// SQL Server 7.0 statistics held up to 200 histogram steps.
const DefaultBuckets = 200

// Bucket summarizes a value range [Lo, Hi] (both inclusive).
type Bucket struct {
	Lo, Hi   catalog.Datum
	Rows     int64
	Distinct int64
}

// Histogram is a single-column distribution summary.
type Histogram struct {
	Kind     Kind
	Buckets  []Bucket
	Rows     int64 // non-NULL rows summarized
	NullRows int64
	Distinct int64 // distinct non-NULL values
}

// TotalRows returns all rows summarized, including NULLs.
func (h *Histogram) TotalRows() int64 { return h.Rows + h.NullRows }

// valueFreq is an intermediate (value, frequency) pair.
type valueFreq struct {
	v catalog.Datum
	f int64
}

// tieBreak orders Compare-equal datums deterministically. Datum.Compare is a
// total order over values but treats cross-type numerics as equal (3 == 3.0),
// so the representative kept after collapsing duplicates would otherwise
// depend on input order — and a partition-merged build could disagree with a
// single-pass build over the same rows. Collapsing still groups by Compare;
// tieBreak only pins which member of the group represents it.
func tieBreak(a, b catalog.Datum) int {
	if a.Null != b.Null {
		if a.Null {
			return -1
		}
		return 1
	}
	if a.T != b.T {
		if a.T < b.T {
			return -1
		}
		return 1
	}
	if a.I != b.I {
		if a.I < b.I {
			return -1
		}
		return 1
	}
	if ab, bb := math.Float64bits(a.F), math.Float64bits(b.F); ab != bb {
		if ab < bb {
			return -1
		}
		return 1
	}
	return strings.Compare(a.S, b.S)
}

// cmpValue is Compare with the deterministic tie-break applied to equals.
func cmpValue(a, b catalog.Datum) int {
	if c := a.Compare(b); c != 0 {
		return c
	}
	return tieBreak(a, b)
}

func collectFreqs(values []catalog.Datum) (freqs []valueFreq, nulls int64) {
	sorted := make([]catalog.Datum, 0, len(values))
	for _, v := range values {
		if v.Null {
			nulls++
			continue
		}
		sorted = append(sorted, v)
	}
	sort.Slice(sorted, func(i, j int) bool { return cmpValue(sorted[i], sorted[j]) < 0 })
	for i := 0; i < len(sorted); {
		j := i + 1
		for j < len(sorted) && sorted[j].Compare(sorted[i]) == 0 {
			j++
		}
		freqs = append(freqs, valueFreq{v: sorted[i], f: int64(j - i)})
		i = j
	}
	return freqs, nulls
}

// Build constructs a histogram of the given kind over the column values
// with at most maxBuckets buckets (DefaultBuckets if maxBuckets <= 0).
func Build(kind Kind, values []catalog.Datum, maxBuckets int) *Histogram {
	freqs, nulls := collectFreqs(values)
	return buildFromFreqs(kind, freqs, nulls, maxBuckets)
}

// buildFromFreqs buckets an already-sorted, collapsed (value, frequency) list.
// It is the single bucketing entry point shared by Build and MergePartials, so
// a merged build is bitwise-identical to a single-pass build over the same
// rows.
func buildFromFreqs(kind Kind, freqs []valueFreq, nulls int64, maxBuckets int) *Histogram {
	if maxBuckets <= 0 {
		maxBuckets = DefaultBuckets
	}
	h := &Histogram{Kind: kind, NullRows: nulls, Distinct: int64(len(freqs))}
	for _, vf := range freqs {
		h.Rows += vf.f
	}
	if len(freqs) == 0 {
		return h
	}
	switch kind {
	case MaxDiff:
		h.Buckets = buildMaxDiff(freqs, maxBuckets)
	default:
		h.Buckets = buildEquiDepth(freqs, maxBuckets)
	}
	return h
}

// buildEquiDepth greedily fills buckets to a target depth of rows/maxBuckets,
// never splitting a single value across buckets.
func buildEquiDepth(freqs []valueFreq, maxBuckets int) []Bucket {
	var total int64
	for _, vf := range freqs {
		total += vf.f
	}
	target := total / int64(maxBuckets)
	if target < 1 {
		target = 1
	}
	var out []Bucket
	cur := Bucket{Lo: freqs[0].v}
	for i, vf := range freqs {
		cur.Rows += vf.f
		cur.Distinct++
		cur.Hi = vf.v
		lastValue := i == len(freqs)-1
		bucketFull := cur.Rows >= target && len(out) < maxBuckets-1
		if lastValue || bucketFull {
			out = append(out, cur)
			if !lastValue {
				cur = Bucket{Lo: freqs[i+1].v}
			}
		}
	}
	return out
}

// buildMaxDiff places boundaries after the maxBuckets-1 largest adjacent
// frequency differences, producing buckets of near-uniform internal
// frequency (the MaxDiff(V,F) variant).
func buildMaxDiff(freqs []valueFreq, maxBuckets int) []Bucket {
	if len(freqs) <= maxBuckets {
		// One singleton bucket per distinct value: exact distribution.
		out := make([]Bucket, len(freqs))
		for i, vf := range freqs {
			out[i] = Bucket{Lo: vf.v, Hi: vf.v, Rows: vf.f, Distinct: 1}
		}
		return out
	}
	type diff struct {
		pos int // boundary after freqs[pos]
		d   int64
	}
	diffs := make([]diff, 0, len(freqs)-1)
	for i := 0; i+1 < len(freqs); i++ {
		d := freqs[i+1].f - freqs[i].f
		if d < 0 {
			d = -d
		}
		diffs = append(diffs, diff{pos: i, d: d})
	}
	sort.Slice(diffs, func(a, b int) bool {
		if diffs[a].d != diffs[b].d {
			return diffs[a].d > diffs[b].d
		}
		return diffs[a].pos < diffs[b].pos
	})
	nb := maxBuckets - 1
	if nb > len(diffs) {
		nb = len(diffs)
	}
	cuts := make([]int, nb)
	for i := 0; i < nb; i++ {
		cuts[i] = diffs[i].pos
	}
	sort.Ints(cuts)
	var out []Bucket
	start := 0
	emit := func(end int) { // bucket over freqs[start..end] inclusive
		b := Bucket{Lo: freqs[start].v, Hi: freqs[end].v, Distinct: int64(end - start + 1)}
		for i := start; i <= end; i++ {
			b.Rows += freqs[i].f
		}
		out = append(out, b)
		start = end + 1
	}
	for _, c := range cuts {
		emit(c)
	}
	emit(len(freqs) - 1)
	return out
}

// SelectivityEq estimates the fraction of rows with value v, using the
// uniform-within-bucket assumption (bucket rows spread over bucket distinct
// values).
func (h *Histogram) SelectivityEq(v catalog.Datum) float64 {
	total := float64(h.TotalRows())
	if total == 0 {
		return 0
	}
	for _, b := range h.Buckets {
		if v.Compare(b.Lo) >= 0 && v.Compare(b.Hi) <= 0 {
			d := b.Distinct
			if d < 1 {
				d = 1
			}
			return float64(b.Rows) / float64(d) / total
		}
	}
	return 0
}

// SelectivityLess estimates the fraction of rows with value < v
// (or ≤ v when inclusive), interpolating linearly inside the boundary
// bucket via the datum's float rank.
func (h *Histogram) SelectivityLess(v catalog.Datum, inclusive bool) float64 {
	total := float64(h.TotalRows())
	if total == 0 {
		return 0
	}
	var rows float64
	for _, b := range h.Buckets {
		if v.Compare(b.Lo) < 0 {
			break
		}
		if v.Compare(b.Hi) >= 0 {
			rows += float64(b.Rows)
			if !inclusive && v.Compare(b.Hi) == 0 {
				// Remove the estimated frequency of v itself.
				d := b.Distinct
				if d < 1 {
					d = 1
				}
				rows -= float64(b.Rows) / float64(d)
			}
			continue
		}
		// v falls strictly inside (Lo, Hi): interpolate.
		lo, hi, x := b.Lo.ToFloat(), b.Hi.ToFloat(), v.ToFloat()
		frac := 0.5
		if hi > lo {
			frac = (x - lo) / (hi - lo)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
		}
		rows += float64(b.Rows) * frac
		break
	}
	if rows < 0 {
		rows = 0
	}
	return clamp01(rows / total)
}

// NullFraction returns the fraction of NULL rows.
func (h *Histogram) NullFraction() float64 {
	total := float64(h.TotalRows())
	if total == 0 {
		return 0
	}
	return float64(h.NullRows) / total
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// String summarizes the histogram for debugging.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s histogram: %d rows (%d null), %d distinct, %d buckets",
		h.Kind, h.TotalRows(), h.NullRows, h.Distinct, len(h.Buckets))
	return b.String()
}
