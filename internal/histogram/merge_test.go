package histogram

import (
	"math/rand"
	"reflect"
	"testing"

	"autostats/internal/catalog"
)

// randTuples generates width-column tuples with skewed integer values and a
// sprinkling of NULLs and strings, the mix the merge path must reproduce
// exactly.
func randTuples(rng *rand.Rand, n, width int) [][]catalog.Datum {
	out := make([][]catalog.Datum, n)
	for i := range out {
		t := make([]catalog.Datum, width)
		for c := range t {
			switch rng.Intn(10) {
			case 0:
				t[c] = catalog.Datum{Null: true}
			case 1:
				t[c] = catalog.NewString([]string{"aa", "bb", "cc", "dd"}[rng.Intn(4)])
			case 2:
				t[c] = catalog.NewFloat(float64(rng.Intn(50)) / 4)
			default:
				// Zipf-ish skew: small values dominate.
				t[c] = catalog.NewInt(int64(rng.Intn(rng.Intn(200) + 1)))
			}
		}
		out[i] = t
	}
	return out
}

// TestBuildMultiParallelMatchesSinglePass: the merged build must be
// bitwise-identical to BuildMulti for every kind, width, size and partition
// count — the exactness claim the differential oracle leans on.
func TestBuildMultiParallelMatchesSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, kind := range []Kind{EquiDepth, MaxDiff} {
		for _, width := range []int{1, 2, 3} {
			for _, n := range []int{0, 1, 17, 500} {
				cols := []string{"a", "b", "c"}[:width]
				tuples := randTuples(rng, n, width)
				for _, buckets := range []int{0, 8} {
					want, err := BuildMulti(kind, cols, tuples, buckets)
					if err != nil {
						t.Fatal(err)
					}
					for _, parts := range []int{1, 2, 4, 7} {
						got, err := BuildMultiParallel(kind, cols, SplitTuples(tuples, parts), buckets)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("%v width=%d n=%d buckets=%d parts=%d: merged build differs\nwant %+v\ngot  %+v",
								kind, width, n, buckets, parts, want, got)
						}
					}
				}
			}
		}
	}
}

// TestMergePartialsOrderIndependent: permuting the partition order must not
// change the merged statistic.
func TestMergePartialsOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cols := []string{"a", "b"}
	tuples := randTuples(rng, 300, 2)
	chunks := SplitTuples(tuples, 4)
	parts := make([]*Partial, len(chunks))
	for i, c := range chunks {
		p, err := BuildPartial(cols, c)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = p
	}
	want, err := MergePartials(MaxDiff, cols, parts, 16)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		perm := append([]*Partial(nil), parts...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got, err := MergePartials(MaxDiff, cols, perm, 16)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: partition order changed the merged statistic", trial)
		}
	}
}

// TestMergePartialsArityMismatch: mismatched partials must error, not panic.
func TestMergePartialsArityMismatch(t *testing.T) {
	p1, err := BuildPartial([]string{"a"}, [][]catalog.Datum{{catalog.NewInt(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergePartials(MaxDiff, []string{"a", "b"}, []*Partial{p1}, 0); err == nil {
		t.Fatal("expected arity mismatch error")
	}
	if _, err := BuildPartial(nil, nil); err == nil {
		t.Fatal("expected no-columns error")
	}
	if _, err := BuildPartial([]string{"a"}, [][]catalog.Datum{{catalog.NewInt(1), catalog.NewInt(2)}}); err == nil {
		t.Fatal("expected tuple arity error")
	}
}

func TestSplitTuples(t *testing.T) {
	tuples := randTuples(rand.New(rand.NewSource(3)), 10, 1)
	for _, k := range []int{-1, 0, 1, 3, 10, 25} {
		parts := SplitTuples(tuples, k)
		var total int
		for _, p := range parts {
			total += len(p)
		}
		if total != len(tuples) {
			t.Fatalf("k=%d: split covers %d of %d tuples", k, total, len(tuples))
		}
		if k > 1 && len(parts) > k {
			t.Fatalf("k=%d: %d partitions", k, len(parts))
		}
	}
	if parts := SplitTuples(nil, 4); len(parts) != 1 || len(parts[0]) != 0 {
		t.Fatalf("empty input: got %d partitions", len(parts))
	}
}
