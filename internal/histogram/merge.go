package histogram

import (
	"fmt"
	"sync"

	"autostats/internal/catalog"
)

// Partition-parallel, mergeable statistics construction. A table scan is
// split into contiguous partitions, each partition is summarized into a
// Partial — an exact, sorted (value, frequency) list for the leading column
// plus per-prefix distinct sets — concurrently, and MergePartials combines
// the partials and buckets the merged frequency list once. Because the
// bucket boundaries are chosen over the complete merged frequency list (not
// over pre-bucketed partial histograms), the merged result is
// bitwise-identical to a single-pass Build/BuildMulti over the concatenated
// rows, regardless of partition count or order. That exactness is what the
// merged-vs-rebuilt differential oracle in internal/oracle asserts.

// Partial is the mergeable per-partition summary of a multi-column
// statistic's input: exact leading-column frequencies plus the distinct
// prefix combinations of every non-leading prefix. Build one per partition
// with BuildPartial and combine with MergePartials.
type Partial struct {
	cols  int
	rows  int64
	nulls int64
	// freqs is the sorted, collapsed leading-column frequency list.
	freqs []valueFreq
	// prefixes[k-2] holds the encoded distinct combinations of the k-column
	// leading prefix, for k in 2..cols. The k=1 prefix is derived from freqs.
	prefixes []map[string]struct{}
}

// Rows returns the number of tuples summarized by the partial.
func (p *Partial) Rows() int64 { return p.rows }

// BuildPartial summarizes one partition of column tuples. Each tuple must
// have len(columns) datums, ordered to match columns.
func BuildPartial(columns []string, tuples [][]catalog.Datum) (*Partial, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("histogram: partial statistic needs at least one column")
	}
	for _, t := range tuples {
		if len(t) != len(columns) {
			return nil, fmt.Errorf("histogram: tuple arity %d does not match %d columns", len(t), len(columns))
		}
	}
	leading := make([]catalog.Datum, len(tuples))
	for i, t := range tuples {
		leading[i] = t[0]
	}
	p := &Partial{cols: len(columns), rows: int64(len(tuples))}
	p.freqs, p.nulls = collectFreqs(leading)
	if len(columns) > 1 {
		p.prefixes = make([]map[string]struct{}, len(columns)-1)
		for k := 2; k <= len(columns); k++ {
			seen := make(map[string]struct{}, len(tuples))
			for _, t := range tuples {
				seen[encodePrefix(t[:k])] = struct{}{}
			}
			p.prefixes[k-2] = seen
		}
	}
	return p, nil
}

// MergePartials combines per-partition summaries into the final multi-column
// statistic. The result is identical to BuildMulti over the concatenation of
// the partitions, and is independent of the order of parts: the merged
// frequency list is sorted by value, and prefix sets union commutatively.
func MergePartials(kind Kind, columns []string, parts []*Partial, maxBuckets int) (*MultiColumn, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("histogram: multi-column statistic needs at least one column")
	}
	for _, p := range parts {
		if p.cols != len(columns) {
			return nil, fmt.Errorf("histogram: merging partial of %d columns into %d-column statistic", p.cols, len(columns))
		}
	}
	lists := make([][]valueFreq, len(parts))
	var rows, nulls int64
	for i, p := range parts {
		lists[i] = p.freqs
		rows += p.rows
		nulls += p.nulls
	}
	freqs := mergeFreqLists(lists)
	mc := &MultiColumn{
		Columns:        append([]string(nil), columns...),
		Leading:        buildFromFreqs(kind, freqs, nulls, maxBuckets),
		Densities:      make([]float64, len(columns)),
		PrefixDistinct: make([]int64, len(columns)),
		Rows:           rows,
	}
	// The k=1 prefix distinct count falls out of the merged frequency list:
	// every distinct non-NULL value plus one combination for NULL, exactly
	// what BuildMulti's encodePrefix set would count.
	dv := int64(len(freqs))
	if nulls > 0 {
		dv++
	}
	setPrefixDistinct(mc, 0, dv)
	for k := 2; k <= len(columns); k++ {
		union := make(map[string]struct{})
		for _, p := range parts {
			for key := range p.prefixes[k-2] {
				union[key] = struct{}{}
			}
		}
		setPrefixDistinct(mc, k-1, int64(len(union)))
	}
	return mc, nil
}

// setPrefixDistinct records a prefix distinct count and its density with
// BuildMulti's conventions (zero combinations yield density 1).
func setPrefixDistinct(mc *MultiColumn, idx int, dv int64) {
	mc.PrefixDistinct[idx] = dv
	if dv > 0 {
		mc.Densities[idx] = 1 / float64(dv)
	} else {
		mc.Densities[idx] = 1
	}
}

// mergeFreqLists merges sorted, collapsed frequency lists pairwise until one
// remains — O(total · log k) comparisons for k lists.
func mergeFreqLists(lists [][]valueFreq) []valueFreq {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	for len(lists) > 1 {
		merged := make([][]valueFreq, 0, (len(lists)+1)/2)
		for i := 0; i < len(lists); i += 2 {
			if i+1 < len(lists) {
				merged = append(merged, mergeFreqs(lists[i], lists[i+1]))
			} else {
				merged = append(merged, lists[i])
			}
		}
		lists = merged
	}
	return lists[0]
}

// mergeFreqs merges two sorted frequency lists, summing frequencies of equal
// values.
func mergeFreqs(a, b []valueFreq) []valueFreq {
	out := make([]valueFreq, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := a[i].v.Compare(b[j].v); {
		case c < 0:
			out = append(out, a[i])
			i++
		case c > 0:
			out = append(out, b[j])
			j++
		default:
			// Compare-equal across partitions: sum frequencies and keep the
			// tie-break-minimal representative, matching what a single sorted
			// pass over the concatenation would keep.
			rep := a[i].v
			if tieBreak(b[j].v, rep) < 0 {
				rep = b[j].v
			}
			out = append(out, valueFreq{v: rep, f: a[i].f + b[j].f})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// SplitTuples splits tuples into at most k contiguous partitions of
// near-equal size (k <= 1, or fewer tuples than partitions, degenerates
// gracefully). The partitions are subslices: no tuple is copied.
func SplitTuples(tuples [][]catalog.Datum, k int) [][][]catalog.Datum {
	if k < 1 {
		k = 1
	}
	if k > len(tuples) {
		k = len(tuples)
	}
	if k <= 1 {
		return [][][]catalog.Datum{tuples}
	}
	out := make([][][]catalog.Datum, 0, k)
	chunk := (len(tuples) + k - 1) / k
	for start := 0; start < len(tuples); start += chunk {
		end := start + chunk
		if end > len(tuples) {
			end = len(tuples)
		}
		out = append(out, tuples[start:end])
	}
	return out
}

// BuildMultiParallel builds a multi-column statistic from contiguous tuple
// partitions, summarizing each partition concurrently and merging the
// partials. The result is identical to BuildMulti over the concatenated
// partitions; one partition runs inline with no goroutine overhead.
func BuildMultiParallel(kind Kind, columns []string, partitions [][][]catalog.Datum, maxBuckets int) (*MultiColumn, error) {
	if len(partitions) <= 1 {
		var tuples [][]catalog.Datum
		if len(partitions) == 1 {
			tuples = partitions[0]
		}
		return BuildMulti(kind, columns, tuples, maxBuckets)
	}
	parts := make([]*Partial, len(partitions))
	errs := make([]error, len(partitions))
	var wg sync.WaitGroup
	for i, tuples := range partitions {
		wg.Add(1)
		go func(i int, tuples [][]catalog.Datum) {
			defer wg.Done()
			parts[i], errs[i] = BuildPartial(columns, tuples)
		}(i, tuples)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return MergePartials(kind, columns, parts, maxBuckets)
}
