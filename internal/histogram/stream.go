package histogram

import (
	"fmt"

	"autostats/internal/catalog"
)

// Streaming (block-at-a-time) partial construction. A PartialBuilder
// accumulates one partition's worth of tuples block by block and finalizes
// into exactly the Partial that BuildPartial would produce over the
// concatenated blocks — so a streaming build that feeds its partials to
// MergePartials stays bitwise-identical to a single-pass BuildMulti, which
// is what the streaming differential oracle asserts. Memory held by a
// builder is O(rows added since the last Finish), i.e. one partition, plus
// the distinct-prefix sets; the caller bounds the partition size.

// datumBytes is the rough in-memory footprint of one catalog.Datum: the
// struct itself (type tag, int64, float64, string header, null flag) plus
// the string payload. It feeds the build-memory budget accounting — an
// estimate that only has to be consistent, not exact, since spill decisions
// and the peak-memory gauge both use the same scale.
func datumBytes(d catalog.Datum) int64 {
	return 48 + int64(len(d.S))
}

// PartialBuilder accumulates one partition of a streaming statistics build.
// Not safe for concurrent use. The zero value is not usable; construct with
// NewPartialBuilder.
type PartialBuilder struct {
	cols int
	rows int64
	// leading buffers the partition's leading-column values for the Finish
	// sort — the O(partition) memory the streaming design bounds.
	leading []catalog.Datum
	// prefixes[k-2] collects the distinct k-column prefix encodings, exactly
	// as BuildPartial does.
	prefixes []map[string]struct{}
	// bytes is the running memory estimate of everything the builder
	// retains (leading values + prefix keys).
	bytes int64
}

// NewPartialBuilder starts an empty partition summary over len(columns)
// tuple positions.
func NewPartialBuilder(columns []string) (*PartialBuilder, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("histogram: partial statistic needs at least one column")
	}
	b := &PartialBuilder{cols: len(columns)}
	if len(columns) > 1 {
		b.prefixes = make([]map[string]struct{}, len(columns)-1)
		for i := range b.prefixes {
			b.prefixes[i] = make(map[string]struct{})
		}
	}
	return b, nil
}

// AddBlock folds one block of tuples into the partition. The tuples (and
// the block slice) may be reused by the caller after the call returns: the
// builder copies everything it retains.
func (b *PartialBuilder) AddBlock(tuples [][]catalog.Datum) error {
	for _, t := range tuples {
		if len(t) != b.cols {
			return fmt.Errorf("histogram: tuple arity %d does not match %d columns", len(t), b.cols)
		}
	}
	for _, t := range tuples {
		// catalog.Datum is a value type; appending copies it. The string
		// payload is shared with the table row, which is immutable once
		// published, so no deep copy is needed.
		b.leading = append(b.leading, t[0])
		b.bytes += datumBytes(t[0])
		for k := 2; k <= b.cols; k++ {
			key := encodePrefix(t[:k])
			if _, ok := b.prefixes[k-2][key]; !ok {
				b.prefixes[k-2][key] = struct{}{}
				b.bytes += int64(len(key)) + 48
			}
		}
	}
	b.rows += int64(len(tuples))
	return nil
}

// Rows returns the tuples accumulated since construction (or the last
// Finish).
func (b *PartialBuilder) Rows() int64 { return b.rows }

// MemBytes returns the builder's estimated retained memory, on the same
// scale as Partial.MemBytes.
func (b *PartialBuilder) MemBytes() int64 { return b.bytes }

// Finish collapses the accumulated partition into a Partial — identical to
// BuildPartial over the same tuples — and resets the builder for the next
// partition. Finishing an empty builder yields a valid zero-row Partial.
func (b *PartialBuilder) Finish() *Partial {
	p := &Partial{cols: b.cols, rows: b.rows}
	p.freqs, p.nulls = collectFreqs(b.leading)
	if b.cols > 1 {
		p.prefixes = b.prefixes
	}
	b.leading = nil
	b.rows = 0
	b.bytes = 0
	if b.cols > 1 {
		b.prefixes = make([]map[string]struct{}, b.cols-1)
		for i := range b.prefixes {
			b.prefixes[i] = make(map[string]struct{})
		}
	}
	return p
}

// MemBytes estimates the partial's retained memory: the collapsed frequency
// list plus the distinct-prefix sets. It is the unit the statistics
// manager's build-memory budget counts — completed partials whose combined
// estimate exceeds the budget spill to disk.
func (p *Partial) MemBytes() int64 {
	// valueFreq is a Datum plus an int64 frequency.
	var n int64
	for _, vf := range p.freqs {
		n += datumBytes(vf.v) + 8
	}
	for _, set := range p.prefixes {
		for key := range set {
			n += int64(len(key)) + 48
		}
	}
	return n
}
