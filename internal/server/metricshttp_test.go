package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"autostats/internal/obs"
)

func metricsRegistry() *obs.Registry {
	reg := obs.New()
	reg.Counter("server.requests.admitted").Add(42)
	reg.Gauge("server.queue.depth").Set(3)
	reg.Timing("server.op.exec.latency").Observe(5 * time.Millisecond)
	return reg
}

func TestMetricsHandlerText(t *testing.T) {
	h := MetricsHandler(metricsRegistry())
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rr.Body.String()
	if !strings.Contains(body, "server.requests.admitted 42") {
		t.Fatalf("text dump missing counter:\n%s", body)
	}
	if !strings.Contains(body, "server.queue.depth 3") {
		t.Fatalf("text dump missing gauge:\n%s", body)
	}
}

func TestMetricsHandlerJSON(t *testing.T) {
	h := MetricsHandler(metricsRegistry())
	for _, req := range []*http.Request{
		httptest.NewRequest(http.MethodGet, "/?format=json", nil),
		func() *http.Request {
			r := httptest.NewRequest(http.MethodGet, "/", nil)
			r.Header.Set("Accept", "application/json")
			return r
		}(),
	} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			t.Fatalf("status %d", rr.Code)
		}
		if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type %q", ct)
		}
		var snap obs.Snapshot
		if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
		}
		if snap.Counters["server.requests.admitted"] != 42 {
			t.Fatalf("counter lost in snapshot: %+v", snap.Counters)
		}
		if snap.Timings["server.op.exec.latency"].Count != 1 {
			t.Fatalf("timing lost in snapshot: %+v", snap.Timings)
		}
	}
}

func TestMetricsHandlerMethodNotAllowed(t *testing.T) {
	h := MetricsHandler(metricsRegistry())
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/", strings.NewReader("x")))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", rr.Code)
	}
}

func TestServeMetricsEndToEnd(t *testing.T) {
	addr, stop, err := ServeMetrics("127.0.0.1:0", metricsRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
