package server_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autostats"
	"autostats/internal/protocol"
	"autostats/internal/server"
)

// tpcdFactory builds a tiny real tenant system per tenant name.
func tpcdFactory(string) (*autostats.System, error) {
	return autostats.GenerateTPCD(autostats.TPCDOptions{Scale: 0.02, Skew: 1})
}

func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.NewTenant == nil {
		cfg.NewTenant = tpcdFactory
	}
	cfg.Logf = t.Logf
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// testConn speaks raw protocol frames so the server tests do not depend on
// the client package.
type testConn struct {
	t  *testing.T
	nc net.Conn
	br *bufio.Reader
}

func dialServer(t *testing.T, s *server.Server) *testConn {
	t.Helper()
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &testConn{t: t, nc: nc, br: bufio.NewReader(nc)}
}

func (c *testConn) write(req *protocol.Request) {
	c.t.Helper()
	if err := protocol.WriteFrame(c.nc, req, 0); err != nil {
		c.t.Fatalf("write %+v: %v", req, err)
	}
}

func (c *testConn) read() *protocol.Response {
	c.t.Helper()
	c.nc.SetReadDeadline(time.Now().Add(30 * time.Second))
	resp, err := protocol.ReadResponse(c.br, 0)
	if err != nil {
		c.t.Fatalf("read response: %v", err)
	}
	return resp
}

// rt is a non-pipelined round trip.
func (c *testConn) rt(req *protocol.Request) *protocol.Response {
	c.t.Helper()
	c.write(req)
	resp := c.read()
	if resp.ID != req.ID {
		c.t.Fatalf("response ID %d for request %d", resp.ID, req.ID)
	}
	return resp
}

func (c *testConn) hello(tenant string) *protocol.HelloResult {
	c.t.Helper()
	resp := c.rt(&protocol.Request{ID: 1, Op: protocol.OpHello, Version: protocol.Version, Tenant: tenant})
	if resp.Code != protocol.CodeOK || resp.Hello == nil {
		c.t.Fatalf("hello failed: %+v", resp)
	}
	return resp.Hello
}

func TestServerRoundTrips(t *testing.T) {
	s := startServer(t, server.Config{})
	c := dialServer(t, s)

	h := c.hello("alpha")
	if h.Version != protocol.Version || h.Tenant != "alpha" {
		t.Fatalf("hello result %+v", h)
	}

	// exec SELECT against the connection-default tenant.
	resp := c.rt(&protocol.Request{ID: 2, Op: protocol.OpExec, SQL: "SELECT * FROM orders WHERE o_orderkey > 10"})
	if resp.Code != protocol.CodeOK || resp.Exec == nil {
		t.Fatalf("exec: %+v", resp)
	}
	if len(resp.Exec.Rows) == 0 || resp.Exec.Plan == "" {
		t.Fatalf("exec returned no rows or no plan: %+v", resp.Exec)
	}

	// exec DML.
	resp = c.rt(&protocol.Request{ID: 3, Op: protocol.OpExec, SQL: "DELETE FROM lineitem WHERE l_quantity > 49"})
	if resp.Code != protocol.CodeOK || resp.Exec == nil {
		t.Fatalf("exec dml: %+v", resp)
	}

	// explain, against an explicit second tenant (lazy creation).
	resp = c.rt(&protocol.Request{ID: 4, Op: protocol.OpExplain, Tenant: "beta", SQL: "SELECT * FROM orders WHERE o_orderkey > 10"})
	if resp.Code != protocol.CodeOK || resp.Plan == "" {
		t.Fatalf("explain: %+v", resp)
	}

	// tune one query, then stats must show created statistics.
	resp = c.rt(&protocol.Request{ID: 5, Op: protocol.OpTune,
		SQL: "SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 45"})
	if resp.Code != protocol.CodeOK || resp.Tune == nil {
		t.Fatalf("tune: %+v", resp)
	}
	resp = c.rt(&protocol.Request{ID: 6, Op: protocol.OpStats})
	if resp.Code != protocol.CodeOK {
		t.Fatalf("stats: %+v", resp)
	}
	if len(resp.Stats) == 0 {
		t.Fatalf("no statistics after tune")
	}

	// maintenance.
	resp = c.rt(&protocol.Request{ID: 7, Op: protocol.OpMaintain})
	if resp.Code != protocol.CodeOK || resp.Maintain == nil {
		t.Fatalf("maintain: %+v", resp)
	}

	// metrics text includes the server's own counters.
	resp = c.rt(&protocol.Request{ID: 8, Op: protocol.OpMetrics})
	if resp.Code != protocol.CodeOK || !strings.Contains(resp.Metrics, "server.requests.admitted") {
		t.Fatalf("metrics: %+v", resp)
	}

	// error paths.
	if resp = c.rt(&protocol.Request{ID: 9, Op: protocol.OpExec, SQL: "SELECT garbage FROM nowhere"}); resp.Code != protocol.CodeSQL {
		t.Fatalf("bad sql code %q", resp.Code)
	}
	if resp = c.rt(&protocol.Request{ID: 10, Op: protocol.OpExec, SQL: "   "}); resp.Code != protocol.CodeBadRequest {
		t.Fatalf("empty sql code %q", resp.Code)
	}
	if resp = c.rt(&protocol.Request{ID: 11, Op: "nonsense"}); resp.Code != protocol.CodeUnknownOp {
		t.Fatalf("unknown op code %q", resp.Code)
	}
	if resp = c.rt(&protocol.Request{ID: 12, Op: protocol.OpExec, Tenant: "bad tenant", SQL: "SELECT 1"}); resp.Code != protocol.CodeBadRequest {
		t.Fatalf("bad tenant name code %q", resp.Code)
	}

	if n := s.TenantCount(); n != 2 {
		t.Fatalf("TenantCount = %d, want 2", n)
	}
	if st := s.PlanCacheStats(); st.Capacity == 0 {
		t.Fatalf("aggregated plan-cache stats empty: %+v", st)
	}
}

func TestServerMissingTenant(t *testing.T) {
	s := startServer(t, server.Config{})
	c := dialServer(t, s)
	// No hello tenant, no request tenant.
	resp := c.rt(&protocol.Request{ID: 1, Op: protocol.OpExec, SQL: "SELECT 1"})
	if resp.Code != protocol.CodeBadRequest {
		t.Fatalf("code %q, want bad_request", resp.Code)
	}
}

func TestServerVersionMismatch(t *testing.T) {
	s := startServer(t, server.Config{})
	c := dialServer(t, s)
	resp := c.rt(&protocol.Request{ID: 1, Op: protocol.OpHello, Version: 99})
	if resp.Code != protocol.CodeVersion {
		t.Fatalf("code %q, want version", resp.Code)
	}
}

func TestServerTenantLimit(t *testing.T) {
	s := startServer(t, server.Config{MaxTenants: 1})
	c := dialServer(t, s)
	c.hello("one")
	if resp := c.rt(&protocol.Request{ID: 2, Op: protocol.OpStats}); resp.Code != protocol.CodeOK {
		t.Fatalf("first tenant: %+v", resp)
	}
	resp := c.rt(&protocol.Request{ID: 3, Op: protocol.OpStats, Tenant: "two"})
	if resp.Code != protocol.CodeTenantLimit {
		t.Fatalf("code %q, want tenant_limit", resp.Code)
	}
}

func TestServerPipelinedOutOfOrder(t *testing.T) {
	s := startServer(t, server.Config{Workers: 4})
	c := dialServer(t, s)
	c.hello("p")

	const n = 12
	for i := 0; i < n; i++ {
		c.write(&protocol.Request{ID: uint64(100 + i), Op: protocol.OpExec,
			SQL: fmt.Sprintf("SELECT * FROM orders WHERE o_orderkey > %d", i)})
	}
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		resp := c.read()
		if resp.Code != protocol.CodeOK {
			t.Fatalf("request %d failed: %+v", resp.ID, resp)
		}
		if seen[resp.ID] {
			t.Fatalf("duplicate response for %d", resp.ID)
		}
		seen[resp.ID] = true
	}
	for i := 0; i < n; i++ {
		if !seen[uint64(100+i)] {
			t.Fatalf("no response for request %d", 100+i)
		}
	}
}

// blockingFactory parks every tenant creation until release is closed —
// a deterministic way to wedge the worker pool for overload and drain tests.
func blockingFactory() (factory func(string) (*autostats.System, error), started chan string, release chan struct{}) {
	started = make(chan string, 16)
	release = make(chan struct{})
	factory = func(name string) (*autostats.System, error) {
		started <- name
		<-release
		return nil, errors.New("synthetic tenant failure")
	}
	return factory, started, release
}

func TestServerOverloadFastFail(t *testing.T) {
	factory, started, release := blockingFactory()
	s := startServer(t, server.Config{Workers: 1, QueueDepth: 1, NewTenant: factory})
	c := dialServer(t, s)
	c.hello("wedge")

	// First request: admitted, picked up by the lone worker, wedged in the
	// factory. Wait for the wedge before sending more so admission order is
	// deterministic.
	c.write(&protocol.Request{ID: 1, Op: protocol.OpStats})
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never reached the tenant factory")
	}
	// Second request fills the queue; third must fast-fail.
	c.write(&protocol.Request{ID: 2, Op: protocol.OpStats})
	// The queued slot is consumed asynchronously; give admission a moment,
	// then hammer until an overload appears (bounded).
	var overloaded *protocol.Response
	for i := 0; i < 50 && overloaded == nil; i++ {
		c.write(&protocol.Request{ID: uint64(10 + i), Op: protocol.OpStats})
		resp := c.read()
		if resp.Code == protocol.CodeOverloaded {
			overloaded = resp
		} else if resp.Code != protocol.CodeOK && resp.Code != protocol.CodeInternal {
			t.Fatalf("unexpected code %q: %+v", resp.Code, resp)
		}
	}
	if overloaded == nil {
		t.Fatal("no overloaded fast-fail with Workers=1 QueueDepth=1 and a wedged worker")
	}
	if err := overloaded.Err(); !errors.Is(err, protocol.ErrOverloaded) {
		t.Fatalf("overloaded response maps to %v, want ErrOverloaded", err)
	}
	close(release)
	// The wedged requests complete (with CodeInternal — the factory fails).
	for i := 0; i < 2; i++ {
		if resp := c.read(); resp.Code != protocol.CodeInternal {
			t.Fatalf("wedged request resolved with %q, want internal", resp.Code)
		}
	}
}

func TestServerDrainCompletesInflight(t *testing.T) {
	factory, started, release := blockingFactory()
	s := startServer(t, server.Config{Workers: 2, QueueDepth: 8, NewTenant: factory})
	c := dialServer(t, s)
	c.hello("drainee")

	// Admit two requests and wedge both workers.
	c.write(&protocol.Request{ID: 1, Op: protocol.OpStats})
	c.write(&protocol.Request{ID: 2, Op: protocol.OpStats, Tenant: "drainee2"})
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("workers never wedged")
		}
	}

	// Shutdown concurrently: it must wait for the wedged requests.
	var wg sync.WaitGroup
	repCh := make(chan server.DrainReport, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		repCh <- s.Shutdown(ctx)
	}()

	// Wait for Shutdown to actually start draining (no arbitrary sleep).
	for deadline := time.Now().Add(10 * time.Second); !s.Draining(); {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	// Both admitted requests must get responses before the connection closes.
	got := map[uint64]string{}
	for i := 0; i < 2; i++ {
		resp := c.read()
		got[resp.ID] = resp.Code
	}
	for _, id := range []uint64{1, 2} {
		if got[id] != protocol.CodeInternal {
			t.Fatalf("request %d resolved %q, want internal (factory error)", id, got[id])
		}
	}

	wg.Wait()
	rep := <-repCh
	if rep.Dropped != 0 {
		t.Fatalf("drain dropped %d admitted requests: %+v", rep.Dropped, rep)
	}
	if rep.Admitted != 2 || rep.Completed != 2 {
		t.Fatalf("drain accounting: %+v", rep)
	}
	if rep.Forced {
		t.Fatalf("drain was forced: %+v", rep)
	}

	// The connection is closed once drained.
	c.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := protocol.ReadResponse(c.br, 0); err == nil {
		t.Fatal("connection still open after drain")
	}
}

func TestServerDrainRejectsNewConnections(t *testing.T) {
	s := startServer(t, server.Config{})
	c := dialServer(t, s)
	c.hello("x")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep := s.Shutdown(ctx)
	if rep.Dropped != 0 {
		t.Fatalf("dropped %d", rep.Dropped)
	}
	if _, err := net.DialTimeout("tcp", s.Addr().String(), time.Second); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := server.New(server.Config{}); err == nil {
		t.Fatal("New accepted a config without NewTenant")
	}
}

// waitCounter polls an obs counter until it reaches want or the deadline
// passes; eviction and panic accounting is asynchronous to the triggering
// write, so tests must not read the counter immediately.
func waitCounter(t *testing.T, s *server.Server, name string, want int64) int64 {
	t.Helper()
	var v int64
	for deadline := time.Now().Add(10 * time.Second); ; {
		v = s.Obs().Counter(name).Value()
		if v >= want || time.Now().After(deadline) {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerIdleEviction: a connection that goes silent (the half-open case
// — a peer that vanished without a FIN looks identical to the server's read
// loop) is evicted within the read timeout, with the eviction counted.
func TestServerIdleEviction(t *testing.T) {
	s := startServer(t, server.Config{ReadTimeout: 200 * time.Millisecond})
	c := dialServer(t, s)
	c.hello("idle")
	// Go silent. The server must close the connection on its own.
	c.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := protocol.ReadResponse(c.br, 0); err == nil {
		t.Fatal("idle connection still alive past the read timeout")
	}
	if v := waitCounter(t, s, "server.conn.idle_evicted", 1); v < 1 {
		t.Fatalf("server.conn.idle_evicted = %d, want >= 1", v)
	}
}

// TestServerHalfOpenMidRequestVanish: the client sends a request and then
// vanishes abruptly (RST, no FIN) before the response. The worker must not
// wedge — the server keeps serving new connections and drains cleanly.
func TestServerHalfOpenMidRequestVanish(t *testing.T) {
	s := startServer(t, server.Config{ReadTimeout: 500 * time.Millisecond})
	c := dialServer(t, s)
	c.hello("ghost")
	c.write(&protocol.Request{ID: 2, Op: protocol.OpExec, SQL: "SELECT * FROM orders WHERE o_orderkey > 10"})
	// Vanish without a FIN: linger 0 turns Close into a reset.
	if tc, ok := c.nc.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.nc.Close()

	// The worker that picked up the doomed request must be reclaimed: a
	// fresh connection round-trips fine and shutdown balances its books.
	c2 := dialServer(t, s)
	c2.hello("alive")
	if resp := c2.rt(&protocol.Request{ID: 2, Op: protocol.OpStats}); resp.Code != protocol.CodeOK {
		t.Fatalf("server unhealthy after half-open client: %+v", resp)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	rep := s.Shutdown(ctx)
	if rep.Dropped != 0 || rep.Forced {
		t.Fatalf("drain after half-open client: %+v", rep)
	}
}

// TestServerSlowClientEvicted: a client that sends requests but never reads
// responses is evicted (bounded write queue + write deadline) instead of
// wedging workers behind a full TCP window.
func TestServerSlowClientEvicted(t *testing.T) {
	s := startServer(t, server.Config{
		Workers:      4,
		WriteTimeout: 300 * time.Millisecond,
		WriteQueue:   2,
	})
	c := dialServer(t, s)
	c.hello("loris")
	// Pipeline many full-table scans and never read a byte back. The
	// responses overflow the socket buffers, the write deadline fires, and
	// the connection is killed.
	for i := 0; i < 256; i++ {
		c.write(&protocol.Request{ID: uint64(2 + i), Op: protocol.OpExec,
			SQL: "SELECT * FROM lineitem WHERE l_quantity > 0"})
	}
	if v := waitCounter(t, s, "server.conn.slow_evicted", 1); v < 1 {
		t.Fatalf("server.conn.slow_evicted = %d, want >= 1", v)
	}
	// The pool is free again: a well-behaved connection still round-trips.
	c2 := dialServer(t, s)
	c2.hello("polite")
	if resp := c2.rt(&protocol.Request{ID: 2, Op: protocol.OpStats}); resp.Code != protocol.CodeOK {
		t.Fatalf("server unhealthy after slow-client eviction: %+v", resp)
	}
}

// TestServerInflightCap: one connection cannot occupy more than
// MaxInflightPerConn worker/queue slots; the excess fast-fails with
// CodeOverloaded while other connections proceed.
func TestServerInflightCap(t *testing.T) {
	factory, started, release := blockingFactory()
	s := startServer(t, server.Config{
		Workers: 1, QueueDepth: 8, MaxInflightPerConn: 2, NewTenant: factory})
	c := dialServer(t, s)
	c.hello("hog")

	// First request wedges the worker; second sits in the queue. Both count
	// against this connection's in-flight cap.
	c.write(&protocol.Request{ID: 2, Op: protocol.OpStats})
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never wedged")
	}
	c.write(&protocol.Request{ID: 3, Op: protocol.OpStats})
	// Third request breaches the cap and must fast-fail even though the
	// shared queue still has room.
	resp := c.rt(&protocol.Request{ID: 4, Op: protocol.OpStats})
	if resp.Code != protocol.CodeOverloaded {
		t.Fatalf("over-cap request got %q, want overloaded", resp.Code)
	}
	if !strings.Contains(resp.Error, "in flight") {
		t.Fatalf("over-cap message %q does not mention the in-flight cap", resp.Error)
	}
	if v := s.Obs().Counter("server.conn.inflight_rejects").Value(); v != 1 {
		t.Fatalf("server.conn.inflight_rejects = %d, want 1", v)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if resp := c.read(); resp.Code != protocol.CodeInternal {
			t.Fatalf("wedged request resolved %q, want internal", resp.Code)
		}
	}
}

// TestServerTenantRateLimit: a tenant over its req/s quota is rejected with
// the stable rate_limited code, mapped to ErrRateLimited client-side.
func TestServerTenantRateLimit(t *testing.T) {
	s := startServer(t, server.Config{TenantRPS: 1, TenantBurst: 1})
	c := dialServer(t, s)
	c.hello("greedy")
	if resp := c.rt(&protocol.Request{ID: 2, Op: protocol.OpStats}); resp.Code != protocol.CodeOK {
		t.Fatalf("first request within quota failed: %+v", resp)
	}
	resp := c.rt(&protocol.Request{ID: 3, Op: protocol.OpStats})
	if resp.Code != protocol.CodeRateLimited {
		t.Fatalf("second request got %q, want rate_limited", resp.Code)
	}
	if err := resp.Err(); !errors.Is(err, protocol.ErrRateLimited) {
		t.Fatalf("rate-limited response maps to %v, want ErrRateLimited", err)
	}
	if v := s.Obs().Counter("server.tenant.rate_limited").Value(); v < 1 {
		t.Fatalf("server.tenant.rate_limited = %d, want >= 1", v)
	}
	// Hellos and metrics are not rate limited — the quota protects workers,
	// not the control plane.
	if resp := c.rt(&protocol.Request{ID: 4, Op: protocol.OpMetrics}); resp.Code != protocol.CodeOK {
		t.Fatalf("metrics should bypass the tenant quota: %+v", resp)
	}
}

// TestServerRequestTimeout: an operation that exceeds the server-side
// request deadline resolves with the typed timeout code instead of holding
// a worker indefinitely.
func TestServerRequestTimeout(t *testing.T) {
	slowFactory := func(name string) (*autostats.System, error) {
		time.Sleep(300 * time.Millisecond)
		return tpcdFactory(name)
	}
	s := startServer(t, server.Config{
		RequestTimeout: 50 * time.Millisecond, NewTenant: slowFactory})
	c := dialServer(t, s)
	c.hello("slow")
	resp := c.rt(&protocol.Request{ID: 2, Op: protocol.OpStats})
	if resp.Code != protocol.CodeTimeout {
		t.Fatalf("slow request got %q, want timeout", resp.Code)
	}
	if err := resp.Err(); !errors.Is(err, protocol.ErrTimeout) {
		t.Fatalf("timeout response maps to %v, want ErrTimeout", err)
	}
	if v := s.Obs().Counter("server.requests.timeouts").Value(); v < 1 {
		t.Fatalf("server.requests.timeouts = %d, want >= 1", v)
	}
}

// TestServerWorkerPanicRecovery: a panic inside request execution (here: a
// factory handing back a nil system) resolves as CodeInternal and is
// counted; the worker survives to serve the next request.
func TestServerWorkerPanicRecovery(t *testing.T) {
	s := startServer(t, server.Config{
		NewTenant: func(string) (*autostats.System, error) { return nil, nil }})
	c := dialServer(t, s)
	c.hello("nilsys")
	resp := c.rt(&protocol.Request{ID: 2, Op: protocol.OpStats})
	if resp.Code != protocol.CodeInternal || !strings.Contains(resp.Error, "panic") {
		t.Fatalf("panicking request got %+v, want internal panic error", resp)
	}
	if v := s.Obs().Counter("server.worker.panics").Value(); v != 1 {
		t.Fatalf("server.worker.panics = %d, want 1", v)
	}
	// The worker recovered: the connection still answers.
	if resp := c.rt(&protocol.Request{ID: 3, Op: protocol.OpMetrics}); resp.Code != protocol.CodeOK {
		t.Fatalf("worker did not survive the panic: %+v", resp)
	}
}

// TestServerTenantFactoryPanic: a panicking tenant factory surfaces as an
// error (not a poisoned sync.Once), and the next request retries cleanly.
func TestServerTenantFactoryPanic(t *testing.T) {
	var calls int32
	s := startServer(t, server.Config{
		NewTenant: func(name string) (*autostats.System, error) {
			if atomic.AddInt32(&calls, 1) == 1 {
				panic("synthetic factory explosion")
			}
			return tpcdFactory(name)
		}})
	c := dialServer(t, s)
	c.hello("boom")
	resp := c.rt(&protocol.Request{ID: 2, Op: protocol.OpStats})
	if resp.Code != protocol.CodeInternal || !strings.Contains(resp.Error, "panicked") {
		t.Fatalf("factory panic surfaced as %+v, want internal ...panicked...", resp)
	}
	if v := s.Obs().Counter("server.tenant.factory_panics").Value(); v != 1 {
		t.Fatalf("server.tenant.factory_panics = %d, want 1", v)
	}
	// The failed entry was dropped; the retry builds the tenant for real.
	if resp := c.rt(&protocol.Request{ID: 3, Op: protocol.OpStats}); resp.Code != protocol.CodeOK {
		t.Fatalf("tenant never recovered from the factory panic: %+v", resp)
	}
}

// TestServerHealthEndpoints: /healthz is always 200; /readyz tracks
// Started-and-not-draining.
func TestServerHealthEndpoints(t *testing.T) {
	cfg := server.Config{Addr: "127.0.0.1:0", NewTenant: tpcdFactory}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := server.OpsHandler(s.Obs(), s.Ready)
	status := func(path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code
	}
	if got := status("/healthz"); got != 200 {
		t.Fatalf("/healthz before start = %d, want 200", got)
	}
	if got := status("/readyz"); got != 503 {
		t.Fatalf("/readyz before start = %d, want 503", got)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if got := status("/readyz"); got != 200 {
		t.Fatalf("/readyz after start = %d, want 200", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Shutdown(ctx)
	if got := status("/readyz"); got != 503 {
		t.Fatalf("/readyz after shutdown = %d, want 503", got)
	}
	if got := status("/healthz"); got != 200 {
		t.Fatalf("/healthz after shutdown = %d, want 200 (liveness, not readiness)", got)
	}
	if got := status("/"); got != 200 {
		t.Fatalf("/ (metrics) = %d, want 200", got)
	}
}
