package server_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"autostats"
	"autostats/internal/protocol"
	"autostats/internal/server"
)

// tpcdFactory builds a tiny real tenant system per tenant name.
func tpcdFactory(string) (*autostats.System, error) {
	return autostats.GenerateTPCD(autostats.TPCDOptions{Scale: 0.02, Skew: 1})
}

func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.NewTenant == nil {
		cfg.NewTenant = tpcdFactory
	}
	cfg.Logf = t.Logf
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// testConn speaks raw protocol frames so the server tests do not depend on
// the client package.
type testConn struct {
	t  *testing.T
	nc net.Conn
	br *bufio.Reader
}

func dialServer(t *testing.T, s *server.Server) *testConn {
	t.Helper()
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &testConn{t: t, nc: nc, br: bufio.NewReader(nc)}
}

func (c *testConn) write(req *protocol.Request) {
	c.t.Helper()
	if err := protocol.WriteFrame(c.nc, req, 0); err != nil {
		c.t.Fatalf("write %+v: %v", req, err)
	}
}

func (c *testConn) read() *protocol.Response {
	c.t.Helper()
	c.nc.SetReadDeadline(time.Now().Add(30 * time.Second))
	resp, err := protocol.ReadResponse(c.br, 0)
	if err != nil {
		c.t.Fatalf("read response: %v", err)
	}
	return resp
}

// rt is a non-pipelined round trip.
func (c *testConn) rt(req *protocol.Request) *protocol.Response {
	c.t.Helper()
	c.write(req)
	resp := c.read()
	if resp.ID != req.ID {
		c.t.Fatalf("response ID %d for request %d", resp.ID, req.ID)
	}
	return resp
}

func (c *testConn) hello(tenant string) *protocol.HelloResult {
	c.t.Helper()
	resp := c.rt(&protocol.Request{ID: 1, Op: protocol.OpHello, Version: protocol.Version, Tenant: tenant})
	if resp.Code != protocol.CodeOK || resp.Hello == nil {
		c.t.Fatalf("hello failed: %+v", resp)
	}
	return resp.Hello
}

func TestServerRoundTrips(t *testing.T) {
	s := startServer(t, server.Config{})
	c := dialServer(t, s)

	h := c.hello("alpha")
	if h.Version != protocol.Version || h.Tenant != "alpha" {
		t.Fatalf("hello result %+v", h)
	}

	// exec SELECT against the connection-default tenant.
	resp := c.rt(&protocol.Request{ID: 2, Op: protocol.OpExec, SQL: "SELECT * FROM orders WHERE o_orderkey > 10"})
	if resp.Code != protocol.CodeOK || resp.Exec == nil {
		t.Fatalf("exec: %+v", resp)
	}
	if len(resp.Exec.Rows) == 0 || resp.Exec.Plan == "" {
		t.Fatalf("exec returned no rows or no plan: %+v", resp.Exec)
	}

	// exec DML.
	resp = c.rt(&protocol.Request{ID: 3, Op: protocol.OpExec, SQL: "DELETE FROM lineitem WHERE l_quantity > 49"})
	if resp.Code != protocol.CodeOK || resp.Exec == nil {
		t.Fatalf("exec dml: %+v", resp)
	}

	// explain, against an explicit second tenant (lazy creation).
	resp = c.rt(&protocol.Request{ID: 4, Op: protocol.OpExplain, Tenant: "beta", SQL: "SELECT * FROM orders WHERE o_orderkey > 10"})
	if resp.Code != protocol.CodeOK || resp.Plan == "" {
		t.Fatalf("explain: %+v", resp)
	}

	// tune one query, then stats must show created statistics.
	resp = c.rt(&protocol.Request{ID: 5, Op: protocol.OpTune,
		SQL: "SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 45"})
	if resp.Code != protocol.CodeOK || resp.Tune == nil {
		t.Fatalf("tune: %+v", resp)
	}
	resp = c.rt(&protocol.Request{ID: 6, Op: protocol.OpStats})
	if resp.Code != protocol.CodeOK {
		t.Fatalf("stats: %+v", resp)
	}
	if len(resp.Stats) == 0 {
		t.Fatalf("no statistics after tune")
	}

	// maintenance.
	resp = c.rt(&protocol.Request{ID: 7, Op: protocol.OpMaintain})
	if resp.Code != protocol.CodeOK || resp.Maintain == nil {
		t.Fatalf("maintain: %+v", resp)
	}

	// metrics text includes the server's own counters.
	resp = c.rt(&protocol.Request{ID: 8, Op: protocol.OpMetrics})
	if resp.Code != protocol.CodeOK || !strings.Contains(resp.Metrics, "server.requests.admitted") {
		t.Fatalf("metrics: %+v", resp)
	}

	// error paths.
	if resp = c.rt(&protocol.Request{ID: 9, Op: protocol.OpExec, SQL: "SELECT garbage FROM nowhere"}); resp.Code != protocol.CodeSQL {
		t.Fatalf("bad sql code %q", resp.Code)
	}
	if resp = c.rt(&protocol.Request{ID: 10, Op: protocol.OpExec, SQL: "   "}); resp.Code != protocol.CodeBadRequest {
		t.Fatalf("empty sql code %q", resp.Code)
	}
	if resp = c.rt(&protocol.Request{ID: 11, Op: "nonsense"}); resp.Code != protocol.CodeUnknownOp {
		t.Fatalf("unknown op code %q", resp.Code)
	}
	if resp = c.rt(&protocol.Request{ID: 12, Op: protocol.OpExec, Tenant: "bad tenant", SQL: "SELECT 1"}); resp.Code != protocol.CodeBadRequest {
		t.Fatalf("bad tenant name code %q", resp.Code)
	}

	if n := s.TenantCount(); n != 2 {
		t.Fatalf("TenantCount = %d, want 2", n)
	}
	if st := s.PlanCacheStats(); st.Capacity == 0 {
		t.Fatalf("aggregated plan-cache stats empty: %+v", st)
	}
}

func TestServerMissingTenant(t *testing.T) {
	s := startServer(t, server.Config{})
	c := dialServer(t, s)
	// No hello tenant, no request tenant.
	resp := c.rt(&protocol.Request{ID: 1, Op: protocol.OpExec, SQL: "SELECT 1"})
	if resp.Code != protocol.CodeBadRequest {
		t.Fatalf("code %q, want bad_request", resp.Code)
	}
}

func TestServerVersionMismatch(t *testing.T) {
	s := startServer(t, server.Config{})
	c := dialServer(t, s)
	resp := c.rt(&protocol.Request{ID: 1, Op: protocol.OpHello, Version: 99})
	if resp.Code != protocol.CodeVersion {
		t.Fatalf("code %q, want version", resp.Code)
	}
}

func TestServerTenantLimit(t *testing.T) {
	s := startServer(t, server.Config{MaxTenants: 1})
	c := dialServer(t, s)
	c.hello("one")
	if resp := c.rt(&protocol.Request{ID: 2, Op: protocol.OpStats}); resp.Code != protocol.CodeOK {
		t.Fatalf("first tenant: %+v", resp)
	}
	resp := c.rt(&protocol.Request{ID: 3, Op: protocol.OpStats, Tenant: "two"})
	if resp.Code != protocol.CodeTenantLimit {
		t.Fatalf("code %q, want tenant_limit", resp.Code)
	}
}

func TestServerPipelinedOutOfOrder(t *testing.T) {
	s := startServer(t, server.Config{Workers: 4})
	c := dialServer(t, s)
	c.hello("p")

	const n = 12
	for i := 0; i < n; i++ {
		c.write(&protocol.Request{ID: uint64(100 + i), Op: protocol.OpExec,
			SQL: fmt.Sprintf("SELECT * FROM orders WHERE o_orderkey > %d", i)})
	}
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		resp := c.read()
		if resp.Code != protocol.CodeOK {
			t.Fatalf("request %d failed: %+v", resp.ID, resp)
		}
		if seen[resp.ID] {
			t.Fatalf("duplicate response for %d", resp.ID)
		}
		seen[resp.ID] = true
	}
	for i := 0; i < n; i++ {
		if !seen[uint64(100+i)] {
			t.Fatalf("no response for request %d", 100+i)
		}
	}
}

// blockingFactory parks every tenant creation until release is closed —
// a deterministic way to wedge the worker pool for overload and drain tests.
func blockingFactory() (factory func(string) (*autostats.System, error), started chan string, release chan struct{}) {
	started = make(chan string, 16)
	release = make(chan struct{})
	factory = func(name string) (*autostats.System, error) {
		started <- name
		<-release
		return nil, errors.New("synthetic tenant failure")
	}
	return factory, started, release
}

func TestServerOverloadFastFail(t *testing.T) {
	factory, started, release := blockingFactory()
	s := startServer(t, server.Config{Workers: 1, QueueDepth: 1, NewTenant: factory})
	c := dialServer(t, s)
	c.hello("wedge")

	// First request: admitted, picked up by the lone worker, wedged in the
	// factory. Wait for the wedge before sending more so admission order is
	// deterministic.
	c.write(&protocol.Request{ID: 1, Op: protocol.OpStats})
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never reached the tenant factory")
	}
	// Second request fills the queue; third must fast-fail.
	c.write(&protocol.Request{ID: 2, Op: protocol.OpStats})
	// The queued slot is consumed asynchronously; give admission a moment,
	// then hammer until an overload appears (bounded).
	var overloaded *protocol.Response
	for i := 0; i < 50 && overloaded == nil; i++ {
		c.write(&protocol.Request{ID: uint64(10 + i), Op: protocol.OpStats})
		resp := c.read()
		if resp.Code == protocol.CodeOverloaded {
			overloaded = resp
		} else if resp.Code != protocol.CodeOK && resp.Code != protocol.CodeInternal {
			t.Fatalf("unexpected code %q: %+v", resp.Code, resp)
		}
	}
	if overloaded == nil {
		t.Fatal("no overloaded fast-fail with Workers=1 QueueDepth=1 and a wedged worker")
	}
	if err := overloaded.Err(); !errors.Is(err, protocol.ErrOverloaded) {
		t.Fatalf("overloaded response maps to %v, want ErrOverloaded", err)
	}
	close(release)
	// The wedged requests complete (with CodeInternal — the factory fails).
	for i := 0; i < 2; i++ {
		if resp := c.read(); resp.Code != protocol.CodeInternal {
			t.Fatalf("wedged request resolved with %q, want internal", resp.Code)
		}
	}
}

func TestServerDrainCompletesInflight(t *testing.T) {
	factory, started, release := blockingFactory()
	s := startServer(t, server.Config{Workers: 2, QueueDepth: 8, NewTenant: factory})
	c := dialServer(t, s)
	c.hello("drainee")

	// Admit two requests and wedge both workers.
	c.write(&protocol.Request{ID: 1, Op: protocol.OpStats})
	c.write(&protocol.Request{ID: 2, Op: protocol.OpStats, Tenant: "drainee2"})
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("workers never wedged")
		}
	}

	// Shutdown concurrently: it must wait for the wedged requests.
	var wg sync.WaitGroup
	repCh := make(chan server.DrainReport, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		repCh <- s.Shutdown(ctx)
	}()

	time.Sleep(50 * time.Millisecond) // let Shutdown reach inflight.Wait
	close(release)

	// Both admitted requests must get responses before the connection closes.
	got := map[uint64]string{}
	for i := 0; i < 2; i++ {
		resp := c.read()
		got[resp.ID] = resp.Code
	}
	for _, id := range []uint64{1, 2} {
		if got[id] != protocol.CodeInternal {
			t.Fatalf("request %d resolved %q, want internal (factory error)", id, got[id])
		}
	}

	wg.Wait()
	rep := <-repCh
	if rep.Dropped != 0 {
		t.Fatalf("drain dropped %d admitted requests: %+v", rep.Dropped, rep)
	}
	if rep.Admitted != 2 || rep.Completed != 2 {
		t.Fatalf("drain accounting: %+v", rep)
	}
	if rep.Forced {
		t.Fatalf("drain was forced: %+v", rep)
	}

	// The connection is closed once drained.
	c.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := protocol.ReadResponse(c.br, 0); err == nil {
		t.Fatal("connection still open after drain")
	}
}

func TestServerDrainRejectsNewConnections(t *testing.T) {
	s := startServer(t, server.Config{})
	c := dialServer(t, s)
	c.hello("x")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep := s.Shutdown(ctx)
	if rep.Dropped != 0 {
		t.Fatalf("dropped %d", rep.Dropped)
	}
	if _, err := net.DialTimeout("tcp", s.Addr().String(), time.Second); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := server.New(server.Config{}); err == nil {
		t.Fatal("New accepted a config without NewTenant")
	}
}
