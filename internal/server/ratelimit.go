package server

import (
	"sync"
	"time"
)

// tenantLimiter enforces a per-tenant token-bucket quota: each tenant's
// bucket refills at rps tokens per second up to burst, and every admitted
// request consumes one token. A tenant that exceeds its quota is rejected
// with CodeRateLimited BEFORE admission control, so one hot tenant cannot
// starve the shared worker queue — the multi-tenant fairness half of the
// overload story (the queue bound is the aggregate half).
//
// Buckets are created lazily (full) on a tenant's first request and pruned
// when the map grows past a bound, so hostile tenant-name churn cannot grow
// the table without limit.
type tenantLimiter struct {
	rps   float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// maxTrackedBuckets bounds the bucket map; reaching it prunes entries idle
// long enough to have refilled completely (their state is reconstructible).
const maxTrackedBuckets = 4096

// newTenantLimiter builds a limiter, or returns nil (no limiting) for rps <= 0.
// burst <= 0 defaults to one second of quota, floored at 1.
func newTenantLimiter(rps float64, burst int) *tenantLimiter {
	if rps <= 0 {
		return nil
	}
	b := float64(burst)
	if b <= 0 {
		b = rps
	}
	if b < 1 {
		b = 1
	}
	return &tenantLimiter{rps: rps, burst: b, buckets: make(map[string]*tokenBucket)}
}

// allow consumes one token from the tenant's bucket at time now, reporting
// whether the request is within quota.
func (l *tenantLimiter) allow(tenant string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	bk := l.buckets[tenant]
	if bk == nil {
		if len(l.buckets) >= maxTrackedBuckets {
			l.pruneLocked(now)
		}
		bk = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = bk
	}
	if elapsed := now.Sub(bk.last).Seconds(); elapsed > 0 {
		bk.tokens += elapsed * l.rps
		if bk.tokens > l.burst {
			bk.tokens = l.burst
		}
		bk.last = now
	}
	if bk.tokens < 1 {
		return false
	}
	bk.tokens--
	return true
}

// pruneLocked drops buckets idle long enough to be full again. A full bucket
// carries no information a fresh one would not.
func (l *tenantLimiter) pruneLocked(now time.Time) {
	refill := time.Duration(l.burst / l.rps * float64(time.Second))
	for name, bk := range l.buckets {
		if now.Sub(bk.last) > refill {
			delete(l.buckets, name)
		}
	}
}
