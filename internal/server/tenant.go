package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"autostats"
	"autostats/internal/obs"
)

// errTenantLimit reports a request for a new tenant when the table is full.
var errTenantLimit = errors.New("server: tenant limit reached")

// tenantEntry is one tenant's lazily built system. The entry is inserted
// under the table lock, but the (possibly slow — data generation) factory
// runs inside once.Do OUTSIDE the lock, so concurrent first requests for one
// tenant build exactly one system while other tenants proceed unimpeded.
type tenantEntry struct {
	name string
	once sync.Once
	// ready is closed after sys/err are set; readers outside the once (the
	// forEach aggregations) gate on it instead of racing the factory.
	ready   chan struct{}
	sys     *autostats.System
	err     error
	refs    atomic.Int64 // requests currently executing against this tenant
	lastUse atomic.Int64 // unix nanos of the most recent acquire/release
}

func (e *tenantEntry) touch() { e.lastUse.Store(time.Now().UnixNano()) }

// tenantTable maps tenant names to their systems with lazy creation, a hard
// cap, and idle eviction.
type tenantTable struct {
	mu      sync.Mutex
	entries map[string]*tenantEntry
	factory func(string) (*autostats.System, error)
	limit   int

	created *obs.Counter
	evicted *obs.Counter
	failed  *obs.Counter
	panics  *obs.Counter
	live    *obs.Gauge
}

func newTenantTable(factory func(string) (*autostats.System, error), limit int, reg *obs.Registry) *tenantTable {
	return &tenantTable{
		entries: make(map[string]*tenantEntry),
		factory: factory,
		limit:   limit,
		created: reg.Counter("server.tenants.created"),
		evicted: reg.Counter("server.tenants.evicted"),
		failed:  reg.Counter("server.tenants.create_failures"),
		panics:  reg.Counter("server.tenant.factory_panics"),
		live:    reg.Gauge("server.tenants.live"),
	}
}

// acquire returns the tenant's system, creating it on first use, and pins the
// tenant against eviction until release is called.
func (t *tenantTable) acquire(name string) (sys *autostats.System, release func(), err error) {
	t.mu.Lock()
	e := t.entries[name]
	if e == nil {
		if len(t.entries) >= t.limit {
			t.mu.Unlock()
			return nil, nil, fmt.Errorf("%w (%d live tenants)", errTenantLimit, t.limit)
		}
		e = &tenantEntry{name: name, ready: make(chan struct{})}
		t.entries[name] = e
	}
	e.refs.Add(1)
	e.touch()
	t.mu.Unlock()

	e.once.Do(func() {
		defer close(e.ready)
		// A panicking factory must not leave the entry half-initialized
		// behind a spent sync.Once: recover it into an ordinary error, which
		// the failed-entry retry below then drops for a fresh attempt.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.panics.Inc()
					e.err = fmt.Errorf("server: tenant %q factory panicked: %v", name, r)
				}
			}()
			e.sys, e.err = t.factory(name)
		}()
		if e.err == nil {
			t.created.Inc()
			t.live.Add(1)
		} else {
			t.failed.Inc()
		}
	})
	if e.err != nil {
		err := e.err
		e.refs.Add(-1)
		// Drop the failed entry so a later request retries the factory
		// instead of caching the failure forever.
		t.mu.Lock()
		if t.entries[name] == e {
			delete(t.entries, name)
		}
		t.mu.Unlock()
		return nil, nil, err
	}
	return e.sys, func() {
		e.touch()
		e.refs.Add(-1)
	}, nil
}

// count returns the number of live (successfully created) tenants.
func (t *tenantTable) count() int {
	return int(t.live.Value())
}

// forEach visits every successfully created tenant system.
func (t *tenantTable) forEach(fn func(name string, sys *autostats.System)) {
	t.mu.Lock()
	entries := make([]*tenantEntry, 0, len(t.entries))
	for _, e := range t.entries {
		entries = append(entries, e)
	}
	t.mu.Unlock()
	for _, e := range entries {
		select {
		case <-e.ready:
			if e.err == nil {
				fn(e.name, e.sys)
			}
		default: // factory still running; skip
		}
	}
}

// janitor evicts tenants idle longer than ttl, checking every ttl/4, until
// done is closed. An evicted tenant's system is simply dropped (its state is
// synthetic and rebuildable); the next request re-creates it.
func (t *tenantTable) janitor(done <-chan struct{}, ttl time.Duration) {
	interval := ttl / 4
	if interval < time.Second {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			t.evictIdle(ttl)
		}
	}
}

func (t *tenantTable) evictIdle(ttl time.Duration) {
	cutoff := time.Now().Add(-ttl).UnixNano()
	t.mu.Lock()
	defer t.mu.Unlock()
	for name, e := range t.entries {
		if e.refs.Load() == 0 && e.lastUse.Load() < cutoff {
			delete(t.entries, name)
			if e.sys != nil {
				t.evicted.Inc()
				t.live.Add(-1)
			}
		}
	}
}
