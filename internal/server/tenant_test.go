package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"autostats"
	"autostats/internal/obs"
)

func testSystem(t *testing.T) *autostats.System {
	t.Helper()
	sys, err := autostats.GenerateTPCD(autostats.TPCDOptions{Scale: 0.02, Skew: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestTenantTableLazySingleCreation(t *testing.T) {
	var mu sync.Mutex
	calls := map[string]int{}
	sys := testSystem(t)
	tt := newTenantTable(func(name string) (*autostats.System, error) {
		mu.Lock()
		calls[name]++
		mu.Unlock()
		return sys, nil
	}, 4, obs.New())

	// Concurrent first touches of one tenant run the factory exactly once.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, release, err := tt.acquire("a")
			if err != nil {
				t.Error(err)
				return
			}
			if got != sys {
				t.Error("acquire returned a different system")
			}
			release()
		}()
	}
	wg.Wait()
	if calls["a"] != 1 {
		t.Fatalf("factory ran %d times for one tenant", calls["a"])
	}
	if tt.count() != 1 {
		t.Fatalf("count = %d", tt.count())
	}
}

func TestTenantTableLimitAndFailureRetry(t *testing.T) {
	fail := true
	tt := newTenantTable(func(name string) (*autostats.System, error) {
		if fail {
			return nil, errors.New("boom")
		}
		return testSystem(t), nil
	}, 1, obs.New())

	// A failed creation is not cached: the retry re-runs the factory.
	if _, _, err := tt.acquire("a"); err == nil {
		t.Fatal("want factory error")
	}
	fail = false
	sys, release, err := tt.acquire("a")
	if err != nil || sys == nil {
		t.Fatalf("retry after failure: %v", err)
	}
	defer release()

	// The table is at its limit of 1; a second tenant is refused.
	if _, _, err := tt.acquire("b"); !errors.Is(err, errTenantLimit) {
		t.Fatalf("err = %v, want errTenantLimit", err)
	}
}

func TestTenantTableIdleEviction(t *testing.T) {
	tt := newTenantTable(func(name string) (*autostats.System, error) {
		return testSystem(t), nil
	}, 4, obs.New())

	_, releaseA, err := tt.acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	_, releaseB, err := tt.acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	releaseB()

	// Pin "a" (in use) and let "b" go idle past the TTL.
	time.Sleep(20 * time.Millisecond)
	tt.evictIdle(10 * time.Millisecond)
	if tt.count() != 1 {
		t.Fatalf("count after eviction = %d, want 1 (only pinned tenant)", tt.count())
	}
	names := map[string]bool{}
	tt.forEach(func(name string, _ *autostats.System) { names[name] = true })
	if !names["a"] || names["b"] {
		t.Fatalf("surviving tenants %v, want only a", names)
	}
	releaseA()

	// Once released and idle, "a" is evictable too — and re-creatable after.
	time.Sleep(20 * time.Millisecond)
	tt.evictIdle(10 * time.Millisecond)
	if tt.count() != 0 {
		t.Fatalf("count = %d, want 0", tt.count())
	}
	if _, release, err := tt.acquire("a"); err != nil {
		t.Fatalf("re-create after eviction: %v", err)
	} else {
		release()
	}
}
