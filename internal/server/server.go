// Package server is the stats-as-a-service network layer: a long-running
// multi-tenant TCP server exposing the autostats facade over the
// length-prefixed JSON protocol of internal/protocol.
//
// Architecture, connection by connection:
//
//   - the accept loop hands each connection to a reader goroutine and a
//     writer goroutine. The reader decodes frames and ADMITS requests; the
//     writer serializes responses (pipelined — responses carry request IDs
//     and may complete out of order);
//   - admitted requests go to a bounded worker pool through a fixed-depth
//     queue. Admission control is a non-blocking enqueue: when the queue is
//     full the request is rejected immediately with CodeOverloaded
//     (protocol.ErrOverloaded on the client side) instead of queuing
//     unboundedly — load sheds at the door, in O(1), under any burst;
//   - each tenant gets its own lazily created autostats.System (its own
//     database, statistics manager, optimizer and plan cache). Tenants idle
//     beyond the TTL are evicted; the next request re-creates them;
//   - graceful drain (Shutdown, wired to SIGTERM in cmd/autostatsd): stop
//     accepting, wake blocked readers, reject NEW requests with
//     CodeDraining, finish every admitted request through the PR 5 context
//     plumbing, flush each connection's writer, then close. The returned
//     DrainReport proves zero admitted requests were dropped.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autostats"
	"autostats/internal/obs"
	"autostats/internal/optimizer"
	"autostats/internal/protocol"
)

// Config configures a Server. The zero value of every field selects a
// sensible default except NewTenant, which is required.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:7744"; use ":0"
	// for an ephemeral test port, then read Server.Addr).
	Addr string
	// Workers bounds concurrently executing requests (default 2×GOMAXPROCS,
	// minimum 4).
	Workers int
	// QueueDepth bounds requests admitted but not yet executing (default
	// 16×Workers). A full queue fast-fails new requests with CodeOverloaded.
	QueueDepth int
	// MaxFrame caps request and response frame payloads (default
	// protocol.DefaultMaxFrame).
	MaxFrame int
	// MaxTenants bounds the number of live tenant systems (default 64);
	// requests for new tenants beyond it are rejected with CodeTenantLimit.
	MaxTenants int
	// TenantIdleTTL evicts tenant systems idle this long (default 10m;
	// negative disables eviction).
	TenantIdleTTL time.Duration
	// ReadTimeout caps the wait for the next request frame on a connection.
	// It doubles as the idle timeout and the half-open/slow-loris defense: a
	// client that stalls mid-frame or vanishes without FIN is evicted when
	// the deadline fires (default 2m; negative disables).
	ReadTimeout time.Duration
	// WriteTimeout caps each response write to a client socket; a client
	// that stops reading until the TCP window and the write queue are both
	// full is evicted instead of pinning the writer (default 30s; negative
	// disables).
	WriteTimeout time.Duration
	// RequestTimeout bounds one request's server-side execution, propagated
	// as a context deadline into the tenant operation; expired requests
	// answer CodeTimeout (default 0 = unbounded).
	RequestTimeout time.Duration
	// MaxInflightPerConn caps requests admitted but not yet answered on one
	// connection; excess fast-fails with CodeOverloaded so a single
	// pipelining client cannot monopolize the worker queue (default 256;
	// negative disables).
	MaxInflightPerConn int
	// TenantRPS, when > 0, enforces a per-tenant token-bucket quota of this
	// many requests per second; excess fast-fails with CodeRateLimited.
	TenantRPS float64
	// TenantBurst is the token-bucket depth for TenantRPS (default one
	// second of quota).
	TenantBurst int
	// WriteQueue bounds responses buffered per connection awaiting the
	// writer goroutine (default 256). A full queue evicts the connection —
	// a slow consumer — instead of blocking workers on it.
	WriteQueue int
	// NewTenant builds the per-tenant system on first use. Required.
	NewTenant func(name string) (*autostats.System, error)
	// Obs receives the server's own metrics (default a fresh registry).
	Obs *obs.Registry
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
	// Name is announced in hello responses (default "autostatsd").
	Name string
}

func (c *Config) fill() error {
	if c.NewTenant == nil {
		return errors.New("server: Config.NewTenant is required")
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:7744"
	}
	if c.Workers <= 0 {
		c.Workers = defaultWorkers()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16 * c.Workers
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = protocol.DefaultMaxFrame
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 64
	}
	if c.TenantIdleTTL == 0 {
		c.TenantIdleTTL = 10 * time.Minute
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 2 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.MaxInflightPerConn == 0 {
		c.MaxInflightPerConn = 256
	}
	if c.WriteQueue <= 0 {
		c.WriteQueue = 256
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
	if c.Name == "" {
		c.Name = "autostatsd"
	}
	return nil
}

// task is one admitted request bound for the worker pool.
type task struct {
	cn     *conn
	req    *protocol.Request
	tenant string
}

// DrainReport summarizes a completed Shutdown. The drain guarantee is
// Dropped == 0: every request admitted past admission control got its
// response enqueued (and, connection permitting, written) before the server
// closed.
type DrainReport struct {
	Admitted         int64
	Completed        int64
	Dropped          int64
	RejectedOverload int64
	RejectedDraining int64
	Forced           bool
}

// Server is one listening stats-as-a-service instance.
type Server struct {
	cfg Config
	reg *obs.Registry

	ln      net.Listener
	queue   chan task
	tenants *tenantTable
	limiter *tenantLimiter

	stopCtx    context.Context // canceled when drain is forced; aborts long ops
	stopCancel context.CancelFunc
	started    atomic.Bool
	draining   atomic.Bool
	closed     chan struct{}
	stopOnce   sync.Once

	connMu sync.Mutex
	conns  map[*conn]struct{}

	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup
	workerWG sync.WaitGroup
	inflight sync.WaitGroup

	met serverMetrics
}

type serverMetrics struct {
	connsAccepted *obs.Counter
	connsActive   *obs.Gauge
	admitted      *obs.Counter
	completed     *obs.Counter
	rejOverload   *obs.Counter
	rejDraining   *obs.Counter
	badRequests   *obs.Counter
	opErrors      *obs.Counter
	queueDepth    *obs.Gauge
	opLatency     map[string]*obs.Timing

	// Network-robustness counters (PR 10): evictions of misbehaving
	// connections, per-tenant quota rejections, request timeouts and
	// recovered panics.
	connIdleEvicted *obs.Counter // reader deadline fired: idle or half-open
	connSlowEvicted *obs.Counter // write queue full or write deadline fired
	connInflightRej *obs.Counter // per-connection in-flight cap rejections
	connPanics      *obs.Counter // recovered connection-goroutine panics
	workerPanics    *obs.Counter // recovered worker/op panics
	rejRateLimited  *obs.Counter // per-tenant token-bucket rejections
	reqTimeouts     *obs.Counter // requests answering CodeTimeout
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	ops := []string{protocol.OpExec, protocol.OpExplain, protocol.OpTune,
		protocol.OpStats, protocol.OpMaintain, protocol.OpMetrics}
	lat := make(map[string]*obs.Timing, len(ops))
	for _, op := range ops {
		lat[op] = reg.Timing("server.op." + op + ".latency")
	}
	return serverMetrics{
		connsAccepted: reg.Counter("server.conns.accepted"),
		connsActive:   reg.Gauge("server.conns.active"),
		admitted:      reg.Counter("server.requests.admitted"),
		completed:     reg.Counter("server.requests.completed"),
		rejOverload:   reg.Counter("server.requests.rejected_overload"),
		rejDraining:   reg.Counter("server.requests.rejected_draining"),
		badRequests:   reg.Counter("server.requests.bad"),
		opErrors:      reg.Counter("server.requests.op_errors"),
		queueDepth:    reg.Gauge("server.queue.depth"),
		opLatency:     lat,

		connIdleEvicted: reg.Counter("server.conn.idle_evicted"),
		connSlowEvicted: reg.Counter("server.conn.slow_evicted"),
		connInflightRej: reg.Counter("server.conn.inflight_rejects"),
		connPanics:      reg.Counter("server.conn.panics"),
		workerPanics:    reg.Counter("server.worker.panics"),
		rejRateLimited:  reg.Counter("server.tenant.rate_limited"),
		reqTimeouts:     reg.Counter("server.requests.timeouts"),
	}
}

// New builds a server from cfg without listening yet.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	stopCtx, stopCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        cfg.Obs,
		queue:      make(chan task, cfg.QueueDepth),
		closed:     make(chan struct{}),
		stopCtx:    stopCtx,
		stopCancel: stopCancel,
		conns:      make(map[*conn]struct{}),
		met:        newServerMetrics(cfg.Obs),
	}
	s.tenants = newTenantTable(cfg.NewTenant, cfg.MaxTenants, cfg.Obs)
	s.limiter = newTenantLimiter(cfg.TenantRPS, cfg.TenantBurst)
	return s, nil
}

// Obs returns the server's metric registry (tenant systems report to the
// process-default registry; the server's own counters live here).
func (s *Server) Obs() *obs.Registry { return s.reg }

// Start listens and begins serving. It returns once the listener is bound;
// serving continues on background goroutines until Shutdown.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.logf("listening on %s (workers=%d queue=%d max_tenants=%d)",
		ln.Addr(), s.cfg.Workers, s.cfg.QueueDepth, s.cfg.MaxTenants)
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	s.acceptWG.Add(1)
	go s.acceptLoop()
	if s.cfg.TenantIdleTTL > 0 {
		go s.tenants.janitor(s.closed, s.cfg.TenantIdleTTL)
	}
	s.started.Store(true)
	return nil
}

// Ready reports the server is listening and not draining — the /readyz gate.
func (s *Server) Ready() bool { return s.started.Load() && !s.draining.Load() }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Addr returns the bound listen address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// TenantCount returns the number of live tenant systems.
func (s *Server) TenantCount() int { return s.tenants.count() }

// PlanCacheStats aggregates the plan-cache counters of every live tenant —
// the multi-tenant hit rate the swarm benchmark reports.
func (s *Server) PlanCacheStats() optimizer.PlanCacheStats {
	var agg optimizer.PlanCacheStats
	s.tenants.forEach(func(name string, sys *autostats.System) {
		st := sys.PlanCacheStats()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
		agg.Size += st.Size
		agg.Capacity += st.Capacity
		agg.Shards += st.Shards
	})
	return agg
}

// TenantPlanCacheStats returns each live tenant's plan-cache counters keyed
// by tenant name — the per-tenant view the chaos sweep uses to prove tenant
// isolation (one tenant's traffic never touches another tenant's cache).
func (s *Server) TenantPlanCacheStats() map[string]optimizer.PlanCacheStats {
	out := make(map[string]optimizer.PlanCacheStats)
	s.tenants.forEach(func(name string, sys *autostats.System) {
		out[name] = sys.PlanCacheStats()
	})
	return out
}

// Run serves until ctx is done, then drains gracefully with the given
// timeout budget (0 means 30s) — the SIGTERM path of cmd/autostatsd.
func (s *Server) Run(ctx context.Context, drainTimeout time.Duration) (DrainReport, error) {
	if err := s.Start(); err != nil {
		return DrainReport{}, err
	}
	<-ctx.Done()
	if drainTimeout <= 0 {
		drainTimeout = 30 * time.Second
	}
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	return s.Shutdown(dctx), nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			s.logf("accept: %v", err)
			continue
		}
		s.met.connsAccepted.Inc()
		s.met.connsActive.Add(1)
		cn := newConn(s, nc)
		s.connMu.Lock()
		s.conns[cn] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(2)
		go cn.writeLoop()
		go cn.readLoop()
	}
}

func (s *Server) removeConn(cn *conn) {
	s.connMu.Lock()
	delete(s.conns, cn)
	s.connMu.Unlock()
	s.met.connsActive.Add(-1)
}

// worker executes admitted requests until the queue is closed.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for t := range s.queue {
		s.met.queueDepth.Add(-1)
		resp := s.safeExecute(t)
		t.cn.send(resp)
		t.cn.inflight.Add(-1)
		s.met.completed.Inc()
		t.cn.pending.Done()
		s.inflight.Done()
	}
}

// safeExecute runs execute with panic isolation: a panicking operation (an
// optimizer bug, a misbehaving tenant factory) answers CodeInternal and the
// worker survives to serve the next request — one poisoned request must
// never take a worker slot down with it.
func (s *Server) safeExecute(t task) (resp *protocol.Response) {
	defer func() {
		if r := recover(); r != nil {
			s.met.workerPanics.Inc()
			s.met.opErrors.Inc()
			s.logf("worker panic executing %q: %v", t.req.Op, r)
			resp = protocol.ErrResponse(t.req.ID, protocol.CodeInternal,
				fmt.Sprintf("internal panic executing %s", t.req.Op))
		}
	}()
	return s.execute(t)
}

// opErrResponse classifies an operation error into its protocol code: a
// context deadline becomes the typed CodeTimeout, a drain cancellation
// becomes CodeDraining, anything else is the statement's own CodeSQL error.
func (s *Server) opErrResponse(id uint64, err error) *protocol.Response {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.met.reqTimeouts.Inc()
		return protocol.ErrResponse(id, protocol.CodeTimeout,
			fmt.Sprintf("request exceeded the server's %v deadline", s.cfg.RequestTimeout))
	case errors.Is(err, context.Canceled):
		return protocol.ErrResponse(id, protocol.CodeDraining,
			"request canceled by server shutdown")
	default:
		s.met.opErrors.Inc()
		return protocol.ErrResponse(id, protocol.CodeSQL, err.Error())
	}
}

// execute runs one admitted request against its tenant system.
func (s *Server) execute(t task) *protocol.Response {
	req := t.req
	start := time.Now()
	defer func() {
		if tm := s.met.opLatency[req.Op]; tm != nil {
			tm.Observe(time.Since(start))
		}
	}()

	// The request deadline starts when a worker picks the task up: queue
	// wait is already bounded by admission control, and restarting the clock
	// here keeps the budget meaningful for the operation itself.
	ctx := s.stopCtx
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	sys, release, err := s.tenants.acquire(t.tenant)
	if err != nil {
		if errors.Is(err, errTenantLimit) {
			return protocol.ErrResponse(req.ID, protocol.CodeTenantLimit, err.Error())
		}
		s.met.opErrors.Inc()
		return protocol.ErrResponse(req.ID, protocol.CodeInternal, err.Error())
	}
	defer release()
	// A slow tenant factory may have consumed the whole budget before the
	// operation even starts; fail typed rather than starting doomed work.
	if err := ctx.Err(); err != nil {
		return s.opErrResponse(req.ID, err)
	}

	switch req.Op {
	case protocol.OpExec:
		r, err := sys.ExecCtx(ctx, req.SQL)
		if err != nil {
			return s.opErrResponse(req.ID, err)
		}
		return &protocol.Response{ID: req.ID, Exec: &protocol.ExecResult{
			Columns:       r.Columns,
			Rows:          r.Rows,
			ExecCost:      r.ExecCost,
			EstimatedCost: r.EstimatedCost,
			Plan:          r.Plan,
			Affected:      r.Affected,
			Degraded:      r.Degraded,
		}}
	case protocol.OpExplain:
		plan, err := sys.ExplainCtx(ctx, req.SQL)
		if err != nil {
			return s.opErrResponse(req.ID, err)
		}
		return &protocol.Response{ID: req.ID, Plan: plan}
	case protocol.OpTune:
		sqls := req.SQLs
		if len(sqls) == 0 {
			sqls = []string{req.SQL}
		}
		opts := autostats.TuneOptions{}
		if p := req.Tune; p != nil {
			opts.ThresholdPct = p.ThresholdPct
			opts.Epsilon = p.Epsilon
			opts.SingleColumnOnly = p.SingleColumnOnly
			opts.Drop = p.Drop
			opts.Shrink = p.Shrink
			opts.Parallelism = p.Parallelism
		}
		rep, err := sys.TuneWorkloadCtx(ctx, sqls, opts)
		if err != nil {
			return s.opErrResponse(req.ID, err)
		}
		return &protocol.Response{ID: req.ID, Tune: &protocol.TuneResult{
			Created:           rep.Created,
			DropListed:        rep.DropListed,
			Essential:         rep.Essential,
			OptimizerCalls:    rep.OptimizerCalls,
			CreationCostUnits: rep.CreationCostUnits,
			Degraded:          rep.Degraded,
			BuildFailures:     rep.BuildFailures,
		}}
	case protocol.OpStats:
		infos := sys.Statistics()
		rows := make([]protocol.StatRow, len(infos))
		for i, st := range infos {
			rows[i] = protocol.StatRow{
				ID:         st.ID,
				Table:      st.Table,
				Columns:    st.Columns,
				Rows:       st.Rows,
				Distinct:   st.Distinct,
				Buckets:    st.Buckets,
				InDropList: st.InDropList,
				Updates:    st.Updates,
			}
		}
		return &protocol.Response{ID: req.ID, Stats: rows}
	case protocol.OpMaintain:
		rep, err := sys.RunMaintenanceCtx(ctx)
		if err != nil {
			return s.opErrResponse(req.ID, err)
		}
		return &protocol.Response{ID: req.ID, Maintain: &protocol.MaintResult{
			TablesRefreshed: rep.TablesRefreshed,
			StatsDropped:    rep.StatsDropped,
		}}
	default:
		return protocol.ErrResponse(req.ID, protocol.CodeUnknownOp,
			fmt.Sprintf("unknown op %q", req.Op))
	}
}

// handleRequest runs in the connection's reader goroutine: the cheap inline
// ops answer directly, everything else passes admission control into the
// worker pool.
func (s *Server) handleRequest(cn *conn, req *protocol.Request) {
	switch req.Op {
	case protocol.OpHello:
		if req.Version != protocol.Version {
			s.met.badRequests.Inc()
			cn.send(protocol.ErrResponse(req.ID, protocol.CodeVersion,
				fmt.Sprintf("client speaks protocol %d, server speaks %d", req.Version, protocol.Version)))
			return
		}
		if req.Tenant != "" {
			if err := validTenant(req.Tenant); err != nil {
				s.met.badRequests.Inc()
				cn.send(protocol.ErrResponse(req.ID, protocol.CodeBadRequest, err.Error()))
				return
			}
			cn.tenant = req.Tenant
		}
		cn.send(&protocol.Response{ID: req.ID, Hello: &protocol.HelloResult{
			Version:  protocol.Version,
			Server:   s.cfg.Name,
			MaxFrame: s.cfg.MaxFrame,
			Tenant:   cn.tenant,
		}})
		return
	case protocol.OpMetrics:
		var sb strings.Builder
		if err := s.reg.WriteText(&sb); err != nil {
			cn.send(protocol.ErrResponse(req.ID, protocol.CodeInternal, err.Error()))
			return
		}
		cn.send(&protocol.Response{ID: req.ID, Metrics: sb.String()})
		return
	}

	tenant := req.Tenant
	if tenant == "" {
		tenant = cn.tenant
	}
	if err := validTenant(tenant); err != nil {
		s.met.badRequests.Inc()
		cn.send(protocol.ErrResponse(req.ID, protocol.CodeBadRequest, err.Error()))
		return
	}
	switch req.Op {
	case protocol.OpExec, protocol.OpExplain:
		if strings.TrimSpace(req.SQL) == "" {
			s.met.badRequests.Inc()
			cn.send(protocol.ErrResponse(req.ID, protocol.CodeBadRequest, "empty sql"))
			return
		}
	case protocol.OpTune:
		if strings.TrimSpace(req.SQL) == "" && len(req.SQLs) == 0 {
			s.met.badRequests.Inc()
			cn.send(protocol.ErrResponse(req.ID, protocol.CodeBadRequest, "empty tune workload"))
			return
		}
	case protocol.OpStats, protocol.OpMaintain:
	default:
		s.met.badRequests.Inc()
		cn.send(protocol.ErrResponse(req.ID, protocol.CodeUnknownOp,
			fmt.Sprintf("unknown op %q", req.Op)))
		return
	}

	if s.draining.Load() {
		s.met.rejDraining.Inc()
		cn.send(protocol.ErrResponse(req.ID, protocol.CodeDraining, "server draining"))
		return
	}

	// Per-tenant quota, checked before the shared queue so one hot tenant
	// sheds its own load instead of everyone's.
	if s.limiter != nil && !s.limiter.allow(tenant, time.Now()) {
		s.met.rejRateLimited.Inc()
		cn.send(protocol.ErrResponse(req.ID, protocol.CodeRateLimited,
			fmt.Sprintf("tenant %q over its %g req/s quota; retry with backoff", tenant, s.cfg.TenantRPS)))
		return
	}

	// Per-connection in-flight cap: a single client pipelining thousands of
	// requests must not be able to fill the worker queue by itself.
	if max := s.cfg.MaxInflightPerConn; max > 0 && cn.inflight.Load() >= int64(max) {
		s.met.connInflightRej.Inc()
		cn.send(protocol.ErrResponse(req.ID, protocol.CodeOverloaded,
			fmt.Sprintf("connection has %d requests in flight (cap %d); read responses before pipelining more", max, max)))
		return
	}

	// Admission control: the Add happens BEFORE the enqueue so a worker can
	// never complete the task before it is accounted in-flight; a full queue
	// rolls the accounting back and fast-fails.
	cn.pending.Add(1)
	cn.inflight.Add(1)
	s.inflight.Add(1)
	select {
	case s.queue <- task{cn: cn, req: req, tenant: tenant}:
		s.met.queueDepth.Add(1)
		s.met.admitted.Inc()
	default:
		cn.pending.Done()
		cn.inflight.Add(-1)
		s.inflight.Done()
		s.met.rejOverload.Inc()
		cn.send(protocol.ErrResponse(req.ID, protocol.CodeOverloaded,
			"worker queue full; retry with backoff"))
	}
}

// validTenant bounds tenant names: nonempty, short, printable ASCII without
// separators, so tenant names are safe in logs and metric labels.
func validTenant(name string) error {
	if name == "" {
		return errors.New("missing tenant (set it in hello or per request)")
	}
	if len(name) > 128 {
		return fmt.Errorf("tenant name longer than 128 bytes")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c <= ' ' || c > '~' || c == ',' {
			return fmt.Errorf("tenant name contains byte %q", c)
		}
	}
	return nil
}

// Shutdown drains the server: stop accepting, reject new requests, finish
// every admitted request, flush and close connections. If ctx expires first
// the drain is forced: the long-op context is canceled and connections are
// killed (Forced is set in the report; Dropped then counts the requests
// whose work was cut short).
func (s *Server) Shutdown(ctx context.Context) DrainReport {
	rep := DrainReport{}
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		if s.ln != nil {
			s.ln.Close()
		}
		s.acceptWG.Wait()

		// Wake readers blocked in Read so they observe the drain flag.
		s.connMu.Lock()
		for cn := range s.conns {
			cn.nc.SetReadDeadline(time.Now())
		}
		s.connMu.Unlock()

		// Wait for every admitted request to complete (response enqueued).
		done := make(chan struct{})
		go func() { s.inflight.Wait(); close(done) }()
		select {
		case <-done:
		case <-ctx.Done():
			rep.Forced = true
			s.stopCancel() // abort long-running tunes/maintenance
			s.connMu.Lock()
			for cn := range s.conns {
				cn.kill() // unblock workers stuck sending to dead clients
			}
			s.connMu.Unlock()
			<-done
		}

		close(s.queue)
		s.workerWG.Wait()

		// Readers exit on the deadline, wait out their pending responses and
		// close their writers; give them the remaining budget, then force.
		connsDone := make(chan struct{})
		go func() { s.connWG.Wait(); close(connsDone) }()
		select {
		case <-connsDone:
		case <-ctx.Done():
			rep.Forced = true
			s.connMu.Lock()
			for cn := range s.conns {
				cn.kill()
			}
			s.connMu.Unlock()
			<-connsDone
		}

		s.stopCancel()
		close(s.closed)

		rep.Admitted = s.met.admitted.Value()
		rep.Completed = s.met.completed.Value()
		rep.Dropped = rep.Admitted - rep.Completed
		rep.RejectedOverload = s.met.rejOverload.Value()
		rep.RejectedDraining = s.met.rejDraining.Value()
		s.logf("drained: admitted=%d completed=%d dropped=%d rejected_overload=%d rejected_draining=%d forced=%v",
			rep.Admitted, rep.Completed, rep.Dropped, rep.RejectedOverload, rep.RejectedDraining, rep.Forced)
	})
	return rep
}

// conn is one client connection: a reader goroutine (framing + admission), a
// writer goroutine (response serialization), and a bounded response channel
// between workers and the writer. Both goroutines run under per-I/O
// deadlines and panic isolation, so a hostile or broken peer can cost the
// server at most this one connection — never a worker, never the process.
type conn struct {
	srv    *Server
	nc     net.Conn
	out    chan *protocol.Response
	dead   chan struct{}
	deadMu sync.Once
	// pending counts requests admitted from this connection whose responses
	// have not yet been enqueued; the reader waits on it before closing out.
	pending sync.WaitGroup
	// inflight counts admitted-but-unanswered requests for the
	// MaxInflightPerConn cap (reader checks, workers decrement).
	inflight atomic.Int64
	// tenant is the connection-default tenant set by hello (reader
	// goroutine only).
	tenant string
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:  s,
		nc:   nc,
		out:  make(chan *protocol.Response, s.cfg.WriteQueue),
		dead: make(chan struct{}),
	}
}

// kill marks the connection dead and closes the socket, unblocking the
// reader (Read error) and making every later send a cheap discard.
func (cn *conn) kill() {
	cn.deadMu.Do(func() {
		close(cn.dead)
		cn.nc.Close()
	})
}

// send enqueues a response without ever blocking the caller. A full queue
// means the client is consuming responses slower than it pipelines requests
// — a slow (or stopped) reader — and the connection is evicted rather than
// parking a shared worker on it. Completed work on a dead connection is
// discarded — that is the client's loss, not a drain drop (the work
// finished).
func (cn *conn) send(resp *protocol.Response) {
	select {
	case cn.out <- resp:
	case <-cn.dead:
	default:
		cn.srv.met.connSlowEvicted.Inc()
		cn.srv.logf("evicting slow consumer %s: write queue full (%d)", cn.nc.RemoteAddr(), cap(cn.out))
		cn.kill()
	}
}

func (cn *conn) readLoop() {
	defer cn.srv.connWG.Done()
	cn.readFrames()
	// Every admitted request must have its response enqueued before the
	// writer is told to finish — this wait is the per-connection half of the
	// zero-drop drain guarantee. Workers never block on send, so this wait
	// is bounded by request execution, not by the peer.
	cn.pending.Wait()
	close(cn.out)
	cn.srv.removeConn(cn)
}

// readFrames is the reader's frame loop, isolated so a panic (a protocol
// handler bug) tears down this connection only, with the drain accounting
// in readLoop still running.
func (cn *conn) readFrames() {
	defer func() {
		if r := recover(); r != nil {
			cn.srv.met.connPanics.Inc()
			cn.srv.logf("connection reader panic: %v", r)
			cn.kill()
		}
	}()
	br := bufio.NewReaderSize(cn.nc, 16<<10)
	for {
		// Deadline before the draining check: if the drain poke lands after
		// this SetReadDeadline, the read still times out promptly; if it
		// landed before, the draining check below breaks the loop. Either
		// order wakes the reader — no missed-poke window.
		if to := cn.srv.cfg.ReadTimeout; to > 0 {
			cn.nc.SetReadDeadline(time.Now().Add(to))
		}
		if cn.srv.draining.Load() {
			break
		}
		req, err := protocol.ReadRequest(br, cn.srv.cfg.MaxFrame)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if cn.srv.draining.Load() {
					break // drain woke us; finish pending and close
				}
				// The peer went quiet past the read deadline: an idle
				// client, a half-open connection (peer vanished without
				// FIN), or a slow-loris feed stalling mid-frame. Evict it;
				// the reader goroutine is reclaimed either way.
				cn.srv.met.connIdleEvicted.Inc()
				cn.srv.logf("evicting idle/half-open connection %s after %v", cn.nc.RemoteAddr(), cn.srv.cfg.ReadTimeout)
				break
			}
			if errors.Is(err, protocol.ErrFrameTooLarge) || strings.Contains(err.Error(), "malformed request") {
				cn.srv.met.badRequests.Inc()
				cn.send(protocol.ErrResponse(0, protocol.CodeBadRequest, err.Error()))
			}
			break
		}
		cn.srv.handleRequest(cn, req)
	}
}

func (cn *conn) writeLoop() {
	defer cn.srv.connWG.Done()
	cn.writeFrames()
	// If writeFrames panicked mid-loop, keep draining so the reader's
	// close(out) is never stranded; on a closed channel this is a no-op.
	for range cn.out {
	}
	cn.nc.Close()
}

// writeFrames serializes responses until the out channel closes or the
// connection dies, under a per-write deadline: a peer that stops reading
// until TCP backpressure reaches us is evicted, not waited on.
func (cn *conn) writeFrames() {
	defer func() {
		if r := recover(); r != nil {
			cn.srv.met.connPanics.Inc()
			cn.srv.logf("connection writer panic: %v", r)
			cn.kill()
		}
	}()
	bw := bufio.NewWriterSize(cn.nc, 16<<10)
	var werr error
	for resp := range cn.out {
		if werr != nil {
			continue // connection dead; drain the channel so close proceeds
		}
		if to := cn.srv.cfg.WriteTimeout; to > 0 {
			cn.nc.SetWriteDeadline(time.Now().Add(to))
		}
		werr = protocol.WriteFrame(bw, resp, cn.srv.cfg.MaxFrame)
		if errors.Is(werr, protocol.ErrFrameTooLarge) {
			// The result didn't fit one frame; degrade to an error response
			// instead of tearing down the connection.
			werr = protocol.WriteFrame(bw, protocol.ErrResponse(resp.ID,
				protocol.CodeInternal, "response exceeds frame limit"), cn.srv.cfg.MaxFrame)
		}
		if werr == nil && len(cn.out) == 0 {
			werr = bw.Flush()
		}
		if werr != nil {
			var ne net.Error
			if errors.As(werr, &ne) && ne.Timeout() {
				cn.srv.met.connSlowEvicted.Inc()
				cn.srv.logf("evicting slow consumer %s: write stalled past %v", cn.nc.RemoteAddr(), cn.srv.cfg.WriteTimeout)
			}
			cn.kill()
		}
	}
	if werr == nil {
		if to := cn.srv.cfg.WriteTimeout; to > 0 {
			cn.nc.SetWriteDeadline(time.Now().Add(to))
		}
		bw.Flush()
	}
}

func defaultWorkers() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	return n
}
