package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"

	"autostats/internal/obs"
)

// MetricsHandler serves a registry over HTTP — the optional -metrics-addr
// endpoint of cmd/autostatsd. GET / returns the expvar-style "name value"
// text dump; GET /?format=json (or an Accept header preferring
// application/json) returns the full structured obs.Snapshot, timings and
// histograms included.
func MetricsHandler(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if wantJSON(r) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(reg.Snapshot()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

func wantJSON(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "json":
		return true
	case "text":
		return false
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// OpsHandler serves the metrics registry plus the health probes:
//
//	GET /healthz  — 200 while the process is alive (liveness)
//	GET /readyz   — 200 once ready() is true, 503 otherwise (readiness:
//	                listening and not draining); orchestrators and the
//	                -wait-ready flag of cmd/autostatsd poll this
//	GET /         — the metrics registry (text, or ?format=json)
func OpsHandler(reg *obs.Registry, ready func() bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil && !ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.Handle("/", MetricsHandler(reg))
	return mux
}

// ServeOps starts an HTTP server for the ops surface (metrics + health
// probes) on addr and returns its bound address and a shutdown func.
func ServeOps(addr string, reg *obs.Registry, ready func() bool) (string, func() error, error) {
	srv := &http.Server{Handler: OpsHandler(reg, ready)}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}

// ServeMetrics is ServeOps without a readiness gate (/readyz always 200) —
// kept for callers that only want the registry.
func ServeMetrics(addr string, reg *obs.Registry) (string, func() error, error) {
	return ServeOps(addr, reg, nil)
}
