package server

import (
	"encoding/json"
	"net"
	"net/http"
	"strings"

	"autostats/internal/obs"
)

// MetricsHandler serves a registry over HTTP — the optional -metrics-addr
// endpoint of cmd/autostatsd. GET / returns the expvar-style "name value"
// text dump; GET /?format=json (or an Accept header preferring
// application/json) returns the full structured obs.Snapshot, timings and
// histograms included.
func MetricsHandler(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if wantJSON(r) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(reg.Snapshot()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

func wantJSON(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "json":
		return true
	case "text":
		return false
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// ServeMetrics starts an HTTP server for reg on addr and returns its bound
// address and a shutdown func. It exists so cmd/autostatsd's -metrics-addr
// wiring stays one call.
func ServeMetrics(addr string, reg *obs.Registry) (string, func() error, error) {
	mux := http.NewServeMux()
	mux.Handle("/", MetricsHandler(reg))
	srv := &http.Server{Handler: mux}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
