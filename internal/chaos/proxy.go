// Package chaos provides a deterministic fault-injecting TCP proxy for
// network-robustness testing of the stats server and client.
//
// The proxy sits between a client and a real listener and perturbs the byte
// streams flowing through it: added latency, bandwidth throttling, torn
// frames (a random prefix of a chunk followed by a reset), hard mid-stream
// resets, byte corruption, and slow-loris trickle (tiny chunks at low
// bandwidth). Every random decision comes from a seeded generator — one
// stream per connection per direction, derived from (seed, connection index,
// direction) — so a failing run replays exactly from its seed.
//
// The chaos sweep in internal/oracle drives a real server through this proxy
// and asserts the PR 8 invariants: every client-visible failure is a typed
// protocol error or a prompt transport error (never a hang), the server
// leaks no goroutines, and the drain arithmetic still balances.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the fault mix. The zero value is a transparent proxy.
// Probabilities are evaluated per forwarded chunk, per direction.
type Config struct {
	// Seed drives every random decision; the same seed and traffic produce
	// the same faults.
	Seed int64
	// Latency is added before each forwarded chunk; Jitter adds a uniform
	// random extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthBPS throttles each direction to roughly this many bytes per
	// second (0 = unlimited). Combined with a small ChunkSize this emulates
	// a slow-loris peer that dribbles bytes one at a time.
	BandwidthBPS int
	// ChunkSize caps bytes forwarded per read (default 4096). Values smaller
	// than a frame tear writes across many TCP segments, exercising partial
	// and torn frame handling in the peer's reader.
	ChunkSize int
	// CorruptProb flips one byte of the chunk (XOR 0xff) — wire corruption
	// the JSON decoder or length prefix check must reject.
	CorruptProb float64
	// TearProb forwards only a random strict prefix of the chunk and then
	// resets the connection: a frame torn mid-payload.
	TearProb float64
	// ResetProb drops the chunk and resets the connection immediately — the
	// peer vanishes without a FIN (SO_LINGER 0 sends an RST where the stack
	// supports it).
	ResetProb float64
}

func (c *Config) fill() {
	if c.ChunkSize <= 0 {
		c.ChunkSize = 4096
	}
}

// Stats counts the faults the proxy has injected.
type Stats struct {
	Accepted  int64 // connections accepted
	DialFails int64 // upstream dials that failed
	Resets    int64 // hard resets injected
	Torn      int64 // torn frames injected
	Corrupted int64 // chunks with a corrupted byte
	BytesIn   int64 // client→server bytes forwarded
	BytesOut  int64 // server→client bytes forwarded
}

// Proxy is a fault-injecting TCP forwarder. Create with New, point clients
// at Addr(), Close when done.
type Proxy struct {
	target string
	cfg    Config
	ln     net.Listener

	connSeq atomic.Int64
	closed  atomic.Bool
	done    chan struct{}
	wg      sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	accepted, dialFails, resets, torn, corrupted atomic.Int64
	bytesIn, bytesOut                            atomic.Int64
}

// New starts a proxy on a fresh loopback port forwarding to target.
func New(target string, cfg Config) (*Proxy, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{
		target: target,
		cfg:    cfg,
		ln:     ln,
		done:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients should dial.
func (p *Proxy) Addr() net.Addr { return p.ln.Addr() }

// Stats snapshots the fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Accepted:  p.accepted.Load(),
		DialFails: p.dialFails.Load(),
		Resets:    p.resets.Load(),
		Torn:      p.torn.Load(),
		Corrupted: p.corrupted.Load(),
		BytesIn:   p.bytesIn.Load(),
		BytesOut:  p.bytesOut.Load(),
	}
}

// Close stops accepting, severs every proxied connection, and waits for the
// pump goroutines to exit.
func (p *Proxy) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(p.done)
	err := p.ln.Close()
	p.mu.Lock()
	for nc := range p.conns {
		nc.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) track(nc net.Conn) {
	p.mu.Lock()
	p.conns[nc] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(nc net.Conn) {
	p.mu.Lock()
	delete(p.conns, nc)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cl, err := p.ln.Accept()
		if err != nil {
			return
		}
		id := p.connSeq.Add(1)
		p.accepted.Add(1)
		p.wg.Add(1)
		go p.handle(cl, id)
	}
}

func (p *Proxy) handle(cl net.Conn, id int64) {
	defer p.wg.Done()
	up, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		p.dialFails.Add(1)
		hardClose(cl)
		return
	}
	p.track(cl)
	p.track(up)
	defer p.untrack(cl)
	defer p.untrack(up)

	// One deterministic stream per direction: (seed, conn id, direction).
	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() {
		defer pumps.Done()
		p.pump(up, cl, rand.New(rand.NewSource(p.cfg.Seed^id<<1)), &p.bytesIn)
	}()
	go func() {
		defer pumps.Done()
		p.pump(cl, up, rand.New(rand.NewSource(p.cfg.Seed^(id<<1|1))), &p.bytesOut)
	}()
	pumps.Wait()
	cl.Close()
	up.Close()
}

// pump forwards src→dst chunk by chunk, rolling the fault dice per chunk.
// Any injected reset or transport error severs BOTH directions (hardClose on
// both conns), matching how a real mid-stream failure looks to each peer.
func (p *Proxy) pump(dst, src net.Conn, rng *rand.Rand, bytes *atomic.Int64) {
	buf := make([]byte, p.cfg.ChunkSize)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			if p.cfg.ResetProb > 0 && rng.Float64() < p.cfg.ResetProb {
				p.resets.Add(1)
				hardClose(dst)
				hardClose(src)
				return
			}
			data := buf[:n]
			tear := false
			if p.cfg.TearProb > 0 && n > 1 && rng.Float64() < p.cfg.TearProb {
				data = data[:1+rng.Intn(n-1)]
				tear = true
			}
			if p.cfg.CorruptProb > 0 && rng.Float64() < p.cfg.CorruptProb {
				data[rng.Intn(len(data))] ^= 0xff
				p.corrupted.Add(1)
			}
			if !p.delay(len(data), rng) {
				return // proxy closing
			}
			if _, werr := dst.Write(data); werr != nil {
				hardClose(src)
				return
			}
			bytes.Add(int64(len(data)))
			if tear {
				p.torn.Add(1)
				hardClose(dst)
				hardClose(src)
				return
			}
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				// Graceful half-close: propagate the FIN, keep the other
				// direction alive for in-flight responses.
				if tc, ok := dst.(*net.TCPConn); ok {
					tc.CloseWrite()
				} else {
					dst.Close()
				}
			} else {
				dst.Close()
			}
			return
		}
	}
}

// delay applies latency, jitter, and the bandwidth budget for a chunk of n
// bytes; it reports false when the proxy shut down mid-sleep.
func (p *Proxy) delay(n int, rng *rand.Rand) bool {
	d := p.cfg.Latency
	if p.cfg.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(p.cfg.Jitter)))
	}
	if p.cfg.BandwidthBPS > 0 {
		d += time.Duration(float64(n) / float64(p.cfg.BandwidthBPS) * float64(time.Second))
	}
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.done:
		return false
	}
}

// hardClose resets the connection (SO_LINGER 0 → RST on TCP) so the peer
// sees an abrupt failure, not a tidy FIN.
func hardClose(nc net.Conn) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	nc.Close()
}
