package chaos

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until the peer closes.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				io.Copy(nc, nc)
			}(nc)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", p.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

// TestProxyPassThrough: a zero-config proxy must be byte-transparent.
func TestProxyPassThrough(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc := dialProxy(t, p)
	payload := make([]byte, 64<<10)
	rand.New(rand.NewSource(7)).Read(payload)
	go func() {
		nc.Write(payload)
	}()
	got := make([]byte, len(payload))
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(nc, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("proxy corrupted bytes with no faults configured")
	}
	st := p.Stats()
	if st.Resets != 0 || st.Torn != 0 || st.Corrupted != 0 {
		t.Fatalf("zero-config proxy injected faults: %+v", st)
	}
}

// TestProxyLatency: configured latency shows up in the round trip.
func TestProxyLatency(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String(), Config{Latency: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc := dialProxy(t, p)
	start := time.Now()
	if _, err := nc.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(nc, buf); err != nil {
		t.Fatal(err)
	}
	// Two pumps (c→s, s→c) each add 50ms.
	if rtt := time.Since(start); rtt < 90*time.Millisecond {
		t.Fatalf("round trip %v, want >= ~100ms of injected latency", rtt)
	}
}

// TestProxyReset: ResetProb=1 severs the connection promptly — the client
// sees a transport error, never a hang.
func TestProxyReset(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String(), Config{ResetProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc := dialProxy(t, p)
	nc.Write([]byte("doomed"))
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 16)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("read succeeded through a reset-everything proxy")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("reset surfaced as a timeout — the peer hung instead of failing fast")
	}
	if p.Stats().Resets == 0 {
		t.Fatal("no reset recorded")
	}
}

// TestProxyTear: TearProb=1 delivers a strict prefix then severs.
func TestProxyTear(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String(), Config{TearProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc := dialProxy(t, p)
	payload := []byte("0123456789abcdef")
	nc.Write(payload)
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	got, _ := io.ReadAll(nc) // reads until the injected reset
	if len(got) >= len(payload) {
		t.Fatalf("received %d bytes, want a strict prefix of %d", len(got), len(payload))
	}
	if !bytes.HasPrefix(payload, got) {
		t.Fatalf("torn chunk %q is not a prefix of %q", got, payload)
	}
	if p.Stats().Torn == 0 {
		t.Fatal("no torn frame recorded")
	}
}

// TestProxyDeterminism: the same seed and the same chunk sequence produce
// byte-identical corruption, so a failing chaos run replays from its seed.
// Driven over net.Pipe (synchronous write/read pairing) so chunk boundaries
// are deterministic — over real TCP the kernel decides them.
func TestProxyDeterminism(t *testing.T) {
	const chunk, chunks = 512, 64
	payload := make([]byte, chunk*chunks)
	rand.New(rand.NewSource(11)).Read(payload)

	run := func() []byte {
		srcA, srcB := net.Pipe()
		dstA, dstB := net.Pipe()
		p := &Proxy{cfg: Config{CorruptProb: 0.5, ChunkSize: chunk}, done: make(chan struct{})}
		defer close(p.done)
		go p.pump(dstA, srcB, rand.New(rand.NewSource(42)), &p.bytesIn)
		go func() {
			for i := 0; i < chunks; i++ {
				srcA.Write(payload[i*chunk : (i+1)*chunk])
			}
			srcA.Close()
		}()
		got, err := io.ReadAll(dstB)
		if err != nil {
			t.Error(err)
		}
		return got
	}

	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed and traffic produced different corruption")
	}
	if len(a) != len(payload) {
		t.Fatalf("forwarded %d bytes, want %d", len(a), len(payload))
	}
	if bytes.Equal(a, payload) {
		t.Fatal("CorruptProb=0.5 corrupted nothing across 64 chunks")
	}
}

// TestProxyCloseSeversConnections: Close kills live proxied connections and
// returns without leaking pump goroutines (Close waits on them).
func TestProxyCloseSeversConnections(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String(), Config{Latency: time.Hour}) // pumps stuck sleeping
	if err != nil {
		t.Fatal(err)
	}
	nc := dialProxy(t, p)
	nc.Write([]byte("stuck"))
	time.Sleep(20 * time.Millisecond) // let the pump enter its sleep

	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on a sleeping pump")
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived proxy Close")
	}
}
