package sqlparser

import (
	"strings"
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/datagen"
	"autostats/internal/query"
)

func schema(t testing.TB) *catalog.Schema {
	t.Helper()
	return datagen.Schema()
}

func parseSel(t *testing.T, sql string) *query.Select {
	t.Helper()
	q, err := ParseSelect(schema(t), sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return q
}

func TestParseSimpleSelect(t *testing.T) {
	q := parseSel(t, "SELECT * FROM lineitem WHERE l_quantity < 10")
	if len(q.Tables) != 1 || q.Tables[0] != "lineitem" {
		t.Errorf("tables = %v", q.Tables)
	}
	if len(q.Filters) != 1 || q.Filters[0].Op != query.Lt || q.Filters[0].Col.Column != "l_quantity" {
		t.Errorf("filters = %v", q.Filters)
	}
	if q.Filters[0].Val.T != catalog.Float {
		t.Errorf("literal should coerce to the column type Float, got %v", q.Filters[0].Val.T)
	}
}

func TestParseJoinAndAliases(t *testing.T) {
	q := parseSel(t, "SELECT o.o_orderkey FROM orders o, lineitem l WHERE l.l_orderkey = o.o_orderkey AND o.o_totalprice > 100")
	if len(q.Joins) != 1 {
		t.Fatalf("joins = %v", q.Joins)
	}
	j := q.Joins[0]
	if j.Left.Table != "lineitem" || j.Right.Table != "orders" {
		t.Errorf("join sides = %v", j)
	}
	if len(q.Projection) != 1 || q.Projection[0].Table != "orders" {
		t.Errorf("projection = %v", q.Projection)
	}
}

func TestParseUnqualifiedResolution(t *testing.T) {
	q := parseSel(t, "SELECT * FROM orders, customer WHERE o_custkey = c_custkey AND c_acctbal > 0")
	if len(q.Joins) != 1 || q.Joins[0].Left.Table != "orders" {
		t.Errorf("joins = %v", q.Joins)
	}
	if q.Filters[0].Col.Table != "customer" {
		t.Errorf("filter resolved to %v", q.Filters[0].Col)
	}
}

func TestParseAmbiguousColumn(t *testing.T) {
	// l_partkey exists in lineitem only, but comment columns collide? Use a
	// genuinely ambiguous name by joining two tables that share none —
	// TPC-D column names are prefixed, so craft ambiguity via a small
	// schema instead.
	s := catalog.NewSchema()
	_ = s.AddTable(catalog.NewTable("a", catalog.Column{Name: "id", Type: catalog.Int}, catalog.Column{Name: "ka", Type: catalog.Int}))
	_ = s.AddTable(catalog.NewTable("b", catalog.Column{Name: "id", Type: catalog.Int}, catalog.Column{Name: "kb", Type: catalog.Int}))
	if _, err := Parse(s, "SELECT * FROM a, b WHERE id = 1 AND ka = kb"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity error, got %v", err)
	}
	if _, err := Parse(s, "SELECT * FROM a, b WHERE a.id = 1 AND ka = kb"); err != nil {
		t.Errorf("qualified reference should parse: %v", err)
	}
}

func TestParseBetweenDesugars(t *testing.T) {
	q := parseSel(t, "SELECT * FROM lineitem WHERE l_discount BETWEEN 0.05 AND 0.07")
	if len(q.Filters) != 2 {
		t.Fatalf("filters = %v", q.Filters)
	}
	if q.Filters[0].Op != query.Ge || q.Filters[1].Op != query.Le {
		t.Errorf("BETWEEN ops = %v %v", q.Filters[0].Op, q.Filters[1].Op)
	}
}

func TestParseGroupOrderDistinct(t *testing.T) {
	q := parseSel(t, "SELECT DISTINCT l_returnflag FROM lineitem")
	if !q.Distinct || q.GroupVarID < 0 {
		t.Error("DISTINCT not recognized")
	}
	q = parseSel(t, "SELECT l_returnflag FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag")
	if len(q.GroupBy) != 1 || len(q.OrderBy) != 1 {
		t.Errorf("group/order = %v / %v", q.GroupBy, q.OrderBy)
	}
}

func TestParseDateAndStringLiterals(t *testing.T) {
	q := parseSel(t, "SELECT * FROM orders WHERE o_orderdate < DATE 9000 AND o_orderpriority = '1-URGENT'")
	if q.Filters[0].Val.T != catalog.Date || q.Filters[0].Val.I != 9000 {
		t.Errorf("date literal = %v", q.Filters[0].Val)
	}
	if q.Filters[1].Val.S != "1-URGENT" {
		t.Errorf("string literal = %v", q.Filters[1].Val)
	}
}

func TestParseEscapedQuote(t *testing.T) {
	s := catalog.NewSchema()
	_ = s.AddTable(catalog.NewTable("t", catalog.Column{Name: "s", Type: catalog.String}))
	q, err := ParseSelect(s, "SELECT * FROM t WHERE s = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Filters[0].Val.S != "it's" {
		t.Errorf("escaped quote = %q", q.Filters[0].Val.S)
	}
}

func TestParseIntLiteralCoercions(t *testing.T) {
	// Int literal against a float column becomes Float.
	q := parseSel(t, "SELECT * FROM lineitem WHERE l_quantity > 10")
	if q.Filters[0].Val.T != catalog.Float || q.Filters[0].Val.F != 10 {
		t.Errorf("coercion to float: %v", q.Filters[0].Val)
	}
	// Bare int against a date column becomes Date.
	q = parseSel(t, "SELECT * FROM orders WHERE o_orderdate >= 8400")
	if q.Filters[0].Val.T != catalog.Date {
		t.Errorf("coercion to date: %v", q.Filters[0].Val)
	}
}

func TestParseDML(t *testing.T) {
	s := schema(t)
	stmt, err := Parse(s, "INSERT INTO region VALUES (9, 'NOWHERE', 'c')")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*query.Insert)
	if ins.Table != "region" || len(ins.Values) != 3 || ins.Values[0].I != 9 {
		t.Errorf("insert = %+v", ins)
	}
	stmt, err = Parse(s, "DELETE FROM region WHERE r_regionkey = 9")
	if err != nil {
		t.Fatal(err)
	}
	del := stmt.(*query.Delete)
	if del.Table != "region" || len(del.Filters) != 1 {
		t.Errorf("delete = %+v", del)
	}
	stmt, err = Parse(s, "UPDATE region SET r_name = 'X' WHERE r_regionkey = 2")
	if err != nil {
		t.Fatal(err)
	}
	upd := stmt.(*query.Update)
	if upd.SetCol != "r_name" || upd.SetVal.S != "X" {
		t.Errorf("update = %+v", upd)
	}
}

func TestParseInsertArityErrors(t *testing.T) {
	s := schema(t)
	if _, err := Parse(s, "INSERT INTO region VALUES (1, 'A')"); err == nil {
		t.Error("expected too-few-values error")
	}
	if _, err := Parse(s, "INSERT INTO region VALUES (1, 'A', 'c', 4)"); err == nil {
		t.Error("expected too-many-values error")
	}
}

func TestParseErrors(t *testing.T) {
	s := schema(t)
	for _, bad := range []string{
		"",
		"SELEC * FROM region",
		"SELECT * FROM nosuch",
		"SELECT * FROM region WHERE r_nope = 1",
		"SELECT * FROM region WHERE r_regionkey <",
		"SELECT * FROM region trailing WHERE r_regionkey = 1 garbage extra",
		"SELECT * FROM lineitem, orders WHERE l_orderkey < o_orderkey", // non-equi join
		"SELECT * FROM region WHERE r_name = 'unterminated",
		"DELETE FROM region WHERE r_regionkey = r_regionkey", // same-table col-col
	} {
		if _, err := Parse(s, bad); err == nil {
			t.Errorf("expected parse error for %q", bad)
		}
	}
}

func TestParseRejectsIncompatibleLiterals(t *testing.T) {
	s := schema(t)
	for _, bad := range []string{
		"SELECT * FROM orders WHERE o_orderkey = 'x'",       // string vs INT
		"SELECT * FROM nation WHERE n_name = 7",             // number vs VARCHAR
		"SELECT * FROM orders WHERE o_orderdate = 'x'",      // string vs DATE
		"SELECT * FROM orders WHERE o_orderkey = DATE 100",  // DATE vs INT
		"SELECT * FROM nation WHERE n_name BETWEEN 1 AND 2", // numeric BETWEEN on VARCHAR
		"SELECT o_custkey FROM orders GROUP BY o_custkey HAVING COUNT(*) > 'x'",
	} {
		if _, err := Parse(s, bad); err == nil {
			t.Errorf("expected literal-type error for %q", bad)
		}
	}
	// Cross-numeric coercion must stay legal.
	for _, good := range []string{
		"SELECT * FROM orders WHERE o_totalprice > 100", // int literal, FLOAT column
		"SELECT * FROM orders WHERE o_orderkey < 10.5",  // float literal, INT column
		"SELECT * FROM orders WHERE o_orderdate = 8035", // bare number, DATE column
		"SELECT * FROM orders WHERE o_orderdate = DATE 8035",
	} {
		if _, err := Parse(s, good); err != nil {
			t.Errorf("parse %q: %v", good, err)
		}
	}
}

func TestParseSelectRejectsDML(t *testing.T) {
	if _, err := ParseSelect(schema(t), "DELETE FROM region"); err == nil {
		t.Error("ParseSelect must reject DML")
	}
}

func TestParseSemicolonTolerated(t *testing.T) {
	if _, err := Parse(schema(t), "SELECT * FROM region;"); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
}
