package sqlparser

import (
	"testing"
)

func kinds(toks []token) []tokenKind {
	out := make([]tokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a.b, c FROM t WHERE x >= 1.5e2 AND y <> 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var idents, nums, strs, puncts int
	for _, tok := range toks {
		switch tok.kind {
		case tokIdent:
			idents++
		case tokNumber:
			nums++
		case tokString:
			strs++
		case tokPunct:
			puncts++
		}
	}
	if idents != 10 || nums != 1 || strs != 1 {
		t.Errorf("lexed idents=%d nums=%d strs=%d puncts=%d: %v", idents, nums, strs, puncts, toks)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"42":      "42",
		"-7":      "-7",
		"3.14":    "3.14",
		"1e5":     "1e5",
		"2.5E-3":  "2.5E-3",
		"1.5e+10": "1.5e+10",
	}
	for in, want := range cases {
		toks, err := lex(in)
		if err != nil {
			t.Fatalf("lex(%q): %v", in, err)
		}
		if toks[0].kind != tokNumber || toks[0].text != want {
			t.Errorf("lex(%q) = %v (%q)", in, toks[0].kind, toks[0].text)
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := lex("< <= > >= <> != = ( ) , . *")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<", "<=", ">", ">=", "<>", "<>", "=", "(", ")", ",", ".", "*"}
	for i, w := range want {
		if toks[i].kind != tokPunct || toks[i].text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].text, w)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := lex("'a''b'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokString || toks[0].text != "a'b" {
		t.Errorf("escaped string = %q", toks[0].text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", "a ! b", "@"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("expected lex error for %q", bad)
		}
	}
}

func TestLexIdentWithHash(t *testing.T) {
	// Generated data uses labels like Brand#23; '#' is an identifier char.
	toks, err := lex("Brand#23")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokIdent || toks[0].text != "Brand#23" {
		t.Errorf("ident = %q", toks[0].text)
	}
}

func TestLexSemicolonIgnored(t *testing.T) {
	toks, err := lex("a;")
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds(toks)) != 2 { // ident + EOF
		t.Errorf("tokens = %v", toks)
	}
}
