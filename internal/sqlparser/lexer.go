// Package sqlparser parses the SQL subset the system works with (normalized
// SPJ queries with GROUP BY/ORDER BY, plus INSERT/UPDATE/DELETE) into the
// query AST. Statements rendered by the AST's SQL() methods parse back to
// equal statements, which the workload serializer relies on.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , . * = < > <= >= <>
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	input string
	pos   int
	toks  []token
}

func lex(input string) ([]token, error) {
	l := &lexer{input: input}
	for {
		if err := l.skipSpace(); err != nil {
			return nil, err
		}
		if l.pos >= len(l.input) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.input[l.pos]
		switch {
		case isIdentStart(c):
			l.lexIdent()
		case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.input) && l.input[l.pos+1] >= '0' && l.input[l.pos+1] <= '9':
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '<':
			if l.pos+1 < len(l.input) && (l.input[l.pos+1] == '=' || l.input[l.pos+1] == '>') {
				l.emit(tokPunct, l.input[l.pos:l.pos+2], start)
				l.pos += 2
			} else {
				l.emit(tokPunct, "<", start)
				l.pos++
			}
		case c == '>':
			if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
				l.emit(tokPunct, ">=", start)
				l.pos += 2
			} else {
				l.emit(tokPunct, ">", start)
				l.pos++
			}
		case c == '!':
			if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
				l.emit(tokPunct, "<>", start)
				l.pos += 2
			} else {
				return nil, fmt.Errorf("sqlparser: unexpected '!' at %d", l.pos)
			}
		case strings.ContainsRune("(),.*=", rune(c)):
			l.emit(tokPunct, string(c), start)
			l.pos++
		case c == ';':
			l.pos++ // statement terminator, ignored
		default:
			return nil, fmt.Errorf("sqlparser: unexpected character %q at %d", c, l.pos)
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

// skipSpace consumes whitespace and comments (`-- …` to end of line and
// `/* … */` blocks). Comments are pure token separators: a statement that
// differs only in comments lexes to the same token stream, which the plan
// cache's canonical-text keying relies on. An unterminated block comment is
// a lex error.
func (l *lexer) skipSpace() error {
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case unicode.IsSpace(rune(c)):
			l.pos++
		case c == '-' && l.pos+1 < len(l.input) && l.input[l.pos+1] == '-':
			l.pos += 2
			for l.pos < len(l.input) && l.input[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.input) && l.input[l.pos+1] == '*':
			start := l.pos
			l.pos += 2
			for {
				if l.pos+1 >= len(l.input) {
					return fmt.Errorf("sqlparser: unterminated block comment at %d", start)
				}
				if l.input[l.pos] == '*' && l.input[l.pos+1] == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '#'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
		l.pos++
	}
	l.emit(tokIdent, l.input[start:l.pos], start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.input[l.pos] == '-' {
		l.pos++
	}
	seenDot, seenExp := false, false
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos+1 < len(l.input):
			next := l.input[l.pos+1]
			if next >= '0' && next <= '9' || next == '-' || next == '+' {
				seenExp = true
				l.pos += 2
			} else {
				l.emit(tokNumber, l.input[start:l.pos], start)
				return
			}
		default:
			l.emit(tokNumber, l.input[start:l.pos], start)
			return
		}
	}
	l.emit(tokNumber, l.input[start:l.pos], start)
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.input) && l.input[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokString, sb.String(), start)
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparser: unterminated string literal at %d", start)
}
