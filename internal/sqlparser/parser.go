package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"autostats/internal/catalog"
	"autostats/internal/query"
)

// Parse parses one SQL statement, resolving table aliases and unqualified
// column names against the schema and coercing literals to column types.
// SELECT statements come back Normalize()d (selectivity variables assigned).
func Parse(schema *catalog.Schema, sql string) (query.Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{schema: schema, toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if !p.atKeyword("") && p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sqlparser: trailing input at %d: %q", p.peek().pos, p.peek().text)
	}
	return stmt, nil
}

// ParseSelect parses a statement that must be a SELECT.
func ParseSelect(schema *catalog.Schema, sql string) (*query.Select, error) {
	stmt, err := Parse(schema, sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*query.Select)
	if !ok {
		return nil, fmt.Errorf("sqlparser: expected a SELECT statement, got %T", stmt)
	}
	return sel, nil
}

type parser struct {
	schema *catalog.Schema
	toks   []token
	pos    int

	// aliases maps alias -> physical table name for the current query.
	aliases map[string]string
	tables  []string
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return fmt.Errorf("sqlparser: expected %s at %d, got %q", kw, p.peek().pos, p.peek().text)
	}
	p.next()
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.peek()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("sqlparser: expected %q at %d, got %q", s, t.pos, t.text)
	}
	p.next()
	return nil
}

func (p *parser) atPunct(s string) bool {
	t := p.peek()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) parseStatement() (query.Statement, error) {
	switch {
	case p.atKeyword("SELECT"):
		return p.parseSelect()
	case p.atKeyword("INSERT"):
		return p.parseInsert()
	case p.atKeyword("DELETE"):
		return p.parseDelete()
	case p.atKeyword("UPDATE"):
		return p.parseUpdate()
	default:
		return nil, fmt.Errorf("sqlparser: expected SELECT, INSERT, DELETE or UPDATE at %d, got %q", p.peek().pos, p.peek().text)
	}
}

func (p *parser) parseSelect() (*query.Select, error) {
	p.next() // SELECT
	s := &query.Select{GroupVarID: -1}
	if p.atKeyword("DISTINCT") {
		p.next()
		s.Distinct = true
	}

	// Projection: defer column resolution until FROM is parsed. Items are
	// plain columns or aggregate expressions.
	star := false
	var items []projectionItem
	if p.atPunct("*") {
		p.next()
		star = true
	} else {
		for {
			item, err := p.parseProjectionItem()
			if err != nil {
				return nil, err
			}
			items = append(items, item)
			if !p.atPunct(",") {
				break
			}
			p.next()
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.parseFromList(); err != nil {
		return nil, err
	}
	s.Tables = p.tables

	if !star {
		for _, it := range items {
			if it.agg {
				agg, err := p.resolveAggregate(it)
				if err != nil {
					return nil, err
				}
				s.Aggregates = append(s.Aggregates, agg)
				continue
			}
			ref, err := p.resolveColumn(it.q, it.c)
			if err != nil {
				return nil, err
			}
			s.Projection = append(s.Projection, ref)
		}
	}

	if p.atKeyword("WHERE") {
		p.next()
		if err := p.parseConjuncts(s); err != nil {
			return nil, err
		}
	}
	if p.atKeyword("GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		cols, err := p.parseColumnRefList()
		if err != nil {
			return nil, err
		}
		s.GroupBy = cols
	}
	if p.atKeyword("HAVING") {
		p.next()
		for {
			h, err := p.parseHavingPred()
			if err != nil {
				return nil, err
			}
			s.Having = append(s.Having, h)
			if !p.atKeyword("AND") {
				break
			}
			p.next()
		}
	}
	if p.atKeyword("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		cols, err := p.parseColumnRefList()
		if err != nil {
			return nil, err
		}
		s.OrderBy = cols
	}
	s.Normalize()
	return s, nil
}

func (p *parser) parseFromList() error {
	p.aliases = make(map[string]string)
	p.tables = nil
	for {
		t := p.next()
		if t.kind != tokIdent {
			return fmt.Errorf("sqlparser: expected table name at %d, got %q", t.pos, t.text)
		}
		tbl, err := p.schema.Table(t.text)
		if err != nil {
			return err
		}
		name := strings.ToLower(tbl.Name)
		p.tables = append(p.tables, name)
		p.aliases[name] = name
		// Optional alias (a bare identifier that is not a clause keyword).
		if p.peek().kind == tokIdent && !p.isClauseKeyword(p.peek().text) {
			alias := strings.ToLower(p.next().text)
			p.aliases[alias] = name
		}
		if !p.atPunct(",") {
			return nil
		}
		p.next()
	}
}

func (p *parser) isClauseKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "WHERE", "GROUP", "ORDER", "AND", "BY", "SET", "VALUES", "HAVING":
		return true
	}
	return false
}

// projectionItem is a pre-resolution SELECT-list entry.
type projectionItem struct {
	agg       bool
	fn        query.AggFunc
	countStar bool
	q, c      string
}

// parseProjectionItem reads one SELECT-list entry: a column reference or an
// aggregate expression FUNC(col) / COUNT(*).
func (p *parser) parseProjectionItem() (projectionItem, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return projectionItem{}, fmt.Errorf("sqlparser: expected column or aggregate at %d, got %q", t.pos, t.text)
	}
	// Lookahead: IDENT '(' means an aggregate function.
	if p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
		p.next() // function name
		var fn query.AggFunc
		switch strings.ToUpper(t.text) {
		case "COUNT":
			fn = query.Count
		case "SUM":
			fn = query.Sum
		case "AVG":
			fn = query.Avg
		case "MIN":
			fn = query.Min
		case "MAX":
			fn = query.Max
		default:
			return projectionItem{}, fmt.Errorf("sqlparser: unknown aggregate function %q at %d", t.text, t.pos)
		}
		p.next() // (
		if p.atPunct("*") {
			if fn != query.Count {
				return projectionItem{}, fmt.Errorf("sqlparser: %s(*) is not valid; only COUNT(*)", strings.ToUpper(t.text))
			}
			p.next()
			if err := p.expectPunct(")"); err != nil {
				return projectionItem{}, err
			}
			return projectionItem{agg: true, fn: query.CountStar, countStar: true}, nil
		}
		q, c, err := p.parseColumnName()
		if err != nil {
			return projectionItem{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return projectionItem{}, err
		}
		return projectionItem{agg: true, fn: fn, q: q, c: c}, nil
	}
	q, c, err := p.parseColumnName()
	if err != nil {
		return projectionItem{}, err
	}
	return projectionItem{q: q, c: c}, nil
}

// resolveAggregate resolves a parsed aggregate item against the FROM list
// and validates SUM/AVG operand types.
func (p *parser) resolveAggregate(it projectionItem) (query.Aggregate, error) {
	agg := query.Aggregate{Func: it.fn}
	if it.countStar {
		return agg, nil
	}
	ref, err := p.resolveColumn(it.q, it.c)
	if err != nil {
		return query.Aggregate{}, err
	}
	if it.fn == query.Sum || it.fn == query.Avg {
		typ, err := p.columnType(ref)
		if err != nil {
			return query.Aggregate{}, err
		}
		if typ == catalog.String {
			return query.Aggregate{}, fmt.Errorf("sqlparser: %s over string column %s", it.fn, ref)
		}
	}
	agg.Col = ref
	return agg, nil
}

// parseHavingPred parses one HAVING conjunct: aggregate op literal.
func (p *parser) parseHavingPred() (query.HavingPred, error) {
	item, err := p.parseProjectionItem()
	if err != nil {
		return query.HavingPred{}, err
	}
	if !item.agg {
		return query.HavingPred{}, fmt.Errorf("sqlparser: HAVING requires an aggregate expression, got column %s", item.c)
	}
	agg, err := p.resolveAggregate(item)
	if err != nil {
		return query.HavingPred{}, err
	}
	opTok := p.next()
	if opTok.kind != tokPunct {
		return query.HavingPred{}, fmt.Errorf("sqlparser: expected comparison operator in HAVING at %d, got %q", opTok.pos, opTok.text)
	}
	var op query.CmpOp
	switch opTok.text {
	case "=":
		op = query.Eq
	case "<>":
		op = query.Ne
	case "<":
		op = query.Lt
	case "<=":
		op = query.Le
	case ">":
		op = query.Gt
	case ">=":
		op = query.Ge
	default:
		return query.HavingPred{}, fmt.Errorf("sqlparser: unknown operator %q in HAVING", opTok.text)
	}
	// Aggregate results are numeric; parse the literal as float (or int for
	// counts) — datum comparison handles Int/Float cross-type.
	want := catalog.Float
	if agg.Func == query.CountStar || agg.Func == query.Count {
		want = catalog.Int
	}
	val, err := p.parseLiteral(want)
	if err != nil {
		return query.HavingPred{}, err
	}
	return query.HavingPred{Agg: agg, Op: op, Val: val}, nil
}

// parseColumnName reads [qualifier.]column without resolving it.
func (p *parser) parseColumnName() (qualifier, column string, err error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", "", fmt.Errorf("sqlparser: expected column name at %d, got %q", t.pos, t.text)
	}
	if p.atPunct(".") {
		p.next()
		c := p.next()
		if c.kind != tokIdent {
			return "", "", fmt.Errorf("sqlparser: expected column after '.' at %d, got %q", c.pos, c.text)
		}
		return strings.ToLower(t.text), strings.ToLower(c.text), nil
	}
	return "", strings.ToLower(t.text), nil
}

// resolveColumn maps (qualifier, column) to a physical ColumnRef using the
// FROM list; unqualified names must be unambiguous across the FROM tables.
func (p *parser) resolveColumn(qualifier, column string) (query.ColumnRef, error) {
	if qualifier != "" {
		physical, ok := p.aliases[qualifier]
		if !ok {
			return query.ColumnRef{}, fmt.Errorf("sqlparser: unknown table or alias %q", qualifier)
		}
		tbl, err := p.schema.Table(physical)
		if err != nil {
			return query.ColumnRef{}, err
		}
		if tbl.ColumnIndex(column) < 0 {
			return query.ColumnRef{}, fmt.Errorf("sqlparser: table %s has no column %s", physical, column)
		}
		return query.ColumnRef{Table: physical, Column: column}, nil
	}
	var found []string
	for _, t := range p.tables {
		tbl, err := p.schema.Table(t)
		if err != nil {
			return query.ColumnRef{}, err
		}
		if tbl.ColumnIndex(column) >= 0 {
			found = append(found, t)
		}
	}
	switch len(found) {
	case 1:
		return query.ColumnRef{Table: found[0], Column: column}, nil
	case 0:
		return query.ColumnRef{}, fmt.Errorf("sqlparser: column %s not found in FROM tables", column)
	default:
		return query.ColumnRef{}, fmt.Errorf("sqlparser: column %s is ambiguous (tables %v)", column, found)
	}
}

func (p *parser) parseColumnRefList() ([]query.ColumnRef, error) {
	var out []query.ColumnRef
	for {
		q, c, err := p.parseColumnName()
		if err != nil {
			return nil, err
		}
		ref, err := p.resolveColumn(q, c)
		if err != nil {
			return nil, err
		}
		out = append(out, ref)
		if !p.atPunct(",") {
			return out, nil
		}
		p.next()
	}
}

// parseConjuncts parses cond (AND cond)* into s.Filters / s.Joins. BETWEEN
// desugars to >= AND <=. Redundant parentheses around conjunct groups are
// accepted and flattened — `(a = 1 AND b = 2) AND c = 3` parses identically
// to the unparenthesized form, so the canonical print (and therefore the
// plan-cache key) is stable across trivially-different spellings. Only
// conjunctions occur inside groups (the grammar has no OR/NOT), so
// flattening never changes semantics.
func (p *parser) parseConjuncts(s *query.Select) error {
	for {
		if p.atPunct("(") {
			p.next()
			if err := p.parseConjuncts(s); err != nil {
				return err
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
		} else if err := p.parseCondition(s); err != nil {
			return err
		}
		if !p.atKeyword("AND") {
			return nil
		}
		p.next()
	}
}

func (p *parser) parseCondition(s *query.Select) error {
	q, c, err := p.parseColumnName()
	if err != nil {
		return err
	}
	left, err := p.resolveColumn(q, c)
	if err != nil {
		return err
	}
	colType, err := p.columnType(left)
	if err != nil {
		return err
	}

	if p.atKeyword("BETWEEN") {
		p.next()
		lo, err := p.parseLiteral(colType)
		if err != nil {
			return err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return err
		}
		hi, err := p.parseLiteral(colType)
		if err != nil {
			return err
		}
		s.Filters = append(s.Filters,
			query.Filter{Col: left, Op: query.Ge, Val: lo},
			query.Filter{Col: left, Op: query.Le, Val: hi})
		return nil
	}

	opTok := p.next()
	if opTok.kind != tokPunct {
		return fmt.Errorf("sqlparser: expected comparison operator at %d, got %q", opTok.pos, opTok.text)
	}
	var op query.CmpOp
	switch opTok.text {
	case "=":
		op = query.Eq
	case "<>":
		op = query.Ne
	case "<":
		op = query.Lt
	case "<=":
		op = query.Le
	case ">":
		op = query.Gt
	case ">=":
		op = query.Ge
	default:
		return fmt.Errorf("sqlparser: unknown operator %q at %d", opTok.text, opTok.pos)
	}

	// Column-to-column with '=' is a join predicate; otherwise a literal RHS.
	if p.peek().kind == tokIdent && !p.atKeyword("DATE") && !p.atKeyword("NULL") {
		q2, c2, err := p.parseColumnName()
		if err != nil {
			return err
		}
		right, err := p.resolveColumn(q2, c2)
		if err != nil {
			return err
		}
		if op != query.Eq {
			return fmt.Errorf("sqlparser: only equi-join column comparisons are supported, got %s", op)
		}
		if strings.EqualFold(left.Table, right.Table) {
			return fmt.Errorf("sqlparser: same-table column comparison %s = %s is not supported", left, right)
		}
		s.Joins = append(s.Joins, query.JoinPred{Left: left, Right: right})
		return nil
	}

	val, err := p.parseLiteral(colType)
	if err != nil {
		return err
	}
	s.Filters = append(s.Filters, query.Filter{Col: left, Op: op, Val: val})
	return nil
}

func (p *parser) columnType(ref query.ColumnRef) (catalog.Type, error) {
	tbl, err := p.schema.Table(ref.Table)
	if err != nil {
		return 0, err
	}
	col, err := tbl.Column(ref.Column)
	if err != nil {
		return 0, err
	}
	return col.Type, nil
}

// parseLiteral reads a literal and coerces it to the column type. A literal
// whose type cannot compare with the column type (e.g. a quoted string
// against an INT column) is rejected here so the mismatch surfaces as a
// parse error instead of failing row-by-row at execution time.
func (p *parser) parseLiteral(want catalog.Type) (catalog.Datum, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		if want == catalog.String {
			return catalog.Datum{}, fmt.Errorf("sqlparser: numeric literal %q cannot compare with a VARCHAR column at %d", t.text, t.pos)
		}
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return catalog.Datum{}, fmt.Errorf("sqlparser: bad number %q at %d", t.text, t.pos)
			}
			if want == catalog.Int || want == catalog.Date {
				return catalog.Datum{T: want, I: int64(f)}, nil
			}
			return catalog.NewFloat(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return catalog.Datum{}, fmt.Errorf("sqlparser: bad number %q at %d", t.text, t.pos)
		}
		switch want {
		case catalog.Float:
			return catalog.NewFloat(float64(i)), nil
		case catalog.Date:
			return catalog.NewDate(i), nil
		default:
			return catalog.NewInt(i), nil
		}
	case t.kind == tokString:
		p.next()
		if want != catalog.String {
			return catalog.Datum{}, fmt.Errorf("sqlparser: string literal %q cannot compare with a %s column at %d", t.text, want, t.pos)
		}
		return catalog.NewString(t.text), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "DATE"):
		if want != catalog.Date {
			return catalog.Datum{}, fmt.Errorf("sqlparser: DATE literal cannot compare with a %s column at %d", want, t.pos)
		}
		p.next()
		n := p.next()
		if n.kind != tokNumber {
			return catalog.Datum{}, fmt.Errorf("sqlparser: expected day number after DATE at %d", n.pos)
		}
		i, err := strconv.ParseInt(n.text, 10, 64)
		if err != nil {
			return catalog.Datum{}, fmt.Errorf("sqlparser: bad date %q at %d", n.text, n.pos)
		}
		return catalog.NewDate(i), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "NULL"):
		p.next()
		return catalog.NewNull(want), nil
	default:
		return catalog.Datum{}, fmt.Errorf("sqlparser: expected literal at %d, got %q", t.pos, t.text)
	}
}

func (p *parser) parseInsert() (query.Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("sqlparser: expected table name at %d", t.pos)
	}
	tbl, err := p.schema.Table(t.text)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var vals []catalog.Datum
	for i := 0; ; i++ {
		if i >= len(tbl.Columns) {
			return nil, fmt.Errorf("sqlparser: too many values for table %s", tbl.Name)
		}
		v, err := p.parseLiteral(tbl.Columns[i].Type)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if p.atPunct(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if len(vals) != len(tbl.Columns) {
		return nil, fmt.Errorf("sqlparser: INSERT into %s has %d values, want %d", tbl.Name, len(vals), len(tbl.Columns))
	}
	return &query.Insert{Table: strings.ToLower(tbl.Name), Values: vals}, nil
}

// parseWhereFilters parses a WHERE clause of literal-only conjuncts for DML.
func (p *parser) parseWhereFilters(table string) ([]query.Filter, error) {
	p.aliases = map[string]string{table: table}
	p.tables = []string{table}
	s := &query.Select{}
	if err := p.parseConjuncts(s); err != nil {
		return nil, err
	}
	if len(s.Joins) > 0 {
		return nil, fmt.Errorf("sqlparser: join predicates are not allowed in DML WHERE clauses")
	}
	return s.Filters, nil
}

func (p *parser) parseDelete() (query.Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("sqlparser: expected table name at %d", t.pos)
	}
	tbl, err := p.schema.Table(t.text)
	if err != nil {
		return nil, err
	}
	d := &query.Delete{Table: strings.ToLower(tbl.Name)}
	if p.atKeyword("WHERE") {
		p.next()
		d.Filters, err = p.parseWhereFilters(d.Table)
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (p *parser) parseUpdate() (query.Statement, error) {
	p.next() // UPDATE
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("sqlparser: expected table name at %d", t.pos)
	}
	tbl, err := p.schema.Table(t.text)
	if err != nil {
		return nil, err
	}
	u := &query.Update{Table: strings.ToLower(tbl.Name)}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	c := p.next()
	if c.kind != tokIdent {
		return nil, fmt.Errorf("sqlparser: expected column name at %d", c.pos)
	}
	col, err := tbl.Column(c.text)
	if err != nil {
		return nil, err
	}
	u.SetCol = strings.ToLower(col.Name)
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	u.SetVal, err = p.parseLiteral(col.Type)
	if err != nil {
		return nil, err
	}
	if p.atKeyword("WHERE") {
		p.next()
		u.Filters, err = p.parseWhereFilters(u.Table)
		if err != nil {
			return nil, err
		}
	}
	return u, nil
}
