package sqlparser

import (
	"strings"
	"testing"

	"autostats/internal/catalog"
)

// fuzzSchema is a small two-table schema with a join edge, enough surface
// for the parser's table/column/index resolution paths without the cost of
// generating data.
func fuzzSchema() *catalog.Schema {
	s := catalog.NewSchema()
	emp := catalog.NewTable("emp",
		catalog.Column{Name: "e_id", Type: catalog.Int},
		catalog.Column{Name: "e_dept", Type: catalog.Int},
		catalog.Column{Name: "e_salary", Type: catalog.Float},
		catalog.Column{Name: "e_name", Type: catalog.String},
		catalog.Column{Name: "e_hired", Type: catalog.Date},
	)
	emp.PrimaryKey = "e_id"
	dept := catalog.NewTable("dept",
		catalog.Column{Name: "d_id", Type: catalog.Int},
		catalog.Column{Name: "d_name", Type: catalog.String},
	)
	dept.PrimaryKey = "d_id"
	if err := s.AddTable(emp); err != nil {
		panic(err)
	}
	if err := s.AddTable(dept); err != nil {
		panic(err)
	}
	if err := s.AddForeignKey(catalog.ForeignKey{Table: "emp", Column: "e_dept", RefTable: "dept", RefColumn: "d_id"}); err != nil {
		panic(err)
	}
	return s
}

// FuzzParse feeds arbitrary byte strings through the full lexer+parser.
// Properties checked:
//
//  1. Parse never panics — malformed input must come back as an error.
//  2. Any statement that parses renders via SQL() and re-parses, and the
//     second rendering is identical (print/parse is a projection: one
//     round trip reaches the fixed point).
func FuzzParse(f *testing.F) {
	schema := fuzzSchema()
	for _, seed := range []string{
		"SELECT * FROM emp",
		"SELECT * FROM emp WHERE emp.e_salary > 100.5 AND emp.e_name = 'bob'",
		"SELECT * FROM emp, dept WHERE emp.e_dept = dept.d_id ORDER BY emp.e_id",
		"SELECT emp.e_dept, COUNT(*), AVG(emp.e_salary) FROM emp GROUP BY emp.e_dept HAVING COUNT(*) > 2",
		"SELECT MIN(emp.e_hired) FROM emp WHERE emp.e_id <> 3",
		"INSERT INTO dept VALUES (1, 'eng')",
		"UPDATE emp SET e_salary = 0 WHERE emp.e_id = 1",
		"DELETE FROM emp WHERE emp.e_salary < 10",
		"SELECT * FROM emp WHERE emp.e_name = 'it''s'",
		"select * from EMP where EMP.E_ID >= -42",
		"SELECT * FROM emp WHERE",
		"SELECT COUNT( FROM emp",
		"'unterminated",
		"\x00\xff SELECT",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(schema, sql)
		if err != nil {
			return
		}
		rendered := stmt.SQL()
		stmt2, err := Parse(schema, rendered)
		if err != nil {
			t.Fatalf("rendering of a parsed statement does not re-parse:\n  input:    %q\n  rendered: %q\n  error:    %v", sql, rendered, err)
		}
		if got := stmt2.SQL(); got != rendered {
			t.Fatalf("print/parse did not reach a fixed point:\n  first:  %q\n  second: %q", rendered, got)
		}
	})
}

// FuzzLexer exercises the tokenizer alone on raw input: it must terminate
// and never panic, even on unterminated strings, stray bytes, or deeply
// repeated operators.
func FuzzLexer(f *testing.F) {
	for _, seed := range []string{
		"SELECT 'a' <> <= >= < > = , . ( ) * -1 2.5",
		"''''''",
		strings.Repeat("<", 100),
		"ident_with_underscores 0x 1e9 .5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := lex(input)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("token stream for %q does not end in EOF", input)
		}
		// Every token consumes at least one input byte, plus the EOF.
		if len(toks) > len(input)+1 {
			t.Fatalf("lexer produced %d tokens from %d input bytes: %q", len(toks), len(input), input)
		}
	})
}
