package query

import (
	"testing"

	"autostats/internal/catalog"
)

func TestCmpOpEval(t *testing.T) {
	three, five := catalog.NewInt(3), catalog.NewInt(5)
	cases := []struct {
		op   CmpOp
		a, b catalog.Datum
		want bool
	}{
		{Eq, three, three, true}, {Eq, three, five, false},
		{Ne, three, five, true}, {Ne, three, three, false},
		{Lt, three, five, true}, {Lt, five, three, false}, {Lt, three, three, false},
		{Le, three, three, true}, {Le, five, three, false},
		{Gt, five, three, true}, {Gt, three, three, false},
		{Ge, three, three, true}, {Ge, three, five, false},
	}
	for _, c := range cases {
		got, err := c.op.Eval(c.a, c.b)
		if err != nil {
			t.Fatalf("%v %s %v: %v", c.a, c.op, c.b, err)
		}
		if got != c.want {
			t.Errorf("%v %s %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestCmpOpNullSemantics(t *testing.T) {
	n := catalog.NewNull(catalog.Int)
	for _, op := range []CmpOp{Eq, Ne, Lt, Le, Gt, Ge} {
		a, err := op.Eval(n, catalog.NewInt(1))
		if err != nil {
			t.Fatal(err)
		}
		b, err := op.Eval(catalog.NewInt(1), n)
		if err != nil {
			t.Fatal(err)
		}
		if a || b {
			t.Errorf("%s with NULL must be false", op)
		}
	}
}

func TestCmpOpEvalIncompatibleTypes(t *testing.T) {
	for _, op := range []CmpOp{Eq, Ne, Lt, Le, Gt, Ge} {
		if _, err := op.Eval(catalog.NewString("x"), catalog.NewInt(1)); err == nil {
			t.Errorf("%s on string vs int: want error, got nil", op)
		}
	}
	// Int/float cross-comparison stays legal.
	if got, err := Lt.Eval(catalog.NewInt(1), catalog.NewFloat(1.5)); err != nil || !got {
		t.Errorf("1 < 1.5 = %v, %v; want true, nil", got, err)
	}
}

func TestCmpOpIsRange(t *testing.T) {
	for op, want := range map[CmpOp]bool{Eq: false, Ne: false, Lt: true, Le: true, Gt: true, Ge: true} {
		if op.IsRange() != want {
			t.Errorf("%s.IsRange() = %v", op, op.IsRange())
		}
	}
}

func TestNormalizeAssignsDenseVarIDs(t *testing.T) {
	q := &Select{
		Tables: []string{"a", "b"},
		Filters: []Filter{
			{Col: ColumnRef{"a", "x"}, Op: Lt, Val: catalog.NewInt(1)},
			{Col: ColumnRef{"b", "y"}, Op: Eq, Val: catalog.NewInt(2)},
		},
		Joins:   []JoinPred{{Left: ColumnRef{"a", "k"}, Right: ColumnRef{"b", "k"}}},
		GroupBy: []ColumnRef{{"a", "x"}},
	}
	q.Normalize()
	if q.Filters[0].VarID != 0 || q.Filters[1].VarID != 1 || q.Joins[0].VarID != 2 || q.GroupVarID != 3 {
		t.Errorf("var ids: %d %d %d %d", q.Filters[0].VarID, q.Filters[1].VarID, q.Joins[0].VarID, q.GroupVarID)
	}
	if q.NumVars() != 4 {
		t.Errorf("NumVars = %d", q.NumVars())
	}
	q.GroupBy = nil
	q.Normalize()
	if q.GroupVarID != -1 || q.NumVars() != 3 {
		t.Errorf("after removing group by: GroupVarID=%d NumVars=%d", q.GroupVarID, q.NumVars())
	}
}

func TestDistinctActsAsGrouping(t *testing.T) {
	q := &Select{
		Tables:     []string{"a"},
		Distinct:   true,
		Projection: []ColumnRef{{"a", "x"}},
	}
	q.Normalize()
	if q.GroupVarID < 0 {
		t.Error("SELECT DISTINCT must get a grouping selectivity variable")
	}
	cols := q.GroupingColumns()
	if len(cols) != 1 || cols[0].Column != "x" {
		t.Errorf("GroupingColumns = %v", cols)
	}
}

func TestFiltersOn(t *testing.T) {
	q := &Select{
		Tables: []string{"a", "b"},
		Filters: []Filter{
			{Col: ColumnRef{"a", "x"}, Op: Lt, Val: catalog.NewInt(1)},
			{Col: ColumnRef{"B", "y"}, Op: Eq, Val: catalog.NewInt(2)},
			{Col: ColumnRef{"a", "z"}, Op: Gt, Val: catalog.NewInt(3)},
		},
	}
	if got := q.FiltersOn("A"); len(got) != 2 {
		t.Errorf("FiltersOn(A) = %d filters", len(got))
	}
	if got := q.FiltersOn("b"); len(got) != 1 || got[0].Col.Column != "y" {
		t.Errorf("FiltersOn(b) = %v", got)
	}
}

func TestStatementSQLRendering(t *testing.T) {
	sel := &Select{
		Tables: []string{"emp", "dept"},
		Filters: []Filter{
			{Col: ColumnRef{"emp", "age"}, Op: Lt, Val: catalog.NewInt(30)},
		},
		Joins:   []JoinPred{{Left: ColumnRef{"emp", "deptid"}, Right: ColumnRef{"dept", "deptid"}}},
		GroupBy: []ColumnRef{{"dept", "name"}},
		OrderBy: []ColumnRef{{"dept", "name"}},
	}
	want := "SELECT * FROM emp, dept WHERE emp.age < 30 AND emp.deptid = dept.deptid GROUP BY dept.name ORDER BY dept.name"
	if got := sel.SQL(); got != want {
		t.Errorf("Select.SQL() = %q\nwant %q", got, want)
	}
	if !sel.IsQuery() {
		t.Error("Select.IsQuery")
	}

	ins := &Insert{Table: "emp", Values: []catalog.Datum{catalog.NewInt(1), catalog.NewString("bob")}}
	if got := ins.SQL(); got != "INSERT INTO emp VALUES (1, 'bob')" {
		t.Errorf("Insert.SQL() = %q", got)
	}
	del := &Delete{Table: "emp", Filters: []Filter{{Col: ColumnRef{"emp", "id"}, Op: Eq, Val: catalog.NewInt(7)}}}
	if got := del.SQL(); got != "DELETE FROM emp WHERE emp.id = 7" {
		t.Errorf("Delete.SQL() = %q", got)
	}
	upd := &Update{Table: "emp", SetCol: "age", SetVal: catalog.NewInt(31),
		Filters: []Filter{{Col: ColumnRef{"emp", "id"}, Op: Eq, Val: catalog.NewInt(7)}}}
	if got := upd.SQL(); got != "UPDATE emp SET age = 31 WHERE emp.id = 7" {
		t.Errorf("Update.SQL() = %q", got)
	}
	for _, s := range []Statement{ins, del, upd} {
		if s.IsQuery() {
			t.Errorf("%T.IsQuery() should be false", s)
		}
	}
}

func TestColumnRefKey(t *testing.T) {
	if (ColumnRef{"Orders", "O_OrderKey"}).Key() != "orders.o_orderkey" {
		t.Error("Key must lower-case")
	}
}

func TestSelectStar(t *testing.T) {
	q := &Select{Tables: []string{"t"}}
	if q.SQL() != "SELECT * FROM t" {
		t.Errorf("SQL = %q", q.SQL())
	}
	d := &Select{Tables: []string{"t"}, Distinct: true, Projection: []ColumnRef{{"t", "c"}}}
	if d.SQL() != "SELECT DISTINCT t.c FROM t" {
		t.Errorf("SQL = %q", d.SQL())
	}
}
