package query

import (
	"strings"
	"testing"

	"autostats/internal/catalog"
)

// fuzzFilters decodes the raw fuzz inputs into a two-predicate filter set.
// Operators and value types are derived modulo their domains so any byte
// pattern maps to a valid filter.
func fuzzFilters(t1, c1 string, op1 int, v1 int64, t2, c2 string, op2 int, v2 float64) []Filter {
	ops := []CmpOp{Eq, Ne, Lt, Le, Gt, Ge}
	mod := func(i int) CmpOp { return ops[((i%len(ops))+len(ops))%len(ops)] }
	return []Filter{
		{Col: ColumnRef{Table: t1, Column: c1}, Op: mod(op1), Val: catalog.NewInt(v1)},
		{Col: ColumnRef{Table: t2, Column: c2}, Op: mod(op2), Val: catalog.NewFloat(v2)},
	}
}

// FuzzFilterSignature checks the canonicalization contract of the feedback
// ledger keys on arbitrary filter components:
//
//  1. FilterSignature never panics and is deterministic;
//  2. it is invariant under predicate order — the property the feedback
//     subsystem relies on to match optimizer-side and executor-side keys;
//  3. case differences in table/column names never produce distinct
//     signatures (Key() lower-cases);
//  4. FilterColumns is likewise order- and case-insensitive, and every
//     reported column actually occurs in some predicate.
func FuzzFilterSignature(f *testing.F) {
	f.Add("orders", "o_custkey", 0, int64(5), "customer", "c_acctbal", 4, 10.5)
	f.Add("t", "c", 2, int64(-1), "t", "c", 2, -1.0)
	f.Add("", "", -7, int64(0), "T", "C", 99, 0.0)
	f.Add("emp", "e;salary&", 1, int64(1<<40), "emp", "e,name", 3, -1e300)
	// Unicode case folding is not a bijection (e.g. the lunate epsilon
	// U+03F5 upper-cases into the ordinary capital epsilon), so the
	// case-insensitivity property below only holds for identifiers whose
	// upper-casing folds back to the same lower form. The parser only
	// admits ASCII identifiers, which always satisfy this.
	foldStable := func(s string) bool {
		return strings.ToLower(strings.ToUpper(s)) == strings.ToLower(s)
	}
	f.Fuzz(func(t *testing.T, t1, c1 string, op1 int, v1 int64, t2, c2 string, op2 int, v2 float64) {
		fs := fuzzFilters(t1, c1, op1, v1, t2, c2, op2, v2)
		sig := FilterSignature(fs)
		if sig2 := FilterSignature(fs); sig2 != sig {
			t.Fatalf("signature not deterministic: %q vs %q", sig, sig2)
		}
		rev := []Filter{fs[1], fs[0]}
		if got := FilterSignature(rev); got != sig {
			t.Fatalf("signature depends on predicate order:\n  fwd: %q\n  rev: %q", sig, got)
		}
		if foldStable(t1) && foldStable(c1) && foldStable(t2) && foldStable(c2) {
			upper := []Filter{
				{Col: ColumnRef{Table: strings.ToUpper(t1), Column: strings.ToUpper(c1)}, Op: fs[0].Op, Val: fs[0].Val},
				{Col: ColumnRef{Table: strings.ToUpper(t2), Column: strings.ToUpper(c2)}, Op: fs[1].Op, Val: fs[1].Val},
			}
			if got := FilterSignature(upper); got != sig {
				t.Fatalf("signature is case-sensitive:\n  lower: %q\n  upper: %q", sig, got)
			}
			if got, want := FilterColumns(upper), FilterColumns(fs); got != want {
				t.Fatalf("FilterColumns is case-sensitive: %q vs %q", want, got)
			}
		}

		cols := FilterColumns(fs)
		if got := FilterColumns(rev); got != cols {
			t.Fatalf("FilterColumns depends on order: %q vs %q", cols, got)
		}
		if c1 == "" || c2 == "" || strings.ContainsRune(c1, ',') || strings.ContainsRune(c2, ',') {
			return // comma-joined rendering is ambiguous for these; membership check below needs clean separators
		}
		for _, c := range strings.Split(cols, ",") {
			if c != strings.ToLower(c1) && c != strings.ToLower(c2) {
				t.Fatalf("FilterColumns invented column %q (from %q/%q)", c, c1, c2)
			}
		}
	})
}

// FuzzFilterSignatureUniqueness cross-checks that two filter sets differing
// in a single component (column vs value swap of the same rendered text)
// do not collide, for the common case of well-formed identifiers.
func FuzzFilterSignatureUniqueness(f *testing.F) {
	f.Add("orders", "o_custkey", int64(5), int64(6))
	f.Add("t", "c", int64(0), int64(-1))
	f.Fuzz(func(t *testing.T, tbl, col string, a, b int64) {
		if a == b {
			return
		}
		fa := []Filter{{Col: ColumnRef{Table: tbl, Column: col}, Op: Eq, Val: catalog.NewInt(a)}}
		fb := []Filter{{Col: ColumnRef{Table: tbl, Column: col}, Op: Eq, Val: catalog.NewInt(b)}}
		if FilterSignature(fa) == FilterSignature(fb) {
			t.Fatalf("distinct constants %d and %d collide: %q", a, b, FilterSignature(fa))
		}
		ga := []Filter{{Col: ColumnRef{Table: tbl, Column: col}, Op: Lt, Val: catalog.NewInt(a)}}
		if FilterSignature(fa) == FilterSignature(ga) {
			t.Fatalf("distinct operators collide on %q", FilterSignature(fa))
		}
	})
}
