package query

import (
	"fmt"
	"strings"

	"autostats/internal/catalog"
)

// AggFunc is an aggregate function in a SELECT list.
type AggFunc int

// Aggregate functions. CountStar is COUNT(*); the others take a column.
const (
	CountStar AggFunc = iota
	Count
	Sum
	Avg
	Min
	Max
)

// String renders the SQL function name.
func (f AggFunc) String() string {
	switch f {
	case CountStar, Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// Aggregate is one aggregate expression, e.g. SUM(l_quantity).
type Aggregate struct {
	Func AggFunc
	// Col is the aggregated column (ignored for CountStar).
	Col ColumnRef
}

// SQL renders the aggregate expression.
func (a Aggregate) SQL() string {
	if a.Func == CountStar {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Col)
}

// Key returns the canonical output-column key of the aggregate, used by the
// executor's result column map (e.g. "count(*)", "sum(lineitem.l_quantity)").
func (a Aggregate) Key() string {
	if a.Func == CountStar {
		return "count(*)"
	}
	return strings.ToLower(a.Func.String()) + "(" + a.Col.Key() + ")"
}

// HavingPred is a HAVING-clause predicate: aggregate op literal. HAVING
// predicates filter aggregate OUTPUT rows; they carry no selectivity
// variable because no statistics can exist on aggregate results — the
// optimizer prices them with a fixed heuristic, which is consistent with
// the paper's framework (only WHERE and GROUP BY columns are
// statistics-relevant).
type HavingPred struct {
	Agg Aggregate
	Op  CmpOp
	Val catalog.Datum
}

// SQL renders the predicate.
func (h HavingPred) SQL() string {
	return fmt.Sprintf("%s %s %s", h.Agg.SQL(), h.Op, h.Val)
}
