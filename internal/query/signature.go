package query

import (
	"sort"
	"strings"
)

// FilterSignature renders a conjunctive filter set into a canonical,
// order-independent signature string: each predicate as
// "table.column op value" (lower-cased column key), sorted and joined with
// "&". Two filter sets that differ only in clause order produce the same
// signature, so it can key execution-feedback entries and selectivity
// corrections shared by the optimizer and the executor.
func FilterSignature(filters []Filter) string {
	if len(filters) == 0 {
		return ""
	}
	parts := make([]string, len(filters))
	for i, f := range filters {
		parts[i] = f.Col.Key() + f.Op.String() + f.Val.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// FilterColumns returns the distinct lower-cased column names referenced by
// the filter set, sorted and comma-joined. It is the "column set" component
// of a feedback ledger key: predicates over the same columns with different
// constants share it, which lets per-column accuracy summaries aggregate
// across query constants.
func FilterColumns(filters []Filter) string {
	if len(filters) == 0 {
		return ""
	}
	seen := make(map[string]bool, len(filters))
	cols := make([]string, 0, len(filters))
	for _, f := range filters {
		c := strings.ToLower(f.Col.Column)
		if !seen[c] {
			seen[c] = true
			cols = append(cols, c)
		}
	}
	sort.Strings(cols)
	return strings.Join(cols, ",")
}
