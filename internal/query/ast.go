// Package query defines the statement AST shared by the SQL parser, the
// optimizer, the executor, the workload generator and the statistics
// selection algorithms.
//
// The language is the normalized Select-Project-Join subset the paper works
// with (§4.1, footnote 3): conjunctive predicates, equi-joins, GROUP BY,
// ORDER BY, plus INSERT/UPDATE/DELETE statements for update workloads. NOT
// and disjunction are not representable, matching the paper's normalization
// assumption.
package query

import (
	"fmt"
	"strings"

	"autostats/internal/catalog"
)

// ColumnRef names a column of a table. Table is the resolved physical table
// name (aliases are resolved by the parser).
type ColumnRef struct {
	Table  string
	Column string
}

// Key returns the canonical lower-case "table.column" form used as map keys.
func (c ColumnRef) Key() string {
	return strings.ToLower(c.Table) + "." + strings.ToLower(c.Column)
}

func (c ColumnRef) String() string { return c.Table + "." + c.Column }

// CmpOp is a comparison operator in a selection predicate.
type CmpOp int

// Comparison operators. NOT is excluded by normalization; != (Ne) is allowed
// and treated as a residual predicate by the optimizer.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String renders the SQL operator.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return "?"
	}
}

// IsRange reports whether the operator is an inequality (range) comparison.
// The distinction matters for magic numbers: optimizers use different
// default selectivities for equality and range predicates.
func (op CmpOp) IsRange() bool { return op == Lt || op == Le || op == Gt || op == Ge }

// Eval applies the comparison to two datums with SQL NULL semantics
// (NULL never satisfies a predicate). Comparing incompatible types — e.g. a
// string literal against an integer column — returns an error rather than a
// silent verdict so the executor can fail the query.
func (op CmpOp) Eval(a, b catalog.Datum) (bool, error) {
	if a.Null || b.Null {
		return false, nil
	}
	c, err := a.TryCompare(b)
	if err != nil {
		return false, err
	}
	switch op {
	case Eq:
		return c == 0, nil
	case Ne:
		return c != 0, nil
	case Lt:
		return c < 0, nil
	case Le:
		return c <= 0, nil
	case Gt:
		return c > 0, nil
	case Ge:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("query: unknown comparison operator %d", int(op))
	}
}

// Filter is a single-table selection predicate: column op literal.
// VarID is the predicate's selectivity-variable identity within its query
// (§4.1: "the dependence of the optimizer on statistics can be conceptually
// characterized by a set of selectivity variables, one per predicate").
type Filter struct {
	VarID int
	Col   ColumnRef
	Op    CmpOp
	Val   catalog.Datum
}

func (f Filter) String() string {
	return fmt.Sprintf("%s %s %s", f.Col, f.Op, f.Val)
}

// JoinPred is an equi-join predicate Left = Right between two tables.
type JoinPred struct {
	VarID int
	Left  ColumnRef
	Right ColumnRef
}

func (j JoinPred) String() string {
	return fmt.Sprintf("%s = %s", j.Left, j.Right)
}

// Statement is any SQL statement.
type Statement interface {
	// SQL renders the statement back to parseable SQL text.
	SQL() string
	// IsQuery reports whether the statement is a SELECT.
	IsQuery() bool
}

// Select is a normalized SPJ query with optional grouping and aggregation.
type Select struct {
	// Projection lists the output columns; nil means SELECT * unless
	// Aggregates are present.
	Projection []ColumnRef
	// Aggregates lists aggregate expressions in the SELECT list. With no
	// GROUP BY they form a scalar aggregate (one output row). Per §3.1,
	// aggregate arguments are NOT statistics-relevant columns; only WHERE
	// and GROUP BY columns are.
	Aggregates []Aggregate
	// Distinct marks SELECT DISTINCT; per §4.1 it is handled like GROUP BY
	// over the projection columns.
	Distinct bool
	// Tables are the physical table names in FROM order.
	Tables []string
	// Filters are the conjunctive single-table predicates.
	Filters []Filter
	// Joins are the conjunctive equi-join predicates.
	Joins []JoinPred
	// GroupBy lists grouping columns (empty if none).
	GroupBy []ColumnRef
	// Having lists HAVING-clause predicates over aggregate results.
	Having []HavingPred
	// OrderBy lists ordering columns. Per the paper's footnote 1, ORDER BY
	// columns are parsed but are NOT statistics-relevant.
	OrderBy []ColumnRef

	// GroupVarID is the selectivity variable of the GROUP BY / DISTINCT
	// clause (the distinct-fraction variable of §4.1), or -1 when absent.
	GroupVarID int
}

// IsQuery reports true.
func (s *Select) IsQuery() bool { return true }

// Normalize assigns dense selectivity-variable IDs: filters first, then
// joins, then the group-by clause. It must be called after construction or
// mutation and before optimization.
func (s *Select) Normalize() {
	id := 0
	for i := range s.Filters {
		s.Filters[i].VarID = id
		id++
	}
	for i := range s.Joins {
		s.Joins[i].VarID = id
		id++
	}
	if len(s.GroupBy) > 0 || (s.Distinct && len(s.Projection) > 0) {
		s.GroupVarID = id
	} else {
		s.GroupVarID = -1
	}
}

// NumVars returns the number of selectivity variables in the query.
func (s *Select) NumVars() int {
	n := len(s.Filters) + len(s.Joins)
	if s.GroupVarID >= 0 {
		n++
	}
	return n
}

// GroupingColumns returns the effective grouping columns: GROUP BY columns,
// or the projection for SELECT DISTINCT.
func (s *Select) GroupingColumns() []ColumnRef {
	if len(s.GroupBy) > 0 {
		return s.GroupBy
	}
	if s.Distinct {
		return s.Projection
	}
	return nil
}

// FiltersOn returns the filters that apply to the named table.
func (s *Select) FiltersOn(table string) []Filter {
	var out []Filter
	for _, f := range s.Filters {
		if strings.EqualFold(f.Col.Table, table) {
			out = append(out, f)
		}
	}
	return out
}

// SQL renders the query.
func (s *Select) SQL() string { return s.render(false) }

// Template renders the statement's parameterized canonical form: exactly the
// SQL() print with every comparison constant (WHERE filter and HAVING
// literals) replaced by '?'. Two statements share a template iff they differ
// only in those lifted constants, which is what the plan cache keys on.
func (s *Select) Template() string { return s.render(true) }

func (s *Select) render(paramize bool) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	switch {
	case len(s.Projection) == 0 && len(s.Aggregates) == 0:
		b.WriteString("*")
	default:
		writeCols(&b, s.Projection)
		for i, a := range s.Aggregates {
			if i > 0 || len(s.Projection) > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.SQL())
		}
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(s.Tables, ", "))
	conds := make([]string, 0, len(s.Filters)+len(s.Joins))
	for _, f := range s.Filters {
		if paramize {
			conds = append(conds, fmt.Sprintf("%s %s ?", f.Col, f.Op))
		} else {
			conds = append(conds, f.String())
		}
	}
	for _, j := range s.Joins {
		conds = append(conds, j.String())
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		writeCols(&b, s.GroupBy)
	}
	if len(s.Having) > 0 {
		b.WriteString(" HAVING ")
		parts := make([]string, len(s.Having))
		for i, h := range s.Having {
			if paramize {
				parts[i] = fmt.Sprintf("%s %s ?", h.Agg.SQL(), h.Op)
			} else {
				parts[i] = h.SQL()
			}
		}
		b.WriteString(strings.Join(parts, " AND "))
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		writeCols(&b, s.OrderBy)
	}
	return b.String()
}

func writeCols(b *strings.Builder, cols []ColumnRef) {
	for i, c := range cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
}

// Insert is INSERT INTO table VALUES (...). Values must match the table's
// column order.
type Insert struct {
	Table  string
	Values []catalog.Datum
}

// IsQuery reports false.
func (s *Insert) IsQuery() bool { return false }

// SQL renders the statement.
func (s *Insert) SQL() string {
	vals := make([]string, len(s.Values))
	for i, v := range s.Values {
		vals[i] = v.String()
	}
	return fmt.Sprintf("INSERT INTO %s VALUES (%s)", s.Table, strings.Join(vals, ", "))
}

// Delete is DELETE FROM table WHERE conjuncts.
type Delete struct {
	Table   string
	Filters []Filter
}

// IsQuery reports false.
func (s *Delete) IsQuery() bool { return false }

// SQL renders the statement.
func (s *Delete) SQL() string {
	sql := "DELETE FROM " + s.Table
	if len(s.Filters) > 0 {
		sql += " WHERE " + joinFilters(s.Filters)
	}
	return sql
}

// Update is UPDATE table SET col = val WHERE conjuncts.
type Update struct {
	Table   string
	SetCol  string
	SetVal  catalog.Datum
	Filters []Filter
}

// IsQuery reports false.
func (s *Update) IsQuery() bool { return false }

// SQL renders the statement.
func (s *Update) SQL() string {
	sql := fmt.Sprintf("UPDATE %s SET %s = %s", s.Table, s.SetCol, s.SetVal)
	if len(s.Filters) > 0 {
		sql += " WHERE " + joinFilters(s.Filters)
	}
	return sql
}

func joinFilters(fs []Filter) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return strings.Join(parts, " AND ")
}
