package protocol

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

// FuzzDecodeFrame throws arbitrary byte streams at the frame decoder — the
// exact bytes a hostile or broken peer could put on a connection. The
// invariants under fuzz:
//
//   - neither DecodeFrame nor ReadFrame ever panics;
//   - both agree on every input (same payload or equivalent error), so the
//     buffered and streaming paths cannot drift;
//   - a declared length above the cap is rejected without consuming payload
//     bytes, and a successfully decoded payload round-trips through
//     AppendFrame byte-for-byte;
//   - JSON unmarshalling of a decoded payload returns, never hangs or panics.
//
// The checked-in corpus under testdata/fuzz/FuzzDecodeFrame seeds the
// interesting shapes: valid frames, truncated header, truncated payload,
// oversized length, zero-length payload, and non-JSON payload bytes.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, []byte(`{"id":1,"op":"hello","version":1}`)))
	f.Add(AppendFrame(nil, []byte(``)))
	f.Add([]byte{0, 0})                   // short header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // absurd length
	f.Add([]byte{0, 0, 0, 8, 'p', 'a'})   // truncated payload
	f.Add(AppendFrame(nil, []byte("not json")))
	valid := AppendFrame(nil, []byte(`{"id":9,"op":"exec","tenant":"t","sql":"SELECT 1"}`))
	f.Add(append(valid, valid...)) // two frames back to back

	const maxFrame = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, rest, err := DecodeFrame(data, maxFrame)
		sp, serr := ReadFrame(bytes.NewReader(data), maxFrame)

		if err != nil {
			switch {
			case errors.Is(err, ErrShortFrame):
				if serr == nil {
					t.Fatalf("DecodeFrame short but ReadFrame succeeded on %q", data)
				}
				if !errors.Is(serr, io.EOF) && !errors.Is(serr, io.ErrUnexpectedEOF) {
					t.Fatalf("short frame: stream error %v, want EOF-ish", serr)
				}
			case errors.Is(err, ErrFrameTooLarge):
				if !errors.Is(serr, ErrFrameTooLarge) {
					t.Fatalf("size-cap disagreement: buffered %v, stream %v", err, serr)
				}
			default:
				t.Fatalf("unexpected DecodeFrame error %v", err)
			}
			return
		}
		if serr != nil {
			t.Fatalf("DecodeFrame ok but ReadFrame failed: %v", serr)
		}
		if !bytes.Equal(payload, sp) {
			t.Fatalf("payload disagreement: %q vs %q", payload, sp)
		}
		if len(payload)+headerSize+len(rest) != len(data) {
			t.Fatalf("frame accounting: %d payload + %d rest != %d input",
				len(payload), len(rest), len(data))
		}
		// Round-trip: re-encoding the payload reproduces the consumed bytes.
		if re := AppendFrame(nil, payload); !bytes.Equal(re, data[:len(data)-len(rest)]) {
			t.Fatalf("re-encode mismatch")
		}
		// Unmarshalling a decoded payload must return without panicking;
		// errors are fine (that is CodeBadRequest territory, not a crash).
		var req Request
		_ = json.Unmarshal(payload, &req)
	})
}
