package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	in := &Request{
		ID:     42,
		Op:     OpTune,
		Tenant: "acme",
		SQLs:   []string{"SELECT * FROM lineitem WHERE l_quantity > 45"},
		Tune:   &TuneParams{ThresholdPct: 10, Shrink: true, Parallelism: 2},
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, in, 0); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRequest(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Op != in.Op || out.Tenant != in.Tenant {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", out, in)
	}
	if len(out.SQLs) != 1 || out.SQLs[0] != in.SQLs[0] {
		t.Fatalf("SQLs lost: %+v", out.SQLs)
	}
	if out.Tune == nil || out.Tune.ThresholdPct != 10 || !out.Tune.Shrink || out.Tune.Parallelism != 2 {
		t.Fatalf("tune params lost: %+v", out.Tune)
	}
}

func TestResponseRoundTripAndErr(t *testing.T) {
	in := &Response{
		ID:   7,
		Exec: &ExecResult{Columns: []string{"a.b"}, Rows: [][]string{{"1"}}, ExecCost: 3.5},
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, in, 0); err != nil {
		t.Fatal(err)
	}
	out, err := ReadResponse(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != 7 || out.Exec == nil || out.Exec.ExecCost != 3.5 {
		t.Fatalf("roundtrip mismatch: %+v", out)
	}
	if out.Err() != nil {
		t.Fatalf("success response reported error %v", out.Err())
	}

	if err := ErrResponse(9, CodeOverloaded, "busy").Err(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded code should map to ErrOverloaded, got %v", err)
	}
	if err := ErrResponse(9, CodeDraining, "bye").Err(); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining code should map to ErrDraining, got %v", err)
	}
	if err := ErrResponse(9, CodeSQL, "boom").Err(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("sql error lost: %v", err)
	}
}

func TestDecodeFrameShortAndOversized(t *testing.T) {
	// Too short for a header.
	if _, _, err := DecodeFrame([]byte{0, 0}, 0); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("want ErrShortFrame for short header, got %v", err)
	}
	// Header present, payload truncated.
	frame := AppendFrame(nil, []byte(`{"id":1}`))
	if _, _, err := DecodeFrame(frame[:len(frame)-3], 0); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("want ErrShortFrame for truncated payload, got %v", err)
	}
	// Oversized declared length is rejected before any payload inspection.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	if _, _, err := DecodeFrame(hdr[:], 16); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// Two concatenated frames decode in order with the rest returned.
	buf := AppendFrame(AppendFrame(nil, []byte("one")), []byte("two"))
	p1, rest, err := DecodeFrame(buf, 0)
	if err != nil || string(p1) != "one" {
		t.Fatalf("first frame: %q %v", p1, err)
	}
	p2, rest, err := DecodeFrame(rest, 0)
	if err != nil || string(p2) != "two" || len(rest) != 0 {
		t.Fatalf("second frame: %q rest=%d %v", p2, len(rest), err)
	}
}

func TestReadFrameTruncatedStream(t *testing.T) {
	frame := AppendFrame(nil, []byte(`{"id":1,"op":"hello"}`))
	for cut := 0; cut < len(frame); cut++ {
		_, err := ReadFrame(bytes.NewReader(frame[:cut]), 0)
		if cut == 0 {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("cut=0: want io.EOF, got %v", err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: want io.ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

func TestReadFrameOversizedDoesNotRead(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(DefaultMaxFrame+1))
	r := bytes.NewReader(append(hdr[:], bytes.Repeat([]byte{'x'}, 64)...))
	if _, err := ReadFrame(r, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// The payload must not have been consumed: the cap check happens first.
	if r.Len() != 64 {
		t.Fatalf("oversized frame consumed payload bytes: %d left", r.Len())
	}
}

func TestEncodeFrameRespectsCap(t *testing.T) {
	big := &Response{ID: 1, Metrics: strings.Repeat("m", 1024)}
	if _, err := EncodeFrame(big, 64); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge from encode, got %v", err)
	}
}

func TestResponseErrRateLimitedAndTimeout(t *testing.T) {
	if err := ErrResponse(3, CodeRateLimited, "quota").Err(); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("rate_limited code should map to ErrRateLimited, got %v", err)
	}
	if err := ErrResponse(4, CodeTimeout, "deadline").Err(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("timeout code should map to ErrTimeout, got %v", err)
	}
}

// TestDecodeFrameAtMaxFrameBoundary pins the length-prefix edge cases: a
// payload of exactly DefaultMaxFrame decodes, one byte more is rejected by
// both the buffered and streaming paths, and the declared-length check uses
// the payload length alone (the 4 header bytes never count against the cap).
func TestDecodeFrameAtMaxFrameBoundary(t *testing.T) {
	exact := make([]byte, DefaultMaxFrame)
	for i := range exact {
		exact[i] = byte('a' + i%26)
	}
	frame := AppendFrame(nil, exact)

	payload, rest, err := DecodeFrame(frame, DefaultMaxFrame)
	if err != nil || len(payload) != DefaultMaxFrame || len(rest) != 0 {
		t.Fatalf("exactly-max frame: len=%d rest=%d err=%v", len(payload), len(rest), err)
	}
	if sp, serr := ReadFrame(bytes.NewReader(frame), DefaultMaxFrame); serr != nil || len(sp) != DefaultMaxFrame {
		t.Fatalf("exactly-max stream frame: len=%d err=%v", len(sp), serr)
	}

	// One past the cap: rejected before any payload is consumed.
	over := AppendFrame(nil, append(exact, 'z'))
	if _, _, err := DecodeFrame(over, DefaultMaxFrame); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("max+1 buffered: want ErrFrameTooLarge, got %v", err)
	}
	r := bytes.NewReader(over)
	if _, err := ReadFrame(r, DefaultMaxFrame); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("max+1 stream: want ErrFrameTooLarge, got %v", err)
	}
	if r.Len() != DefaultMaxFrame+1 {
		t.Fatalf("max+1 stream consumed payload bytes: %d left, want %d", r.Len(), DefaultMaxFrame+1)
	}
}
