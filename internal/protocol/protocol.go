// Package protocol defines the wire protocol of the stats-as-a-service
// daemon (cmd/autostatsd): length-prefixed JSON frames carrying
// request/response messages with request IDs, error codes and a protocol
// version.
//
// Framing is deliberately boring — a 4-byte big-endian payload length
// followed by that many bytes of JSON — so that a frame can be decoded from
// a byte stream with exactly one size check and one unmarshal, and a
// malformed, truncated or oversized frame can never make a connection
// goroutine panic or read unboundedly (see DecodeFrame and the
// FuzzDecodeFrame corpus).
//
// Request IDs are chosen by the client and echoed verbatim in the response,
// which is what makes pipelining work: a client may have any number of
// requests outstanding on one connection, and responses may arrive in any
// order (the server's worker pool completes them as it pleases).
package protocol

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version spoken by this build. A client announces
// its version in Hello; the server rejects mismatches with CodeVersion so
// incompatible peers fail fast instead of mis-parsing each other.
const Version = 1

// DefaultMaxFrame caps the payload length of one frame (4 MiB). The length
// prefix is validated against the cap BEFORE any payload is read, so a
// hostile peer cannot make the server allocate or read gigabytes.
const DefaultMaxFrame = 4 << 20

// headerSize is the frame length prefix: uint32, big endian.
const headerSize = 4

// Operation names carried in Request.Op.
const (
	OpHello    = "hello"
	OpExec     = "exec"
	OpExplain  = "explain"
	OpTune     = "tune"
	OpStats    = "stats"
	OpMaintain = "maintain"
	OpMetrics  = "metrics"
)

// Error codes carried in Response.Code. An empty code means success.
const (
	CodeOK          = ""
	CodeOverloaded  = "overloaded"   // admission control fast-fail; retry later
	CodeDraining    = "draining"     // server is shutting down; reconnect elsewhere
	CodeBadRequest  = "bad_request"  // malformed or incomplete request
	CodeUnknownOp   = "unknown_op"   // Request.Op not recognized
	CodeVersion     = "version"      // protocol version mismatch in Hello
	CodeTenantLimit = "tenant_limit" // tenant table full; no new tenants admitted
	CodeRateLimited = "rate_limited" // per-tenant quota exceeded; retry after backoff
	CodeTimeout     = "timeout"      // server-side request deadline expired
	CodeSQL         = "sql_error"    // parse/plan/execution error for the statement
	CodeInternal    = "internal"     // unexpected server-side failure
)

// Frame-level errors.
var (
	// ErrFrameTooLarge reports a length prefix above the frame cap.
	ErrFrameTooLarge = errors.New("protocol: frame exceeds size limit")
	// ErrShortFrame reports a buffer that ends before the declared payload
	// (DecodeFrame only; a stream read reports io.ErrUnexpectedEOF instead).
	ErrShortFrame = errors.New("protocol: short frame")
	// ErrOverloaded is the admission-control backpressure signal: the
	// server's worker queue is full and the request was rejected without
	// queuing. Clients should back off and retry; the client package returns
	// this error (wrapped) for CodeOverloaded responses.
	ErrOverloaded = errors.New("protocol: server overloaded")
	// ErrDraining reports a request rejected because the server is shutting
	// down; in-flight requests still complete, new ones must go elsewhere.
	ErrDraining = errors.New("protocol: server draining")
	// ErrRateLimited reports a request rejected by the per-tenant quota
	// (token bucket). The request was never admitted; retry after backoff.
	ErrRateLimited = errors.New("protocol: tenant rate limited")
	// ErrTimeout reports a request whose server-side deadline expired while
	// it was executing. The operation was canceled through its context; side
	// effects of completed phases (e.g. statistics already built) remain.
	ErrTimeout = errors.New("protocol: request timed out on server")
)

// Request is one client→server message.
type Request struct {
	// ID is echoed in the matching Response; clients use it to pair
	// pipelined responses with their requests.
	ID uint64 `json:"id"`
	// Op selects the operation (Op* constants).
	Op string `json:"op"`
	// Tenant names the per-tenant database the request runs against. Ops
	// hello and metrics do not need one; a hello with a tenant sets the
	// connection's default tenant for subsequent requests.
	Tenant string `json:"tenant,omitempty"`
	// Version is the client's protocol version (hello only).
	Version int `json:"version,omitempty"`
	// SQL is the statement for exec/explain and the single-query tune.
	SQL string `json:"sql,omitempty"`
	// SQLs is the workload for tune; when set it takes precedence over SQL.
	SQLs []string `json:"sqls,omitempty"`
	// Tune carries optional tuning knobs for op tune.
	Tune *TuneParams `json:"tuneopts,omitempty"`
}

// TuneParams mirrors the facade's TuneOptions across the wire (zero values
// select the server defaults).
type TuneParams struct {
	ThresholdPct     float64 `json:"threshold_pct,omitempty"`
	Epsilon          float64 `json:"epsilon,omitempty"`
	SingleColumnOnly bool    `json:"single_column_only,omitempty"`
	Drop             bool    `json:"drop,omitempty"`
	Shrink           bool    `json:"shrink,omitempty"`
	Parallelism      int     `json:"parallelism,omitempty"`
}

// Response is one server→client message. Exactly one of the payload fields
// is set on success, matching the request's op.
type Response struct {
	// ID echoes the request ID.
	ID uint64 `json:"id"`
	// Code is empty on success, else one of the Code* constants.
	Code string `json:"code,omitempty"`
	// Error is a human-readable message accompanying a non-empty Code.
	Error string `json:"error,omitempty"`

	Hello    *HelloResult `json:"hello,omitempty"`
	Exec     *ExecResult  `json:"exec,omitempty"`
	Plan     string       `json:"plan,omitempty"`
	Tune     *TuneResult  `json:"tune,omitempty"`
	Stats    []StatRow    `json:"stats,omitempty"`
	Maintain *MaintResult `json:"maintain,omitempty"`
	// Metrics is the server registry rendered as "name value" text lines
	// (op metrics).
	Metrics string `json:"metrics,omitempty"`
}

// HelloResult announces the server to a new connection.
type HelloResult struct {
	Version  int    `json:"version"`
	Server   string `json:"server"`
	MaxFrame int    `json:"max_frame"`
	// Tenant confirms the connection's default tenant ("" when none).
	Tenant string `json:"tenant,omitempty"`
}

// ExecResult mirrors autostats.QueryResult across the wire.
type ExecResult struct {
	Columns       []string   `json:"columns,omitempty"`
	Rows          [][]string `json:"rows,omitempty"`
	ExecCost      float64    `json:"exec_cost"`
	EstimatedCost float64    `json:"estimated_cost,omitempty"`
	Plan          string     `json:"plan,omitempty"`
	Affected      int        `json:"affected,omitempty"`
	Degraded      []string   `json:"degraded,omitempty"`
}

// TuneResult mirrors autostats.TuneReport across the wire.
type TuneResult struct {
	Created           []string `json:"created,omitempty"`
	DropListed        []string `json:"drop_listed,omitempty"`
	Essential         []string `json:"essential,omitempty"`
	OptimizerCalls    int      `json:"optimizer_calls"`
	CreationCostUnits float64  `json:"creation_cost_units"`
	Degraded          bool     `json:"degraded,omitempty"`
	BuildFailures     []string `json:"build_failures,omitempty"`
}

// StatRow mirrors autostats.StatInfo across the wire.
type StatRow struct {
	ID         string   `json:"id"`
	Table      string   `json:"table"`
	Columns    []string `json:"columns"`
	Rows       int64    `json:"rows"`
	Distinct   int64    `json:"distinct"`
	Buckets    int      `json:"buckets"`
	InDropList bool     `json:"in_drop_list,omitempty"`
	Updates    int      `json:"updates,omitempty"`
}

// MaintResult reports one maintenance pass.
type MaintResult struct {
	TablesRefreshed int `json:"tables_refreshed"`
	StatsDropped    int `json:"stats_dropped"`
}

// AppendFrame appends payload to dst as one frame (length prefix + bytes).
func AppendFrame(dst, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// EncodeFrame marshals v as JSON and returns it as one frame. It refuses to
// build a frame larger than maxFrame (0 means DefaultMaxFrame), so a server
// cannot emit what a symmetric peer would reject.
func EncodeFrame(v any, maxFrame int) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("protocol: encode: %w", err)
	}
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(payload) > maxFrame {
		return nil, fmt.Errorf("%w: %d bytes > limit %d", ErrFrameTooLarge, len(payload), maxFrame)
	}
	return AppendFrame(make([]byte, 0, headerSize+len(payload)), payload), nil
}

// WriteFrame marshals v and writes it as one frame.
func WriteFrame(w io.Writer, v any, maxFrame int) error {
	frame, err := EncodeFrame(v, maxFrame)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// DecodeFrame decodes the first frame in buf, returning its payload and the
// remaining bytes. A buffer shorter than the header or the declared payload
// returns ErrShortFrame (the caller needs more data); a declared length above
// maxFrame (0 means DefaultMaxFrame) returns ErrFrameTooLarge. The payload
// aliases buf; callers that keep it must copy.
func DecodeFrame(buf []byte, maxFrame int) (payload, rest []byte, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(buf) < headerSize {
		return nil, buf, ErrShortFrame
	}
	n := binary.BigEndian.Uint32(buf)
	if n > uint32(maxFrame) {
		return nil, buf, fmt.Errorf("%w: %d bytes > limit %d", ErrFrameTooLarge, n, maxFrame)
	}
	if uint32(len(buf)-headerSize) < n {
		return nil, buf, ErrShortFrame
	}
	end := headerSize + int(n)
	return buf[headerSize:end], buf[end:], nil
}

// ReadFrame reads one frame's payload from r. The length prefix is validated
// against maxFrame (0 means DefaultMaxFrame) before any payload is read. A
// clean EOF before the first header byte returns io.EOF; a stream that ends
// mid-frame returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > uint32(maxFrame) {
		return nil, fmt.Errorf("%w: %d bytes > limit %d", ErrFrameTooLarge, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// ReadRequest reads and unmarshals one Request frame.
func ReadRequest(r io.Reader, maxFrame int) (*Request, error) {
	payload, err := ReadFrame(r, maxFrame)
	if err != nil {
		return nil, err
	}
	req := new(Request)
	if err := json.Unmarshal(payload, req); err != nil {
		return nil, fmt.Errorf("protocol: malformed request: %w", err)
	}
	return req, nil
}

// ReadResponse reads and unmarshals one Response frame.
func ReadResponse(r io.Reader, maxFrame int) (*Response, error) {
	payload, err := ReadFrame(r, maxFrame)
	if err != nil {
		return nil, err
	}
	resp := new(Response)
	if err := json.Unmarshal(payload, resp); err != nil {
		return nil, fmt.Errorf("protocol: malformed response: %w", err)
	}
	return resp, nil
}

// ErrResponse builds an error response echoing the request ID.
func ErrResponse(id uint64, code, msg string) *Response {
	return &Response{ID: id, Code: code, Error: msg}
}

// Err converts a non-OK response into a Go error (nil for success). The
// backpressure and drain codes map onto their sentinel errors so callers can
// errors.Is them.
func (r *Response) Err() error {
	switch r.Code {
	case CodeOK:
		return nil
	case CodeOverloaded:
		return fmt.Errorf("%w (request %d)", ErrOverloaded, r.ID)
	case CodeDraining:
		return fmt.Errorf("%w (request %d)", ErrDraining, r.ID)
	case CodeRateLimited:
		return fmt.Errorf("%w (request %d)", ErrRateLimited, r.ID)
	case CodeTimeout:
		return fmt.Errorf("%w (request %d)", ErrTimeout, r.ID)
	default:
		return fmt.Errorf("protocol: %s: %s", r.Code, r.Error)
	}
}
