package oracle

import (
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/sqlparser"
	"autostats/internal/storage"
)

// naiveDB builds a tiny two-table database with hand-picked rows so every
// expected result below can be computed by eye. NULLs are planted in both
// a join key and an aggregated column to pin the NULL semantics the naive
// evaluator must share with the real executor.
func naiveDB(t *testing.T) *storage.Database {
	t.Helper()
	schema := catalog.NewSchema()
	dept := catalog.NewTable("dept",
		catalog.Column{Name: "d_id", Type: catalog.Int},
		catalog.Column{Name: "d_name", Type: catalog.String},
	)
	dept.PrimaryKey = "d_id"
	emp := catalog.NewTable("emp",
		catalog.Column{Name: "e_id", Type: catalog.Int},
		catalog.Column{Name: "e_dept", Type: catalog.Int},
		catalog.Column{Name: "e_salary", Type: catalog.Float},
	)
	emp.PrimaryKey = "e_id"
	if err := schema.AddTable(dept); err != nil {
		t.Fatal(err)
	}
	if err := schema.AddTable(emp); err != nil {
		t.Fatal(err)
	}
	if err := schema.AddForeignKey(catalog.ForeignKey{Table: "emp", Column: "e_dept", RefTable: "dept", RefColumn: "d_id"}); err != nil {
		t.Fatal(err)
	}
	db, err := storage.NewDatabase("naive_test", schema)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := db.Table("dept")
	if err != nil {
		t.Fatal(err)
	}
	if err := dt.BulkLoad([]storage.Row{
		{catalog.NewInt(1), catalog.NewString("eng")},
		{catalog.NewInt(2), catalog.NewString("ops")},
		{catalog.NewInt(3), catalog.NewString("hr")},
	}); err != nil {
		t.Fatal(err)
	}
	et, err := db.Table("emp")
	if err != nil {
		t.Fatal(err)
	}
	if err := et.BulkLoad([]storage.Row{
		{catalog.NewInt(10), catalog.NewInt(1), catalog.NewFloat(100)},
		{catalog.NewInt(11), catalog.NewInt(1), catalog.NewFloat(200)},
		{catalog.NewInt(12), catalog.NewInt(2), catalog.NewFloat(50)},
		{catalog.NewInt(13), catalog.NewNull(catalog.Int), catalog.NewFloat(999)}, // NULL join key: joins to nothing
		{catalog.NewInt(14), catalog.NewInt(1), catalog.NewNull(catalog.Float)},   // NULL salary: skipped by aggregates
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func naiveRun(t *testing.T, db *storage.Database, sql string) *NaiveResult {
	t.Helper()
	q, err := sqlparser.ParseSelect(db.Schema, sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	res, err := NaiveExecute(db, q, 0)
	if err != nil {
		t.Fatalf("naive %q: %v", sql, err)
	}
	return res
}

func cell(t *testing.T, res *NaiveResult, row int, col string) catalog.Datum {
	t.Helper()
	pos, ok := res.Cols[col]
	if !ok {
		t.Fatalf("result has no column %q (have %v)", col, res.Cols)
	}
	return res.Rows[row][pos]
}

func TestNaiveFilterAndNullComparisons(t *testing.T) {
	db := naiveDB(t)
	// e_dept > 0 is FALSE for the NULL join key (SQL three-valued logic),
	// so exactly 4 of the 5 rows qualify.
	res := naiveRun(t, db, "SELECT * FROM emp WHERE emp.e_dept > 0")
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	// A filter on the nullable float keeps only non-NULL matches.
	res = naiveRun(t, db, "SELECT * FROM emp WHERE emp.e_salary >= 100")
	if len(res.Rows) != 3 { // 100, 200, 999
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
}

func TestNaiveJoinDropsNullKeys(t *testing.T) {
	db := naiveDB(t)
	res := naiveRun(t, db, "SELECT * FROM emp, dept WHERE emp.e_dept = dept.d_id")
	// emps 10,11,14 join dept 1; emp 12 joins dept 2; emp 13 (NULL) drops.
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	// Both tables' columns must be present in the output.
	for _, col := range []string{"emp.e_id", "emp.e_salary", "dept.d_id", "dept.d_name"} {
		if _, ok := res.Cols[col]; !ok {
			t.Errorf("join output missing column %q", col)
		}
	}
	res = naiveRun(t, db, "SELECT * FROM emp, dept WHERE emp.e_dept = dept.d_id AND dept.d_name = 'ops'")
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
	if got := cell(t, res, 0, "emp.e_id"); got.I != 12 {
		t.Errorf("ops employee = %v, want 12", got)
	}
}

func TestNaiveScalarAggregates(t *testing.T) {
	db := naiveDB(t)
	res := naiveRun(t, db, "SELECT COUNT(*), COUNT(emp.e_salary), SUM(emp.e_salary), AVG(emp.e_salary), MIN(emp.e_salary), MAX(emp.e_salary) FROM emp")
	if len(res.Rows) != 1 {
		t.Fatalf("scalar aggregate returned %d rows, want 1", len(res.Rows))
	}
	if got := cell(t, res, 0, "count(*)"); got.I != 5 {
		t.Errorf("COUNT(*) = %v, want 5", got)
	}
	// COUNT(col), SUM, AVG, MIN, MAX all skip the NULL salary.
	if got := cell(t, res, 0, "count(emp.e_salary)"); got.I != 4 {
		t.Errorf("COUNT(e_salary) = %v, want 4", got)
	}
	if got := cell(t, res, 0, "sum(emp.e_salary)"); got.F != 100+200+50+999 {
		t.Errorf("SUM = %v, want 1349", got)
	}
	if got := cell(t, res, 0, "avg(emp.e_salary)"); got.F != 1349.0/4 {
		t.Errorf("AVG = %v, want 337.25", got)
	}
	if got := cell(t, res, 0, "min(emp.e_salary)"); got.F != 50 {
		t.Errorf("MIN = %v, want 50", got)
	}
	if got := cell(t, res, 0, "max(emp.e_salary)"); got.F != 999 {
		t.Errorf("MAX = %v, want 999", got)
	}
}

func TestNaiveScalarAggregateOverEmptyInput(t *testing.T) {
	db := naiveDB(t)
	res := naiveRun(t, db, "SELECT COUNT(*), SUM(emp.e_salary) FROM emp WHERE emp.e_id > 1000")
	if len(res.Rows) != 1 {
		t.Fatalf("scalar aggregate over empty input returned %d rows, want 1", len(res.Rows))
	}
	if got := cell(t, res, 0, "count(*)"); got.Null || got.I != 0 {
		t.Errorf("COUNT(*) over empty = %v, want 0", got)
	}
	if got := cell(t, res, 0, "sum(emp.e_salary)"); !got.Null {
		t.Errorf("SUM over empty = %v, want NULL", got)
	}
}

func TestNaiveGroupByAndHaving(t *testing.T) {
	db := naiveDB(t)
	res := naiveRun(t, db, "SELECT emp.e_dept, COUNT(*), SUM(emp.e_salary) FROM emp GROUP BY emp.e_dept")
	// Groups: dept 1 (3 rows, sum 300 with the NULL skipped), dept 2
	// (1 row, sum 50), NULL dept (1 row, sum 999).
	if len(res.Rows) != 3 {
		t.Fatalf("got %d groups, want 3", len(res.Rows))
	}
	byDept := map[string][2]float64{}
	for i := range res.Rows {
		k := cell(t, res, i, "emp.e_dept").String()
		byDept[k] = [2]float64{float64(cell(t, res, i, "count(*)").I), cell(t, res, i, "sum(emp.e_salary)").F}
	}
	want := map[string][2]float64{"1": {3, 300}, "2": {1, 50}, "NULL": {1, 999}}
	for k, w := range want {
		got, ok := byDept[k]
		if !ok {
			t.Errorf("missing group %s (have %v)", k, byDept)
			continue
		}
		if got != w {
			t.Errorf("group %s = %v, want %v", k, got, w)
		}
	}

	// HAVING COUNT(*) > 1 keeps only dept 1.
	res = naiveRun(t, db, "SELECT emp.e_dept, COUNT(*) FROM emp GROUP BY emp.e_dept HAVING COUNT(*) > 1")
	if len(res.Rows) != 1 {
		t.Fatalf("HAVING kept %d groups, want 1", len(res.Rows))
	}
	if got := cell(t, res, 0, "emp.e_dept"); got.I != 1 {
		t.Errorf("surviving group = %v, want dept 1", got)
	}
}

func TestNaiveJoinedGroupBy(t *testing.T) {
	db := naiveDB(t)
	res := naiveRun(t, db, "SELECT dept.d_name, COUNT(*) FROM emp, dept WHERE emp.e_dept = dept.d_id GROUP BY dept.d_name")
	if len(res.Rows) != 2 { // eng (3), ops (1); hr has no employees, NULL key drops
		t.Fatalf("got %d groups, want 2", len(res.Rows))
	}
	counts := map[string]int64{}
	for i := range res.Rows {
		counts[cell(t, res, i, "dept.d_name").S] = cell(t, res, i, "count(*)").I
	}
	if counts["eng"] != 3 || counts["ops"] != 1 {
		t.Errorf("group counts = %v, want eng:3 ops:1", counts)
	}
}

func TestNaiveRowBudget(t *testing.T) {
	db := naiveDB(t)
	q, err := sqlparser.ParseSelect(db.Schema, "SELECT * FROM emp, dept WHERE emp.e_dept = dept.d_id")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NaiveExecute(db, q, 2); err != ErrBudget {
		t.Fatalf("budget of 2 rows: err = %v, want ErrBudget", err)
	}
}

// TestNaiveMatchesExecutorOnHandQueries closes the loop on the tiny
// database: for each hand query, the real optimize+execute pipeline must
// agree with the naive evaluator under CompareResults — the exact check
// the differential sweep applies at scale.
func TestNaiveMatchesExecutorOnHandQueries(t *testing.T) {
	h, err := New(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"SELECT * FROM orders WHERE orders.o_custkey > 3",
		"SELECT * FROM orders, customer WHERE orders.o_custkey = customer.c_custkey AND customer.c_acctbal >= 0",
		"SELECT orders.o_custkey, COUNT(*), AVG(orders.o_totalprice) FROM orders GROUP BY orders.o_custkey HAVING COUNT(*) > 1",
		"SELECT MIN(lineitem.l_extendedprice), MAX(lineitem.l_extendedprice) FROM lineitem WHERE lineitem.l_quantity <> 1",
		"SELECT * FROM region ORDER BY region.r_name",
	} {
		q, err := sqlparser.ParseSelect(h.DB.Schema, sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		f, err := h.checkQuery(q)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if f != nil {
			t.Errorf("hand query disagreement: %s", *f)
		}
	}
}

// TestEncodeDatumDistinguishesValues guards the multiset encoding the
// comparisons rely on: distinct datums must encode distinctly, including
// the classic concatenation-ambiguity and NULL-vs-zero traps.
func TestEncodeDatumDistinguishesValues(t *testing.T) {
	pairs := [][2]catalog.Datum{
		{catalog.NewInt(0), catalog.NewNull(catalog.Int)},
		{catalog.NewFloat(0), catalog.NewInt(0)},
		{catalog.NewString("ab"), catalog.NewString("a")},
		{catalog.NewInt(12), catalog.NewInt(1)},
		{catalog.NewFloat(1), catalog.NewFloat(-1)},
	}
	enc := func(d catalog.Datum) string {
		return encodeDatums([]catalog.Datum{d}, []int{0})
	}
	for _, p := range pairs {
		if enc(p[0]) == enc(p[1]) {
			t.Errorf("datums %v and %v encode identically (%q)", p[0], p[1], enc(p[0]))
		}
	}
	// Row-level ambiguity: ["a;", "b"] vs ["a", ";b"] must differ.
	a := encodeDatums([]catalog.Datum{catalog.NewString("a;"), catalog.NewString("b")}, []int{0, 1})
	b := encodeDatums([]catalog.Datum{catalog.NewString("a"), catalog.NewString(";b")}, []int{0, 1})
	if a == b {
		t.Errorf("row encodings collide: %q", a)
	}
}

// TestCompareResultsDetectsDifferences feeds CompareResults deliberately
// wrong "optimized" outputs and requires a non-empty diagnosis, proving
// the oracle can actually fail.
func TestCompareResultsDetectsDifferences(t *testing.T) {
	h, err := New(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlparser.ParseSelect(h.DB.Schema, "SELECT * FROM region WHERE region.r_regionkey > 1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := h.Sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Exec.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NaiveExecute(h.DB, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := CompareResults(q, got, want); d != "" {
		t.Fatalf("sanity: matching results reported diff %q", d)
	}
	// Drop a row from the reference: row-count mismatch.
	truncated := &NaiveResult{Cols: want.Cols, Rows: want.Rows[1:]}
	if d := CompareResults(q, got, truncated); d == "" {
		t.Error("row-count mismatch not detected")
	}
	// Corrupt one cell: content mismatch at equal cardinality.
	corrupt := &NaiveResult{Cols: want.Cols, Rows: make([][]catalog.Datum, len(want.Rows))}
	for i, r := range want.Rows {
		corrupt.Rows[i] = append([]catalog.Datum(nil), r...)
	}
	corrupt.Rows[0][want.Cols["region.r_regionkey"]] = catalog.NewInt(-777)
	if d := CompareResults(q, got, corrupt); d == "" {
		t.Error("cell corruption not detected")
	}
}

// TestCompareResultsChecksOrdering ensures the ORDER BY verification
// rejects an out-of-order optimized result.
func TestCompareResultsChecksOrdering(t *testing.T) {
	h, err := New(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlparser.ParseSelect(h.DB.Schema, "SELECT * FROM region ORDER BY region.r_regionkey")
	if err != nil {
		t.Fatal(err)
	}
	p, err := h.Sess.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Exec.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) < 2 {
		t.Fatal("need at least two rows to scramble")
	}
	want, err := NaiveExecute(h.DB, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := CompareResults(q, got, want); d != "" {
		t.Fatalf("sanity: ordered result reported diff %q", d)
	}
	got.Rows[0], got.Rows[len(got.Rows)-1] = got.Rows[len(got.Rows)-1], got.Rows[0]
	if d := CompareResults(q, got, want); d == "" {
		t.Error("ORDER BY violation not detected")
	}
}
