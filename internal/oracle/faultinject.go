package oracle

import (
	"context"
	"errors"
	"sync"
	"time"

	"autostats/internal/stats"
	"autostats/internal/storage"
)

// ErrInjected is the error every injected fault returns, so tests can
// assert the failure they observe is the one they injected.
var ErrInjected = errors.New("oracle: injected fault")

// FaultyProvider wraps a stats.Manager and misreports statistics state to
// the optimizer, simulating the reader-side races and staleness the plan
// cache's epoch discipline must survive:
//
//   - FreezeEpoch makes Epoch() return a pinned value while the underlying
//     manager moves on — a session reading through a stale snapshot;
//   - TearAfter triggers a callback after a fixed number of statistic
//     reads, letting a test mutate the manager in the middle of one
//     optimization — a torn snapshot, which the optimizer must detect via
//     its publish-time epoch re-check and refuse to cache.
//
// All state is mutex-guarded so the provider is safe under -race when
// optimizer goroutines share it.
type FaultyProvider struct {
	mgr *stats.Manager

	mu          sync.Mutex
	frozen      bool
	frozenEpoch uint64
	reads       int
	tearAt      int // fire tear() on the tearAt-th read; 0 = disabled
	tear        func()
}

// NewFaultyProvider wraps mgr with no faults armed; it behaves identically
// to the manager until FreezeEpoch or TearAfter is called.
func NewFaultyProvider(mgr *stats.Manager) *FaultyProvider {
	return &FaultyProvider{mgr: mgr}
}

var _ stats.Provider = (*FaultyProvider)(nil)

// FreezeEpoch pins the epoch the provider reports to the manager's current
// value. Statistic reads keep returning live data — exactly the hazardous
// combination: fresh snapshots under a stale identity.
func (p *FaultyProvider) FreezeEpoch() uint64 {
	e := p.mgr.Epoch()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frozen, p.frozenEpoch = true, e
	return e
}

// Thaw restores honest epoch reporting.
func (p *FaultyProvider) Thaw() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frozen = false
}

// TearAfter arms a one-shot callback fired in the middle of the n-th
// subsequent statistic read (1-based). The callback typically mutates the
// manager (refresh, create) so the optimization that triggered it computes
// from a torn view spanning two epochs.
func (p *FaultyProvider) TearAfter(n int, fn func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reads, p.tearAt, p.tear = 0, n, fn
}

// noteRead counts one statistic read and fires the armed tear callback
// when the trigger point is crossed. The callback runs without the
// provider lock held so it may call back into provider or manager.
func (p *FaultyProvider) noteRead() {
	p.mu.Lock()
	p.reads++
	var fire func()
	if p.tearAt > 0 && p.reads == p.tearAt {
		fire, p.tear, p.tearAt = p.tear, nil, 0
	}
	p.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// Epoch implements stats.Provider, honestly or frozen.
func (p *FaultyProvider) Epoch() uint64 {
	p.mu.Lock()
	frozen, e := p.frozen, p.frozenEpoch
	p.mu.Unlock()
	if frozen {
		return e
	}
	return p.mgr.Epoch()
}

// Get implements stats.Provider.
func (p *FaultyProvider) Get(id stats.ID) *stats.Statistic {
	p.noteRead()
	return p.mgr.Get(id)
}

// StatsForColumn implements stats.Provider.
func (p *FaultyProvider) StatsForColumn(table, column string) []*stats.Statistic {
	p.noteRead()
	return p.mgr.StatsForColumn(table, column)
}

// StatsOnTable implements stats.Provider.
func (p *FaultyProvider) StatsOnTable(table string) []*stats.Statistic {
	p.noteRead()
	return p.mgr.StatsOnTable(table)
}

// Database implements stats.Provider.
func (p *FaultyProvider) Database() *storage.Database { return p.mgr.Database() }

// FailNextRefreshes installs a manager failpoint that fails the next n
// refresh operations with ErrInjected, then disarms itself. It returns a
// function reporting how many injections actually fired.
func FailNextRefreshes(mgr *stats.Manager, n int) (fired func() int) {
	var mu sync.Mutex
	count := 0
	mgr.SetFailpoint(func(_ context.Context, op string, _ stats.ID) error {
		if op != "refresh" {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		if count < n {
			count++
			return ErrInjected
		}
		return nil
	})
	return func() int {
		mu.Lock()
		defer mu.Unlock()
		return count
	}
}

// FlakyFailpoint installs a fail-N-then-succeed failpoint: the first n
// build/refresh operations fail with a TRANSIENT ErrInjected (so the retry
// policy classifies them retryable), every operation after that succeeds.
// It models a build path that recovers on its own — the scenario the
// retry/backoff layer exists for. Returns a function reporting how many
// injections fired.
func FlakyFailpoint(mgr *stats.Manager, n int) (fired func() int) {
	var mu sync.Mutex
	count := 0
	mgr.SetFailpoint(func(_ context.Context, _ string, _ stats.ID) error {
		mu.Lock()
		defer mu.Unlock()
		if count < n {
			count++
			return stats.Transient(ErrInjected)
		}
		return nil
	})
	return func() int {
		mu.Lock()
		defer mu.Unlock()
		return count
	}
}

// SlowFailpoint installs a latency-injecting failpoint: every build/refresh
// stalls for d before proceeding, honoring the operation's context — a
// deadline shorter than d aborts the build with the context's error and no
// state mutated. It models a hung or overloaded build path, the scenario
// per-build timeouts and degraded-mode planning exist for. Returns a
// function reporting how many delays were cut short by cancellation.
func SlowFailpoint(mgr *stats.Manager, d time.Duration) (timedOut func() int) {
	var mu sync.Mutex
	cut := 0
	mgr.SetFailpoint(func(ctx context.Context, _ string, _ stats.ID) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			mu.Lock()
			cut++
			mu.Unlock()
			return ctx.Err()
		}
	})
	return func() int {
		mu.Lock()
		defer mu.Unlock()
		return cut
	}
}
