package oracle

import (
	"context"
	"fmt"
	"time"

	"autostats/internal/core"
	"autostats/internal/query"
	"autostats/internal/resilience"
	"autostats/internal/workload"
)

// DegradedReport summarizes one degraded-recovery sweep.
type DegradedReport struct {
	// Queries counts SELECTs checked per phase.
	Queries int
	// DegradedPlans counts queries planned degraded during the fault phase.
	DegradedPlans int
	// Injections counts failpoint firings during the fault phase.
	Injections int
	// BreakerTrips counts circuit breaker trips during the fault phase.
	BreakerTrips int64
	// Findings lists every oracle violation.
	Findings []Finding
}

// RunDegradedRecovery checks the resilience layer's core promise end to end:
// with every statistic build failing, queries must still plan (degraded, on
// magic numbers) and return exactly the reference evaluator's results; once
// builds recover, the same queries must re-optimize to non-degraded plans —
// automatically, with no reset call — and still agree with the reference.
//
// The check drops all existing statistics first so the fault phase is
// guaranteed to want builds; the recovery phase rebuilds what MNSA selects.
func (h *Harness) RunDegradedRecovery(count int) (*DegradedReport, error) {
	w, err := workload.Generate(h.DB, workload.Config{
		Count:      count,
		Complexity: h.Opts.complexity(),
		GroupByPct: 30,
		OrderByPct: 25,
		Seed:       h.Opts.Seed + 5,
	})
	if err != nil {
		return nil, err
	}
	var queries []*query.Select
	for _, stmt := range w.Statements {
		if sel, ok := stmt.(*query.Select); ok {
			queries = append(queries, sel)
		}
	}

	for _, st := range h.Mgr.All() {
		h.Mgr.Drop(st.ID)
	}

	const cooldown = time.Millisecond
	guard := resilience.NewGuard(h.Mgr, resilience.GuardConfig{
		Retry: resilience.Retry{
			MaxAttempts: 2,
			BaseDelay:   time.Microsecond,
			// Backoffs are irrelevant to the oracle; skip the wall time.
			Sleep: func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
		},
		Breaker: resilience.BreakerConfig{FailureThreshold: 2, Cooldown: cooldown},
		Seed:    h.Opts.Seed,
	})
	cfg := core.DefaultConfig()
	cfg.Builder = guard

	rep := &DegradedReport{Queries: len(queries)}
	ctx := context.Background()

	// Fault phase: every build fails (transiently, so the retry layer is
	// exercised too); results must still match the reference.
	fired := FlakyFailpoint(h.Mgr, 1<<30)
	for _, sel := range queries {
		h.Sess.ClearDegraded()
		if _, err := core.RunMNSACtx(ctx, h.Sess, sel, cfg); err != nil {
			h.Mgr.SetFailpoint(nil)
			return rep, fmt.Errorf("oracle: MNSA under faults (%s): %w", sel.SQL(), err)
		}
		degraded := len(h.Sess.DegradedReasons()) > 0
		if degraded {
			rep.DegradedPlans++
		}
		f, err := h.checkQuery(sel)
		if err != nil {
			h.Mgr.SetFailpoint(nil)
			return rep, fmt.Errorf("oracle: degraded query (%s): %w", sel.SQL(), err)
		}
		if f != nil && f.Detail != "budget" {
			f.Oracle = "degraded-differential"
			rep.Findings = append(rep.Findings, *f)
		}
	}
	rep.Injections = fired()
	for _, ts := range guard.Breakers().States() {
		rep.BreakerTrips += ts.Trips
	}
	if rep.DegradedPlans == 0 && rep.Injections == 0 && len(queries) > 0 {
		rep.Findings = append(rep.Findings, Finding{
			Oracle: "degraded-recovery",
			Seed:   h.Opts.Seed,
			Detail: "fault phase exercised nothing: no injections fired and no plan degraded",
		})
	}

	// Recovery phase: builds succeed again. After the breaker cooldown, the
	// first ensure per table is the half-open probe; its success must close
	// the breaker and yield non-degraded plans with no explicit reset.
	h.Mgr.SetFailpoint(nil)
	time.Sleep(5 * cooldown)
	for _, sel := range queries {
		h.Sess.ClearDegraded()
		if _, err := core.RunMNSACtx(ctx, h.Sess, sel, cfg); err != nil {
			return rep, fmt.Errorf("oracle: MNSA after recovery (%s): %w", sel.SQL(), err)
		}
		if reasons := h.Sess.DegradedReasons(); len(reasons) > 0 {
			rep.Findings = append(rep.Findings, Finding{
				Oracle: "degraded-recovery",
				Seed:   h.Opts.Seed,
				SQL:    sel.SQL(),
				Detail: fmt.Sprintf("plan still degraded after builds recovered: %v", reasons),
			})
			continue
		}
		f, err := h.checkQuery(sel)
		if err != nil {
			return rep, fmt.Errorf("oracle: recovered query (%s): %w", sel.SQL(), err)
		}
		if f != nil && f.Detail != "budget" {
			f.Oracle = "recovered-differential"
			rep.Findings = append(rep.Findings, *f)
		}
	}
	return rep, nil
}
