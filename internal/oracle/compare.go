package oracle

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"autostats/internal/catalog"
	"autostats/internal/executor"
	"autostats/internal/query"
)

// floatAggTol is the relative tolerance applied when comparing SUM/AVG
// outputs: the optimized plan and the reference evaluator add the same
// float values in different orders, so the sums may differ in the last few
// bits. Everything else — raw column values, counts, MIN/MAX, group keys —
// is compared exactly.
const floatAggTol = 1e-9

// CompareResults diffs the optimized execution of q against the reference
// evaluation as multisets. It returns "" when they agree, otherwise a
// human-readable description of the first discrepancy.
func CompareResults(q *query.Select, got *executor.Result, want *NaiveResult) string {
	if d := compareColumnSets(got.Cols, want.Cols); d != "" {
		return d
	}
	if len(got.Rows) != len(want.Rows) {
		return fmt.Sprintf("row count mismatch: optimized %d, reference %d", len(got.Rows), len(want.Rows))
	}
	if len(q.GroupBy) > 0 || len(naiveAggregateSet(q)) > 0 {
		if d := compareAggregated(q, got, want); d != "" {
			return d
		}
	} else if d := compareExact(got, want); d != "" {
		return d
	}
	if len(q.OrderBy) > 0 {
		if d := checkSorted(q, got); d != "" {
			return d
		}
	}
	return ""
}

func compareColumnSets(got, want map[string]int) string {
	for k := range got {
		if _, ok := want[k]; !ok {
			return fmt.Sprintf("optimized output has unexpected column %q", k)
		}
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			return fmt.Sprintf("optimized output is missing column %q", k)
		}
	}
	return ""
}

// sortedCols returns the shared column keys in deterministic order.
func sortedCols(cols map[string]int) []string {
	out := make([]string, 0, len(cols))
	for k := range cols {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// compareExact matches two row multisets cell-for-cell: every value in a
// non-aggregated result is read verbatim from storage by both executors, so
// even floats must agree exactly.
func compareExact(got *executor.Result, want *NaiveResult) string {
	keys := sortedCols(want.Cols)
	gpos := make([]int, len(keys))
	wpos := make([]int, len(keys))
	for i, k := range keys {
		gpos[i] = got.Cols[k]
		wpos[i] = want.Cols[k]
	}
	enc := func(rows [][]catalog.Datum, pos []int) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = encodeDatums(r, pos)
		}
		sort.Strings(out)
		return out
	}
	g, w := enc(got.Rows, gpos), enc(want.Rows, wpos)
	for i := range g {
		if g[i] != w[i] {
			return fmt.Sprintf("row multiset mismatch at sorted position %d:\n  optimized: %s\n  reference: %s", i, g[i], w[i])
		}
	}
	return ""
}

// compareAggregated matches aggregate output by group key. Group keys are
// unique per result, so each side indexes rows by encoded group key and the
// aggregate cells are compared with float tolerance where both sides carry
// floats (SUM/AVG accumulation order differs between plans).
func compareAggregated(q *query.Select, got *executor.Result, want *NaiveResult) string {
	groupCols := q.GroupingColumns()
	gkeys := make([]string, len(groupCols))
	for i, g := range groupCols {
		gkeys[i] = colRefKey(g)
	}
	aggKeys := make([]string, 0, len(want.Cols)-len(groupCols))
	for k := range want.Cols {
		isGroup := false
		for _, g := range gkeys {
			if k == g {
				isGroup = true
				break
			}
		}
		if !isGroup {
			aggKeys = append(aggKeys, k)
		}
	}
	sort.Strings(aggKeys)

	index := func(rows [][]catalog.Datum, cols map[string]int) (map[string][]catalog.Datum, string) {
		gpos := make([]int, len(gkeys))
		for i, k := range gkeys {
			gpos[i] = cols[k]
		}
		m := make(map[string][]catalog.Datum, len(rows))
		for _, r := range rows {
			k := encodeDatums(r, gpos)
			if _, dup := m[k]; dup {
				return nil, k
			}
			m[k] = r
		}
		return m, ""
	}
	gm, dup := index(got.Rows, got.Cols)
	if gm == nil {
		return fmt.Sprintf("optimized output repeats group key %q", dup)
	}
	wm, dup := index(want.Rows, want.Cols)
	if wm == nil {
		return fmt.Sprintf("reference output repeats group key %q", dup)
	}
	for k, wr := range wm {
		gr, ok := gm[k]
		if !ok {
			return fmt.Sprintf("optimized output is missing group %q", k)
		}
		for _, ak := range aggKeys {
			gv, wv := gr[got.Cols[ak]], wr[want.Cols[ak]]
			if !datumsClose(gv, wv) {
				return fmt.Sprintf("group %q aggregate %q mismatch: optimized %s, reference %s", k, ak, gv, wv)
			}
		}
	}
	return ""
}

// datumsClose compares two aggregate outputs: exact, except Float-vs-Float
// which allows floatAggTol relative error.
func datumsClose(a, b catalog.Datum) bool {
	if a.Null || b.Null {
		return a.Null == b.Null
	}
	if a.T == catalog.Float && b.T == catalog.Float {
		if a.F == b.F {
			return true
		}
		diff := math.Abs(a.F - b.F)
		scale := math.Max(math.Abs(a.F), math.Abs(b.F))
		return diff <= floatAggTol*scale
	}
	var sa, sb strings.Builder
	encodeDatum(&sa, a)
	encodeDatum(&sb, b)
	return sa.String() == sb.String()
}

// checkSorted verifies the optimized output really is ordered by the
// ORDER BY columns (the reference evaluator never sorts, so ordering is
// checked as a property of the optimized result alone).
func checkSorted(q *query.Select, got *executor.Result) string {
	pos := make([]int, 0, len(q.OrderBy))
	for _, c := range q.OrderBy {
		p, ok := got.Cols[colRefKey(c)]
		if !ok {
			return fmt.Sprintf("ORDER BY column %s missing from optimized output", c)
		}
		pos = append(pos, p)
	}
	for i := 1; i < len(got.Rows); i++ {
		for _, p := range pos {
			c := got.Rows[i-1][p].Compare(got.Rows[i][p])
			if c < 0 {
				break
			}
			if c > 0 {
				return fmt.Sprintf("optimized output not sorted: row %d > row %d on ORDER BY", i-1, i)
			}
		}
	}
	return ""
}
