package oracle

import (
	"fmt"

	"autostats/internal/core"
	"autostats/internal/query"
	"autostats/internal/stats"
	"autostats/internal/workload"
)

// DiffReport summarizes one differential sweep.
type DiffReport struct {
	// Statements is the total processed (queries + DML).
	Statements int
	// Queries counts SELECTs compared against the reference evaluator.
	Queries int
	// DML counts data-modifying statements executed to churn the data.
	DML int
	// Skipped counts queries whose naive evaluation exceeded the budget.
	Skipped int
	// MNSARuns counts mid-stream MNSA invocations (statistics churn).
	MNSARuns int
	// MaintenanceRuns counts mid-stream maintenance passes (refresh churn).
	MaintenanceRuns int
	// Findings lists every oracle violation.
	Findings []Finding
}

// Differential-sweep cadence: every mnsaEvery-th query runs MNSA first so
// statistics (and therefore plan shapes) evolve mid-sweep, and every
// maintenanceEvery-th statement runs a maintenance pass so refreshes and
// epoch bumps interleave with cached plans.
const (
	mnsaEvery        = 23
	maintenanceEvery = 97
)

// RunDifferential generates count statements (an adversarial mix of
// multi-join SELECTs with <>, out-of-range and HAVING predicates, plus
// ~15% DML) and checks every SELECT's optimized execution against the
// reference evaluator. Statistics are built and refreshed mid-sweep so the
// comparison covers plans produced under magic numbers, fresh histograms
// and stale histograms alike — the result must be identical in every case.
func (h *Harness) RunDifferential(count int) (*DiffReport, error) {
	w, err := workload.Generate(h.DB, workload.Config{
		Count:         count,
		UpdatePct:     15,
		Complexity:    h.Opts.complexity(),
		GroupByPct:    40,
		OrderByPct:    25,
		NePct:         15,
		OutOfRangePct: 15,
		HavingPct:     35,
		Seed:          h.Opts.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	rep := &DiffReport{}
	for i, stmt := range w.Statements {
		rep.Statements++
		sel, isQuery := stmt.(*query.Select)
		if !isQuery {
			if _, err := h.Exec.RunStatement(h.Sess, stmt); err != nil {
				return rep, fmt.Errorf("oracle: DML %d (%s): %w", i, stmt.SQL(), err)
			}
			h.Mgr.Tick()
			rep.DML++
			continue
		}
		if rep.Queries%mnsaEvery == mnsaEvery-1 {
			if _, err := core.RunMNSA(h.Sess, sel, core.DefaultConfig()); err != nil {
				return rep, fmt.Errorf("oracle: MNSA on query %d (%s): %w", i, sel.SQL(), err)
			}
			rep.MNSARuns++
		}
		if rep.Statements%maintenanceEvery == 0 {
			if _, err := h.Mgr.RunMaintenance(stats.DefaultMaintenancePolicy()); err != nil {
				return rep, fmt.Errorf("oracle: maintenance after statement %d: %w", i, err)
			}
			rep.MaintenanceRuns++
		}
		if f, err := h.checkQuery(sel); err != nil {
			return rep, fmt.Errorf("oracle: query %d (%s): %w", i, sel.SQL(), err)
		} else if f != nil {
			if f.Detail == "budget" {
				rep.Skipped++
			} else {
				rep.Findings = append(rep.Findings, *f)
			}
		}
		h.Mgr.Tick()
		rep.Queries++
	}
	return rep, nil
}

// checkQuery runs one SELECT through both executors and diffs the results.
// It returns a Finding with Detail "budget" when the reference evaluation
// was skipped, a real Finding on mismatch, or nil when the query agrees.
func (h *Harness) checkQuery(sel *query.Select) (*Finding, error) {
	p, err := h.Sess.Optimize(sel)
	if err != nil {
		return nil, fmt.Errorf("optimize: %w", err)
	}
	got, err := h.Exec.Run(p)
	if err != nil {
		return nil, fmt.Errorf("execute: %w", err)
	}
	want, err := NaiveExecute(h.DB, sel, h.Opts.MaxNaiveRows)
	if err == ErrBudget {
		return &Finding{Oracle: "differential", Seed: h.Opts.Seed, SQL: sel.SQL(), Detail: "budget"}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("reference execute: %w", err)
	}
	if diff := CompareResults(sel, got, want); diff != "" {
		return &Finding{
			Oracle: "differential",
			Seed:   h.Opts.Seed,
			SQL:    sel.SQL(),
			Detail: diff,
		}, nil
	}
	return nil, nil
}
