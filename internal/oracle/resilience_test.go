package oracle

import (
	"testing"
)

// TestDegradedRecoveryOracle runs the graceful-degradation oracle: under a
// permanently flaky build path every query must still return correct results
// on degraded plans, and after the fault clears the same queries must
// re-optimize to healthy plans. Any finding is a real correctness or
// recovery failure.
func TestDegradedRecoveryOracle(t *testing.T) {
	h, err := New(Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.RunDegradedRecovery(25)
	if err != nil {
		t.Fatal(err)
	}
	reportFindings(t, "degraded-recovery", rep.Findings)
	if rep.Injections == 0 {
		t.Error("fault phase injected nothing — the oracle is vacuous")
	}
	if rep.DegradedPlans == 0 {
		t.Error("no degraded plans observed under a hard-down build path")
	}
	if rep.Queries == 0 {
		t.Error("oracle ran zero queries")
	}
}
