package oracle

import "testing"

// TestChaosSweepShort runs a CI-sized chaos sweep: a real server behind the
// fault proxy, with every robustness invariant asserted. Any finding is a
// bug in the server, client, or protocol layers.
func TestChaosSweepShort(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep spins a full server; skipped in -short")
	}
	rep, err := RunChaosSweep(ChaosOptions{
		Seed:               1,
		Sessions:           6,
		RequestsPerSession: 6,
		Tenants:            2,
		Logf:               t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		t.Errorf("%s: %s", f.Oracle, f.Detail)
	}
	if rep.Requests == 0 {
		t.Fatal("sweep issued no requests")
	}
	if rep.Hangs != 0 {
		t.Fatalf("%d calls hung past the budget", rep.Hangs)
	}
}
