package oracle

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/sqlparser"
	"autostats/internal/stats"
	"autostats/internal/storage"
)

// faultEnv stands up a harness with one statistic built and one query
// whose plan depends on it.
type faultEnv struct {
	h    *Harness
	q    *query.Select
	stat *stats.Statistic
}

func newFaultEnv(t *testing.T) *faultEnv {
	t.Helper()
	h, err := New(Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	st, err := h.Mgr.Create("orders", []string{"o_custkey"})
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlparser.ParseSelect(h.DB.Schema,
		"SELECT * FROM orders, customer WHERE orders.o_custkey = customer.c_custkey AND orders.o_custkey > 3")
	if err != nil {
		t.Fatal(err)
	}
	return &faultEnv{h: h, q: q, stat: st}
}

// churnOrders runs one INSERT so the data version moves and orders'
// modification counter crosses the default maintenance threshold.
func (e *faultEnv) churnOrders(t *testing.T, rows int) {
	t.Helper()
	td, err := e.h.DB.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	var proto []catalog.Datum
	td.Scan(func(_ int, r storage.Row) bool {
		proto = append([]catalog.Datum(nil), r...)
		return false
	})
	for i := 0; i < rows; i++ {
		if _, err := e.h.Exec.RunStatement(e.h.Sess, &query.Insert{Table: "orders", Values: proto}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRefreshFailpointLeavesManagerClean proves an injected refresh failure
// is fully atomic: the published snapshot, epoch, accounting and metrics
// are bit-for-bit what they were before the attempt.
func TestRefreshFailpointLeavesManagerClean(t *testing.T) {
	e := newFaultEnv(t)
	mgr := e.h.Mgr
	refreshes := e.h.Reg.Counter("stats.refreshes")

	before := mgr.Get(e.stat.ID)
	epoch := mgr.Epoch()
	acct := mgr.Snapshot()
	refreshesBefore := refreshes.Value()

	fired := FailNextRefreshes(mgr, 1)
	err := mgr.Refresh(e.stat.ID)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Refresh error = %v, want ErrInjected", err)
	}
	if fired() != 1 {
		t.Fatalf("failpoint fired %d times, want 1", fired())
	}
	if got := mgr.Get(e.stat.ID); got != before {
		t.Error("failed refresh replaced the published statistic snapshot")
	}
	if mgr.Epoch() != epoch {
		t.Errorf("failed refresh bumped epoch %d -> %d", epoch, mgr.Epoch())
	}
	if mgr.Snapshot() != acct {
		t.Errorf("failed refresh changed accounting: %+v -> %+v", acct, mgr.Snapshot())
	}
	if refreshes.Value() != refreshesBefore {
		t.Errorf("failed refresh incremented stats.refreshes")
	}

	// Disarm and verify the manager recovers on the next attempt.
	mgr.SetFailpoint(nil)
	if err := mgr.Refresh(e.stat.ID); err != nil {
		t.Fatalf("refresh after disarm: %v", err)
	}
	if mgr.Get(e.stat.ID) == before {
		t.Error("successful refresh did not replace the snapshot")
	}
	if mgr.Epoch() != epoch+1 {
		t.Errorf("successful refresh epoch = %d, want %d", mgr.Epoch(), epoch+1)
	}
}

// TestCreateFailpointLeavesManagerClean proves the same atomicity for the
// statistics-creation path MNSA drives.
func TestCreateFailpointLeavesManagerClean(t *testing.T) {
	e := newFaultEnv(t)
	mgr := e.h.Mgr
	epoch := mgr.Epoch()
	acct := mgr.Snapshot()

	mgr.SetFailpoint(func(_ context.Context, op string, _ stats.ID) error {
		if op == "create" {
			return ErrInjected
		}
		return nil
	})
	if _, err := mgr.Create("lineitem", []string{"l_quantity"}); !errors.Is(err, ErrInjected) {
		t.Fatalf("Create error = %v, want ErrInjected", err)
	}
	if mgr.Has(stats.MakeID("lineitem", []string{"l_quantity"})) {
		t.Error("failed create left a statistic behind")
	}
	if mgr.Epoch() != epoch || mgr.Snapshot() != acct {
		t.Error("failed create mutated epoch or accounting")
	}
	// Resurrection and existing-statistic paths must not consult the
	// create failpoint (they build nothing).
	if _, err := mgr.Create("orders", []string{"o_custkey"}); err != nil {
		t.Fatalf("Create of existing statistic hit the failpoint: %v", err)
	}
	mgr.SetFailpoint(nil)
}

// TestMaintenanceRefreshFailureDoesNotPoisonPlanCache is the headline
// fault-injection property: after DML churn and an injected maintenance
// failure, the next optimization must not be served any plan keyed to the
// pre-churn state — proven through the cache miss counter and plan-key
// inspection.
func TestMaintenanceRefreshFailureDoesNotPoisonPlanCache(t *testing.T) {
	e := newFaultEnv(t)
	h := e.h
	cache := h.Sess.PlanCache()
	misses := h.Reg.Counter("optimizer.plancache.misses")
	hits := h.Reg.Counter("optimizer.plancache.hits")

	if _, err := h.Sess.Optimize(e.q); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Sess.Optimize(e.q); err != nil {
		t.Fatal(err)
	}
	if hits.Value() != 1 {
		t.Fatalf("warm-up: expected 1 cache hit, got %d", hits.Value())
	}

	e.churnOrders(t, 400) // well past the 20% modification threshold
	fired := FailNextRefreshes(h.Mgr, 1)
	_, err := h.Mgr.RunMaintenance(stats.DefaultMaintenancePolicy())
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("RunMaintenance error = %v, want ErrInjected", err)
	}
	if fired() != 1 {
		t.Fatalf("failpoint fired %d times, want 1", fired())
	}
	h.Mgr.SetFailpoint(nil)

	missesBefore := misses.Value()
	hitsBefore := hits.Value()
	p, err := h.Sess.Optimize(e.q)
	if err != nil {
		t.Fatal(err)
	}
	// The post-churn optimization must MISS: the pre-churn entry's key
	// carries the old data version, so it cannot be served.
	if misses.Value() != missesBefore+1 || hits.Value() != hitsBefore {
		t.Errorf("post-failure optimize was served from cache (hits %d->%d, misses %d->%d)",
			hitsBefore, hits.Value(), missesBefore, misses.Value())
	}
	// And the plan must equal what a cache-less session computes fresh.
	fresh := optimizer.NewSession(h.Mgr)
	want, err := fresh.Optimize(e.q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Signature() != want.Signature() {
		t.Errorf("post-failure plan differs from fresh optimization:\n  cached: %s\n  fresh:  %s", p.Signature(), want.Signature())
	}
	assertNoPoisonedEntries(t, h, cache)
}

// TestStaleEpochProviderCannotPoisonSharedCache wires a session's reads
// through a provider that reports a frozen epoch while the statistics move
// on. Whatever that session publishes lands under the stale key, so an
// honest session sharing the cache can never be served it.
func TestStaleEpochProviderCannotPoisonSharedCache(t *testing.T) {
	e := newFaultEnv(t)
	h := e.h
	cache := h.Sess.PlanCache()
	misses := h.Reg.Counter("optimizer.plancache.misses")
	hits := h.Reg.Counter("optimizer.plancache.hits")

	fp := NewFaultyProvider(h.Mgr)
	frozen := fp.FreezeEpoch()
	// The statistics set changes after the freeze: the faulty session now
	// reads fresh statistics under a stale identity.
	if err := h.Mgr.Refresh(e.stat.ID); err != nil {
		t.Fatal(err)
	}
	if h.Mgr.Epoch() == frozen {
		t.Fatal("refresh did not advance the epoch")
	}

	faulty := h.Sess.Clone()
	faulty.SetStatsProvider(fp)
	if _, err := faulty.Optimize(e.q); err != nil {
		t.Fatal(err)
	}

	missesBefore := misses.Value()
	hitsBefore := hits.Value()
	honest := h.Sess
	p, err := honest.Optimize(e.q)
	if err != nil {
		t.Fatal(err)
	}
	if hits.Value() != hitsBefore || misses.Value() != missesBefore+1 {
		t.Errorf("honest session was served the stale-epoch entry (hits %d->%d, misses %d->%d)",
			hitsBefore, hits.Value(), missesBefore, misses.Value())
	}
	var sawFrozen, sawCurrent bool
	for _, k := range cache.Keys() {
		if k.SQL != e.q.SQL() {
			continue
		}
		switch k.Epoch {
		case frozen:
			sawFrozen = true
		case h.Mgr.Epoch():
			sawCurrent = true
			if k.Signature != p.Signature() {
				t.Errorf("current-epoch entry holds a different plan than the honest optimization")
			}
		}
	}
	if !sawFrozen || !sawCurrent {
		t.Errorf("expected both a frozen-epoch and a current-epoch entry (frozen=%v current=%v)", sawFrozen, sawCurrent)
	}
	assertNoPoisonedEntries(t, h, cache)
}

// TestTornSnapshotPlanNotCached mutates the statistics in the middle of an
// optimization (via the provider's read-triggered tear) and asserts the
// optimizer's publish-time epoch re-check refuses to cache the torn plan.
func TestTornSnapshotPlanNotCached(t *testing.T) {
	e := newFaultEnv(t)
	h := e.h
	cache := h.Sess.PlanCache()

	fp := NewFaultyProvider(h.Mgr)
	sess := h.Sess.Clone()
	sess.SetStatsProvider(fp)

	fp.TearAfter(1, func() {
		if err := h.Mgr.Refresh(e.stat.ID); err != nil {
			t.Errorf("tear refresh: %v", err)
		}
	})
	if _, err := sess.Optimize(e.q); err != nil {
		t.Fatal(err)
	}
	if n := cache.Len(); n != 0 {
		t.Fatalf("torn optimization was cached (%d entries): %+v", n, cache.Keys())
	}

	// With no tear armed the same session caches normally.
	if _, err := sess.Optimize(e.q); err != nil {
		t.Fatal(err)
	}
	if n := cache.Len(); n != 1 {
		t.Fatalf("clean optimization was not cached (len=%d)", n)
	}
	assertNoPoisonedEntries(t, h, cache)
}

// assertNoPoisonedEntries is the cache-wide invariant every fault test
// ends on: any entry keyed to the CURRENT statistics state must hold
// exactly the plan a fresh, cache-less optimization produces now. Entries
// under stale keys are unreachable by construction (the lookup key always
// carries the current epoch/data-version) and therefore harmless.
func assertNoPoisonedEntries(t *testing.T, h *Harness, cache *optimizer.PlanCache) {
	t.Helper()
	epoch := h.Mgr.Epoch()
	dv := h.DB.DataVersion()
	fresh := optimizer.NewSession(h.Mgr)
	for _, k := range cache.Keys() {
		if k.Epoch != epoch || k.DataVersion != dv || k.Ignored != "" || k.Overrides != "" {
			continue
		}
		q, err := sqlparser.ParseSelect(h.DB.Schema, k.SQL)
		if err != nil {
			t.Errorf("cached SQL does not re-parse: %v", err)
			continue
		}
		p, err := fresh.Optimize(q)
		if err != nil {
			t.Errorf("re-optimizing cached SQL: %v", err)
			continue
		}
		if p.Signature() != k.Signature {
			t.Errorf("POISONED cache entry at current state:\n  sql: %s\n  cached: %s\n  fresh:  %s", k.SQL, k.Signature, p.Signature())
		}
	}
}

// TestConcurrentFaultChurnNeverPoisonsCache hammers a shared cache from
// optimizer goroutines while another goroutine injects refresh failures,
// refreshes statistics and runs DML. Run under -race this checks both the
// locking and, at the end, the no-poisoned-plan invariant.
func TestConcurrentFaultChurnNeverPoisonsCache(t *testing.T) {
	e := newFaultEnv(t)
	h := e.h

	queries := make([]*query.Select, 0, 8)
	for _, sql := range []string{
		"SELECT * FROM orders, customer WHERE orders.o_custkey = customer.c_custkey AND orders.o_custkey > 3",
		"SELECT * FROM orders WHERE orders.o_totalprice > 1000",
		"SELECT customer.c_mktsegment, COUNT(*) FROM customer GROUP BY customer.c_mktsegment",
		"SELECT * FROM lineitem, orders WHERE lineitem.l_orderkey = orders.o_orderkey AND orders.o_custkey = 5",
	} {
		q, err := sqlparser.ParseSelect(h.DB.Schema, sql)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}

	const workers = 4
	const iters = 120
	var wg sync.WaitGroup
	errs := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := h.Sess.Clone()
			for i := 0; i < iters; i++ {
				if _, err := sess.Optimize(queries[(w+i)%len(queries)]); err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		td, err := h.DB.Table("orders")
		if err != nil {
			errs <- err
			return
		}
		var proto []catalog.Datum
		td.Scan(func(_ int, r storage.Row) bool {
			proto = append([]catalog.Datum(nil), r...)
			return false
		})
		for i := 0; i < iters; i++ {
			switch i % 4 {
			case 0:
				FailNextRefreshes(h.Mgr, 1)
				if err := h.Mgr.Refresh(e.stat.ID); !errors.Is(err, ErrInjected) {
					errs <- fmt.Errorf("churn iter %d: want injected error, got %v", i, err)
					return
				}
				h.Mgr.SetFailpoint(nil)
			case 1:
				if err := h.Mgr.Refresh(e.stat.ID); err != nil {
					errs <- err
					return
				}
			case 2:
				if _, err := h.Exec.RunStatement(h.Sess.Clone(), &query.Insert{Table: "orders", Values: proto}); err != nil {
					errs <- err
					return
				}
			default:
				if _, err := h.Mgr.RunMaintenance(stats.DefaultMaintenancePolicy()); err != nil && !errors.Is(err, ErrInjected) {
					errs <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	assertNoPoisonedEntries(t, h, h.Sess.PlanCache())
}
