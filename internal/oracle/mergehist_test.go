package oracle

import (
	"fmt"
	"reflect"
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/sqlparser"
	"autostats/internal/stats"
)

// TestPartitionMergeDifferential is the merge oracle: statistics built
// partition-parallel must be EXACTLY the statistics a single-pass build
// produces — same buckets, same boundaries, same densities — and every
// estimate derived from them must survive the bucket-boundary differential
// sweep across all comparison operators, at every partition count.
func TestPartitionMergeDifferential(t *testing.T) {
	ref, err := New(Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	refStat, err := ref.Mgr.Create("orders", []string{"o_orderdate"})
	if err != nil {
		t.Fatal(err)
	}
	if len(refStat.Data.Leading.Buckets) < 2 {
		t.Fatalf("reference histogram too small: %d buckets", len(refStat.Data.Leading.Buckets))
	}

	ops := []string{">", ">=", "<", "<=", "="}
	for _, par := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("partitions=%d", par), func(t *testing.T) {
			h, err := New(Options{Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			h.Mgr.SetBuildParallelism(par)
			st, err := h.Mgr.Create("orders", []string{"o_orderdate"})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(st.Data, refStat.Data) {
				t.Fatalf("merged statistic differs from single-pass build at %d partitions", par)
			}
			// Boundary sweep: probe each bucket edge ±1 with every operator
			// and check the chosen plan's execution against the reference
			// evaluator.
			checked := 0
			for _, b := range st.Data.Leading.Buckets {
				for _, edge := range []catalog.Datum{b.Lo, b.Hi} {
					for delta := int64(-1); delta <= 1; delta++ {
						for _, op := range ops {
							sql := fmt.Sprintf("SELECT * FROM orders WHERE o_orderdate %s %s",
								op, catalog.NewDate(edge.I+delta))
							sel, err := sqlparser.ParseSelect(h.DB.Schema, sql)
							if err != nil {
								t.Fatalf("%s: %v", sql, err)
							}
							f, err := h.checkQuery(sel)
							if err != nil {
								t.Fatalf("%s: %v", sql, err)
							}
							if f != nil && f.Detail != "budget" {
								t.Errorf("partitions=%d: boundary mismatch: %s", par, f)
							}
							checked++
						}
					}
				}
			}
			t.Logf("partitions=%d: %d boundary probes, statistic identical to single-pass", par, checked)
		})
	}
}

// TestPartitionCountDeterminism: rebuilding the same statistic at different
// parallelism — including refreshes — must never change it, with sampling
// off (exact merge) and on (the seeded sample is drawn before partitioning,
// so it is identical at any parallelism).
func TestPartitionCountDeterminism(t *testing.T) {
	for _, sampled := range []bool{false, true} {
		name := "exact"
		if sampled {
			name = "sampled"
		}
		t.Run(name, func(t *testing.T) {
			var want *stats.Statistic
			for _, par := range []int{1, 2, 4, 7} {
				h, err := New(Options{Seed: 17})
				if err != nil {
					t.Fatal(err)
				}
				if sampled {
					if err := h.Mgr.SetSampling(stats.SampleConfig{Fraction: 0.4, MinRows: 50, Seed: 3}); err != nil {
						t.Fatal(err)
					}
				}
				h.Mgr.SetBuildParallelism(par)
				st, err := h.Mgr.Create("lineitem", []string{"l_quantity", "l_partkey"})
				if err != nil {
					t.Fatal(err)
				}
				// A refresh re-runs the build path; it must be just as
				// deterministic as the initial create.
				if err := h.Mgr.Refresh(st.ID); err != nil {
					t.Fatal(err)
				}
				st = h.Mgr.Get(st.ID)
				if want == nil {
					want = st
					continue
				}
				if !reflect.DeepEqual(st.Data, want.Data) {
					t.Errorf("parallelism %d produced a different statistic than parallelism 1", par)
				}
			}
		})
	}
}
