package oracle

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"autostats/internal/catalog"
	"autostats/internal/datagen"
	"autostats/internal/executor"
	"autostats/internal/histogram"
	"autostats/internal/obs"
	"autostats/internal/optimizer"
	"autostats/internal/stats"
	"autostats/internal/storage"
	"autostats/internal/workload"
)

// Options parameterizes one harness instance. Every randomized decision
// derives from Seed, so a run is replayed exactly by its seed alone.
type Options struct {
	// Seed drives data generation, NULL injection and workload generation.
	Seed int64
	// Scale is the datagen scale factor (default 0.05, ~450 rows total —
	// small enough for the quadratic reference evaluator, large enough for
	// histograms to matter).
	Scale float64
	// Zipf is the datagen skew parameter (default 2, the paper's TPCD-2).
	Zipf float64
	// NullPct is the percentage of rows per nullable column whose value is
	// replaced with NULL (default 5). TPC-D data contains no NULLs, so the
	// harness injects them into numeric columns that carry no index and no
	// FK role, exercising NULL filter/join/aggregate semantics.
	NullPct int
	// SimpleQueries restricts generated queries to at most 2 tables
	// (workload.Simple); the default is workload.Complex (up to 8).
	SimpleQueries bool
	// MaxNaiveRows bounds any intermediate relation of the reference
	// evaluator (default 400000); queries exceeding it are skipped.
	MaxNaiveRows int
	// PlanCacheCapacity sizes the session plan cache (default 256).
	PlanCacheCapacity int
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	if o.Zipf == 0 {
		o.Zipf = 2
	}
	if o.NullPct == 0 {
		o.NullPct = 5
	}
	if o.MaxNaiveRows == 0 {
		o.MaxNaiveRows = 400000
	}
	if o.PlanCacheCapacity == 0 {
		o.PlanCacheCapacity = 256
	}
	return o
}

// complexity maps the SimpleQueries switch onto the workload knob.
func (o Options) complexity() workload.Complexity {
	if o.SimpleQueries {
		return workload.Simple
	}
	return workload.Complex
}

// Finding is one oracle violation: enough context to triage and to replay.
type Finding struct {
	// Oracle names the check that fired (differential, monotonicity, ...).
	Oracle string
	// Seed replays the harness run that surfaced the finding.
	Seed int64
	// SQL is the statement under test, when one exists.
	SQL string
	// Detail describes the violation.
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s seed=%d] %s\n  %s", f.Oracle, f.Seed, f.SQL, f.Detail)
}

// Harness owns one database instance and the stats/optimizer/executor
// stack under test. It is not safe for concurrent use.
type Harness struct {
	Opts Options
	DB   *storage.Database
	Mgr  *stats.Manager
	Sess *optimizer.Session
	Exec *executor.Executor
	// Reg is a private metrics registry so oracle assertions on counters
	// are not perturbed by other tests sharing obs.Default.
	Reg *obs.Registry

	rng *rand.Rand
}

// New builds a harness: generates skewed TPC-D data at the configured
// scale, injects NULLs, and stands up a manager/session/executor with a
// plan cache attached and no statistics built yet.
func New(opts Options) (*Harness, error) {
	opts = opts.withDefaults()
	db, err := datagen.Generate(datagen.Config{Scale: opts.Scale, Z: opts.Zipf, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	h := &Harness{
		Opts: opts,
		DB:   db,
		Reg:  obs.New(),
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
	if err := h.injectNulls(); err != nil {
		return nil, err
	}
	h.Mgr = stats.NewManager(db, histogram.MaxDiff, 0)
	h.Mgr.SetObsRegistry(h.Reg)
	h.Sess = optimizer.NewSession(h.Mgr)
	h.Sess.SetPlanCache(optimizer.NewPlanCache(opts.PlanCacheCapacity))
	h.Exec = executor.New(db)
	return h, nil
}

// nullableColumns lists the numeric columns safe to NULL out: not indexed
// and on neither side of a foreign key, so join keys and seek columns keep
// their integrity and only filter/aggregate paths see NULLs.
func (h *Harness) nullableColumns() map[string][]string {
	schema := h.DB.Schema
	protected := make(map[string]bool)
	for _, ix := range schema.Indexes {
		protected[strings.ToLower(ix.Table)+"."+strings.ToLower(ix.Column)] = true
	}
	for _, fk := range schema.ForeignKeys {
		protected[strings.ToLower(fk.Table)+"."+strings.ToLower(fk.Column)] = true
		protected[strings.ToLower(fk.RefTable)+"."+strings.ToLower(fk.RefColumn)] = true
	}
	out := make(map[string][]string)
	for _, name := range schema.TableNames() {
		t, err := schema.Table(name)
		if err != nil {
			continue
		}
		tn := strings.ToLower(t.Name)
		for _, c := range t.Columns {
			if c.Type != catalog.Int && c.Type != catalog.Float {
				continue
			}
			cn := strings.ToLower(c.Name)
			if protected[tn+"."+cn] {
				continue
			}
			out[tn] = append(out[tn], cn)
		}
	}
	return out
}

// injectNulls replaces NullPct percent of the rows of every nullable
// column with NULL, then resets the modification counters so maintenance
// behavior stays driven by the workload's DML alone.
func (h *Harness) injectNulls() error {
	if h.Opts.NullPct <= 0 {
		return nil
	}
	nullable := h.nullableColumns()
	tables := make([]string, 0, len(nullable))
	for t := range nullable {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, tn := range tables {
		td, err := h.DB.Table(tn)
		if err != nil {
			return err
		}
		var ids []int
		td.Scan(func(id int, _ storage.Row) bool {
			ids = append(ids, id)
			return true
		})
		for _, cn := range nullable[tn] {
			pos := -1
			var typ catalog.Type
			for i, c := range td.Schema.Columns {
				if strings.EqualFold(c.Name, cn) {
					pos, typ = i, c.Type
					break
				}
			}
			if pos < 0 {
				continue
			}
			var hit []int
			for _, id := range ids {
				if h.rng.Intn(100) < h.Opts.NullPct {
					hit = append(hit, id)
				}
			}
			td.Update(hit, pos, catalog.NewNull(typ))
		}
		td.ResetModCounter()
	}
	return nil
}
