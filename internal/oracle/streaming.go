package oracle

import (
	"bytes"
	"fmt"
	"reflect"

	"autostats/internal/histogram"
	"autostats/internal/stats"
)

// Streaming differential oracle. The tentpole invariant of the streaming
// build path is bitwise identity: a statistic built block-at-a-time — at any
// block size, any partition cut, spilling or not, merging partials in any
// order — must be EXACTLY the statistic the materialized single-pass build
// produces. This sweep checks the invariant at two levels: end to end
// through stats.Manager (block sizes × forced/disabled spilling, including
// the temp-file codec on the spill path), and at the histogram layer
// (random partition cuts, shuffled merge orders, and an explicit
// encode/decode roundtrip of every partial).

// streamSweepBlockSizes are the block sizes the manager-level sweep covers:
// degenerate (1), prime and non-dividing (7), typical (64), and larger than
// most oracle tables (4096, one block per partition).
var streamSweepBlockSizes = []int{1, 7, 64, 4096}

// streamSweepTargets are the statistics the sweep builds: a date column with
// heavy duplication, a skewed multi-column pair, and a NULL-bearing numeric
// column (injectNulls targets unindexed numerics like c_acctbal).
var streamSweepTargets = []struct {
	table string
	cols  []string
}{
	{"orders", []string{"o_orderdate"}},
	{"lineitem", []string{"l_quantity", "l_partkey"}},
	{"customer", []string{"c_acctbal"}},
}

// StreamReport summarizes one streaming-sweep run.
type StreamReport struct {
	// Builds counts streaming manager builds compared against references.
	Builds int
	// MergeOrders counts shuffled histogram-level merge orders checked.
	MergeOrders int
	// Roundtrips counts partials pushed through the spill codec.
	Roundtrips int
	// Findings lists every violation.
	Findings []Finding
}

// RunStreamingSweep executes the streaming differential sweep on the
// harness's database. The harness's own manager is untouched: every
// configuration gets a fresh manager over the shared (read-only for this
// oracle) data.
func (h *Harness) RunStreamingSweep() (*StreamReport, error) {
	rep := &StreamReport{}
	for _, tgt := range streamSweepTargets {
		ref := stats.NewManager(h.DB, histogram.MaxDiff, 0)
		ref.SetObsRegistry(h.Reg)
		refStat, err := ref.Create(tgt.table, tgt.cols)
		if err != nil {
			return nil, fmt.Errorf("reference build %s%v: %w", tgt.table, tgt.cols, err)
		}

		// Manager level: block sizes × spill forced on/off.
		for _, bs := range streamSweepBlockSizes {
			for _, budget := range []int64{0, 1} {
				m := stats.NewManager(h.DB, histogram.MaxDiff, 0)
				m.SetObsRegistry(h.Reg)
				if err := m.SetStreamingBuild(stats.StreamConfig{
					Enabled:        true,
					BlockSize:      bs,
					PartitionRows:  64,
					MemBudgetBytes: budget,
				}); err != nil {
					return nil, err
				}
				st, err := m.Create(tgt.table, tgt.cols)
				if err != nil {
					return nil, fmt.Errorf("streaming build %s%v block=%d budget=%d: %w",
						tgt.table, tgt.cols, bs, budget, err)
				}
				rep.Builds++
				if !reflect.DeepEqual(st.Data, refStat.Data) {
					rep.Findings = append(rep.Findings, Finding{
						Oracle: "streaming",
						Seed:   h.Opts.Seed,
						Detail: fmt.Sprintf("%s%v: streamed histogram (block=%d budget=%d) differs from single-pass build",
							tgt.table, tgt.cols, bs, budget),
					})
				}
				if st.DeltaSeq != refStat.DeltaSeq {
					rep.Findings = append(rep.Findings, Finding{
						Oracle: "streaming",
						Seed:   h.Opts.Seed,
						Detail: fmt.Sprintf("%s%v: streamed DeltaSeq=%d, single-pass=%d",
							tgt.table, tgt.cols, st.DeltaSeq, refStat.DeltaSeq),
					})
				}
			}
		}

		// Histogram level: random partition cuts, codec roundtrip of every
		// partial, merge in shuffled order — still bitwise-identical.
		td, err := h.DB.Table(tgt.table)
		if err != nil {
			return nil, err
		}
		tuples, _, err := td.MultiColumnValuesSeq(tgt.cols)
		if err != nil {
			return nil, err
		}
		for round := 0; round < 4; round++ {
			var parts []*histogram.Partial
			b, err := histogram.NewPartialBuilder(tgt.cols)
			if err != nil {
				return nil, err
			}
			for pos := 0; pos < len(tuples); {
				n := 1 + h.rng.Intn(97)
				if pos+n > len(tuples) {
					n = len(tuples) - pos
				}
				if err := b.AddBlock(tuples[pos : pos+n]); err != nil {
					return nil, err
				}
				pos += n
				if h.rng.Intn(3) == 0 {
					parts = append(parts, b.Finish())
				}
			}
			if b.Rows() > 0 || len(parts) == 0 {
				parts = append(parts, b.Finish())
			}
			// Every partial takes a spill-codec roundtrip.
			for i, p := range parts {
				var buf bytes.Buffer
				if err := histogram.EncodePartial(&buf, p); err != nil {
					return nil, err
				}
				q, err := histogram.DecodePartial(&buf)
				if err != nil {
					return nil, err
				}
				rep.Roundtrips++
				if !reflect.DeepEqual(p, q) {
					rep.Findings = append(rep.Findings, Finding{
						Oracle: "streaming",
						Seed:   h.Opts.Seed,
						Detail: fmt.Sprintf("%s%v: partial %d changed across the spill codec roundtrip",
							tgt.table, tgt.cols, i),
					})
				}
				parts[i] = q
			}
			h.rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
			mc, err := histogram.MergePartials(histogram.MaxDiff, tgt.cols, parts, 0)
			if err != nil {
				return nil, err
			}
			rep.MergeOrders++
			if !reflect.DeepEqual(mc, refStat.Data) {
				rep.Findings = append(rep.Findings, Finding{
					Oracle: "streaming",
					Seed:   h.Opts.Seed,
					Detail: fmt.Sprintf("%s%v: shuffled merge of %d spilled partials differs from single-pass build",
						tgt.table, tgt.cols, len(parts)),
				})
			}
		}
	}
	return rep, nil
}
