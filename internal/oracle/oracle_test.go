package oracle

import (
	"testing"
)

// The counts below are sized so the whole package runs in well under a
// minute without -race while still exercising every oracle meaningfully:
// the differential sweep covers >1000 optimized-vs-reference queries and
// the metamorphic suites several thousand cost assertions.
const (
	diffCount    = 1200
	monoCount    = 30
	bracketCount = 40
	shrinkCount  = 40
)

func reportFindings(t *testing.T, oracle string, findings []Finding) {
	t.Helper()
	for i, f := range findings {
		if i >= 10 {
			t.Errorf("%s: ... %d further findings suppressed", oracle, len(findings)-i)
			break
		}
		t.Errorf("%s finding: %s", oracle, f)
	}
}

// TestDifferentialSweep is the headline oracle: a 1200-statement randomized
// workload (DML interleaved, MNSA and maintenance running periodically)
// where every query's optimized execution is diffed against the naive
// reference evaluator.
func TestDifferentialSweep(t *testing.T) {
	h, err := New(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.RunDifferential(diffCount)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries < 1000 {
		t.Errorf("sweep ran %d queries, want >= 1000 (raise diffCount)", rep.Queries)
	}
	if rep.MNSARuns == 0 || rep.MaintenanceRuns == 0 {
		t.Errorf("sweep must interleave MNSA (%d) and maintenance (%d) runs", rep.MNSARuns, rep.MaintenanceRuns)
	}
	if rep.Skipped > rep.Queries/20 {
		t.Errorf("%d/%d queries skipped on naive budget — coverage too thin", rep.Skipped, rep.Queries)
	}
	reportFindings(t, "differential", rep.Findings)
}

// TestMonotonicitySweep checks the optimizer cost model is non-decreasing
// in each pinned selectivity variable — the assumption MNSA's bracketing
// argument (paper §4) rests on.
func TestMonotonicitySweep(t *testing.T) {
	h, err := New(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.RunMonotonicity(monoCount)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Assertions == 0 {
		t.Fatal("monotonicity sweep made no assertions")
	}
	reportFindings(t, "monotonicity", rep.Findings)
}

// TestExtremeBracketSweep checks the MNSA bracket: the true cost (with all
// statistics actually built) and every interior pinning lie between the
// eps / 1-eps extremes, and t-equivalent extremes imply the true cost is
// within the same tolerance of the bracket (paper §5's essential-set
// soundness).
func TestExtremeBracketSweep(t *testing.T) {
	h, err := New(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.RunExtremeBracket(bracketCount, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Assertions == 0 {
		t.Fatal("bracket sweep made no assertions")
	}
	reportFindings(t, "bracket", rep.Findings)
}

// TestShrinkPreservationSweep checks the Shrinking Set guarantee (paper
// §5.2): after shrinking, ignoring the removed statistics wholesale must
// leave every workload query's plan unchanged.
func TestShrinkPreservationSweep(t *testing.T) {
	h, err := New(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.RunShrinkPreservation(shrinkCount)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked == 0 {
		t.Fatal("shrink sweep checked no queries")
	}
	reportFindings(t, "shrink", rep.Findings)
}

// TestHarnessDeterminism runs the cheapest oracle twice from the same seed
// and requires identical reports — the property that makes any failure
// seed a reproducible bug report.
func TestHarnessDeterminism(t *testing.T) {
	run := func() *DiffReport {
		h, err := New(Options{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := h.RunDifferential(150)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Statements != b.Statements || a.Queries != b.Queries || a.DML != b.DML ||
		a.Skipped != b.Skipped || a.MNSARuns != b.MNSARuns || a.MaintenanceRuns != b.MaintenanceRuns ||
		len(a.Findings) != len(b.Findings) {
		t.Fatalf("same seed produced different reports:\n  a: %+v\n  b: %+v", a, b)
	}
	for i := range a.Findings {
		if a.Findings[i] != b.Findings[i] {
			t.Errorf("finding %d differs between identical runs", i)
		}
	}
}

// TestSeedCorpus replays the seed corpus the initial qualification sweep
// ran (seeds 2..8; seed 7 surfaced the index-seek bounds bug fixed in
// internal/executor and locked by its own regression test there). A clean
// corpus here is the regression guard that the whole pipeline stays
// correct on workloads known to have had discriminating power.
func TestSeedCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("seed corpus sweep is not short")
	}
	for seed := int64(2); seed <= 8; seed++ {
		h, err := New(Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := h.RunDifferential(200)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		reportFindings(t, "corpus differential", rep.Findings)
		mrep, err := h.RunMonotonicity(5)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		reportFindings(t, "corpus monotonicity", mrep.Findings)
		brep, err := h.RunExtremeBracket(8, 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		reportFindings(t, "corpus bracket", brep.Findings)
		srep, err := h.RunShrinkPreservation(10)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		reportFindings(t, "corpus shrink", srep.Findings)
	}
}

// TestSimpleQueriesMode covers the reduced-grammar knob cmd/oracle exposes.
func TestSimpleQueriesMode(t *testing.T) {
	h, err := New(Options{Seed: 3, SimpleQueries: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.RunDifferential(150)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 {
		t.Fatal("simple mode produced no queries")
	}
	reportFindings(t, "simple differential", rep.Findings)
}
