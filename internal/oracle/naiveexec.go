// Package oracle is a seeded, deterministic randomized-testing subsystem
// for the auto-stats pipeline. It provides four oracles:
//
//   - a differential result oracle: every generated query is executed twice,
//     once through the optimized plan and once through a trivially correct
//     reference evaluator (this file), and the result multisets are diffed;
//   - metamorphic plan oracles: cost-monotonicity in the pinned selectivity
//     variables (§4 of the paper), extreme-plan bracketing and t-equivalence
//     ground truth, and Shrinking Set plan preservation (§5.2);
//   - statistics fault injection: a stats.Provider wrapper and Manager
//     failpoints that simulate refresh failures, stale epochs and torn
//     snapshots, proving the plan cache never serves a poisoned plan;
//   - a CLI (cmd/oracle) running all of the above from a seed, in a short
//     deterministic mode for tier-1 tests and a duration-bounded mode for
//     nightly CI.
//
// Everything is driven by a single int64 seed; a reported failure prints
// the seed and statement index needed to replay it.
package oracle

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"autostats/internal/catalog"
	"autostats/internal/query"
	"autostats/internal/storage"
)

// NaiveResult is the output of the reference evaluator, shaped like
// executor.Result so the two can be diffed.
type NaiveResult struct {
	// Cols maps "table.column" (or an Aggregate.Key) to column position.
	Cols map[string]int
	// Rows is the output row multiset, in no particular order.
	Rows [][]catalog.Datum
}

// ErrBudget is returned when a naive evaluation would materialize more
// intermediate rows than the caller's budget; the differential oracle
// counts such queries as skipped rather than failed.
var ErrBudget = fmt.Errorf("oracle: naive evaluation exceeded the row budget")

// NaiveExecute evaluates q against db using only full table scans and
// FROM-order nested-loop joins — no indexes, no join reordering, no hash or
// merge strategies — so it shares no planning or physical-operator code
// with the optimizer/executor stack it checks. Join predicates are applied
// as soon as both sides are present (every FROM prefix the workload
// generator emits is FK-connected, so intermediates stay near final size).
// maxRows bounds any intermediate relation; exceeding it returns ErrBudget.
// A maxRows <= 0 means unbounded.
//
// Semantics replicated from the SQL subset the executor implements:
// comparisons involving NULL are false (so NULL join keys never match),
// aggregates skip NULL inputs, empty aggregation yields NULL except
// COUNT(*) which yields 0, HAVING filters aggregate output, and grouped
// queries output group columns then aggregates keyed by Aggregate.Key().
// Non-grouped queries output every column of every FROM table.
func NaiveExecute(db *storage.Database, q *query.Select, maxRows int) (*NaiveResult, error) {
	if maxRows <= 0 {
		maxRows = int(^uint(0) >> 1)
	}
	joined, err := naiveJoin(db, q, maxRows)
	if err != nil {
		return nil, err
	}
	aggs := naiveAggregateSet(q)
	groupCols := q.GroupingColumns()
	if len(groupCols) == 0 && len(aggs) == 0 {
		return joined, nil
	}
	return naiveAggregate(joined, q, groupCols, aggs)
}

// naiveJoin produces the filtered join of all FROM tables in FROM order.
func naiveJoin(db *storage.Database, q *query.Select, maxRows int) (*NaiveResult, error) {
	out := &NaiveResult{Cols: make(map[string]int)}
	for _, tname := range q.Tables {
		td, err := db.Table(tname)
		if err != nil {
			return nil, err
		}
		tn := strings.ToLower(td.Schema.Name)
		// Positions of this table's columns in the joined row.
		offset := len(out.Cols)
		tcols := make(map[string]int, len(td.Schema.Columns))
		for i, c := range td.Schema.Columns {
			key := tn + "." + strings.ToLower(c.Name)
			out.Cols[key] = offset + i
			tcols[strings.ToLower(c.Name)] = i
		}

		// Scan and filter this table's rows up front.
		filters := q.FiltersOn(tn)
		var trows []storage.Row
		var scanErr error
		td.Scan(func(_ int, r storage.Row) bool {
			for _, f := range filters {
				p, ok := tcols[strings.ToLower(f.Col.Column)]
				if !ok {
					scanErr = fmt.Errorf("oracle: filter column %s not in table %s", f.Col, tn)
					return false
				}
				match, err := f.Op.Eval(r[p], f.Val)
				if err != nil {
					scanErr = fmt.Errorf("oracle: evaluating %s: %w", f, err)
					return false
				}
				if !match {
					return true
				}
			}
			trows = append(trows, r)
			return true
		})
		if scanErr != nil {
			return nil, scanErr
		}

		// Join predicates that become evaluable once this table is added:
		// both endpoints resolved, at least one endpoint is this table.
		var preds []query.JoinPred
		for _, j := range q.Joins {
			lk, rk := colRefKey(j.Left), colRefKey(j.Right)
			lNew, rNew := strings.EqualFold(j.Left.Table, tn), strings.EqualFold(j.Right.Table, tn)
			if !lNew && !rNew {
				continue
			}
			_, lOK := out.Cols[lk]
			_, rOK := out.Cols[rk]
			if lOK && rOK {
				preds = append(preds, j)
			}
		}

		if out.Rows == nil && offset == 0 {
			// First table: seed the accumulator (self-joins are impossible,
			// so preds is empty here).
			out.Rows = make([][]catalog.Datum, len(trows))
			for i, r := range trows {
				out.Rows[i] = append([]catalog.Datum(nil), r...)
			}
			if len(out.Rows) > maxRows {
				return nil, ErrBudget
			}
			continue
		}

		var next [][]catalog.Datum
		for _, acc := range out.Rows {
			for _, r := range trows {
				combined := append(append([]catalog.Datum(nil), acc...), r...)
				ok := true
				for _, j := range preds {
					match, err := query.Eq.Eval(combined[out.Cols[colRefKey(j.Left)]], combined[out.Cols[colRefKey(j.Right)]])
					if err != nil {
						return nil, fmt.Errorf("oracle: evaluating join %s: %w", j, err)
					}
					if !match {
						ok = false
						break
					}
				}
				if ok {
					next = append(next, combined)
					if len(next) > maxRows {
						return nil, ErrBudget
					}
				}
			}
		}
		out.Rows = next
	}
	return out, nil
}

func colRefKey(c query.ColumnRef) string {
	return strings.ToLower(c.Table) + "." + strings.ToLower(c.Column)
}

// naiveAggregateSet unions the SELECT-list aggregates with the extra ones
// HAVING references, deduplicated by output key — the same contract the
// optimizer hands the executor.
func naiveAggregateSet(q *query.Select) []query.Aggregate {
	out := append([]query.Aggregate(nil), q.Aggregates...)
	seen := make(map[string]bool, len(out))
	for _, a := range out {
		seen[a.Key()] = true
	}
	for _, h := range q.Having {
		if !seen[h.Agg.Key()] {
			seen[h.Agg.Key()] = true
			out = append(out, h.Agg)
		}
	}
	return out
}

// naiveAgg accumulates one aggregate over one group with SQL NULL
// semantics: NULL inputs are skipped; an empty accumulation yields NULL,
// except COUNT which yields 0. SUM over an integer column returns an
// integer (accumulated in float64, matching the executor's currency).
type naiveAgg struct {
	fn    query.AggFunc
	pos   int // joined-row position; -1 for COUNT(*)
	count int64
	sum   float64
	isInt bool
	min   catalog.Datum
	max   catalog.Datum
	seen  bool
}

func (a *naiveAgg) add(row []catalog.Datum) {
	if a.fn == query.CountStar {
		a.count++
		return
	}
	v := row[a.pos]
	if v.Null {
		return
	}
	a.count++
	switch a.fn {
	case query.Sum, query.Avg:
		if v.T == catalog.Float {
			a.sum += v.F
		} else {
			a.sum += float64(v.I)
			a.isInt = v.T == catalog.Int
		}
	case query.Min:
		if !a.seen || v.Compare(a.min) < 0 {
			a.min = v
		}
	case query.Max:
		if !a.seen || v.Compare(a.max) > 0 {
			a.max = v
		}
	}
	a.seen = true
}

func (a *naiveAgg) result() catalog.Datum {
	switch a.fn {
	case query.CountStar, query.Count:
		return catalog.NewInt(a.count)
	case query.Sum:
		if a.count == 0 {
			return catalog.NewNull(catalog.Float)
		}
		if a.isInt {
			return catalog.NewInt(int64(a.sum))
		}
		return catalog.NewFloat(a.sum)
	case query.Avg:
		if a.count == 0 {
			return catalog.NewNull(catalog.Float)
		}
		return catalog.NewFloat(a.sum / float64(a.count))
	case query.Min:
		if !a.seen {
			return catalog.NewNull(catalog.Float)
		}
		return a.min
	case query.Max:
		if !a.seen {
			return catalog.NewNull(catalog.Float)
		}
		return a.max
	default:
		return catalog.NewNull(catalog.Float)
	}
}

// naiveAggregate groups the joined rows and evaluates aggregates and
// HAVING. With no group columns it produces exactly one (scalar) row even
// over empty input.
func naiveAggregate(joined *NaiveResult, q *query.Select, groupCols []query.ColumnRef, aggs []query.Aggregate) (*NaiveResult, error) {
	gpos := make([]int, len(groupCols))
	for i, g := range groupCols {
		p, ok := joined.Cols[colRefKey(g)]
		if !ok {
			return nil, fmt.Errorf("oracle: group column %s not in joined result", g)
		}
		gpos[i] = p
	}
	apos := make([]int, len(aggs))
	for i, a := range aggs {
		apos[i] = -1
		if a.Func != query.CountStar {
			p, ok := joined.Cols[colRefKey(a.Col)]
			if !ok {
				return nil, fmt.Errorf("oracle: aggregate column %s not in joined result", a.Col)
			}
			apos[i] = p
		}
	}

	type group struct {
		key  []catalog.Datum
		aggr []naiveAgg
	}
	newGroup := func(row []catalog.Datum) *group {
		g := &group{aggr: make([]naiveAgg, len(aggs))}
		for i := range aggs {
			g.aggr[i] = naiveAgg{fn: aggs[i].Func, pos: apos[i]}
		}
		if row != nil {
			g.key = make([]catalog.Datum, len(gpos))
			for i, p := range gpos {
				g.key[i] = row[p]
			}
		}
		return g
	}
	groups := make(map[string]*group)
	var order []string
	for _, row := range joined.Rows {
		k := encodeDatums(row, gpos)
		g, ok := groups[k]
		if !ok {
			g = newGroup(row)
			groups[k] = g
			order = append(order, k)
		}
		for i := range g.aggr {
			g.aggr[i].add(row)
		}
	}
	if len(gpos) == 0 && len(groups) == 0 {
		// Scalar aggregation over zero rows still yields one row.
		groups[""] = newGroup(nil)
		order = append(order, "")
	}

	out := &NaiveResult{Cols: make(map[string]int, len(groupCols)+len(aggs))}
	for i, g := range groupCols {
		out.Cols[colRefKey(g)] = i
	}
	for i, a := range aggs {
		out.Cols[a.Key()] = len(groupCols) + i
	}
	for _, k := range order {
		g := groups[k]
		row := make([]catalog.Datum, 0, len(gpos)+len(aggs))
		row = append(row, g.key...)
		for i := range g.aggr {
			row = append(row, g.aggr[i].result())
		}
		keep := true
		for _, h := range q.Having {
			p, ok := out.Cols[h.Agg.Key()]
			if !ok {
				return nil, fmt.Errorf("oracle: HAVING references uncomputed aggregate %s", h.Agg.SQL())
			}
			match, err := h.Op.Eval(row[p], h.Val)
			if err != nil {
				return nil, fmt.Errorf("oracle: evaluating HAVING %s: %w", h.Agg.SQL(), err)
			}
			if !match {
				keep = false
				break
			}
		}
		if keep {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// encodeDatums renders the selected positions of a row into a collision-free
// string key: type tag plus exact value, NULLs collated together.
func encodeDatums(row []catalog.Datum, pos []int) string {
	var b strings.Builder
	for _, p := range pos {
		encodeDatum(&b, row[p])
	}
	return b.String()
}

func encodeDatum(b *strings.Builder, d catalog.Datum) {
	if d.Null {
		b.WriteString("N;")
		return
	}
	switch d.T {
	case catalog.Float:
		// Exact bit pattern: the differential oracle must not confuse two
		// floats that merely print alike.
		b.WriteString("f")
		b.WriteString(strconv.FormatUint(math.Float64bits(d.F), 16))
	case catalog.String:
		b.WriteString("s")
		b.WriteString(strconv.Itoa(len(d.S)))
		b.WriteString(":")
		b.WriteString(d.S)
	default:
		b.WriteString("i")
		b.WriteString(strconv.FormatInt(d.I, 10))
	}
	b.WriteString(";")
}
