package oracle

import "testing"

// TestStreamingSweep runs the streaming differential oracle at two seeds:
// zero histogram mismatches across block sizes, spill modes, codec
// roundtrips and shuffled merge orders.
func TestStreamingSweep(t *testing.T) {
	for _, seed := range []int64{11, 29} {
		h, err := New(Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := h.RunStreamingSweep()
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range rep.Findings {
			t.Errorf("seed %d: %s", seed, f)
		}
		if rep.Builds == 0 || rep.MergeOrders == 0 || rep.Roundtrips == 0 {
			t.Fatalf("seed %d: sweep did no work: %+v", seed, rep)
		}
		t.Logf("seed %d: %d streaming builds, %d shuffled merges, %d codec roundtrips, %d findings",
			seed, rep.Builds, rep.MergeOrders, rep.Roundtrips, len(rep.Findings))
	}
}
