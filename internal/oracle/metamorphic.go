package oracle

import (
	"fmt"
	"math/rand"

	"autostats/internal/core"
	"autostats/internal/histogram"
	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/stats"
	"autostats/internal/workload"
)

// relCostTol absorbs float noise in cost comparisons. The monotonicity and
// bracketing arguments are exact over the reals; in float64 the optimizer
// sums per-operator costs in plan-dependent orders, so equal-by-math costs
// can differ in the last bits.
const relCostTol = 1e-9

// bracketTol is the looser relative slack for the extreme-plan bracket:
// histogram estimates can reach selectivity 1.0 while P_high pins variables
// at 1−ε, so the bracket's upper end is compared with ε-sized headroom.
const bracketTol = 1e-3

// monotonicityGrid is the ascending selectivity sweep for each pinned
// variable. It spans the clamp floor (optimizer.MinSelectivity) to 1−floor,
// log-spaced below 0.1 and linear above, hitting the magic-number values
// (0.10, 0.30, 0.90) where plan flips concentrate.
var monotonicityGrid = []float64{
	optimizer.MinSelectivity, 1e-5, 1e-4, 1e-3, 0.01, 0.05,
	0.10, 0.20, 0.30, 0.50, 0.70, 0.90, 0.99, 1 - 1e-4, 1 - optimizer.MinSelectivity,
}

// MetaReport summarizes one metamorphic oracle run.
type MetaReport struct {
	// Queries counts generated SELECTs examined.
	Queries int
	// Checked counts queries that actually exercised the oracle (e.g. had
	// missing selectivity variables to sweep).
	Checked int
	// Assertions counts individual property checks performed.
	Assertions int
	// Findings lists every violation.
	Findings []Finding
}

// metaQueries generates a pure-SELECT workload for the metamorphic oracles
// (seed offset separates it from the differential stream).
func (h *Harness) metaQueries(count int, seedOffset int64) ([]*query.Select, error) {
	w, err := workload.Generate(h.DB, workload.Config{
		Count:      count,
		UpdatePct:  0,
		Complexity: h.Opts.complexity(),
		GroupByPct: 40,
		OrderByPct: 20,
		NePct:      10,
		Seed:       h.Opts.Seed + seedOffset,
	})
	if err != nil {
		return nil, err
	}
	out := make([]*query.Select, 0, len(w.Statements))
	for _, s := range w.Statements {
		if sel, ok := s.(*query.Select); ok {
			out = append(out, sel)
		}
	}
	return out, nil
}

// freshSession builds an isolated manager+session over the harness's
// database with no statistics, so every selectivity variable starts
// missing and overrides bind to all of them.
func (h *Harness) freshSession() (*stats.Manager, *optimizer.Session) {
	mgr := stats.NewManager(h.DB, histogram.MaxDiff, 0)
	mgr.SetObsRegistry(h.Reg)
	return mgr, optimizer.NewSession(mgr)
}

// RunMonotonicity checks the paper's §4 premise directly: the optimal plan
// cost, as a function of any one pinned selectivity variable with the
// others held fixed, is non-decreasing. (Each individual plan's cost is
// monotone in each variable, and the optimum is a pointwise minimum of
// monotone functions, hence monotone.) MNSA's extreme-plan bracketing is
// sound only under this property.
func (h *Harness) RunMonotonicity(count int) (*MetaReport, error) {
	queries, err := h.metaQueries(count, 1000)
	if err != nil {
		return nil, err
	}
	_, sess := h.freshSession()
	rng := rand.New(rand.NewSource(h.Opts.Seed + 2000))
	rep := &MetaReport{}
	for _, q := range queries {
		rep.Queries++
		missing := sess.MissingStatVars(q)
		if len(missing) == 0 {
			continue
		}
		rep.Checked++
		// Hold the other variables at a random point so sweeps cross
		// different cost terrain per query.
		base := make(map[int]float64, len(missing))
		for _, v := range missing {
			base[v] = 0.05 + 0.9*rng.Float64()
		}
		for _, v := range missing {
			prev := -1.0
			prevSel := 0.0
			for _, sel := range monotonicityGrid {
				ov := make(map[int]float64, len(missing))
				for k, val := range base {
					ov[k] = val
				}
				ov[v] = sel
				sess.SetSelectivityOverrides(ov)
				p, err := sess.Optimize(q)
				if err != nil {
					sess.ClearOverrides()
					return rep, fmt.Errorf("oracle: optimize %s with var %d=%g: %w", q.SQL(), v, sel, err)
				}
				rep.Assertions++
				if prev >= 0 && p.Cost() < prev*(1-relCostTol) {
					rep.Findings = append(rep.Findings, Finding{
						Oracle: "monotonicity",
						Seed:   h.Opts.Seed,
						SQL:    q.SQL(),
						Detail: fmt.Sprintf("cost decreased on var %d: C(%g)=%.6f > C(%g)=%.6f", v, prevSel, prev, sel, p.Cost()),
					})
					break
				}
				prev, prevSel = p.Cost(), sel
			}
		}
		sess.ClearOverrides()
	}
	return rep, nil
}

// RunExtremeBracket checks MNSA's central inference per query, against a
// fresh statistics-free session:
//
//  1. bracketing — for random interior assignments of the missing
//     variables, the optimal cost lies within [Cost(P_low), Cost(P_high)];
//  2. ground truth — after physically building every candidate statistic
//     (the step MNSA's sensitivity analysis exists to avoid), the real
//     plan's cost still lies within the extreme bracket, and whenever the
//     extremes were t-equivalent, the real cost is within the t band of
//     them, confirming the "essential set already present" verdict.
//
// Extremes are pinned at ε = optimizer.MinSelectivity rather than the
// paper's 0.0005: the estimator clamps every selectivity to the
// [MinSelectivity, 1] interval, so this ε makes the bracket cover every
// value a histogram can produce.
func (h *Harness) RunExtremeBracket(count, samples int) (*MetaReport, error) {
	queries, err := h.metaQueries(count, 3000)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(h.Opts.Seed + 4000))
	rep := &MetaReport{}
	eps := optimizer.MinSelectivity
	teq := core.TOptimizerCost{T: 20}
	for _, q := range queries {
		rep.Queries++
		// Fresh manager per query: statistics built for the ground-truth
		// step must not leak into the next query's missing-variable set.
		mgr, sess := h.freshSession()
		missing := sess.MissingStatVars(q)
		if len(missing) == 0 {
			continue
		}
		rep.Checked++

		pin := func(sel float64) (*optimizer.Plan, error) {
			ov := make(map[int]float64, len(missing))
			for _, v := range missing {
				ov[v] = sel
			}
			sess.SetSelectivityOverrides(ov)
			return sess.Optimize(q)
		}
		pLow, err := pin(eps)
		if err != nil {
			return rep, fmt.Errorf("oracle: P_low for %s: %w", q.SQL(), err)
		}
		pHigh, err := pin(1 - eps)
		if err != nil {
			return rep, fmt.Errorf("oracle: P_high for %s: %w", q.SQL(), err)
		}
		lo, hi := pLow.Cost(), pHigh.Cost()
		rep.Assertions++
		if lo > hi*(1+relCostTol) {
			rep.Findings = append(rep.Findings, Finding{
				Oracle: "extreme-bracket",
				Seed:   h.Opts.Seed,
				SQL:    q.SQL(),
				Detail: fmt.Sprintf("Cost(P_low)=%.6f exceeds Cost(P_high)=%.6f", lo, hi),
			})
			continue
		}
		inBracket := func(c float64) bool {
			return c >= lo*(1-bracketTol) && c <= hi*(1+bracketTol)
		}

		// (1) Random interior assignments must stay inside the bracket.
		for s := 0; s < samples; s++ {
			ov := make(map[int]float64, len(missing))
			for _, v := range missing {
				ov[v] = eps + (1-2*eps)*rng.Float64()
			}
			sess.SetSelectivityOverrides(ov)
			p, err := sess.Optimize(q)
			if err != nil {
				return rep, fmt.Errorf("oracle: interior optimize %s: %w", q.SQL(), err)
			}
			rep.Assertions++
			if !inBracket(p.Cost()) {
				rep.Findings = append(rep.Findings, Finding{
					Oracle: "extreme-bracket",
					Seed:   h.Opts.Seed,
					SQL:    q.SQL(),
					Detail: fmt.Sprintf("interior cost %.6f outside [%.6f, %.6f] at %v", p.Cost(), lo, hi, ov),
				})
				break
			}
		}

		// (2) Ground truth: build every candidate statistic and re-optimize
		// with real estimates. The equivalence verdict MNSA would reach
		// from the extremes alone must hold for the realized plan.
		equivalent := teq.Equivalent(pLow, pHigh)
		for _, c := range core.CandidateStats(q) {
			if _, err := mgr.Create(c.Table, c.Columns); err != nil {
				return rep, fmt.Errorf("oracle: building candidate %s for %s: %w", c.ID(), q.SQL(), err)
			}
		}
		sess.ClearOverrides()
		pFull, err := sess.Optimize(q)
		if err != nil {
			return rep, fmt.Errorf("oracle: full-stats optimize %s: %w", q.SQL(), err)
		}
		rep.Assertions++
		if !inBracket(pFull.Cost()) {
			rep.Findings = append(rep.Findings, Finding{
				Oracle: "extreme-bracket",
				Seed:   h.Opts.Seed,
				SQL:    q.SQL(),
				Detail: fmt.Sprintf("full-statistics cost %.6f outside extreme bracket [%.6f, %.6f]", pFull.Cost(), lo, hi),
			})
			continue
		}
		if equivalent {
			rep.Assertions++
			band := (teq.T/100)*1 + bracketTol
			if lo > 0 && (pFull.Cost()-lo)/lo > band {
				rep.Findings = append(rep.Findings, Finding{
					Oracle: "t-equivalence",
					Seed:   h.Opts.Seed,
					SQL:    q.SQL(),
					Detail: fmt.Sprintf("extremes t-equivalent but full-statistics cost %.6f is %.1f%% above P_low %.6f", pFull.Cost(), 100*(pFull.Cost()-lo)/lo, lo),
				})
			}
		}
	}
	return rep, nil
}

// RunShrinkPreservation checks §5.2's guarantee end to end: after building
// statistics for a query batch and shrinking them, ignoring exactly the
// removed set must leave every query's plan equivalent (execution-tree) to
// its plan under the full set. This re-checks the FINAL set wholesale —
// the algorithm itself only ever verified one removal at a time against
// the then-current set, so this is a genuine oracle, not a tautology.
func (h *Harness) RunShrinkPreservation(count int) (*MetaReport, error) {
	queries, err := h.metaQueries(count, 5000)
	if err != nil {
		return nil, err
	}
	mgr, sess := h.freshSession()
	rep := &MetaReport{}
	for _, c := range core.WorkloadCandidates(queries, core.CandidateStats) {
		if _, err := mgr.Create(c.Table, c.Columns); err != nil {
			return nil, fmt.Errorf("oracle: building candidate %s: %w", c.ID(), err)
		}
	}
	baseline := make([]string, len(queries))
	for i, q := range queries {
		p, err := sess.Optimize(q)
		if err != nil {
			return nil, fmt.Errorf("oracle: baseline optimize %s: %w", q.SQL(), err)
		}
		baseline[i] = p.Signature()
	}
	res, err := core.ShrinkingSet(sess, queries, nil, core.ExecutionTree{})
	if err != nil {
		return nil, fmt.Errorf("oracle: shrinking set: %w", err)
	}
	if err := sess.IgnoreStatisticsSubset("", res.Removed); err != nil {
		return nil, err
	}
	defer sess.ClearIgnored()
	for i, q := range queries {
		rep.Queries++
		rep.Checked++
		p, err := sess.Optimize(q)
		if err != nil {
			return rep, fmt.Errorf("oracle: shrunk-set optimize %s: %w", q.SQL(), err)
		}
		rep.Assertions++
		if p.Signature() != baseline[i] {
			rep.Findings = append(rep.Findings, Finding{
				Oracle: "shrink-preservation",
				Seed:   h.Opts.Seed,
				SQL:    q.SQL(),
				Detail: fmt.Sprintf("plan changed after removing %d statistics (kept %d):\n  before: %s\n  after:  %s", len(res.Removed), len(res.Kept), baseline[i], p.Signature()),
			})
		}
	}
	return rep, nil
}
