package oracle

import (
	"fmt"
	"testing"

	"autostats/internal/catalog"
	"autostats/internal/query"
	"autostats/internal/sqlparser"
)

// TestBucketBoundaryDifferential sweeps filter constants across the
// histogram's bucket boundaries — the exact points where the parameterized
// plan cache's selectivity buckets can flip — and checks every execution
// against the reference evaluator. All sweeps share one cached session, so
// the run exercises cold optimizations, same-bucket rebound hits and
// cross-bucket misses alike; the results must be identical in every case.
func TestBucketBoundaryDifferential(t *testing.T) {
	h, err := New(Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	st, err := h.Mgr.Create("orders", []string{"o_orderdate"})
	if err != nil {
		t.Fatal(err)
	}
	hist := st.Data.Leading
	if len(hist.Buckets) < 2 {
		t.Fatalf("histogram too small to have boundaries: %d buckets", len(hist.Buckets))
	}

	ops := []string{">", ">=", "<", "<=", "="}
	checked, findings := 0, 0
	for _, b := range hist.Buckets {
		for _, edge := range []catalog.Datum{b.Lo, b.Hi} {
			// Probe the boundary itself and one step to either side: the
			// three constants typically straddle a selectivity-bucket flip.
			for delta := int64(-1); delta <= 1; delta++ {
				v := edge.I + delta
				for _, op := range ops {
					sql := fmt.Sprintf("SELECT * FROM orders WHERE o_orderdate %s %s",
						op, catalog.NewDate(v))
					sel, err := sqlparser.ParseSelect(h.DB.Schema, sql)
					if err != nil {
						t.Fatalf("%s: %v", sql, err)
					}
					f, err := h.checkQuery(sel)
					if err != nil {
						t.Fatalf("%s: %v", sql, err)
					}
					if f != nil && f.Detail != "budget" {
						findings++
						t.Errorf("boundary mismatch: %s", f)
					}
					checked++
				}
			}
		}
	}
	if findings > 0 {
		t.Fatalf("%d differential failures across %d boundary probes", findings, checked)
	}

	cs := h.Sess.PlanCache().Stats()
	if cs.Hits == 0 {
		t.Errorf("boundary sweep should produce parameterized cache hits: %+v", cs)
	}
	if cs.Misses == 0 {
		t.Errorf("cross-bucket constants should also miss sometimes: %+v", cs)
	}
	t.Logf("probes=%d cache=%+v", checked, cs)
}

// TestBucketBoundaryJoinDifferential repeats the boundary sweep for a join
// query whose inner side is index-seekable: rebound literals must reach the
// seek filters of cached join plans too.
func TestBucketBoundaryJoinDifferential(t *testing.T) {
	h, err := New(Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	st, err := h.Mgr.Create("orders", []string{"o_custkey"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Mgr.Create("customer", []string{"c_custkey"}); err != nil {
		t.Fatal(err)
	}
	hist := st.Data.Leading
	for _, b := range hist.Buckets {
		for delta := int64(0); delta <= 1; delta++ {
			v := b.Hi.I + delta
			sql := fmt.Sprintf(
				"SELECT * FROM orders, customer WHERE orders.o_custkey = customer.c_custkey AND orders.o_custkey > %d", v)
			sel, err := sqlparser.ParseSelect(h.DB.Schema, sql)
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			f, err := h.checkQuery(sel)
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			if f != nil && f.Detail != "budget" {
				t.Errorf("join boundary mismatch: %s", f)
			}
		}
	}
	if cs := h.Sess.PlanCache().Stats(); cs.Hits == 0 {
		t.Errorf("join sweep should produce cache hits: %+v", cs)
	}
}

// mkBoundarySelect guards against the generator ever producing a template
// the parser cannot round-trip; it is exercised implicitly above but kept as
// an explicit canary for the canonical print.
func TestBoundaryTemplateRoundTrip(t *testing.T) {
	h, err := New(Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sql := "SELECT * FROM orders WHERE o_orderdate > DATE 9300"
	sel, err := sqlparser.ParseSelect(h.DB.Schema, sql)
	if err != nil {
		t.Fatal(err)
	}
	again, err := sqlparser.ParseSelect(h.DB.Schema, sel.SQL())
	if err != nil {
		t.Fatalf("SQL() not re-parseable: %v", err)
	}
	if sel.Template() != again.Template() {
		t.Errorf("template not stable across round-trip: %q vs %q", sel.Template(), again.Template())
	}
	var _ *query.Select = again
}
