package oracle

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autostats"
	"autostats/client"
	"autostats/internal/chaos"
	"autostats/internal/protocol"
	"autostats/internal/resilience"
	"autostats/internal/server"
)

// ChaosOptions parameterizes one chaos sweep. The zero value is a small,
// CI-sized sweep; Seed alone replays a run.
type ChaosOptions struct {
	// Seed drives the fault proxy and the per-session request mix.
	Seed int64
	// Sessions is the number of concurrent client sessions (default 16).
	Sessions int
	// RequestsPerSession bounds each session's request count (default 20).
	RequestsPerSession int
	// Tenants spreads sessions across this many tenant names (default 4).
	Tenants int
	// Latency/Jitter/CorruptProb/TearProb/ResetProb configure the proxy
	// (defaults: 2ms latency, 1ms jitter, 1% each fault).
	Latency     time.Duration
	Jitter      time.Duration
	CorruptProb float64
	TearProb    float64
	ResetProb   float64
	// HangBudget is how long a single call may take before the sweep calls
	// it a hang rather than a slow failure (default 30s — far above every
	// configured timeout, so only a genuinely stuck path trips it).
	HangBudget time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Sessions == 0 {
		o.Sessions = 16
	}
	if o.RequestsPerSession == 0 {
		o.RequestsPerSession = 20
	}
	if o.Tenants == 0 {
		o.Tenants = 4
	}
	if o.Latency == 0 {
		o.Latency = 2 * time.Millisecond
	}
	if o.Jitter == 0 {
		o.Jitter = time.Millisecond
	}
	if o.CorruptProb == 0 {
		o.CorruptProb = 0.01
	}
	if o.TearProb == 0 {
		o.TearProb = 0.01
	}
	if o.ResetProb == 0 {
		o.ResetProb = 0.01
	}
	if o.HangBudget == 0 {
		o.HangBudget = 30 * time.Second
	}
	return o
}

// ChaosReport summarizes one chaos sweep.
type ChaosReport struct {
	Sessions  int
	Requests  int64
	OK        int64
	TypedErrs int64 // failures carrying a protocol error code
	Transport int64 // prompt transport failures (resets, torn frames, ...)
	Hangs     int64 // calls that exceeded HangBudget — always findings
	Proxy     chaos.Stats
	Drain     server.DrainReport
	// GoroutinesLeaked is the count above baseline that never settled after
	// shutdown (0 when clean).
	GoroutinesLeaked int
	Findings         []Finding
}

// RunChaosSweep drives a real stats server through the fault-injecting proxy
// with a swarm of client sessions and asserts the robustness invariants:
//
//   - every client-visible failure is a typed protocol error or a prompt
//     transport error — never a hang past HangBudget;
//   - shutdown drains cleanly: Dropped = Admitted − Completed = 0;
//   - the server leaks no goroutines (and, on Linux, no file descriptors)
//     once connections are gone;
//   - plan caches stay tenant-local: no tenant's cache holds more entries
//     than the distinct statements that tenant ever issued.
//
// Faults are injected at the byte level between client and server, so torn
// frames, corrupt length prefixes, and mid-request resets all occur
// naturally; the invariants must hold regardless.
func RunChaosSweep(opts ChaosOptions) (*ChaosReport, error) {
	opts = opts.withDefaults()
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &ChaosReport{Sessions: opts.Sessions}
	baselineGoroutines := runtime.NumGoroutine()
	baselineFDs := countFDs()

	srv, err := server.New(server.Config{
		Addr:               "127.0.0.1:0",
		Workers:            4,
		QueueDepth:         64,
		MaxTenants:         opts.Tenants + 2,
		ReadTimeout:        3 * time.Second,
		WriteTimeout:       2 * time.Second,
		RequestTimeout:     5 * time.Second,
		MaxInflightPerConn: 32,
		WriteQueue:         64,
		NewTenant: func(string) (*autostats.System, error) {
			return autostats.GenerateTPCD(autostats.TPCDOptions{Scale: 0.02, Skew: 1})
		},
		Name: "chaos-sweep",
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: server: %w", err)
	}
	if err := srv.Start(); err != nil {
		return nil, fmt.Errorf("chaos: start: %w", err)
	}

	proxy, err := chaos.New(srv.Addr().String(), chaos.Config{
		Seed:        opts.Seed,
		Latency:     opts.Latency,
		Jitter:      opts.Jitter,
		CorruptProb: opts.CorruptProb,
		TearProb:    opts.TearProb,
		ResetProb:   opts.ResetProb,
	})
	if err != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
		return nil, fmt.Errorf("chaos: proxy: %w", err)
	}

	templates := []string{
		"SELECT * FROM orders WHERE o_orderkey > 10",
		"SELECT * FROM lineitem WHERE l_quantity > 45",
		"SELECT * FROM customer WHERE c_custkey > 5",
		"SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 40",
	}

	logf("chaos: %d sessions x %d requests through proxy %s (seed %d)",
		opts.Sessions, opts.RequestsPerSession, proxy.Addr(), opts.Seed)

	var (
		requests, okCalls, typed, transport, hangs atomic.Int64
		findMu                                     sync.Mutex
	)
	addFinding := func(f Finding) {
		findMu.Lock()
		rep.Findings = append(rep.Findings, f)
		findMu.Unlock()
	}

	var wg sync.WaitGroup
	for i := 0; i < opts.Sessions; i++ {
		wg.Add(1)
		go func(session int) {
			defer wg.Done()
			tenant := fmt.Sprintf("chaos%d", session%opts.Tenants)
			c, err := client.Dial(proxy.Addr().String(), client.Options{
				Tenant:         tenant,
				DialTimeout:    2 * time.Second,
				HelloTimeout:   2 * time.Second,
				RequestTimeout: 10 * time.Second,
				Retry:          resilience.Retry{MaxAttempts: 3, BaseDelay: 20 * time.Millisecond},
			})
			if err != nil {
				return // dial lost to chaos; nothing to assert about an unopened session
			}
			defer c.Close()
			for j := 0; j < opts.RequestsPerSession; j++ {
				sql := templates[(session+j)%len(templates)]
				requests.Add(1)
				start := time.Now()
				ctx, cancel := context.WithTimeout(context.Background(), opts.HangBudget)
				_, err := c.Exec(ctx, sql)
				cancel()
				elapsed := time.Since(start)
				switch classifyChaosErr(err) {
				case chaosOK:
					okCalls.Add(1)
				case chaosTyped:
					typed.Add(1)
				case chaosTransport:
					transport.Add(1)
				}
				if elapsed >= opts.HangBudget {
					hangs.Add(1)
					addFinding(Finding{
						Oracle: "chaos-hang",
						Seed:   opts.Seed,
						SQL:    sql,
						Detail: fmt.Sprintf("session %d request %d took %v (budget %v); err=%v",
							session, j, elapsed, opts.HangBudget, err),
					})
				}
			}
		}(i)
	}
	wg.Wait()

	// Tenant plan-cache isolation: each tenant only ever saw the template
	// statements, so its cache can hold at most that many entries. More
	// means statements leaked across tenants into its cache.
	for tenant, st := range srv.TenantPlanCacheStats() {
		if st.Size > len(templates) {
			addFinding(Finding{
				Oracle: "chaos-cache-isolation",
				Seed:   opts.Seed,
				Detail: fmt.Sprintf("tenant %q plan cache holds %d entries; it only issued %d distinct statements",
					tenant, st.Size, len(templates)),
			})
		}
	}

	rep.Proxy = proxy.Stats()
	proxy.Close()

	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	rep.Drain = srv.Shutdown(sctx)
	cancel()
	if rep.Drain.Dropped != 0 || rep.Drain.Admitted-rep.Drain.Completed != rep.Drain.Dropped {
		addFinding(Finding{
			Oracle: "chaos-drain",
			Seed:   opts.Seed,
			Detail: fmt.Sprintf("drain arithmetic broken under chaos: admitted=%d completed=%d dropped=%d forced=%v",
				rep.Drain.Admitted, rep.Drain.Completed, rep.Drain.Dropped, rep.Drain.Forced),
		})
	}

	// Goroutines need a moment to unwind after Close/Shutdown; poll before
	// declaring a leak. A small slack absorbs runtime background goroutines.
	const slack = 5
	leaked := 0
	for deadline := time.Now().Add(10 * time.Second); ; {
		leaked = runtime.NumGoroutine() - baselineGoroutines
		if leaked <= slack || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if leaked > slack {
		rep.GoroutinesLeaked = leaked
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		addFinding(Finding{
			Oracle: "chaos-goroutine-leak",
			Seed:   opts.Seed,
			Detail: fmt.Sprintf("%d goroutines above baseline %d after shutdown\n%s",
				leaked, baselineGoroutines, truncate(string(buf[:n]), 4000)),
		})
	}
	if baselineFDs > 0 {
		if after := countFDs(); after > baselineFDs+slack {
			addFinding(Finding{
				Oracle: "chaos-fd-leak",
				Seed:   opts.Seed,
				Detail: fmt.Sprintf("%d file descriptors above baseline %d after shutdown", after-baselineFDs, baselineFDs),
			})
		}
	}

	rep.Requests = requests.Load()
	rep.OK = okCalls.Load()
	rep.TypedErrs = typed.Load()
	rep.Transport = transport.Load()
	rep.Hangs = hangs.Load()
	logf("chaos: %d requests: %d ok, %d typed, %d transport, %d hangs; proxy %+v; findings %d",
		rep.Requests, rep.OK, rep.TypedErrs, rep.Transport, rep.Hangs, rep.Proxy, len(rep.Findings))
	return rep, nil
}

type chaosErrClass int

const (
	chaosOK chaosErrClass = iota
	chaosTyped
	chaosTransport
)

// classifyChaosErr buckets a call outcome. Typed protocol errors carry a
// server-assigned code; everything else that failed promptly is transport
// loss (the chaos proxy's resets and tears land here, as does client-side
// deadline enforcement — the call FAILED FAST, which is the contract).
func classifyChaosErr(err error) chaosErrClass {
	switch {
	case err == nil:
		return chaosOK
	case errors.Is(err, protocol.ErrOverloaded),
		errors.Is(err, protocol.ErrDraining),
		errors.Is(err, protocol.ErrRateLimited),
		errors.Is(err, protocol.ErrTimeout):
		return chaosTyped
	case strings.Contains(err.Error(), "protocol: "):
		return chaosTyped // non-sentinel code (bad_request, sql_error, ...)
	default:
		return chaosTransport
	}
}

// countFDs returns the process's open file descriptor count, or 0 where
// /proc is unavailable (non-Linux).
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0
	}
	return len(ents)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "\n... (truncated)"
}
