package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventKind distinguishes the two span events a Tracer receives.
type EventKind int

// Span event kinds.
const (
	// SpanStart is emitted when a span begins.
	SpanStart EventKind = iota
	// SpanEnd is emitted when a span ends; Duration is set.
	SpanEnd
)

// String names the kind for trace output.
func (k EventKind) String() string {
	if k == SpanStart {
		return "start"
	}
	return "end"
}

// Event is one span boundary delivered to tracers. SpanID ties the start and
// end of one span together; IDs are unique within a registry.
type Event struct {
	Kind     EventKind
	SpanID   uint64
	Name     string
	Time     time.Time
	Duration time.Duration // SpanEnd only
	// Attrs carries span attributes; start and end may carry different keys.
	// Tracers must not mutate the map.
	Attrs map[string]any
}

// Tracer receives span events. Implementations must be safe for concurrent
// Emit calls; events for one span are ordered (start before end) but events
// of different spans interleave. Tracers registered on a registry are invoked
// in registration order.
type Tracer interface {
	Emit(Event)
}

// AddTracer registers a tracer; subsequent spans emit to it. Tracers fire in
// registration order.
func (r *Registry) AddTracer(t Tracer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var next []Tracer
	if cur := r.tracers.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, t)
	r.tracers.Store(&next)
}

// ClearTracers removes every registered tracer.
func (r *Registry) ClearTracers() {
	r.tracers.Store(nil)
}

// Span is an in-flight traced operation. A nil *Span (returned when no tracer
// is registered) is valid and End on it is a no-op, so instrumentation sites
// pay one atomic load when tracing is off.
type Span struct {
	r     *Registry
	id    uint64
	name  string
	start time.Time
}

// StartSpan begins a span and emits SpanStart to every tracer. When no tracer
// is registered it returns nil, which End handles.
func (r *Registry) StartSpan(name string, attrs map[string]any) *Span {
	trs := r.tracers.Load()
	if trs == nil || len(*trs) == 0 {
		return nil
	}
	sp := &Span{r: r, id: r.spanSeq.Add(1), name: name, start: time.Now()}
	ev := Event{Kind: SpanStart, SpanID: sp.id, Name: name, Time: sp.start, Attrs: attrs}
	for _, t := range *trs {
		t.Emit(ev)
	}
	return sp
}

// End finishes the span and emits SpanEnd with the elapsed duration. Safe on
// a nil span.
func (sp *Span) End(attrs map[string]any) {
	if sp == nil {
		return
	}
	trs := sp.r.tracers.Load()
	if trs == nil {
		return
	}
	now := time.Now()
	ev := Event{Kind: SpanEnd, SpanID: sp.id, Name: sp.name, Time: now, Duration: now.Sub(sp.start), Attrs: attrs}
	for _, t := range *trs {
		t.Emit(ev)
	}
}

// JSONLTracer writes one JSON object per span event — the trace format behind
// the CLIs' -trace flags. Lines are serialized under a mutex so concurrent
// spans never interleave bytes.
type JSONLTracer struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLTracer creates a tracer writing JSON lines to w.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return &JSONLTracer{w: w} }

// jsonlEvent is the serialized form; attrs flatten into the object via the
// Attrs map field (encoding/json writes map keys in sorted order, keeping
// lines diffable).
type jsonlEvent struct {
	Ev     string         `json:"ev"`
	Span   uint64         `json:"span"`
	Name   string         `json:"name"`
	TimeUS int64          `json:"ts_us"`
	DurUS  int64          `json:"dur_us,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Emit implements Tracer.
func (t *JSONLTracer) Emit(ev Event) {
	line, err := json.Marshal(jsonlEvent{
		Ev:     ev.Kind.String(),
		Span:   ev.SpanID,
		Name:   ev.Name,
		TimeUS: ev.Time.UnixMicro(),
		DurUS:  ev.Duration.Microseconds(),
		Attrs:  ev.Attrs,
	})
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(append(line, '\n')); err != nil {
		t.err = err
	}
}

// Err returns the first write or marshal error, after which Emit drops events.
func (t *JSONLTracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
