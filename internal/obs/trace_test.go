package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// recordTracer appends every event it receives, tagged with its own name, to
// a shared log — the fixture for hook-ordering assertions.
type recordTracer struct {
	name string
	mu   *sync.Mutex
	log  *[]string
}

func (t recordTracer) Emit(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	*t.log = append(*t.log, t.name+":"+ev.Kind.String()+":"+ev.Name)
}

// TestTracerOrdering: tracers fire in registration order for every event,
// and a span's start precedes its end.
func TestTracerOrdering(t *testing.T) {
	r := New()
	var mu sync.Mutex
	var log []string
	r.AddTracer(recordTracer{name: "first", mu: &mu, log: &log})
	r.AddTracer(recordTracer{name: "second", mu: &mu, log: &log})

	sp := r.StartSpan("op", map[string]any{"k": 1})
	if sp == nil {
		t.Fatal("StartSpan returned nil with tracers registered")
	}
	sp.End(nil)

	want := []string{"first:start:op", "second:start:op", "first:end:op", "second:end:op"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log[%d] = %q, want %q (full: %v)", i, log[i], want[i], log)
		}
	}
}

// TestNoTracerIsFree: with no tracer registered StartSpan returns nil and
// End on the nil span is a no-op.
func TestNoTracerIsFree(t *testing.T) {
	r := New()
	sp := r.StartSpan("op", nil)
	if sp != nil {
		t.Fatal("StartSpan should return nil with no tracers")
	}
	sp.End(nil) // must not panic
}

// TestJSONLTracer: events serialize one JSON object per line with matching
// span IDs and a duration on the end event.
func TestJSONLTracer(t *testing.T) {
	r := New()
	var sb strings.Builder
	tr := NewJSONLTracer(&sb)
	r.AddTracer(tr)

	sp := r.StartSpan("tune", map[string]any{"queries": 3})
	time.Sleep(time.Millisecond)
	sp.End(map[string]any{"created": 2})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), sb.String())
	}
	var start, end map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &start); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &end); err != nil {
		t.Fatal(err)
	}
	if start["ev"] != "start" || end["ev"] != "end" || start["name"] != "tune" {
		t.Errorf("events = %v / %v", start, end)
	}
	if start["span"] != end["span"] {
		t.Errorf("span ids differ: %v vs %v", start["span"], end["span"])
	}
	if end["dur_us"].(float64) < 1000 {
		t.Errorf("end duration %v, want >= 1ms", end["dur_us"])
	}
	if start["attrs"].(map[string]any)["queries"].(float64) != 3 {
		t.Errorf("start attrs = %v", start["attrs"])
	}
}

// TestConcurrentSpans races spans from many goroutines through one JSONL
// tracer; every line must stay a complete JSON object (run under -race).
func TestConcurrentSpans(t *testing.T) {
	r := New()
	var sb safeBuilder
	tr := NewJSONLTracer(&sb)
	r.AddTracer(tr)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := r.StartSpan("op", map[string]any{"w": w})
				sp.End(nil)
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 8*50*2 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*50*2)
	}
	for _, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}
}

// safeBuilder is a mutex-guarded strings.Builder: JSONLTracer serializes its
// own writes, but the final read races the last Write without this.
type safeBuilder struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *safeBuilder) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *safeBuilder) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
