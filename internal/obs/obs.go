// Package obs is the dependency-free observability layer of the auto-stats
// pipeline: a registry of atomic counters, gauges and timing histograms, plus
// a pluggable span-tracing hook (see trace.go).
//
// The paper's whole argument is quantitative — how many statistics MNSA
// avoids building, how much optimization and update cost the drop-list saves
// — so every subsystem (optimizer, statistics manager, MNSA, Shrinking Set,
// maintenance, the parallel tuner) emits its counts and timings here instead
// of ad-hoc prints. The experiment tables of EXPERIMENTS.md can be re-derived
// from a registry snapshot.
//
// Concurrency model: counters, float counters and gauges are single atomic
// words — increments from any number of goroutines are safe and never block.
// Timings take a per-timing mutex so that count/sum/min/max move together and
// a Snapshot is internally consistent. Metric handles are interned: looking
// up the same name twice returns the same handle, so hot paths should cache
// the handle once and hit the atomic directly.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is allowed but makes the metric no longer monotone;
// prefer a Gauge for values that go down).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float64 metric, used for
// work-unit accounting (statistics build/update cost units are fractional).
type FloatCounter struct{ bits atomic.Uint64 }

// Add adds delta via a compare-and-swap loop.
func (c *FloatCounter) Add(delta float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an instantaneous int64 value (set or adjusted, not accumulated).
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// timingBuckets is the number of log2-microsecond histogram buckets: bucket i
// counts observations of at most 2^i microseconds, the last bucket is
// unbounded (2^19 µs ≈ 0.5 s).
const timingBuckets = 20

// Timing is a latency histogram with exact count/sum/min/max and
// log2-microsecond buckets. All fields move together under one mutex so
// snapshots are internally consistent.
type Timing struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [timingBuckets]int64
}

// Observe records one duration.
func (t *Timing) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := 0
	for us := d.Microseconds(); us > 1 && idx < timingBuckets-1; us >>= 1 {
		idx++
	}
	t.mu.Lock()
	t.count++
	t.sum += d
	if t.count == 1 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.buckets[idx]++
	t.mu.Unlock()
}

// TimingSnapshot is a consistent point-in-time copy of a Timing.
type TimingSnapshot struct {
	Count   int64
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
	Buckets [timingBuckets]int64
}

// Mean returns Sum/Count, or 0 before any observation.
func (s TimingSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Snapshot returns a consistent copy of the histogram.
func (t *Timing) Snapshot() TimingSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TimingSnapshot{Count: t.count, Sum: t.sum, Min: t.min, Max: t.max, Buckets: t.buckets}
}

// Registry interns metrics by name and fans span events out to tracers. The
// zero value is not usable; construct with New. Metric names are dotted paths
// ("optimizer.plancache.hits"); one name must keep one metric kind.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	floats   map[string]*FloatCounter
	gauges   map[string]*Gauge
	timings  map[string]*Timing
	histos   map[string]*Histo

	tracers atomic.Pointer[[]Tracer]
	spanSeq atomic.Uint64
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		floats:   make(map[string]*FloatCounter),
		gauges:   make(map[string]*Gauge),
		timings:  make(map[string]*Timing),
		histos:   make(map[string]*Histo),
	}
}

// Default is the process-wide registry. Components default to it when no
// registry is injected; the CLIs' -metrics flags dump it.
var Default = New()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// FloatCounter returns the named float counter, creating it on first use.
func (r *Registry) FloatCounter(name string) *FloatCounter {
	r.mu.RLock()
	c := r.floats[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.floats[name]; c == nil {
		c = &FloatCounter{}
		r.floats[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timing returns the named timing histogram, creating it on first use.
func (r *Registry) Timing(name string) *Timing {
	r.mu.RLock()
	t := r.timings[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timings[name]; t == nil {
		t = &Timing{}
		r.timings[name] = t
	}
	return t
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters      map[string]int64
	FloatCounters map[string]float64
	Gauges        map[string]int64
	Timings       map[string]TimingSnapshot
	Histos        map[string]HistoSnapshot
}

// Snapshot copies every metric. Each metric is read atomically (timings under
// their own mutex); the set of metrics is the set registered at call time.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:      make(map[string]int64, len(r.counters)),
		FloatCounters: make(map[string]float64, len(r.floats)),
		Gauges:        make(map[string]int64, len(r.gauges)),
		Timings:       make(map[string]TimingSnapshot, len(r.timings)),
		Histos:        make(map[string]HistoSnapshot, len(r.histos)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, c := range r.floats {
		s.FloatCounters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, t := range r.timings {
		s.Timings[name] = t.Snapshot()
	}
	for name, h := range r.histos {
		s.Histos[name] = h.Snapshot()
	}
	return s
}

// WriteText dumps every metric as one "name value" line in name order — the
// expvar-style text form behind the CLIs' -metrics flags. Timings render as
// count/sum/mean/min/max.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	lines := make([]string, 0, len(s.Counters)+len(s.FloatCounters)+len(s.Gauges)+len(s.Timings))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.FloatCounters {
		lines = append(lines, fmt.Sprintf("%s %.3f", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, t := range s.Timings {
		lines = append(lines, fmt.Sprintf("%s count=%d sum=%s mean=%s min=%s max=%s",
			name, t.Count, t.Sum, t.Mean(), t.Min, t.Max))
	}
	for name, h := range s.Histos {
		lines = append(lines, fmt.Sprintf("%s count=%d sum=%.3f mean=%.3f min=%.3f max=%.3f",
			name, h.Count, h.Sum, h.Mean(), h.Min, h.Max))
	}
	sort.Strings(lines)
	_, err := io.WriteString(w, strings.Join(lines, "\n"))
	if err == nil && len(lines) > 0 {
		_, err = io.WriteString(w, "\n")
	}
	return err
}
