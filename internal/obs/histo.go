package obs

import (
	"math"
	"sync"
)

// histoBuckets is the number of log2 value-histogram buckets: bucket i counts
// observations of at most 2^i, the last bucket is unbounded (2^19 ≈ 5e5).
const histoBuckets = 20

// Histo is a histogram over positive float64 values with exact
// count/sum/min/max and log2 buckets — the value-domain sibling of Timing,
// used for dimensionless ratios such as cardinality q-errors (q >= 1, so
// bucket 0 is "estimate within 2x" and each later bucket doubles the error).
// All fields move together under one mutex so snapshots are internally
// consistent.
type Histo struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histoBuckets]int64
}

// Observe records one value. Negative and NaN values are clamped to 0.
func (h *Histo) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	idx := 0
	for x := v; x > 2 && idx < histoBuckets-1; x /= 2 {
		idx++
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[idx]++
	h.mu.Unlock()
}

// HistoSnapshot is a consistent point-in-time copy of a Histo.
type HistoSnapshot struct {
	Count   int64
	Sum     float64
	Min     float64
	Max     float64
	Buckets [histoBuckets]int64
}

// Mean returns Sum/Count, or 0 before any observation.
func (s HistoSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot returns a consistent copy of the histogram.
func (h *Histo) Snapshot() HistoSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistoSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Buckets: h.buckets}
}

// Histo returns the named value histogram, creating it on first use.
func (r *Registry) Histo(name string) *Histo {
	r.mu.RLock()
	h := r.histos[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histos[name]; h == nil {
		h = &Histo{}
		r.histos[name] = h
	}
	return h
}
